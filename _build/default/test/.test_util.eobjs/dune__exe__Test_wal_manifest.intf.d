test/test_wal_manifest.mli:
