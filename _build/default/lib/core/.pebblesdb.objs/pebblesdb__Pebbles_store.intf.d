lib/core/pebbles_store.mli: Pdb_kvs Pdb_simio Pdb_sstable
