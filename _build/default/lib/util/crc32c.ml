(** CRC-32C (Castagnoli) checksums, as used by LevelDB's log and table
    formats.  Software table-driven implementation; the table is computed
    once at module initialisation. *)

let polynomial = 0x82F63B78 (* reversed Castagnoli polynomial *)

let table =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let c = ref i in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := (!c lsr 1) lxor polynomial
      else c := !c lsr 1
    done;
    t.(i) <- !c
  done;
  t

(** [update crc s pos len] extends checksum [crc] with [s.[pos .. pos+len-1]]. *)
let update crc s pos len =
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

(** [string s] is the CRC-32C of the whole string. *)
let string s = update 0 s 0 (String.length s)

(** [masked crc] applies LevelDB's mask so that checksums of data that itself
    contains checksums do not collide trivially. *)
let masked crc =
  let rotated = ((crc lsr 15) lor (crc lsl 17)) land 0xFFFFFFFF in
  (rotated + 0xa282ead8) land 0xFFFFFFFF

(** [unmask m] inverts {!masked}. *)
let unmask m =
  let rotated = (m - 0xa282ead8) land 0xFFFFFFFF in
  ((rotated lsr 17) lor (rotated lsl 15)) land 0xFFFFFFFF
