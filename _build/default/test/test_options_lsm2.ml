(* Tests for options/profiles and additional LSM engine behaviours
   (trivial moves, seek-triggered level-0 compaction, profile
   differentiation). *)

module O = Pdb_kvs.Options
module L = Pdb_lsm.Lsm_store
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter

let check = Alcotest.check

(* ---------- options ---------- *)

let test_profiles_have_distinct_identities () =
  let profiles = [ O.leveldb (); O.rocksdb (); O.hyperleveldb (); O.pebblesdb () ] in
  let names = List.map (fun (o : O.t) -> o.O.name) profiles in
  check
    Alcotest.(list string)
    "names" [ "leveldb"; "rocksdb"; "hyperleveldb"; "pebblesdb" ] names;
  (* the paper's configuration differences *)
  Alcotest.(check bool) "leveldb has no sstable blooms" false
    (O.leveldb ()).O.sstable_bloom;
  Alcotest.(check bool) "hyper got blooms added (methodology)" true
    (O.hyperleveldb ()).O.sstable_bloom;
  Alcotest.(check bool) "rocksdb bigger memtable" true
    ((O.rocksdb ()).O.memtable_bytes > (O.hyperleveldb ()).O.memtable_bytes);
  Alcotest.(check bool) "rocksdb larger L0 limits" true
    ((O.rocksdb ()).O.l0_slowdown > (O.hyperleveldb ()).O.l0_slowdown)

let test_level_max_bytes_geometric () =
  let o = O.pebblesdb () in
  check Alcotest.int "L1" o.O.level_bytes_base (O.level_max_bytes o 1);
  check Alcotest.int "L2"
    (o.O.level_bytes_base * o.O.level_bytes_multiplier)
    (O.level_max_bytes o 2);
  check Alcotest.int "L3"
    (o.O.level_bytes_base * o.O.level_bytes_multiplier
     * o.O.level_bytes_multiplier)
    (O.level_max_bytes o 3)

let test_guard_bits_decrease_with_depth () =
  let o = O.pebblesdb () in
  let bits = List.init 6 (fun i -> O.guard_bits o ~level:(i + 1)) in
  let rec decreasing = function
    | a :: b :: rest -> a >= b && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing bits);
  Alcotest.(check bool) "never below 1" true (List.for_all (fun b -> b >= 1) bits)

(* ---------- lsm: trivial moves ---------- *)

let tiny_opts () =
  {
    (O.hyperleveldb ()) with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
  }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

let test_sequential_fill_compaction_is_nearly_free () =
  let env = Env.create () in
  let db = L.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 1999 do
    L.put db (key i) (value i)
  done;
  L.flush db;
  let st = L.stats db in
  let user = st.Pdb_kvs.Engine_stats.user_bytes_written in
  let cwritten = st.Pdb_kvs.Engine_stats.compaction_bytes_written in
  (* trivial moves mean compaction rewrites a small fraction of user data *)
  Alcotest.(check bool)
    (Printf.sprintf "compaction wrote %d << user %d" cwritten user)
    true
    (float_of_int cwritten < 0.5 *. float_of_int user);
  L.check_invariants db;
  for i = 0 to 1999 do
    check Alcotest.(option string) "intact" (Some (value i)) (L.get db (key i))
  done;
  L.close db

let test_seek_triggered_l0_compaction () =
  let env = Env.create () in
  let opts = { (tiny_opts ()) with O.l0_compaction_trigger = 100 } in
  (* huge trigger: only seeks can drain L0 *)
  let db = L.open_store opts ~env ~dir:"db" in
  for i = 0 to 399 do
    L.put db (key i) (value i)
  done;
  L.flush db;
  let l0_before = (L.level_file_counts db).(0) in
  Alcotest.(check bool) "L0 populated" true (l0_before > 0);
  (* a run of consecutive seeks must trigger the L0 drain *)
  for _ = 1 to 2 * opts.O.seek_compaction_threshold do
    let it = L.iterator db in
    it.Iter.seek (key 100)
  done;
  Alcotest.(check bool) "L0 drained by seeks" true
    ((L.level_file_counts db).(0) < l0_before);
  L.check_invariants db;
  L.close db

let test_writes_reset_seek_run () =
  let env = Env.create () in
  let opts = { (tiny_opts ()) with O.l0_compaction_trigger = 100 } in
  let db = L.open_store opts ~env ~dir:"db" in
  for i = 0 to 399 do
    L.put db (key i) (value i)
  done;
  L.flush db;
  let l0_before = (L.level_file_counts db).(0) in
  (* interleave writes: the consecutive-seek counter must reset, so no
     seek compaction fires *)
  for s = 1 to 3 * opts.O.seek_compaction_threshold do
    let it = L.iterator db in
    it.Iter.seek (key 100);
    if s mod 3 = 0 then L.put db (key (10_000 + s)) "x"
  done;
  check Alcotest.int "L0 untouched (modulo memtable flushes)" l0_before
    (L.level_file_counts db).(0);
  L.close db

let test_stats_breakdown_populated () =
  let env = Env.create () in
  let db = L.open_store (tiny_opts ()) ~env ~dir:"db" in
  let perm = Array.init 2000 Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 4) perm;
  Array.iter (fun i -> L.put db (key i) (value i)) perm;
  let st = L.stats db in
  Alcotest.(check bool) "puts counted" true (st.Pdb_kvs.Engine_stats.puts = 2000);
  Alcotest.(check bool) "flushes counted" true
    (st.Pdb_kvs.Engine_stats.flushes > 0);
  Alcotest.(check bool) "compaction io counted" true
    (st.Pdb_kvs.Engine_stats.compaction_bytes_written > 0);
  ignore (L.get db (key 5));
  let st = L.stats db in
  Alcotest.(check bool) "sstables examined on reads" true
    (st.Pdb_kvs.Engine_stats.sstables_examined > 0);
  L.close db

let test_bloom_negative_stat_grows_on_missing_reads () =
  let env = Env.create () in
  let db = L.open_store (tiny_opts ()) ~env ~dir:"db" in
  let perm = Array.init 2000 Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 4) perm;
  Array.iter (fun i -> L.put db (key i) (value i)) perm;
  L.flush db;
  (* missing keys interleaved inside the populated range, so the range
     check passes and the bloom filter is what rejects them *)
  for i = 0 to 199 do
    ignore (L.get db (Printf.sprintf "key%06dzz" i))
  done;
  let st = L.stats db in
  Alcotest.(check bool) "bloom rejections recorded" true
    (st.Pdb_kvs.Engine_stats.bloom_negative > 0);
  L.close db

let test_describe_and_memory_nonzero_after_writes () =
  let env = Env.create () in
  let db = L.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 499 do
    L.put db (key i) (value i)
  done;
  Alcotest.(check bool) "memory > 0" true (L.memory_bytes db > 0);
  Alcotest.(check bool) "describe non-empty" true
    (String.length (L.describe db) > 10);
  L.close db

let () =
  Alcotest.run "options-lsm2"
    [
      ( "options",
        [
          Alcotest.test_case "profiles distinct" `Quick
            test_profiles_have_distinct_identities;
          Alcotest.test_case "level sizes geometric" `Quick
            test_level_max_bytes_geometric;
          Alcotest.test_case "guard bits decrease" `Quick
            test_guard_bits_decrease_with_depth;
        ] );
      ( "lsm-behaviour",
        [
          Alcotest.test_case "sequential fill near-free" `Quick
            test_sequential_fill_compaction_is_nearly_free;
          Alcotest.test_case "seek-triggered L0 drain" `Quick
            test_seek_triggered_l0_compaction;
          Alcotest.test_case "writes reset seek run" `Quick
            test_writes_reset_seek_run;
          Alcotest.test_case "stats breakdown" `Quick
            test_stats_breakdown_populated;
          Alcotest.test_case "bloom negatives" `Quick
            test_bloom_negative_stat_grows_on_missing_reads;
          Alcotest.test_case "describe/memory" `Quick
            test_describe_and_memory_nonzero_after_writes;
        ] );
    ]
