(** Memtable: the in-memory buffer of recent writes.

    A skip list keyed by encoded internal keys (§2.2).  Writes append
    entries with fresh sequence numbers; when {!approximate_bytes} exceeds
    the configured memtable size the engine freezes it and flushes it to a
    level-0 sstable. *)

type t

val create : unit -> t

(** [add t ~seq ~kind ~user_key ~value] inserts one entry. *)
val add :
  t -> seq:int -> kind:Internal_key.kind -> user_key:string -> value:string ->
  unit

(** [get t user_key] is the freshest entry for [user_key]:
    [Some (Some v)] for a live value, [Some None] for a tombstone, [None]
    when the memtable holds no version of the key. *)
val get : t -> string -> string option option

(** [get_at t user_key ~seq] is the freshest entry visible at sequence
    number [seq] (snapshot reads); same result shape as {!get}. *)
val get_at : t -> string -> seq:int -> string option option

val approximate_bytes : t -> int
val entries : t -> int
val is_empty : t -> bool

(** [iterator t] ranges over encoded internal keys. *)
val iterator : t -> Iter.t

(** [contents t] lists all (internal key, value) entries in order — used by
    flush. *)
val contents : t -> (string * string) list
