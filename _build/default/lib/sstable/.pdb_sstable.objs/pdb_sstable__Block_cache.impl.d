lib/sstable/block_cache.ml: Block Pdb_simio Pdb_util Printf
