lib/kvs/memtable.ml: Internal_key Iter Pdb_skiplist String
