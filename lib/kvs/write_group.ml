(** WAL group commit: the LevelDB writers-queue protocol, shared by the
    LSM and FLSM engines.

    When several clients have a write pending at the same commit window,
    a leader commits all of them at once: their batches are framed as
    individual WAL records — so the log bytes are identical whether the
    group has one member or eight — but appended in {e one} device write
    and made durable by {e one} sync.  Followers are acked when the
    leader's sync returns, which is why the whole group commits or none
    of it does under the durability contract: no member is acknowledged
    before the group's records are synced.

    The driver is generic over the engine's internals via {!hooks}.  It
    preserves, batch for batch, the state transitions of the serial
    write path: sequence numbers are allocated in arrival order, batches
    are applied to the memtable in arrival order, and a memtable flush
    triggers at exactly the same batch boundaries — so store state is
    byte-identical across client counts.  Before a mid-group flush
    rotates the WAL, the records buffered so far are pushed to the old
    log; every record a flushed memtable depends on is therefore in the
    log that the flush retires, never stranded in a deleted file. *)

type hooks = {
  count : Write_batch.t -> int;
  encode : Write_batch.t -> base_seq:int -> string;
  alloc_seq : int -> int;
      (** [alloc_seq n] allocates [n] sequence numbers, returns the base *)
  before_group : entries:int -> unit;
      (** once per commit group, before any batch: write-stall
          back-pressure is charged here — the group enters the device as
          one write, so the penalty applies per group, not per record *)
  before_batch : Write_batch.t -> unit;
      (** per-batch foreground CPU charges *)
  log_append : string list -> unit;
      (** append encoded records to the live WAL in one device write *)
  log_sync : unit -> unit;
  apply : Write_batch.t -> base_seq:int -> unit;
      (** insert into the memtable (and any engine-specific tracking) *)
  memtable_full : unit -> bool;
  flush : unit -> unit;  (** flush the memtable; rotates the WAL *)
  sync_writes : bool;
  stats : Engine_stats.t;
}

(** [commit hooks batches] commits [batches] as one group, in order. *)
let commit h batches =
  let batches = List.filter (fun b -> h.count b > 0) batches in
  match batches with
  | [] -> ()
  | batches ->
    let pending = ref [] in
    (* batches whose durability rides on the end-of-group sync; a
       mid-group flush retires the log holding everything so far (the
       flushed sstable + manifest install covers those records), so it
       resets the count — crediting [n - 1] unconditionally would
       overcount elided syncs *)
    let covered = ref 0 in
    let flush_pending () =
      if !pending <> [] then begin
        h.log_append (List.rev !pending);
        pending := []
      end
    in
    h.before_group
      ~entries:(List.fold_left (fun acc b -> acc + h.count b) 0 batches);
    List.iter
      (fun batch ->
        h.before_batch batch;
        let base_seq = h.alloc_seq (h.count batch) in
        pending := h.encode batch ~base_seq :: !pending;
        h.apply batch ~base_seq;
        incr covered;
        if h.memtable_full () then begin
          (* push this group's records into the log the flush is about
             to retire before the rotation deletes it *)
          flush_pending ();
          h.flush ();
          covered := 0
        end)
      batches;
    flush_pending ();
    if h.sync_writes then h.log_sync ();
    let n = List.length batches in
    let st = h.stats in
    st.Engine_stats.write_groups <- st.Engine_stats.write_groups + 1;
    st.Engine_stats.write_group_batches <-
      st.Engine_stats.write_group_batches + n;
    if h.sync_writes then
      st.Engine_stats.group_syncs_saved <-
        st.Engine_stats.group_syncs_saved + max 0 (!covered - 1)
