(* Tests for the simulated storage environment. *)

open Pdb_simio

let check = Alcotest.check

let test_create_append_read () =
  let env = Env.create () in
  let w = Env.create_file env "dir/a" in
  Env.append w "hello ";
  Env.append w "world";
  Env.close w;
  check Alcotest.int "size" 11 (Env.file_size env "dir/a");
  check Alcotest.string "read all" "hello world"
    (Env.read_all env "dir/a" ~hint:Device.Sequential_read);
  check Alcotest.string "read range" "wor"
    (Env.read env "dir/a" ~pos:6 ~len:3 ~hint:Device.Random_read)

let test_read_out_of_bounds () =
  let env = Env.create () in
  let w = Env.create_file env "f" in
  Env.append w "abc";
  Alcotest.(check bool) "raises" true
    (try
       ignore (Env.read env "f" ~pos:1 ~len:5 ~hint:Device.Random_read);
       false
     with Invalid_argument _ -> true)

let test_missing_file () =
  let env = Env.create () in
  Alcotest.(check bool) "raises Sys_error" true
    (try
       ignore (Env.file_size env "nope");
       false
     with Sys_error _ -> true)

let test_rename_delete () =
  let env = Env.create () in
  let w = Env.create_file env "old" in
  Env.append w "data";
  Env.rename env ~src:"old" ~dst:"new";
  Alcotest.(check bool) "old gone" false (Env.exists env "old");
  check Alcotest.string "new has data" "data"
    (Env.read_all env "new" ~hint:Device.Sequential_read);
  Env.delete env "new";
  Alcotest.(check bool) "deleted" false (Env.exists env "new")

let test_stats_accounting () =
  let env = Env.create () in
  let w = Env.create_file env "f" in
  Env.append w (String.make 100 'x');
  Env.append w (String.make 50 'y');
  ignore (Env.read env "f" ~pos:0 ~len:30 ~hint:Device.Random_read);
  let s = Env.stats env in
  check Alcotest.int "bytes written" 150 s.Io_stats.bytes_written;
  check Alcotest.int "bytes read" 30 s.Io_stats.bytes_read;
  check Alcotest.int "write ops" 2 s.Io_stats.write_ops;
  check Alcotest.int "read ops" 1 s.Io_stats.read_ops

let test_crash_drops_unsynced () =
  let env = Env.create () in
  let w = Env.create_file env "f" in
  Env.append w "durable";
  Env.sync w;
  Env.append w "volatile";
  Env.crash env;
  check Alcotest.string "only synced survives" "durable"
    (Env.read_all env "f" ~hint:Device.Sequential_read)

let test_crash_removes_never_synced () =
  let env = Env.create () in
  let w = Env.create_file env "f" in
  Env.append w "gone";
  Env.crash env;
  Alcotest.(check bool) "file vanished" false (Env.exists env "f")

let test_crash_keeps_synced_empty_file () =
  (* a created-and-synced empty file is durable: "never synced" must not be
     conflated with "synced at length 0" (a fresh WAL is exactly this) *)
  let env = Env.create () in
  let w = Env.create_file env "wal" in
  Env.sync w;
  Env.crash env;
  Alcotest.(check bool) "empty synced file survives" true
    (Env.exists env "wal");
  check Alcotest.int "zero length" 0 (Env.file_size env "wal")

let test_rename_implies_flush () =
  (* ext4 replace-via-rename: a renamed file is durable under its new name
     even if it was never explicitly synced *)
  let env = Env.create () in
  let w = Env.create_file env "tmp" in
  Env.append w "payload";
  Env.rename env ~src:"tmp" ~dst:"installed";
  Env.crash env;
  Alcotest.(check bool) "renamed file survives" true
    (Env.exists env "installed");
  check Alcotest.string "contents durable" "payload"
    (Env.read_all env "installed" ~hint:Device.Sequential_read)

(* ---------- fault injection ---------- *)

let test_fault_crash_after_nth_event () =
  let env = Env.create () in
  let plan = Env.Fault_plan.create ~seed:1 ~crash_after:3 () in
  Env.set_fault_plan env plan;
  let w = Env.create_file env "f" in
  (* create=1, append=2 *)
  Env.append w "one";
  Alcotest.(check bool) "not yet fired" false (Env.Fault_plan.fired plan);
  Alcotest.check_raises "third event fires" (Env.Injected_crash "append:f")
    (fun () -> Env.append w "two");
  Alcotest.(check bool) "fired" true (Env.Fault_plan.fired plan);
  check
    Alcotest.(option string)
    "fired_at labels the event" (Some "append:f")
    (Env.Fault_plan.fired_at plan);
  check Alcotest.int "three ticks observed" 3 (Env.Fault_plan.ticks plan)

(* Run one torn-crash scenario: synced prefix, unsynced suffix, crash under
   a seeded plan.  Returns (synced_prefix, suffix, surviving contents). *)
let torn_scenario ~seed ~garbage_tail_prob =
  let env = Env.create () in
  let prefix = String.make 64 'S' in
  let suffix = String.init 64 (fun i -> Char.chr (65 + (i mod 26))) in
  let w = Env.create_file env "f" in
  Env.append w prefix;
  Env.sync w;
  Env.append w suffix;
  Env.set_fault_plan env
    (Env.Fault_plan.create ~garbage_tail_prob ~block_bytes:8 ~seed
       ~crash_after:max_int ());
  Env.crash env;
  (prefix, suffix, Env.read_all env "f" ~hint:Device.Sequential_read)

let test_fault_torn_prefix () =
  (* without garbling: the synced prefix always survives intact, the
     unsynced suffix survives as a block-granular prefix; across seeds we
     must see a genuinely torn state (neither nothing nor everything) *)
  let torn_seen = ref false in
  for seed = 0 to 19 do
    let prefix, suffix, got = torn_scenario ~seed ~garbage_tail_prob:0.0 in
    let plen = String.length prefix in
    Alcotest.(check bool) "at least the synced prefix" true
      (String.length got >= plen);
    check Alcotest.string "synced prefix intact" prefix
      (String.sub got 0 plen);
    let kept = String.length got - plen in
    check Alcotest.int "block granularity" 0 (kept mod 8);
    check Alcotest.string "kept suffix bytes match what was written"
      (String.sub suffix 0 kept)
      (String.sub got plen kept);
    if kept > 0 && kept < String.length suffix then torn_seen := true
  done;
  Alcotest.(check bool) "some seed tears mid-suffix" true !torn_seen

let test_fault_garbage_tail () =
  (* with garbling forced on: whenever unsynced bytes survive, the tail
     block is garbled (bit flips), but never the synced prefix *)
  let garbled_seen = ref false in
  for seed = 0 to 19 do
    let prefix, suffix, got = torn_scenario ~seed ~garbage_tail_prob:1.0 in
    let plen = String.length prefix in
    check Alcotest.string "synced prefix never garbled" prefix
      (String.sub got 0 plen);
    let kept = String.length got - plen in
    if kept > 0 && String.sub got plen kept <> String.sub suffix 0 kept then
      garbled_seen := true
  done;
  Alcotest.(check bool) "surviving tails get garbled" true !garbled_seen

let test_fault_determinism () =
  (* the same seed must reproduce the same post-crash state, byte for
     byte, across every file — the property the torture sweep relies on *)
  let run () =
    let env = Env.create () in
    Env.set_fault_plan env
      (Env.Fault_plan.create ~block_bytes:16 ~seed:1234 ~crash_after:9 ());
    (try
       for i = 0 to 7 do
         let w = Env.create_file env (Printf.sprintf "f%d" i) in
         Env.append w (String.make (17 * (i + 1)) (Char.chr (97 + i)));
         if i mod 2 = 0 then Env.sync w;
         Env.append w (String.make 33 'z')
       done
     with Env.Injected_crash _ -> ());
    Env.crash env;
    List.map
      (fun name -> (name, Env.read_all env name ~hint:Device.Sequential_read))
      (List.sort compare (Env.list env))
  in
  let a = run () and b = run () in
  check
    Alcotest.(list (pair string string))
    "identical surviving state" a b

let test_with_atomic_defers_crash () =
  let env = Env.create () in
  Env.set_fault_plan env (Env.Fault_plan.create ~seed:7 ~crash_after:2 ());
  let w = Env.create_file env "pages" in
  (* both writes inside the section land; the crash fires at the end *)
  Alcotest.(check bool) "crash deferred to section end" true
    (try
       Env.with_atomic env (fun () ->
           Env.append w "first";
           Env.append w "second");
       false
     with Env.Injected_crash _ -> true);
  check Alcotest.int "section committed as a unit" 11
    (Env.file_size env "pages")

let test_total_file_bytes () =
  let env = Env.create () in
  let w1 = Env.create_file env "a" in
  Env.append w1 "12345";
  let w2 = Env.create_file env "b" in
  Env.append w2 "123";
  check Alcotest.int "total" 8 (Env.total_file_bytes env)

let test_clock_lanes () =
  let env = Env.create () in
  let clock = Env.clock env in
  let w = Env.create_file env "f" in
  Env.append w "fg-bytes";
  let snap1 = Clock.snapshot clock in
  Alcotest.(check bool) "foreground charged" true
    (snap1.Clock.foreground_ns > 0.0);
  Clock.with_background clock (fun () -> Env.append w "bg-bytes");
  let snap2 = Clock.snapshot clock in
  Alcotest.(check bool) "background charged" true
    (snap2.Clock.background_ns > 0.0);
  check (Alcotest.float 0.0001) "foreground unchanged by bg work"
    snap1.Clock.foreground_ns snap2.Clock.foreground_ns

let test_clock_elapsed_model () =
  (* foreground IO serialises with the background completion horizon
     (per-worker timelines); CPU overlaps with IO; stalls add on *)
  let c = Clock.create () in
  Clock.advance c 100.0;
  Clock.advance_cpu c 500.0;
  Clock.with_background c (fun () -> Clock.advance c 1000.0);
  Clock.note_bg_horizon c 1000.0;
  let s = Clock.snapshot c in
  check (Alcotest.float 0.001) "device-bound" 1100.0 (Clock.elapsed_ns s);
  Clock.stall c 50.0;
  check (Alcotest.float 0.001) "stalls add on" 1150.0
    (Clock.elapsed_ns (Clock.snapshot c));
  (* a store with no background work is bound by max(cpu, fg) *)
  let c2 = Clock.create () in
  Clock.advance c2 100.0;
  Clock.advance_cpu c2 500.0;
  check (Alcotest.float 0.001) "cpu-bound without bg work" 500.0
    (Clock.elapsed_ns (Clock.snapshot c2))

(* ---------- worker-lane scheduler (Sched) ---------- *)

let fp ?(key_lo = "") ?key_hi level =
  { Sched.level_lo = level; level_hi = level; key_lo; key_hi }

let test_sched_conflicts () =
  (* same level, overlapping key ranges -> conflict *)
  Alcotest.(check bool) "overlap same level" true
    (Sched.conflicts
       (fp 1 ~key_lo:"a" ~key_hi:"m")
       (fp 1 ~key_lo:"g" ~key_hi:"z"));
  (* disjoint key ranges -> no conflict *)
  Alcotest.(check bool) "disjoint ranges" false
    (Sched.conflicts
       (fp 1 ~key_lo:"a" ~key_hi:"g")
       (fp 1 ~key_lo:"g" ~key_hi:"z"));
  (* disjoint levels -> no conflict *)
  Alcotest.(check bool) "disjoint levels" false
    (Sched.conflicts (fp 1 ~key_lo:"a") (fp 2 ~key_lo:"a"));
  (* None upper bound = +infinity *)
  Alcotest.(check bool) "open upper bound" true
    (Sched.conflicts (fp 1 ~key_lo:"a") (fp 1 ~key_lo:"zzz"))

let test_sched_disjoint_jobs_overlap () =
  let clock = Clock.create () in
  let s = Sched.create ~clock ~workers:2 () in
  let f1 = Sched.place s (fp 2 ~key_lo:"a" ~key_hi:"g") ~duration_ns:100.0 in
  let f2 = Sched.place s (fp 2 ~key_lo:"g" ~key_hi:"p") ~duration_ns:100.0 in
  check (Alcotest.float 0.001) "first lane" 100.0 f1;
  check (Alcotest.float 0.001) "second lane runs concurrently" 100.0 f2;
  check (Alcotest.float 0.001) "horizon is the max finish" 100.0
    (Sched.horizon_ns s);
  check Alcotest.int "no serialization" 0 (Sched.serialized_jobs s)

let test_sched_conflicting_jobs_serialize () =
  let clock = Clock.create () in
  let s = Sched.create ~clock ~workers:2 () in
  (* overlapping guard ranges on the same level must serialise even though
     a second worker lane is idle *)
  let f1 = Sched.place s (fp 2 ~key_lo:"a" ~key_hi:"m") ~duration_ns:100.0 in
  let f2 = Sched.place s (fp 2 ~key_lo:"g" ~key_hi:"z") ~duration_ns:50.0 in
  check (Alcotest.float 0.001) "first finishes" 100.0 f1;
  check (Alcotest.float 0.001) "second waits for the first" 150.0 f2;
  check Alcotest.int "serialization counted" 1 (Sched.serialized_jobs s);
  check (Alcotest.float 0.001) "clock horizon tracks" 150.0
    clock.Clock.bg_horizon_ns

let test_sched_single_worker_packs_sequentially () =
  let clock = Clock.create () in
  let s = Sched.create ~clock ~workers:1 () in
  ignore (Sched.place s (fp 1 ~key_lo:"a" ~key_hi:"b") ~duration_ns:100.0);
  let f = Sched.place s (fp 1 ~key_lo:"x" ~key_hi:"y") ~duration_ns:100.0 in
  check (Alcotest.float 0.001) "disjoint jobs still queue on one lane" 200.0 f

let test_device_aging () =
  let d = Device.ssd () in
  let fresh = Device.write_cost d ~bytes:1000 in
  Device.set_aging d 2.0;
  let aged = Device.write_cost d ~bytes:1000 in
  check (Alcotest.float 0.001) "aging doubles cost" (fresh *. 2.0) aged

let test_device_read_hints () =
  let d = Device.ssd () in
  Alcotest.(check bool) "random read costlier than sequential" true
    (Device.read_cost d ~hint:Device.Random_read ~bytes:4096
     > Device.read_cost d ~hint:Device.Sequential_read ~bytes:4096)

let test_truncating_create () =
  let env = Env.create () in
  let w = Env.create_file env "f" in
  Env.append w "aaaa";
  let w2 = Env.create_file env "f" in
  Env.append w2 "b";
  check Alcotest.int "truncated" 1 (Env.file_size env "f")

let () =
  Alcotest.run "simio"
    [
      ( "env",
        [
          Alcotest.test_case "create/append/read" `Quick
            test_create_append_read;
          Alcotest.test_case "read out of bounds" `Quick
            test_read_out_of_bounds;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "rename/delete" `Quick test_rename_delete;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "total bytes" `Quick test_total_file_bytes;
          Alcotest.test_case "truncating create" `Quick test_truncating_create;
        ] );
      ( "crash",
        [
          Alcotest.test_case "drops unsynced" `Quick test_crash_drops_unsynced;
          Alcotest.test_case "removes never-synced" `Quick
            test_crash_removes_never_synced;
          Alcotest.test_case "keeps synced empty file" `Quick
            test_crash_keeps_synced_empty_file;
          Alcotest.test_case "rename implies flush" `Quick
            test_rename_implies_flush;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "crash after Nth event" `Quick
            test_fault_crash_after_nth_event;
          Alcotest.test_case "torn prefix" `Quick test_fault_torn_prefix;
          Alcotest.test_case "garbage tail" `Quick test_fault_garbage_tail;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "with_atomic defers" `Quick
            test_with_atomic_defers_crash;
        ] );
      ( "clock-device",
        [
          Alcotest.test_case "lanes" `Quick test_clock_lanes;
          Alcotest.test_case "elapsed model" `Quick test_clock_elapsed_model;
          Alcotest.test_case "aging" `Quick test_device_aging;
          Alcotest.test_case "read hints" `Quick test_device_read_hints;
        ] );
      ( "sched",
        [
          Alcotest.test_case "footprint conflicts" `Quick test_sched_conflicts;
          Alcotest.test_case "disjoint jobs overlap" `Quick
            test_sched_disjoint_jobs_overlap;
          Alcotest.test_case "conflicting jobs serialize" `Quick
            test_sched_conflicting_jobs_serialize;
          Alcotest.test_case "single worker packs sequentially" `Quick
            test_sched_single_worker_packs_sequentially;
        ] );
    ]
