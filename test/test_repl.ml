(* Replication: primary determinism, backup convergence, the ack
   contract, failover torture and net-trace visibility (see
   Pdb_repl.Repl_store and Harness.Crash_torture.run_failover). *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Stats = Pdb_kvs.Engine_stats
module Env = Pdb_simio.Env
module Trace = Pdb_simio.Trace
module Stores = Pdb_harness.Stores
module Torture = Pdb_harness.Crash_torture

let seed =
  match Sys.getenv_opt "TORTURE_SEED" with
  | Some s -> int_of_string s
  | None -> 0xFA17

let tweak ?(replicas = 0) ?(strategy = O.Log_shipping) (o : O.t) =
  {
    o with
    O.memtable_bytes = 4096;
    wal_sync_writes = true;
    replicas;
    repl_strategy = strategy;
  }

(* A small mixed workload that crosses flush and compaction machinery:
   overwrites, deletes, explicit flush, full compaction, more writes. *)
let run_workload (db : Dyn.dyn) =
  for i = 0 to 299 do
    db.Dyn.d_put
      (Printf.sprintf "key%04d" (i * 7919 mod 120))
      (Printf.sprintf "value-%05d" i)
  done;
  for i = 0 to 19 do
    db.Dyn.d_delete (Printf.sprintf "key%04d" (i * 6))
  done;
  db.Dyn.d_flush ();
  db.Dyn.d_compact_all ();
  for i = 300 to 399 do
    db.Dyn.d_put
      (Printf.sprintf "key%04d" (i * 7919 mod 120))
      (Printf.sprintf "value-%05d" i)
  done

(* (name, content digest) of every file in an environment — the
   byte-identity fingerprint. *)
let fingerprint env =
  List.sort compare (Env.list env)
  |> List.map (fun n ->
         let len = Env.file_size env n in
         (n, Digest.to_hex (Digest.string (Env.peek env n ~pos:0 ~len))))

let entries_of_dyn (db : Dyn.dyn) =
  let it = db.Dyn.d_iterator () in
  let acc = ref [] in
  it.Pdb_kvs.Iter.seek_to_first ();
  while it.Pdb_kvs.Iter.valid () do
    acc := (it.Pdb_kvs.Iter.key (), it.Pdb_kvs.Iter.value ()) :: !acc;
    it.Pdb_kvs.Iter.next ()
  done;
  List.rev !acc

(* ---------- determinism: replication must not perturb the primary ---------- *)

(* The wrapper reads primary files only via uncharged peeks and does all
   mirror work on backup environments, so the primary's file set must be
   byte-identical whether it has 0, 1 or 2 backups. *)
let test_primary_determinism strategy engine () =
  let run replicas =
    let env = Env.create () in
    let db =
      Stores.open_engine ~tweak:(tweak ~replicas ~strategy) ~env engine
    in
    run_workload db;
    let fp = fingerprint env in
    db.Dyn.d_close ();
    fp
  in
  let fp0 = run 0 in
  Alcotest.(check (list (pair string string)))
    "K=1 primary files byte-identical to unreplicated" fp0 (run 1);
  Alcotest.(check (list (pair string string)))
    "K=2 primary files byte-identical to unreplicated" fp0 (run 2)

(* ---------- convergence: a drained backup equals the primary ---------- *)

let test_log_shipping_convergence engine () =
  let h = Stores.open_repl ~tweak:(tweak ~replicas:2 ~strategy:O.Log_shipping) engine in
  run_workload h.Stores.rh_dyn;
  (* flush is forwarded as a control message, draining both memtables *)
  h.Stores.rh_dyn.Dyn.d_flush ();
  let want = entries_of_dyn h.Stores.rh_dyn in
  Alcotest.(check bool) "workload left live keys" true (want <> []);
  for i = 0 to h.Stores.rh_replicas - 1 do
    let promoted = h.Stores.rh_promote i in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "backup %d replayed to the primary's state" i)
      want (entries_of_dyn promoted)
  done;
  let st = h.Stores.rh_dyn.Dyn.d_stats () in
  Alcotest.(check bool) "log bytes shipped" true
    (st.Stats.repl_log_bytes_shipped > 0);
  Alcotest.(check bool) "backups burned replay/compaction CPU" true
    (st.Stats.repl_backup_busy_ns > 0.0);
  h.Stores.rh_dyn.Dyn.d_close ()

let test_file_shipping_convergence engine () =
  let env = Env.create () in
  let h =
    Stores.open_repl ~tweak:(tweak ~replicas:1 ~strategy:O.File_shipping) ~env
      engine
  in
  run_workload h.Stores.rh_dyn;
  h.Stores.rh_dyn.Dyn.d_flush ();
  (* the mirror is a byte-identical copy of the primary's file set *)
  Alcotest.(check (list (pair string string)))
    "mirror file set byte-identical to primary" (fingerprint env)
    (fingerprint (h.Stores.rh_backup_env 0));
  let want = entries_of_dyn h.Stores.rh_dyn in
  let promoted = h.Stores.rh_promote 0 in
  Alcotest.(check (list (pair string string)))
    "promotion over the mirror recovers the primary's state" want
    (entries_of_dyn promoted);
  let st = h.Stores.rh_dyn.Dyn.d_stats () in
  Alcotest.(check bool) "file bytes shipped" true
    (st.Stats.repl_file_bytes_shipped > 0);
  Alcotest.(check (float 0.0)) "no backup compaction CPU under file shipping"
    0.0 st.Stats.repl_backup_busy_ns;
  h.Stores.rh_dyn.Dyn.d_close ()

(* ---------- the ack contract, differentially vs an oracle ---------- *)

let test_ack_differential strategy engine () =
  let h = Stores.open_repl ~tweak:(tweak ~replicas:2 ~strategy) engine in
  let db = h.Stores.rh_dyn in
  let oracle = Hashtbl.create 64 in
  let rng = Pdb_util.Rng.create seed in
  for i = 0 to 499 do
    let k = Printf.sprintf "key%03d" (Pdb_util.Rng.int rng 80) in
    if Pdb_util.Rng.int rng 10 = 0 then begin
      db.Dyn.d_delete k;
      Hashtbl.remove oracle k
    end
    else begin
      let v = Printf.sprintf "v%06d" i in
      db.Dyn.d_put k v;
      Hashtbl.replace oracle k v
    end;
    if i mod 90 = 0 then db.Dyn.d_flush ()
  done;
  for i = 0 to 79 do
    let k = Printf.sprintf "key%03d" i in
    Alcotest.(check (option string))
      (k ^ " matches the oracle through replication")
      (Hashtbl.find_opt oracle k) (db.Dyn.d_get k)
  done;
  let st = db.Dyn.d_stats () in
  Alcotest.(check bool) "acked writes waited on the network" true
    (st.Stats.repl_ack_wait_ns > 0.0);
  Alcotest.(check bool) "messages flowed to both backups" true
    (st.Stats.repl_messages > 0);
  db.Dyn.d_close ()

(* ---------- failover torture ---------- *)

let check_failover strategy engine () =
  let r = Torture.run_failover ~seed ~strategy engine in
  (match r.Torture.failures with
   | [] -> ()
   | fs ->
     List.iter
       (fun (point, msg) ->
         Printf.printf "[%s crash@%d] %s\n" r.Torture.engine point msg)
       fs);
  Alcotest.(check (list (pair int string)))
    "acked writes survive promotion at every crash point" []
    r.Torture.failures;
  Alcotest.(check bool)
    (Printf.sprintf "sweeps >= 50 crash points (got %d)" r.Torture.crash_points)
    true
    (r.Torture.crash_points >= 50)

(* ---------- trace visibility ---------- *)

let test_net_spans_in_trace () =
  let env = Env.create () in
  let tr = Trace.create ~capacity:65536 () in
  Env.set_tracer env tr;
  let h =
    Stores.open_repl
      ~tweak:(tweak ~replicas:1 ~strategy:O.File_shipping)
      ~env Stores.Leveldb
  in
  run_workload h.Stores.rh_dyn;
  h.Stores.rh_dyn.Dyn.d_close ();
  let evs = Trace.events tr in
  let net_spans =
    List.filter (fun e -> e.Trace.cat = "net" && e.Trace.dur_ns > 0.0) evs
  in
  let compaction_spans =
    List.filter (fun e -> e.Trace.cat = "compaction") evs
  in
  Alcotest.(check bool) "net:* spans recorded" true (net_spans <> []);
  Alcotest.(check bool) "net spans live on net:link-<i> lanes" true
    (List.for_all
       (fun e ->
         String.length e.Trace.lane >= 9
         && String.sub e.Trace.lane 0 9 = "net:link-")
       net_spans);
  Alcotest.(check bool) "compaction spans coexist in the same trace" true
    (compaction_spans <> [])

let () =
  Alcotest.run "repl"
    [
      ( "determinism",
        [
          Alcotest.test_case "leveldb log-shipping primary untouched" `Quick
            (test_primary_determinism O.Log_shipping Stores.Leveldb);
          Alcotest.test_case "leveldb file-shipping primary untouched" `Quick
            (test_primary_determinism O.File_shipping Stores.Leveldb);
          Alcotest.test_case "pebblesdb log-shipping primary untouched" `Quick
            (test_primary_determinism O.Log_shipping Stores.Pebblesdb);
          Alcotest.test_case "pebblesdb file-shipping primary untouched" `Quick
            (test_primary_determinism O.File_shipping Stores.Pebblesdb);
        ] );
      ( "convergence",
        [
          Alcotest.test_case "leveldb log shipping" `Quick
            (test_log_shipping_convergence Stores.Leveldb);
          Alcotest.test_case "pebblesdb log shipping" `Quick
            (test_log_shipping_convergence Stores.Pebblesdb);
          Alcotest.test_case "leveldb file shipping" `Quick
            (test_file_shipping_convergence Stores.Leveldb);
          Alcotest.test_case "pebblesdb file shipping" `Quick
            (test_file_shipping_convergence Stores.Pebblesdb);
        ] );
      ( "ack contract",
        [
          Alcotest.test_case "leveldb log shipping" `Quick
            (test_ack_differential O.Log_shipping Stores.Leveldb);
          Alcotest.test_case "pebblesdb file shipping" `Quick
            (test_ack_differential O.File_shipping Stores.Pebblesdb);
        ] );
      ( "failover torture",
        [
          Alcotest.test_case "leveldb log shipping" `Slow
            (check_failover O.Log_shipping Stores.Leveldb);
          Alcotest.test_case "leveldb file shipping" `Slow
            (check_failover O.File_shipping Stores.Leveldb);
          Alcotest.test_case "pebblesdb log shipping" `Slow
            (check_failover O.Log_shipping Stores.Pebblesdb);
          Alcotest.test_case "pebblesdb file shipping" `Slow
            (check_failover O.File_shipping Stores.Pebblesdb);
        ] );
      ( "trace",
        [
          Alcotest.test_case "net spans alongside compaction lanes" `Quick
            test_net_spans_in_trace;
        ] );
    ]
