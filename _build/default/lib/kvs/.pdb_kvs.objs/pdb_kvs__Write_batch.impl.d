lib/kvs/write_batch.ml: Buffer Int64 List Pdb_util Printf String
