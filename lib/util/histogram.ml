(** Value histograms with percentile queries.

    Used by the benchmark harness (e.g. Table 5.1's sstable size
    distribution) and by latency reporting.  Values are stored exactly and
    sorted lazily; suitable for the dataset sizes in this reproduction. *)

type t = {
  mutable values : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { values = Array.make 64 0.0; len = 0; sorted = true }

let clear t =
  t.len <- 0;
  t.sorted <- true

(** [add t v] records one observation. *)
let add t v =
  if t.len = Array.length t.values then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.values 0 bigger 0 t.len;
    t.values <- bigger
  end;
  t.values.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

(* In-place heapsort of the live prefix [0, len) with [Float.compare] —
   no copy, no polymorphic compare, and the stale tail beyond [len]
   (left by growth or [clear]) never participates. *)
let ensure_sorted t =
  if not t.sorted then begin
    let a = t.values and n = t.len in
    let swap i j =
      let v = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- v
    in
    let rec sift_down i n =
      let l = (2 * i) + 1 in
      if l < n then begin
        let c =
          if l + 1 < n && Float.compare a.(l + 1) a.(l) > 0 then l + 1 else l
        in
        if Float.compare a.(c) a.(i) > 0 then begin
          swap c i;
          sift_down c n
        end
      end
    in
    for i = (n / 2) - 1 downto 0 do
      sift_down i n
    done;
    for k = n - 1 downto 1 do
      swap 0 k;
      sift_down 0 k
    done;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.values.(i)
    done;
    !sum /. float_of_int t.len
  end

(** [percentile t p] is the [p]-th percentile ([0 <= p <= 100]) using
    nearest-rank; 0 when empty. *)
let percentile t p =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    let idx = max 0 (min (t.len - 1) (rank - 1)) in
    t.values.(idx)
  end

let median t = percentile t 50.0
let max_value t = percentile t 100.0

let min_value t =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    t.values.(0)
  end

let sum t =
  let s = ref 0.0 in
  for i = 0 to t.len - 1 do
    s := !s +. t.values.(i)
  done;
  !s
