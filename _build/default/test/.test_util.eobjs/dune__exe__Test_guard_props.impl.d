test/test_guard_props.ml: Alcotest Array Bytes List Pdb_kvs Pdb_simio Pdb_sstable Pdb_util Pebblesdb QCheck QCheck_alcotest String
