(** Write batches: an ordered group of puts/deletes applied atomically.

    The batch's serialised form is also the WAL record payload, so
    recovery replays batches exactly. *)

type op = Put of string * string | Delete of string

type t

val create : unit -> t
val put : t -> string -> string -> unit
val delete : t -> string -> unit
val count : t -> int

(** User-data volume in the batch (keys + values) — the denominator of
    write amplification. *)
val payload_bytes : t -> int

(** [mark_bulk t] tags the batch as an internal bulk move (e.g. a shard
    migration copy): engines charge the per-request software overhead
    once for the whole batch instead of once per entry — the entries
    already paid it when the user first wrote them.  The tag is
    process-local; it does not survive WAL encoding (replay is its own
    request). *)
val mark_bulk : t -> unit

val is_bulk : t -> bool

(** Operations in insertion order. *)
val ops : t -> op list

val iter : t -> (op -> unit) -> unit

(** [encode t ~base_seq] serialises the batch; operation [i] carries
    sequence number [base_seq + i]. *)
val encode : t -> base_seq:int -> string

(** [decode s] recovers [(batch, base_seq)].
    @raise Invalid_argument on malformed input. *)
val decode : string -> t * int
