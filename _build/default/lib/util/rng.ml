(** Deterministic, seedable pseudo-random number generator.

    Every randomized component in this repository (guard selection aside,
    which is hash-based) draws from an explicit [Rng.t] so that experiments
    and property tests are reproducible.  The generator is splitmix64, which
    has good statistical quality for simulation purposes and needs only one
    word of state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: returns a uniformly distributed 64-bit value. *)
let next64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is a uniform integer in [\[0, bound)]. Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

(** [float t] is a uniform float in [\[0, 1)]. *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

(** [bytes t n] is a string of [n] uniformly random bytes. *)
let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))

(** [alpha t n] is a string of [n] random lowercase letters — convenient for
    printable test values. *)
let alpha t n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))

(** [shuffle t a] permutes array [a] in place (Fisher-Yates). *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
