(** Parallel-probe budget: overlapped IO for multi-table probes.

    Modern flash devices serve several outstanding reads concurrently
    (Didona et al., "Tree Structures on Flash SSDs"); an LSM read that
    must consult several sstables — the tables of an FLSM guard on a
    seek, the overlapping runs of a tiered level on a get, the per-level
    first positioning of a merged iterator — can issue those probes in
    parallel up to the device's internal queue depth.  PebblesDB's
    parallel seeks (§4.2) are the special case of one guard on the last
    level; this module generalises it into a per-device budget any
    multi-table probe can draw from.

    Model: a probe {e session} brackets one logical multi-table probe.
    Each member probe runs serially in the simulation and its device
    time is measured; when the session finishes, the probes are packed
    onto [budget] lanes (longest-processing-time first) and the device
    is refunded down to the resulting makespan plus a 0.5x queueing
    share of the overlap — overlapped IO is fast but not free.  Modeled
    CPU work is charged through a separate accumulator and therefore
    stays serialised, exactly as {!Fg_lanes} treats commit groups.

    Sessions never nest: a probe opened inside an active session folds
    its member costs into the outer session, so a cross-level seek
    overlaps {e all} table positionings of the whole read, not each
    guard separately. *)

type ctx
(** Per-store probe context: clock, budget source, optional tracer. *)

(** [create_ctx ~clock ~budget ~tracer ()] builds a context.  [budget]
    and [tracer] are read at session-finish time so device-profile
    changes and late tracer attachment take effect immediately;
    [budget () <= 1] disables overlap (serial probes). *)
val create_ctx :
  clock:Clock.t ->
  budget:(unit -> int) ->
  tracer:(unit -> Trace.t option) ->
  unit ->
  ctx

(** [with_session ctx ~label f] runs [f] inside a probe session (reusing
    the active one when nested) and applies the overlap refund when the
    outermost session closes.  With a tracer attached, sessions covering
    more than one probe emit a ["probe:<label>"] span carrying the
    serial and overlapped costs. *)
val with_session : ctx -> label:string -> (unit -> 'a) -> 'a

(** [measure ctx f] runs [f], recording its device-lane cost into the
    active session; outside any session it is just [f ()]. *)
val measure : ctx -> (unit -> 'a) -> 'a

(** [makespan ~lanes costs] is the finish time of packing [costs] onto
    [lanes] parallel lanes, longest first (exposed for tests). *)
val makespan : lanes:int -> float list -> float
