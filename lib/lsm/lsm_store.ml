(** Baseline log-structured merge-tree store (LevelDB-style leveled
    compaction, §2.2).

    This is the stand-in for the paper's LevelDB / RocksDB / HyperLevelDB
    baselines; the three are instances of this engine under different
    {!Pdb_kvs.Options} profiles.  Under the default [leveled] policy the
    engine maintains the classical LSM invariant — every level >= 1 holds
    sstables with disjoint key ranges — and therefore pays the classical
    price: compacting a level rewrites the overlapping sstables of the
    next level, which is the root cause of LSM write amplification that
    FLSM removes.

    Compaction decisions are delegated to a first-class
    {!Pdb_compaction.Policy} value: the same engine also runs [tiered]
    (each level >= 1 holds several overlapping sorted runs, kept
    newest-first like L0 and merged wholesale on trigger) and
    [lazy_leveled] (tiered everywhere except the last level).  Because
    every tiered policy uses whole-level victims, a run resident in a
    tiered level is strictly newer than any run below it that shares
    keys, so newest-first probing stays correct (the L0 argument,
    generalised).  The [flsm_guarded] policy needs guard state and lives
    in the FLSM engine. *)

module Ik = Pdb_kvs.Internal_key
module Iter = Pdb_kvs.Iter
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Device = Pdb_simio.Device
module Table = Pdb_sstable.Table
module Wal = Pdb_wal.Wal
module Manifest = Pdb_manifest.Manifest
module Job = Pdb_compaction.Job
module Scheduler = Pdb_compaction.Scheduler
module Policy = Pdb_compaction.Policy
module Sched = Pdb_simio.Sched
module Bp = Pdb_kvs.Backpressure

type t = {
  opts : O.t;
  policy : Policy.t;
  env : Env.t;
  dir : string;
  clock : Clock.t;
  sched : Scheduler.t; (* shared background-compaction scheduler *)
  bp : Bp.t; (* shared write-throttling controller (Backpressure) *)
  stats : Pdb_kvs.Engine_stats.t;
  probe : Pdb_simio.Probe.ctx; (* parallel-probe budget sessions *)
  table_cache : Pdb_sstable.Table_cache.t;
  block_cache : Pdb_sstable.Block_cache.t;
  mutable mem : Pdb_kvs.Memtable.t;
  mutable wal : Wal.Writer.t;
  mutable wal_number : int;
  mutable manifest : Manifest.t;
  mutable next_file : int;
  mutable last_seq : int;
  levels : Table.meta list array;
      (* level 0: newest first (descending file number); levels >= 1:
         leveled layout = ascending by smallest key, disjoint ranges;
         tiered layout = newest first, runs may overlap *)
  compact_pointer : string array; (* round-robin pick cursor per level *)
  mutable obsolete : string list; (* files awaiting deletion *)
  snapshots : Pdb_kvs.Snapshots.t;
  mutable consecutive_seeks : int;
  mutable closed : bool;
}

let log_name dir n = Printf.sprintf "%s/%06d.log" dir n

let new_file_number t =
  let n = t.next_file in
  t.next_file <- n + 1;
  n

let charge_cpu t ns = Clock.advance_cpu t.clock ns

let user_range_overlap (m : Table.meta) key =
  String.compare (Ik.user_key m.Table.smallest) key <= 0
  && String.compare key (Ik.user_key m.Table.largest) <= 0

(* ---------- policy-dependent level layout ---------- *)

let last_level opts = opts.O.max_levels - 1

(* [tiered_layout ~policy ~opts level]: does [level] (>= 1) hold
   overlapping runs (tiering) rather than one sorted run (leveling)? *)
let tiered_layout ~policy ~opts level =
  level >= 1
  && Policy.(
       policy.layout ~level ~last_level:(last_level opts) = Tiered_runs)

let tiered_level t level = tiered_layout ~policy:t.policy ~opts:t.opts level

let sort_newest_first files =
  List.sort
    (fun (a : Table.meta) (b : Table.meta) ->
      Int.compare b.Table.number a.Table.number)
    files

let sort_by_smallest files =
  List.sort
    (fun (a : Table.meta) (b : Table.meta) ->
      Ik.compare a.Table.smallest b.Table.smallest)
    files

(* canonical resident order of a level under the active policy *)
let sort_for_level ~policy ~opts level files =
  if level = 0 || tiered_layout ~policy ~opts level then
    sort_newest_first files
  else sort_by_smallest files

(* ---------- obsolete-file garbage collection ---------- *)

(* Files are deleted lazily at the next mutating operation, so that open
   iterators (which are invalidated, not protected, by writes — as
   documented in Store_intf) never read a vanished file. *)
(* Superseded files stay pinned while snapshots are live. *)
let gc_obsolete t =
  if Pdb_kvs.Snapshots.is_empty t.snapshots then begin
    List.iter
      (fun name ->
        (* drop the dead file's decoded blocks with it: they can never
           hit again and would squat in the shared LRU *)
        Pdb_sstable.Block_cache.evict_file t.block_cache ~file:name;
        Env.delete t.env name)
      t.obsolete;
    t.obsolete <- []
  end

(* Foreground trace instants (WAL rotations, group commits), stamped at
   the clock's current modeled time; no-ops without an attached tracer. *)
let trace_instant t ?(args = []) ~name ~cat () =
  match Env.tracer t.env with
  | Some tr ->
    Pdb_simio.Trace.instant tr ~args ~name ~cat ~lane:"foreground"
      ~ts_ns:(Clock.elapsed_ns (Clock.snapshot t.clock))
      ()
  | None -> ()

(* ---------- recovery ---------- *)

(* Replay a list of version edits into mutable local state; shared with the
   FLSM engine's recovery shape. *)
let apply_edit ~levels ~wal_number ~next_file ~last_seq (e : Manifest.edit) =
  (match e.Manifest.log_number with
   | Some n -> wal_number := n
   | None -> ());
  (match e.Manifest.next_file_number with
   | Some n -> next_file := max !next_file n
   | None -> ());
  (match e.Manifest.last_sequence with
   | Some n -> last_seq := max !last_seq n
   | None -> ());
  List.iter
    (fun (level, number) ->
      levels.(level) <-
        List.filter (fun (m : Table.meta) -> m.Table.number <> number)
          levels.(level))
    e.Manifest.deleted_files;
  List.iter
    (fun (level, meta) -> levels.(level) <- meta :: levels.(level))
    e.Manifest.added_files

let normalize_levels ~policy ~opts levels =
  for i = 0 to Array.length levels - 1 do
    levels.(i) <- sort_for_level ~policy ~opts i levels.(i)
  done

(* Snapshot the whole state as a single edit (written to a fresh MANIFEST
   on every open, as LevelDB does).  Built from recovery-local components
   so the edit can be installed atomically with the MANIFEST itself. *)
let snapshot_edit ~levels ~log_number ~next_file ~last_seq =
  let e = Manifest.empty_edit () in
  e.Manifest.log_number <- Some log_number;
  e.Manifest.next_file_number <- Some next_file;
  e.Manifest.last_sequence <- Some last_seq;
  e.Manifest.added_files <-
    List.concat
      (List.mapi
         (fun level files -> List.map (fun m -> (level, m)) (List.rev files))
         (Array.to_list levels));
  e

(* Replay the WAL numbered [wal_number] into [mem]; returns the highest
   sequence number seen and the reader's recovery report, extended with
   any well-framed records whose batch payload failed to decode — those
   are counted as rejected, never silently skipped.  The log file is
   left in place — it may be deleted only once its contents are durable
   elsewhere (the re-logged fresh WAL installed by open). *)
let replay_wal env ~dir ~wal_number ~mem ~last_seq =
  let name = log_name dir wal_number in
  let seq_max = ref last_seq in
  if Env.exists env name then begin
    let records, report = Wal.Reader.read_all env name in
    let rejected = ref 0 and rejected_bytes = ref 0 in
    List.iter
      (fun record ->
        match Pdb_kvs.Write_batch.decode record with
        | exception Invalid_argument _ ->
          incr rejected;
          rejected_bytes := !rejected_bytes + String.length record
        | batch, base_seq ->
          let seq = ref base_seq in
          Pdb_kvs.Write_batch.iter batch (fun op ->
              (match op with
               | Pdb_kvs.Write_batch.Put (k, v) ->
                 Pdb_kvs.Memtable.add mem ~seq:!seq ~kind:Ik.Value ~user_key:k
                   ~value:v
               | Pdb_kvs.Write_batch.Delete k ->
                 Pdb_kvs.Memtable.add mem ~seq:!seq ~kind:Ik.Deletion
                   ~user_key:k ~value:"");
              incr seq);
          seq_max := max !seq_max (!seq - 1))
      records;
    (!seq_max, Some (report, !rejected, !rejected_bytes))
  end
  else (!seq_max, None)

(* Write the recovered memtable back into a fresh WAL, one record per
   entry so each keeps its original sequence number.  Recovery must never
   leave a window in which acked data exists only in a file the new
   MANIFEST no longer names. *)
let relog_memtable wal mem =
  if not (Pdb_kvs.Memtable.is_empty mem) then begin
    List.iter
      (fun (ik, v) ->
        let b = Pdb_kvs.Write_batch.create () in
        (match Ik.kind ik with
         | Ik.Value -> Pdb_kvs.Write_batch.put b (Ik.user_key ik) v
         | Ik.Deletion -> Pdb_kvs.Write_batch.delete b (Ik.user_key ik));
        Wal.Writer.add_record wal
          (Pdb_kvs.Write_batch.encode b ~base_seq:(Ik.seq ik)))
      (Pdb_kvs.Memtable.contents mem);
    Wal.Writer.sync wal
  end

(* ---------- flush (memtable -> level-0 sstable) ---------- *)

let build_table_from_iter t ~iter ~level:_ =
  let number = new_file_number t in
  let builder =
    Table.Builder.create t.env ~dir:t.dir ~number
      ~prefix_bloom_len:t.opts.O.prefix_bloom_len
      ~block_bytes:t.opts.O.block_bytes ~bloom:t.opts.O.sstable_bloom
      ~expected_keys:
        (max 16 (t.opts.O.memtable_bytes / 64) (* rough per-key estimate *))
  in
  iter (fun ikey value ->
      Table.Builder.add builder ikey value;
      Clock.advance t.clock t.opts.O.cpu_per_merge_entry_ns);
  Table.Builder.finish builder

let rec flush_memtable t =
  if not (Pdb_kvs.Memtable.is_empty t.mem) then begin
    let mem = t.mem in
    (* the flush is a background job: the scheduler runs it immediately
       (a full memtable gates the triggering write) and places its
       device time on a worker lane *)
    let meta = ref None in
    Scheduler.run_now t.sched
      {
        Job.key = "flush";
        trigger = Job.Memtable_full;
        estimated_bytes = Pdb_kvs.Memtable.approximate_bytes mem;
        footprint = Sched.full_range ~level_lo:0 ~level_hi:0;
        run =
          (fun () ->
            meta :=
              build_table_from_iter t ~level:0 ~iter:(fun f ->
                  List.iter
                    (fun (ik, v) -> f ik v)
                    (Pdb_kvs.Memtable.contents mem)));
      };
    let meta = !meta in
    (match meta with
     | Some meta ->
       t.levels.(0) <- meta :: t.levels.(0);
       t.stats.Pdb_kvs.Engine_stats.flushes <-
         t.stats.Pdb_kvs.Engine_stats.flushes + 1;
       t.stats.Pdb_kvs.Engine_stats.sstables_built <-
         t.stats.Pdb_kvs.Engine_stats.sstables_built + 1
     | None -> ());
    (* rotate WAL — crash-safe order: open the new log, commit the
       manifest edit that names it (and the flushed table), and only then
       retire the old log.  Deleting first would leave a window where the
       memtable's data exists in no durable file the MANIFEST names. *)
    let old_log = t.wal_number in
    let new_log = new_file_number t in
    t.wal <- Wal.Writer.create t.env (log_name t.dir new_log);
    t.wal_number <- new_log;
    t.mem <- Pdb_kvs.Memtable.create ();
    let e = Manifest.empty_edit () in
    e.Manifest.log_number <- Some new_log;
    e.Manifest.next_file_number <- Some t.next_file;
    e.Manifest.last_sequence <- Some t.last_seq;
    (match meta with
     | Some m -> e.Manifest.added_files <- [ (0, m) ]
     | None -> ());
    Manifest.append t.manifest e;
    Env.delete t.env (log_name t.dir old_log);
    trace_instant t ~name:"wal-rotate" ~cat:"wal"
      ~args:
        [
          ("old", string_of_int old_log); ("new", string_of_int new_log);
        ]
      ();
    maybe_compact t
  end

(* ---------- compaction ---------- *)

and level_bytes t level =
  List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.file_size) 0
    t.levels.(level)

and level_state t level =
  {
    Policy.level;
    last_level = last_level t.opts;
    files = List.length t.levels.(level);
    bytes = level_bytes t level;
    max_bytes = O.level_max_bytes t.opts (max 1 level);
    file_trigger = t.opts.O.l0_compaction_trigger;
  }

and compaction_score t level = t.policy.Policy.score (level_state t level)

and pick_inputs t level =
  match t.policy.Policy.victims (level_state t level) with
  | Policy.All_files ->
    (* tiering: the whole level merges wholesale into one new run *)
    t.levels.(level)
  | Policy.Guard_pick ->
    (* guard state lives in the FLSM engine; rejected at open *)
    assert false
  | Policy.Oldest_overlap_closure -> pick_l0_closure t
  | Policy.Round_robin -> pick_round_robin t level

and pick_l0_closure t =
  begin
    (* the oldest L0 file plus every L0 file overlapping it (LevelDB's
       rule).  On sequential fills the L0 files are disjoint, so this
       selects a single file and enables the trivial-move fast path. *)
    match List.rev t.levels.(0) with
    | [] -> []
    | oldest :: _ ->
      let lo = ref (Ik.user_key oldest.Table.smallest)
      and hi = ref (Ik.user_key oldest.Table.largest) in
      (* grow the range transitively over overlapping files *)
      let changed = ref true in
      let selected = ref [ oldest ] in
      while !changed do
        changed := false;
        List.iter
          (fun (m : Table.meta) ->
            if
              not
                (List.exists
                   (fun (s : Table.meta) -> s.Table.number = m.Table.number)
                   !selected)
              && not
                   (String.compare (Ik.user_key m.Table.largest) !lo < 0
                    || String.compare (Ik.user_key m.Table.smallest) !hi > 0)
            then begin
              selected := m :: !selected;
              if String.compare (Ik.user_key m.Table.smallest) !lo < 0 then
                lo := Ik.user_key m.Table.smallest;
              if String.compare (Ik.user_key m.Table.largest) !hi > 0 then
                hi := Ik.user_key m.Table.largest;
              changed := true
            end)
          t.levels.(0)
      done;
      !selected
  end

and pick_round_robin t level =
  begin
    (* round-robin: first [compaction_pick_files] files after the pointer *)
    let files = t.levels.(level) in
    let after =
      List.filter
        (fun (m : Table.meta) ->
          String.compare
            (Ik.user_key m.Table.largest)
            t.compact_pointer.(level)
          > 0)
        files
    in
    let pool = if after = [] then files else after in
    (* a first pick that overlaps nothing below is a trivial move; widening
       it to [compaction_pick_files] would throw the fast path away *)
    (match pool with
     | first :: _
       when overlapping_files t (level + 1)
              ~smallest:(Ik.user_key first.Table.smallest)
              ~largest:(Ik.user_key first.Table.largest)
            = [] ->
       [ first ]
     | _ ->
       let rec take n = function
         | [] -> []
         | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
       in
       take t.opts.O.compaction_pick_files pool)
  end

and overlapping_files t level ~smallest ~largest =
  List.filter
    (fun (m : Table.meta) ->
      not
        (String.compare (Ik.user_key m.Table.largest) smallest < 0
         || String.compare (Ik.user_key m.Table.smallest) largest > 0))
    t.levels.(level)

and input_user_range inputs =
  let smallest =
    List.fold_left
      (fun acc (m : Table.meta) ->
        let s = Ik.user_key m.Table.smallest in
        if acc = "" || String.compare s acc < 0 then s else acc)
      "" inputs
  in
  let largest =
    List.fold_left
      (fun acc (m : Table.meta) ->
        let l = Ik.user_key m.Table.largest in
        if String.compare l acc > 0 then l else acc)
      "" inputs
  in
  (smallest, largest)

(* Merge [inputs_lo] (level) and [inputs_hi] (level+1) into new tables for
   level+1.  Runs inside the background lane.

   [drop_tombstones] is sound only when the merge reaches the last level
   AND consumes every target file overlapping the inputs' range: a
   tiered append that leaves sibling runs in place must keep tombstones,
   or deleted keys in those runs would resurrect.

   [single_output] builds one table regardless of size: a run stacked
   onto a tiered level must stay one file, because tiered levels count
   files as runs (the run-count trigger) and order them by recency. *)
and run_merge t ~inputs_lo ~inputs_hi ~drop_tombstones ~single_output =
  let scratch =
    Pdb_sstable.Block_cache.create ~capacity:(8 * t.opts.O.block_bytes)
  in
  let iter_of_meta m =
    (* bypass the table cache: compaction streams its inputs sequentially
       and must not evict hot read-path tables *)
    let reader =
      Table.open_reader ~hint:Device.Sequential_read t.env ~dir:t.dir m
    in
    Table.iterator reader ~cache:scratch ~hint:Device.Sequential_read
  in
  let children = List.map iter_of_meta (inputs_lo @ inputs_hi) in
  let merged = Pdb_kvs.Merging_iter.create ~compare:Ik.compare children in
  let outputs = ref [] in
  let builder = ref None in
  let expected_keys = max 16 (t.opts.O.sstable_target_bytes / 64) in
  let get_builder () =
    match !builder with
    | Some b -> b
    | None ->
      let b =
        Table.Builder.create t.env ~dir:t.dir ~number:(new_file_number t)
          ~prefix_bloom_len:t.opts.O.prefix_bloom_len
          ~block_bytes:t.opts.O.block_bytes ~bloom:t.opts.O.sstable_bloom
          ~expected_keys
      in
      builder := Some b;
      b
  in
  let finish_builder () =
    match !builder with
    | None -> ()
    | Some b ->
      (match Table.Builder.finish b with
       | Some meta -> outputs := meta :: !outputs
       | None -> ());
      builder := None
  in
  (* previous entry seen for the current user key: (key, its seq) *)
  let last_entry = ref None in
  merged.Iter.seek_to_first ();
  while merged.Iter.valid () do
    let ikey = merged.Iter.key () in
    let uk = Ik.user_key ikey in
    let cur_seq = Ik.seq ikey in
    Clock.advance t.clock t.opts.O.cpu_per_merge_entry_ns;
    let drop =
      (match !last_entry with
       | Some (prev, prev_seq) when String.equal prev uk ->
         (* superseded version: droppable only when the newer version is
            visible to every live snapshot *)
         Pdb_kvs.Snapshots.droppable t.snapshots ~prev_seq:(Some prev_seq)
           ~last_seq:t.last_seq
       | _ ->
         (* tombstones die when they reach the bottom level, unless a
            snapshot still needs them *)
         drop_tombstones
         && Ik.kind ikey = Ik.Deletion
         && Pdb_kvs.Snapshots.tombstone_droppable t.snapshots ~seq:cur_seq
              ~last_seq:t.last_seq)
    in
    last_entry := Some (uk, cur_seq);
    if not drop then begin
      let b = get_builder () in
      Table.Builder.add b ikey (merged.Iter.value ());
      if
        (not single_output)
        && Table.Builder.estimated_size b >= t.opts.O.sstable_target_bytes
      then finish_builder ()
    end;
    merged.Iter.next ()
  done;
  finish_builder ();
  List.rev !outputs

and install_compaction t ~level ~inputs_lo ~inputs_hi ~outputs =
  let target = level + 1 in
  (* update in-memory levels *)
  let in_lo = List.map (fun (m : Table.meta) -> m.Table.number) inputs_lo in
  let in_hi = List.map (fun (m : Table.meta) -> m.Table.number) inputs_hi in
  t.levels.(level) <-
    List.filter
      (fun (m : Table.meta) -> not (List.mem m.Table.number in_lo))
      t.levels.(level);
  t.levels.(target) <-
    sort_for_level ~policy:t.policy ~opts:t.opts target
      (outputs
       @ List.filter
           (fun (m : Table.meta) -> not (List.mem m.Table.number in_hi))
           t.levels.(target));
  (* manifest edit *)
  let e = Manifest.empty_edit () in
  e.Manifest.next_file_number <- Some t.next_file;
  e.Manifest.deleted_files <-
    List.map (fun n -> (level, n)) in_lo
    @ List.map (fun n -> (target, n)) in_hi;
  e.Manifest.added_files <- List.map (fun m -> (target, m)) outputs;
  Manifest.append t.manifest e;
  (* retire inputs *)
  List.iter
    (fun (m : Table.meta) ->
      Pdb_sstable.Table_cache.evict t.table_cache m.Table.number;
      t.obsolete <- Table.file_name ~dir:t.dir m.Table.number :: t.obsolete)
    (inputs_lo @ inputs_hi);
  (* stats *)
  let bytes_of = List.fold_left (fun a (m : Table.meta) -> a + m.Table.file_size) 0 in
  let st = t.stats in
  st.Pdb_kvs.Engine_stats.compactions <-
    st.Pdb_kvs.Engine_stats.compactions + 1;
  st.Pdb_kvs.Engine_stats.compaction_bytes_read <-
    st.Pdb_kvs.Engine_stats.compaction_bytes_read
    + bytes_of inputs_lo + bytes_of inputs_hi;
  st.Pdb_kvs.Engine_stats.compaction_bytes_written <-
    st.Pdb_kvs.Engine_stats.compaction_bytes_written + bytes_of outputs;
  st.Pdb_kvs.Engine_stats.sstables_built <-
    st.Pdb_kvs.Engine_stats.sstables_built + List.length outputs

and compact_level t level =
  let inputs_lo = pick_inputs t level in
  if inputs_lo <> [] then begin
    let smallest, largest = input_user_range inputs_lo in
    let target = level + 1 in
    (* output placement: a merging policy rewrites the overlapping target
       files; a stacking policy (tiering) appends beside them *)
    let merges_target =
      t.policy.Policy.output_merges_target ~target
        ~last_level:(last_level t.opts)
    in
    let inputs_hi =
      if merges_target then overlapping_files t target ~smallest ~largest
      else []
    in
    (* record the round-robin cursor *)
    if level > 0 then t.compact_pointer.(level) <- largest;
    match (inputs_lo, inputs_hi) with
    | [ single ], [] ->
      (* trivial move: sequential workloads produce disjoint sstables that
         LSM moves between levels by metadata alone — the case where LSM
         beats FLSM (§5.2 "Sequential Writes").  Safe under tiering too:
         whole-level victims make the single run the entire source level,
         so it is newer than every run already resident in the target. *)
      t.levels.(level) <-
        List.filter
          (fun (m : Table.meta) -> m.Table.number <> single.Table.number)
          t.levels.(level);
      t.levels.(target) <-
        sort_for_level ~policy:t.policy ~opts:t.opts target
          (single :: t.levels.(target));
      let e = Manifest.empty_edit () in
      e.Manifest.deleted_files <- [ (level, single.Table.number) ];
      e.Manifest.added_files <- [ (target, single) ];
      Manifest.append t.manifest e
    | _ ->
      (* the caller (a scheduler-drained job) is already on the
         background lane *)
      let drop_tombstones = merges_target && target >= last_level t.opts in
      let outputs =
        run_merge t ~inputs_lo ~inputs_hi ~drop_tombstones
          ~single_output:(not merges_target)
      in
      install_compaction t ~level ~inputs_lo ~inputs_hi ~outputs
  end

(* Footprint of a level -> level+1 compaction: the union key range of the
   level's files.  The actual inputs are picked when the job runs; the
   whole-level range is a sound over-approximation — and an honest one:
   leveled compactions span wide ranges, which is exactly why they
   serialise on the worker timelines where FLSM's guard jobs overlap. *)
and level_footprint t level =
  match t.levels.(level) with
  | [] -> Sched.full_range ~level_lo:level ~level_hi:(level + 1)
  | files ->
    let smallest, largest = input_user_range files in
    {
      Sched.level_lo = level;
      level_hi = level + 1;
      key_lo = smallest;
      key_hi = Some (largest ^ "\x00") (* inclusive -> exclusive bound *);
    }

and submit_level_job t ~blocked level =
  let trigger = if level = 0 then Job.L0_files else Job.Level_size in
  ignore
    (Scheduler.submit t.sched
       {
         Job.key = Printf.sprintf "%s:%d" (Job.trigger_name trigger) level;
         trigger;
         estimated_bytes = level_bytes t level;
         footprint = level_footprint t level;
         run =
           (fun () ->
             (* re-check: an earlier job in this round's queue may have
                already relieved (or blocked) this level *)
             if
               (not (Hashtbl.mem blocked level))
               && Policy.should_trigger (compaction_score t level)
             then compact_level t level);
       })

and maybe_compact t =
  (* Round-based: enqueue a job for every level over threshold, drain
     the queue, re-examine.  A level whose job made no progress is
     blocked for the rest of this invocation. *)
  let blocked = Hashtbl.create 4 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let submitted = ref [] in
    for level = 0 to t.opts.O.max_levels - 2 do
      if
        (not (Hashtbl.mem blocked level))
        && Policy.should_trigger (compaction_score t level)
      then begin
        submit_level_job t ~blocked level;
        submitted :=
          (level, (List.length t.levels.(level), level_bytes t level))
          :: !submitted
      end
    done;
    if !submitted <> [] then begin
      Scheduler.drain t.sched;
      List.iter
        (fun (level, before) ->
          let now = (List.length t.levels.(level), level_bytes t level) in
          if now = before then Hashtbl.replace blocked level ())
        !submitted;
      continue_ := true
    end
  done

(* ---------- open / close ---------- *)

let open_store ?block_cache (opts : O.t) ~env ~dir =
  (match opts.O.compaction_policy with
   | O.Flsm_guarded ->
     invalid_arg
       "Lsm_store.open_store: the flsm_guarded policy needs guard state \
        (use the pebblesdb engine)"
   | O.Leveled | O.Tiered | O.Lazy_leveled -> ());
  let policy = Policy.of_options opts in
  (* recover the previous shape before touching any file *)
  let levels = Array.make opts.O.max_levels [] in
  let wal_number = ref 0 and next_file = ref 1 and last_seq = ref 0 in
  let mem = Pdb_kvs.Memtable.create () in
  let wal_report = ref None in
  (match Manifest.recover env ~dir with
   | Some (_, edits) ->
     List.iter (apply_edit ~levels ~wal_number ~next_file ~last_seq) edits;
     normalize_levels ~policy ~opts levels;
     let seq, report =
       replay_wal env ~dir ~wal_number:!wal_number ~mem ~last_seq:!last_seq
     in
     last_seq := seq;
     wal_report := report
   | None -> ());
  (* Crash-safe install sequence: (1) write the recovered memtable into a
     fresh WAL, (2) install a fresh MANIFEST whose snapshot edit names that
     WAL — written before the CURRENT switch, so the install is atomic —
     then (3) retire the replayed WAL and any stale files.  An injected
     crash between any two steps recovers to the same state: until CURRENT
     flips, the old MANIFEST still names the old WAL. *)
  let new_log = !next_file in
  incr next_file;
  let manifest_number = !next_file in
  incr next_file;
  let wal = Wal.Writer.create env (log_name dir new_log) in
  relog_memtable wal mem;
  let snap =
    snapshot_edit ~levels ~log_number:new_log ~next_file:!next_file
      ~last_seq:!last_seq
  in
  let manifest = Manifest.create env ~dir ~number:manifest_number ~edits:[ snap ] in
  let t =
    {
      opts;
      policy;
      env;
      dir;
      clock = Env.clock env;
      sched =
        Scheduler.create ~env ~clock:(Env.clock env)
          ~flush_lanes:(if opts.O.flush_reserved_lane then 1 else 0)
          ~workers:opts.O.compaction_threads ();
      bp = Bp.create opts;
      stats = Pdb_kvs.Engine_stats.create ();
      probe =
        Pdb_simio.Probe.create_ctx ~clock:(Env.clock env)
          ~budget:(fun () ->
            match opts.O.probe_budget_override with
            | Some b -> b
            | None -> (Env.device env).Device.parallel_probe_budget)
          ~tracer:(fun () -> Env.tracer env)
          ();
      table_cache =
        Pdb_sstable.Table_cache.create ?bytes:opts.O.table_cache_bytes
          ~summary_stride:opts.O.index_summary_stride env ~dir
          ~entries:opts.O.table_cache_entries;
      block_cache =
        (match block_cache with
         | Some cache -> cache  (* shared with the caller's other shards *)
         | None ->
           Pdb_sstable.Block_cache.create ~capacity:opts.O.block_cache_bytes);
      mem;
      wal;
      wal_number = new_log;
      manifest;
      next_file = !next_file;
      last_seq = !last_seq;
      levels;
      compact_pointer = Array.make opts.O.max_levels "";
      obsolete = [];
      snapshots = Pdb_kvs.Snapshots.create ();
      consecutive_seeks = 0;
      closed = false;
    }
  in
  (match !wal_report with
   | Some ((r : Wal.Reader.report), rejected, rejected_bytes) ->
     t.stats.Pdb_kvs.Engine_stats.wal_records_recovered <-
       r.Wal.Reader.records_read - rejected;
     t.stats.Pdb_kvs.Engine_stats.wal_bytes_dropped <-
       r.Wal.Reader.bytes_dropped + rejected_bytes;
     t.stats.Pdb_kvs.Engine_stats.wal_batches_rejected <- rejected
   | None -> ());
  Manifest.cleanup_stale env ~dir ~live_log_number:new_log
    ~live_manifest:(Manifest.file_name t.manifest);
  (* a recovered memtable may already exceed its budget *)
  if Pdb_kvs.Memtable.approximate_bytes t.mem >= t.opts.O.memtable_bytes then
    flush_memtable t;
  t

let close t =
  t.closed <- true;
  gc_obsolete t;
  Wal.Writer.close t.wal

let options t = t.opts
let env t = t.env
let compaction_scheduler t = t.sched
let backpressure t = t.bp

(* mirror the scheduler's counters into the engine stats on read *)
let stats t =
  let st = t.stats in
  let s = Scheduler.stats t.sched in
  st.Pdb_kvs.Engine_stats.compaction_jobs <- s.Scheduler.jobs_run;
  st.Pdb_kvs.Engine_stats.compaction_queue_peak <- s.Scheduler.queue_peak;
  st.Pdb_kvs.Engine_stats.compaction_backlog_peak_bytes <-
    s.Scheduler.backlog_peak_bytes;
  st.Pdb_kvs.Engine_stats.compaction_serialized_jobs <-
    Scheduler.serialized_jobs t.sched;
  st.Pdb_kvs.Engine_stats.compaction_pending <- Scheduler.pending t.sched;
  st.Pdb_kvs.Engine_stats.compaction_backlog_bytes <-
    Scheduler.backlog_bytes t.sched;
  st.Pdb_kvs.Engine_stats.stall_slowdown_ns <- s.Scheduler.stall_slowdown_ns;
  st.Pdb_kvs.Engine_stats.stall_stop_ns <- s.Scheduler.stall_stop_ns;
  st.Pdb_kvs.Engine_stats.worker_busy_ns <- Scheduler.busy_ns t.sched;
  st.Pdb_kvs.Engine_stats.flush_busy_ns <- Scheduler.flush_busy_ns t.sched;
  st.Pdb_kvs.Engine_stats.compaction_by_trigger <- s.Scheduler.by_trigger;
  st.Pdb_kvs.Engine_stats.block_cache_hits <-
    Pdb_sstable.Block_cache.hits t.block_cache;
  st.Pdb_kvs.Engine_stats.block_cache_misses <-
    Pdb_sstable.Block_cache.misses t.block_cache;
  st.Pdb_kvs.Engine_stats.table_cache_hits <-
    Pdb_sstable.Table_cache.hits t.table_cache;
  st.Pdb_kvs.Engine_stats.table_cache_misses <-
    Pdb_sstable.Table_cache.misses t.table_cache;
  st.Pdb_kvs.Engine_stats.summary_hits <-
    Pdb_sstable.Table_cache.summary_hits t.table_cache;
  st.Pdb_kvs.Engine_stats.summary_misses <-
    Pdb_sstable.Table_cache.summary_misses t.table_cache;
  st

(* ---------- writes ---------- *)

let apply_batch_to_memtable t batch base_seq =
  let seq = ref base_seq in
  Pdb_kvs.Write_batch.iter batch (fun op ->
      charge_cpu t t.opts.O.cpu_memtable_op_ns;
      (match op with
       | Pdb_kvs.Write_batch.Put (k, v) ->
         Pdb_kvs.Memtable.add t.mem ~seq:!seq ~kind:Ik.Value ~user_key:k
           ~value:v
       | Pdb_kvs.Write_batch.Delete k ->
         Pdb_kvs.Memtable.add t.mem ~seq:!seq ~kind:Ik.Deletion ~user_key:k
           ~value:"");
      incr seq)

(* All writes commit through the group path ({!Pdb_kvs.Write_group}): a
   solo write is a group of one.  The group's records are framed
   per-batch (log bytes identical at any group size), appended in one
   device write and made durable by one sync — batches are acked only
   when that sync returns. *)
let write_group t batches =
  assert (not t.closed);
  gc_obsolete t;
  t.consecutive_seeks <- 0;
  Pdb_kvs.Write_group.commit
    {
      Pdb_kvs.Write_group.count = Pdb_kvs.Write_batch.count;
      encode = Pdb_kvs.Write_batch.encode;
      alloc_seq =
        (fun n ->
          let base = t.last_seq + 1 in
          t.last_seq <- t.last_seq + n;
          base);
      before_group =
        (fun ~entries ->
          (* write throttling: the shared controller prices the group
             against compaction debt — L0 files not yet pushed down plus
             the scheduler's pending backlog — and the group pays once
             (it enters the device as one write, so penalizing every
             record would overcharge the batch it rode in on) *)
          let debt =
            {
              Bp.l0_files = List.length t.levels.(0);
              pending_jobs = Scheduler.pending t.sched;
              backlog_bytes = Scheduler.backlog_bytes t.sched;
            }
          in
          let now_ns = Clock.elapsed_ns (Clock.snapshot t.clock) in
          let v = Bp.throttle t.bp ~now_ns ~debt ~cost:entries in
          let total = Bp.total_ns v in
          if total > 0.0 then begin
            Clock.stall t.clock total;
            Scheduler.note_stall t.sched ~slowdown_ns:v.Bp.slowdown_ns
              ~stop_ns:v.Bp.stop_ns;
            t.stats.Pdb_kvs.Engine_stats.write_stalls <-
              t.stats.Pdb_kvs.Engine_stats.write_stalls + 1
          end);
      before_batch =
        (fun batch ->
          let count = Pdb_kvs.Write_batch.count batch in
          let requests =
            if Pdb_kvs.Write_batch.is_bulk batch then 1 else count
          in
          charge_cpu t
            (t.opts.O.op_overhead_write_ns *. float_of_int requests);
          charge_cpu t (t.opts.O.cpu_per_op_ns *. float_of_int count));
      log_append = (fun records -> Wal.Writer.add_records t.wal records);
      log_sync = (fun () -> Wal.Writer.sync t.wal);
      apply =
        (fun batch ~base_seq ->
          apply_batch_to_memtable t batch base_seq;
          t.stats.Pdb_kvs.Engine_stats.user_bytes_written <-
            t.stats.Pdb_kvs.Engine_stats.user_bytes_written
            + Pdb_kvs.Write_batch.payload_bytes batch);
      memtable_full =
        (fun () ->
          Pdb_kvs.Memtable.approximate_bytes t.mem >= t.opts.O.memtable_bytes);
      flush = (fun () -> flush_memtable t);
      sync_writes = t.opts.O.wal_sync_writes;
      stats = t.stats;
    }
    batches;
  (match batches with
   | [] -> ()
   | _ ->
     trace_instant t ~name:"group-commit" ~cat:"wal"
       ~args:[ ("batches", string_of_int (List.length batches)) ]
       ())

let write t batch = write_group t [ batch ]

let put t k v =
  t.stats.Pdb_kvs.Engine_stats.puts <- t.stats.Pdb_kvs.Engine_stats.puts + 1;
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put b k v;
  write t b

let delete t k =
  t.stats.Pdb_kvs.Engine_stats.deletes <-
    t.stats.Pdb_kvs.Engine_stats.deletes + 1;
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.delete b k;
  write t b

let flush t = flush_memtable t

(* ---------- snapshots ---------- *)

(** [snapshot t] pins the current state for consistent reads; see
    {!Pebblesdb.Pebbles_store.snapshot} for the shared semantics. *)
let snapshot t =
  Pdb_kvs.Snapshots.acquire t.snapshots t.last_seq;
  t.last_seq

let release_snapshot t s = Pdb_kvs.Snapshots.release t.snapshots s

(* ---------- reads ---------- *)

(* Search one table for the freshest version of [key] visible at
   [snapshot] (or at the latest state). *)
let table_lookup ?snapshot t (meta : Table.meta) key =
  (* inside a probe session (L0 pile / tiered-run get) each lookup's
     device time is measured so independent probes overlap up to the
     budget *)
  Pdb_simio.Probe.measure t.probe (fun () ->
      charge_cpu t t.opts.O.cpu_per_sstable_ns;
      t.stats.Pdb_kvs.Engine_stats.sstables_examined <-
        t.stats.Pdb_kvs.Engine_stats.sstables_examined + 1;
      let reader = Pdb_sstable.Table_cache.find t.table_cache meta in
      let pass_bloom =
        if Table.has_filter reader then begin
          charge_cpu t t.opts.O.cpu_bloom_check_ns;
          t.stats.Pdb_kvs.Engine_stats.bloom_checks <-
            t.stats.Pdb_kvs.Engine_stats.bloom_checks + 1;
          let pass = Table.may_contain reader key in
          if not pass then
            t.stats.Pdb_kvs.Engine_stats.bloom_negative <-
              t.stats.Pdb_kvs.Engine_stats.bloom_negative + 1;
          pass
        end
        else true
      in
      if not pass_bloom then None
      else begin
        charge_cpu t t.opts.O.cpu_per_block_search_ns;
        let lookup =
          match snapshot with
          | Some seq -> Ik.lookup_at ~user_key:key ~seq
          | None -> Ik.max_for_lookup key
        in
        match
          Table.get reader ~cache:t.block_cache ~hint:Device.Random_read
            lookup
        with
        | Some (ikey, value) when String.equal (Ik.user_key ikey) key ->
          Some (Ik.kind ikey, value)
        | Some _ | None -> None
      end)

let get ?snapshot t key =
  assert (not t.closed);
  t.stats.Pdb_kvs.Engine_stats.gets <- t.stats.Pdb_kvs.Engine_stats.gets + 1;
  charge_cpu t (t.opts.O.op_overhead_read_ns +. t.opts.O.cpu_per_op_ns);
  let mem_result =
    match snapshot with
    | Some seq -> Pdb_kvs.Memtable.get_at t.mem key ~seq
    | None -> Pdb_kvs.Memtable.get t.mem key
  in
  match mem_result with
  | Some (Some v) -> Some v
  | Some None -> None
  | None ->
    (* the candidate tables of one lookup (the L0 pile, a tiered level's
       overlapping runs) are independent random reads: bracket them in a
       probe session so they overlap up to the device budget *)
    Pdb_simio.Probe.with_session t.probe ~label:"get" (fun () ->
        let result = ref `NotFound in
        (* level 0: newest file first; first hit wins *)
        let rec search_l0 = function
          | [] -> ()
          | (m : Table.meta) :: rest ->
            if !result = `NotFound then begin
              if user_range_overlap m key then
                (match table_lookup ?snapshot t m key with
                 | Some (Ik.Value, v) -> result := `Found v
                 | Some (Ik.Deletion, _) -> result := `Deleted
                 | None -> ());
              search_l0 rest
            end
        in
        search_l0 t.levels.(0);
        (* deeper levels: leveled layout has at most one candidate file;
           tiered layout probes every overlapping run, newest first *)
        let level = ref 1 in
        while !result = `NotFound && !level < t.opts.O.max_levels do
          let candidates =
            if tiered_level t !level then
              List.filter (fun m -> user_range_overlap m key) t.levels.(!level)
            else
              match
                List.find_opt
                  (fun m -> user_range_overlap m key)
                  t.levels.(!level)
              with
              | Some m -> [ m ]
              | None -> []
          in
          List.iter
            (fun m ->
              if !result = `NotFound then
                match table_lookup ?snapshot t m key with
                | Some (Ik.Value, v) -> result := `Found v
                | Some (Ik.Deletion, _) -> result := `Deleted
                | None -> ())
            candidates;
          incr level
        done;
        match !result with `Found v -> Some v | `Deleted | `NotFound -> None)

(* ---------- iterators ---------- *)

(* [upper_user] is the iterator's inclusive user-key bound: it licenses the
   seek filter to skip tables past it, and {!iterator} clamps the merged
   output so skipped tables are unobservable. *)
let internal_iterator ?upper_user t =
  let on_table () =
    charge_cpu t t.opts.O.cpu_per_sstable_ns;
    t.stats.Pdb_kvs.Engine_stats.sstables_examined <-
      t.stats.Pdb_kvs.Engine_stats.sstables_examined + 1
  in
  let filter =
    Pdb_sstable.Seek_filter.create ?upper_user
      ~filtering:t.opts.O.seek_filtering
      ~peek:(Pdb_sstable.Table_cache.peek t.table_cache)
      ~on_check:(fun ~skipped ->
        t.stats.Pdb_kvs.Engine_stats.seek_bloom_checks <-
          t.stats.Pdb_kvs.Engine_stats.seek_bloom_checks + 1;
        if skipped then
          t.stats.Pdb_kvs.Engine_stats.seek_bloom_skips <-
            t.stats.Pdb_kvs.Engine_stats.seek_bloom_skips + 1)
      ()
  in
  (* one iterator per overlapping file (L0 and tiered levels): lazy
     filtered wrappers skip the provably-disjoint ones and measure the
     rest for the probe session *)
  let file_iter m =
    let it =
      Pdb_sstable.Seek_filter.table_iterator filter ~cache:t.table_cache
        ~block_cache:t.block_cache ~hint:Device.Random_read ~on_table m
    in
    {
      it with
      Iter.seek =
        (fun k -> Pdb_simio.Probe.measure t.probe (fun () -> it.Iter.seek k));
      seek_to_first =
        (fun () ->
          Pdb_simio.Probe.measure t.probe (fun () -> it.Iter.seek_to_first ()));
    }
  in
  let l0_iters = List.map file_iter t.levels.(0) in
  let level_iters =
    List.concat_map
      (fun level ->
        match t.levels.(level) with
        | [] -> []
        | files ->
          if tiered_level t level then
            (* overlapping runs need independent cursors; the merging
               iterator resolves versions by sequence number *)
            List.map file_iter files
          else
            [
              Pdb_sstable.Level_iter.create ~filter ~probe:t.probe
                ~cache:t.table_cache ~block_cache:t.block_cache
                ~hint:Device.Random_read ~on_table (Array.of_list files);
            ])
      (List.init (t.opts.O.max_levels - 1) (fun i -> i + 1))
  in
  Pdb_kvs.Merging_iter.create ~compare:Ik.compare
    ((Pdb_kvs.Memtable.iterator t.mem :: l0_iters) @ level_iters)

(* LevelDB also compacts in response to repeated seeks (a file's
   allowed_seeks budget); modeled here as draining level 0 after a run of
   consecutive seeks, which is where seek cost concentrates. *)
let note_seek t =
  t.stats.Pdb_kvs.Engine_stats.seeks <- t.stats.Pdb_kvs.Engine_stats.seeks + 1;
  charge_cpu t (t.opts.O.op_overhead_read_ns +. t.opts.O.cpu_per_op_ns);
  if t.opts.O.seek_based_compaction then begin
    t.consecutive_seeks <- t.consecutive_seeks + 1;
    if
      t.consecutive_seeks >= t.opts.O.seek_compaction_threshold
      && t.levels.(0) <> []
    then begin
      t.consecutive_seeks <- 0;
      ignore
        (Scheduler.submit t.sched
           {
             Job.key = "seek:0";
             trigger = Job.Seek;
             estimated_bytes = level_bytes t 0;
             footprint = level_footprint t 0;
             run = (fun () -> compact_level t 0);
           });
      Scheduler.drain t.sched
    end
  end

let iterator ?snapshot ?upper_bound t =
  assert (not t.closed);
  let db =
    Pdb_kvs.Db_iter.wrap ?snapshot
      (internal_iterator ?upper_user:upper_bound t)
  in
  (* the bound is semantic: output is clamped to keys <= upper_bound, so
     tables the seek filter skipped as past-the-bound are unobservable *)
  let in_bound () =
    match upper_bound with
    | None -> true
    | Some up -> String.compare (db.Iter.key ()) up <= 0
  in
  let valid () = db.Iter.valid () && in_bound () in
  {
    Iter.seek =
      (fun k ->
        note_seek t;
        Pdb_simio.Probe.with_session t.probe ~label:"seek" (fun () ->
            db.Iter.seek k));
    seek_to_first =
      (fun () ->
        note_seek t;
        Pdb_simio.Probe.with_session t.probe ~label:"seek" (fun () ->
            db.Iter.seek_to_first ()));
    next =
      (fun () ->
        t.stats.Pdb_kvs.Engine_stats.nexts <-
          t.stats.Pdb_kvs.Engine_stats.nexts + 1;
        charge_cpu t t.opts.O.cpu_per_op_ns;
        db.Iter.next ());
    valid;
    key =
      (fun () ->
        if valid () then db.Iter.key ()
        else invalid_arg "iterator: iterator is not valid");
    value =
      (fun () ->
        if valid () then db.Iter.value ()
        else invalid_arg "iterator: iterator is not valid");
  }

(* ---------- maintenance ---------- *)

let compact_all t =
  flush_memtable t;
  (* push every populated level into the next, top-down, as LevelDB's
     manual CompactRange does *)
  for level = 0 to t.opts.O.max_levels - 2 do
    while t.levels.(level) <> [] do
      let inputs_lo = t.levels.(level) in
      let smallest, largest = input_user_range inputs_lo in
      let inputs_hi = overlapping_files t (level + 1) ~smallest ~largest in
      let bytes =
        List.fold_left
          (fun a (m : Table.meta) -> a + m.Table.file_size)
          0 (inputs_lo @ inputs_hi)
      in
      Scheduler.run_now t.sched
        {
          Job.key = Printf.sprintf "manual:%d" level;
          trigger = Job.Manual;
          estimated_bytes = bytes;
          footprint = level_footprint t level;
          run =
            (fun () ->
              (* a manual merge consumes every overlapping target file, so
                 tombstones may drop at the bottom under any policy *)
              let outputs =
                run_merge t ~inputs_lo ~inputs_hi
                  ~drop_tombstones:(level + 1 >= last_level t.opts)
                  ~single_output:false
              in
              install_compaction t ~level ~inputs_lo ~inputs_hi ~outputs);
        }
    done
  done;
  gc_obsolete t

let memory_bytes t =
  Pdb_kvs.Memtable.approximate_bytes t.mem
  + Pdb_sstable.Block_cache.used t.block_cache
  + Pdb_sstable.Table_cache.resident_bytes t.table_cache

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "lsm store (%s, policy=%s)\n" t.opts.O.name
       t.policy.Policy.name);
  Array.iteri
    (fun level files ->
      if files <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  level %d (%d files, %d bytes):\n" level
             (List.length files) (level_bytes t level));
        List.iter
          (fun (m : Table.meta) ->
            Buffer.add_string buf
              (Printf.sprintf "    #%d [%s .. %s] %dB\n" m.Table.number
                 (Ik.user_key m.Table.smallest)
                 (Ik.user_key m.Table.largest)
                 m.Table.file_size))
          files
      end)
    t.levels;
  Buffer.contents buf

let check_invariants t =
  (* L0 ordered newest-first by file number *)
  let rec check_l0 = function
    | (a : Table.meta) :: (b : Table.meta) :: rest ->
      if a.Table.number <= b.Table.number then
        failwith "lsm invariant: L0 not newest-first";
      check_l0 (b :: rest)
    | [ _ ] | [] -> ()
  in
  check_l0 t.levels.(0);
  (* levels >= 1: leveled layout = sorted and disjoint; tiered layout =
     newest-first (recency order, the property reads rely on) *)
  for level = 1 to t.opts.O.max_levels - 1 do
    if tiered_level t level then begin
      let rec check = function
        | (a : Table.meta) :: (b : Table.meta) :: rest ->
          if a.Table.number <= b.Table.number then
            failwith
              (Printf.sprintf
                 "lsm invariant: tiered level %d not newest-first" level);
          check (b :: rest)
        | [ _ ] | [] -> ()
      in
      check t.levels.(level)
    end
    else begin
      let rec check = function
        | (a : Table.meta) :: (b : Table.meta) :: rest ->
          if Ik.compare a.Table.largest b.Table.smallest >= 0 then
            failwith
              (Printf.sprintf "lsm invariant: level %d files overlap" level);
          check (b :: rest)
        | [ _ ] | [] -> ()
      in
      check t.levels.(level)
    end
  done;
  (* every listed file exists *)
  Array.iter
    (List.iter (fun (m : Table.meta) ->
         if not (Env.exists t.env (Table.file_name ~dir:t.dir m.Table.number))
         then failwith "lsm invariant: missing sstable file"))
    t.levels

(* number of files per level, for tests and experiments *)
let level_file_counts t = Array.map List.length t.levels
let level_sizes t = Array.init t.opts.O.max_levels (level_bytes t)
let sstable_metas t = Array.to_list t.levels |> List.concat

(* resident tables of one level, in search order (tests) *)
let level_tables t level = t.levels.(level)
let policy t = t.policy
