(* Range-partitioned shard layer (lib/shard).

   The router's range arithmetic; byte-invariance of the sharded store
   across client counts (sharding must stay a pure time/placement model,
   like group commit); cross-shard scans at a snapshot fence agreeing
   with a single store at the same operation prefix; and the stats
   aggregation regression: with one shared block cache the aggregate
   must report the cache's true hit/miss counters, not shards-many
   copies of them. *)

module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Stores = Pdb_harness.Stores
module B = Pdb_harness.Bench_util
module O = Pdb_kvs.Options
module Stats = Pdb_kvs.Engine_stats
module Router = Pdb_shard.Shard_router
module Iter = Pdb_kvs.Iter

(* ---------- router units ---------- *)

let test_router_routing () =
  let r = Router.create ~splits:[ "g"; "p" ] in
  Alcotest.(check int) "3 shards from 2 splits" 3 (Router.shards r);
  Alcotest.(check int) "below first split" 0 (Router.shard_of_key r "a");
  Alcotest.(check int) "split key belongs right" 1 (Router.shard_of_key r "g");
  Alcotest.(check int) "mid range" 1 (Router.shard_of_key r "k");
  Alcotest.(check int) "last shard" 2 (Router.shard_of_key r "p");
  Alcotest.(check int) "beyond" 2 (Router.shard_of_key r "zzz");
  Alcotest.(check (pair (option string) (option string)))
    "first range unbounded below" (None, Some "g")
    (Router.range_of_shard r 0);
  Alcotest.(check (pair (option string) (option string)))
    "last range unbounded above" (Some "p", None)
    (Router.range_of_shard r 2);
  (* ownership agrees with routing for a key sweep *)
  List.iter
    (fun k ->
      let i = Router.shard_of_key r k in
      for j = 0 to Router.shards r - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "owns(%d,%S) iff routed there" j k)
          (j = i) (Router.owns r j k)
      done)
    [ ""; "a"; "f"; "g"; "h"; "o"; "p"; "q"; "zz" ];
  Router.check_invariants r

let test_router_rejects_unsorted () =
  Alcotest.check_raises "equal splits rejected"
    (Invalid_argument
       "Shard_router.create: splits not increasing (\"m\" >= \"m\")")
    (fun () -> ignore (Router.create ~splits:[ "m"; "m" ]))

let test_router_uniform () =
  let r = Router.uniform ~shards:8 () in
  Alcotest.(check int) "8 shards" 8 (Router.shards r);
  let splits = Router.splits r in
  Alcotest.(check int) "7 splits" 7 (List.length splits);
  ignore
    (List.fold_left
       (fun prev s ->
         Alcotest.(check bool) "splits strictly increasing" true
           (String.compare prev s < 0);
         s)
       "" splits);
  (* a bounded uniform router spreads raw byte keys evenly *)
  let bkey i = Printf.sprintf "%c%c" (Char.chr (i lsr 8)) (Char.chr (i land 0xff)) in
  let r = Router.uniform ~shards:4 ~lo:(bkey 0) ~hi:(bkey 40_000) () in
  let counts = Array.make 4 0 in
  for i = 0 to 39_999 do
    let s = Router.shard_of_key r (bkey i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "bounded uniform splits balance (got %d)" c)
        true
        (abs (c - 10_000) <= 1))
    counts;
  (* bounds sharing a long prefix still interpolate (exact integer
     arithmetic on the bytes after the prefix) *)
  let r =
    Router.uniform ~shards:4 ~lo:"user00000000" ~hi:"user00000004" ()
  in
  Alcotest.(check int) "4 shards under deep prefix" 4 (Router.shards r);
  List.iter
    (fun s ->
      Alcotest.(check bool) "prefix carried into splits" true
        (String.length s >= 11 && String.sub s 0 11 = "user0000000"))
    (Router.splits r)

(* ---------- client-count byte-invariance ---------- *)

let files_of env =
  Env.list env
  |> List.map (fun name ->
         (name, Env.read_all env name ~hint:Pdb_simio.Device.Sequential_read))
  |> List.sort compare

let shard_tweak ~n ~shards o =
  {
    o with
    O.wal_sync_writes = true;
    shards;
    shard_splits = List.init (shards - 1) (fun i -> B.key_of ((i + 1) * n / shards));
  }

let test_state_invariance engine () =
  let n = 3_000 in
  let run ~clients =
    let env = Env.create () in
    let store =
      Stores.open_engine ~tweak:(shard_tweak ~n ~shards:4) ~env engine
    in
    let _, r = B.mc_fill_random store ~clients ~n ~value_bytes:128 ~seed:7 in
    store.Dyn.d_close ();
    (files_of env, r)
  in
  let f1, _ = run ~clients:1 in
  let f4, r4 = run ~clients:4 in
  Alcotest.(check (list string))
    "same file set at 1 vs 4 clients" (List.map fst f1) (List.map fst f4);
  List.iter2
    (fun (name, b1) (_, b4) ->
      Alcotest.(check bool)
        (name ^ " byte-identical at 1 vs 4 clients")
        true (String.equal b1 b4))
    f1 f4;
  (* one lane group fans out to at most shards engine-level groups *)
  Alcotest.(check bool)
    (Printf.sprintf "lane groups <= engine groups <= 4x (lanes=%d engine=%d)"
       r4.B.Mc.lane_groups r4.B.Mc.write_groups)
    true
    (r4.B.Mc.write_groups >= r4.B.Mc.lane_groups
    && r4.B.Mc.write_groups <= 4 * r4.B.Mc.lane_groups)

(* ---------- cross-shard scans at a fence ---------- *)

let entries_of_iter (it : Iter.t) =
  it.Iter.seek_to_first ();
  let acc = ref [] in
  while it.Iter.valid () do
    acc := (it.Iter.key (), it.Iter.value ()) :: !acc;
    it.Iter.next ()
  done;
  List.rev !acc

let all_entries (store : Dyn.dyn) = entries_of_iter (store.Dyn.d_iterator ())

(* Apply the same seeded op sequence to a plain store (stopping at a
   prefix) and to a 4-shard store (running to the end, with a snapshot
   pinned at the prefix): the sharded scan at the snapshot must equal the
   plain store's final scan. *)
let test_snapshot_scan engine () =
  let keyspace = 400 and ops = 1_200 and prefix = 700 in
  let op rng i =
    let k = B.key_of (Pdb_util.Rng.int rng keyspace) in
    if Pdb_util.Rng.int rng 5 = 0 then `Delete k
    else `Put (k, Printf.sprintf "v%06d-%s" i k)
  in
  let apply (store : Dyn.dyn) = function
    | `Put (k, v) -> store.Dyn.d_put k v
    | `Delete k -> store.Dyn.d_delete k
  in
  let small o = { o with O.memtable_bytes = 8 * 1024 } in
  let plain =
    Stores.open_engine ~tweak:small ~env:(Env.create ()) engine
  in
  let rng = Pdb_util.Rng.create 99 in
  for i = 0 to prefix - 1 do
    apply plain (op rng i)
  done;
  let sh =
    Stores.open_sharded
      ~tweak:(fun o -> small (shard_tweak ~n:keyspace ~shards:4 o))
      ~env:(Env.create ()) engine
  in
  Alcotest.(check int) "4 shards" 4 sh.Stores.s_shards;
  let snapshot = Option.get sh.Stores.s_snapshot in
  let iter_at = Option.get sh.Stores.s_iter_at in
  let get_at = Option.get sh.Stores.s_get_at in
  let rng = Pdb_util.Rng.create 99 in
  let snap = ref (-1) in
  for i = 0 to ops - 1 do
    if i = prefix then snap := snapshot ();
    apply sh.Stores.s_dyn (op rng i)
  done;
  let want = all_entries plain in
  let got = entries_of_iter (iter_at !snap) in
  Alcotest.(check int)
    "snapshot scan entry count = plain store scan" (List.length want)
    (List.length got);
  Alcotest.(check bool) "snapshot scan = plain store scan" true (want = got);
  (* point reads at the fence agree with the scan *)
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string))
        ("get_at " ^ k) (Some v) (get_at !snap k))
    want;
  (* and the live scan has moved past the fence *)
  Alcotest.(check bool) "live scan differs from pinned scan" true
    (all_entries sh.Stores.s_dyn <> got);
  sh.Stores.s_release !snap;
  plain.Dyn.d_close ();
  sh.Stores.s_dyn.Dyn.d_close ()

(* keys crossing every shard inside one batch stay atomic per shard and
   visible after the whole-group commit *)
let test_cross_shard_batch () =
  let n = 1_000 in
  let sh =
    Stores.open_sharded
      ~tweak:(shard_tweak ~n ~shards:4)
      ~env:(Env.create ()) Stores.Pebblesdb
  in
  let store = sh.Stores.s_dyn in
  let batch = Pdb_kvs.Write_batch.create () in
  let hits = Array.make 4 0 in
  for i = 0 to 39 do
    let k = B.key_of (i * n / 40) in
    hits.(sh.Stores.s_shard_of_key k) <- hits.(sh.Stores.s_shard_of_key k) + 1;
    Pdb_kvs.Write_batch.put batch k (Printf.sprintf "b%d" i)
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "batch spans shard %d" i) 10 c)
    hits;
  store.Dyn.d_write batch;
  for i = 0 to 39 do
    let k = B.key_of (i * n / 40) in
    Alcotest.(check (option string))
      ("batched " ^ k)
      (Some (Printf.sprintf "b%d" i))
      (store.Dyn.d_get k)
  done;
  (* per-shard iterators see only their own range *)
  for s = 0 to 3 do
    List.iter
      (fun (k, _) ->
        Alcotest.(check int)
          (Printf.sprintf "shard %d iterator stays in range (%s)" s k)
          s
          (sh.Stores.s_shard_of_key k))
      (entries_of_iter (sh.Stores.s_shard_iter s))
  done;
  store.Dyn.d_close ()

(* ---------- fence-pin lifetime regression ---------- *)

(* An unfenced scan's fence must stay pinned while the merged iterator is
   alive: capture_fence used to release each shard's snapshot immediately,
   so a compaction landing in that window (a seek-triggered one, say)
   dropped versions/tombstones the fence should see and GC'd sstable
   files the iterator still reads — crashing the scan.  We drive the
   engine's compaction directly as a deterministic stand-in for such a
   background compaction (the store's own mutating surface legitimately
   invalidates iterators, so it cannot be used to trigger one here). *)
let test_fence_pins_survive_compaction () =
  let env = Env.create () in
  let module SP = Pdb_shard.Shard_store.Make (Stores.Pebbles_engine) in
  let opts =
    { (Stores.default_options Stores.Pebblesdb) with O.shards = 1 }
  in
  let t = SP.open_store opts ~env ~dir:"db" in
  let key i = Printf.sprintf "key-%03d" i in
  for i = 0 to 49 do SP.put t (key i) (Printf.sprintf "v-%03d" i) done;
  SP.put t "key-zz" "doomed";
  SP.flush t;
  SP.compact_all t;
  (* tombstone in a newer table above the compacted value *)
  SP.delete t "key-zz";
  SP.flush t;
  let it = SP.iterator t in
  (* compaction lands while the scan is alive; with the fence pinned the
     superseded tables stay on disk and the scan reads them intact *)
  Stores.Pebbles_engine.compact_all (SP.shard_stores t).(0);
  let got = entries_of_iter it in
  let want = List.init 50 (fun i -> (key i, Printf.sprintf "v-%03d" i)) in
  Alcotest.(check (list (pair string string)))
    "scan over pinned fence is intact" want got;
  SP.close t

(* ---------- stats aggregation: the shared-cache regression ---------- *)

(* With one shared block cache, every shard's stats mirror the same
   global Lru counters; the aggregate must pin the cache's true totals at
   any shard count — summing the mirrors would overcount ~shards-fold. *)
let test_shared_cache_counters () =
  let n = 2_000 in
  let totals =
    List.map
      (fun shards ->
        let sh =
          Stores.open_sharded
            ~tweak:(fun o ->
              { (shard_tweak ~n ~shards o) with O.block_cache_bytes = 1 lsl 20 })
            ~env:(Env.create ()) Stores.Pebblesdb
        in
        let store = sh.Stores.s_dyn in
        ignore (B.fill_random store ~n ~value_bytes:256 ~seed:5);
        ignore (B.read_random store ~n ~ops:n ~seed:6);
        let st = store.Dyn.d_stats () in
        let cache_hits, cache_misses =
          Option.get (sh.Stores.s_cache_counters ())
        in
        Alcotest.(check int)
          (Printf.sprintf "aggregate hits = shared cache hits at %d shards"
             shards)
          cache_hits st.Stats.block_cache_hits;
        Alcotest.(check int)
          (Printf.sprintf "aggregate misses = shared cache misses at %d shards"
             shards)
          cache_misses st.Stats.block_cache_misses;
        Alcotest.(check bool)
          (Printf.sprintf "reads hit the cache at %d shards" shards)
          true (cache_hits > 0);
        store.Dyn.d_close ();
        (st.Stats.block_cache_hits, st.Stats.block_cache_misses))
      [ 1; 4 ]
  in
  (* same workload, same shared capacity: totals stay in the same regime
     rather than multiplying with the shard count *)
  match totals with
  | [ (h1, m1); (h4, m4) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "hit totals comparable 1 vs 4 shards (%d vs %d)" h1 h4)
      true
      (h4 < 2 * (h1 + m1));
    Alcotest.(check bool)
      (Printf.sprintf "miss totals comparable 1 vs 4 shards (%d vs %d)" m1 m4)
      true
      (m4 < 2 * (h1 + m1))
  | _ -> assert false

let test_private_cache_counters_sum () =
  (* with private caches the aggregate is a genuine sum *)
  let n = 1_500 in
  let sh =
    Stores.open_sharded
      ~tweak:(fun o ->
        { (shard_tweak ~n ~shards:4 o) with O.shard_share_block_cache = false })
      ~env:(Env.create ()) Stores.Pebblesdb
  in
  let store = sh.Stores.s_dyn in
  Alcotest.(check bool) "no shared cache handle" true
    (sh.Stores.s_cache_counters () = None);
  ignore (B.fill_random store ~n ~value_bytes:256 ~seed:5);
  ignore (B.read_random store ~n ~ops:n ~seed:6);
  let st = store.Dyn.d_stats () in
  Alcotest.(check bool) "summed cache traffic present" true
    (st.Stats.block_cache_hits + st.Stats.block_cache_misses > 0);
  store.Dyn.d_close ()

let test_aggregate_breakdown () =
  let n = 3_000 in
  let sh =
    Stores.open_sharded
      ~tweak:(shard_tweak ~n ~shards:4)
      ~env:(Env.create ()) Stores.Pebblesdb
  in
  let store = sh.Stores.s_dyn in
  ignore (B.fill_random store ~n ~value_bytes:256 ~seed:11);
  let st = store.Dyn.d_stats () in
  Alcotest.(check int) "stats report 4 shards" 4 st.Stats.shards;
  Alcotest.(check int) "per-shard breakdown has 4 entries" 4
    (Array.length st.Stats.shard_user_bytes);
  Alcotest.(check int) "breakdown sums to the aggregate"
    st.Stats.user_bytes_written
    (Array.fold_left ( + ) 0 st.Stats.shard_user_bytes);
  Alcotest.(check bool)
    (Printf.sprintf "balance in [1, 1.5] for even splits (%.3f)"
       st.Stats.shard_balance)
    true
    (st.Stats.shard_balance >= 1.0 && st.Stats.shard_balance <= 1.5);
  Alcotest.(check bool) "every shard took writes" true
    (Array.for_all (fun b -> b > 0) st.Stats.shard_user_bytes);
  store.Dyn.d_close ()

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          Alcotest.test_case "routing and ranges" `Quick test_router_routing;
          Alcotest.test_case "rejects unsorted splits" `Quick
            test_router_rejects_unsorted;
          Alcotest.test_case "uniform splits" `Quick test_router_uniform;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "pebblesdb bytes invariant across clients" `Quick
            (test_state_invariance Stores.Pebblesdb);
          Alcotest.test_case "leveldb bytes invariant across clients" `Quick
            (test_state_invariance Stores.Leveldb);
          Alcotest.test_case "cross-shard batch" `Quick test_cross_shard_batch;
          Alcotest.test_case "fence pins survive compaction" `Quick
            test_fence_pins_survive_compaction;
        ] );
      ( "snapshot scans",
        [
          Alcotest.test_case "pebblesdb fence scan" `Quick
            (test_snapshot_scan Stores.Pebblesdb);
          Alcotest.test_case "leveldb fence scan" `Quick
            (test_snapshot_scan Stores.Leveldb);
        ] );
      ( "stats",
        [
          Alcotest.test_case "shared cache counted once" `Quick
            test_shared_cache_counters;
          Alcotest.test_case "private caches sum" `Quick
            test_private_cache_counters_sum;
          Alcotest.test_case "per-shard breakdown and balance" `Quick
            test_aggregate_breakdown;
        ] );
    ]
