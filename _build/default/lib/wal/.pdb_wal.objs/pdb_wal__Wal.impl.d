lib/wal/wal.ml: Buffer Char List Pdb_simio Pdb_util String
