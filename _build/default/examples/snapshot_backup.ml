(* Snapshots and consistent backup: take a point-in-time snapshot, keep
   writing, and extract a consistent copy of the snapshotted state into a
   second store — the pattern behind incremental backup and analytics
   readers on a live database.

   Run with: dune exec examples/snapshot_backup.exe *)

module P = Pebblesdb.Pebbles_store
module Iter = Pdb_kvs.Iter

let key i = Printf.sprintf "account%06d" i
let balance rng = Printf.sprintf "%d" (Pdb_util.Rng.int rng 10_000)

let () =
  let env = Pdb_simio.Env.create () in
  let db = P.open_store (Pdb_kvs.Options.pebblesdb ()) ~env ~dir:"live" in
  let rng = Pdb_util.Rng.create 2024 in

  (* a base of account balances *)
  for i = 0 to 9_999 do
    P.put db (key i) (balance rng)
  done;
  Printf.printf "loaded 10k accounts\n";

  (* freeze a consistent view *)
  let snap = P.snapshot db in
  let total_at_snapshot =
    let it = P.iterator ~snapshot:snap db in
    let sum = ref 0 in
    it.Iter.seek_to_first ();
    while it.Iter.valid () do
      sum := !sum + int_of_string (it.Iter.value ());
      it.Iter.next ()
    done;
    !sum
  in
  Printf.printf "snapshot taken; total balance at snapshot = %d\n"
    total_at_snapshot;

  (* concurrent-looking mutation storm on the live store *)
  for _ = 1 to 20_000 do
    P.put db (key (Pdb_util.Rng.int rng 10_000)) (balance rng)
  done;
  P.compact_all db;
  Printf.printf "applied 20k updates and compacted the live store\n";

  (* the snapshot still sums to the same total, entry for entry *)
  let verify =
    let it = P.iterator ~snapshot:snap db in
    let sum = ref 0 and n = ref 0 in
    it.Iter.seek_to_first ();
    while it.Iter.valid () do
      sum := !sum + int_of_string (it.Iter.value ());
      incr n;
      it.Iter.next ()
    done;
    (!sum, !n)
  in
  assert (fst verify = total_at_snapshot);
  Printf.printf "snapshot unchanged after the storm: %d accounts, total %d\n"
    (snd verify) (fst verify);

  (* back the snapshot up into a fresh store *)
  let backup_env = Pdb_simio.Env.create () in
  let backup =
    P.open_store (Pdb_kvs.Options.pebblesdb ()) ~env:backup_env ~dir:"backup"
  in
  let it = P.iterator ~snapshot:snap db in
  it.Iter.seek_to_first ();
  let copied = ref 0 in
  while it.Iter.valid () do
    P.put backup (it.Iter.key ()) (it.Iter.value ());
    incr copied;
    it.Iter.next ()
  done;
  P.flush backup;
  Printf.printf "backup holds %d accounts (consistent as of the snapshot)\n"
    !copied;

  (* release: the live store may now reclaim superseded files *)
  P.release_snapshot db snap;
  P.put db "gc" "tick";
  Printf.printf "snapshot released; live store space: %.1f MB\n"
    (float_of_int (Pdb_simio.Env.total_file_bytes env) /. 1048576.0);
  P.close backup;
  P.close db
