(** Store factory: every engine of the evaluation, packaged uniformly.

    Each store runs in its own simulated environment (device, clock, IO
    counters), so per-store measurements never interfere.  Any engine can
    additionally be opened {e sharded}: N independent instances behind a
    range router ({!Pdb_shard.Shard_store}), living under [db/shards/<i>/]
    in the one environment. *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Shard = Pdb_shard.Shard_store

type engine =
  | Pebblesdb
  | Pebblesdb_one  (** max_sstables_per_guard = 1 — the paper's LSM mode *)
  | Hyperleveldb
  | Leveldb
  | Rocksdb
  | Btree  (** KyotoCabinet-style write-through B+-tree *)
  | Wiredtiger

let engine_name = function
  | Pebblesdb -> "pebblesdb"
  | Pebblesdb_one -> "pebblesdb-1"
  | Hyperleveldb -> "hyperleveldb"
  | Leveldb -> "leveldb"
  | Rocksdb -> "rocksdb"
  | Btree -> "kyotocabinet-sim"
  | Wiredtiger -> "wiredtiger-sim"

let default_options = function
  | Pebblesdb -> O.pebblesdb ()
  | Pebblesdb_one ->
    { (O.pebblesdb ()) with O.name = "pebblesdb-1"; max_sstables_per_guard = 1 }
  | Hyperleveldb -> O.hyperleveldb ()
  | Leveldb -> O.leveldb ()
  | Rocksdb -> O.rocksdb ()
  | Btree -> { (O.leveldb ()) with O.name = "kyotocabinet-sim" }
  | Wiredtiger -> { (O.leveldb ()) with O.name = "wiredtiger-sim" }

(* ---------- compaction-policy routing ---------- *)

(* The implementing engine for a requested compaction policy:
   [flsm_guarded] needs the guard-structured FLSM engine, the three LSM
   layouts need the leveled/tiered engine.  A request that contradicts
   the chosen store remaps to the matching engine (HyperLevelDB profile —
   the FLSM engine's own base — for LSM policies, PebblesDB for
   [flsm_guarded]), so [--compaction-policy] works with any [--store]. *)
let engine_for_policy engine (p : O.compaction_policy) =
  match p with
  | O.Flsm_guarded ->
    (match engine with
     | Pebblesdb | Pebblesdb_one -> engine
     | Hyperleveldb | Leveldb | Rocksdb | Btree | Wiredtiger -> Pebblesdb)
  | O.Leveled | O.Tiered | O.Lazy_leveled ->
    (match engine with
     | Pebblesdb | Pebblesdb_one -> Hyperleveldb
     | (Hyperleveldb | Leveldb | Rocksdb | Btree | Wiredtiger) as e -> e)

(* tweak composer: pin the policy on top of an existing tweak *)
let with_policy p tweak o =
  { (tweak o) with O.compaction_policy = p }

(* ---------- shard-aware engine adapters ---------- *)

(* Each adapter fixes the engines' optional arguments to match
   {!Dyn.S} and supplies the fenced-read surface the shard store
   needs.  The page stores have no snapshots: their fenced reads read
   current state, which the serial simulation makes equivalent as long
   as no writes intervene. *)

module Pebbles_engine = struct
  include Pebblesdb.Pebbles_store

  let open_store opts ~env ~dir = open_store opts ~env ~dir
  let get t k = get t k
  let iterator t = iterator t

  let open_shard opts ~env ~dir ~shared_block_cache =
    Pebblesdb.Pebbles_store.open_store ?block_cache:shared_block_cache opts
      ~env ~dir

  let get_at t ~snapshot k = Pebblesdb.Pebbles_store.get ~snapshot t k
  let iterator_at t ~snapshot = Pebblesdb.Pebbles_store.iterator ~snapshot t
  let scheduler t = Some (compaction_scheduler t)

  let on_job_complete t f =
    Pdb_compaction.Scheduler.set_observer (compaction_scheduler t) (fun _ ->
        f ())
end

module Lsm_engine = struct
  include Pdb_lsm.Lsm_store

  let open_store opts ~env ~dir = open_store opts ~env ~dir
  let get t k = get t k
  let iterator t = iterator t

  let open_shard opts ~env ~dir ~shared_block_cache =
    Pdb_lsm.Lsm_store.open_store ?block_cache:shared_block_cache opts ~env
      ~dir

  let get_at t ~snapshot k = Pdb_lsm.Lsm_store.get ~snapshot t k
  let iterator_at t ~snapshot = Pdb_lsm.Lsm_store.iterator ~snapshot t
  let scheduler t = Some (compaction_scheduler t)

  let on_job_complete t f =
    Pdb_compaction.Scheduler.set_observer (compaction_scheduler t) (fun _ ->
        f ())
end

module Btree_engine = struct
  include Pdb_btree.Bptree

  (* fix the optional [?mode] so the module matches Store_intf.S *)
  let open_store opts ~env ~dir = open_store opts ~env ~dir
  let open_shard opts ~env ~dir ~shared_block_cache:_ = open_store opts ~env ~dir
  let snapshot _ = 0
  let release_snapshot _ _ = ()
  let get_at t ~snapshot:_ k = get t k
  let iterator_at t ~snapshot:_ = iterator t
  let scheduler _ = None
  let on_job_complete _ _ = () (* no background scheduler *)
end

module Wt_engine = struct
  include Pdb_btree.Wt_store

  let open_shard opts ~env ~dir ~shared_block_cache:_ = open_store opts ~env ~dir
  let snapshot _ = 0
  let release_snapshot _ _ = ()
  let get_at t ~snapshot:_ k = get t k
  let iterator_at t ~snapshot:_ = iterator t
  let scheduler _ = None
  let on_job_complete _ _ = () (* no background scheduler *)
end

module Sharded_pebbles = Shard.Make (Pebbles_engine)
module Sharded_lsm = Shard.Make (Lsm_engine)
module Sharded_btree = Shard.Make (Btree_engine)
module Sharded_wt = Shard.Make (Wt_engine)

(* Replicated engines: each wraps the raw engine with a primary + K
   backups over a simulated network (see Pdb_repl.Repl_store).  The
   replicated module again satisfies {!Shard.ENGINE}, so a sharded
   replicated store — [Shard.Make] over a replicated engine — replicates
   each shard independently: per-shard links, backups and acks. *)
module Repl_pebbles = Pdb_repl.Repl_store.Make (Pebbles_engine)
module Repl_lsm = Pdb_repl.Repl_store.Make (Lsm_engine)
module Repl_btree = Pdb_repl.Repl_store.Make (Btree_engine)
module Repl_wt = Pdb_repl.Repl_store.Make (Wt_engine)
module Sharded_repl_pebbles = Shard.Make (Repl_pebbles)
module Sharded_repl_lsm = Shard.Make (Repl_lsm)

(* The page stores mutate files in place (positioned writes), which the
   file-shipping mirror's append-only length diffing cannot track —
   their replication always ships the log. *)
let normalize_repl engine (opts : O.t) =
  match (engine, opts.O.repl_strategy) with
  | (Btree | Wiredtiger), O.File_shipping when opts.O.replicas > 0 ->
    { opts with O.repl_strategy = O.Log_shipping }
  | _ -> opts

(** A sharded store with its shard-level surface exposed for tests and
    experiments: routing, per-shard iteration, snapshot fences (None for
    the page stores, which have no snapshots) and the shared block
    cache's true counters. *)
type sharded = {
  s_dyn : Dyn.dyn;
  s_shards : int;  (** shard count at open (splits/merges change it live) *)
  s_shard_of_key : string -> int;
  s_shard_iter : int -> Pdb_kvs.Iter.t;  (** one shard's database iterator *)
  s_snapshot : (unit -> int) option;  (** pin a cross-shard fence *)
  s_release : int -> unit;
  s_get_at : (int -> string -> string option) option;
  s_iter_at : (int -> Pdb_kvs.Iter.t) option;
  s_cache_counters : unit -> (int * int) option;
      (** (hits, misses) of the one shared block cache, when sharing *)
  (* the elastic surface: live topology control and inspection *)
  s_split : shard:int -> key:string -> bool;
      (** split shard [shard] at [key] (strictly inside its range) *)
  s_merge : at:int -> bool;  (** merge shard [at + 1] into shard [at] *)
  s_splits : unit -> string list;  (** the live split vector *)
  s_shard_count : unit -> int;  (** the live shard count *)
  s_topo_version : unit -> int;  (** installed-topology version *)
}

let make_sharded (type a) (module E : Shard.ENGINE with type t = a)
    ~snapshots opts ~env ~dir =
  let module S = Shard.Make (E) in
  let t = S.open_store opts ~env ~dir in
  {
    s_dyn = Dyn.dyn_of (module S) t;
    s_shards = S.shard_count t;
    s_shard_of_key = (fun k -> S.shard_of_key t k);
    s_shard_iter = (fun i -> E.iterator (S.shard_stores t).(i));
    s_snapshot = (if snapshots then Some (fun () -> S.snapshot t) else None);
    s_release = S.release_snapshot t;
    s_get_at =
      (if snapshots then Some (fun snap k -> S.get_at t ~snapshot:snap k)
       else None);
    s_iter_at =
      (if snapshots then Some (fun snap -> S.iterator_at t ~snapshot:snap)
       else None);
    s_cache_counters =
      (fun () ->
        Option.map
          (fun c ->
            (Pdb_sstable.Block_cache.hits c, Pdb_sstable.Block_cache.misses c))
          (S.shared_block_cache t));
    s_split = (fun ~shard ~key -> S.split t ~shard ~key);
    s_merge = (fun ~at -> S.merge t ~at);
    s_splits = (fun () -> S.splits t);
    s_shard_count = (fun () -> S.shard_count t);
    s_topo_version = (fun () -> S.topology_version t);
  }

(** [open_sharded ?tweak ?env ?shards engine] opens [engine] behind the
    range-partitioned shard store.  [shards] overrides the profile's
    [O.shards]; split points come from [O.shard_splits] (uniform
    byte-interpolated splits when unset — workloads with a common key
    prefix should set explicit splits). *)
let open_sharded ?(tweak = Fun.id) ?env ?shards engine =
  let opts = normalize_repl engine (tweak (default_options engine)) in
  let opts =
    match shards with
    | Some n -> { opts with O.shards = max 1 n }
    | None -> opts
  in
  let env = match env with Some e -> e | None -> Env.create () in
  let dir = "db" in
  if opts.O.replicas > 0 then
    match engine with
    | Pebblesdb | Pebblesdb_one ->
      make_sharded (module Repl_pebbles) ~snapshots:true opts ~env ~dir
    | Hyperleveldb | Leveldb | Rocksdb ->
      make_sharded (module Repl_lsm) ~snapshots:true opts ~env ~dir
    | Btree -> make_sharded (module Repl_btree) ~snapshots:false opts ~env ~dir
    | Wiredtiger ->
      make_sharded (module Repl_wt) ~snapshots:false opts ~env ~dir
  else
    match engine with
    | Pebblesdb | Pebblesdb_one ->
      make_sharded (module Pebbles_engine) ~snapshots:true opts ~env ~dir
    | Hyperleveldb | Leveldb | Rocksdb ->
      make_sharded (module Lsm_engine) ~snapshots:true opts ~env ~dir
    | Btree -> make_sharded (module Btree_engine) ~snapshots:false opts ~env ~dir
    | Wiredtiger ->
    make_sharded (module Wt_engine) ~snapshots:false opts ~env ~dir

(** [open_engine ?tweak ?env ?shards engine] opens a fresh store.  [tweak]
    edits the profile (experiment-specific sizes); [env] reuses an
    existing environment (reopen scenarios).  [shards] — or a [tweak]
    setting [O.shards] above 1 — routes the store through the shard
    layer; [~shards:(Some 1)] exercises the shard layer with a single
    shard. *)
let open_engine ?(tweak = Fun.id) ?env ?shards engine =
  let sharded_via_opts =
    shards = None && (tweak (default_options engine)).O.shards > 1
  in
  if shards <> None || sharded_via_opts then
    (open_sharded ~tweak ?env ?shards engine).s_dyn
  else begin
    let opts = normalize_repl engine (tweak (default_options engine)) in
    let env = match env with Some e -> e | None -> Env.create () in
    let dir = "db" in
    if opts.O.replicas > 0 then
      match engine with
      | Pebblesdb | Pebblesdb_one ->
        Dyn.dyn_of (module Repl_pebbles) (Repl_pebbles.open_store opts ~env ~dir)
      | Hyperleveldb | Leveldb | Rocksdb ->
        Dyn.dyn_of (module Repl_lsm) (Repl_lsm.open_store opts ~env ~dir)
      | Btree ->
        Dyn.dyn_of (module Repl_btree) (Repl_btree.open_store opts ~env ~dir)
      | Wiredtiger ->
        Dyn.dyn_of (module Repl_wt) (Repl_wt.open_store opts ~env ~dir)
    else
      match engine with
      | Pebblesdb | Pebblesdb_one ->
        Dyn.dyn_of
          (module Pebbles_engine)
          (Pebbles_engine.open_store opts ~env ~dir)
      | Hyperleveldb | Leveldb | Rocksdb ->
        Dyn.dyn_of (module Lsm_engine) (Lsm_engine.open_store opts ~env ~dir)
      | Btree ->
        Dyn.dyn_of (module Btree_engine) (Btree_engine.open_store opts ~env ~dir)
      | Wiredtiger ->
        Dyn.dyn_of (module Wt_engine) (Wt_engine.open_store opts ~env ~dir)
  end

(** A replicated store with its failover surface exposed: promote backup
    [i] to a servable store (log shipping hands over the live replaying
    engine; file shipping recovers from the mirrored bytes), and reach a
    backup's environment to crash it or inspect its files. *)
type repl_handle = {
  rh_dyn : Dyn.dyn;
  rh_replicas : int;
  rh_strategy : O.repl_strategy;
  rh_promote : int -> Dyn.dyn;
  rh_backup_env : int -> Env.t;
}

(** [open_repl ?tweak ?env engine] opens [engine] replicated (at least
    one backup; more when the tweak raises [O.replicas]).  Unsharded:
    the failover surface is per-store, which is what the crash torture
    drives. *)
let open_repl ?(tweak = Fun.id) ?env engine =
  let opts = normalize_repl engine (tweak (default_options engine)) in
  let opts = { opts with O.replicas = max 1 opts.O.replicas } in
  let env = match env with Some e -> e | None -> Env.create () in
  let dir = "db" in
  let pack (type a)
      (module R : Pdb_repl.Repl_store.REPL with type t = a) (t : a) =
    {
      rh_dyn = Dyn.dyn_of (module R) t;
      rh_replicas = R.backup_count t;
      rh_strategy = R.strategy t;
      rh_promote = R.promote_dyn t;
      rh_backup_env = R.backup_env t;
    }
  in
  match engine with
  | Pebblesdb | Pebblesdb_one ->
    pack (module Repl_pebbles) (Repl_pebbles.open_store opts ~env ~dir)
  | Hyperleveldb | Leveldb | Rocksdb ->
    pack (module Repl_lsm) (Repl_lsm.open_store opts ~env ~dir)
  | Btree -> pack (module Repl_btree) (Repl_btree.open_store opts ~env ~dir)
  | Wiredtiger -> pack (module Repl_wt) (Repl_wt.open_store opts ~env ~dir)

(** The four key-value stores of the paper's main comparisons. *)
let paper_stores = [ Pebblesdb; Hyperleveldb; Leveldb; Rocksdb ]
