(** Device cost model.

    The paper's asymptotic analysis (§3.7) reasons in the Disk Access Model;
    this module is the concrete instance of that model used to convert IO
    counts into simulated time.  Costs are in nanoseconds.  Appends are
    sequential (cheap per byte, small setup); random block reads pay a setup
    latency per operation.  The aging factor models file-system fragmentation
    (Figure 5.2a): an aged file system turns parts of sequential writes into
    random ones, which we express as inflated setup costs and reduced
    sequential bandwidth. *)

type t = {
  write_byte_ns : float; (* sequential write cost per byte *)
  read_byte_ns : float;
  write_setup_ns : float; (* per append operation *)
  random_read_setup_ns : float; (* per random read operation *)
  seq_read_setup_ns : float; (* per sequential (compaction) read *)
  sync_ns : float; (* per fsync *)
  mutable aging : float; (* >= 1.0; 1.0 = fresh file system *)
  mutable parallel_probe_budget : int;
      (* concurrent random reads the device serves before probes queue
         behind each other (internal flash parallelism); 1 = serial.
         Drawn on by {!Probe} sessions. *)
}

(** Flash-SSD-like defaults: ~1 GB/s sequential writes, ~2 GB/s reads,
    ~80 us random-read latency, 4 concurrently-served probes. *)
let ssd () =
  {
    write_byte_ns = 1.0;
    read_byte_ns = 0.5;
    write_setup_ns = 2_000.0;
    random_read_setup_ns = 80_000.0;
    seq_read_setup_ns = 1_500.0;
    sync_ns = 50_000.0;
    aging = 1.0;
    parallel_probe_budget = 4;
  }

(** [set_aging t f] ages the device; [f = 1.0] is fresh, larger is older. *)
let set_aging t f =
  assert (f >= 1.0);
  t.aging <- f

(** [set_parallel_probe_budget t n] sets the number of probes the device
    overlaps; [n <= 1] serialises every probe. *)
let set_parallel_probe_budget t n = t.parallel_probe_budget <- max 1 n

type read_hint = Random_read | Sequential_read

let write_cost t ~bytes =
  (t.write_setup_ns +. (float_of_int bytes *. t.write_byte_ns)) *. t.aging

let read_cost t ~hint ~bytes =
  let setup =
    match hint with
    | Random_read -> t.random_read_setup_ns *. t.aging
    | Sequential_read -> t.seq_read_setup_ns *. t.aging
  in
  setup +. (float_of_int bytes *. t.read_byte_ns)

let sync_cost t = t.sync_ns *. t.aging
