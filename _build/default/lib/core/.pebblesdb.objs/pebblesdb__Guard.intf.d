lib/core/guard.mli: Pdb_sstable
