(** Probabilistic skip list.

    The memtable substrate (LSM puts go "to an in-memory skip list called
    the memtable", §2.2) and the conceptual ancestor of FLSM guards: a key
    that reaches height [h] appears in every list up to [h], just as a key
    chosen as a guard at level [i] is a guard at every level deeper than
    [i].

    Keys are ordered by a user-supplied comparator.  Entries are
    append-only: a duplicate insert adds a new node (memtables rely on the
    internal-key comparator making duplicates distinct via sequence
    numbers). *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  forward : ('k, 'v) node option array;
}

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  max_height : int;
  rng : Pdb_util.Rng.t;
  mutable head : ('k, 'v) node; (* sentinel; key/value unused *)
  mutable height : int;
  mutable length : int;
}

let branching = 4

let create ?(max_height = 12) ?(seed = 0x5eed) ~compare dummy_key dummy_value =
  let head =
    { key = dummy_key; value = dummy_value;
      forward = Array.make max_height None }
  in
  {
    compare;
    max_height;
    rng = Pdb_util.Rng.create seed;
    head;
    height = 1;
    length = 0;
  }

let length t = t.length

let random_height t =
  let rec go h =
    if h < t.max_height && Pdb_util.Rng.int t.rng branching = 0 then go (h + 1)
    else h
  in
  go 1

(* Find, for each list level, the last node whose key is < [key]. *)
let find_predecessors t key =
  let prev = Array.make t.max_height t.head in
  let rec descend node level =
    let next = node.forward.(level) in
    match next with
    | Some n when t.compare n.key key < 0 -> descend n level
    | _ ->
      prev.(level) <- node;
      if level > 0 then descend node (level - 1)
  in
  descend t.head (t.height - 1);
  prev

(** [insert t key value] adds an entry; duplicates are kept (newest is
    reachable first only through comparator design, so memtable comparators
    must order duplicates deterministically). *)
let insert t key value =
  let prev = find_predecessors t key in
  let h = random_height t in
  if h > t.height then begin
    for level = t.height to h - 1 do
      prev.(level) <- t.head
    done;
    t.height <- h
  end;
  let node = { key; value; forward = Array.make h None } in
  for level = 0 to h - 1 do
    node.forward.(level) <- prev.(level).forward.(level);
    prev.(level).forward.(level) <- Some node
  done;
  t.length <- t.length + 1

(** [seek t key] is the first entry with key >= [key], or [None]. *)
let seek t key =
  let prev = find_predecessors t key in
  match prev.(0).forward.(0) with
  | Some n -> Some (n.key, n.value)
  | None -> None

(** [find t key] is the value of the smallest entry >= [key] whose key
    compares equal to [key]. *)
let find t key =
  match seek t key with
  | Some (k, v) when t.compare k key = 0 -> Some v
  | Some _ | None -> None

let mem t key = Option.is_some (find t key)

(** [min_entry t] / [max_entry t] are the smallest / largest entries. *)
let min_entry t =
  match t.head.forward.(0) with
  | Some n -> Some (n.key, n.value)
  | None -> None

let max_entry t =
  let rec descend node level =
    match node.forward.(level) with
    | Some n -> descend n level
    | None -> if level = 0 then node else descend node (level - 1)
  in
  let last = descend t.head (t.height - 1) in
  if last == t.head then None else Some (last.key, last.value)

(** [iter t f] applies [f] to every entry in key order. *)
let iter t f =
  let rec go = function
    | Some n ->
      f n.key n.value;
      go n.forward.(0)
    | None -> ()
  in
  go t.head.forward.(0)

let fold t f acc =
  let acc = ref acc in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

(** Forward-only cursor over the list, used by memtable iterators. *)
module Cursor = struct
  type ('k, 'v) cursor = {
    list : ('k, 'v) t;
    mutable node : ('k, 'v) node option;
  }

  let make list = { list; node = None }

  let seek_to_first c = c.node <- c.list.head.forward.(0)

  let seek c key =
    let prev = find_predecessors c.list key in
    c.node <- prev.(0).forward.(0)

  let valid c = Option.is_some c.node

  let entry c =
    match c.node with
    | Some n -> (n.key, n.value)
    | None -> invalid_arg "Skiplist.Cursor.entry: invalid cursor"

  let next c =
    match c.node with
    | Some n -> c.node <- n.forward.(0)
    | None -> ()
end
