(** Simulated storage environment: an in-memory file system with IO
    accounting, device-time charging and crash simulation.

    This stands in for the paper's ext4-on-SSD testbed.  Every store in the
    repository performs all of its IO through an [Env.t], so byte counts
    (write amplification) and modeled device time are directly comparable
    across engines.

    Durability model: {!append} buffers data; {!sync} makes the current
    file contents crash-durable.  {!crash} truncates every file back to
    its last synced length (and removes never-synced files), after which
    stores exercise their recovery paths.  {!rename} is atomic and
    durable, matching how LevelDB-family stores install a new MANIFEST via
    CURRENT.  Positioned writes ({!write_at}, used by the page stores) are
    immediately durable — page engines carry their own journaling. *)

type t

(** An open append handle. *)
type writer

val create : ?device:Device.t -> unit -> t

val stats : t -> Io_stats.t
val device : t -> Device.t
val clock : t -> Clock.t

(** [create_file t name] opens [name] for appending, truncating any
    existing contents. *)
val create_file : t -> string -> writer

(** [append w s] appends [s]; charges sequential write cost. *)
val append : writer -> string -> unit

(** [sync w] makes the file contents crash-durable; charges fsync cost. *)
val sync : writer -> unit

val close : writer -> unit
val writer_size : writer -> int

(** [write_at t name ~pos s] overwrites bytes at [pos], extending the file
    with zeroes as needed; charges random-write cost. *)
val write_at : t -> string -> pos:int -> string -> unit

val exists : t -> string -> bool

(** @raise Sys_error when the file does not exist. *)
val file_size : t -> string -> int

(** [read t name ~pos ~len ~hint] reads a range, charging device cost per
    the read [hint].
    @raise Invalid_argument on an out-of-bounds range.
    @raise Sys_error when the file does not exist. *)
val read : t -> string -> pos:int -> len:int -> hint:Device.read_hint -> string

val read_all : t -> string -> hint:Device.read_hint -> string
val delete : t -> string -> unit

(** [rename t ~src ~dst] atomically (and durably) renames a file. *)
val rename : t -> src:string -> dst:string -> unit

(** All live file names (unordered). *)
val list : t -> string list

(** Total bytes stored across all files — the space-amplification
    numerator (Figure 5.3). *)
val total_file_bytes : t -> int

(** [crash t] simulates a power failure: every file loses its unsynced
    suffix; files that never reached a sync disappear. *)
val crash : t -> unit
