lib/kvs/memtable.mli: Internal_key Iter
