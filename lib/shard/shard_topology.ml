(** The durable shard topology: which directories hold the live shards
    and where the split keys sit.

    Elastic resplitting changes the router at run time, so recovery can
    no longer derive the topology from [Options]: a [TOPOLOGY] file under
    the store's root records the split vector and the directory id of
    every live shard.  Installation follows the MANIFEST/CURRENT idiom —
    write a temporary, sync it, then {!Pdb_simio.Env.rename} into place —
    so a topology change is atomic and durable: a crash anywhere inside a
    migration leaves either the old file or the new file, never a mix
    (the crash-consistency argument in DESIGN.md "Elastic sharding").

    Directory ids are never reused ([next_dir] only grows), so a shard
    directory created by a crashed migration can never be mistaken for a
    live shard: recovery deletes every [shards/<id>/] subtree whose id
    the topology does not name. *)

type t = {
  version : int;  (** monotonically increasing install counter *)
  next_dir : int;  (** next unused shard-directory id *)
  dirs : int array;  (** directory id of shard [i], in key order *)
  splits : string list;  (** [Array.length dirs - 1] sorted split keys *)
}

let file ~dir = dir ^ "/TOPOLOGY"

let encode t =
  let buf = Buffer.create 64 in
  Pdb_util.Varint.put_uvarint buf t.version;
  Pdb_util.Varint.put_uvarint buf t.next_dir;
  Pdb_util.Varint.put_uvarint buf (Array.length t.dirs);
  Array.iter (Pdb_util.Varint.put_uvarint buf) t.dirs;
  List.iter (Pdb_util.Varint.put_length_prefixed buf) t.splits;
  Buffer.contents buf

let decode s =
  let version, p = Pdb_util.Varint.get_uvarint s 0 in
  let next_dir, p = Pdb_util.Varint.get_uvarint s p in
  let n, p = Pdb_util.Varint.get_uvarint s p in
  let pos = ref p in
  let dirs =
    Array.init n (fun _ ->
        let v, p = Pdb_util.Varint.get_uvarint s !pos in
        pos := p;
        v)
  in
  let splits =
    List.init (max 0 (n - 1)) (fun _ ->
        let k, p = Pdb_util.Varint.get_length_prefixed s !pos in
        pos := p;
        k)
  in
  { version; next_dir; dirs; splits }

(** [load env ~dir] reads the installed topology, or [None] when the
    store has never resplit (static stores write no TOPOLOGY file). *)
let load env ~dir =
  let name = file ~dir in
  if not (Pdb_simio.Env.exists env name) then None
  else
    match Pdb_wal.Wal.Reader.read_all env name with
    | [ record ], _report -> Some (decode record)
    | _ -> failwith "Shard_topology: corrupt TOPOLOGY file"

(** [install env ~dir t] durably replaces the topology: the record is
    written (checksummed, WAL framing) to [TOPOLOGY.tmp], synced, and
    renamed over [TOPOLOGY] — all-or-nothing under any crash. *)
let install env ~dir t =
  let name = file ~dir in
  let tmp = name ^ ".tmp" in
  let log = Pdb_wal.Wal.Writer.create env tmp in
  Pdb_wal.Wal.Writer.add_record log (encode t);
  Pdb_wal.Wal.Writer.sync log;
  Pdb_simio.Env.rename env ~src:tmp ~dst:name
