(** Sstables: immutable sorted tables of internal-key/value entries.

    Layout: data blocks, then an optional bloom-filter block over user keys
    (PebblesDB's sstable-level filters, §4.1), then an index block mapping
    each data block's last key to its (offset, size) handle, then a fixed
    footer.  Entries are written once, in internal-key order, and never
    updated in place.

    When [prefix_bloom_len > 0] the filter block additionally records a
    tagged probe per distinct [prefix_bloom_len]-byte user-key prefix, so
    prefix-bounded scans can skip tables whose filter proves the prefix
    absent.  The length is recorded in the footer's padding word, making
    build-time and probe-time prefix lengths agree by construction. *)

type handle = { offset : int; size : int }

val footer_size : int

(** Summary of a finished table, recorded in the MANIFEST. *)
type meta = {
  number : int;
  file_size : int;
  entries : int;
  smallest : string;  (** encoded internal key *)
  largest : string;
}

val file_name : dir:string -> int -> string

module Builder : sig
  type t

  (** [create env ~dir ~number ~block_bytes ~bloom ~expected_keys] starts a
      new table file.  [bloom = true] attaches a per-table filter sized for
      [expected_keys]; [prefix_bloom_len > 0] also records user-key
      prefixes of that length in the same filter. *)
  val create :
    ?prefix_bloom_len:int ->
    Pdb_simio.Env.t -> dir:string -> number:int -> block_bytes:int ->
    bloom:bool -> expected_keys:int -> t

  (** [add t ikey value] appends an entry; internal keys must arrive in
      ascending order. *)
  val add : t -> string -> string -> unit

  val estimated_size : t -> int
  val entry_count : t -> int

  (** [finish t] writes filter, index and footer, syncs the file, and
      returns the table's metadata; an empty builder deletes its file and
      returns [None]. *)
  val finish : t -> meta option
end

(** An open table: index block resident in memory (the paper's cached
    index blocks); data blocks go through the shared block cache. *)
type reader

(** [open_reader ?hint env ~dir meta] opens a table, reading footer, index
    and filter.  Cold point-lookups pay three random reads; compaction
    passes [~hint:Sequential_read] since it streams its freshly-written
    inputs.
    @raise Failure on a bad magic number. *)
val open_reader :
  ?hint:Pdb_simio.Device.read_hint -> Pdb_simio.Env.t -> dir:string -> meta ->
  reader

(** [open_via_summary env ~dir meta summary] reopens an evicted table
    guided by its {!Index_summary}: no footer read, the index read billed
    as one inter-sample slice (excess bytes refunded to the clock), and
    the filter deferred until a probe needs it. *)
val open_via_summary :
  ?hint:Pdb_simio.Device.read_hint -> Pdb_simio.Env.t -> dir:string -> meta ->
  Index_summary.t -> reader

(** [may_contain r user_key] consults the table's bloom filter; [true] when
    no filter is attached.  Loads a deferred filter on first use. *)
val may_contain : reader -> string -> bool

(** [may_contain_prefix r prefix] is [false] only when the table was built
    with [prefix_bloom_len = String.length prefix] and its filter proves no
    stored user key starts with [prefix]. *)
val may_contain_prefix : reader -> string -> bool

val has_filter : reader -> bool

(** Whether the filter is decoded in memory (false while still lazy). *)
val filter_resident : reader -> bool

(** [set_on_filter_load r f] registers a hook run when a deferred filter
    materialises — {!resident_bytes} changes at that moment, and the
    byte-bounded table cache re-weighs its entry. *)
val set_on_filter_load : reader -> (unit -> unit) -> unit

(** The [prefix_bloom_len] this table was built with; 0 = none. *)
val prefix_len : reader -> int

(** In-memory footprint of the open table (index + filter), for Table 5.4. *)
val resident_bytes : reader -> int

(** [summarize ~stride r] digests an open table into an {!Index_summary}
    capturing its handles and actual resident footprint. *)
val summarize : stride:int -> reader -> Index_summary.t

(** [get r ~cache ~hint ikey] returns the first entry with internal key >=
    [ikey], reading at most one data block. *)
val get :
  reader -> cache:Block_cache.t -> hint:Pdb_simio.Device.read_hint -> string ->
  (string * string) option

(** [iterator r ~cache ~hint] is a two-level iterator over the table. *)
val iterator :
  reader -> cache:Block_cache.t -> hint:Pdb_simio.Device.read_hint ->
  Pdb_kvs.Iter.t

(** [recover_meta env ~dir ~number] reconstructs a table's metadata from
    the file alone — the repair path when the MANIFEST is lost.
    @raise Failure on an empty or unreadable table. *)
val recover_meta : Pdb_simio.Env.t -> dir:string -> number:int -> meta
