(* Compaction trace: reproduce Figure 2.1 (LSM sstables being rewritten
   during compaction) and Figure 3.1 (FLSM's guard layout) as textual
   storage-layout dumps over time.

   Run with: dune exec examples/compaction_trace.exe *)

module L = Pdb_lsm.Lsm_store
module P = Pebblesdb.Pebbles_store
module O = Pdb_kvs.Options

let key i = Printf.sprintf "k%06d" i

(* tiny stores so a few hundred keys trigger visible compaction *)
let tiny (o : O.t) =
  {
    o with
    O.memtable_bytes = 1024;
    level_bytes_base = 4 * 1024;
    sstable_target_bytes = 2 * 1024;
    block_bytes = 512;
    max_levels = 4;
    top_level_bits = 4;
    bit_decrement = 1;
  }

let () =
  print_endline "=== Figure 2.1 — LSM compaction rewrites the next level ===";
  let env = Pdb_simio.Env.create () in
  let db = L.open_store (tiny (O.hyperleveldb ())) ~env ~dir:"lsm" in
  let rng = Pdb_util.Rng.create 7 in
  List.iter
    (fun step ->
      for _ = 1 to 100 do
        L.put db (key (Pdb_util.Rng.int rng 2000)) (String.make 48 'v')
      done;
      Printf.printf "\n-- time t%d (after %d random puts) --\n" step (step * 100);
      print_string (L.describe db))
    [ 1; 2; 3; 4 ];
  let st = L.stats db in
  Printf.printf
    "\nLSM compactions so far: %d (read %d KB, wrote %d KB to rewrite \
     overlapping sstables)\n"
    st.Pdb_kvs.Engine_stats.compactions
    (st.Pdb_kvs.Engine_stats.compaction_bytes_read / 1024)
    (st.Pdb_kvs.Engine_stats.compaction_bytes_written / 1024);
  L.close db;

  print_endline "\n=== Figure 3.1 — FLSM guards across levels ===";
  let env = Pdb_simio.Env.create () in
  let db = P.open_store (tiny (O.pebblesdb ())) ~env ~dir:"flsm" in
  let rng = Pdb_util.Rng.create 7 in
  for _ = 1 to 600 do
    P.put db (key (Pdb_util.Rng.int rng 2000)) (String.make 48 'v')
  done;
  P.flush db;
  print_string (P.describe db);
  let st = P.stats db in
  Printf.printf
    "\nFLSM compactions: %d; guards committed: %d.  Note the overlapping \
     sstables *inside* guards and disjoint ranges *across* guards.\n"
    st.Pdb_kvs.Engine_stats.compactions
    st.Pdb_kvs.Engine_stats.guards_committed;
  P.close db
