(** Table cache: a bounded set of open table readers.

    The paper attributes PebblesDB's read advantage (§5.2 "Random Writes
    and Reads", §5.3 Workload C) to its fewer, larger sstables: the stores
    "cache a limited number of sstable index blocks (default: 1000)", so a
    store with many small files suffers index-block cache misses.  This
    cache models exactly that: opening an evicted table re-reads its
    footer, index and filter from storage.

    Two production-scale refinements layer on top:
    - [?bytes] switches the cache from entry-bounded to byte-bounded, so
      the budget tracks what the cache actually holds (big tables carry
      big indexes).
    - [?summary_stride > 0] keeps an {!Index_summary} per table ever
      opened, resident above the LRU; a reopen of an evicted table is
      then summary-guided ({!Table.open_via_summary}): no footer read,
      one index slice, filter deferred. *)

type t = {
  env : Pdb_simio.Env.t;
  dir : string;
  cache : (string, Table.reader) Pdb_util.Lru.t;
  by_bytes : bool;
  summary_stride : int; (* <= 0 disables summaries *)
  summaries : (int, Index_summary.t) Hashtbl.t;
  mutable summary_hits : int;
  mutable summary_misses : int;
}

(** [create ?bytes ?summary_stride env ~dir ~entries] — [bytes = Some b]
    bounds the cache by resident bytes instead of [entries]. *)
let create ?bytes ?(summary_stride = 0) env ~dir ~entries =
  let capacity, by_bytes =
    match bytes with Some b -> (max 1 b, true) | None -> (entries, false)
  in
  {
    env;
    dir;
    cache = Pdb_util.Lru.create ~capacity;
    by_bytes;
    summary_stride;
    summaries = Hashtbl.create 64;
    summary_hits = 0;
    summary_misses = 0;
  }

let key number = string_of_int number

let weight_of t reader =
  if t.by_bytes then max 1 (Table.resident_bytes reader) else 1

(** [find t meta] returns the open reader for [meta], opening (and charging
    IO for) it if not cached.  With summaries enabled, a reopen of a
    previously-summarized table is summary-guided and cheaper. *)
let find t (meta : Table.meta) =
  match Pdb_util.Lru.find t.cache (key meta.Table.number) with
  | Some reader -> reader
  | None ->
    let reader =
      if t.summary_stride > 0 then begin
        match Hashtbl.find_opt t.summaries meta.Table.number with
        | Some summary ->
          t.summary_hits <- t.summary_hits + 1;
          Table.open_via_summary t.env ~dir:t.dir meta summary
        | None ->
          t.summary_misses <- t.summary_misses + 1;
          let reader = Table.open_reader t.env ~dir:t.dir meta in
          Hashtbl.replace t.summaries meta.Table.number
            (Table.summarize ~stride:t.summary_stride reader);
          reader
      end
      else Table.open_reader t.env ~dir:t.dir meta
    in
    let k = key meta.Table.number in
    Pdb_util.Lru.insert t.cache k reader ~weight:(weight_of t reader);
    (* A summary-guided reader defers its filter block: the entry was
       weighed without the decoded bloom, so re-weigh it the moment the
       filter materialises — otherwise the byte budget tracks stale
       sizes and the cache silently over-admits. *)
    if t.by_bytes && Table.has_filter reader
       && not (Table.filter_resident reader)
    then
      Table.set_on_filter_load reader (fun () ->
          match Pdb_util.Lru.peek t.cache k with
          | Some r when r == reader ->
            Pdb_util.Lru.update_weight t.cache k ~weight:(weight_of t reader)
          | Some _ | None -> ());
    reader

(** [peek t meta] returns the cached reader without affecting recency or
    hit/miss counters — for opportunistic filter consultation that must
    not open anything or distort statistics. *)
let peek t (meta : Table.meta) =
  Pdb_util.Lru.peek t.cache (key meta.Table.number)

(** [evict t number] drops a table (called when its file is deleted after
    compaction), along with its summary — the file is gone. *)
let evict t number =
  Pdb_util.Lru.remove t.cache (key number);
  Hashtbl.remove t.summaries number

(** [known_resident_bytes t meta] is the actual decoded footprint of the
    table if known — from the open reader, else from its summary — and
    [None] for a never-opened table. *)
let known_resident_bytes t (meta : Table.meta) =
  match Pdb_util.Lru.peek t.cache (key meta.Table.number) with
  | Some reader -> Some (Table.resident_bytes reader)
  | None -> (
    match Hashtbl.find_opt t.summaries meta.Table.number with
    | Some s -> Some (Index_summary.resident_table_bytes s)
    | None -> None)

let summary_bytes t =
  Hashtbl.fold (fun _ s acc -> acc + Index_summary.size_bytes s) t.summaries 0

(** Modeled resident memory: cached tables' indexes and filters, plus the
    always-resident summaries. *)
let resident_bytes t =
  Pdb_util.Lru.fold t.cache
    (fun acc _ reader -> acc + Table.resident_bytes reader)
    0
  + summary_bytes t

(** Bytes the LRU's admission accounting believes it holds.  With a
    byte-bounded cache this must equal the summed actual resident bytes
    of the cached readers — the invariant the filter-load re-weigh
    maintains. *)
let accounted_bytes t = Pdb_util.Lru.used t.cache

let open_tables t = Pdb_util.Lru.length t.cache
let hits t = Pdb_util.Lru.hits t.cache
let misses t = Pdb_util.Lru.misses t.cache
let summary_hits t = t.summary_hits
let summary_misses t = t.summary_misses
let summaries t = Hashtbl.length t.summaries
