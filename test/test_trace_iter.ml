(* Tests for workload traces and the FLSM level iterator. *)

module Trace = Pdb_ycsb.Trace
module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter
module Ik = Pdb_kvs.Internal_key
module G = Pebblesdb.Guard

let check = Alcotest.check

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------- trace encode/decode ---------- *)

let test_trace_op_roundtrip () =
  let ops =
    [
      Trace.Put ("key1", "value1");
      Trace.Delete "key2";
      Trace.Get "key3";
      Trace.Scan ("key4", 42);
      Trace.Put ("", "");
    ]
  in
  let env = Env.create () in
  let r = Trace.Recorder.create env "trace" in
  List.iter (Trace.Recorder.add r) ops;
  check Alcotest.int "op count" (List.length ops) (Trace.Recorder.close r);
  let back = Trace.read env "trace" in
  Alcotest.(check bool) "roundtrip" true (back = ops)

let prop_trace_roundtrip =
  qtest "trace roundtrip (random ops)"
    QCheck.(list (pair (string_of_size (QCheck.Gen.return 8)) small_int))
    (fun pairs ->
      let ops =
        List.map
          (fun (k, n) ->
            match n mod 4 with
            | 0 -> Trace.Put (k, string_of_int n)
            | 1 -> Trace.Delete k
            | 2 -> Trace.Get k
            | _ -> Trace.Scan (k, n))
          pairs
      in
      let env = Env.create () in
      let r = Trace.Recorder.create env "t" in
      List.iter (Trace.Recorder.add r) ops;
      ignore (Trace.Recorder.close r);
      Trace.read env "t" = ops)

let test_trace_replay_counts () =
  let env = Env.create () in
  let r = Trace.Recorder.create env "trace" in
  Trace.Recorder.add r (Trace.Put ("a", "1"));
  Trace.Recorder.add r (Trace.Put ("b", "2"));
  Trace.Recorder.add r (Trace.Get "a");
  Trace.Recorder.add r (Trace.Get "missing");
  Trace.Recorder.add r (Trace.Delete "a");
  Trace.Recorder.add r (Trace.Scan ("a", 5));
  ignore (Trace.Recorder.close r);
  let store =
    Pdb_harness.Stores.open_engine Pdb_harness.Stores.Pebblesdb
  in
  let res = Trace.replay env "trace" store in
  check Alcotest.int "ops" 6 res.Trace.ops;
  check Alcotest.int "puts" 2 res.Trace.puts;
  check Alcotest.int "gets" 2 res.Trace.gets;
  check Alcotest.int "hits" 1 res.Trace.hits;
  check Alcotest.int "deletes" 1 res.Trace.deletes;
  check Alcotest.int "scans" 1 res.Trace.scans;
  check Alcotest.(option string) "final state" None (store.Dyn.d_get "a");
  check Alcotest.(option string) "b survives" (Some "2") (store.Dyn.d_get "b");
  store.Dyn.d_close ()

let test_ycsb_trace_replay_identical_across_engines () =
  let trace_env = Env.create () in
  let n =
    Trace.record_ycsb trace_env "trace" Pdb_ycsb.Workload.workload_a
      ~records:500 ~operations:500 ~value_bytes:64 ~seed:3
  in
  Alcotest.(check bool) "trace recorded" true (n >= 1000);
  let final_state engine =
    let store =
      Pdb_harness.Stores.open_engine
        ~tweak:(fun o -> { o with Pdb_kvs.Options.memtable_bytes = 8 * 1024 })
        engine
    in
    let res = Trace.replay trace_env "trace" store in
    let contents = Iter.to_list (store.Dyn.d_iterator ()) in
    store.Dyn.d_close ();
    (res, contents)
  in
  let res_p, state_p = final_state Pdb_harness.Stores.Pebblesdb in
  let res_h, state_h = final_state Pdb_harness.Stores.Hyperleveldb in
  Alcotest.(check bool) "same op counts" true (res_p = res_h);
  Alcotest.(check bool) "same final contents" true (state_p = state_h)

(* ---------- flsm level iterator ---------- *)

let ikey k = Ik.encode ~user_key:k ~seq:1 ~kind:Ik.Value

let build_table env ~number entries =
  let b =
    Pdb_sstable.Table.Builder.create env ~dir:"db" ~number ~block_bytes:512
      ~bloom:true ~expected_keys:(List.length entries)
  in
  List.iter (fun (k, v) -> Pdb_sstable.Table.Builder.add b (ikey k) v) entries;
  Option.get (Pdb_sstable.Table.Builder.finish b)

let make_level env specs =
  (* specs: (guard_keys, tables per guard as key lists) *)
  let level = G.create_level () in
  G.commit_guards level (List.filter_map fst specs);
  let number = ref 1 in
  List.iter
    (fun (_, tables) ->
      List.iter
        (fun keys ->
          let entries = List.map (fun k -> (k, "v-" ^ k)) keys in
          let meta = build_table env ~number:!number entries in
          incr number;
          G.attach level meta)
        tables)
    specs;
  level

let iter_of env level =
  let tc = Pdb_sstable.Table_cache.create env ~dir:"db" ~entries:100 in
  let bc = Pdb_sstable.Block_cache.create ~capacity:(1 lsl 20) in
  Pebblesdb.Flsm_level_iter.create ~level ~cache:tc ~block_cache:bc
    ~hint:Pdb_simio.Device.Random_read
    ~on_table:(fun () -> ())
    ()

let test_level_iter_merges_within_guard () =
  let env = Env.create () in
  (* one guard "g" with two overlapping tables *)
  let level =
    make_level env
      [ (None, [ [ "a"; "c" ] ]); (Some "g", [ [ "g"; "m" ]; [ "h"; "k" ] ]) ]
  in
  let it = iter_of env level in
  let keys = List.map (fun (k, _) -> Ik.user_key k) (Iter.to_list it) in
  check Alcotest.(list string) "merged order"
    [ "a"; "c"; "g"; "h"; "k"; "m" ]
    keys

let test_level_iter_skips_empty_guards () =
  let env = Env.create () in
  let level =
    make_level env
      [ (None, [ [ "a" ] ]); (Some "g", []); (Some "p", [ [ "q"; "r" ] ]) ]
  in
  let it = iter_of env level in
  it.Iter.seek (Ik.max_for_lookup "b");
  check Alcotest.string "skips empty guard g" "q"
    (Ik.user_key (it.Iter.key ()));
  it.Iter.next ();
  check Alcotest.string "next" "r" (Ik.user_key (it.Iter.key ()));
  it.Iter.next ();
  Alcotest.(check bool) "exhausted" false (it.Iter.valid ())

let test_level_iter_seek_lands_in_guard () =
  let env = Env.create () in
  let level =
    make_level env
      [
        (None, [ [ "a"; "b" ] ]);
        (Some "g", [ [ "g"; "z1" ] |> List.map (fun k -> k) ]);
      ]
  in
  (* table in guard g spans g..z1; the guard owns [g, inf) *)
  let it = iter_of env level in
  it.Iter.seek (Ik.max_for_lookup "h");
  check Alcotest.string "inside guard" "z1" (Ik.user_key (it.Iter.key ()))

let test_level_iter_empty_level () =
  let env = Env.create () in
  let level = G.create_level () in
  let it = iter_of env level in
  it.Iter.seek_to_first ();
  Alcotest.(check bool) "empty" false (it.Iter.valid ());
  it.Iter.seek (Ik.max_for_lookup "x");
  Alcotest.(check bool) "seek empty" false (it.Iter.valid ())

let prop_level_iter_equals_sorted_union =
  qtest "level iterator = sorted union of its tables" ~count:15
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30)
              (string_of_size (QCheck.Gen.return 4)))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      match keys with
      | [] -> true
      | _ ->
        let env = Env.create () in
        (* split keys across a guard at the median *)
        let arr = Array.of_list keys in
        let mid = arr.(Array.length arr / 2) in
        let left = List.filter (fun k -> k < mid) keys in
        let right = List.filter (fun k -> k >= mid) keys in
        let specs =
          [ (None, if left = [] then [] else [ left ]);
            (Some mid, if right = [] then [] else [ right ]) ]
        in
        let level = make_level env specs in
        let it = iter_of env level in
        let got = List.map (fun (k, _) -> Ik.user_key k) (Iter.to_list it) in
        got = keys)

let () =
  Alcotest.run "trace-leveliter"
    [
      ( "trace",
        [
          Alcotest.test_case "op roundtrip" `Quick test_trace_op_roundtrip;
          prop_trace_roundtrip;
          Alcotest.test_case "replay counts" `Quick test_trace_replay_counts;
          Alcotest.test_case "identical across engines" `Quick
            test_ycsb_trace_replay_identical_across_engines;
        ] );
      ( "flsm-level-iter",
        [
          Alcotest.test_case "merges within guard" `Quick
            test_level_iter_merges_within_guard;
          Alcotest.test_case "skips empty guards" `Quick
            test_level_iter_skips_empty_guards;
          Alcotest.test_case "seek in guard" `Quick
            test_level_iter_seek_lands_in_guard;
          Alcotest.test_case "empty level" `Quick test_level_iter_empty_level;
          prop_level_iter_equals_sorted_union;
        ] );
    ]
