test/test_pebbles.mli:
