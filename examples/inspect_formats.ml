(* Format inspector: a guided dump of the on-storage formats — WAL records,
   MANIFEST version edits (including guard metadata), and sstable layout —
   the equivalent of LevelDB's `leveldbutil dump` against a live store.

   Run with: dune exec examples/inspect_formats.exe *)

module P = Pebblesdb.Pebbles_store
module Env = Pdb_simio.Env
module Ik = Pdb_kvs.Internal_key

let () =
  let env = Env.create () in
  let opts =
    { (Pdb_kvs.Options.pebblesdb ()) with
      Pdb_kvs.Options.memtable_bytes = 4 * 1024 }
  in
  let db = P.open_store opts ~env ~dir:"db" in
  for i = 0 to 799 do
    P.put db (Printf.sprintf "key%05d" i) (Printf.sprintf "value-%05d" i)
  done;
  P.flush db;

  (* ---- file census ---- *)
  print_endline "== files in the store ==";
  let files = List.sort compare (Env.list env) in
  List.iter
    (fun name -> Printf.printf "  %-24s %8d bytes\n" name (Env.file_size env name))
    files;

  (* ---- MANIFEST: version edits ---- *)
  print_endline "\n== MANIFEST version edits (newest manifest) ==";
  (match Pdb_manifest.Manifest.recover env ~dir:"db" with
   | None -> print_endline "  (no manifest)"
   | Some (name, edits) ->
     Printf.printf "  %s: %d edits\n" name (List.length edits);
     List.iteri
       (fun i (e : Pdb_manifest.Manifest.edit) ->
         Printf.printf "  edit %d:" i;
         (match e.Pdb_manifest.Manifest.log_number with
          | Some n -> Printf.printf " log=%d" n
          | None -> ());
         (match e.Pdb_manifest.Manifest.last_sequence with
          | Some n -> Printf.printf " last_seq=%d" n
          | None -> ());
         Printf.printf " +files=%d -files=%d +guards=%d -guards=%d\n"
           (List.length e.Pdb_manifest.Manifest.added_files)
           (List.length e.Pdb_manifest.Manifest.deleted_files)
           (List.length e.Pdb_manifest.Manifest.added_guards)
           (List.length e.Pdb_manifest.Manifest.deleted_guards);
         List.iteri
           (fun j (level, key) ->
             if j < 3 then Printf.printf "      guard@L%d %S\n" level key)
           e.Pdb_manifest.Manifest.added_guards)
       edits);

  (* ---- one sstable, block by block ---- *)
  print_endline "\n== first sstable, decoded ==";
  (match
     List.find_opt (fun f -> Filename.check_suffix f ".sst") files
   with
   | None -> print_endline "  (no sstable yet)"
   | Some name ->
     let metas = P.sstable_metas db in
     let meta =
       List.find
         (fun (m : Pdb_sstable.Table.meta) ->
           Pdb_sstable.Table.file_name ~dir:"db" m.Pdb_sstable.Table.number
           = name)
         metas
     in
     Printf.printf "  %s: %d entries, range [%s .. %s]\n" name
       meta.Pdb_sstable.Table.entries
       (Ik.user_key meta.Pdb_sstable.Table.smallest)
       (Ik.user_key meta.Pdb_sstable.Table.largest);
     let reader = Pdb_sstable.Table.open_reader env ~dir:"db" meta in
     Printf.printf "  resident index+filter: %d bytes; bloom filter: %s\n"
       (Pdb_sstable.Table.resident_bytes reader)
       (if Pdb_sstable.Table.has_filter reader then "present" else "absent");
     let cache = Pdb_sstable.Block_cache.create ~capacity:(1 lsl 20) in
     let it =
       Pdb_sstable.Table.iterator reader ~cache
         ~hint:Pdb_simio.Device.Sequential_read
     in
     it.Pdb_kvs.Iter.seek_to_first ();
     Printf.printf "  first entries:\n";
     for _ = 1 to 5 do
       if it.Pdb_kvs.Iter.valid () then begin
         let ik = it.Pdb_kvs.Iter.key () in
         Printf.printf "    %s @seq%d -> %S\n" (Ik.user_key ik) (Ik.seq ik)
           (it.Pdb_kvs.Iter.value ());
         it.Pdb_kvs.Iter.next ()
       end
     done);

  (* ---- WAL record framing ---- *)
  print_endline "\n== WAL record framing ==";
  let w = Pdb_wal.Wal.Writer.create env "demo.log" in
  Pdb_wal.Wal.Writer.add_record w "a small record";
  Pdb_wal.Wal.Writer.add_record w (String.make 40_000 'x');
  Pdb_wal.Wal.Writer.close w;
  let records, _report = Pdb_wal.Wal.Reader.read_all env "demo.log" in
  Printf.printf
    "  wrote 2 records (one spanning two 32KB blocks); reader recovered %d \
     records of sizes %s\n"
    (List.length records)
    (String.concat ", "
       (List.map (fun r -> string_of_int (String.length r)) records));

  (* ---- the store's own view ---- *)
  print_endline "\n== store layout (guards) ==";
  print_string (P.describe db);
  P.close db
