lib/sstable/level_iter.ml: Array Option Pdb_kvs Table Table_cache
