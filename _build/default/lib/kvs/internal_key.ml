(** Internal keys: user key ⊕ sequence number ⊕ kind.

    As in LevelDB (§2.2 of the paper), updating or deleting a key never
    modifies data in place — the key is re-inserted with a higher sequence
    number, deletions carrying a tombstone flag.  The most recent version of
    a key is the one with the highest sequence number.

    Encoding: [user_key ^ fixed64(seq << 8 | kind)], so an encoded internal
    key can be stored in sstable blocks as an opaque string.  Ordering is by
    user key ascending, then sequence number *descending* (newest first),
    then kind. *)

type kind = Deletion | Value

let kind_to_int = function Deletion -> 0 | Value -> 1
let kind_of_int = function
  | 0 -> Deletion
  | 1 -> Value
  | n -> invalid_arg (Printf.sprintf "Internal_key.kind_of_int %d" n)

let trailer_size = 8

(** [encode ~user_key ~seq ~kind] builds an encoded internal key. *)
let encode ~user_key ~seq ~kind =
  let buf = Buffer.create (String.length user_key + trailer_size) in
  Buffer.add_string buf user_key;
  let packed =
    Int64.logor
      (Int64.shift_left (Int64.of_int seq) 8)
      (Int64.of_int (kind_to_int kind))
  in
  Pdb_util.Varint.put_fixed64 buf packed;
  Buffer.contents buf

(** [user_key ikey] extracts the user portion. *)
let user_key ikey =
  let n = String.length ikey in
  assert (n >= trailer_size);
  String.sub ikey 0 (n - trailer_size)

let seq ikey =
  let n = String.length ikey in
  let packed = Pdb_util.Varint.get_fixed64 ikey (n - trailer_size) in
  Int64.to_int (Int64.shift_right_logical packed 8)

let kind ikey =
  let n = String.length ikey in
  let packed = Pdb_util.Varint.get_fixed64 ikey (n - trailer_size) in
  kind_of_int (Int64.to_int (Int64.logand packed 0xffL))

(** Total order over encoded internal keys: user key ascending, sequence
    descending, kind descending — so the freshest entry for a user key sorts
    first. *)
let compare a b =
  let ua = user_key a and ub = user_key b in
  let c = String.compare ua ub in
  if c <> 0 then c
  else
    let c = Int.compare (seq b) (seq a) in
    if c <> 0 then c
    else Int.compare (kind_to_int (kind b)) (kind_to_int (kind a))

(** [max_for_lookup user_key] is the internal key that sorts before every
    stored version of [user_key]: seeking to it lands on the freshest
    version visible at the largest sequence number. *)
let max_seq = (1 lsl 56) - 1

let max_for_lookup user_key = encode ~user_key ~seq:max_seq ~kind:Value

(** [lookup_at ~user_key ~seq] is the lookup key for a snapshot read:
    seeking to it lands on the freshest version visible at sequence number
    [seq]. *)
let lookup_at ~user_key ~seq = encode ~user_key ~seq ~kind:Value

let pp ppf ikey =
  Fmt.pf ppf "%S@%d%s" (user_key ikey) (seq ikey)
    (match kind ikey with Deletion -> "(del)" | Value -> "")
