(** Probabilistic guard selection (§3.2, §4.4).

    A key becomes a guard by hashing: PebblesDB hashes every inserted key
    with MurmurHash and examines its trailing (least-significant) set bits.
    A key is a level-1 guard when [top_level_bits] consecutive LSBs are
    set; each deeper level relaxes the requirement by [bit_decrement]
    bits, so deeper levels have exponentially more guards.  Because
    selection is a pure function of the key, guard choice is deterministic
    across runs and across crash recovery, and — like a skip list — a key
    chosen at level [i] is a guard at every level deeper than [i]. *)

(** [guard_level opts key] is [Some l] when [key] qualifies as a guard at
    levels [l .. max_levels-1], or [None] for an ordinary key. *)
val guard_level : Pdb_kvs.Options.t -> string -> int option

(** [is_guard_at opts key ~level] tests guard-hood at one level. *)
val is_guard_at : Pdb_kvs.Options.t -> string -> level:int -> bool
