(** Recovery torture: crash-point sweeps against an in-memory oracle.

    A seeded operation trace is run against an engine whose environment
    carries a {!Pdb_simio.Env.Fault_plan}; the plan crashes the run at the
    Nth IO event, with torn writes at block granularity and occasional
    garbled tails.  The store is then reopened over the crashed file
    system and its recovered contents are checked against a pure
    in-memory oracle of the acknowledged operations:

    - every acknowledged write (the stores run with [wal_sync_writes])
      must be present with its exact value;
    - the single operation in flight at the crash may be present or
      absent, but nothing else may differ — no phantom keys, no resurrected
      deletes, no reordered overwrites;
    - iteration must agree with point lookups and stay strictly sorted.

    Sweeping N across the whole trace visits every crash point the trace
    can produce: mid-append, after the Nth sync, between a MANIFEST rename
    and the WAL creation that follows it, inside background flush and
    compaction jobs.  Every 7th point also arms a second plan during
    recovery itself (crash-during-recovery, and recovery-after-that). *)

module Env = Pdb_simio.Env
module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Rng = Pdb_util.Rng

type op =
  | Put of string * string
  | Delete of string
  | Flush
  | Compact

let op_name = function
  | Put (k, _) -> "put " ^ k
  | Delete k -> "delete " ^ k
  | Flush -> "flush"
  | Compact -> "compact"

let key i = Printf.sprintf "key%03d" i

(** Seeded trace over a small keyspace: mostly puts, some deletes, the
    occasional explicit flush or full compaction (which exercises the
    background scheduler's crash points). *)
let gen_trace ~seed ~ops ~keyspace =
  let rng = Rng.create seed in
  List.init ops (fun i ->
      let k = key (Rng.int rng keyspace) in
      match Rng.int rng 20 with
      | 0 -> Flush
      | 1 -> Compact
      | r when r < 5 -> Delete k
      | _ -> Put (k, Printf.sprintf "v%06d-%s" i k))

(* Durability profile for the sweep: acked writes are synced (so the
   oracle may demand them back) and the memtable is small enough that a
   short trace crosses flush/compaction machinery many times.  With
   [shards > 1] the same trace runs against the range-partitioned store
   (lib/shard): the crash then lands inside ONE shard's flush/compaction/
   WAL machinery while the other shards idle, and recovery must bring the
   whole store back to the oracle. *)
let tweak ?policy ~shards ~keyspace (o : O.t) =
  let o = { o with O.memtable_bytes = 2048; wal_sync_writes = true } in
  let o =
    match policy with
    | None -> o
    | Some p -> { o with O.compaction_policy = p }
  in
  if shards <= 1 then o
  else
    {
      o with
      O.shards;
      shard_splits =
        List.init (shards - 1) (fun i -> key ((i + 1) * keyspace / shards));
    }

let apply (db : Dyn.dyn) = function
  | Put (k, v) -> db.Dyn.d_put k v
  | Delete k -> db.Dyn.d_delete k
  | Flush -> db.Dyn.d_flush ()
  | Compact -> db.Dyn.d_compact_all ()

let oracle_apply oracle = function
  | Put (k, v) -> Hashtbl.replace oracle k v
  | Delete k -> Hashtbl.remove oracle k
  | Flush | Compact -> ()

(* Run the trace, acking each op into the oracle only after the engine
   returns.  On an injected crash, the raising op is the single in-flight
   op whose effect is allowed to be either present or absent. *)
let run_trace db oracle trace =
  let rec go = function
    | [] -> None
    | op :: rest -> (
      match apply db op with
      | () ->
        oracle_apply oracle op;
        go rest
      | exception Env.Injected_crash _ -> Some op)
  in
  go trace

(** [count_events engine ~seed ~trace] runs the whole trace under a plan
    that never fires, counting every IO event — the number of distinct
    crash points the sweep can target. *)
let count_events ?policy ?(shards = 1) ?(keyspace = 48) engine ~seed ~trace =
  let env = Env.create () in
  let plan = Env.Fault_plan.create ~seed ~crash_after:max_int () in
  Env.set_fault_plan env plan;
  let db =
    Stores.open_engine ~tweak:(tweak ?policy ~shards ~keyspace) ~env engine
  in
  let oracle = Hashtbl.create 64 in
  (match run_trace db oracle trace with
   | None -> ()
   | Some op -> failwith ("count_events: unexpected crash at " ^ op_name op));
  (* read the count before close: the sweep crashes instead of closing,
     so close-time IO events are not reachable crash points *)
  let ticks = Env.Fault_plan.ticks plan in
  db.Dyn.d_close ();
  ticks

(* What recovery is allowed to return for [k]: the oracle's view, or — for
   the key touched by the in-flight op — the in-flight view. *)
let acceptable oracle in_flight k =
  let base = Hashtbl.find_opt oracle k in
  let alt =
    match in_flight with
    | Some (Put (k', v)) when k' = k -> Some (Some v)
    | Some (Delete k') when k' = k -> Some None
    | _ -> None
  in
  (base, alt)

let matches got (base, alt) =
  got = base || (match alt with Some a -> got = a | None -> false)

let show = function None -> "<absent>" | Some v -> v

(* Check every key by point lookup, then sweep the iterator for phantom or
   reordered entries.  Returns failure descriptions. *)
let verify (db : Dyn.dyn) oracle in_flight ~keyspace =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  for i = 0 to keyspace - 1 do
    let k = key i in
    let want = acceptable oracle in_flight k in
    let got = db.Dyn.d_get k in
    if not (matches got want) then
      err "get %s: recovered %s, oracle %s" k (show got) (show (fst want))
  done;
  let it = db.Dyn.d_iterator () in
  let prev = ref "" in
  let seen = Hashtbl.create 64 in
  it.Pdb_kvs.Iter.seek_to_first ();
  while it.Pdb_kvs.Iter.valid () do
    let k = it.Pdb_kvs.Iter.key () and v = it.Pdb_kvs.Iter.value () in
    if !prev <> "" && String.compare !prev k >= 0 then
      err "iterator order violated: %s then %s" !prev k;
    prev := k;
    Hashtbl.replace seen k ();
    if not (matches (Some v) (acceptable oracle in_flight k)) then
      err "iterator phantom %s=%s" k v;
    it.Pdb_kvs.Iter.next ()
  done;
  Hashtbl.iter
    (fun k v ->
      ignore v;
      if
        (not (Hashtbl.mem seen k))
        && not (matches None (acceptable oracle in_flight k))
      then err "iterator missed %s" k)
    oracle;
  (try db.Dyn.d_check_invariants () with
   | Failure m -> err "invariant violated after recovery: %s" m);
  List.rev !errors

type result = {
  engine : string;
  total_events : int;  (** IO events in a crash-free run of the trace *)
  crash_points : int;  (** distinct crash points actually swept *)
  double_crashes : int;  (** points that also crashed during recovery *)
  background_crashes : int;  (** crashes that fired in background jobs *)
  torn_crashes : int;  (** crashes that partially persisted unsynced data *)
  failures : (int * string) list;  (** (crash point, what went wrong) *)
}

(** [run ?seed ?ops ?keyspace ?max_points ?shards ?policy engine] sweeps
    crash points across the trace and verifies recovery at each.
    [max_points] bounds the sweep (evenly strided across all events);
    [shards > 1] runs the trace against the range-partitioned store;
    [policy] pins the compaction policy (remapping the engine to one that
    implements it, as the CLIs do). *)
let run ?(seed = 0xFA17) ?(ops = 140) ?(keyspace = 48) ?(max_points = 64)
    ?(shards = 1) ?policy engine =
  let engine =
    match policy with
    | None -> engine
    | Some p -> Stores.engine_for_policy engine p
  in
  let tweak = tweak ?policy ~shards ~keyspace in
  let trace = gen_trace ~seed ~ops ~keyspace in
  let total_events =
    count_events ?policy ~shards ~keyspace engine ~seed ~trace
  in
  let stride = max 1 (total_events / max_points) in
  let crash_points = ref 0 in
  let double_crashes = ref 0 in
  let background_crashes = ref 0 in
  let torn_crashes = ref 0 in
  let failures = ref [] in
  let n = ref 1 in
  while !n <= total_events do
    let point = !n in
    incr crash_points;
    let env = Env.create () in
    (* seed varies per point so the torn-write choices differ too *)
    let plan = Env.Fault_plan.create ~seed:(seed + point) ~crash_after:point () in
    Env.set_fault_plan env plan;
    let oracle = Hashtbl.create 64 in
    let in_flight = ref None in
    (try
       let db = Stores.open_engine ~tweak ~env engine in
       in_flight := run_trace db oracle trace
     with Env.Injected_crash _ ->
       (* fired during the initial open: nothing acked yet *)
       ());
    if not (Env.Fault_plan.fired plan) then
      failures :=
        (point, "plan never fired: trace ended before the crash point")
        :: !failures
    else begin
      if Env.Fault_plan.fired_in_background plan then incr background_crashes;
      Env.crash env;
      if Env.Fault_plan.torn_files plan > 0 then incr torn_crashes;
      let reopen () = Stores.open_engine ~tweak ~env engine in
      match
        (* index-based, not point-based: the sweep stride can share a
           factor with 7, which would starve the double-crash schedule *)
        if !crash_points mod 7 = 0 then begin
          (* crash during recovery itself, then recover from that *)
          let plan2 =
            Env.Fault_plan.create
              ~seed:((seed * 31) + point)
              ~crash_after:(1 + (point mod 13))
              ()
          in
          Env.set_fault_plan env plan2;
          match reopen () with
          | db ->
            Env.clear_fault_plan env;
            Ok db
          | exception Env.Injected_crash _ ->
            incr double_crashes;
            Env.crash env;
            Env.clear_fault_plan env;
            (try Ok (reopen ()) with e -> Error e)
        end
        else try Ok (reopen ()) with e -> Error e
      with
      | Error e ->
        failures :=
          (point, "recovery raised " ^ Printexc.to_string e) :: !failures
      | Ok db ->
        List.iter
          (fun msg -> failures := (point, msg) :: !failures)
          (verify db oracle !in_flight ~keyspace);
        db.Dyn.d_close ()
    end;
    n := !n + stride
  done;
  {
    engine =
      Stores.engine_name engine
      ^ (match policy with
        | None -> ""
        | Some p -> "/" ^ O.compaction_policy_name p)
      ^ (if shards > 1 then Printf.sprintf " x%d shards" shards else "");
    total_events;
    crash_points = !crash_points;
    double_crashes = !double_crashes;
    background_crashes = !background_crashes;
    torn_crashes = !torn_crashes;
    failures = List.rev !failures;
  }

let pp_result ppf r =
  Fmt.pf ppf
    "%s: %d/%d crash points (%d double, %d background, %d torn), %d failures"
    r.engine r.crash_points r.total_events r.double_crashes
    r.background_crashes r.torn_crashes (List.length r.failures)

(* ---------- elastic migration torture ---------- *)

type topo_action = Split of int | Merge of int

(* Two shards with the controller parked: every split/merge in the sweep
   is forced by the schedule, so the migration machinery (fence, copy
   jobs, durable install, clean) sits at known op indices and the crash
   sweep can land inside every phase of it. *)
let elastic_tweak ~keyspace (o : O.t) =
  {
    o with
    O.memtable_bytes = 2048;
    wal_sync_writes = true;
    shards = 2;
    shard_splits = [ key (keyspace / 2) ];
    elastic = true;
    elastic_window_ops = max_int;
  }

let apply_action (sh : Stores.sharded) = function
  | Split ki ->
    let k = key ki in
    ignore (sh.Stores.s_split ~shard:(sh.Stores.s_shard_of_key k) ~key:k)
  | Merge at ->
    let n = sh.Stores.s_shard_count () in
    if n > 1 then ignore (sh.Stores.s_merge ~at:(min at (n - 2)))

(* Forced moves spread across the trace: carve, collapse, re-carve — the
   re-splits move ranges that already migrated once. *)
let elastic_schedule ~ops ~keyspace =
  [
    (ops / 7, Split (keyspace / 4));
    (2 * ops / 7, Split (3 * keyspace / 4));
    (3 * ops / 7, Merge 0);
    (4 * ops / 7, Split (keyspace / 8));
    (5 * ops / 7, Merge 1);
    (6 * ops / 7, Merge 0);
  ]

(* Run the trace with the schedule interleaved.  Returns the data op in
   flight when an injected crash fired, or None — a crash inside a
   forced topology action propagates to the caller (migrations move
   copies of acked data; they have no data effect of their own). *)
let run_trace_elastic (sh : Stores.sharded) ~schedule oracle trace =
  let rec go i = function
    | [] -> None
    | op :: rest -> (
      (match List.assoc_opt i schedule with
       | Some a -> apply_action sh a
       | None -> ());
      match apply sh.Stores.s_dyn op with
      | () ->
        oracle_apply oracle op;
        go (i + 1) rest
      | exception Env.Injected_crash _ -> Some op)
  in
  go 0 trace

(** [run_elastic ?seed ?ops ?keyspace ?max_points engine] sweeps crash
    points across a trace that live-splits, merges and migrates shards
    at scheduled op indices.  At every crash point the store is
    reopened (every 7th point crashing again during recovery) and
    checked two ways: the data must match the oracle exactly, and the
    recovered split vector must be one of the topologies the schedule
    installs — a migration lands wholly old or wholly new, never a
    mix. *)
let run_elastic ?(seed = 0xFA17) ?(ops = 140) ?(keyspace = 48)
    ?(max_points = 64) engine =
  let tweak = elastic_tweak ~keyspace in
  let trace = gen_trace ~seed ~ops ~keyspace in
  let schedule = elastic_schedule ~ops ~keyspace in
  (* crash-free pass: count the IO events and record the topology
     lineage — every split vector an install can leave behind *)
  let total_events, topologies =
    let env = Env.create () in
    let plan = Env.Fault_plan.create ~seed ~crash_after:max_int () in
    Env.set_fault_plan env plan;
    let sh = Stores.open_sharded ~tweak ~env engine in
    let topologies = ref [ sh.Stores.s_splits () ] in
    let oracle = Hashtbl.create 64 in
    let rec go i = function
      | [] -> ()
      | op :: rest ->
        (match List.assoc_opt i schedule with
         | Some a ->
           apply_action sh a;
           topologies := sh.Stores.s_splits () :: !topologies
         | None -> ());
        apply sh.Stores.s_dyn op;
        oracle_apply oracle op;
        go (i + 1) rest
    in
    go 0 trace;
    let ticks = Env.Fault_plan.ticks plan in
    sh.Stores.s_dyn.Dyn.d_close ();
    (ticks, List.sort_uniq compare !topologies)
  in
  let stride = max 1 (total_events / max_points) in
  let crash_points = ref 0 in
  let double_crashes = ref 0 in
  let background_crashes = ref 0 in
  let torn_crashes = ref 0 in
  let failures = ref [] in
  let n = ref 1 in
  while !n <= total_events do
    let point = !n in
    incr crash_points;
    let env = Env.create () in
    let plan =
      Env.Fault_plan.create ~seed:(seed + point) ~crash_after:point ()
    in
    Env.set_fault_plan env plan;
    let oracle = Hashtbl.create 64 in
    let in_flight = ref None in
    (try
       let sh = Stores.open_sharded ~tweak ~env engine in
       in_flight := run_trace_elastic sh ~schedule oracle trace
     with Env.Injected_crash _ ->
       (* fired during the initial open or inside a forced migration:
          no data op was in flight *)
       ());
    if not (Env.Fault_plan.fired plan) then
      failures :=
        (point, "plan never fired: trace ended before the crash point")
        :: !failures
    else begin
      if Env.Fault_plan.fired_in_background plan then incr background_crashes;
      Env.crash env;
      if Env.Fault_plan.torn_files plan > 0 then incr torn_crashes;
      let reopen () = Stores.open_sharded ~tweak ~env engine in
      match
        if !crash_points mod 7 = 0 then begin
          (* crash during recovery itself — which includes the shard
             layer's own orphan-directory cleanup — then recover again *)
          let plan2 =
            Env.Fault_plan.create
              ~seed:((seed * 31) + point)
              ~crash_after:(1 + (point mod 13))
              ()
          in
          Env.set_fault_plan env plan2;
          match reopen () with
          | sh ->
            Env.clear_fault_plan env;
            Ok sh
          | exception Env.Injected_crash _ ->
            incr double_crashes;
            Env.crash env;
            Env.clear_fault_plan env;
            (try Ok (reopen ()) with e -> Error e)
        end
        else try Ok (reopen ()) with e -> Error e
      with
      | Error e ->
        failures :=
          (point, "recovery raised " ^ Printexc.to_string e) :: !failures
      | Ok sh ->
        (* all-or-nothing topology: the recovered split vector must be
           one the schedule installed, never a partial mix *)
        let splits = sh.Stores.s_splits () in
        if not (List.mem splits topologies) then
          failures :=
            ( point,
              "recovered topology ["
              ^ String.concat "; " splits
              ^ "] is not an installed one" )
            :: !failures;
        List.iter
          (fun msg -> failures := (point, msg) :: !failures)
          (verify sh.Stores.s_dyn oracle !in_flight ~keyspace);
        sh.Stores.s_dyn.Dyn.d_close ()
    end;
    n := !n + stride
  done;
  {
    engine = Stores.engine_name engine ^ " elastic";
    total_events;
    crash_points = !crash_points;
    double_crashes = !double_crashes;
    background_crashes = !background_crashes;
    torn_crashes = !torn_crashes;
    failures = List.rev !failures;
  }

(* ---------- replication failover torture ---------- *)

(** [run_failover ~strategy ?replicas engine] sweeps the same seeded
    trace, but the crash kills the PRIMARY of a replicated deployment —
    at WAL/flush/compaction IO like {!run}, and additionally at the
    replication layer's own injection points (mid-group ship, mid-file
    ship, mid-manifest install, mid-deletion).  Instead of recovering
    the primary's file system, backup 0 is PROMOTED and verified
    against the oracle under the ack contract: every op the primary
    acknowledged (which, replicated, means every backup durably applied
    it) must be present; the single in-flight op may be present or
    absent; nothing else may differ, and the promoted store must pass
    its invariant checks.  Every 7th point also crashes the backup
    during promotion itself (which exercises recovery-from-the-mirror
    under file shipping; log shipping's promotion does no IO, so its
    plan never fires there) and promotes again over the torn mirror.
    Crash points that land inside the deployment's initial open are
    vacuous — no replica set exists yet, so nothing was acked. *)
let run_failover ?(seed = 0xFA17) ?(ops = 140) ?(keyspace = 48)
    ?(max_points = 64) ?(replicas = 1) ~strategy engine =
  let tweak o =
    {
      (tweak ~shards:1 ~keyspace o) with
      O.replicas;
      repl_strategy = strategy;
    }
  in
  let trace = gen_trace ~seed ~ops ~keyspace in
  let total_events =
    let env = Env.create () in
    let plan = Env.Fault_plan.create ~seed ~crash_after:max_int () in
    Env.set_fault_plan env plan;
    let h = Stores.open_repl ~tweak ~env engine in
    let oracle = Hashtbl.create 64 in
    (match run_trace h.Stores.rh_dyn oracle trace with
     | None -> ()
     | Some op ->
       failwith ("run_failover: unexpected crash at " ^ op_name op));
    let ticks = Env.Fault_plan.ticks plan in
    h.Stores.rh_dyn.Dyn.d_close ();
    ticks
  in
  let stride = max 1 (total_events / max_points) in
  let crash_points = ref 0 in
  let double_crashes = ref 0 in
  let background_crashes = ref 0 in
  let torn_crashes = ref 0 in
  let failures = ref [] in
  let n = ref 1 in
  while !n <= total_events do
    let point = !n in
    incr crash_points;
    let env = Env.create () in
    let plan =
      Env.Fault_plan.create ~seed:(seed + point) ~crash_after:point ()
    in
    Env.set_fault_plan env plan;
    let oracle = Hashtbl.create 64 in
    let in_flight = ref None in
    let handle = ref None in
    (try
       let h = Stores.open_repl ~tweak ~env engine in
       handle := Some h;
       in_flight := run_trace h.Stores.rh_dyn oracle trace
     with Env.Injected_crash _ -> (* died during the initial open *) ());
    if not (Env.Fault_plan.fired plan) then
      failures :=
        (point, "plan never fired: trace ended before the crash point")
        :: !failures
    else begin
      if Env.Fault_plan.fired_in_background plan then incr background_crashes;
      match !handle with
      | None -> () (* no replica set yet: vacuously consistent *)
      | Some h ->
        let promote () = h.Stores.rh_promote 0 in
        (match
           if !crash_points mod 7 = 0 then begin
             (* kill the backup mid-promotion, then promote over the
                torn mirror *)
             let b_env = h.Stores.rh_backup_env 0 in
             let plan2 =
               Env.Fault_plan.create
                 ~seed:((seed * 31) + point)
                 ~crash_after:(1 + (point mod 13))
                 ()
             in
             Env.set_fault_plan b_env plan2;
             match promote () with
             | db ->
               Env.clear_fault_plan b_env;
               Ok db
             | exception Env.Injected_crash _ ->
               incr double_crashes;
               Env.crash b_env;
               if Env.Fault_plan.torn_files plan2 > 0 then incr torn_crashes;
               Env.clear_fault_plan b_env;
               (try Ok (promote ()) with e -> Error e)
           end
           else try Ok (promote ()) with e -> Error e
         with
         | Error e ->
           failures :=
             (point, "promotion raised " ^ Printexc.to_string e) :: !failures
         | Ok db ->
           List.iter
             (fun msg -> failures := (point, msg) :: !failures)
             (verify db oracle !in_flight ~keyspace);
           db.Dyn.d_close ())
    end;
    n := !n + stride
  done;
  {
    engine =
      Printf.sprintf "%s/%s K=%d failover" (Stores.engine_name engine)
        (O.repl_strategy_name strategy)
        replicas;
    total_events;
    crash_points = !crash_points;
    double_crashes = !double_crashes;
    background_crashes = !background_crashes;
    torn_crashes = !torn_crashes;
    failures = List.rev !failures;
  }
