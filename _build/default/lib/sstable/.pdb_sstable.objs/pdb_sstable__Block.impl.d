lib/sstable/block.ml: Buffer List Option Pdb_kvs Pdb_util String
