test/test_snapshots.ml: Alcotest Hashtbl List Pdb_kvs Pdb_lsm Pdb_simio Pdb_util Pebblesdb Printf QCheck QCheck_alcotest
