test/test_guard_props.mli:
