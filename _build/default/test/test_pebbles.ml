(* Tests for the FLSM / PebblesDB core. *)

module P = Pebblesdb.Pebbles_store
module G = Pebblesdb.Guard
module Sel = Pebblesdb.Guard_selector
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter
module Ik = Pdb_kvs.Internal_key

let check = Alcotest.check

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Small parameters: tiny memtable and levels, and *few* guard bits so
   guards appear even with a few hundred keys. *)
let tiny_opts () =
  {
    (O.pebblesdb ()) with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
    top_level_bits = 7;
    bit_decrement = 1;
    max_levels = 5;
  }

let open_tiny ?(opts = tiny_opts ()) env = P.open_store opts ~env ~dir:"db"

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

(* ---------- guard structure unit tests ---------- *)

let meta ~number ~smallest ~largest : Pdb_sstable.Table.meta =
  {
    Pdb_sstable.Table.number;
    file_size = 100;
    entries = 10;
    smallest = Ik.encode ~user_key:smallest ~seq:1 ~kind:Ik.Value;
    largest = Ik.encode ~user_key:largest ~seq:1 ~kind:Ik.Value;
  }

let test_guard_index_and_sentinel () =
  let lvl = G.create_level () in
  G.commit_guards lvl [ "m"; "t" ];
  (* guards: "", "m", "t" *)
  check Alcotest.int "below first guard -> sentinel" 0 (G.guard_index lvl "a");
  check Alcotest.int "exact guard key" 1 (G.guard_index lvl "m");
  check Alcotest.int "inside range" 1 (G.guard_index lvl "p");
  check Alcotest.int "last guard" 2 (G.guard_index lvl "z")

let test_guard_attach_detach () =
  let lvl = G.create_level () in
  G.commit_guards lvl [ "m" ];
  let m1 = meta ~number:1 ~smallest:"a" ~largest:"c" in
  let m2 = meta ~number:2 ~smallest:"m" ~largest:"q" in
  G.attach lvl m1;
  G.attach lvl m2;
  check Alcotest.int "sentinel holds m1" 1
    (List.length lvl.G.guards.(0).G.tables);
  check Alcotest.int "guard m holds m2" 1
    (List.length lvl.G.guards.(1).G.tables);
  G.detach lvl [ 1 ];
  check Alcotest.int "m1 detached" 0 (List.length lvl.G.guards.(0).G.tables);
  check Alcotest.int "m2 kept" 1 (List.length lvl.G.guards.(1).G.tables)

let test_guard_commit_redistributes () =
  let lvl = G.create_level () in
  let m1 = meta ~number:1 ~smallest:"a" ~largest:"c" in
  let m2 = meta ~number:2 ~smallest:"p" ~largest:"q" in
  G.attach lvl m1;
  G.attach lvl m2;
  (* new guard "m" splits the sentinel's former range; both tables fit on
     one side each *)
  G.commit_guards lvl [ "m" ];
  check Alcotest.int "sentinel keeps a..c" 1
    (List.length lvl.G.guards.(0).G.tables);
  check Alcotest.int "guard m receives p..q" 1
    (List.length lvl.G.guards.(1).G.tables)

let test_guard_straddler_detection () =
  let m1 = meta ~number:1 ~smallest:"a" ~largest:"z" in
  Alcotest.(check bool) "straddles m" true (G.straddles "m" m1);
  let m2 = meta ~number:2 ~smallest:"n" ~largest:"z" in
  Alcotest.(check bool) "right of m" false (G.straddles "m" m2);
  let m3 = meta ~number:3 ~smallest:"a" ~largest:"l" in
  Alcotest.(check bool) "left of m" false (G.straddles "m" m3)

let test_guard_delete_folds_tables () =
  let lvl = G.create_level () in
  G.commit_guards lvl [ "g"; "p" ];
  let m = meta ~number:1 ~smallest:"h" ~largest:"j" in
  G.attach lvl m;
  G.delete_guard lvl "g";
  (* table folds into the sentinel (preceding guard) *)
  check Alcotest.int "guard count" 1 (G.guard_count lvl);
  check Alcotest.int "sentinel absorbed table" 1
    (List.length lvl.G.guards.(0).G.tables)

(* ---------- guard selector ---------- *)

let test_selector_deterministic_and_monotone () =
  let opts = tiny_opts () in
  for i = 0 to 5000 do
    let k = key i in
    match Sel.guard_level opts k with
    | None -> ()
    | Some l ->
      (* same key, same answer *)
      Alcotest.(check bool) "deterministic" true
        (Sel.guard_level opts k = Some l);
      (* skip-list property: guard at l implies guard at all deeper levels *)
      for deeper = l to opts.O.max_levels - 1 do
        Alcotest.(check bool) "monotone" true
          (Sel.is_guard_at opts k ~level:deeper)
      done
  done

let test_selector_density_increases_with_level () =
  let opts = tiny_opts () in
  let counts = Array.make opts.O.max_levels 0 in
  for i = 0 to 20_000 do
    match Sel.guard_level opts (key i) with
    | Some l ->
      for lvl = l to opts.O.max_levels - 1 do
        counts.(lvl) <- counts.(lvl) + 1
      done
    | None -> ()
  done;
  for lvl = 2 to opts.O.max_levels - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "level %d has more guards than %d" lvl (lvl - 1))
      true
      (counts.(lvl) > counts.(lvl - 1))
  done

(* ---------- store behaviour ---------- *)

let test_put_get_delete () =
  let env = Env.create () in
  let db = open_tiny env in
  P.put db "a" "1";
  P.put db "b" "2";
  check Alcotest.(option string) "get a" (Some "1") (P.get db "a");
  P.put db "a" "updated";
  check Alcotest.(option string) "updated" (Some "updated") (P.get db "a");
  P.delete db "a";
  check Alcotest.(option string) "deleted" None (P.get db "a");
  check Alcotest.(option string) "b untouched" (Some "2") (P.get db "b")

let test_large_insert_readback () =
  let env = Env.create () in
  let db = open_tiny env in
  let n = 2000 in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 9) perm;
  Array.iter (fun i -> P.put db (key i) (value i)) perm;
  Alcotest.(check bool) "compactions ran" true
    ((P.stats db).Pdb_kvs.Engine_stats.compactions > 0);
  Alcotest.(check bool) "guards committed" true
    ((P.stats db).Pdb_kvs.Engine_stats.guards_committed > 0);
  P.check_invariants db;
  for i = 0 to n - 1 do
    check Alcotest.(option string) ("get " ^ key i) (Some (value i))
      (P.get db (key i))
  done

let test_iterator_order_and_completeness () =
  let env = Env.create () in
  let db = open_tiny env in
  let n = 1500 in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 21) perm;
  Array.iter (fun i -> P.put db (key i) (value i)) perm;
  let got = Iter.to_list (P.iterator db) in
  check Alcotest.int "count" n (List.length got);
  check
    Alcotest.(list (pair string string))
    "sorted scan"
    (List.init n (fun i -> (key i, value i)))
    got

let test_range_query () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 999 do
    P.put db (key i) (value i)
  done;
  let it = P.iterator db in
  it.Iter.seek (key 500);
  let collected = ref [] in
  for _ = 1 to 50 do
    collected := (it.Iter.key (), it.Iter.value ()) :: !collected;
    it.Iter.next ()
  done;
  let got = List.rev !collected in
  check
    Alcotest.(list string)
    "range keys"
    (List.init 50 (fun i -> key (500 + i)))
    (List.map fst got)

let test_iterator_hides_tombstones () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 499 do
    P.put db (key i) (value i)
  done;
  for i = 0 to 499 do
    if i mod 3 = 0 then P.delete db (key i)
  done;
  let got = Iter.to_list (P.iterator db) in
  List.iter
    (fun (k, _) ->
      let i = int_of_string (String.sub k 3 6) in
      Alcotest.(check bool) "no deleted keys" true (i mod 3 <> 0))
    got;
  check Alcotest.int "survivor count"
    (List.length (List.filter (fun i -> i mod 3 <> 0) (List.init 500 Fun.id)))
    (List.length got)

let test_compact_all_quiescent_and_correct () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 1499 do
    P.put db (key (i * 977 mod 1500)) (value i)
  done;
  P.compact_all db;
  check Alcotest.int "L0 drained" 0 (P.l0_table_count db);
  P.check_invariants db;
  let latest = Hashtbl.create 64 in
  for i = 0 to 1499 do
    Hashtbl.replace latest (key (i * 977 mod 1500)) (value i)
  done;
  Hashtbl.iter
    (fun k v -> check Alcotest.(option string) k (Some v) (P.get db k))
    latest

let test_guard_cap_respected_after_compaction () =
  let opts = tiny_opts () in
  let env = Env.create () in
  let db = P.open_store opts ~env ~dir:"db" in
  for i = 0 to 2999 do
    P.put db (key (i * 1663 mod 3000)) (value i)
  done;
  P.compact_all db;
  Alcotest.(check bool)
    (Printf.sprintf "max tables per guard %d <= cap %d"
       (P.max_tables_in_any_guard db) opts.O.max_sstables_per_guard)
    true
    (P.max_tables_in_any_guard db <= opts.O.max_sstables_per_guard)

let test_flsm_write_amp_lower_than_lsm () =
  (* The headline claim, at miniature scale: identical random-insert
     workload, FLSM writes materially less than the leveled LSM. *)
  let n = 4000 in
  let run_pebbles () =
    let env = Env.create () in
    let db = open_tiny env in
    let perm = Array.init n Fun.id in
    Pdb_util.Rng.shuffle (Pdb_util.Rng.create 123) perm;
    Array.iter (fun i -> P.put db (key i) (value i)) perm;
    P.flush db;
    (Env.stats env).Pdb_simio.Io_stats.bytes_written
  in
  let run_lsm () =
    let env = Env.create () in
    let opts =
      {
        (O.hyperleveldb ()) with
        O.memtable_bytes = 2 * 1024;
        level_bytes_base = 8 * 1024;
        sstable_target_bytes = 4 * 1024;
        block_bytes = 512;
        max_levels = 5;
      }
    in
    let db = Pdb_lsm.Lsm_store.open_store opts ~env ~dir:"db" in
    let perm = Array.init n Fun.id in
    Pdb_util.Rng.shuffle (Pdb_util.Rng.create 123) perm;
    Array.iter (fun i -> Pdb_lsm.Lsm_store.put db (key i) (value i)) perm;
    Pdb_lsm.Lsm_store.flush db;
    (Env.stats env).Pdb_simio.Io_stats.bytes_written
  in
  let pebbles = run_pebbles () and lsm = run_lsm () in
  Alcotest.(check bool)
    (Printf.sprintf "pebbles IO %d < lsm IO %d" pebbles lsm)
    true (pebbles < lsm)

let test_reopen_recovers_guards_and_data () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 1499 do
    P.put db (key i) (value i)
  done;
  let guards_before = P.guard_counts db in
  P.close db;
  let db2 = open_tiny env in
  P.check_invariants db2;
  check Alcotest.(array int) "guard counts recovered" guards_before
    (P.guard_counts db2);
  for i = 0 to 1499 do
    check Alcotest.(option string) ("recovered " ^ key i) (Some (value i))
      (P.get db2 (key i))
  done

let test_crash_preserves_flushed_data () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 799 do
    P.put db (key i) (value i)
  done;
  P.flush db;
  for i = 800 to 899 do
    P.put db (key i) (value i)
  done;
  Env.crash env;
  let db2 = open_tiny env in
  P.check_invariants db2;
  for i = 0 to 799 do
    check Alcotest.(option string) ("survives " ^ key i) (Some (value i))
      (P.get db2 (key i))
  done

let test_empty_guards_harmless () =
  let env = Env.create () in
  let db = open_tiny env in
  (* insert a range, delete it entirely, insert a disjoint range: guards
     from the first range linger empty *)
  for i = 0 to 999 do
    P.put db (key i) (value i)
  done;
  for i = 0 to 999 do
    P.delete db (key i)
  done;
  P.compact_all db;
  for i = 5000 to 5999 do
    P.put db (key i) (value i)
  done;
  P.compact_all db;
  Alcotest.(check bool) "some guards now empty" true
    (P.empty_guard_count db > 0);
  for i = 5000 to 5999 do
    check Alcotest.(option string) "reads fine" (Some (value i))
      (P.get db (key i))
  done;
  for i = 0 to 999 do
    check Alcotest.(option string) "old keys gone" None (P.get db (key i))
  done

let test_pebbles_one_behaves_like_lsm () =
  (* max_sstables_per_guard = 1 is the paper's LSM mode (§3.5): after
     compaction settles, no guard holds more than one sstable. *)
  let opts = { (tiny_opts ()) with O.max_sstables_per_guard = 1 } in
  let env = Env.create () in
  let db = P.open_store opts ~env ~dir:"db" in
  for i = 0 to 999 do
    P.put db (key (i * 31 mod 1000)) (value i)
  done;
  P.compact_all db;
  P.check_invariants db;
  Alcotest.(check bool) "at most one sstable per guard" true
    (P.max_tables_in_any_guard db <= 1);
  for i = 0 to 999 do
    Alcotest.(check bool) "readable" true (P.get db (key i) <> None)
  done

let test_describe_shows_guards () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 999 do
    P.put db (key i) (value i)
  done;
  P.flush db;
  let d = P.describe db in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions guards" true (contains d "guard")

let prop_model_random_ops =
  qtest "store = model under random ops" ~count:12
    QCheck.(list (pair (int_bound 300) (option (int_bound 1000))))
    (fun ops ->
      let env = Env.create () in
      let db = open_tiny env in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let ks = key k in
          match v with
          | Some v ->
            P.put db ks (value v);
            Hashtbl.replace model ks (value v)
          | None ->
            P.delete db ks;
            Hashtbl.remove model ks)
        ops;
      P.check_invariants db;
      Hashtbl.fold (fun k v acc -> acc && P.get db k = Some v) model true
      && List.for_all
           (fun (k, _) ->
             let ks = key k in
             P.get db ks = Hashtbl.find_opt model ks)
           ops)

let prop_iterator_matches_model =
  qtest "iterator = sorted model" ~count:8
    QCheck.(list (pair (int_bound 400) (int_bound 1000)))
    (fun ops ->
      let env = Env.create () in
      let db = open_tiny env in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          P.put db (key k) (value v);
          Hashtbl.replace model (key k) (value v))
        ops;
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Iter.to_list (P.iterator db) = expected)

let prop_recovery_preserves_model =
  qtest "reopen preserves every write" ~count:8
    QCheck.(list (pair (int_bound 200) (int_bound 1000)))
    (fun ops ->
      let env = Env.create () in
      let db = open_tiny env in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          P.put db (key k) (value v);
          Hashtbl.replace model (key k) (value v))
        ops;
      P.close db;
      let db2 = open_tiny env in
      P.check_invariants db2;
      Hashtbl.fold (fun k v acc -> acc && P.get db2 k = Some v) model true)

let () =
  Alcotest.run "pebblesdb"
    [
      ( "guard",
        [
          Alcotest.test_case "index/sentinel" `Quick
            test_guard_index_and_sentinel;
          Alcotest.test_case "attach/detach" `Quick test_guard_attach_detach;
          Alcotest.test_case "commit redistributes" `Quick
            test_guard_commit_redistributes;
          Alcotest.test_case "straddlers" `Quick
            test_guard_straddler_detection;
          Alcotest.test_case "delete folds" `Quick
            test_guard_delete_folds_tables;
        ] );
      ( "selector",
        [
          Alcotest.test_case "deterministic+monotone" `Quick
            test_selector_deterministic_and_monotone;
          Alcotest.test_case "density grows with depth" `Quick
            test_selector_density_increases_with_level;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/get/delete" `Quick test_put_get_delete;
          Alcotest.test_case "large insert readback" `Quick
            test_large_insert_readback;
          Alcotest.test_case "iterator order" `Quick
            test_iterator_order_and_completeness;
          Alcotest.test_case "range query" `Quick test_range_query;
          Alcotest.test_case "tombstones hidden" `Quick
            test_iterator_hides_tombstones;
          Alcotest.test_case "compact_all" `Quick
            test_compact_all_quiescent_and_correct;
          Alcotest.test_case "guard cap" `Quick
            test_guard_cap_respected_after_compaction;
          Alcotest.test_case "lower write amp than lsm" `Quick
            test_flsm_write_amp_lower_than_lsm;
          Alcotest.test_case "empty guards harmless" `Quick
            test_empty_guards_harmless;
          Alcotest.test_case "pebblesdb-1 = lsm mode" `Quick
            test_pebbles_one_behaves_like_lsm;
          Alcotest.test_case "describe" `Quick test_describe_shows_guards;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reopen guards+data" `Quick
            test_reopen_recovers_guards_and_data;
          Alcotest.test_case "crash preserves flushed" `Quick
            test_crash_preserves_flushed_data;
        ] );
      ( "properties",
        [
          prop_model_random_ops;
          prop_iterator_matches_model;
          prop_recovery_preserves_model;
        ] );
    ]
