(* Crash recovery: write, crash the simulated device mid-stream, reopen,
   and verify the recovery guarantees (§4.3.1).

   Run with: dune exec examples/crash_recovery.exe *)

module P = Pebblesdb.Pebbles_store
module Env = Pdb_simio.Env

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d" i

let () =
  let env = Env.create () in
  let opts = { (Pdb_kvs.Options.pebblesdb ()) with
               Pdb_kvs.Options.memtable_bytes = 8 * 1024 } in
  let db = P.open_store opts ~env ~dir:"cr" in

  (* phase 1: durable data — flushed sstables are synced *)
  for i = 0 to 4_999 do
    P.put db (key i) (value i)
  done;
  P.flush db;
  print_endline "wrote and flushed keys 0..4999 (durable)";

  (* phase 2: recent writes sitting in the (unsynced) WAL + memtable *)
  for i = 5_000 to 5_499 do
    P.put db (key i) (value i)
  done;
  print_endline "wrote keys 5000..5499 without sync (volatile)";

  (* power failure *)
  Env.crash env;
  print_endline "-- simulated crash: unsynced bytes dropped --";

  let db2 = P.open_store opts ~env ~dir:"cr" in
  P.check_invariants db2;
  let durable = ref 0 and missing = ref 0 in
  for i = 0 to 4_999 do
    match P.get db2 (key i) with
    | Some v when v = value i -> incr durable
    | Some _ | None -> failwith ("corrupted or lost durable key " ^ key i)
  done;
  for i = 5_000 to 5_499 do
    if P.get db2 (key i) = None then incr missing
  done;
  Printf.printf
    "after recovery: %d/5000 durable keys intact, %d/500 volatile keys \
     (correctly) absent or replayed from synced WAL prefix\n"
    !durable !missing;
  Printf.printf "guards recovered from MANIFEST: %d committed\n"
    (Array.fold_left ( + ) 0 (P.guard_counts db2));
  print_endline "recovery OK: no corruption, guard metadata intact";
  P.close db2
