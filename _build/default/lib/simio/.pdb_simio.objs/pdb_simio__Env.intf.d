lib/simio/env.mli: Clock Device Io_stats
