(** Database iterator: turns a merged internal-key iterator into a user-key
    iterator, hiding tombstones and superseded versions (§2.2: "the latest
    version of the flag will be returned by the store").

    The internal iterator must yield entries in internal-key order (user
    key ascending, sequence descending), so the first entry seen for a user
    key is its freshest version. *)

(** [wrap ?snapshot internal] exposes the user-visible view at [snapshot]
    (a sequence number; entries newer than it are invisible) or, without
    it, the latest state. *)
let wrap ?snapshot (internal : Iter.t) =
  let visible ikey =
    match snapshot with
    | None -> true
    | Some seq -> Internal_key.seq ikey <= seq
  in
  (* Current exposed entry. *)
  let cur = ref None in
  (* Advance [internal] until it rests on the freshest live *visible*
     version of a user key not equal to [skip]. *)
  let rec find_next_user_entry skip =
    if not (internal.Iter.valid ()) then cur := None
    else begin
      let ikey = internal.Iter.key () in
      let uk = Internal_key.user_key ikey in
      match skip with
      | Some s when String.equal s uk ->
        internal.Iter.next ();
        find_next_user_entry skip
      | _ ->
        if not (visible ikey) then begin
          internal.Iter.next ();
          find_next_user_entry skip
        end
        else (
          match Internal_key.kind ikey with
          | Internal_key.Deletion ->
            internal.Iter.next ();
            find_next_user_entry (Some uk)
          | Internal_key.Value -> cur := Some (uk, internal.Iter.value ()))
    end
  in
  let entry () =
    match !cur with
    | Some e -> e
    | None -> invalid_arg "Db_iter: iterator is not valid"
  in
  {
    Iter.seek_to_first =
      (fun () ->
        internal.Iter.seek_to_first ();
        find_next_user_entry None);
    seek =
      (fun user_key ->
        internal.Iter.seek (Internal_key.max_for_lookup user_key);
        find_next_user_entry None);
    next =
      (fun () ->
        match !cur with
        | None -> ()
        | Some (uk, _) ->
          internal.Iter.next ();
          find_next_user_entry (Some uk));
    valid = (fun () -> Option.is_some !cur);
    key = (fun () -> fst (entry ()));
    value = (fun () -> snd (entry ()));
  }
