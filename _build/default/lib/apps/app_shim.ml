(** Application shims reproducing the NoSQL-store integrations (§5.4).

    The paper finds that application-level gains are muted for two reasons
    it identifies explicitly: the application adds fixed per-operation
    latency that dwarfs the store (HyperDex: 151 us per insert of which the
    store is 22.3 us; MongoDB: the store is 28 % of write latency), and
    HyperDex performs a get() before every put() ("checks whether a key
    already exists before inserting").  A shim wraps a packaged store with
    exactly those two behaviours, leaving everything else untouched. *)

module Dyn = Pdb_kvs.Store_intf
module Clock = Pdb_simio.Clock

type config = {
  app_name : string;
  read_latency_ns : float;  (** app-side work added to every read/scan *)
  write_latency_ns : float;  (** app-side work added to every write *)
  read_before_write : bool;  (** HyperDex's existence check *)
}

(** HyperDex: ~129 us of application latency around a 22 us store insert,
    and a read before every write. *)
let hyperdex =
  {
    app_name = "hyperdex";
    read_latency_ns = 90_000.0;
    write_latency_ns = 129_000.0;
    read_before_write = true;
  }

(** MongoDB: the storage engine accounts for ~28 % of write latency. *)
let mongodb =
  {
    app_name = "mongodb";
    read_latency_ns = 60_000.0;
    write_latency_ns = 80_000.0;
    read_before_write = false;
  }

(** [wrap config store] is [store] as seen through the application. *)
let wrap config (store : Dyn.dyn) =
  let clock = Pdb_simio.Env.clock store.Dyn.d_env in
  (* the client blocks for the application's work on every call, so app
     latency adds to elapsed time rather than overlapping store IO *)
  let charge ns = Clock.stall clock ns in
  {
    store with
    Dyn.d_name = config.app_name ^ "/" ^ store.Dyn.d_name;
    d_put =
      (fun k v ->
        charge config.write_latency_ns;
        if config.read_before_write then ignore (store.Dyn.d_get k);
        store.Dyn.d_put k v);
    d_get =
      (fun k ->
        charge config.read_latency_ns;
        store.Dyn.d_get k);
    d_delete =
      (fun k ->
        charge config.write_latency_ns;
        store.Dyn.d_delete k);
    d_write =
      (fun batch ->
        charge config.write_latency_ns;
        store.Dyn.d_write batch);
    d_iterator =
      (fun () ->
        charge config.read_latency_ns;
        store.Dyn.d_iterator ());
  }
