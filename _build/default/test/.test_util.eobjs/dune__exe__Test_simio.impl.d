test/test_simio.ml: Alcotest Clock Device Env Io_stats Pdb_simio String
