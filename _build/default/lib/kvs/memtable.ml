(** Memtable: the in-memory buffer of recent writes.

    A skip list keyed by encoded internal keys (§2.2).  Writes append
    entries with fresh sequence numbers; when [approximate_bytes] exceeds
    the configured memtable size the engine freezes it and flushes it to a
    level-0 sstable. *)

type t = {
  list : (string, string) Pdb_skiplist.Skiplist.t;
  mutable bytes : int;
  mutable entries : int;
}

(* Memtable node overhead, modeled after LevelDB's arena accounting. *)
let per_entry_overhead = 24

let create () =
  {
    list =
      Pdb_skiplist.Skiplist.create ~compare:Internal_key.compare
        (Internal_key.encode ~user_key:"" ~seq:0 ~kind:Internal_key.Value)
        "";
    bytes = 0;
    entries = 0;
  }

(** [add t ~seq ~kind ~user_key ~value] inserts one entry. *)
let add t ~seq ~kind ~user_key ~value =
  let ikey = Internal_key.encode ~user_key ~seq ~kind in
  Pdb_skiplist.Skiplist.insert t.list ikey value;
  t.bytes <- t.bytes + String.length ikey + String.length value
             + per_entry_overhead;
  t.entries <- t.entries + 1

(** [get t user_key] is the freshest entry for [user_key]:
    [Some (Some v)] for a live value, [Some None] for a tombstone, [None]
    when the memtable holds no version of the key. *)
let get t user_key =
  match Pdb_skiplist.Skiplist.seek t.list (Internal_key.max_for_lookup user_key) with
  | Some (ikey, value) when String.equal (Internal_key.user_key ikey) user_key
    -> (match Internal_key.kind ikey with
        | Internal_key.Value -> Some (Some value)
        | Internal_key.Deletion -> Some None)
  | Some _ | None -> None

(** [get_at t user_key ~seq] is the freshest entry visible at sequence
    number [seq] (snapshot reads); same result shape as {!get}. *)
let get_at t user_key ~seq =
  match
    Pdb_skiplist.Skiplist.seek t.list (Internal_key.lookup_at ~user_key ~seq)
  with
  | Some (ikey, value) when String.equal (Internal_key.user_key ikey) user_key
    -> (match Internal_key.kind ikey with
        | Internal_key.Value -> Some (Some value)
        | Internal_key.Deletion -> Some None)
  | Some _ | None -> None

let approximate_bytes t = t.bytes
let entries t = t.entries
let is_empty t = t.entries = 0

(** [iterator t] ranges over encoded internal keys. *)
let iterator t =
  let cursor = Pdb_skiplist.Skiplist.Cursor.make t.list in
  {
    Iter.seek_to_first = (fun () -> Pdb_skiplist.Skiplist.Cursor.seek_to_first cursor);
    seek = (fun target -> Pdb_skiplist.Skiplist.Cursor.seek cursor target);
    next = (fun () -> Pdb_skiplist.Skiplist.Cursor.next cursor);
    valid = (fun () -> Pdb_skiplist.Skiplist.Cursor.valid cursor);
    key = (fun () -> fst (Pdb_skiplist.Skiplist.Cursor.entry cursor));
    value = (fun () -> snd (Pdb_skiplist.Skiplist.Cursor.entry cursor));
  }

(** [contents t] lists all (internal key, value) entries in order — used by
    flush. *)
let contents t = Pdb_skiplist.Skiplist.to_list t.list
