(** The shared background-work scheduler.

    Stores no longer compact inline: [maybe_compact] {e submits}
    {!Job.t}s here, and write-path back-pressure is decided from the
    queue backlog.  Draining executes jobs FIFO — one at a time, so
    store mutation order (and hence final state) never depends on the
    worker count — while each job's measured background device time is
    placed on the {!Pdb_simio.Sched} worker timelines, where
    footprint-disjoint jobs overlap and conflicting jobs serialise.
    Worker count therefore shapes only the modeled clock, which is the
    whole point: guard-parallel FLSM compaction (many small disjoint
    jobs) packs N lanes densely, leveled compaction (few wide jobs)
    cannot. *)

module Clock = Pdb_simio.Clock
module Sched = Pdb_simio.Sched

type stats = {
  mutable jobs_run : int;
  mutable queue_peak : int;  (** max pending jobs observed *)
  mutable backlog_peak_bytes : int;
      (** max sum of pending jobs' estimated bytes *)
  mutable stall_slowdown_ns : float;
      (** stall time attributed to the slowdown threshold *)
  mutable stall_stop_ns : float;
      (** stall time attributed to the hard stop threshold *)
  mutable by_trigger : (string * (int * int)) list;
      (** per-{!Job.trigger} (runs, estimated bytes), keyed by
          [Job.trigger_name]; flushes via [run_now] count too *)
}

type t = {
  clock : Clock.t;
  lanes : Sched.t;
  env : Pdb_simio.Env.t option;  (** for the environment's tracer, if any *)
  queue : Job.t Queue.t;
  keys : (string, unit) Hashtbl.t; (* pending-job identity, for dedup *)
  mutable backlog_bytes : int;
  stats : stats;
  mutable observer : (Job.t -> unit) option;
}

let create ?env ?(flush_lanes = 0) ~clock ~workers () =
  {
    clock;
    lanes = Sched.create ~flush_lanes ~clock ~workers ();
    env;
    queue = Queue.create ();
    keys = Hashtbl.create 16;
    backlog_bytes = 0;
    stats =
      {
        jobs_run = 0;
        queue_peak = 0;
        backlog_peak_bytes = 0;
        stall_slowdown_ns = 0.0;
        stall_stop_ns = 0.0;
        by_trigger = [];
      };
    observer = None;
  }

let tracer t =
  match t.env with None -> None | Some env -> Pdb_simio.Env.tracer env

let workers t = Sched.workers t.lanes
let flush_lanes t = Sched.flush_lanes t.lanes
let pending t = Queue.length t.queue
let backlog_bytes t = t.backlog_bytes
let stats t = t.stats
let busy_ns t = Sched.busy_ns t.lanes
let flush_busy_ns t = Sched.flush_busy_ns t.lanes
let jobs_placed t = Sched.jobs_placed t.lanes
let serialized_jobs t = Sched.serialized_jobs t.lanes
let horizon_ns t = Sched.horizon_ns t.lanes

let set_observer t f = t.observer <- Some f

(** [submit t job] enqueues [job] unless one with the same key is already
    pending; returns whether it was enqueued. *)
let submit t (job : Job.t) =
  if Hashtbl.mem t.keys job.key then false
  else begin
    Hashtbl.add t.keys job.key ();
    Queue.push job t.queue;
    t.backlog_bytes <- t.backlog_bytes + job.estimated_bytes;
    if Queue.length t.queue > t.stats.queue_peak then
      t.stats.queue_peak <- Queue.length t.queue;
    if t.backlog_bytes > t.stats.backlog_peak_bytes then
      t.stats.backlog_peak_bytes <- t.backlog_bytes;
    true
  end

let run_one t (job : Job.t) =
  let before = t.clock.Clock.background_ns in
  Clock.with_background t.clock job.run;
  let duration_ns = t.clock.Clock.background_ns -. before in
  (* zero-cost jobs (e.g. trivial pointer moves) occupy no lane time *)
  if duration_ns > 0.0 then begin
    (* flushes ride the reserved lane (when configured): memtable
       rotation must never wait behind a deep compaction queue *)
    let cls =
      match job.Job.trigger with
      | Job.Memtable_full -> `Flush
      | _ -> `Worker
    in
    let p = Sched.place_span ~cls t.lanes job.footprint ~duration_ns in
    let lane_name =
      if p.Sched.lane >= Sched.workers t.lanes then "flush"
      else Printf.sprintf "worker-%d" p.Sched.lane
    in
    match tracer t with
    | Some tr ->
      Pdb_simio.Trace.span tr
        ~name:(Job.trigger_name job.trigger)
        ~cat:"compaction"
        ~lane:lane_name
        ~start_ns:p.Sched.start_ns
        ~dur_ns:(p.Sched.finish_ns -. p.Sched.start_ns)
        ~args:
          [
            ("key", job.key);
            ("bytes", string_of_int job.estimated_bytes);
          ]
        ()
    | None -> ()
  end;
  t.stats.jobs_run <- t.stats.jobs_run + 1;
  let trig = Job.trigger_name job.trigger in
  let runs, bytes =
    match List.assoc_opt trig t.stats.by_trigger with
    | Some rb -> rb
    | None -> (0, 0)
  in
  t.stats.by_trigger <-
    (trig, (runs + 1, bytes + job.estimated_bytes))
    :: List.remove_assoc trig t.stats.by_trigger;
  match t.observer with Some f -> f job | None -> ()

(** [drain t] executes every pending job, FIFO. *)
let drain t =
  while not (Queue.is_empty t.queue) do
    let job = Queue.pop t.queue in
    Hashtbl.remove t.keys job.Job.key;
    t.backlog_bytes <- t.backlog_bytes - job.Job.estimated_bytes;
    run_one t job
  done

(** [run_now t job] executes [job] immediately, bypassing the queue —
    used for memtable flushes, which gate the write that triggered
    them. *)
let run_now t job = run_one t job

(** [note_stall t ~slowdown_ns ~stop_ns] records write-stall time already
    charged to the clock, pre-split by threshold attribution.  A stall
    that crossed the Slowdown→Stop boundary carries both parts and is
    traced as two adjacent spans — slowdown first, then stop — instead of
    one span of whichever kind held at stall start. *)
let note_stall t ~slowdown_ns ~stop_ns =
  t.stats.stall_slowdown_ns <- t.stats.stall_slowdown_ns +. slowdown_ns;
  t.stats.stall_stop_ns <- t.stats.stall_stop_ns +. stop_ns;
  match tracer t with
  | Some tr ->
    let now = Clock.elapsed_ns (Clock.snapshot t.clock) in
    let total = slowdown_ns +. stop_ns in
    if slowdown_ns > 0.0 then
      Pdb_simio.Trace.span tr ~name:"stall:slowdown" ~cat:"stall"
        ~lane:"foreground"
        ~start_ns:(Float.max 0.0 (now -. total))
        ~dur_ns:slowdown_ns ();
    if stop_ns > 0.0 then
      Pdb_simio.Trace.span tr ~name:"stall:stop" ~cat:"stall"
        ~lane:"foreground"
        ~start_ns:(Float.max 0.0 (now -. stop_ns))
        ~dur_ns:stop_ns ()
  | None -> ()
