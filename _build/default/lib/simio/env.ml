(** Simulated storage environment: an in-memory file system with IO
    accounting, device-time charging and crash simulation.

    This stands in for the paper's ext4-on-SSD testbed.  Every store in the
    repository performs all of its IO through an [Env.t], so byte counts
    (write amplification) and modeled device time are directly comparable
    across engines.

    Durability model: [append] buffers data; [sync] makes the current file
    contents crash-durable.  {!crash} truncates every file back to its last
    synced length (and removes never-synced empty files), after which stores
    exercise their recovery paths.  [rename] is atomic and durable, matching
    the way LevelDB-family stores install a new MANIFEST via CURRENT. *)

type file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable synced : int;
}

type t = {
  files : (string, file) Hashtbl.t;
  stats : Io_stats.t;
  device : Device.t;
  clock : Clock.t;
}

type writer = { env : t; name : string; file : file }

let create ?(device = Device.ssd ()) () =
  {
    files = Hashtbl.create 64;
    stats = Io_stats.create ();
    device;
    clock = Clock.create ();
  }

let stats t = t.stats
let device t = t.device
let clock t = t.clock

let find t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> raise (Sys_error (name ^ ": no such simulated file"))

(** [create_file t name] opens [name] for appending, truncating any existing
    contents. *)
let create_file t name =
  let file = { data = Bytes.create 4096; len = 0; synced = 0 } in
  Hashtbl.replace t.files name file;
  t.stats.files_created <- t.stats.files_created + 1;
  { env = t; name; file }

(** [append w s] appends [s]; charges sequential write cost. *)
let append w s =
  let n = String.length s in
  if n > 0 then begin
    let f = w.file in
    let cap = Bytes.length f.data in
    if f.len + n > cap then begin
      let newcap = max (f.len + n) (2 * cap) in
      let bigger = Bytes.create newcap in
      Bytes.blit f.data 0 bigger 0 f.len;
      f.data <- bigger
    end;
    Bytes.blit_string s 0 f.data f.len n;
    f.len <- f.len + n;
    let st = w.env.stats in
    st.bytes_written <- st.bytes_written + n;
    st.write_ops <- st.write_ops + 1;
    Clock.advance w.env.clock (Device.write_cost w.env.device ~bytes:n)
  end

(** [sync w] makes the file contents durable. *)
let sync w =
  w.file.synced <- w.file.len;
  w.env.stats.syncs <- w.env.stats.syncs + 1;
  Clock.advance w.env.clock (Device.sync_cost w.env.device)

(** [close w] closes the writer (contents remain; unsynced data stays
    volatile until the next [sync] on a new writer or a crash). *)
let close (_ : writer) = ()

let writer_size w = w.file.len

(** [write_at t name ~pos s] overwrites bytes at [pos] (extending the file
    with zeroes as needed) — the random-write path used by the page-based
    B+-tree stores.  Positioned writes are treated as immediately durable
    (page stores are assumed to carry their own journaling; see
    DESIGN.md). *)
let write_at t name ~pos s =
  let f =
    match Hashtbl.find_opt t.files name with
    | Some f -> f
    | None ->
      let f = { data = Bytes.create 4096; len = 0; synced = 0 } in
      Hashtbl.replace t.files name f;
      t.stats.files_created <- t.stats.files_created + 1;
      f
  in
  let n = String.length s in
  let needed = pos + n in
  let cap = Bytes.length f.data in
  if needed > cap then begin
    let bigger = Bytes.create (max needed (2 * cap)) in
    Bytes.blit f.data 0 bigger 0 f.len;
    Bytes.fill bigger f.len (max needed (2 * cap) - f.len) '\000';
    f.data <- bigger
  end;
  if pos > f.len then Bytes.fill f.data f.len (pos - f.len) '\000';
  Bytes.blit_string s 0 f.data pos n;
  f.len <- max f.len needed;
  f.synced <- f.len;
  t.stats.bytes_written <- t.stats.bytes_written + n;
  t.stats.write_ops <- t.stats.write_ops + 1;
  (* positioned page writes pay a random-IO style setup like reads do *)
  Clock.advance t.clock
    (Device.read_cost t.device ~hint:Device.Random_read ~bytes:0
     +. Device.write_cost t.device ~bytes:n)

let exists t name = Hashtbl.mem t.files name

let file_size t name = (find t name).len

(** [read t name ~pos ~len ~hint] reads a range, charging device cost per
    the read [hint].  Cached layers above this module avoid calling it for
    cache hits. *)
let read t name ~pos ~len ~hint =
  let f = find t name in
  if pos < 0 || len < 0 || pos + len > f.len then
    invalid_arg
      (Printf.sprintf "Env.read %s: [%d,%d) out of bounds (size %d)" name pos
         (pos + len) f.len);
  t.stats.bytes_read <- t.stats.bytes_read + len;
  t.stats.read_ops <- t.stats.read_ops + 1;
  Clock.advance t.clock (Device.read_cost t.device ~hint ~bytes:len);
  Bytes.sub_string f.data pos len

let read_all t name ~hint =
  let f = find t name in
  read t name ~pos:0 ~len:f.len ~hint

let delete t name =
  if Hashtbl.mem t.files name then begin
    Hashtbl.remove t.files name;
    t.stats.files_deleted <- t.stats.files_deleted + 1
  end

(** [rename t ~src ~dst] atomically (and durably) renames a file. *)
let rename t ~src ~dst =
  let f = find t src in
  Hashtbl.remove t.files src;
  Hashtbl.replace t.files dst f

let list t = Hashtbl.fold (fun name _ acc -> name :: acc) t.files []

(** Total bytes stored across all files — used for space-amplification
    measurements (Figure 5.3). *)
let total_file_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + f.len) t.files 0

(** [crash t] simulates a power failure: every file loses its unsynced
    suffix; files that never reached a sync disappear. *)
let crash t =
  let doomed = ref [] in
  Hashtbl.iter
    (fun name f ->
      if f.synced = 0 then doomed := name :: !doomed
      else f.len <- f.synced)
    t.files;
  List.iter (fun name -> Hashtbl.remove t.files name) !doomed
