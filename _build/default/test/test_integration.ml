(* Cross-engine integration tests: every engine must agree on results for
   identical operation sequences; stores must survive crashes at random
   points; the experiment machinery must hold together end-to-end. *)

module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter
module P = Pebblesdb.Pebbles_store

let check = Alcotest.check

let qtest ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let small_tweak (o : Pdb_kvs.Options.t) =
  { o with Pdb_kvs.Options.memtable_bytes = 4 * 1024 }

let all_engines =
  [
    Pdb_harness.Stores.Pebblesdb;
    Pdb_harness.Stores.Pebblesdb_one;
    Pdb_harness.Stores.Hyperleveldb;
    Pdb_harness.Stores.Leveldb;
    Pdb_harness.Stores.Rocksdb;
    Pdb_harness.Stores.Btree;
    Pdb_harness.Stores.Wiredtiger;
  ]

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d" i

(* Apply a deterministic op sequence, return final sorted contents. *)
let run_sequence engine ops =
  let store = Pdb_harness.Stores.open_engine ~tweak:small_tweak engine in
  List.iter
    (fun op ->
      match op with
      | `Put (k, v) -> store.Dyn.d_put k v
      | `Delete k -> store.Dyn.d_delete k)
    ops;
  let contents = Iter.to_list (store.Dyn.d_iterator ()) in
  store.Dyn.d_check_invariants ();
  store.Dyn.d_close ();
  contents

let make_ops seed n =
  let rng = Pdb_util.Rng.create seed in
  List.init n (fun i ->
      let k = key (Pdb_util.Rng.int rng 300) in
      if Pdb_util.Rng.int rng 10 < 2 then `Delete k
      else `Put (k, value i))

let test_engines_agree () =
  let ops = make_ops 77 2_000 in
  match List.map (fun e -> run_sequence e ops) all_engines with
  | [] -> ()
  | reference :: rest ->
    List.iteri
      (fun i contents ->
        check Alcotest.int
          (Printf.sprintf "engine %d same cardinality" i)
          (List.length reference) (List.length contents);
        Alcotest.(check bool)
          (Printf.sprintf "engine %d same contents" i)
          true (contents = reference))
      rest

let prop_engines_agree_random =
  qtest "all engines agree on random op sequences" ~count:5
    QCheck.(small_int)
    (fun seed ->
      let ops = make_ops seed 800 in
      match List.map (fun e -> run_sequence e ops) all_engines with
      | [] -> true
      | reference :: rest -> List.for_all (fun c -> c = reference) rest)

(* ---------- crash points ---------- *)

let test_pebbles_crash_at_random_points () =
  (* write in bursts with explicit flushes (sync points); crash at random
     moments; recovery must never lose synced data nor corrupt structure *)
  let rng = Pdb_util.Rng.create 123 in
  for round = 0 to 9 do
    let env = Env.create () in
    let opts =
      { (Pdb_kvs.Options.pebblesdb ()) with
        Pdb_kvs.Options.memtable_bytes = 4 * 1024 }
    in
    let db = P.open_store opts ~env ~dir:"db" in
    let durable = Hashtbl.create 64 in
    let bursts = 1 + Pdb_util.Rng.int rng 5 in
    for b = 0 to bursts - 1 do
      let burst = Hashtbl.create 16 in
      for i = 0 to 99 do
        let k = key ((b * 100) + i) in
        let v = value ((round * 10_000) + i) in
        P.put db k v;
        Hashtbl.replace burst k v
      done;
      (* flush makes the burst durable (sstables are synced) *)
      P.flush db;
      Hashtbl.iter (fun k v -> Hashtbl.replace durable k v) burst
    done;
    (* a trailing unsynced burst that may vanish *)
    for i = 0 to Pdb_util.Rng.int rng 100 do
      P.put db (key (9_000 + i)) "volatile"
    done;
    Env.crash env;
    let db2 = P.open_store opts ~env ~dir:"db" in
    P.check_invariants db2;
    Hashtbl.iter
      (fun k v ->
        check
          Alcotest.(option string)
          (Printf.sprintf "round %d durable %s" round k)
          (Some v) (P.get db2 k))
      durable;
    P.close db2
  done

let test_double_crash_recovery () =
  let env = Env.create () in
  let opts =
    { (Pdb_kvs.Options.pebblesdb ()) with
      Pdb_kvs.Options.memtable_bytes = 4 * 1024 }
  in
  let db = P.open_store opts ~env ~dir:"db" in
  for i = 0 to 499 do
    P.put db (key i) (value i)
  done;
  P.flush db;
  Env.crash env;
  let db2 = P.open_store opts ~env ~dir:"db" in
  for i = 500 to 699 do
    P.put db2 (key i) (value i)
  done;
  P.flush db2;
  Env.crash env;
  let db3 = P.open_store opts ~env ~dir:"db" in
  P.check_invariants db3;
  for i = 0 to 699 do
    check Alcotest.(option string) ("after two crashes " ^ key i)
      (Some (value i)) (P.get db3 (key i))
  done;
  P.close db3

(* ---------- aged environment ---------- *)

let test_store_on_aged_device () =
  let env = Env.create () in
  Pdb_simio.Device.set_aging (Env.device env) 3.0;
  let store =
    Pdb_harness.Stores.open_engine ~tweak:small_tweak ~env
      Pdb_harness.Stores.Pebblesdb
  in
  for i = 0 to 999 do
    store.Dyn.d_put (key i) (value i)
  done;
  for i = 0 to 999 do
    check Alcotest.(option string) "aged device readback" (Some (value i))
      (store.Dyn.d_get (key i))
  done;
  store.Dyn.d_check_invariants ();
  store.Dyn.d_close ()

(* ---------- pebbles-specific throughput invariants ---------- *)

let test_pebbles_beats_lsm_on_write_io_at_scale () =
  (* the headline FLSM property at a slightly larger scale: write IO of
     PebblesDB must be well below HyperLevelDB for identical inserts *)
  let n = 10_000 in
  let io_of engine =
    let store = Pdb_harness.Stores.open_engine engine in
    ignore
      (Pdb_harness.Bench_util.fill_random store ~n ~value_bytes:512 ~seed:5);
    store.Dyn.d_flush ();
    let io =
      (Env.stats store.Dyn.d_env).Pdb_simio.Io_stats.bytes_written
    in
    store.Dyn.d_close ();
    io
  in
  let pebbles = io_of Pdb_harness.Stores.Pebblesdb in
  let hyper = io_of Pdb_harness.Stores.Hyperleveldb in
  Alcotest.(check bool)
    (Printf.sprintf "pebbles %dMB <= 0.7 * hyper %dMB" (pebbles / 1048576)
       (hyper / 1048576))
    true
    (float_of_int pebbles <= 0.7 *. float_of_int hyper)

let test_ycsb_on_every_kv_engine () =
  List.iter
    (fun engine ->
      let store = Pdb_harness.Stores.open_engine ~tweak:small_tweak engine in
      let r1 = Pdb_ycsb.Runner.load store ~records:500 ~value_bytes:64 ~seed:3 in
      let r2 =
        Pdb_ycsb.Runner.run store Pdb_ycsb.Workload.workload_a ~records:500
          ~operations:500 ~value_bytes:64 ~seed:3
      in
      Alcotest.(check bool)
        ("ycsb sane on " ^ store.Dyn.d_name)
        true
        (r1.Pdb_ycsb.Runner.kops_per_s > 0.0
         && r2.Pdb_ycsb.Runner.kops_per_s > 0.0
         && r2.Pdb_ycsb.Runner.reads + r2.Pdb_ycsb.Runner.updates = 500);
      store.Dyn.d_check_invariants ();
      store.Dyn.d_close ())
    all_engines

(* ---------- repair ---------- *)

let test_repair_rebuilds_manifest () =
  let env = Env.create () in
  let opts =
    { (Pdb_kvs.Options.pebblesdb ()) with
      Pdb_kvs.Options.memtable_bytes = 4 * 1024 }
  in
  let db = P.open_store opts ~env ~dir:"db" in
  for i = 0 to 799 do
    P.put db (key i) (value i)
  done;
  P.flush db;
  P.close db;
  (* destroy the manifest and CURRENT *)
  List.iter
    (fun name ->
      if
        Filename.check_suffix name ".log"
        || String.length (Filename.basename name) >= 8
           && String.sub (Filename.basename name) 0 8 = "MANIFEST"
        || Filename.basename name = "CURRENT"
      then Env.delete env name)
    (Env.list env);
  Alcotest.(check bool) "manifest gone" true
    (Pdb_manifest.Manifest.recover env ~dir:"db" = None);
  let report = Pdb_manifest.Repair.repair env ~dir:"db" in
  Alcotest.(check bool) "tables recovered" true
    (report.Pdb_manifest.Repair.tables_recovered > 0);
  let db2 = P.open_store opts ~env ~dir:"db" in
  P.check_invariants db2;
  for i = 0 to 799 do
    check Alcotest.(option string) ("repaired " ^ key i) (Some (value i))
      (P.get db2 (key i))
  done;
  (* sequence numbers must not regress: a new overwrite wins *)
  P.put db2 (key 0) "overwritten-after-repair";
  check Alcotest.(option string) "new write wins" (Some "overwritten-after-repair")
    (P.get db2 (key 0));
  P.close db2

let test_repair_works_for_lsm_store_too () =
  let env = Env.create () in
  let opts =
    { (Pdb_kvs.Options.hyperleveldb ()) with
      Pdb_kvs.Options.memtable_bytes = 4 * 1024 }
  in
  let module L = Pdb_lsm.Lsm_store in
  let db = L.open_store opts ~env ~dir:"db" in
  for i = 0 to 499 do
    L.put db (key i) (value i)
  done;
  L.flush db;
  L.close db;
  List.iter
    (fun name ->
      if
        Filename.basename name = "CURRENT"
        || String.length (Filename.basename name) >= 8
           && String.sub (Filename.basename name) 0 8 = "MANIFEST"
      then Env.delete env name)
    (Env.list env);
  ignore (Pdb_manifest.Repair.repair env ~dir:"db");
  let db2 = L.open_store opts ~env ~dir:"db" in
  L.check_invariants db2;
  for i = 0 to 499 do
    check Alcotest.(option string) ("lsm repaired " ^ key i) (Some (value i))
      (L.get db2 (key i))
  done;
  L.close db2

let () =
  Alcotest.run "integration"
    [
      ( "repair",
        [
          Alcotest.test_case "rebuilds manifest" `Quick
            test_repair_rebuilds_manifest;
          Alcotest.test_case "lsm store too" `Quick
            test_repair_works_for_lsm_store_too;
        ] );
      ( "cross-engine",
        [
          Alcotest.test_case "engines agree" `Quick test_engines_agree;
          prop_engines_agree_random;
          Alcotest.test_case "ycsb on every engine" `Quick
            test_ycsb_on_every_kv_engine;
        ] );
      ( "crash",
        [
          Alcotest.test_case "random crash points" `Quick
            test_pebbles_crash_at_random_points;
          Alcotest.test_case "double crash" `Quick test_double_crash_recovery;
        ] );
      ( "environment",
        [
          Alcotest.test_case "aged device" `Quick test_store_on_aged_device;
          Alcotest.test_case "write IO advantage" `Quick
            test_pebbles_beats_lsm_on_write_io_at_scale;
        ] );
    ]
