(** Concatenating iterator over a sorted run of disjoint tables (one LSM
    level >= 1).  Tables are opened lazily through the table cache, so a
    seek touches exactly one table.

    With a {!Seek_filter} attached, member tables the filter proves
    disjoint from the probe range are never opened: a bounded scan stops
    opening successors past its upper bound, and a prefix-bounded seek
    skips tables whose prefix bloom certifies the prefix absent.  With a
    {!Pdb_simio.Probe} context, each table positioning is measured so an
    enclosing probe session can overlap it against the device's budget. *)

(* [on_table] is called whenever a table is positioned, letting engines
   charge modeled CPU per sstable examined. *)
let create ?(filter = Seek_filter.none) ?probe ~cache ~block_cache ~hint
    ~on_table (files : Table.meta array) =
  let n = Array.length files in
  let idx = ref n (* invalid *) in
  let table_it = ref None in
  let measure f =
    match probe with Some ctx -> Pdb_simio.Probe.measure ctx f | None -> f ()
  in
  let open_at i ~position =
    idx := i;
    if i >= 0 && i < n then
      measure (fun () ->
        let reader = Table_cache.find cache files.(i) in
        let it = Table.iterator reader ~cache:block_cache ~hint in
        on_table ();
        position it;
        table_it := Some it)
    else table_it := None
  in
  (* first file at-or-after [i] surviving the filter; [n] if none *)
  let rec surviving i target =
    if i >= n then n
    else
      let skip =
        match target with
        | Some tgt -> Seek_filter.skip_seek filter files.(i) ~target:tgt
        | None -> Seek_filter.skip_first filter files.(i)
      in
      if skip then surviving (i + 1) target else i
  in
  let skip_exhausted () =
    let rec go () =
      match !table_it with
      | Some it when not (it.Pdb_kvs.Iter.valid ()) ->
        let j = surviving (!idx + 1) None in
        if j < n then begin
          open_at j ~position:(fun it2 -> it2.Pdb_kvs.Iter.seek_to_first ());
          go ()
        end
        else table_it := None
      | Some _ | None -> ()
    in
    go ()
  in
  let current () =
    match !table_it with
    | Some it when it.Pdb_kvs.Iter.valid () -> Some it
    | Some _ | None -> None
  in
  (* first table whose largest key is >= target *)
  let find_file target =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Pdb_kvs.Internal_key.compare files.(mid).Table.largest target < 0
      then lo := mid + 1
      else hi := mid
    done;
    !lo
  in
  {
    Pdb_kvs.Iter.seek_to_first =
      (fun () ->
        let i = surviving 0 None in
        if i >= n then table_it := None
        else begin
          open_at i ~position:(fun it -> it.Pdb_kvs.Iter.seek_to_first ());
          skip_exhausted ()
        end);
    seek =
      (fun target ->
        let i = surviving (find_file target) (Some target) in
        if i >= n then table_it := None
        else begin
          open_at i ~position:(fun it -> it.Pdb_kvs.Iter.seek target);
          skip_exhausted ()
        end);
    next =
      (fun () ->
        (match current () with
         | Some it -> it.Pdb_kvs.Iter.next ()
         | None -> ());
        skip_exhausted ());
    valid = (fun () -> Option.is_some (current ()));
    key =
      (fun () ->
        match current () with
        | Some it -> it.Pdb_kvs.Iter.key ()
        | None -> invalid_arg "Level_iter: iterator is not valid");
    value =
      (fun () ->
        match current () with
        | Some it -> it.Pdb_kvs.Iter.value ()
        | None -> invalid_arg "Level_iter: iterator is not valid");
  }
