lib/kvs/write_batch.mli:
