lib/core/guard_selector.mli: Pdb_kvs
