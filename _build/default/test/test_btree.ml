(* Tests for the B+-tree store and the WiredTiger-like engine. *)

module B = Pdb_btree.Bptree
module W = Pdb_btree.Wt_store
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter

let check = Alcotest.check

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let tiny_opts () =
  { (O.leveldb ()) with O.block_bytes = 512; memtable_bytes = 4 * 1024 }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d" i

let test_put_get () =
  let env = Env.create () in
  let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  B.put db "b" "2";
  B.put db "a" "1";
  check Alcotest.(option string) "a" (Some "1") (B.get db "a");
  check Alcotest.(option string) "b" (Some "2") (B.get db "b");
  check Alcotest.(option string) "missing" None (B.get db "zz");
  B.put db "a" "updated";
  check Alcotest.(option string) "update in place" (Some "updated")
    (B.get db "a");
  check Alcotest.int "count stable on update" 2 (B.count db)

let test_splits_preserve_data () =
  let env = Env.create () in
  let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  let n = 2000 in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 1) perm;
  Array.iter (fun i -> B.put db (key i) (value i)) perm;
  B.check_invariants db;
  check Alcotest.int "count" n (B.count db);
  for i = 0 to n - 1 do
    check Alcotest.(option string) ("get " ^ key i) (Some (value i))
      (B.get db (key i))
  done

let test_iterator_sorted () =
  let env = Env.create () in
  let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  let n = 500 in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 2) perm;
  Array.iter (fun i -> B.put db (key i) (value i)) perm;
  let got = Iter.to_list (B.iterator db) in
  check
    Alcotest.(list (pair string string))
    "sorted" (List.init n (fun i -> (key i, value i)))
    got

let test_iterator_seek () =
  let env = Env.create () in
  let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  for i = 0 to 499 do
    B.put db (key (2 * i)) (value i)
  done;
  let it = B.iterator db in
  it.Iter.seek (key 101);
  check Alcotest.string "seek successor" (key 102) (it.Iter.key ());
  it.Iter.next ();
  check Alcotest.string "next" (key 104) (it.Iter.key ())

let test_delete () =
  let env = Env.create () in
  let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  for i = 0 to 299 do
    B.put db (key i) (value i)
  done;
  for i = 0 to 299 do
    if i mod 2 = 0 then B.delete db (key i)
  done;
  B.check_invariants db;
  check Alcotest.int "count" 150 (B.count db);
  for i = 0 to 299 do
    let expected = if i mod 2 = 0 then None else Some (value i) in
    check Alcotest.(option string) (key i) expected (B.get db (key i))
  done

let test_persistence () =
  let env = Env.create () in
  let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  for i = 0 to 999 do
    B.put db (key i) (value i)
  done;
  B.close db;
  let db2 = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
  B.check_invariants db2;
  for i = 0 to 999 do
    check Alcotest.(option string) ("reloaded " ^ key i) (Some (value i))
      (B.get db2 (key i))
  done

let test_btree_write_amp_exceeds_lsm () =
  (* chapter 2's motivation: random updates to a write-through B+-tree
     amplify writes far beyond an LSM *)
  let n = 2000 in
  let env_b = Env.create () in
  let bt = B.open_store (tiny_opts ()) ~env:env_b ~dir:"bt" in
  for i = 0 to n - 1 do
    B.put bt (key (i * 7919 mod n)) (value i)
  done;
  let bt_io = (Env.stats env_b).Pdb_simio.Io_stats.bytes_written in
  let env_l = Env.create () in
  let opts =
    {
      (O.hyperleveldb ()) with
      O.memtable_bytes = 4 * 1024;
      block_bytes = 512;
      sstable_target_bytes = 4 * 1024;
      level_bytes_base = 16 * 1024;
    }
  in
  let lsm = Pdb_lsm.Lsm_store.open_store opts ~env:env_l ~dir:"db" in
  for i = 0 to n - 1 do
    Pdb_lsm.Lsm_store.put lsm (key (i * 7919 mod n)) (value i)
  done;
  Pdb_lsm.Lsm_store.flush lsm;
  let lsm_io = (Env.stats env_l).Pdb_simio.Io_stats.bytes_written in
  Alcotest.(check bool)
    (Printf.sprintf "btree io %d > lsm io %d" bt_io lsm_io)
    true (bt_io > lsm_io)

let test_wt_buffered_writes_less_than_write_through () =
  let n = 3000 in
  let run_mode mode =
    let env = Env.create () in
    let db = B.open_store ~mode (tiny_opts ()) ~env ~dir:"bt" in
    for i = 0 to n - 1 do
      B.put db (key (i mod 200)) (value i) (* hot working set *)
    done;
    B.flush db;
    (Env.stats env).Pdb_simio.Io_stats.bytes_written
  in
  let wt = run_mode B.Buffered and kc = run_mode B.Write_through in
  Alcotest.(check bool)
    (Printf.sprintf "buffered %d < write-through %d" wt kc)
    true (wt < kc)

let test_wt_store_roundtrip () =
  let env = Env.create () in
  let db = W.open_store (tiny_opts ()) ~env ~dir:"wt" in
  for i = 0 to 999 do
    W.put db (key i) (value i)
  done;
  for i = 0 to 999 do
    check Alcotest.(option string) (key i) (Some (value i)) (W.get db (key i))
  done;
  W.check_invariants db;
  W.close db;
  let db2 = W.open_store (tiny_opts ()) ~env ~dir:"wt" in
  for i = 0 to 999 do
    check Alcotest.(option string) ("persisted " ^ key i) (Some (value i))
      (W.get db2 (key i))
  done

let test_wt_checkpoints_bound_journal () =
  let env = Env.create () in
  let opts = { (tiny_opts ()) with O.memtable_bytes = 2 * 1024 } in
  let db = W.open_store opts ~env ~dir:"wt" in
  for i = 0 to 999 do
    W.put db (key i) (value i)
  done;
  (* journals are rotated: no journal file may exceed ~2x the limit *)
  List.iter
    (fun name ->
      if Filename.check_suffix name ".log" then
        Alcotest.(check bool) "journal bounded" true
          (Env.file_size env name < 4 * opts.O.memtable_bytes))
    (Env.list env)

let prop_btree_model =
  qtest "btree = model under random ops"
    QCheck.(list (pair (int_bound 300) (option (int_bound 1000))))
    (fun ops ->
      let env = Env.create () in
      let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let ks = key k in
          match v with
          | Some v ->
            B.put db ks (value v);
            Hashtbl.replace model ks (value v)
          | None ->
            B.delete db ks;
            Hashtbl.remove model ks)
        ops;
      B.check_invariants db;
      Hashtbl.fold (fun k v acc -> acc && B.get db k = Some v) model true
      && List.for_all
           (fun (k, _) ->
             let ks = key k in
             B.get db ks = Hashtbl.find_opt model ks)
           ops)

let prop_btree_iterator_model =
  qtest "btree iterator = sorted model" ~count:10
    QCheck.(list (pair (int_bound 400) (int_bound 1000)))
    (fun ops ->
      let env = Env.create () in
      let db = B.open_store (tiny_opts ()) ~env ~dir:"bt" in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          B.put db (key k) (value v);
          Hashtbl.replace model (key k) (value v))
        ops;
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Iter.to_list (B.iterator db) = expected)

let () =
  Alcotest.run "btree"
    [
      ( "bptree",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "splits" `Quick test_splits_preserve_data;
          Alcotest.test_case "iterator sorted" `Quick test_iterator_sorted;
          Alcotest.test_case "iterator seek" `Quick test_iterator_seek;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "persistence" `Quick test_persistence;
          Alcotest.test_case "write amp vs lsm" `Quick
            test_btree_write_amp_exceeds_lsm;
          Alcotest.test_case "buffered < write-through" `Quick
            test_wt_buffered_writes_less_than_write_through;
          prop_btree_model;
          prop_btree_iterator_model;
        ] );
      ( "wiredtiger-sim",
        [
          Alcotest.test_case "roundtrip+persist" `Quick test_wt_store_roundtrip;
          Alcotest.test_case "journal bounded" `Quick
            test_wt_checkpoints_bound_journal;
        ] );
    ]
