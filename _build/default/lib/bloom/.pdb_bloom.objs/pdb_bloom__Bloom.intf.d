lib/bloom/bloom.mli:
