(* Foreground concurrency and WAL group commit.

   The multi-client driver must be a pure *time* model: store state —
   every on-disk byte — is identical at any client count, groups form
   deterministically under a fixed seed, a crash between a group's WAL
   append and its sync never loses an acknowledged write, and WAL
   batches that fail to decode at recovery are counted, not silently
   skipped. *)

module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Stores = Pdb_harness.Stores
module B = Pdb_harness.Bench_util
module Mc = Pdb_kvs.Multi_client
module Wal = Pdb_wal.Wal

let sync_tweak o =
  { o with Pdb_kvs.Options.wal_sync_writes = true }

(* sorted (name, contents) snapshot of every file in the env *)
let files_of env =
  Env.list env
  |> List.map (fun name ->
         (name, Env.read_all env name ~hint:Pdb_simio.Device.Sequential_read))
  |> List.sort compare

let all_entries (store : Dyn.dyn) =
  let it = store.Dyn.d_iterator () in
  it.Pdb_kvs.Iter.seek_to_first ();
  let acc = ref [] in
  while it.Pdb_kvs.Iter.valid () do
    acc := (it.Pdb_kvs.Iter.key (), it.Pdb_kvs.Iter.value ()) :: !acc;
    it.Pdb_kvs.Iter.next ()
  done;
  List.rev !acc

(* ---------- client-count invariance ---------- *)

let run_fill engine ~clients =
  let env = Env.create () in
  let store = Stores.open_engine ~tweak:sync_tweak ~env engine in
  let _, r = B.mc_fill_random store ~clients ~n:3_000 ~value_bytes:128 ~seed:7 in
  let entries = all_entries store in
  (env, store, entries, r)

let test_state_invariance engine () =
  let env1, s1, entries1, r1 = run_fill engine ~clients:1 in
  let env4, s4, entries4, r4 = run_fill engine ~clients:4 in
  let env8, s8, entries8, r8 = run_fill engine ~clients:8 in
  Alcotest.(check int) "8-client run formed multi-batch groups" 8
    (int_of_float r8.Mc.avg_group_size);
  (* the lane scheduler and the engine must agree on how many commit
     groups formed — every group placed on a lane is one engine-side
     write_group call, and vice versa *)
  List.iter
    (fun (clients, (r : Mc.result)) ->
      Alcotest.(check int)
        (Printf.sprintf "lane groups = engine write groups at %dc" clients)
        r.Mc.write_groups r.Mc.lane_groups)
    [ (1, r1); (4, r4); (8, r8) ];
  Alcotest.(check bool) "iteration results identical 1c vs 4c" true
    (entries1 = entries4);
  Alcotest.(check bool) "iteration results identical 1c vs 8c" true
    (entries1 = entries8);
  s1.Dyn.d_close ();
  s4.Dyn.d_close ();
  s8.Dyn.d_close ();
  let f1 = files_of env1 in
  List.iter
    (fun (clients, fn) ->
      Alcotest.(check (list string))
        (Printf.sprintf "same file set at 1 vs %d clients" clients)
        (List.map fst f1) (List.map fst fn);
      List.iter2
        (fun (name, b1) (_, bn) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s byte-identical at 1 vs %d clients" name
               clients)
            true (String.equal b1 bn))
        f1 fn)
    [ (4, files_of env4); (8, files_of env8) ]

(* ---------- group-formation determinism ---------- *)

let test_determinism () =
  let once () =
    let env = Env.create () in
    let store = Stores.open_engine ~tweak:sync_tweak ~env Stores.Pebblesdb in
    let _, r = B.mc_mixed store ~clients:4 ~n:2_000 ~ops:4_000
                 ~value_bytes:128 ~seed:11 in
    store.Dyn.d_close ();
    r
  in
  let a = once () and b = once () in
  Alcotest.(check int) "groups" a.Mc.write_groups b.Mc.write_groups;
  Alcotest.(check int) "lane groups agree with engine groups"
    a.Mc.write_groups a.Mc.lane_groups;
  Alcotest.(check int) "grouped batches" a.Mc.grouped_batches
    b.Mc.grouped_batches;
  Alcotest.(check int) "syncs saved" a.Mc.syncs_saved b.Mc.syncs_saved;
  Alcotest.(check (float 0.0)) "elapsed" a.Mc.elapsed_ns b.Mc.elapsed_ns;
  Alcotest.(check bool) "per-client waits" true
    (a.Mc.client_wait_ns = b.Mc.client_wait_ns);
  Alcotest.(check bool) "groups formed" true (a.Mc.write_groups > 0);
  Alcotest.(check bool) "syncs amortised" true (a.Mc.syncs_saved > 0)

(* ---------- crash between a group's WAL append and its sync ---------- *)

(* With [wal_sync_writes], [write_group] must not return before the
   group's sync completes: sweeping a crash over every IO event of a
   run of groups, any group that was acknowledged (the call returned)
   must survive reopen, and recovered values always match what was
   written — even when the crash lands exactly on the group's sync,
   after its records hit the log. *)
let test_crash_mid_group engine () =
  let value i = Printf.sprintf "value-%04d" i in
  let group g =
    (* 4 one-put batches, as 4 clients would queue them *)
    List.init 4 (fun j ->
        let b = Pdb_kvs.Write_batch.create () in
        Pdb_kvs.Write_batch.put b (Printf.sprintf "key-%02d-%d" g j)
          (value ((g * 4) + j));
        b)
  in
  let sync_window_crashes = ref 0 in
  for crash_after = 1 to 60 do
    let env = Env.create () in
    let store = Stores.open_engine ~tweak:sync_tweak ~env engine in
    let plan =
      Env.Fault_plan.create ~seed:crash_after ~crash_after ()
    in
    Env.set_fault_plan env plan;
    let acked = ref [] in
    (try
       for g = 0 to 9 do
         store.Dyn.d_write_group (group g);
         acked := g :: !acked
       done;
       Env.clear_fault_plan env
     with Env.Injected_crash _ ->
       (match Env.Fault_plan.fired_at plan with
        | Some at when String.length at >= 5 && String.sub at 0 5 = "sync:" ->
          incr sync_window_crashes
        | _ -> ());
       Env.crash env);
    let store2 = Stores.open_engine ~tweak:sync_tweak ~env engine in
    List.iter
      (fun g ->
        List.iteri
          (fun j _ ->
            let k = Printf.sprintf "key-%02d-%d" g j in
            Alcotest.(check (option string))
              (Printf.sprintf "acked %s survives crash@%d" k crash_after)
              (Some (value ((g * 4) + j)))
              (store2.Dyn.d_get k))
          (group g))
      !acked;
    (* unacked writes may or may not have survived, but any recovered
       value must be the one that was written *)
    List.iter
      (fun (k, v) ->
        if String.length k >= 4 && String.sub k 0 4 = "key-" then begin
          let g = int_of_string (String.sub k 4 2) in
          let j = int_of_string (String.sub k 7 1) in
          Alcotest.(check string)
            (Printf.sprintf "recovered %s consistent crash@%d" k crash_after)
            (value ((g * 4) + j))
            v
        end)
      (all_entries store2);
    store2.Dyn.d_close ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sweep hit the append-to-sync window (%d times)"
       !sync_window_crashes)
    true (!sync_window_crashes > 0)

(* ---------- undecodable WAL batches are counted ---------- *)

let test_wal_rejection engine () =
  let env = Env.create () in
  let store = Stores.open_engine ~env engine in
  store.Dyn.d_put "a" "keep-me";
  store.Dyn.d_close ();
  (* append one well-framed WAL record whose payload is not a decodable
     batch (13 bytes: seq + count present, first tag invalid) *)
  let log =
    Env.list env
    |> List.filter (fun n -> Filename.check_suffix n ".log")
    |> List.sort compare |> List.rev |> List.hd
  in
  let bytes = Env.read_all env log ~hint:Pdb_simio.Device.Sequential_read in
  let w = Env.create_file env log in
  Env.append w bytes;
  let wal = Wal.Writer.of_writer w ~existing_bytes:(String.length bytes) in
  Wal.Writer.add_record wal "0123456789012";
  Wal.Writer.sync wal;
  Wal.Writer.close wal;
  let store2 = Stores.open_engine ~env engine in
  let st = store2.Dyn.d_stats () in
  Alcotest.(check int) "rejected batch counted" 1
    st.Pdb_kvs.Engine_stats.wal_batches_rejected;
  Alcotest.(check bool) "rejected bytes reported" true
    (st.Pdb_kvs.Engine_stats.wal_bytes_dropped >= 13);
  Alcotest.(check (option string)) "good record still recovered"
    (Some "keep-me") (store2.Dyn.d_get "a");
  store2.Dyn.d_close ()

(* ---------- block size-estimate (satellite) ---------- *)

let test_block_estimate () =
  let open Pdb_sstable.Block in
  let b = Builder.create () in
  for i = 0 to 99 do
    (* spans several restart points at any restart_interval *)
    Builder.add b (Printf.sprintf "key%06d" i) (String.make 20 'v');
    let est = Builder.current_size_estimate b in
    Alcotest.(check bool)
      (Printf.sprintf "estimate positive after %d adds" (i + 1))
      true (est > 0)
  done;
  let est = Builder.current_size_estimate b in
  let finished = Builder.finish b in
  Alcotest.(check int) "estimate equals finished size" (String.length finished)
    est

let () =
  Alcotest.run "group-commit"
    [
      ( "invariance",
        [
          Alcotest.test_case "leveldb state invariant" `Quick
            (test_state_invariance Stores.Leveldb);
          Alcotest.test_case "pebblesdb state invariant" `Quick
            (test_state_invariance Stores.Pebblesdb);
          Alcotest.test_case "group formation deterministic" `Quick
            test_determinism;
        ] );
      ( "durability",
        [
          Alcotest.test_case "leveldb crash mid-group" `Slow
            (test_crash_mid_group Stores.Leveldb);
          Alcotest.test_case "pebblesdb crash mid-group" `Slow
            (test_crash_mid_group Stores.Pebblesdb);
          Alcotest.test_case "leveldb WAL rejection counted" `Quick
            (test_wal_rejection Stores.Leveldb);
          Alcotest.test_case "pebblesdb WAL rejection counted" `Quick
            (test_wal_rejection Stores.Pebblesdb);
        ] );
      ( "block",
        [ Alcotest.test_case "size estimate exact" `Quick test_block_estimate ]
      );
    ]
