(* Tests for the production-scale read path: seek filtering at guard
   boundaries, index summaries above the table cache, the parallel-probe
   budget, and the invariant the whole feature set rests on — reads may
   get faster, but neither results nor on-disk bytes may change. *)

module Env = Pdb_simio.Env
module Device = Pdb_simio.Device
module Clock = Pdb_simio.Clock
module Probe = Pdb_simio.Probe
module Ik = Pdb_kvs.Internal_key
module Iter = Pdb_kvs.Iter
module O = Pdb_kvs.Options
module Dyn = Pdb_kvs.Store_intf
module T = Pdb_sstable.Table
module TC = Pdb_sstable.Table_cache
module BC = Pdb_sstable.Block_cache
module SF = Pdb_sstable.Seek_filter
module G = Pebblesdb.Guard
module P = Pebblesdb.Pebbles_store
module Stores = Pdb_harness.Stores

let check = Alcotest.check
let checkf = Alcotest.(check (float 1e-9))

let ikey ?(seq = 1) k = Ik.encode ~user_key:k ~seq ~kind:Ik.Value

let build_table ?(prefix_bloom_len = 0) ?(block_bytes = 512) env ~number
    entries =
  let b =
    T.Builder.create ~prefix_bloom_len env ~dir:"db" ~number ~block_bytes
      ~bloom:true ~expected_keys:(List.length entries)
  in
  List.iter (fun (k, v) -> T.Builder.add b (ikey k) v) entries;
  Option.get (T.Builder.finish b)

(* ---------- probe budget: makespan and determinism ---------- *)

let test_makespan () =
  checkf "one lane is serial" 6.0 (Probe.makespan ~lanes:1 [ 1.0; 2.0; 3.0 ]);
  checkf "enough lanes -> max" 3.0 (Probe.makespan ~lanes:3 [ 1.0; 2.0; 3.0 ]);
  checkf "LPT packing" 5.0 (Probe.makespan ~lanes:2 [ 3.0; 3.0; 2.0; 2.0 ]);
  checkf "empty" 0.0 (Probe.makespan ~lanes:4 []);
  checkf "more lanes than jobs" 3.0 (Probe.makespan ~lanes:8 [ 3.0; 1.0 ])

(* Drive the same seeded workload at several budgets: results and disk
   bytes must be identical (the budget refunds time, nothing else), the
   simulated clock must be deterministic at a fixed budget, and more
   lanes can only make the run faster. *)
let run_at_budget budget =
  let tweak (o : O.t) =
    {
      o with
      O.memtable_bytes = 8 * 1024;
      table_cache_entries = 8;
      probe_budget_override = Some budget;
    }
  in
  let store = Stores.open_engine ~tweak Stores.Pebblesdb in
  let rng = Pdb_util.Rng.create 11 in
  let key i = Printf.sprintf "user%04d" i in
  for _ = 1 to 800 do
    store.Dyn.d_put (key (Pdb_util.Rng.int rng 300)) (Pdb_util.Rng.alpha rng 64)
  done;
  store.Dyn.d_flush ();
  for _ = 1 to 400 do
    ignore (store.Dyn.d_get (key (Pdb_util.Rng.int rng 300)))
  done;
  for s = 0 to 19 do
    let it = store.Dyn.d_iterator () in
    it.Iter.seek (key (s * 15));
    for _ = 1 to 10 do
      if it.Iter.valid () then it.Iter.next ()
    done
  done;
  let contents = Iter.to_list (store.Dyn.d_iterator ()) in
  let env = store.Dyn.d_env in
  let disk =
    Env.list env |> List.sort compare
    |> List.map (fun f ->
           (f, Digest.string (Env.read_all env f ~hint:Device.Sequential_read)))
  in
  let elapsed = Clock.elapsed_ns (Clock.snapshot (Env.clock env)) in
  store.Dyn.d_close ();
  (contents, disk, elapsed)

let test_probe_budget_determinism () =
  let c1, d1, e1 = run_at_budget 1 in
  let c4, d4, e4 = run_at_budget 4 in
  let c8, d8, e8 = run_at_budget 8 in
  let c4', d4', e4' = run_at_budget 4 in
  check Alcotest.bool "contents 1=4" true (c1 = c4);
  check Alcotest.bool "contents 4=8" true (c4 = c8);
  check Alcotest.bool "disk 1=4" true (d1 = d4);
  check Alcotest.bool "disk 4=8" true (d4 = d8);
  check Alcotest.bool "rerun identical" true (c4 = c4' && d4 = d4' && e4 = e4');
  check Alcotest.bool "more lanes never slower" true (e1 >= e4 && e4 >= e8)

(* ---------- seek filter: boundary decisions ---------- *)

let null_filter ?upper_user () =
  SF.create ?upper_user ~filtering:true
    ~peek:(fun _ -> None)
    ~on_check:(fun ~skipped:_ -> ())
    ()

let test_skip_seek_boundaries () =
  let env = Env.create () in
  let meta = build_table env ~number:1 [ ("g", "v"); ("k", "v") ] in
  let f = null_filter () in
  check Alcotest.bool "target inside range" false
    (SF.skip_seek f meta ~target:(Ik.max_for_lookup "h"));
  check Alcotest.bool "target exactly at largest" false
    (SF.skip_seek f meta ~target:(Ik.max_for_lookup "k"));
  check Alcotest.bool "target past largest" true
    (SF.skip_seek f meta ~target:(Ik.max_for_lookup "k\x00"));
  check Alcotest.bool "filtering off never skips" false
    (SF.skip_seek SF.none meta ~target:(Ik.max_for_lookup "z"));
  (* the upper-bound side, at its boundary *)
  check Alcotest.bool "upper below smallest" true
    (SF.skip_first (null_filter ~upper_user:"a" ()) meta);
  check Alcotest.bool "upper exactly at smallest" false
    (SF.skip_first (null_filter ~upper_user:"g" ()) meta);
  check Alcotest.bool "no upper keeps" false (SF.skip_first f meta)

let test_prefix_bloom () =
  let env = Env.create () in
  let meta =
    build_table ~prefix_bloom_len:4 env ~number:1
      [ ("aaaa1", "v"); ("aaaa2", "v"); ("cccc1", "v") ]
  in
  let r = T.open_reader env ~dir:"db" meta in
  check Alcotest.int "prefix length recorded" 4 (T.prefix_len r);
  check Alcotest.bool "present prefix" true (T.may_contain_prefix r "aaaa");
  check Alcotest.bool "absent prefix" false (T.may_contain_prefix r "bbbb");
  check Alcotest.bool "wrong-length probe passes" true
    (T.may_contain_prefix r "bb");
  check Alcotest.bool "point probes still work" true (T.may_contain r "aaaa1");
  (* integration: a prefix-bounded scan over an absent prefix skips the
     table; over a present one it does not *)
  let filter upper =
    SF.create ~upper_user:upper ~filtering:true
      ~peek:(fun _ -> Some r)
      ~on_check:(fun ~skipped:_ -> ())
      ()
  in
  check Alcotest.bool "absent prefix range skipped" true
    (SF.skip_seek (filter "bbbb9") meta ~target:(Ik.max_for_lookup "bbbb0"));
  check Alcotest.bool "present prefix range kept" false
    (SF.skip_seek (filter "aaaa9") meta ~target:(Ik.max_for_lookup "aaaa0"));
  (* bounds spanning two prefixes: the certificate does not apply *)
  check Alcotest.bool "mixed-prefix range kept" false
    (SF.skip_seek (filter "cccc9") meta ~target:(Ik.max_for_lookup "bbbb0"))

(* ---------- FLSM level iterator at guard boundaries ---------- *)

let make_level env specs =
  let level = G.create_level () in
  G.commit_guards level (List.filter_map fst specs);
  let number = ref 1 in
  List.iter
    (fun (_, tables) ->
      List.iter
        (fun keys ->
          let entries = List.map (fun k -> (k, "v-" ^ k)) keys in
          let meta = build_table env ~number:!number entries in
          incr number;
          G.attach level meta)
        tables)
    specs;
  level

let counting_filter ?upper_user ~peek () =
  let checks = ref 0 and skips = ref 0 in
  let f =
    SF.create ?upper_user ~filtering:true ~peek
      ~on_check:(fun ~skipped ->
        incr checks;
        if skipped then incr skips)
      ()
  in
  (f, checks, skips)

let iter_of ?filter ?(on_table = fun () -> ()) env level =
  let tc = TC.create env ~dir:"db" ~entries:100 in
  let bc = BC.create ~capacity:(1 lsl 20) in
  Pebblesdb.Flsm_level_iter.create ?filter ~level ~cache:tc ~block_cache:bc
    ~hint:Device.Random_read ~on_table ()

let test_level_iter_skips_dead_member () =
  let env = Env.create () in
  (* guard g holds two overlapping tables; a seek past one's largest key
     must skip it without changing the answer *)
  let level =
    make_level env
      [ (None, [ [ "a"; "c" ] ]); (Some "g", [ [ "g"; "m" ]; [ "h"; "k" ] ]) ]
  in
  let tc = TC.create env ~dir:"db" ~entries:100 in
  let f, checks, skips = counting_filter ~peek:(TC.peek tc) () in
  let it = iter_of ~filter:f env level in
  it.Iter.seek (Ik.max_for_lookup "l");
  check Alcotest.string "answer unchanged" "m" (Ik.user_key (it.Iter.key ()));
  check Alcotest.bool "member checked" true (!checks > 0);
  check Alcotest.int "dead member skipped" 1 !skips;
  (* same seek without filtering gives the same answer *)
  let it0 = iter_of env level in
  it0.Iter.seek (Ik.max_for_lookup "l");
  check Alcotest.string "unfiltered agrees" "m" (Ik.user_key (it0.Iter.key ()))

let test_level_iter_boundary_seeks () =
  let env = Env.create () in
  let level =
    make_level env
      [ (None, [ [ "a"; "c" ] ]); (Some "g", [ [ "g"; "m" ]; [ "h"; "k" ] ]) ]
  in
  let f, _, _ = counting_filter ~peek:(fun _ -> None) () in
  let it = iter_of ~filter:f env level in
  (* exactly at a member's largest key: the member must survive *)
  it.Iter.seek (Ik.max_for_lookup "k");
  check Alcotest.string "largest-key boundary" "k" (Ik.user_key (it.Iter.key ()));
  (* exactly at the guard key *)
  it.Iter.seek (Ik.max_for_lookup "g");
  check Alcotest.string "guard-key boundary" "g" (Ik.user_key (it.Iter.key ()));
  (* just before the guard key: sentinel tables are all dead, the scan
     must roll into the guard *)
  it.Iter.seek (Ik.max_for_lookup "d");
  check Alcotest.string "rolls over dead sentinel" "g"
    (Ik.user_key (it.Iter.key ()))

let test_level_iter_upper_bound_stops () =
  let env = Env.create () in
  let level =
    make_level env
      [ (None, [ [ "a"; "b" ] ]); (Some "m", [ [ "m"; "z" ] ]) ]
  in
  let f, _, _ = counting_filter ~upper_user:"c" ~peek:(fun _ -> None) () in
  let opened = ref 0 in
  let it = iter_of ~filter:f ~on_table:(fun () -> incr opened) env level in
  it.Iter.seek_to_first ();
  check Alcotest.string "first" "a" (Ik.user_key (it.Iter.key ()));
  it.Iter.next ();
  check Alcotest.string "second" "b" (Ik.user_key (it.Iter.key ()));
  it.Iter.next ();
  check Alcotest.bool "stops at bound" false (it.Iter.valid ());
  (* the guard past the bound is never entered: its table stays closed *)
  check Alcotest.int "out-of-range guard never opened" 1 !opened

(* ---------- engine iterator with an upper bound ---------- *)

let test_engine_upper_bound () =
  let env = Env.create () in
  let opts = { (O.pebblesdb ()) with O.memtable_bytes = 8 * 1024 } in
  let t = P.open_store opts ~env ~dir:"db" in
  let key i = Printf.sprintf "k%03d" i in
  for i = 0 to 99 do
    P.put t (key i) (string_of_int i)
  done;
  P.flush t;
  let collect it =
    it.Iter.seek_to_first ();
    let acc = ref [] in
    while it.Iter.valid () do
      acc := it.Iter.key () :: !acc;
      it.Iter.next ()
    done;
    List.rev !acc
  in
  let bounded = collect (P.iterator ~upper_bound:(key 49) t) in
  let all = collect (P.iterator t) in
  check Alcotest.int "all keys" 100 (List.length all);
  check Alcotest.(list string) "bounded = prefix of unbounded"
    (List.filteri (fun i _ -> i < 50) all)
    bounded;
  let it = P.iterator ~upper_bound:(key 49) t in
  it.Iter.seek (key 60);
  check Alcotest.bool "seek past bound is invalid" false (it.Iter.valid ());
  P.close t

(* ---------- index summaries ---------- *)

let summary_fixture () =
  let env = Env.create () in
  let entries =
    List.init 64 (fun i -> (Printf.sprintf "key%02d" i, String.make 32 'x'))
  in
  let meta = build_table ~block_bytes:256 env ~number:1 entries in
  (env, entries, meta)

let test_index_summary_shape () =
  let env, _, meta = summary_fixture () in
  let r = T.open_reader env ~dir:"db" meta in
  let s = T.summarize ~stride:4 r in
  let module IS = Pdb_sstable.Index_summary in
  check Alcotest.int "entries" 64 (IS.entries s);
  check Alcotest.bool "samples strictly between 1 and index size" true
    (IS.nsamples s >= 2);
  let keys = List.map fst (IS.samples s) in
  check Alcotest.(list string) "samples sorted" (List.sort compare keys) keys;
  check Alcotest.bool "slice no bigger than index" true
    (IS.slice_bytes s <= IS.index_bytes s);
  check Alcotest.bool "summary smaller than what it summarizes" true
    (IS.size_bytes s < IS.resident_table_bytes s)

let test_open_via_summary_equivalent () =
  let env, entries, meta = summary_fixture () in
  let r = T.open_reader env ~dir:"db" meta in
  let s = T.summarize ~stride:4 r in
  let r2 = T.open_via_summary env ~dir:"db" meta s in
  check Alcotest.bool "filter deferred" false (T.filter_resident r2);
  let bc = BC.create ~capacity:(1 lsl 20) in
  List.iter
    (fun (k, _) ->
      let a = T.get r ~cache:bc ~hint:Device.Random_read (Ik.max_for_lookup k)
      and b =
        T.get r2 ~cache:bc ~hint:Device.Random_read (Ik.max_for_lookup k)
      in
      check Alcotest.bool ("get " ^ k) true (a = b))
    entries;
  ignore (T.may_contain r2 "key00");
  check Alcotest.bool "filter loaded on first probe" true (T.filter_resident r2);
  check Alcotest.bool "absent key" true
    (T.may_contain r2 "nope" = T.may_contain r "nope");
  let dump rd = Iter.to_list (T.iterator rd ~cache:bc ~hint:Device.Random_read) in
  check Alcotest.bool "iterators agree" true (dump r = dump r2)

let test_table_cache_summary_reopen () =
  let env = Env.create () in
  let metas =
    List.init 5 (fun t ->
        build_table env ~number:(t + 1)
          (List.init 8 (fun i -> (Printf.sprintf "t%d-%02d" t i, "v"))))
  in
  let tc = TC.create ~summary_stride:4 env ~dir:"db" ~entries:2 in
  let bc = BC.create ~capacity:(1 lsl 20) in
  let touch () =
    List.iteri
      (fun t m ->
        let r = TC.find tc m in
        let k = Ik.max_for_lookup (Printf.sprintf "t%d-03" t) in
        match T.get r ~cache:bc ~hint:Device.Random_read k with
        | Some (ik, _) ->
          check Alcotest.string "cache read correct"
            (Printf.sprintf "t%d-03" t) (Ik.user_key ik)
        | None -> Alcotest.fail "lost key through summary reopen")
      metas
  in
  touch ();
  check Alcotest.int "first pass: all cold opens" 0 (TC.summary_hits tc);
  touch ();
  (* 5 tables through a 2-entry cache: every second-pass open is a
     summary-guided reopen *)
  check Alcotest.bool "reopens guided by summaries" true
    (TC.summary_hits tc >= 3);
  check Alcotest.int "every table summarized once" 5 (TC.summary_misses tc)

let test_table_cache_byte_bound () =
  let env = Env.create () in
  let metas =
    List.init 6 (fun t ->
        build_table env ~number:(t + 1)
          (List.init 40 (fun i -> (Printf.sprintf "t%d-%02d" t i, "value"))))
  in
  let w =
    T.resident_bytes (T.open_reader env ~dir:"db" (List.hd metas))
  in
  let budget = (2 * w) + (w / 2) in
  let tc = TC.create ~bytes:budget env ~dir:"db" ~entries:1_000_000 in
  List.iter (fun m -> ignore (TC.find tc m)) metas;
  check Alcotest.bool "byte budget respected" true
    (TC.resident_bytes tc <= budget);
  check Alcotest.bool "cache not emptied" true (TC.open_tables tc >= 1);
  (* reads through the bounded cache still work *)
  let bc = BC.create ~capacity:(1 lsl 20) in
  let r = TC.find tc (List.nth metas 0) in
  check Alcotest.bool "read-through after eviction" true
    (T.get r ~cache:bc ~hint:Device.Random_read (Ik.max_for_lookup "t0-07")
    <> None)

(* ---------- memory accounting uses actual resident bytes ---------- *)

let test_memory_accounting_actual () =
  (* two identical stores, one with prefix blooms (which double the
     filter): memory_bytes must reflect the decoded filters' actual
     size, not the bits-per-key estimate (which is blind to prefixes) *)
  let mb_with prefix_len =
    let env = Env.create () in
    let opts =
      { (O.pebblesdb ()) with O.memtable_bytes = 256 * 1024;
        prefix_bloom_len = prefix_len }
    in
    let t = P.open_store opts ~env ~dir:"db" in
    let key i = Printf.sprintf "user%04d" i in
    for i = 0 to 499 do
      P.put t (key i) (String.make 64 'v')
    done;
    P.flush t;
    (* touch the data so every sstable's reader is resident *)
    for i = 0 to 499 do
      ignore (P.get t (key i))
    done;
    let mb = P.memory_bytes t in
    P.close t;
    mb
  in
  let plain = mb_with 0 and prefixed = mb_with 8 in
  check Alcotest.bool "positive" true (plain > 0);
  (* 500 keys at 10 bits/key: prefix probes roughly double the filter,
     so actual-bytes accounting must differ by at least half a plain
     filter; the old estimate differed by at most a few index entries *)
  check Alcotest.bool "prefix blooms show up in memory accounting" true
    (prefixed - plain >= 500 * 10 / 8 / 2)

(* ---------- differential: read path on vs off ---------- *)

let read_path_off (o : O.t) =
  {
    o with
    O.seek_filtering = false;
    index_summary_stride = 0;
    probe_budget_override = Some 1;
  }

let observe engine cfg =
  let tweak (o : O.t) =
    cfg { o with O.memtable_bytes = 8 * 1024; table_cache_entries = 4 }
  in
  let store = Stores.open_engine ~tweak engine in
  let rng = Pdb_util.Rng.create 7 in
  let key i = Printf.sprintf "user%04d" i in
  for i = 1 to 2_000 do
    let k = key (Pdb_util.Rng.int rng 400) in
    if i mod 7 = 0 then store.Dyn.d_delete k
    else store.Dyn.d_put k (Pdb_util.Rng.alpha rng 48);
    if i mod 3 = 0 then ignore (store.Dyn.d_get (key (Pdb_util.Rng.int rng 400)));
    if i mod 50 = 0 then begin
      let it = store.Dyn.d_iterator () in
      it.Iter.seek (key (Pdb_util.Rng.int rng 400));
      for _ = 1 to 10 do
        if it.Iter.valid () then it.Iter.next ()
      done
    end;
    if i mod 500 = 0 then store.Dyn.d_flush ()
  done;
  let gets = List.init 400 (fun i -> store.Dyn.d_get (key i)) in
  let scan = Iter.to_list (store.Dyn.d_iterator ()) in
  let env = store.Dyn.d_env in
  let disk =
    Env.list env |> List.sort compare
    |> List.map (fun f ->
           (f, Digest.string (Env.read_all env f ~hint:Device.Sequential_read)))
  in
  store.Dyn.d_close ();
  (gets, scan, disk)

let diff_on_off engine () =
  let g_on, s_on, d_on = observe engine Fun.id in
  let g_off, s_off, d_off = observe engine read_path_off in
  check Alcotest.bool "gets identical" true (g_on = g_off);
  check Alcotest.bool "scans identical" true (s_on = s_off);
  check Alcotest.bool "disk byte-identical" true (d_on = d_off)

let () =
  Alcotest.run "read-path"
    [
      ( "probe-budget",
        [
          Alcotest.test_case "makespan packing" `Quick test_makespan;
          Alcotest.test_case "deterministic across budgets" `Quick
            test_probe_budget_determinism;
        ] );
      ( "seek-filter",
        [
          Alcotest.test_case "skip decisions at boundaries" `Quick
            test_skip_seek_boundaries;
          Alcotest.test_case "prefix blooms" `Quick test_prefix_bloom;
          Alcotest.test_case "level iter skips dead member" `Quick
            test_level_iter_skips_dead_member;
          Alcotest.test_case "level iter boundary seeks" `Quick
            test_level_iter_boundary_seeks;
          Alcotest.test_case "level iter upper bound" `Quick
            test_level_iter_upper_bound_stops;
          Alcotest.test_case "engine iterator upper bound" `Quick
            test_engine_upper_bound;
        ] );
      ( "index-summary",
        [
          Alcotest.test_case "summary shape" `Quick test_index_summary_shape;
          Alcotest.test_case "summary reopen equivalent" `Quick
            test_open_via_summary_equivalent;
          Alcotest.test_case "table cache summary reopens" `Quick
            test_table_cache_summary_reopen;
          Alcotest.test_case "table cache byte bound" `Quick
            test_table_cache_byte_bound;
          Alcotest.test_case "memory accounting actual" `Quick
            test_memory_accounting_actual;
        ] );
      ( "differential",
        [
          Alcotest.test_case "pebblesdb on=off" `Quick
            (diff_on_off Stores.Pebblesdb);
          Alcotest.test_case "hyperleveldb on=off" `Quick
            (diff_on_off Stores.Hyperleveldb);
          Alcotest.test_case "tiered on=off" `Quick
            (diff_on_off
               (Stores.engine_for_policy Stores.Hyperleveldb O.Tiered));
        ] );
    ]
