lib/kvs/engine_stats.ml: Fmt List
