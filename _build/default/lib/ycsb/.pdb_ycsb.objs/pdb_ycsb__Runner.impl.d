lib/ycsb/runner.ml: Int64 Pdb_kvs Pdb_simio Pdb_util Printf Workload
