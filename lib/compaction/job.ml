(** A unit of background work, reified as data.

    Following Sarkar et al.'s decomposition of the LSM compaction design
    space, a compaction is described by {e why} it was picked (the
    trigger), {e what} it touches (the footprint: level span and key
    range, which drives worker-timeline conflict detection), and {e how
    much} data it is expected to move.  The [run] closure performs the
    actual state mutation when the scheduler drains the job; it captures
    stable identifiers (level numbers, guard keys) rather than live
    records, and re-resolves them at execution time so that jobs queued
    behind a structure-changing job still apply to current state. *)

type trigger =
  | Memtable_full  (** flush: the active memtable reached its budget *)
  | L0_files  (** too many level-0 sstables *)
  | Level_size  (** a level exceeded its target size *)
  | Guard_cap  (** a guard holds too many sstables (FLSM per-guard cap) *)
  | Guard_merge  (** last-level guard rewrite to bound overlap *)
  | Seek  (** read-triggered compaction (allowed-seeks exhausted) *)
  | Manual  (** [compact_all] / explicit user request *)
  | Migration_copy
      (** shard elasticity: batches of a moving range written into the
          destination shard (see [Pdb_shard.Shard_store]) *)
  | Migration_clean
      (** shard elasticity: tombstones retiring the moved range from the
          source shard after the router install *)

let trigger_name = function
  | Memtable_full -> "flush"
  | L0_files -> "l0"
  | Level_size -> "size"
  | Guard_cap -> "cap"
  | Guard_merge -> "merge"
  | Seek -> "seek"
  | Manual -> "manual"
  | Migration_copy -> "migrate:copy"
  | Migration_clean -> "migrate:clean"

type t = {
  key : string;
      (** identity for queue dedup, e.g. ["size:2"] or ["cap:3:user4821"];
          one pending job per key *)
  trigger : trigger;
  estimated_bytes : int;  (** expected input volume, for backlog stats *)
  footprint : Pdb_simio.Sched.footprint;
  run : unit -> unit;
}

let pp ppf j =
  Fmt.pf ppf "%s(%s, ~%d B)" (trigger_name j.trigger) j.key j.estimated_bytes
