(** First-class iterator values.

    The same shape serves two roles: internal iterators range over encoded
    internal keys (sstable and memtable contents), and database iterators
    range over user keys with tombstones and stale versions filtered out.
    All key-value stores in this repository expose their iterators in this
    form, which keeps merging-iterator code engine-agnostic. *)

type t = {
  seek_to_first : unit -> unit;
  seek : string -> unit;
      (** Position at the smallest entry with key >= the argument. *)
  next : unit -> unit;
  valid : unit -> bool;
  key : unit -> string;
  value : unit -> string;
}

let empty =
  let invalid () = invalid_arg "Iter.empty: iterator is not valid" in
  {
    seek_to_first = (fun () -> ());
    seek = (fun _ -> ());
    next = (fun () -> ());
    valid = (fun () -> false);
    key = invalid;
    value = invalid;
  }

(** [of_sorted_array ?compare entries] iterates over an array pre-sorted by
    [compare] (byte order by default) — used by tests and by in-memory
    snapshots. *)
let of_sorted_array ?(compare = String.compare) entries =
  let pos = ref 0 in
  let n = Array.length entries in
  {
    seek_to_first = (fun () -> pos := 0);
    seek =
      (fun target ->
        (* binary search for first key >= target *)
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if compare (fst entries.(mid)) target < 0 then lo := mid + 1
          else hi := mid
        done;
        pos := !lo);
    next = (fun () -> incr pos);
    valid = (fun () -> !pos >= 0 && !pos < n);
    key = (fun () -> fst entries.(!pos));
    value = (fun () -> snd entries.(!pos));
  }

(** [to_list it] drains an iterator from the start — test helper. *)
let to_list it =
  it.seek_to_first ();
  let rec go acc =
    if it.valid () then begin
      let entry = (it.key (), it.value ()) in
      it.next ();
      go (entry :: acc)
    end
    else List.rev acc
  in
  go []
