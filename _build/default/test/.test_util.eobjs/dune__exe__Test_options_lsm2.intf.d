test/test_options_lsm2.mli:
