(* db_bench — LevelDB-style micro-benchmark CLI over the simulated stores.

   Example:
     db_bench --store pebblesdb --benchmarks fillrandom,readrandom \
              --num 50000 --value-size 1024 *)

open Cmdliner
module Dyn = Pdb_kvs.Store_intf
module B = Pdb_harness.Bench_util
module L = Pdb_kvs.Latency
module Env = Pdb_simio.Env

let engine_of_string = function
  | "pebblesdb" -> Ok Pdb_harness.Stores.Pebblesdb
  | "pebblesdb-1" -> Ok Pdb_harness.Stores.Pebblesdb_one
  | "hyperleveldb" -> Ok Pdb_harness.Stores.Hyperleveldb
  | "leveldb" -> Ok Pdb_harness.Stores.Leveldb
  | "rocksdb" -> Ok Pdb_harness.Stores.Rocksdb
  | "kyotocabinet" -> Ok Pdb_harness.Stores.Btree
  | "wiredtiger" -> Ok Pdb_harness.Stores.Wiredtiger
  | s -> Error (Printf.sprintf "unknown store %S" s)

let policy_of_string = function
  | None -> Ok None
  | Some s -> (
    match Pdb_kvs.Options.compaction_policy_of_string s with
    | Ok p -> Ok (Some p)
    | Error msg -> Error msg)

let throttle_of_string = function
  | None -> Ok None
  | Some s -> (
    match Pdb_kvs.Options.throttle_of_string s with
    | Ok t -> Ok (Some t)
    | Error msg -> Error msg)

let repl_strategy_of_string = function
  | None -> Ok None
  | Some s -> (
    match Pdb_kvs.Options.repl_strategy_of_string s with
    | Ok r -> Ok (Some r)
    | Error msg -> Error msg)

let run store_name policy_name throttle_name l0_slowdown l0_stop benchmarks
    num value_size seed clients shards elastic replicas repl_strategy_name
    probe_budget no_seek_filtering table_cache table_cache_bytes trace_file =
  match
    match
      ( engine_of_string store_name,
        policy_of_string policy_name,
        throttle_of_string throttle_name,
        repl_strategy_of_string repl_strategy_name )
    with
    | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _
    | _, _, _, Error msg ->
      Error msg
    | Ok engine, Ok policy, Ok throttle, Ok repl ->
      Ok (engine, policy, throttle, repl)
  with
  | Error msg ->
    prerr_endline msg;
    exit 1
  | Ok (engine, policy, throttle, repl_strategy) ->
    (* a policy request may remap the engine (flsm_guarded needs guards,
       the LSM layouts need the leveled/tiered engine) *)
    let engine =
      match policy with
      | None -> engine
      | Some p -> Pdb_harness.Stores.engine_for_policy engine p
    in
    let env = Env.create () in
    (match trace_file with
     | Some _ -> Env.set_tracer env (Pdb_simio.Trace.create ())
     | None -> ());
    (* --shards routes the store through the range partitioner with splits
       matched to the bench keyspace (key%010d over [0, num)) *)
    let tweak o =
      let o =
        match policy with
        | None -> o
        | Some p -> { o with Pdb_kvs.Options.compaction_policy = p }
      in
      let o =
        match throttle with
        | None -> o
        | Some t -> { o with Pdb_kvs.Options.throttle = t }
      in
      let o =
        match l0_slowdown with
        | None -> o
        | Some n -> { o with Pdb_kvs.Options.l0_slowdown = n }
      in
      let o =
        match l0_stop with
        | None -> o
        | Some n -> { o with Pdb_kvs.Options.l0_stop = n }
      in
      let o =
        match probe_budget with
        | None -> o
        | Some n -> { o with Pdb_kvs.Options.probe_budget_override = Some n }
      in
      let o =
        if no_seek_filtering then
          { o with Pdb_kvs.Options.seek_filtering = false }
        else o
      in
      let o =
        match table_cache with
        | None -> o
        | Some n -> { o with Pdb_kvs.Options.table_cache_entries = n }
      in
      let o =
        match table_cache_bytes with
        | None -> o
        | Some n -> { o with Pdb_kvs.Options.table_cache_bytes = Some n }
      in
      (* --replicas routes the store through the replication layer (each
         shard replicates independently when combined with --shards) *)
      let o =
        if replicas > 0 then { o with Pdb_kvs.Options.replicas } else o
      in
      let o =
        match repl_strategy with
        | None -> o
        | Some r -> { o with Pdb_kvs.Options.repl_strategy = r }
      in
      if shards <= 1 then o
      else
        let o =
          {
            o with
            Pdb_kvs.Options.shards;
            shard_splits =
              List.init (shards - 1) (fun i ->
                  B.key_of ((i + 1) * num / shards));
          }
        in
        (* --elastic lets the shard store resplit itself under load *)
        if elastic then { o with Pdb_kvs.Options.elastic = true } else o
    in
    let store =
      Pdb_harness.Stores.open_engine ~tweak ~env
        ?shards:(if shards > 1 then Some shards else None)
        engine
    in
    let report name (p : B.phase) =
      Printf.printf "%-14s : %8.1f KOps/s  (%d ops, %.1f MB written, %.1f MB read)\n%!"
        name p.B.kops p.B.ops (B.mb p.B.bytes_written) (B.mb p.B.bytes_read)
    in
    (* with --clients > 1, report the multi-client phase plus its
       group-commit accounting *)
    let report_mc name ((p : B.phase), (r : B.Mc.result)) =
      report name p;
      Printf.printf
        "               clients=%d groups=%d avg-group=%.2f syncs-saved=%d \
         max-wait=%.1fms\n%!"
        r.B.Mc.clients r.B.Mc.write_groups r.B.Mc.avg_group_size
        r.B.Mc.syncs_saved
        (Array.fold_left Float.max 0.0 r.B.Mc.client_wait_ns /. 1e6)
    in
    let ran_fill = ref false in
    let ensure_fill () =
      if not !ran_fill then
        ignore (B.fill_random store ~n:num ~value_bytes:value_size ~seed);
      ran_fill := true
    in
    List.iter
      (fun bench ->
        (* per-benchmark latency histograms: serial phases run through an
           instrumented store (clock-snapshot deltas); multi-client phases
           collect the lane-placement latencies.  Purely observational —
           store state is byte-identical with reporting off. *)
        let lat = L.create () in
        let timed = L.instrument lat store in
        (match bench with
        | "fillseq" -> report bench (B.fill_seq timed ~n:num ~value_bytes:value_size ~seed)
        | "fillrandom" when clients > 1 ->
          ran_fill := true;
          report_mc bench
            (B.mc_fill_random ~latency:lat store ~clients ~n:num
               ~value_bytes:value_size ~seed)
        | "fillrandom" ->
          ran_fill := true;
          report bench (B.fill_random timed ~n:num ~value_bytes:value_size ~seed)
        | "fillbatch" ->
          (* batched writes: 100 entries per atomic batch *)
          ran_fill := true;
          let rng = Pdb_util.Rng.create seed in
          report bench
            (B.measure timed num (fun () ->
                 let i = ref 0 in
                 while !i < num do
                   let batch = Pdb_kvs.Write_batch.create () in
                   for _ = 1 to min 100 (num - !i) do
                     Pdb_kvs.Write_batch.put batch
                       (B.key_of (Pdb_util.Rng.int rng num))
                       (Pdb_util.Rng.alpha rng value_size);
                     incr i
                   done;
                   timed.Dyn.d_write batch
                 done))
        | "overwrite" when clients > 1 ->
          report_mc bench
            (B.mc_fill_random ~latency:lat store ~clients ~n:num
               ~value_bytes:value_size ~seed)
        | "overwrite" ->
          report bench (B.update_random timed ~n:num ~value_bytes:value_size ~seed)
        | "readrandom" when clients > 1 ->
          ensure_fill ();
          report_mc bench
            (B.mc_read_random ~latency:lat store ~clients ~n:num ~ops:num ~seed)
        | "readrandom" ->
          ensure_fill ();
          report bench (B.read_random timed ~n:num ~ops:num ~seed)
        | "mixed" ->
          (* 50% reads / 50% overwrites through the client lanes *)
          ensure_fill ();
          report_mc bench
            (B.mc_mixed ~latency:lat store ~clients:(max 1 clients) ~n:num
               ~ops:num ~value_bytes:value_size ~seed)
        | "readseq" ->
          (* full forward scan via one iterator *)
          ensure_fill ();
          report bench
            (B.measure timed num (fun () ->
                 let it = timed.Dyn.d_iterator () in
                 it.Pdb_kvs.Iter.seek_to_first ();
                 while it.Pdb_kvs.Iter.valid () do
                   ignore (it.Pdb_kvs.Iter.key ());
                   it.Pdb_kvs.Iter.next ()
                 done))
        | "readmissing" ->
          (* lookups for keys that are never present: bloom-filter country *)
          ensure_fill ();
          let rng = Pdb_util.Rng.create (seed + 21) in
          report bench
            (B.measure timed num (fun () ->
                 for _ = 1 to num do
                   ignore
                     (timed.Dyn.d_get
                        (Printf.sprintf "missing%010d" (Pdb_util.Rng.int rng num)))
                 done))
        | "readhot" ->
          (* reads concentrated on 1% of the key space *)
          ensure_fill ();
          let hot = max 1 (num / 100) in
          let rng = Pdb_util.Rng.create (seed + 22) in
          report bench
            (B.measure timed num (fun () ->
                 for _ = 1 to num do
                   ignore (timed.Dyn.d_get (B.key_of (Pdb_util.Rng.int rng hot)))
                 done))
        | "seekrandom" ->
          ensure_fill ();
          report bench (B.seek_random timed ~n:num ~ops:(num / 4) ~nexts:0 ~seed)
        | "seekordered" ->
          (* seeks at ascending positions (locality-friendly) *)
          ensure_fill ();
          let ops = num / 4 in
          report bench
            (B.measure timed ops (fun () ->
                 for i = 0 to ops - 1 do
                   let it = timed.Dyn.d_iterator () in
                   it.Pdb_kvs.Iter.seek (B.key_of (i * (num / max 1 ops)))
                 done))
        | "deleterandom" -> report bench (B.delete_random timed ~n:num ~seed)
        | "compact" ->
          store.Dyn.d_compact_all ();
          Printf.printf "%-14s : done\n%!" bench
        | "stats" ->
          Printf.printf "%s\n  write-amp: %.2f\n%!" (store.Dyn.d_describe ())
            (B.write_amp store);
          (match B.scheduler_summary store with
           | "" -> ()
           | s -> Printf.printf "  compaction: %s\n%!" s);
          (match B.trigger_summary store with
           | "" -> ()
           | s -> Printf.printf "  by-trigger: %s\n%!" s);
          let st = store.Dyn.d_stats () in
          Printf.printf
            "  read path: seek-filter checks %d / skips %d, index-summary \
             hits %d / misses %d\n\
             %!"
            st.Pdb_kvs.Engine_stats.seek_bloom_checks
            st.Pdb_kvs.Engine_stats.seek_bloom_skips
            st.Pdb_kvs.Engine_stats.summary_hits
            st.Pdb_kvs.Engine_stats.summary_misses
        | other -> Printf.printf "unknown benchmark %S (skipped)\n%!" other);
        L.print_summary ~indent:"               " lat)
      benchmarks;
    Printf.printf "final write amplification: %.2f\n" (B.write_amp store);
    (match B.scheduler_summary store with
     | "" -> ()
     | s -> Printf.printf "compaction scheduler: %s\n" s);
    (match B.trigger_summary store with
     | "" -> ()
     | s -> Printf.printf "compaction by trigger: %s\n" s);
    store.Dyn.d_close ();
    match (trace_file, Env.tracer env) with
    | Some path, Some tr ->
      let oc = open_out path in
      output_string oc (Pdb_simio.Trace.to_chrome_json tr);
      close_out oc;
      Printf.printf "trace: %d events (%d dropped) -> %s\n"
        (Pdb_simio.Trace.count tr)
        (Pdb_simio.Trace.dropped tr)
        path
    | _ -> ()

let store_arg =
  Arg.(value & opt string "pebblesdb"
       & info [ "store" ] ~docv:"STORE"
           ~doc:"pebblesdb | pebblesdb-1 | hyperleveldb | leveldb | rocksdb \
                 | kyotocabinet | wiredtiger")

let policy_arg =
  Arg.(value & opt (some string) None
       & info [ "compaction-policy" ] ~docv:"POLICY"
           ~doc:"leveled | tiered | lazy_leveled | flsm_guarded — pin the \
                 compaction policy, remapping the store to the engine that \
                 implements it when necessary.")

let throttle_arg =
  Arg.(value & opt (some string) None
       & info [ "throttle" ] ~docv:"MODE"
           ~doc:"off | cliff | token_bucket — write-throttle mode: the \
                 seed Slowdown/Stop cliff, the debt-keyed token bucket \
                 (profile default), or no write stalls at all.")

let l0_slowdown_arg =
  Arg.(value & opt (some int) None
       & info [ "l0-slowdown" ] ~docv:"N"
           ~doc:"Override the L0 slowdown threshold (debt points past \
                 which the throttle engages).  The profile defaults never \
                 fire at bench scale — compaction drains synchronously, so \
                 L0 stays at or below the compaction trigger.")

let l0_stop_arg =
  Arg.(value & opt (some int) None
       & info [ "l0-stop" ] ~docv:"N"
           ~doc:"Override the L0 stop threshold (debt points at which the \
                 full per-entry penalty applies).")

let benchmarks_arg =
  Arg.(value
       & opt (list string) [ "fillrandom"; "readrandom"; "seekrandom" ]
       & info [ "benchmarks" ] ~docv:"LIST"
           ~doc:"fillseq, fillrandom, overwrite, readrandom, mixed, \
                 seekrandom, deleterandom, compact, stats")

let num_arg =
  Arg.(value & opt int 50_000 & info [ "num" ] ~doc:"Number of keys.")

let value_size_arg =
  Arg.(value & opt int 1024 & info [ "value-size" ] ~doc:"Value bytes.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.")

let clients_arg =
  Arg.(value & opt int 1
       & info [ "clients" ]
           ~doc:"Foreground client lanes for fillrandom / overwrite / \
                 readrandom / mixed (round-robin interleave, WAL group \
                 commit); 1 = serial.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ]
           ~doc:"Range-partition the keyspace over N independent engine \
                 instances (each with its own WAL, memtable and compaction \
                 scheduler); 1 = plain single store.")

let elastic_arg =
  Arg.(value & flag
       & info [ "elastic" ]
           ~doc:"With --shards, let the store resplit itself under load: \
                 hot shards split at the sampled median request key, cold \
                 adjacent pairs merge, and ranges migrate as background \
                 jobs on the compaction lanes (migrate:* trace spans).")

let replicas_arg =
  Arg.(value & opt int 0
       & info [ "replicas" ]
           ~doc:"Replicate the store to N backups over simulated network \
                 links (primary-backup); 0 = unreplicated.  Combined with \
                 --shards, each shard replicates independently.")

let repl_strategy_arg =
  Arg.(value & opt (some string) None
       & info [ "repl-strategy" ] ~docv:"STRATEGY"
           ~doc:"log | file — ship WAL groups (the backup replays and \
                 compacts itself) or ship sstables and manifest edits as \
                 flush/compaction installs them (the backup burns no \
                 compaction CPU, the wire carries the write amplification).")

let probe_budget_arg =
  Arg.(value & opt (some int) None
       & info [ "probe-budget" ] ~docv:"N"
           ~doc:"Override the device's parallel-probe budget: concurrent \
                 sstable probes a multi-table seek or get may overlap; 1 \
                 serialises every probe.")

let no_seek_filtering_arg =
  Arg.(value & flag
       & info [ "no-seek-filtering" ]
           ~doc:"Disable read-path seek filtering (per-table range and \
                 prefix-bloom checks); on-disk state is unaffected either \
                 way.")

let table_cache_arg =
  Arg.(value & opt (some int) None
       & info [ "table-cache" ] ~docv:"N"
           ~doc:"Cap the table cache at N open sstables (index + filter \
                 resident); evicted tables reopen through their index \
                 summaries.")

let table_cache_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "table-cache-bytes" ] ~docv:"BYTES"
           ~doc:"Bound the table cache by resident bytes instead of entry \
                 count.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of compaction / flush / \
                 WAL / stall activity to $(docv) (load in Perfetto or \
                 chrome://tracing).")

let cmd =
  Cmd.v
    (Cmd.info "db_bench" ~doc:"Micro-benchmarks over the simulated stores")
    Term.(const run $ store_arg $ policy_arg $ throttle_arg $ l0_slowdown_arg
          $ l0_stop_arg $ benchmarks_arg $ num_arg $ value_size_arg $ seed_arg
          $ clients_arg $ shards_arg $ elastic_arg $ replicas_arg
          $ repl_strategy_arg
          $ probe_budget_arg $ no_seek_filtering_arg $ table_cache_arg
          $ table_cache_bytes_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
