(** Variable-length and fixed-width integer coding.

    The on-storage formats (sstable blocks, WAL records, MANIFEST edits) use
    LevelDB-compatible little-endian fixed32/fixed64 and base-128 varints. *)

(** [put_uvarint buf n] appends the base-128 varint encoding of [n] (which
    must be non-negative) to [buf]. *)
let put_uvarint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(** [get_uvarint s pos] decodes a varint from [s] starting at [pos]; returns
    [(value, next_pos)].  Raises [Invalid_argument] on truncated input. *)
let get_uvarint s pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.get_uvarint: truncated"
    else
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let put_fixed32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let get_fixed32 s pos =
  if pos + 4 > String.length s then invalid_arg "Varint.get_fixed32: truncated";
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let put_fixed64 buf n =
  let open Int64 in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (to_int (logand (shift_right_logical n (8 * i)) 0xffL)))
  done

let get_fixed64 s pos =
  if pos + 8 > String.length s then invalid_arg "Varint.get_fixed64: truncated";
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc :=
      Int64.logor
        (Int64.shift_left !acc 8)
        (Int64.of_int (Char.code s.[pos + i]))
  done;
  !acc

(** [put_length_prefixed buf s] appends [s] preceded by its varint length. *)
let put_length_prefixed buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

(** [get_length_prefixed s pos] decodes a varint-length-prefixed slice;
    returns [(slice, next_pos)]. *)
let get_length_prefixed s pos =
  let n, pos = get_uvarint s pos in
  if pos + n > String.length s then
    invalid_arg "Varint.get_length_prefixed: truncated";
  (String.sub s pos n, pos + n)
