lib/ycsb/workload.ml: List Pdb_util String
