(** Store factory: every engine of the evaluation, packaged uniformly.

    Each store runs in its own simulated environment (device, clock, IO
    counters), so per-store measurements never interfere. *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env

type engine =
  | Pebblesdb
  | Pebblesdb_one  (** max_sstables_per_guard = 1 — the paper's LSM mode *)
  | Hyperleveldb
  | Leveldb
  | Rocksdb
  | Btree  (** KyotoCabinet-style write-through B+-tree *)
  | Wiredtiger

let engine_name = function
  | Pebblesdb -> "pebblesdb"
  | Pebblesdb_one -> "pebblesdb-1"
  | Hyperleveldb -> "hyperleveldb"
  | Leveldb -> "leveldb"
  | Rocksdb -> "rocksdb"
  | Btree -> "kyotocabinet-sim"
  | Wiredtiger -> "wiredtiger-sim"

let default_options = function
  | Pebblesdb -> O.pebblesdb ()
  | Pebblesdb_one ->
    { (O.pebblesdb ()) with O.name = "pebblesdb-1"; max_sstables_per_guard = 1 }
  | Hyperleveldb -> O.hyperleveldb ()
  | Leveldb -> O.leveldb ()
  | Rocksdb -> O.rocksdb ()
  | Btree -> { (O.leveldb ()) with O.name = "kyotocabinet-sim" }
  | Wiredtiger -> { (O.leveldb ()) with O.name = "wiredtiger-sim" }

(** [open_engine ?tweak ?env engine] opens a fresh store.  [tweak] edits the
    profile (experiment-specific sizes); [env] reuses an existing
    environment (reopen scenarios). *)
let open_engine ?(tweak = Fun.id) ?env engine =
  let opts = tweak (default_options engine) in
  let env = match env with Some e -> e | None -> Env.create () in
  let dir = "db" in
  match engine with
  | Pebblesdb | Pebblesdb_one ->
    let module P = struct
      include Pebblesdb.Pebbles_store

      (* fix the optional [?snapshot] so the module matches Store_intf.S *)
      let get t k = get t k
      let iterator t = iterator t
    end in
    Dyn.dyn_of (module P) (P.open_store opts ~env ~dir)
  | Hyperleveldb | Leveldb | Rocksdb ->
    let module L = struct
      include Pdb_lsm.Lsm_store

      let get t k = get t k
      let iterator t = iterator t
    end in
    Dyn.dyn_of (module L) (L.open_store opts ~env ~dir)
  | Btree ->
    let module B = struct
      include Pdb_btree.Bptree

      (* fix the optional [?mode] so the module matches Store_intf.S *)
      let open_store opts ~env ~dir = open_store opts ~env ~dir
    end in
    Dyn.dyn_of (module B) (B.open_store opts ~env ~dir)
  | Wiredtiger ->
    Dyn.dyn_of (module Pdb_btree.Wt_store)
      (Pdb_btree.Wt_store.open_store opts ~env ~dir)

(** The four key-value stores of the paper's main comparisons. *)
let paper_stores = [ Pebblesdb; Hyperleveldb; Leveldb; Rocksdb ]
