(** Discrete-event placement of background work on N worker timelines.

    Models the paper's guard-parallel compaction (§4.3): completed units
    of background work are placed on per-worker timelines, jobs with
    disjoint level/key-range footprints overlap, conflicting jobs
    serialise, and the max finish over all lanes becomes the clock's
    background completion horizon ({!Clock.note_bg_horizon}).

    Placement is deterministic and never affects store state — only
    modeled time — so results are byte-identical across worker counts. *)

type footprint = {
  level_lo : int;
  level_hi : int;  (** inclusive level span the job reads or writes *)
  key_lo : string;
  key_hi : string option;
      (** exclusive user-key upper bound; [None] is +infinity *)
}

val full_range : level_lo:int -> level_hi:int -> footprint
(** Footprint spanning the whole key space of a level span. *)

val conflicts : footprint -> footprint -> bool
(** [conflicts a b] iff the level spans intersect and the key ranges
    overlap — such jobs must serialise on the worker timelines. *)

type t

val create : ?flush_lanes:int -> clock:Clock.t -> workers:int -> unit -> t
(** [create ?flush_lanes ~clock ~workers ()] makes a scheduler with
    [max 1 workers] general lanes plus [flush_lanes] (default 0) lanes
    reserved for [`Flush] work, all free at the clock's current
    background horizon. *)

val workers : t -> int
(** General (compaction-eligible) lane count, excluding flush lanes. *)

val flush_lanes : t -> int
(** Lanes reserved for [`Flush] placements. *)

val busy_ns : t -> float array
(** Per-lane cumulative busy time (copy); general lanes first, then
    flush lanes. *)

val flush_busy_ns : t -> float
(** Cumulative busy time across the reserved flush lanes. *)

val jobs_placed : t -> int
val serialized_jobs : t -> int
(** Jobs whose start was delayed past their lane frontier by a
    conflicting predecessor. *)

val horizon_ns : t -> float
(** Max finish time over all lanes. *)

type placement = { lane : int; start_ns : float; finish_ns : float }
(** Where a job landed: worker lane index and modeled start/finish. *)

val place_span :
  ?cls:[ `Worker | `Flush ] -> t -> footprint -> duration_ns:float -> placement
(** [place_span ?cls t fp ~duration_ns] assigns the job to the lane of
    its class (default [`Worker]) that lets it finish earliest (ties to
    the lowest index), no earlier than the finish of any conflicting
    placed job; returns the placement and raises the clock's background
    horizon to its finish.  [`Flush] jobs use the reserved flush lanes —
    never contended by [`Worker] jobs — when the scheduler has any, and
    fall back to the general lanes otherwise. *)

val place : t -> footprint -> duration_ns:float -> float
(** [place t fp ~duration_ns] is {!place_span} returning only the finish
    time. *)
