(** YCSB workload runner over any packaged store ({!Pdb_kvs.Store_intf.dyn}).

    Keys follow the YCSB convention of hashing the logical record number so
    that loads arrive in effectively random key order.  The runner reports
    modeled throughput (operations over simulated elapsed time) and the IO
    performed during the phase — the quantities plotted in Figure 5.5. *)

module Dyn = Pdb_kvs.Store_intf
module Iter = Pdb_kvs.Iter
module Clock = Pdb_simio.Clock

(* FNV-64 over the record number, hex-rendered: "user" ^ 16 hex chars. *)
let key_of_record n =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  let v = ref (of_int n) in
  for _ = 0 to 7 do
    h := mul (logxor !h (logand !v 0xffL)) 0x100000001B3L;
    v := shift_right_logical !v 8
  done;
  Printf.sprintf "user%016Lx" !h

type result = {
  phase : string;
  ops : int;
  elapsed_ns : float;
  kops_per_s : float;
  bytes_written : int;
  bytes_read : int;
  reads : int;
  updates : int;
  inserts : int;
  scans : int;
  rmws : int;
}

let make_value rng n = Pdb_util.Rng.alpha rng n

(* Measure a phase: simulated elapsed via the clock lanes (background
   completion = per-worker timeline horizon), IO via the env counters. *)
let measure (store : Dyn.dyn) name f =
  let clock = Pdb_simio.Env.clock store.Dyn.d_env in
  let io0 = Pdb_simio.Io_stats.snapshot (Pdb_simio.Env.stats store.Dyn.d_env) in
  let c0 = Clock.snapshot clock in
  let ops, reads, updates, inserts, scans, rmws = f () in
  let c1 = Clock.snapshot clock in
  let io1 = Pdb_simio.Io_stats.snapshot (Pdb_simio.Env.stats store.Dyn.d_env) in
  let delta = Clock.diff c1 c0 in
  let elapsed = Clock.elapsed_ns delta in
  let io = Pdb_simio.Io_stats.diff io1 io0 in
  {
    phase = name;
    ops;
    elapsed_ns = elapsed;
    kops_per_s =
      (if elapsed <= 0.0 then 0.0
       else float_of_int ops /. (elapsed /. 1e9) /. 1000.0);
    bytes_written = io.Pdb_simio.Io_stats.bytes_written;
    bytes_read = io.Pdb_simio.Io_stats.bytes_read;
    reads;
    updates;
    inserts;
    scans;
    rmws;
  }

(** [load store ~records ~value_bytes ~seed] is the YCSB load phase:
    insert [records] fresh records. *)
let load (store : Dyn.dyn) ~records ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  measure store "load" (fun () ->
      for n = 0 to records - 1 do
        store.Dyn.d_put (key_of_record n) (make_value rng value_bytes)
      done;
      (records, 0, 0, records, 0, 0))

(** [run store spec ~records ~operations ~value_bytes ~seed] executes the
    transaction phase of [spec] against a store already loaded with
    [records] records. *)
let run (store : Dyn.dyn) (spec : Workload.spec) ~records ~operations
    ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create (seed + 17) in
  let dist =
    match spec.Workload.dist with
    | Workload.Zipfian -> Pdb_util.Dist.scrambled_zipfian ~seed records
    | Workload.Latest -> Pdb_util.Dist.latest ~seed records
    | Workload.Uniform -> Pdb_util.Dist.uniform ~seed records
  in
  let record_count = ref records in
  let reads = ref 0
  and updates = ref 0
  and inserts = ref 0
  and scans = ref 0
  and rmws = ref 0 in
  measure store ("run-" ^ spec.Workload.name) (fun () ->
      for _ = 1 to operations do
        match Workload.draw_op spec rng with
        | Workload.Read ->
          incr reads;
          ignore (store.Dyn.d_get (key_of_record (Pdb_util.Dist.next dist)))
        | Workload.Update ->
          incr updates;
          store.Dyn.d_put
            (key_of_record (Pdb_util.Dist.next dist))
            (make_value rng value_bytes)
        | Workload.Insert ->
          incr inserts;
          let n = !record_count in
          incr record_count;
          store.Dyn.d_put (key_of_record n) (make_value rng value_bytes);
          Pdb_util.Dist.set_item_count dist !record_count
        | Workload.Scan ->
          incr scans;
          let start = Pdb_util.Dist.next dist in
          let len = 1 + Pdb_util.Rng.int rng spec.Workload.max_scan_len in
          let it = store.Dyn.d_iterator () in
          it.Iter.seek (key_of_record start);
          let steps = ref 0 in
          while it.Iter.valid () && !steps < len do
            ignore (it.Iter.key ());
            ignore (it.Iter.value ());
            it.Iter.next ();
            incr steps
          done
        | Workload.Read_modify_write ->
          incr rmws;
          let n = Pdb_util.Dist.next dist in
          ignore (store.Dyn.d_get (key_of_record n));
          store.Dyn.d_put (key_of_record n) (make_value rng value_bytes)
      done;
      (operations, !reads, !updates, !inserts, !scans, !rmws))
