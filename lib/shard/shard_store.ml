(** A range-partitioned store: N independent engine instances behind one
    {!Pdb_kvs.Store_intf.S} face — with {e elastic} topology.

    Each shard is a complete engine — its own WAL, MANIFEST, memtable,
    block/table caches and compaction scheduler — living under
    [<dir>/shards/<id>/] in the one shared environment, so all shards
    contend for the same simulated device while their background worker
    lanes overlap.  Point operations route by range
    ({!Shard_router.shard_of_key}); write batches split into per-shard
    sub-batches that commit through each shard's own WAL group commit;
    cross-shard scans merge per-shard iterators positioned at a common
    sequence fence; stats aggregate with a per-shard breakdown and a
    balance metric.

    Elasticity (the router as live guards): the topology is mutable at
    run time.  {!Make.split} carves a hot shard in two at a chosen key,
    {!Make.merge} folds a cold shard into its left neighbour, and with
    [Options.elastic] a controller drives both from per-shard op
    counters — once per decision window it splits the hottest shard at
    the median of a reservoir sample of its recent request keys, or
    merges the coldest adjacent pair.  Decisions are op-count based
    (never clock based), so they are identical at any compaction worker
    count.

    A migration is a fenced handoff: capture the source shard's sequence
    (writes are serial here, so capturing the sequence {e is} draining
    the moving range), copy the range at that fence into the destination
    engine as [migrate:copy] jobs on the destination's compaction
    scheduler (charged to its backlog, placed on its worker lanes),
    install the new topology durably ({!Shard_topology.install} — atomic
    rename, all-or-nothing under crashes), then retire the moved data
    from the source ([migrate:clean] jobs).  Because stale copies can
    survive a crash between install and clean, every live read clips
    each shard to its routed range: gets route by key and per-shard
    iterators are range-clipped, so leftover bytes are unobservable.

    Consistency note (the sequence fence): shard sequence numbers advance
    independently, so "one moment in time" across shards is a vector of
    per-shard sequence numbers captured back-to-back with no writes in
    between — which the simulation's serial execution guarantees.  A
    fence now also pins the {e topology} it was captured under: reads at
    a fence route with the fence's router and reach the fence's engines
    (kept alive after a merge retires them) clipped to the fence's
    ranges, so snapshots pinned before a resplit keep reading the old
    world. *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Stats = Pdb_kvs.Engine_stats
module Iter = Pdb_kvs.Iter
module Env = Pdb_simio.Env

(** What the shard store needs from an engine: the uniform store surface
    plus shard-aware opening (a shared block cache), fenced reads, and —
    for migrations — the engine's background scheduler, so moved ranges
    land as jobs on its compaction lanes.  Engines without snapshots
    (the page stores) satisfy the fenced reads trivially — their
    adapters ignore the fence and read current state — and engines
    without background work return [None] for the scheduler (migration
    batches then apply inline). *)
module type ENGINE = sig
  include Dyn.S

  (** [open_shard opts ~env ~dir ~shared_block_cache] opens one shard;
      [shared_block_cache] (when the profile shares one cache across
      shards) replaces the engine's private block cache. *)
  val open_shard :
    Pdb_kvs.Options.t ->
    env:Pdb_simio.Env.t ->
    dir:string ->
    shared_block_cache:Pdb_sstable.Block_cache.t option ->
    t

  val snapshot : t -> int
  val release_snapshot : t -> int -> unit
  val get_at : t -> snapshot:int -> string -> string option
  val iterator_at : t -> snapshot:int -> Iter.t

  (** The engine's background scheduler, when it has one — migration
      jobs are submitted there so they show on the worker timelines and
      count against the backpressure backlog. *)
  val scheduler : t -> Pdb_compaction.Scheduler.t option
end

(* Reservoir capacity for per-shard request-key samples: enough for a
   stable median under the window sizes used, small enough to be free. *)
let sample_cap = 64

(* Entries per migration write batch — one scheduler job each. *)
let migrate_batch_entries = 64

module Make (E : ENGINE) = struct
  type slot = {
    dir_id : int;  (** stable directory id; never reused *)
    engine : E.t;
    mutable w_ops : int;  (** ops routed this decision window *)
    mutable cum_ops : int;  (** ops routed since the slot opened *)
    mutable sample : string array;  (** reservoir of recent request keys *)
    mutable sample_n : int;  (** keys offered to the reservoir *)
  }

  (** A fence pins a moment across shards {e and} the topology it was
      captured under: reads at the fence route with [f_router] and read
      engine [f_slots.(i)] — by directory id, so they survive the slot
      array being rebuilt by later migrations. *)
  type fence = {
    f_router : Shard_router.t;
    f_slots : (int * int) array;  (** per shard: (dir id, pinned seq) *)
  }

  type t = {
    opts : O.t;
    env : Pdb_simio.Env.t;
    dir : string;
    mutable router : Shard_router.t;
    mutable slots : slot array;
    shared_cache : Pdb_sstable.Block_cache.t option;
    mutable fences : (int * fence) list;
        (** live snapshot fences: id -> pinned fence *)
    mutable next_fence : int;
    mutable transient_fence : fence option;
        (** pins backing unfenced iterators; held until the next write
            invalidates those iterators (see [capture_fence]) *)
    mutable retired : slot list;
        (** engines dropped from the topology but still pinned by a
            fence; closed and deleted when the last pin releases *)
    mutable next_dir : int;
    mutable topo_version : int;
    mutable clip : bool;
        (** clip reads to routed ranges — on once the topology has ever
            moved (stale post-migration bytes must be unobservable);
            static stores keep the unclipped fast path *)
    mutable w_total : int;  (** ops this decision window, all shards *)
    rng : Pdb_util.Rng.t;  (** reservoir-sampling randomness (own seed) *)
    mutable in_migration : bool;  (** re-entrancy guard *)
    mutable splits_done : int;
    mutable merges_done : int;
    mutable migrated_bytes : int;
  }

  let router t = t.router
  let shard_stores t = Array.map (fun s -> s.engine) t.slots
  let shard_count t = Array.length t.slots
  let shared_block_cache t = t.shared_cache
  let shard_dir dir id = Printf.sprintf "%s/shards/%d" dir id
  let splits t = Shard_router.splits t.router
  let topology_version t = t.topo_version

  let new_slot t dir_id =
    {
      dir_id;
      engine =
        E.open_shard t.opts ~env:t.env ~dir:(shard_dir t.dir dir_id)
          ~shared_block_cache:t.shared_cache;
      w_ops = 0;
      cum_ops = 0;
      sample = Array.make sample_cap "";
      sample_n = 0;
    }

  let install_topology t =
    Shard_topology.install t.env ~dir:t.dir
      {
        Shard_topology.version = t.topo_version;
        next_dir = t.next_dir;
        dirs = Array.map (fun s -> s.dir_id) t.slots;
        splits = Shard_router.splits t.router;
      }

  (* Delete every file under [shards/<id>/] — migration garbage
     collection (retired donors, orphans from a crashed migration). *)
  let delete_shard_files env ~dir ~dir_id =
    let prefix = shard_dir dir dir_id ^ "/" in
    let plen = String.length prefix in
    List.iter
      (fun name ->
        if String.length name > plen && String.sub name 0 plen = prefix then
          Env.delete env name)
      (List.sort compare (Env.list env))

  let open_store (opts : O.t) ~env ~dir =
    (* a crashed install can leave TOPOLOGY.tmp behind; never read it *)
    let tmp = Shard_topology.file ~dir ^ ".tmp" in
    if Env.exists env tmp then Env.delete env tmp;
    let topo = Shard_topology.load env ~dir in
    let router, dirs, next_dir, version =
      match topo with
      | Some tp ->
        (* the installed topology is authoritative over Options *)
        ( Shard_router.create ~splits:tp.Shard_topology.splits,
          tp.Shard_topology.dirs,
          tp.Shard_topology.next_dir,
          tp.Shard_topology.version )
      | None ->
        let n = max 1 opts.O.shards in
        let router =
          if List.length opts.O.shard_splits = n - 1 then
            Shard_router.create ~splits:opts.O.shard_splits
          else Shard_router.uniform ~shards:n ()
        in
        (router, Array.init n (fun i -> i), n, 0)
    in
    (* orphan cleanup: shard directories the topology does not name are
       leftovers of a crashed migration (a destination copied into but
       never installed, or a donor never swept) — delete them before
       opening, so recovery state is exactly the installed topology *)
    (match topo with
     | Some _ ->
       let live = Array.to_list dirs in
       let prefix = dir ^ "/shards/" in
       let plen = String.length prefix in
       let orphan = Hashtbl.create 4 in
       List.iter
         (fun name ->
           if String.length name > plen && String.sub name 0 plen = prefix
           then
             match String.index_from_opt name plen '/' with
             | Some slash ->
               (match
                  int_of_string_opt (String.sub name plen (slash - plen))
                with
                | Some id when not (List.mem id live) ->
                  Hashtbl.replace orphan id ()
                | _ -> ())
             | None -> ())
         (Env.list env);
       Hashtbl.iter
         (fun id () -> delete_shard_files env ~dir ~dir_id:id)
         orphan
     | None -> ());
    let shared_cache =
      if opts.O.shard_share_block_cache then
        Some (Pdb_sstable.Block_cache.create ~capacity:opts.O.block_cache_bytes)
      else None
    in
    let t =
      {
        opts;
        env;
        dir;
        router;
        slots = [||];
        shared_cache;
        fences = [];
        next_fence = 1;
        transient_fence = None;
        retired = [];
        next_dir;
        topo_version = version;
        clip = topo <> None;
        w_total = 0;
        rng = Pdb_util.Rng.create 0x5e1a57;
        in_migration = false;
        splits_done = 0;
        merges_done = 0;
        migrated_bytes = 0;
      }
    in
    t.slots <- Array.map (fun id -> new_slot t id) dirs;
    (* elastic stores persist their topology from the start, so every
       later install — and recovery after any crash — sees one durable
       lineage of split vectors *)
    if opts.O.elastic && topo = None then install_topology t;
    t

  (* ---------- fences and retired slots ---------- *)

  let engine_for_dir t dir_id =
    match Array.find_opt (fun s -> s.dir_id = dir_id) t.slots with
    | Some s -> s.engine
    | None -> (
      match List.find_opt (fun s -> s.dir_id = dir_id) t.retired with
      | Some s -> s.engine
      | None -> failwith "Shard_store: fence references an unknown shard")

  let fence_pins_dir f dir_id =
    Array.exists (fun (d, _) -> d = dir_id) f.f_slots

  let slot_pinned t dir_id =
    List.exists (fun (_, f) -> fence_pins_dir f dir_id) t.fences
    || (match t.transient_fence with
        | Some f -> fence_pins_dir f dir_id
        | None -> false)

  (* Close and GC retired engines no fence can reach any more.  Deleting
     the files is the space-reclamation half of a merge; a crash mid-
     delete leaves an orphan directory that open-time cleanup removes. *)
  let sweep_retired t =
    let keep, drop =
      List.partition (fun s -> slot_pinned t s.dir_id) t.retired
    in
    t.retired <- keep;
    List.iter
      (fun s ->
        E.close s.engine;
        delete_shard_files t.env ~dir:t.dir ~dir_id:s.dir_id)
      drop

  let release_fence t (f : fence) =
    Array.iter
      (fun (dir_id, seq) -> E.release_snapshot (engine_for_dir t dir_id) seq)
      f.f_slots

  (* Release the pins behind unfenced iterators.  Called by every
     mutating operation: writes invalidate open iterators (the store's
     documented contract), so their fence no longer needs protecting —
     and the write also advances shard sequences, making a cached fence
     stale. *)
  let invalidate_transient t =
    match t.transient_fence with
    | Some f ->
      t.transient_fence <- None;
      release_fence t f;
      sweep_retired t
    | None -> ()

  let close t =
    invalidate_transient t;
    Array.iter (fun s -> E.close s.engine) t.slots;
    List.iter (fun s -> E.close s.engine) t.retired;
    t.retired <- []

  let options t = t.opts
  let env t = t.env
  let shard_of_key t key = Shard_router.shard_of_key t.router key

  (* ---------- load accounting (the elasticity signal) ---------- *)

  (* Reservoir-sample the request key: the controller's split key is the
     median of the hot shard's recent request keys, so the split lands
     where the *load* bisects, not where the bytes do. *)
  let offer_sample t (s : slot) key =
    if s.sample_n < sample_cap then s.sample.(s.sample_n) <- key
    else begin
      let j = Pdb_util.Rng.int t.rng (s.sample_n + 1) in
      if j < sample_cap then s.sample.(j) <- key
    end;
    s.sample_n <- s.sample_n + 1

  let note_op t i key =
    let s = t.slots.(i) in
    s.w_ops <- s.w_ops + 1;
    s.cum_ops <- s.cum_ops + 1;
    t.w_total <- t.w_total + 1;
    offer_sample t s key

  let route t key =
    let i = shard_of_key t key in
    note_op t i key;
    t.slots.(i).engine

  (* ---------- migration ---------- *)

  let tracer t = Env.tracer t.env
  let now_ns t =
    Pdb_simio.Clock.elapsed_ns
      (Pdb_simio.Clock.snapshot (Env.clock t.env))

  let trace_instant t name =
    match tracer t with
    | Some tr ->
      Pdb_simio.Trace.instant tr ~name ~cat:"migration" ~lane:"router"
        ~ts_ns:(now_ns t) ()
    | None -> ()

  (* Apply one migration write batch to [engine]: through its scheduler
     when it has one — a [migrate:copy]/[migrate:clean] job with a
     footprint spanning the moved range, so the work lands on the
     engine's worker lanes, counts against its backlog (backpressure
     debt) and shows up as [migrate:*] trace spans — or inline for the
     page stores. *)
  let submit_batches t ~engine ~trigger ~lo ~hi batches =
    match E.scheduler engine with
    | Some sched ->
      List.iteri
        (fun i batch ->
          let bytes = Pdb_kvs.Write_batch.payload_bytes batch in
          ignore
            (Pdb_compaction.Scheduler.submit sched
               {
                 Pdb_compaction.Job.key =
                   Printf.sprintf "%s:%d:%d"
                     (Pdb_compaction.Job.trigger_name trigger)
                     t.topo_version i;
                 trigger;
                 estimated_bytes = bytes;
                 footprint =
                   {
                     Pdb_simio.Sched.level_lo = 0;
                     level_hi = t.opts.O.max_levels;
                     key_lo = (match lo with None -> "" | Some l -> l);
                     key_hi = hi;
                   };
                 run = (fun () -> E.write engine batch);
               }))
        batches;
      Pdb_compaction.Scheduler.drain sched
    | None -> List.iter (fun b -> E.write engine b) batches

  (* Copy [lo, hi) of [src] at pinned sequence [seq] into [dst], in
     batches.  Returns the moved keys (for the clean step) and payload
     bytes moved. *)
  let copy_range t ~src ~seq ~dst ~lo ~hi =
    let it = E.iterator_at src ~snapshot:seq in
    (match lo with
     | None -> it.Iter.seek_to_first ()
     | Some l -> it.Iter.seek l);
    let in_range k =
      match hi with None -> true | Some h -> String.compare k h < 0
    in
    let batches = ref [] in
    let batch = ref (Pdb_kvs.Write_batch.create ()) in
    let keys = ref [] in
    let bytes = ref 0 in
    let flush_batch () =
      if Pdb_kvs.Write_batch.count !batch > 0 then begin
        Pdb_kvs.Write_batch.mark_bulk !batch;
        batches := !batch :: !batches;
        batch := Pdb_kvs.Write_batch.create ()
      end
    in
    while it.Iter.valid () && in_range (it.Iter.key ()) do
      let k = it.Iter.key () and v = it.Iter.value () in
      Pdb_kvs.Write_batch.put !batch k v;
      keys := k :: !keys;
      bytes := !bytes + String.length k + String.length v;
      if Pdb_kvs.Write_batch.count !batch >= migrate_batch_entries then
        flush_batch ();
      it.Iter.next ()
    done;
    flush_batch ();
    Env.io_event t.env "migrate:copy";
    submit_batches t ~engine:dst ~trigger:Pdb_compaction.Job.Migration_copy
      ~lo ~hi (List.rev !batches);
    (List.rev !keys, !bytes)

  (* Retire the moved range from the source after the router install:
     tombstone the moved keys ([migrate:clean] jobs), then flush and
     compact the source so the dead bytes are physically reclaimed —
     which is what makes the resident-bytes balance improve. *)
  let clean_range t ~src ~lo ~hi keys =
    if keys <> [] then begin
      Env.io_event t.env "migrate:clean";
      let batches = ref [] in
      let batch = ref (Pdb_kvs.Write_batch.create ()) in
      let flush_batch () =
        if Pdb_kvs.Write_batch.count !batch > 0 then begin
          Pdb_kvs.Write_batch.mark_bulk !batch;
          batches := !batch :: !batches;
          batch := Pdb_kvs.Write_batch.create ()
        end
      in
      List.iter
        (fun k ->
          Pdb_kvs.Write_batch.delete !batch k;
          if Pdb_kvs.Write_batch.count !batch >= migrate_batch_entries then
            flush_batch ())
        keys;
      flush_batch ();
      submit_batches t ~engine:src
        ~trigger:Pdb_compaction.Job.Migration_clean ~lo ~hi
        (List.rev !batches);
      E.flush src;
      E.compact_all src
    end

  let array_insert arr i x =
    let n = Array.length arr in
    Array.init (n + 1) (fun j ->
        if j < i then arr.(j) else if j = i then x else arr.(j - 1))

  let array_remove arr i =
    let n = Array.length arr in
    Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

  let list_insert l i x =
    List.concat [ List.filteri (fun j _ -> j < i) l; [ x ];
                  List.filteri (fun j _ -> j >= i) l ]

  let list_remove l i = List.filteri (fun j _ -> j <> i) l

  (** [split t ~shard ~key] carves shard [shard] in two at [key] (which
      must lie strictly inside its range): fence, copy [key, hi) into a
      fresh engine, install the new topology durably, then retire the
      moved range from the source.  Returns false (and does nothing)
      when [key] cannot split the shard. *)
  let split t ~shard ~key =
    let n = Array.length t.slots in
    if t.in_migration || shard < 0 || shard >= n then false
    else begin
      let lo, hi = Shard_router.range_of_shard t.router shard in
      let above_lo =
        match lo with None -> key <> "" | Some l -> String.compare l key < 0
      in
      let below_hi =
        match hi with None -> true | Some h -> String.compare key h < 0
      in
      if not (above_lo && below_hi) then false
      else begin
        t.in_migration <- true;
        Fun.protect
          ~finally:(fun () -> t.in_migration <- false)
          (fun () ->
            invalidate_transient t;
            let src = t.slots.(shard) in
            (* the fence: serial execution means no writes are in
               flight, so the captured sequence *is* the drained state
               of the moving range *)
            Env.io_event t.env "migrate:fence";
            trace_instant t "migrate:split";
            let seq = E.snapshot src.engine in
            let dst_id = t.next_dir in
            t.next_dir <- t.next_dir + 1;
            (* a crashed copy that never installed a topology can leave
               files under a reusable dir id; never open a shard over
               leftovers *)
            delete_shard_files t.env ~dir:t.dir ~dir_id:dst_id;
            let dst = new_slot t dst_id in
            let keys, bytes =
              copy_range t ~src:src.engine ~seq ~dst:dst.engine
                ~lo:(Some key) ~hi
            in
            E.release_snapshot src.engine seq;
            (* durable install: old topology until the rename lands,
               new topology after — never a mix *)
            Env.io_event t.env "migrate:install";
            t.router <-
              Shard_router.create
                ~splits:(list_insert (Shard_router.splits t.router) shard key);
            t.slots <- array_insert t.slots (shard + 1) dst;
            t.topo_version <- t.topo_version + 1;
            t.clip <- true;
            install_topology t;
            clean_range t ~src:src.engine ~lo:(Some key) ~hi keys;
            t.splits_done <- t.splits_done + 1;
            t.migrated_bytes <- t.migrated_bytes + bytes;
            true)
      end
    end

  (** [merge t ~at] folds shard [at + 1] (the donor) into shard [at]
      (the survivor): fence, copy the donor's contents into the survivor,
      install the topology without the donor, then retire the donor's
      engine — immediately when nothing pins it, else when the last
      fence releases. *)
  let merge t ~at =
    let n = Array.length t.slots in
    if t.in_migration || at < 0 || at >= n - 1 then false
    else begin
      t.in_migration <- true;
      Fun.protect
        ~finally:(fun () -> t.in_migration <- false)
        (fun () ->
          invalidate_transient t;
          let survivor = t.slots.(at) and donor = t.slots.(at + 1) in
          Env.io_event t.env "migrate:fence";
          trace_instant t "migrate:merge";
          let seq = E.snapshot donor.engine in
          let d_lo, d_hi = Shard_router.range_of_shard t.router (at + 1) in
          (* a crash between a past install and its clean can have left
             the survivor stale bytes inside the donor's range (clipped,
             so invisible — until the survivor legitimately owns the
             range again).  Tombstone them *below* the incoming copies,
             or a key deleted in the donor could resurrect. *)
          (let sseq = E.snapshot survivor.engine in
           let sit = E.iterator_at survivor.engine ~snapshot:sseq in
           (match d_lo with
            | None -> sit.Iter.seek_to_first ()
            | Some l -> sit.Iter.seek l);
           let stale = ref [] in
           let in_range k =
             match d_hi with
             | None -> true
             | Some h -> String.compare k h < 0
           in
           while sit.Iter.valid () && in_range (sit.Iter.key ()) do
             stale := sit.Iter.key () :: !stale;
             sit.Iter.next ()
           done;
           E.release_snapshot survivor.engine sseq;
           if !stale <> [] then begin
             let batch = Pdb_kvs.Write_batch.create () in
             Pdb_kvs.Write_batch.mark_bulk batch;
             List.iter
               (fun k -> Pdb_kvs.Write_batch.delete batch k)
               (List.rev !stale);
             submit_batches t ~engine:survivor.engine
               ~trigger:Pdb_compaction.Job.Migration_clean ~lo:d_lo ~hi:d_hi
               [ batch ]
           end);
          let keys, bytes =
            copy_range t ~src:donor.engine ~seq ~dst:survivor.engine
              ~lo:d_lo ~hi:d_hi
          in
          ignore keys;
          E.release_snapshot donor.engine seq;
          Env.io_event t.env "migrate:install";
          t.router <-
            Shard_router.create
              ~splits:(list_remove (Shard_router.splits t.router) at);
          t.slots <- array_remove t.slots (at + 1);
          (* survivor absorbs the donor's routed-op history *)
          t.slots.(at).cum_ops <- t.slots.(at).cum_ops + donor.cum_ops;
          t.topo_version <- t.topo_version + 1;
          t.clip <- true;
          install_topology t;
          (* the donor leaves the topology whole: no tombstones — its
             directory is deleted once no fence pins it *)
          if slot_pinned t donor.dir_id then
            t.retired <- donor :: t.retired
          else begin
            E.close donor.engine;
            delete_shard_files t.env ~dir:t.dir ~dir_id:donor.dir_id
          end;
          t.merges_done <- t.merges_done + 1;
          t.migrated_bytes <- t.migrated_bytes + bytes;
          true)
    end

  (* ---------- the elasticity controller ---------- *)

  (* The split key: the median of the hot shard's reservoir sample.
     Taking the median of *request* keys bisects the load; falling back
     to the next distinct sample when the median collides with the
     shard's lower bound keeps the split vector strictly increasing. *)
  let pick_split_key (s : slot) ~lo ~hi =
    let n = min s.sample_n sample_cap in
    if n < 2 then None
    else begin
      let keys = Array.sub s.sample 0 n in
      Array.sort String.compare keys;
      let distinct =
        Array.of_list
          (List.sort_uniq String.compare (Array.to_list keys))
      in
      if Array.length distinct < 2 then None
      else begin
        let candidate = keys.(n / 2) in
        let ok k =
          (match lo with
           | None -> k <> ""
           | Some l -> String.compare l k < 0)
          && match hi with
             | None -> true
             | Some h -> String.compare k h < 0
        in
        if ok candidate then Some candidate
        else
          (* scan the distinct samples above the failed median *)
          Array.fold_left
            (fun acc k ->
              match acc with
              | Some _ -> acc
              | None ->
                if String.compare k candidate > 0 && ok k then Some k
                else None)
            None distinct
      end
    end

  (* One decision per window: split the hottest shard when its share of
     the window exceeds the split ratio (and the shard budget allows),
     else merge the coldest adjacent pair when their combined share
     falls below the merge ratio.  Window counters are op counts — the
     simulated clock never enters a decision, so 1-worker and 4-worker
     runs make identical choices. *)
  let maybe_rebalance t =
    if
      t.opts.O.elastic
      && (not t.in_migration)
      && t.opts.O.elastic_window_ops > 0
      && t.w_total >= t.opts.O.elastic_window_ops
    then begin
      let n = Array.length t.slots in
      let mean = float_of_int t.w_total /. float_of_int n in
      let hot = ref 0 in
      Array.iteri
        (fun i s -> if s.w_ops > t.slots.(!hot).w_ops then hot := i)
        t.slots;
      let hot_share = float_of_int t.slots.(!hot).w_ops /. mean in
      let acted = ref false in
      if
        n < t.opts.O.elastic_max_shards
        && hot_share >= t.opts.O.elastic_split_ratio
      then begin
        let lo, hi = Shard_router.range_of_shard t.router !hot in
        match pick_split_key t.slots.(!hot) ~lo ~hi with
        | Some key -> acted := split t ~shard:!hot ~key
        | None -> ()
      end;
      if (not !acted) && n > 1 then begin
        let cold = ref 0 in
        let pair i = t.slots.(i).w_ops + t.slots.(i + 1).w_ops in
        for i = 1 to n - 2 do
          if pair i < pair !cold then cold := i
        done;
        if
          float_of_int (pair !cold)
          <= t.opts.O.elastic_merge_ratio *. mean
        then ignore (merge t ~at:!cold)
      end;
      (* new window *)
      t.w_total <- 0;
      Array.iter
        (fun s ->
          s.w_ops <- 0;
          s.sample_n <- 0)
        t.slots
    end

  (* ---------- writes ---------- *)

  let put t k v =
    invalidate_transient t;
    E.put (route t k) k v;
    maybe_rebalance t

  let delete t k =
    invalidate_transient t;
    E.delete (route t k) k;
    maybe_rebalance t

  (* Split one batch into per-shard sub-batches, preserving the in-batch
     operation order within each shard.  Cross-shard atomicity matches
     what a shard-per-process deployment gives: each shard's slice
     commits atomically through that shard's WAL. *)
  let split_batch t batch =
    let n = Array.length t.slots in
    let subs = Array.make n None in
    let sub i =
      match subs.(i) with
      | Some b -> b
      | None ->
        let b = Pdb_kvs.Write_batch.create () in
        subs.(i) <- Some b;
        b
    in
    Pdb_kvs.Write_batch.iter batch (fun op ->
        match op with
        | Pdb_kvs.Write_batch.Put (k, v) ->
          let i = shard_of_key t k in
          note_op t i k;
          Pdb_kvs.Write_batch.put (sub i) k v
        | Pdb_kvs.Write_batch.Delete k ->
          let i = shard_of_key t k in
          note_op t i k;
          Pdb_kvs.Write_batch.delete (sub i) k);
    subs

  let write t batch =
    invalidate_transient t;
    let subs = split_batch t batch in
    Array.iteri
      (fun i sub ->
        match sub with
        | None -> ()
        | Some b -> E.write t.slots.(i).engine b)
      subs;
    maybe_rebalance t

  (* Group commit fans out per shard: every member batch contributes its
     shard's slice, and each shard runs one group commit over the slices
     it received — one coalesced WAL append and one sync per *shard*, the
     multi-instance shape of LevelDB's writers queue. *)
  let write_group t batches =
    invalidate_transient t;
    let n = Array.length t.slots in
    let per_shard = Array.make n [] in
    List.iter
      (fun batch ->
        let subs = split_batch t batch in
        Array.iteri
          (fun i sub ->
            match sub with
            | None -> ()
            | Some b -> per_shard.(i) <- b :: per_shard.(i))
          subs)
      batches;
    Array.iteri
      (fun i subs ->
        match List.rev subs with
        | [] -> ()
        | subs -> E.write_group t.slots.(i).engine subs)
      per_shard;
    maybe_rebalance t

  let flush t =
    invalidate_transient t;
    Array.iter (fun s -> E.flush s.engine) t.slots

  let compact_all t =
    invalidate_transient t;
    Array.iter (fun s -> E.compact_all s.engine) t.slots

  (* ---------- reads ---------- *)

  let get t k = E.get (route t k) k

  (* Clip an iterator to a shard's half-open routed range, so bytes a
     migration left outside the range (a crash between install and
     clean, or a not-yet-swept donor) are unobservable. *)
  let clip_iter ~lo ~hi (it : Iter.t) =
    match (lo, hi) with
    | None, None -> it
    | _ ->
      let in_hi () =
        match hi with
        | None -> true
        | Some h -> String.compare (it.Iter.key ()) h < 0
      in
      {
        Iter.seek_to_first =
          (fun () ->
            match lo with
            | None -> it.Iter.seek_to_first ()
            | Some l -> it.Iter.seek l);
        seek =
          (fun k ->
            let k =
              match lo with
              | Some l when String.compare k l < 0 -> l
              | _ -> k
            in
            it.Iter.seek k);
        next = it.Iter.next;
        valid = (fun () -> it.Iter.valid () && in_hi ());
        key = it.Iter.key;
        value = it.Iter.value;
      }

  (* A back-to-back capture of every shard's current sequence — the
     common fence all per-shard iterators read at.  The pins are HELD,
     not released: releasing immediately would let a compaction landing
     while the merged iterator is alive (e.g. a seek-triggered one) drop
     versions the fence should see and GC sstable files the iterator
     still reads.  Engines have no iterator close, so the pins live
     until the next write — which invalidates open iterators anyway.
     Quiescent reads reuse the cached fence: with no intervening write
     the shard sequences are unchanged, so iterator-heavy phases pin one
     fence, not one per scan. *)
  let capture_fence t =
    match t.transient_fence with
    | Some f -> f
    | None ->
      let f =
        {
          f_router = t.router;
          f_slots =
            Array.map (fun s -> (s.dir_id, E.snapshot s.engine)) t.slots;
        }
      in
      t.transient_fence <- Some f;
      f

  let merged_of_fence t (f : fence) =
    (* ranges are disjoint and shard order is key order, but the merge
       keeps no cross-child assumptions — it simply always yields the
       smallest current key *)
    Pdb_kvs.Merging_iter.create ~compare:String.compare
      (Array.to_list
         (Array.mapi
            (fun i (dir_id, seq) ->
              let it =
                E.iterator_at (engine_for_dir t dir_id) ~snapshot:seq
              in
              if t.clip then
                let lo, hi = Shard_router.range_of_shard f.f_router i in
                clip_iter ~lo ~hi it
              else it)
            f.f_slots))

  let iterator t = merged_of_fence t (capture_fence t)

  (* ---------- snapshots (pinned fences) ---------- *)

  let snapshot t =
    let f =
      {
        f_router = t.router;
        f_slots =
          Array.map (fun s -> (s.dir_id, E.snapshot s.engine)) t.slots;
      }
    in
    let id = t.next_fence in
    t.next_fence <- id + 1;
    t.fences <- (id, f) :: t.fences;
    id

  let fence_of t id =
    match List.assoc_opt id t.fences with
    | Some f -> f
    | None -> invalid_arg "Shard_store: unknown snapshot fence"

  let release_snapshot t id =
    let f = fence_of t id in
    release_fence t f;
    t.fences <- List.filter (fun (id', _) -> id' <> id) t.fences;
    sweep_retired t

  let get_at t ~snapshot k =
    let f = fence_of t snapshot in
    let i = Shard_router.shard_of_key f.f_router k in
    let dir_id, seq = f.f_slots.(i) in
    E.get_at (engine_for_dir t dir_id) ~snapshot:seq k

  let iterator_at t ~snapshot = merged_of_fence t (fence_of t snapshot)

  (* ---------- introspection ---------- *)

  (* Live on-disk bytes of one shard: the file sizes under its
     directory.  This — not the cumulative routed payload — is what a
     migration changes, so it is the basis of [shard_balance]. *)
  let resident_bytes t (s : slot) =
    let prefix = shard_dir t.dir s.dir_id ^ "/" in
    let plen = String.length prefix in
    List.fold_left
      (fun acc name ->
        if String.length name > plen && String.sub name 0 plen = prefix then
          acc + Env.file_size t.env name
        else acc)
      0 (Env.list t.env)

  let stats t =
    let agg =
      Stats.aggregate
        ~shared_cache:(t.shared_cache <> None)
        (Array.to_list (Array.map (fun s -> E.stats s.engine) t.slots))
    in
    (* with one shared cache every shard already mirrors the same global
       counters; with private caches per shard the sums stand *)
    (match t.shared_cache with
     | Some cache ->
       agg.Stats.block_cache_hits <- Pdb_sstable.Block_cache.hits cache;
       agg.Stats.block_cache_misses <- Pdb_sstable.Block_cache.misses cache
     | None -> ());
    let resident = Array.map (fun s -> resident_bytes t s) t.slots in
    agg.Stats.shard_resident_bytes <- resident;
    agg.Stats.shard_ops <- Array.map (fun s -> s.cum_ops) t.slots;
    (* the stale-balance fix: cumulative user bytes report the
       historical write distribution — a migration cannot change them —
       so balance is recomputed from what is resident right now *)
    agg.Stats.shard_balance <- Stats.balance_of resident;
    agg.Stats.elastic_splits <- t.splits_done;
    agg.Stats.elastic_merges <- t.merges_done;
    agg.Stats.elastic_migrated_bytes <- t.migrated_bytes;
    agg

  let memory_bytes t =
    let sum =
      Array.fold_left (fun acc s -> acc + E.memory_bytes s.engine) 0 t.slots
    in
    match t.shared_cache with
    | None -> sum
    | Some cache ->
      (* every shard counted the one shared cache; keep one copy *)
      sum
      - ((Array.length t.slots - 1) * Pdb_sstable.Block_cache.used cache)

  let describe t =
    let st = stats t in
    Printf.sprintf "sharded %s — %s, balance=%.2f, topo v%d (%d splits, %d \
                    merges)\n%s"
      t.opts.O.name
      (Shard_router.describe t.router)
      st.Stats.shard_balance t.topo_version t.splits_done t.merges_done
      (String.concat "\n"
         (Array.to_list
            (Array.mapi
               (fun i s ->
                 Printf.sprintf "-- shard %d (dir %d) --\n%s" i s.dir_id
                   (E.describe s.engine))
               t.slots)))

  let check_invariants t =
    Shard_router.check_invariants t.router;
    if Array.length t.slots <> Shard_router.shards t.router then
      failwith "Shard_store: shard count does not match router";
    let ids = Array.to_list (Array.map (fun s -> s.dir_id) t.slots) in
    let sorted = List.sort_uniq compare ids in
    if List.length sorted <> List.length ids then
      failwith "Shard_store: duplicate shard directory ids";
    List.iter
      (fun s ->
        if List.mem s.dir_id ids then
          failwith "Shard_store: retired slot still in the live topology")
      t.retired;
    Array.iter (fun s -> E.check_invariants s.engine) t.slots
end
