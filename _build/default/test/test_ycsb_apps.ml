(* Tests for the YCSB workload generator/runner and the application shims. *)

module W = Pdb_ycsb.Workload
module R = Pdb_ycsb.Runner
module Dyn = Pdb_kvs.Store_intf

let check = Alcotest.check

let small_store () =
  Pdb_harness.Stores.open_engine
    ~tweak:(fun o ->
      { o with Pdb_kvs.Options.memtable_bytes = 8 * 1024 })
    Pdb_harness.Stores.Pebblesdb

(* ---------- workload specs ---------- *)

let test_specs_sum_to_one () =
  List.iter
    (fun (s : W.spec) ->
      let total =
        s.W.read_prop +. s.W.update_prop +. s.W.insert_prop +. s.W.scan_prop
        +. s.W.rmw_prop
      in
      check (Alcotest.float 0.0001) ("mix sums to 1: " ^ s.W.name) 1.0 total)
    W.all

let test_draw_op_respects_mix () =
  let rng = Pdb_util.Rng.create 3 in
  let counts = Hashtbl.create 8 in
  let n = 50_000 in
  for _ = 1 to n do
    let op = W.draw_op W.workload_b rng in
    let k =
      match op with
      | W.Read -> "read"
      | W.Update -> "update"
      | W.Insert -> "insert"
      | W.Scan -> "scan"
      | W.Read_modify_write -> "rmw"
    in
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let reads = Option.value ~default:0 (Hashtbl.find_opt counts "read") in
  let frac = float_of_int reads /. float_of_int n in
  Alcotest.(check bool) "B is ~95% reads" true (frac > 0.93 && frac < 0.97)

let test_by_name () =
  Alcotest.(check bool) "finds A" true (W.by_name "a" <> None);
  Alcotest.(check bool) "unknown" true (W.by_name "zz" = None)

(* ---------- runner ---------- *)

let test_key_of_record_deterministic_unique () =
  check Alcotest.string "deterministic" (R.key_of_record 42) (R.key_of_record 42);
  let seen = Hashtbl.create 1024 in
  for i = 0 to 9_999 do
    let k = R.key_of_record i in
    Alcotest.(check bool) "unique" false (Hashtbl.mem seen k);
    Hashtbl.replace seen k ()
  done

let test_load_then_read_workloads () =
  let store = small_store () in
  let records = 2_000 in
  let load = R.load store ~records ~value_bytes:64 ~seed:7 in
  check Alcotest.int "load ops" records load.R.ops;
  Alcotest.(check bool) "load throughput positive" true (load.R.kops_per_s > 0.0);
  (* workload C is pure reads over loaded records: every read must hit *)
  let missing = ref 0 in
  for i = 0 to records - 1 do
    if store.Dyn.d_get (R.key_of_record i) = None then incr missing
  done;
  check Alcotest.int "no record missing after load" 0 !missing;
  let c = R.run store W.workload_c ~records ~operations:1_000 ~value_bytes:64 ~seed:7 in
  check Alcotest.int "c reads" 1_000 c.R.reads;
  check Alcotest.int "c writes" 0 (c.R.updates + c.R.inserts + c.R.rmws);
  store.Dyn.d_close ()

let test_workload_d_inserts_grow_keyspace () =
  let store = small_store () in
  let records = 1_000 in
  ignore (R.load store ~records ~value_bytes:64 ~seed:9);
  let d = R.run store W.workload_d ~records ~operations:2_000 ~value_bytes:64 ~seed:9 in
  Alcotest.(check bool) "some inserts happened" true (d.R.inserts > 0);
  (* inserted records are retrievable *)
  let found = ref 0 in
  for i = records to records + d.R.inserts - 1 do
    if store.Dyn.d_get (R.key_of_record i) <> None then incr found
  done;
  check Alcotest.int "all inserts visible" d.R.inserts !found;
  store.Dyn.d_close ()

let test_workload_e_scans () =
  let store = small_store () in
  let records = 1_000 in
  ignore (R.load store ~records ~value_bytes:64 ~seed:11);
  let e = R.run store W.workload_e ~records ~operations:300 ~value_bytes:64 ~seed:11 in
  Alcotest.(check bool) "mostly scans" true (e.R.scans > 250);
  Alcotest.(check bool) "seeks recorded in engine stats" true
    ((store.Dyn.d_stats ()).Pdb_kvs.Engine_stats.seeks > 0);
  store.Dyn.d_close ()

let test_workload_f_rmw () =
  let store = small_store () in
  let records = 500 in
  ignore (R.load store ~records ~value_bytes:64 ~seed:13);
  let f = R.run store W.workload_f ~records ~operations:1_000 ~value_bytes:64 ~seed:13 in
  Alcotest.(check bool) "rmw present" true (f.R.rmws > 300);
  (* every rmw does a get and a put *)
  let st = store.Dyn.d_stats () in
  Alcotest.(check bool) "engine saw both reads and writes" true
    (st.Pdb_kvs.Engine_stats.gets > 0 && st.Pdb_kvs.Engine_stats.puts > 0);
  store.Dyn.d_close ()

(* ---------- app shims ---------- *)

let test_hyperdex_read_before_write () =
  let store = small_store () in
  let app = Pdb_apps.App_shim.wrap Pdb_apps.App_shim.hyperdex store in
  let gets_before = (store.Dyn.d_stats ()).Pdb_kvs.Engine_stats.gets in
  app.Dyn.d_put "k" "v";
  let gets_after = (store.Dyn.d_stats ()).Pdb_kvs.Engine_stats.gets in
  check Alcotest.int "put performed a get first" (gets_before + 1) gets_after;
  check Alcotest.(option string) "value stored" (Some "v") (app.Dyn.d_get "k");
  store.Dyn.d_close ()

let test_mongodb_no_read_before_write () =
  let store = small_store () in
  let app = Pdb_apps.App_shim.wrap Pdb_apps.App_shim.mongodb store in
  let gets_before = (store.Dyn.d_stats ()).Pdb_kvs.Engine_stats.gets in
  app.Dyn.d_put "k" "v";
  let gets_after = (store.Dyn.d_stats ()).Pdb_kvs.Engine_stats.gets in
  check Alcotest.int "no extra get" gets_before gets_after;
  store.Dyn.d_close ()

let test_app_latency_charged () =
  let store = small_store () in
  let clock = Pdb_simio.Env.clock store.Dyn.d_env in
  let app = Pdb_apps.App_shim.wrap Pdb_apps.App_shim.mongodb store in
  let before = (Pdb_simio.Clock.snapshot clock).Pdb_simio.Clock.stall_ns in
  app.Dyn.d_put "k" "v";
  let after = (Pdb_simio.Clock.snapshot clock).Pdb_simio.Clock.stall_ns in
  Alcotest.(check bool) "app latency dominates store latency" true
    (after -. before >= Pdb_apps.App_shim.mongodb.Pdb_apps.App_shim.write_latency_ns);
  store.Dyn.d_close ()

(* ---------- harness ---------- *)

let test_every_engine_opens_and_roundtrips () =
  List.iter
    (fun engine ->
      let store =
        Pdb_harness.Stores.open_engine
          ~tweak:(fun o ->
            { o with Pdb_kvs.Options.memtable_bytes = 8 * 1024 })
          engine
      in
      store.Dyn.d_put "hello" "world";
      check Alcotest.(option string)
        ("roundtrip " ^ store.Dyn.d_name)
        (Some "world") (store.Dyn.d_get "hello");
      store.Dyn.d_delete "hello";
      check Alcotest.(option string)
        ("delete " ^ store.Dyn.d_name)
        None (store.Dyn.d_get "hello");
      store.Dyn.d_check_invariants ();
      store.Dyn.d_close ())
    [
      Pdb_harness.Stores.Pebblesdb;
      Pdb_harness.Stores.Pebblesdb_one;
      Pdb_harness.Stores.Hyperleveldb;
      Pdb_harness.Stores.Leveldb;
      Pdb_harness.Stores.Rocksdb;
      Pdb_harness.Stores.Btree;
      Pdb_harness.Stores.Wiredtiger;
    ]

let test_write_amp_helper () =
  let store = small_store () in
  for i = 0 to 999 do
    store.Dyn.d_put (Printf.sprintf "key%06d" i) (String.make 100 'v')
  done;
  store.Dyn.d_flush ();
  Alcotest.(check bool) "write amp > 1" true
    (Pdb_harness.Bench_util.write_amp store > 1.0);
  store.Dyn.d_close ()

let test_fill_and_read_helpers () =
  let store = small_store () in
  let fill = Pdb_harness.Bench_util.fill_random store ~n:500 ~value_bytes:64 ~seed:1 in
  check Alcotest.int "fill ops" 500 fill.Pdb_harness.Bench_util.ops;
  let reads = Pdb_harness.Bench_util.read_random store ~n:500 ~ops:200 ~seed:1 in
  Alcotest.(check bool) "read throughput positive" true
    (reads.Pdb_harness.Bench_util.kops > 0.0);
  let seeks = Pdb_harness.Bench_util.seek_random store ~n:500 ~ops:50 ~nexts:5 ~seed:1 in
  Alcotest.(check bool) "seek throughput positive" true
    (seeks.Pdb_harness.Bench_util.kops > 0.0);
  store.Dyn.d_close ()

let test_experiment_registry () =
  Alcotest.(check bool) "registry nonempty" true
    (List.length Pdb_harness.Experiments.all >= 15);
  Alcotest.(check bool) "fig1.1 registered" true
    (Pdb_harness.Experiments.find "fig1.1" <> None);
  Alcotest.(check bool) "unknown id" true
    (Pdb_harness.Experiments.find "nope" = None)

let () =
  Alcotest.run "ycsb-apps-harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "mixes sum to 1" `Quick test_specs_sum_to_one;
          Alcotest.test_case "draw_op mix" `Quick test_draw_op_respects_mix;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "runner",
        [
          Alcotest.test_case "key_of_record" `Quick
            test_key_of_record_deterministic_unique;
          Alcotest.test_case "load + C" `Quick test_load_then_read_workloads;
          Alcotest.test_case "D inserts grow" `Quick
            test_workload_d_inserts_grow_keyspace;
          Alcotest.test_case "E scans" `Quick test_workload_e_scans;
          Alcotest.test_case "F rmw" `Quick test_workload_f_rmw;
        ] );
      ( "app-shims",
        [
          Alcotest.test_case "hyperdex read-before-write" `Quick
            test_hyperdex_read_before_write;
          Alcotest.test_case "mongodb plain writes" `Quick
            test_mongodb_no_read_before_write;
          Alcotest.test_case "app latency charged" `Quick
            test_app_latency_charged;
        ] );
      ( "harness",
        [
          Alcotest.test_case "all engines roundtrip" `Quick
            test_every_engine_opens_and_roundtrips;
          Alcotest.test_case "write amp helper" `Quick test_write_amp_helper;
          Alcotest.test_case "fill/read/seek helpers" `Quick
            test_fill_and_read_helpers;
          Alcotest.test_case "experiment registry" `Quick
            test_experiment_registry;
        ] );
    ]
