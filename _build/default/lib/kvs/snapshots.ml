(** Snapshot registry: the live set of pinned sequence numbers.

    A snapshot pins the store's state at a sequence number: reads and
    iterators through it see exactly the versions visible then.  Compaction
    must keep any version that some live snapshot still needs — the
    LevelDB rule implemented by {!droppable}: a version may be discarded
    only when the next-newer version of the same key is itself visible to
    every live snapshot. *)

type t = { mutable live : int list (* unordered multiset of pinned seqs *) }

let create () = { live = [] }

let acquire t seq = t.live <- seq :: t.live

(** [release t seq] unpins one acquisition of [seq]. *)
let release t seq =
  let rec remove = function
    | [] -> []
    | s :: rest -> if s = seq then rest else s :: remove rest
  in
  t.live <- remove t.live

let is_empty t = t.live = []

(** [smallest t ~default] is the oldest pinned sequence number, or
    [default] (usually the current last sequence) when nothing is pinned. *)
let smallest t ~default =
  List.fold_left min default t.live

(** Compaction visibility rule.  [prev_seq] is the sequence of the
    next-newer entry already seen for this user key ([None] for the first,
    i.e. freshest, which is always kept).  The current entry is droppable
    iff that newer entry is visible to every live snapshot. *)
let droppable t ~prev_seq ~last_seq =
  match prev_seq with
  | None -> false
  | Some p -> p <= smallest t ~default:last_seq

(** A bottom-level tombstone can be dropped entirely only when every live
    snapshot already sees it (older versions it hides are gone or about to
    be). *)
let tombstone_droppable t ~seq ~last_seq = seq <= smallest t ~default:last_seq
