lib/skiplist/skiplist.mli:
