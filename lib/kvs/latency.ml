(** Per-operation latency collection over the simulated clock.

    One histogram per operation kind, in nanoseconds of modeled time —
    the quantities behind the paper's Figure 5.5 (average and 99th
    percentile read/write latency per engine).

    Two producers feed it: {!instrument} wraps a {!Store_intf.dyn} so the
    serial foreground path measures each call as a clock-snapshot delta
    (elapsed simulated time including stalls and background horizon
    movement), and the multi-client driver records lane-placement
    latencies from [Fg_lanes] directly.  Both are purely observational:
    collecting latencies never changes IO, clock charges or store bytes. *)

module H = Pdb_util.Histogram

type kind = Read | Write | Seek | Other

type t = {
  read : H.t;
  write : H.t;
  seek : H.t;
  other : H.t;
}

let create () =
  { read = H.create (); write = H.create (); seek = H.create ();
    other = H.create () }

let hist t = function
  | Read -> t.read
  | Write -> t.write
  | Seek -> t.seek
  | Other -> t.other

(** [record t kind ns] adds one observation in nanoseconds. *)
let record t kind ns = H.add (hist t kind) ns

(** Kinds with display labels, in reporting order. *)
let kinds = [ (Write, "write"); (Read, "read"); (Seek, "seek") ]

module Clock = Pdb_simio.Clock

(** [instrument lat store] wraps the serial foreground entry points of
    [store] so each put/delete/write (Write), get (Read) and iterator
    seek (Seek) records its modeled latency — the simulated-clock elapsed
    delta across the call — into [lat].  The store's behaviour and state
    are unchanged. *)
let instrument lat (store : Store_intf.dyn) =
  let clock = Pdb_simio.Env.clock store.Store_intf.d_env in
  let timed kind f =
    fun x ->
      let before = Clock.snapshot clock in
      let r = f x in
      record lat kind (Clock.elapsed_ns (Clock.diff (Clock.snapshot clock) before));
      r
  in
  let instrument_iter (it : Iter.t) =
    { it with
      Iter.seek = timed Seek it.Iter.seek;
      seek_to_first = timed Seek it.Iter.seek_to_first;
    }
  in
  { store with
    Store_intf.d_put =
      (fun k v -> (timed Write (fun () -> store.Store_intf.d_put k v)) ());
    d_get = timed Read store.Store_intf.d_get;
    d_delete = timed Write store.Store_intf.d_delete;
    d_write = timed Write store.Store_intf.d_write;
    d_write_group = timed Write store.Store_intf.d_write_group;
    d_iterator =
      (fun () -> instrument_iter (store.Store_intf.d_iterator ()));
  }

(* --- reporting ------------------------------------------------------ *)

let us ns = ns /. 1e3

(** [summary_line lat kind] is ["mean=… p50=… p90=… p99=… p99.9=… (µs, n=…)"]
    or [None] when no ops of that kind were recorded. *)
let summary_line lat kind =
  let h = hist lat kind in
  if H.count h = 0 then None
  else
    Some
      (Printf.sprintf
         "mean=%.1f p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f (us, n=%d)"
         (us (H.mean h))
         (us (H.percentile h 50.0))
         (us (H.percentile h 90.0))
         (us (H.percentile h 99.0))
         (us (H.percentile h 99.9))
         (H.count h))

(** Print one "  <label> latency : …" line per populated kind. *)
let print_summary ?(indent = "  ") lat =
  List.iter
    (fun (kind, label) ->
      match summary_line lat kind with
      | Some line -> Printf.printf "%s%-5s latency : %s\n%!" indent label line
      | None -> ())
    kinds
