lib/apps/app_shim.ml: Pdb_kvs Pdb_simio
