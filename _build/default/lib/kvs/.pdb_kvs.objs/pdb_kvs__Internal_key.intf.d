lib/kvs/internal_key.mli: Format
