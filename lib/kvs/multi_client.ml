(** Multi-client foreground driver.

    Replays one workload — a fixed global sequence of operations — as N
    concurrent clients: operation [i] belongs to client [i mod N], the
    store executes every operation in the global order (so store state
    is byte-identical at any client count), and each operation's
    measured foreground cost is placed on its client's timeline by
    {!Pdb_simio.Fg_lanes}, where the clients' CPU work overlaps and
    their device time contends for the one shared device.

    Writes group-commit: a run of consecutive pending writes — one per
    client, so at most N — is handed to the engine as one commit group
    ({!Store_intf.dyn.d_write_group}); the leader's coalesced WAL append
    and single sync are placed once, and every member lane waits for the
    commit.  This is the saturated writers queue of LevelDB's group
    commit: under load, every client has a write queued by the time the
    leader syncs, so the window always fills.

    Sharded stores (lib/shard) fan each commit group out by key range:
    one lane group becomes up to one engine-level group {e per shard},
    each with its own coalesced append and sync on that shard's WAL.  So
    against a sharded store the engine's [write_groups] counter can
    exceed this driver's [lane_groups] (at most [shards x] it), while
    store state stays byte-identical at any client count — the global
    operation order is preserved within every shard.

    The reported elapsed time is
    [max(client-lane horizon, foreground device time + background
    horizon advance)]: a phase is bound by its slowest client, or by the
    shared device once the serialised foreground IO plus the compaction
    drain exceed every lane. *)

module Fg = Pdb_simio.Fg_lanes
module Clock = Pdb_simio.Clock

type op =
  | Write of Write_batch.t  (** groupable: put / delete / update batches *)
  | Read of (unit -> unit)  (** point lookup, on its client's lane *)
  | Seek of (unit -> unit)  (** iterator seek / scan, on its client's lane *)
  | Other of (unit -> unit)
      (** anything else executed as-is on its client's lane (e.g. RMW) *)

type result = {
  clients : int;
  ops : int;
  elapsed_ns : float;
  write_groups : int;  (** groups formed during this phase *)
  lane_groups : int;
      (** groups placed on the client lanes — equals [write_groups] when
          every write flows through {!Write} ops *)
  grouped_batches : int;  (** batches committed through those groups *)
  avg_group_size : float;
  syncs_saved : int;  (** WAL syncs amortised away during this phase *)
  client_wait_ns : float array;
      (** per-client blocked time: device contention + group waits *)
}

(* Run [f], returning the clock's foreground deltas: (cpu, device IO,
   stall).  Background work triggered inside [f] charges the background
   lane and the worker-timeline horizon, handled at phase level. *)
let measured clock f =
  let c0 = Clock.snapshot clock in
  f ();
  let d = Clock.diff (Clock.snapshot clock) c0 in
  (d.Clock.cpu_ns, d.Clock.foreground_ns, d.Clock.stall_ns)

(** [run store ~clients ops] executes [ops] (in order) as [clients]
    round-robin client lanes.  With [?latency], each operation's modeled
    lane latency (arrival to completion, stalls and group waits included)
    is recorded under its op kind — recording never changes placement or
    store state. *)
let run ?latency (store : Store_intf.dyn) ~clients ops =
  let clients = max 1 clients in
  let clock = Pdb_simio.Env.clock store.Store_intf.d_env in
  let lanes = Fg.create ~clients in
  let bg0 = (Clock.snapshot clock).Clock.bg_horizon_ns in
  let stats0 = store.Store_intf.d_stats () in
  let groups0 = stats0.Engine_stats.write_groups in
  let batches0 = stats0.Engine_stats.write_group_batches in
  let saved0 = stats0.Engine_stats.group_syncs_saved in
  let note kind ns =
    match latency with Some lat -> Latency.record lat kind ns | None -> ()
  in
  let ops = Array.of_list ops in
  let n = Array.length ops in
  let i = ref 0 in
  while !i < n do
    let client = !i mod clients in
    match ops.(!i) with
    | Read f | Seek f | Other f ->
      let kind =
        match ops.(!i) with
        | Read _ -> Latency.Read
        | Seek _ -> Latency.Seek
        | _ -> Latency.Other
      in
      let cpu_ns, io_ns, stall_ns = measured clock (fun () -> f ()) in
      note kind (Fg.place lanes ~client ~cpu_ns ~io_ns ~stall_ns);
      incr i
    | Write _ ->
      (* the commit window: every client with a write pending at the
         head of the global order joins the group, at most one batch
         per client *)
      let rec collect k members batches =
        if !i < n && k < clients then
          match ops.(!i) with
          | Write b ->
            let c = !i mod clients in
            incr i;
            collect (k + 1) (c :: members) (b :: batches)
          | Read _ | Seek _ | Other _ -> (members, batches)
        else (members, batches)
      in
      let members, batches = collect 0 [] [] in
      let members = List.rev members and batches = List.rev batches in
      let cpu_ns, io_ns, stall_ns =
        measured clock (fun () -> store.Store_intf.d_write_group batches)
      in
      let lats = Fg.place_group lanes ~members ~cpu_ns ~io_ns ~stall_ns in
      List.iter (note Latency.Write) lats
  done;
  let bg_advance =
    Float.max 0.0 ((Clock.snapshot clock).Clock.bg_horizon_ns -. bg0)
  in
  let elapsed_ns =
    Float.max (Fg.horizon_ns lanes) (Fg.device_ns lanes +. bg_advance)
  in
  let stats = store.Store_intf.d_stats () in
  let write_groups = stats.Engine_stats.write_groups - groups0 in
  let grouped_batches = stats.Engine_stats.write_group_batches - batches0 in
  let client_wait_ns = Fg.wait_ns lanes in
  stats.Engine_stats.client_wait_ns <- Array.copy client_wait_ns;
  {
    clients;
    ops = n;
    elapsed_ns;
    write_groups;
    lane_groups = Fg.groups_placed lanes;
    grouped_batches;
    avg_group_size =
      (if write_groups = 0 then 0.0
       else float_of_int grouped_batches /. float_of_int write_groups);
    syncs_saved = stats.Engine_stats.group_syncs_saved - saved0;
    client_wait_ns;
  }
