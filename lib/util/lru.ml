(** Weighted LRU cache.

    Backs the block cache and table cache in the sstable substrate.  Each
    entry carries an integer weight (bytes); inserting past [capacity]
    evicts least-recently-used entries.  Implemented as a hash table over an
    intrusive doubly-linked list. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable weight : int;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let evict_one t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.used <- t.used - node.weight;
    t.evictions <- t.evictions + 1

(** [find t k] returns the cached value and promotes it to most recent. *)
let find t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

(** [mem t k] tests presence without affecting recency or hit counters. *)
let mem t k = Hashtbl.mem t.table k

(** [peek t k] returns the cached value without promoting it or touching
    the hit/miss counters — for accounting and opportunistic reads that
    must not distort cache statistics. *)
let peek t k =
  match Hashtbl.find_opt t.table k with
  | Some node -> Some node.value
  | None -> None

(** [insert t k v ~weight] adds or replaces an entry, evicting as needed.
    Entries heavier than the whole capacity are not cached. *)
let insert t k v ~weight =
  if weight <= t.capacity then begin
    (match Hashtbl.find_opt t.table k with
     | Some old ->
       unlink t old;
       Hashtbl.remove t.table k;
       t.used <- t.used - old.weight
     | None -> ());
    let node = { key = k; value = v; weight; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node;
    t.used <- t.used + weight;
    while t.used > t.capacity do
      evict_one t
    done
  end

(** [update_weight t k weight] re-weighs a resident entry in place —
    for cached values whose footprint changes after insertion (a lazily
    decoded part materialising).  Recency is unchanged; growing past
    capacity evicts from the LRU end as usual (possibly the entry
    itself). *)
let update_weight t k ~weight =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    t.used <- t.used - node.weight + weight;
    node.weight <- weight;
    while t.used > t.capacity do
      evict_one t
    done
  | None -> ()

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k;
    t.used <- t.used - node.weight
  | None -> ()

let used t = t.used
let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

(** [fold t f acc] folds over entries from most to least recently used
    without affecting recency. *)
let fold t f acc =
  let rec go node acc =
    match node with
    | None -> acc
    | Some n -> go n.next (f acc n.key n.value)
  in
  go t.head acc

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.used <- 0
