(** The Yahoo Cloud Serving Benchmark core workloads (Table 5.3).

    Implemented from the YCSB paper / reference generator: six operation
    mixes (A-F) over zipfian / latest / uniform request distributions, plus
    the two load phases (Load A for workloads A-D and F, Load E for E). *)

type op_kind = Read | Update | Insert | Scan | Read_modify_write

type request_dist =
  | Zipfian
  | Latest
  | Uniform
  | Shifting_hotspot
      (** contiguous hot key window that jumps every few thousand ops *)
  | Diurnal  (** hot window drifting sinusoidally across the key space *)

type spec = {
  name : string;
  description : string;
  read_prop : float;
  update_prop : float;
  insert_prop : float;
  scan_prop : float;
  rmw_prop : float;
  dist : request_dist;
  max_scan_len : int;
}

let workload_a =
  {
    name = "A";
    description = "50% reads, 50% updates (session store)";
    read_prop = 0.5;
    update_prop = 0.5;
    insert_prop = 0.0;
    scan_prop = 0.0;
    rmw_prop = 0.0;
    dist = Zipfian;
    max_scan_len = 0;
  }

let workload_b =
  {
    name = "B";
    description = "95% reads, 5% updates (photo tagging)";
    read_prop = 0.95;
    update_prop = 0.05;
    insert_prop = 0.0;
    scan_prop = 0.0;
    rmw_prop = 0.0;
    dist = Zipfian;
    max_scan_len = 0;
  }

let workload_c =
  {
    name = "C";
    description = "100% reads (caches)";
    read_prop = 1.0;
    update_prop = 0.0;
    insert_prop = 0.0;
    scan_prop = 0.0;
    rmw_prop = 0.0;
    dist = Zipfian;
    max_scan_len = 0;
  }

let workload_d =
  {
    name = "D";
    description = "95% reads of latest, 5% inserts (status feed)";
    read_prop = 0.95;
    update_prop = 0.0;
    insert_prop = 0.05;
    scan_prop = 0.0;
    rmw_prop = 0.0;
    dist = Latest;
    max_scan_len = 0;
  }

let workload_e =
  {
    name = "E";
    description = "95% range queries, 5% inserts (threaded conversations)";
    read_prop = 0.0;
    update_prop = 0.0;
    insert_prop = 0.05;
    scan_prop = 0.95;
    rmw_prop = 0.0;
    dist = Zipfian;
    max_scan_len = 100;
  }

let workload_f =
  {
    name = "F";
    description = "50% reads, 50% read-modify-writes (database)";
    read_prop = 0.5;
    update_prop = 0.0;
    insert_prop = 0.0;
    scan_prop = 0.0;
    rmw_prop = 0.5;
    dist = Zipfian;
    max_scan_len = 0;
  }

(** A scans-only variant of E used by §5.3's "only range queries"
    analysis. *)
let workload_e_scan_only =
  {
    workload_e with
    name = "E-scan-only";
    description = "100% range queries";
    insert_prop = 0.0;
    scan_prop = 1.0;
  }

(** Skew-drift variants (not part of the YCSB core set): workload A's
    50/50 read/update mix under a moving hotspot — the traffic shape
    elastic resplitting exists for. *)
let workload_shift =
  {
    workload_a with
    name = "shift";
    description = "50% reads, 50% updates, jumping hot key window";
    dist = Shifting_hotspot;
  }

let workload_diurnal =
  {
    workload_a with
    name = "diurnal";
    description = "50% reads, 50% updates, sinusoidally drifting hot window";
    dist = Diurnal;
  }

let all = [ workload_a; workload_b; workload_c; workload_d; workload_e;
            workload_f; workload_shift; workload_diurnal ]

let by_name name =
  List.find_opt
    (fun s -> String.lowercase_ascii s.name = String.lowercase_ascii name)
    all

(** [draw_op spec rng] picks the next operation kind by the mix. *)
let draw_op spec rng =
  let x = Pdb_util.Rng.float rng in
  if x < spec.read_prop then Read
  else if x < spec.read_prop +. spec.update_prop then Update
  else if x < spec.read_prop +. spec.update_prop +. spec.insert_prop then
    Insert
  else if
    x < spec.read_prop +. spec.update_prop +. spec.insert_prop
        +. spec.scan_prop
  then Scan
  else Read_modify_write
