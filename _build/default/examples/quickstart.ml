(* Quickstart: open a PebblesDB store, write, read, scan, delete.

   Run with: dune exec examples/quickstart.exe *)

module P = Pebblesdb.Pebbles_store
module Iter = Pdb_kvs.Iter

let () =
  (* Every store runs on a simulated storage environment that accounts all
     IO — that's how the repository measures write amplification. *)
  let env = Pdb_simio.Env.create () in
  let db = P.open_store (Pdb_kvs.Options.pebblesdb ()) ~env ~dir:"demo" in

  (* basic puts and gets *)
  P.put db "apple" "red";
  P.put db "banana" "yellow";
  P.put db "cherry" "dark red";
  (match P.get db "banana" with
   | Some colour -> Printf.printf "banana is %s\n" colour
   | None -> print_endline "banana missing?!");

  (* updates are appends with a newer sequence number (§2.2) *)
  P.put db "banana" "green (unripe)";
  Printf.printf "banana is now %s\n" (Option.get (P.get db "banana"));

  (* batches apply atomically *)
  let batch = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put batch "date" "brown";
  Pdb_kvs.Write_batch.put batch "elderberry" "black";
  Pdb_kvs.Write_batch.delete batch "apple";
  P.write db batch;

  (* range queries: seek + next (§2.1) *)
  print_endline "fruit >= \"b\":";
  let it = P.iterator db in
  it.Iter.seek "b";
  while it.Iter.valid () do
    Printf.printf "  %s -> %s\n" (it.Iter.key ()) (it.Iter.value ());
    it.Iter.next ()
  done;

  (* insert enough data to see guards and levels form *)
  for i = 0 to 20_000 - 1 do
    P.put db (Printf.sprintf "bulk%08d" i) (String.make 128 'x')
  done;
  P.flush db;
  print_endline "\nstore shape after 20k bulk inserts:";
  print_string (P.describe db);

  let io = Pdb_simio.Env.stats env in
  let stats = P.stats db in
  Printf.printf "\nwrite amplification so far: %.2f\n"
    (float_of_int io.Pdb_simio.Io_stats.bytes_written
     /. float_of_int stats.Pdb_kvs.Engine_stats.user_bytes_written);
  P.close db
