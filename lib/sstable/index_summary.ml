(** Compressed in-memory index summaries (see the interface for the
    design rationale).

    Samples are packed into one string to keep the per-summary heap
    footprint honest: for each retained index entry we store

      varint(shared)  — prefix length shared with the previous sample
      varint(len)     — length of the stored suffix
      suffix bytes
      varint(offset)  — data-block handle
      varint(size)

    Shared-prefix truncation against the previous *sample* (not the
    previous index entry) keeps decode stateless per summary while still
    capturing most of the redundancy of sorted last-keys. *)

type t = {
  number : int;
  entries : int;
  index_handle : int * int;
  filter_handle : int * int;
  prefix_len : int;
  index_bytes : int;
  filter_bytes : int;
  nsamples : int;
  packed : string;
}

let put_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let get_varint s pos =
  let n = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    let b = Char.code s.[!p] in
    incr p;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  (!n, !p)

let shared_prefix a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do
    incr i
  done;
  !i

let build ~stride ~number ~entries ~index_handle ~filter_handle ~prefix_len
    ~index_bytes ~filter_bytes index_entries =
  let stride = max 1 stride in
  let buf = Buffer.create 128 in
  let prev = ref "" in
  let nsamples = ref 0 in
  let total = List.length index_entries in
  List.iteri
    (fun i (key, (off, size)) ->
      if i mod stride = 0 || i = total - 1 then begin
        let shared = shared_prefix !prev key in
        let suffix = String.sub key shared (String.length key - shared) in
        put_varint buf shared;
        put_varint buf (String.length suffix);
        Buffer.add_string buf suffix;
        put_varint buf off;
        put_varint buf size;
        prev := key;
        incr nsamples
      end)
    index_entries;
  {
    number;
    entries;
    index_handle;
    filter_handle;
    prefix_len;
    index_bytes;
    filter_bytes;
    nsamples = !nsamples;
    packed = Buffer.contents buf;
  }

let number t = t.number
let entries t = t.entries
let index_handle t = t.index_handle
let filter_handle t = t.filter_handle
let prefix_len t = t.prefix_len
let index_bytes t = t.index_bytes
let filter_bytes t = t.filter_bytes
let resident_table_bytes t = t.index_bytes + t.filter_bytes
let nsamples t = t.nsamples

(* Packed samples plus a fixed allowance for the record's scalar fields. *)
let size_bytes t = String.length t.packed + 64

let slice_bytes t =
  let _, index_size = t.index_handle in
  if t.nsamples <= 1 then index_size
  else (index_size + t.nsamples - 1) / t.nsamples

let samples t =
  let s = t.packed in
  let len = String.length s in
  let rec go pos prev acc =
    if pos >= len then List.rev acc
    else
      let shared, pos = get_varint s pos in
      let slen, pos = get_varint s pos in
      let suffix = String.sub s pos slen in
      let pos = pos + slen in
      let off, pos = get_varint s pos in
      let size, pos = get_varint s pos in
      let key = String.sub prev 0 shared ^ suffix in
      go pos key ((key, (off, size)) :: acc)
  in
  go 0 "" []
