(** K-way merging iterator.

    Both LSM and FLSM database iterators are implemented "via merging level
    iterators" (§3.4); in FLSM the level iterators are themselves merges of
    the sstable iterators inside the guard of interest.  The merge picks the
    smallest current key among children by the supplied comparator; ties are
    broken by child index, so callers must order children newest-first when
    duplicate keys across children are possible. *)

let create ?(positioned = false) ~compare children =
  let children = Array.of_list children in
  let n = Array.length children in
  let current = ref (-1) in
  let find_smallest () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      let it : Iter.t = children.(i) in
      if it.valid () then
        if !best < 0 then best := i
        else begin
          let c = compare (it.key ()) (children.(!best).Iter.key ()) in
          if c < 0 then best := i
        end
    done;
    current := !best
  in
  let with_current f =
    if !current < 0 then invalid_arg "Merging_iter: iterator is not valid"
    else f children.(!current)
  in
  (* [positioned] children were already individually sought by the caller
     (e.g. measured parallel seeks); adopt their positions directly. *)
  if positioned then find_smallest ();
  {
    Iter.seek_to_first =
      (fun () ->
        Array.iter (fun (it : Iter.t) -> it.seek_to_first ()) children;
        find_smallest ());
    seek =
      (fun target ->
        Array.iter (fun (it : Iter.t) -> it.seek target) children;
        find_smallest ());
    next =
      (fun () ->
        with_current (fun (it : Iter.t) -> it.next ());
        find_smallest ());
    valid = (fun () -> !current >= 0);
    key = (fun () -> with_current (fun (it : Iter.t) -> it.key ()));
    value = (fun () -> with_current (fun (it : Iter.t) -> it.value ()));
  }
