lib/simio/io_stats.ml: Fmt
