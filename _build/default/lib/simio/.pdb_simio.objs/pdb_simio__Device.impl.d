lib/simio/device.ml:
