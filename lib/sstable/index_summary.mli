(** Compressed in-memory index summaries, resident above the table cache.

    The table cache bounds how many open tables keep their index block
    and bloom filter resident; at production scale the working set of
    tables exceeds it and every reopen pays three random reads (footer,
    index, filter).  A summary is the Cassandra-style middle tier: for
    each table ever opened, keep a small always-resident digest — the
    footer's handles plus every [stride]-th index entry, shared-prefix
    truncated — so a later reopen skips the footer read, bounds its index
    read to one inter-sample slice, and defers the filter until a bloom
    probe actually needs it (see {!Table.open_via_summary}).

    Summaries are pure read-path state derived from the on-disk table;
    building or dropping them never changes file bytes. *)

type t

(** [build ~stride ~number ~entries ~index_handle ~filter_handle
    ~prefix_len ~index_bytes ~filter_bytes index_entries] digests a
    decoded index block.  [index_entries] are the index's
    [(last_key, (offset, size))] pairs in order; every [stride]-th entry
    (and the last) is retained.  [index_bytes]/[filter_bytes] record the
    table's actual decoded resident footprint, making the summary the
    source of truth for memory accounting of evicted tables. *)
val build :
  stride:int ->
  number:int ->
  entries:int ->
  index_handle:int * int ->
  filter_handle:int * int ->
  prefix_len:int ->
  index_bytes:int ->
  filter_bytes:int ->
  (string * (int * int)) list ->
  t

val number : t -> int
val entries : t -> int

(** Footer fields, so a reopen needs no footer read. *)
val index_handle : t -> int * int

val filter_handle : t -> int * int
val prefix_len : t -> int

(** Actual decoded resident size of the open table (index + filter) as
    captured at first open — exact, unlike size estimates derived from
    [bloom_bits_per_key]. *)
val resident_table_bytes : t -> int

val index_bytes : t -> int
val filter_bytes : t -> int

(** In-memory footprint of the summary itself (the packed samples plus
    fixed bookkeeping), accounted by {!Table_cache.resident_bytes}. *)
val size_bytes : t -> int

val nsamples : t -> int

(** [slice_bytes t] is the modeled size of one inter-sample index slice —
    the bytes a summary-guided reopen actually needs from the index
    block. *)
val slice_bytes : t -> int

(** Decoded samples, oldest first (tests and diagnostics). *)
val samples : t -> (string * (int * int)) list
