(** Debt-keyed write throttling, shared by the LSM and FLSM engines.

    LevelDB-lineage stores pace foreground writes with a cliff: once L0
    accumulates [l0_slowdown] files every write pays a fixed penalty, and
    past [l0_stop] it is treated as a hard stop.  Luo & Carey show the
    resulting p99.9 write latency under sustained ingest is governed by
    exactly this shape — load oscillates between full speed and the
    penalty, so windowed throughput swings while the compaction debt that
    caused the stall is barely affected.

    [Token_bucket] replaces the cliff with a smooth controller.  The
    writer owns a budget of [throttle_burst_entries] tokens (one token
    admits one entry).  The bucket refills on the simulated clock at a
    rate keyed to {e compaction debt} — L0 files plus the scheduler's
    backlog bytes, normalised to memtable units:

    {v
      debt      x = l0_files + backlog_bytes / memtable_bytes
      severity  sev(x) = max 0 ((x - l0_slowdown) / (l0_stop - l0_slowdown))
      delay/entry   d(x) = slowdown_stall_ns * sev(x)
      refill rate   1 / d(x) entries per ns     (unlimited when d = 0)
    v}

    Below the slowdown threshold the bucket is always full and writes are
    free; at exactly the stop threshold each entry costs the full seed
    penalty; between and beyond, the delay ramps linearly — there is no
    discontinuity for load to oscillate around.  A group short on tokens
    stalls for [deficit * d] and the bucket does not accrue tokens over
    the stall (the stall time was already spent waiting).

    Stall attribution splits at the Slowdown→Stop boundary: of each
    entry's delay [d], the first [slowdown_stall_ns] is slowdown time and
    any excess — delay the cliff model would only reach past [l0_stop] —
    is stop time, so a single stall that crosses the boundary lands in
    both counters instead of whichever kind happened to hold at stall
    start.

    The controller only ever charges the simulated clock: verdicts never
    touch store bytes, so on-disk state is byte-identical across throttle
    modes. *)

module O = Options

(** The back-pressure signal sampled at a commit: L0 files not yet pushed
    down, jobs pending in the compaction queue, and their estimated
    bytes. *)
type debt = {
  l0_files : int;
  pending_jobs : int;
  backlog_bytes : int;
}

(** Stall already split by threshold attribution; total is the time to
    charge the clock. *)
type verdict = {
  slowdown_ns : float;
  stop_ns : float;
}

let no_stall = { slowdown_ns = 0.0; stop_ns = 0.0 }
let total_ns v = v.slowdown_ns +. v.stop_ns

type t = {
  mode : O.throttle;
  slowdown_files : int;
  stop_files : int;
  stall_ns : float;  (** per-entry delay at the stop threshold *)
  burst : float;  (** bucket capacity, entries *)
  debt_unit_bytes : int;  (** backlog bytes worth one L0 file of debt *)
  mutable tokens : float;
  mutable last_refill_ns : float;
}

let create (opts : O.t) =
  {
    mode = opts.O.throttle;
    slowdown_files = opts.O.l0_slowdown;
    stop_files = opts.O.l0_stop;
    stall_ns = opts.O.slowdown_stall_ns;
    burst = float_of_int (max 1 opts.O.throttle_burst_entries);
    debt_unit_bytes = max 1 opts.O.memtable_bytes;
    tokens = float_of_int (max 1 opts.O.throttle_burst_entries);
    last_refill_ns = 0.0;
  }

let mode t = t.mode
let tokens t = t.tokens

let debt_points t d =
  float_of_int d.l0_files
  +. (float_of_int d.backlog_bytes /. float_of_int t.debt_unit_bytes)

(** [delay_ns t debt] is the modeled per-entry admission delay at [debt]:
    0 below the slowdown threshold, [slowdown_stall_ns] at the stop
    threshold, ramping linearly between and beyond. *)
let delay_ns t d =
  let s = float_of_int t.slowdown_files
  and p = float_of_int t.stop_files in
  let span = Float.max 1.0 (p -. s) in
  t.stall_ns *. Float.max 0.0 ((debt_points t d -. s) /. span)

(* of each entry's delay, the first [stall_ns] is slowdown territory;
   excess only exists past the stop threshold *)
let split t ~per_entry_ns ~entries =
  if per_entry_ns <= t.stall_ns then
    { slowdown_ns = entries *. per_entry_ns; stop_ns = 0.0 }
  else
    {
      slowdown_ns = entries *. t.stall_ns;
      stop_ns = entries *. (per_entry_ns -. t.stall_ns);
    }

(** [throttle t ~now_ns ~debt ~cost] decides the stall for a write group
    of [cost] entries committing at simulated time [now_ns] under [debt].
    The caller charges {!total_ns} of the verdict to its clock (and owes
    the controller nothing else: token state is updated here). *)
let throttle t ~now_ns ~debt ~cost =
  match t.mode with
  | O.Unthrottled -> no_stall
  | O.Cliff ->
    (* seed model: fixed penalty per stalled group, binary attribution
       from the file-count backlog at commit time *)
    let points = debt.l0_files + debt.pending_jobs in
    if points < t.slowdown_files then no_stall
    else if points >= t.stop_files then
      { slowdown_ns = 0.0; stop_ns = t.stall_ns }
    else { slowdown_ns = t.stall_ns; stop_ns = 0.0 }
  | O.Token_bucket ->
    let d = delay_ns t debt in
    if d <= 0.0 then begin
      (* debt below the slowdown threshold: free admission, full bucket *)
      t.tokens <- t.burst;
      t.last_refill_ns <- now_ns;
      no_stall
    end
    else begin
      let dt = Float.max 0.0 (now_ns -. t.last_refill_ns) in
      t.tokens <- Float.min t.burst (t.tokens +. (dt /. d));
      t.last_refill_ns <- now_ns;
      let cost = float_of_int (max 0 cost) in
      if t.tokens >= cost then begin
        t.tokens <- t.tokens -. cost;
        no_stall
      end
      else begin
        let deficit = cost -. t.tokens in
        t.tokens <- 0.0;
        (* the stall advances the clock; accruing tokens over it would
           hand the next group the time this one already spent waiting *)
        t.last_refill_ns <- now_ns +. (deficit *. d);
        split t ~per_entry_ns:d ~entries:deficit
      end
    end
