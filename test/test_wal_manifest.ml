(* Tests for the write-ahead log and MANIFEST. *)

module Wal = Pdb_wal.Wal
module Manifest = Pdb_manifest.Manifest
module Env = Pdb_simio.Env

let check = Alcotest.check

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_wal_roundtrip () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  let records = [ "first"; "second record"; ""; "third" ] in
  List.iter (Wal.Writer.add_record w) records;
  Wal.Writer.close w;
  let got, report = Wal.Reader.read_all env "log" in
  check Alcotest.(list string) "records" records got;
  check Alcotest.int "records_read" (List.length records)
    report.Wal.Reader.records_read;
  check Alcotest.int "no bytes dropped" 0 report.Wal.Reader.bytes_dropped;
  check Alcotest.string "clean stop" "clean"
    (Wal.Reader.stop_reason_name report.Wal.Reader.stop)

let test_wal_large_record_fragments () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  (* larger than two blocks: forces FIRST/MIDDLE/LAST *)
  let big = String.init 80_000 (fun i -> Char.chr (i mod 256)) in
  Wal.Writer.add_record w "before";
  Wal.Writer.add_record w big;
  Wal.Writer.add_record w "after";
  Wal.Writer.close w;
  check Alcotest.(list string) "fragmented roundtrip" [ "before"; big; "after" ]
    (fst (Wal.Reader.read_all env "log"))

let test_wal_block_boundary () =
  (* records sized to land a header exactly at the block boundary *)
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  let records =
    List.init 40 (fun i -> String.make (1000 + i) (Char.chr (65 + (i mod 26))))
  in
  List.iter (Wal.Writer.add_record w) records;
  Wal.Writer.close w;
  check Alcotest.(list string) "boundary roundtrip" records
    (fst (Wal.Reader.read_all env "log"))

let test_wal_truncated_tail_dropped () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  Wal.Writer.add_record w "durable-1";
  Wal.Writer.add_record w "durable-2";
  Wal.Writer.sync w;
  Wal.Writer.add_record w "volatile";
  Env.crash env;
  check Alcotest.(list string) "synced records survive"
    [ "durable-1"; "durable-2" ]
    (fst (Wal.Reader.read_all env "log"))

let test_wal_corrupt_crc_stops () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  Wal.Writer.add_record w "good";
  Wal.Writer.add_record w "evil";
  Wal.Writer.close w;
  (* flip a byte inside the second record's payload *)
  let data = Env.read_all env "log" ~hint:Pdb_simio.Device.Sequential_read in
  let bytes = Bytes.of_string data in
  let target = String.length data - 1 in
  Bytes.set bytes target
    (Char.chr (Char.code (Bytes.get bytes target) lxor 0xff));
  let w2 = Env.create_file env "log" in
  Env.append w2 (Bytes.to_string bytes);
  let got, report = Wal.Reader.read_all env "log" in
  check Alcotest.(list string) "reader stops at corruption" [ "good" ] got;
  check Alcotest.string "stop reason" "bad-crc"
    (Wal.Reader.stop_reason_name report.Wal.Reader.stop);
  check Alcotest.bool "bytes accounted" true
    (report.Wal.Reader.bytes_dropped > 0)

(* A record fragmented across the 32 KB block boundary, torn mid-fragment
   by a crash: the FIRST fragment survives in block 0, the continuation in
   block 1 is cut short.  The reader must drop the whole record cleanly and
   say so in the report. *)
let test_wal_torn_mid_fragment () =
  let env = Env.create () in
  let w = Wal.Writer.create env "log" in
  Wal.Writer.add_record w "before";
  (* spans blocks 0..2: FIRST fills block 0, MIDDLE fills block 1 *)
  let big = String.init 80_000 (fun i -> Char.chr (i mod 256)) in
  Wal.Writer.add_record w big;
  Wal.Writer.close w;
  let data = Env.read_all env "log" ~hint:Pdb_simio.Device.Sequential_read in
  (* tear inside block 1's MIDDLE fragment *)
  let torn = String.sub data 0 40_000 in
  let w2 = Env.create_file env "log" in
  Env.append w2 torn;
  Env.close w2;
  let got, report = Wal.Reader.read_all env "log" in
  check Alcotest.(list string) "only the complete record" [ "before" ] got;
  check Alcotest.string "stop reason" "torn-fragment"
    (Wal.Reader.stop_reason_name report.Wal.Reader.stop);
  check Alcotest.bool "orphaned FIRST fragment counted" true
    (report.Wal.Reader.orphan_fragments >= 1);
  (* every byte of the torn record is accounted for: 40_000 minus the
     complete first record and its header and the two fragment headers *)
  check Alcotest.bool "dropped bytes cover the torn record" true
    (report.Wal.Reader.bytes_dropped > 30_000)

(* Raw MIDDLE/LAST fragments with no preceding FIRST: the signature of a
   log whose head was lost.  They must be dropped and counted, not
   silently skipped, and reading must continue past them. *)
let test_wal_orphan_fragments () =
  let env = Env.create () in
  let emit_raw w rtype fragment =
    let body = String.make 1 (Char.chr rtype) ^ fragment in
    let crc = Pdb_util.Crc32c.masked (Pdb_util.Crc32c.string body) in
    let buf = Buffer.create 64 in
    Pdb_util.Varint.put_fixed32 buf crc;
    Buffer.add_char buf (Char.chr (String.length fragment land 0xff));
    Buffer.add_char buf (Char.chr ((String.length fragment lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr rtype);
    Buffer.add_string buf fragment;
    Env.append w (Buffer.contents buf)
  in
  let w = Env.create_file env "log" in
  emit_raw w 3 "orphan-middle";
  emit_raw w 4 "orphan-last";
  emit_raw w 1 "good";
  Env.close w;
  let got, report = Wal.Reader.read_all env "log" in
  check Alcotest.(list string) "orphans dropped, good kept" [ "good" ] got;
  check Alcotest.int "orphan count" 2 report.Wal.Reader.orphan_fragments;
  check Alcotest.int "orphan bytes"
    ((7 + String.length "orphan-middle") + (7 + String.length "orphan-last"))
    report.Wal.Reader.bytes_dropped;
  check Alcotest.string "clean otherwise" "clean"
    (Wal.Reader.stop_reason_name report.Wal.Reader.stop)

let prop_wal_roundtrip =
  qtest "wal roundtrip (random records)"
    QCheck.(list (string_of_size QCheck.Gen.(0 -- 500)))
    (fun records ->
      let env = Env.create () in
      let w = Wal.Writer.create env "log" in
      List.iter (Wal.Writer.add_record w) records;
      Wal.Writer.close w;
      fst (Wal.Reader.read_all env "log") = records)

(* ---------- Manifest ---------- *)

let meta number : Pdb_sstable.Table.meta =
  {
    Pdb_sstable.Table.number;
    file_size = 1000 + number;
    entries = 10 * number;
    smallest = Printf.sprintf "small%d" number;
    largest = Printf.sprintf "large%d" number;
  }

let test_edit_roundtrip () =
  let e = Manifest.empty_edit () in
  e.Manifest.log_number <- Some 7;
  e.Manifest.next_file_number <- Some 42;
  e.Manifest.last_sequence <- Some 99999;
  e.Manifest.added_files <- [ (0, meta 1); (2, meta 5) ];
  e.Manifest.deleted_files <- [ (1, 3) ];
  e.Manifest.added_guards <- [ (1, "guard-a"); (3, "guard-b") ];
  e.Manifest.deleted_guards <- [ (2, "guard-c") ];
  let e' = Manifest.decode_edit (Manifest.encode_edit e) in
  Alcotest.(check (option int)) "log" (Some 7) e'.Manifest.log_number;
  Alcotest.(check (option int)) "next file" (Some 42)
    e'.Manifest.next_file_number;
  Alcotest.(check (option int)) "last seq" (Some 99999)
    e'.Manifest.last_sequence;
  Alcotest.(check int) "added files" 2 (List.length e'.Manifest.added_files);
  (let lvl, m = List.nth e'.Manifest.added_files 1 in
   Alcotest.(check int) "level" 2 lvl;
   Alcotest.(check int) "number" 5 m.Pdb_sstable.Table.number;
   Alcotest.(check string) "smallest" "small5" m.Pdb_sstable.Table.smallest);
  Alcotest.(check (list (pair int int))) "deleted" [ (1, 3) ]
    e'.Manifest.deleted_files;
  Alcotest.(check (list (pair int string))) "guards"
    [ (1, "guard-a"); (3, "guard-b") ]
    e'.Manifest.added_guards;
  Alcotest.(check (list (pair int string))) "deleted guards"
    [ (2, "guard-c") ]
    e'.Manifest.deleted_guards

let test_manifest_create_recover () =
  let env = Env.create () in
  let e1 = Manifest.empty_edit () in
  e1.Manifest.next_file_number <- Some 2;
  let m = Manifest.create env ~dir:"db" ~number:1 ~edits:[ e1 ] in
  let e2 = Manifest.empty_edit () in
  e2.Manifest.added_files <- [ (0, meta 9) ];
  Manifest.append m e2;
  match Manifest.recover env ~dir:"db" with
  | None -> Alcotest.fail "expected manifest"
  | Some (name, edits) ->
    Alcotest.(check bool) "name points at manifest" true
      (String.length name > 0);
    Alcotest.(check int) "two edits" 2 (List.length edits);
    let last = List.nth edits 1 in
    Alcotest.(check int) "recovered file add" 9
      (snd (List.hd last.Manifest.added_files)).Pdb_sstable.Table.number

let test_manifest_survives_crash () =
  let env = Env.create () in
  let m = Manifest.create env ~dir:"db" ~number:1 ~edits:[] in
  let e = Manifest.empty_edit () in
  e.Manifest.last_sequence <- Some 5;
  Manifest.append m e;
  (* appended edits are synced; crash must preserve them *)
  Env.crash env;
  match Manifest.recover env ~dir:"db" with
  | None -> Alcotest.fail "manifest lost"
  | Some (_, edits) ->
    Alcotest.(check int) "edit survives crash" 1 (List.length edits)

let test_manifest_missing () =
  let env = Env.create () in
  Alcotest.(check bool) "no CURRENT -> None" true
    (Manifest.recover env ~dir:"db" = None)

(* ---------- Repair ---------- *)

let test_sst_number_rejects_non_decimal () =
  let n = Pdb_manifest.Repair.sst_number ~dir:"db" in
  Alcotest.(check (option int)) "decimal" (Some 31) (n "db/000031.sst");
  (* int_of_string would happily parse these as 31 and 10 *)
  Alcotest.(check (option int)) "hex rejected" None (n "db/0x1f.sst");
  Alcotest.(check (option int)) "underscore rejected" None (n "db/1_0.sst");
  Alcotest.(check (option int)) "sign rejected" None (n "db/+1.sst");
  Alcotest.(check (option int)) "wrong suffix" None (n "db/000031.log");
  Alcotest.(check (option int)) "wrong dir" None (n "other/000031.sst")

(* Crash, corrupt CURRENT beyond recovery, drop a decoy non-decimal .sst
   next to the real tables, repair, and reopen: everything flushed before
   the crash must come back, and the decoy must not be "repaired" in. *)
let test_repair_crash_corrupt_current () =
  let module L = Pdb_lsm.Lsm_store in
  let env = Env.create () in
  let opts =
    { (Pdb_kvs.Options.hyperleveldb ()) with
      Pdb_kvs.Options.memtable_bytes = 2 * 1024 }
  in
  let db = L.open_store opts ~env ~dir:"db" in
  for i = 0 to 199 do
    L.put db (Printf.sprintf "key%04d" i) (Printf.sprintf "val%04d" i)
  done;
  L.flush db;
  Env.crash env;
  (* CURRENT now points at garbage *)
  let cur = Env.create_file env "db/CURRENT" in
  Env.append cur "MANIFEST-999999";
  Env.sync cur;
  Env.close cur;
  let decoy = Env.create_file env "db/0x1f.sst" in
  Env.append decoy "not an sstable";
  Env.sync decoy;
  Env.close decoy;
  Alcotest.(check bool) "recovery refuses garbage CURRENT" true
    (Manifest.recover env ~dir:"db" = None);
  let report = Pdb_manifest.Repair.repair env ~dir:"db" in
  Alcotest.(check bool) "real tables recovered" true
    (report.Pdb_manifest.Repair.tables_recovered > 0);
  let db2 = L.open_store opts ~env ~dir:"db" in
  L.check_invariants db2;
  for i = 0 to 199 do
    check
      Alcotest.(option string)
      (Printf.sprintf "repaired key%04d" i)
      (Some (Printf.sprintf "val%04d" i))
      (L.get db2 (Printf.sprintf "key%04d" i))
  done;
  L.close db2

let () =
  Alcotest.run "wal-manifest"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "large record" `Quick
            test_wal_large_record_fragments;
          Alcotest.test_case "block boundary" `Quick test_wal_block_boundary;
          Alcotest.test_case "truncated tail" `Quick
            test_wal_truncated_tail_dropped;
          Alcotest.test_case "corrupt crc" `Quick test_wal_corrupt_crc_stops;
          Alcotest.test_case "torn mid-fragment" `Quick
            test_wal_torn_mid_fragment;
          Alcotest.test_case "orphan fragments" `Quick
            test_wal_orphan_fragments;
          prop_wal_roundtrip;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "edit roundtrip" `Quick test_edit_roundtrip;
          Alcotest.test_case "create/recover" `Quick
            test_manifest_create_recover;
          Alcotest.test_case "crash durability" `Quick
            test_manifest_survives_crash;
          Alcotest.test_case "missing" `Quick test_manifest_missing;
        ] );
      ( "repair",
        [
          Alcotest.test_case "sst_number digits only" `Quick
            test_sst_number_rejects_non_decimal;
          Alcotest.test_case "crash + corrupt CURRENT" `Quick
            test_repair_crash_corrupt_current;
        ] );
    ]
