(** Measurement and reporting helpers shared by the benchmark harness and
    the repro CLI. *)

module Dyn = Pdb_kvs.Store_intf
module Clock = Pdb_simio.Clock
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter

type phase = {
  ops : int;
  elapsed_ns : float;
  kops : float;
  bytes_written : int;
  bytes_read : int;
}

(** [measure store ops f] runs [f ()] and reports modeled throughput and IO
    for the phase. *)
let measure (store : Dyn.dyn) ops f =
  let clock = Env.clock store.Dyn.d_env in
  let io0 = Pdb_simio.Io_stats.snapshot (Env.stats store.Dyn.d_env) in
  let c0 = Clock.snapshot clock in
  f ();
  let c1 = Clock.snapshot clock in
  let io1 = Pdb_simio.Io_stats.snapshot (Env.stats store.Dyn.d_env) in
  let delta = Clock.diff c1 c0 in
  let elapsed = Clock.elapsed_ns delta in
  let io = Pdb_simio.Io_stats.diff io1 io0 in
  {
    ops;
    elapsed_ns = elapsed;
    kops =
      (if elapsed <= 0.0 then 0.0
       else float_of_int ops /. (elapsed /. 1e9) /. 1000.0);
    bytes_written = io.Pdb_simio.Io_stats.bytes_written;
    bytes_read = io.Pdb_simio.Io_stats.bytes_read;
  }

(* ---------- canonical workload phases (db_bench-style) ---------- *)

let key_of i = Printf.sprintf "key%010d" i
let value_of rng n = Pdb_util.Rng.alpha rng n

(** [fill_random store ~n ~value_bytes ~seed] inserts [n] keys in random
    order. *)
let fill_random (store : Dyn.dyn) ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  measure store n (fun () ->
      Array.iter
        (fun i -> store.Dyn.d_put (key_of i) (value_of rng value_bytes))
        perm)

(** [fill_seq store ~n ~value_bytes ~seed] inserts [n] keys in ascending
    order — LSM's trivial-move fast path, FLSM's worst case (§5.2). *)
let fill_seq (store : Dyn.dyn) ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  measure store n (fun () ->
      for i = 0 to n - 1 do
        store.Dyn.d_put (key_of i) (value_of rng value_bytes)
      done)

(** [update_random store ~n ~value_bytes ~seed] overwrites every existing
    key once, in random order. *)
let update_random (store : Dyn.dyn) ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  measure store n (fun () ->
      Array.iter
        (fun i -> store.Dyn.d_put (key_of i) (value_of rng value_bytes))
        perm)

(** [read_random store ~n ~ops ~seed] issues [ops] point lookups over the
    [n]-key space. *)
let read_random (store : Dyn.dyn) ~n ~ops ~seed =
  let rng = Pdb_util.Rng.create (seed + 1) in
  measure store ops (fun () ->
      for _ = 1 to ops do
        ignore (store.Dyn.d_get (key_of (Pdb_util.Rng.int rng n)))
      done)

(** [seek_random store ~n ~ops ~nexts ~seed] issues [ops] seeks, each
    followed by [nexts] next() calls (a range query).  A short untimed
    warmup first brings the table cache to steady state, as the paper's
    10M-operation runs do implicitly. *)
let seek_random ?(warmup = 2_000) (store : Dyn.dyn) ~n ~ops ~nexts ~seed =
  let wrng = Pdb_util.Rng.create (seed + 11) in
  for _ = 1 to warmup do
    let it = store.Dyn.d_iterator () in
    it.Iter.seek (key_of (Pdb_util.Rng.int wrng n))
  done;
  let rng = Pdb_util.Rng.create (seed + 2) in
  measure store ops (fun () ->
      for _ = 1 to ops do
        let it = store.Dyn.d_iterator () in
        it.Iter.seek (key_of (Pdb_util.Rng.int rng n));
        let steps = ref 0 in
        while it.Iter.valid () && !steps < nexts do
          ignore (it.Iter.key ());
          it.Iter.next ();
          incr steps
        done
      done)

(** [delete_random store ~n ~seed] deletes every key once, random order. *)
let delete_random (store : Dyn.dyn) ~n ~seed =
  let rng = Pdb_util.Rng.create (seed + 3) in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  measure store n (fun () ->
      Array.iter (fun i -> store.Dyn.d_delete (key_of i)) perm)

(* ---------- multi-client phases (foreground lanes + group commit) ------ *)

module Mc = Pdb_kvs.Multi_client

(** [mc_run store ~clients ops] drives [ops] through the multi-client
    executor and reports both the phase (throughput, IO) and the
    executor's group-commit result. *)
let mc_run ?latency (store : Dyn.dyn) ~clients ops =
  let io0 = Pdb_simio.Io_stats.snapshot (Env.stats store.Dyn.d_env) in
  let r = Mc.run ?latency store ~clients ops in
  let io1 = Pdb_simio.Io_stats.snapshot (Env.stats store.Dyn.d_env) in
  let io = Pdb_simio.Io_stats.diff io1 io0 in
  let elapsed = r.Mc.elapsed_ns in
  ( {
      ops = r.Mc.ops;
      elapsed_ns = elapsed;
      kops =
        (if elapsed <= 0.0 then 0.0
         else float_of_int r.Mc.ops /. (elapsed /. 1e9) /. 1000.0);
      bytes_written = io.Pdb_simio.Io_stats.bytes_written;
      bytes_read = io.Pdb_simio.Io_stats.bytes_read;
    },
    r )

let put_op key value =
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put b key value;
  Mc.Write b

(** [mc_fill_random] — the write-only multithreaded workload: [n] puts in
    random key order across [clients] lanes. *)
let mc_fill_random ?latency (store : Dyn.dyn) ~clients ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  let ops =
    Array.to_list
      (Array.map (fun i -> put_op (key_of i) (value_of rng value_bytes)) perm)
  in
  mc_run ?latency store ~clients ops

(** [mc_read_random] — the read-only multithreaded workload: [ops] point
    lookups across [clients] lanes. *)
let mc_read_random ?latency (store : Dyn.dyn) ~clients ~n ~ops ~seed =
  let rng = Pdb_util.Rng.create (seed + 1) in
  let acc = ref [] in
  for _ = 1 to ops do
    let key = key_of (Pdb_util.Rng.int rng n) in
    acc := Mc.Read (fun () -> ignore (store.Dyn.d_get key)) :: !acc
  done;
  mc_run ?latency store ~clients (List.rev !acc)

(** [mc_mixed] — the mixed multithreaded workload: 50% reads / 50%
    overwrites, uniform over the [n]-key space. *)
let mc_mixed ?latency (store : Dyn.dyn) ~clients ~n ~ops ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create (seed + 2) in
  let acc = ref [] in
  for _ = 1 to ops do
    let op =
      if Pdb_util.Rng.int rng 2 = 0 then begin
        let key = key_of (Pdb_util.Rng.int rng n) in
        Mc.Read (fun () -> ignore (store.Dyn.d_get key))
      end
      else put_op (key_of (Pdb_util.Rng.int rng n)) (value_of rng value_bytes)
    in
    acc := op :: !acc
  done;
  mc_run ?latency store ~clients (List.rev !acc)

(* ---------- reporting ---------- *)

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

(** Machine-readable results collector behind [bench/main.exe --json]:
    every printed table is mirrored here structurally, and experiments
    push named numeric metrics (ops/s, write-amp, group-commit stats);
    {!Json.write_file} dumps everything as BENCH.json so the perf
    trajectory is trackable across PRs. *)
module Json = struct
  type table = {
    title : string;
    header : string list;
    rows : string list list;
  }

  let enabled = ref false
  let current = ref "global"

  (* accumulated in reverse arrival order, tagged with the experiment id
     that was current when they were recorded *)
  let tables : (string * table) list ref = ref []
  let metrics : (string * (string * string * float)) list ref = ref []

  let enable () = enabled := true
  let set_context id = current := id

  let record_table ~title ~header rows =
    if !enabled then tables := (!current, { title; header; rows }) :: !tables

  (** [metric ~store name value] attaches one numeric result to the
      current experiment. *)
  let metric ~store name value =
    if !enabled then metrics := (!current, (store, name, value)) :: !metrics

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let write_file path =
    let tables = List.rev !tables and metrics = List.rev !metrics in
    (* experiment ids in first-appearance order *)
    let ids = ref [] in
    List.iter
      (fun id -> if not (List.mem id !ids) then ids := id :: !ids)
      (List.map fst tables @ List.map fst metrics);
    let ids = List.rev !ids in
    let b = Buffer.create 65536 in
    let str s = Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s)) in
    let strings sep f xs =
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b sep;
          f x)
        xs
    in
    Buffer.add_string b "{\n  \"experiments\": [";
    strings ","
      (fun id ->
        Buffer.add_string b "\n    {\n      \"id\": ";
        str id;
        Buffer.add_string b ",\n      \"tables\": [";
        strings ","
          (fun (_, t) ->
            Buffer.add_string b "\n        {\"title\": ";
            str t.title;
            Buffer.add_string b ", \"header\": [";
            strings ", " str t.header;
            Buffer.add_string b "], \"rows\": [";
            strings ", "
              (fun row ->
                Buffer.add_char b '[';
                strings ", " str row;
                Buffer.add_char b ']')
              t.rows;
            Buffer.add_string b "]}")
          (List.filter (fun (i, _) -> i = id) tables);
        Buffer.add_string b "],\n      \"metrics\": [";
        strings ","
          (fun (_, (store, name, value)) ->
            Buffer.add_string b "\n        {\"store\": ";
            str store;
            Buffer.add_string b ", \"name\": ";
            str name;
            Buffer.add_string b
              (Printf.sprintf ", \"value\": %.6g}" value))
          (List.filter (fun (i, _) -> i = id) metrics);
        Buffer.add_string b "]\n    }")
      ids;
    Buffer.add_string b "\n  ]\n}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc
end

(** Render rows as an aligned table with a header (mirrored into the
    {!Json} collector when enabled). *)
let print_table ~title ~header rows =
  Json.record_table ~title ~header rows;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  Printf.printf "\n== %s ==\n" title;
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let fmt_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

(** One-line background-scheduler summary for a store: jobs drained, peak
    queue depth and backlog, footprint conflicts, per-worker utilization
    (busy time over the background completion horizon), and stall-time
    attribution.  Empty for engines without scheduled background work. *)
let scheduler_summary (store : Dyn.dyn) =
  let st = store.Dyn.d_stats () in
  if st.Pdb_kvs.Engine_stats.compaction_jobs = 0 then ""
  else begin
    let horizon = (Env.clock store.Dyn.d_env).Clock.bg_horizon_ns in
    let util =
      Array.to_list st.Pdb_kvs.Engine_stats.worker_busy_ns
      |> List.map (fun busy ->
             Printf.sprintf "%.0f%%"
               (if horizon <= 0.0 then 0.0 else 100.0 *. busy /. horizon))
      |> String.concat " "
    in
    let flush =
      (* busy time on the reserved flush lane(s), when the engines run
         one — it is also the last entry of [util] *)
      if st.Pdb_kvs.Engine_stats.flush_busy_ns > 0.0 then
        Printf.sprintf " flush=%.1fms"
          (st.Pdb_kvs.Engine_stats.flush_busy_ns /. 1e6)
      else ""
    in
    Printf.sprintf
      "jobs=%d queue<=%d backlog<=%.1fMB conflicts=%d util=[%s]%s \
       stall(slow/stop)=%.1f/%.1fms"
      st.Pdb_kvs.Engine_stats.compaction_jobs
      st.Pdb_kvs.Engine_stats.compaction_queue_peak
      (mb st.Pdb_kvs.Engine_stats.compaction_backlog_peak_bytes)
      st.Pdb_kvs.Engine_stats.compaction_serialized_jobs util flush
      (st.Pdb_kvs.Engine_stats.stall_slowdown_ns /. 1e6)
      (st.Pdb_kvs.Engine_stats.stall_stop_ns /. 1e6)
  end

(** One line of per-trigger compaction counters ("flush=12x/3.4MB
    l0=5x/..."), or "" when nothing ran.  Runs and estimated bytes keyed
    by {!Pdb_compaction.Job.trigger}, aggregated across shards. *)
let trigger_summary (store : Dyn.dyn) =
  let st = store.Dyn.d_stats () in
  match st.Pdb_kvs.Engine_stats.compaction_by_trigger with
  | [] -> ""
  | by_trigger ->
    List.sort (fun (a, _) (b, _) -> String.compare a b) by_trigger
    |> List.map (fun (trig, (runs, bytes)) ->
           Printf.sprintf "%s=%dx/%.1fMB" trig runs (mb bytes))
    |> String.concat " "

(** Write amplification of a store at this instant: device writes over user
    payload. *)
let write_amp (store : Dyn.dyn) =
  let st = store.Dyn.d_stats () in
  let io = Env.stats store.Dyn.d_env in
  if st.Pdb_kvs.Engine_stats.user_bytes_written = 0 then 0.0
  else
    float_of_int io.Pdb_simio.Io_stats.bytes_written
    /. float_of_int st.Pdb_kvs.Engine_stats.user_bytes_written
