test/test_simio.mli:
