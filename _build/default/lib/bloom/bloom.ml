(** Bloom filters.

    PebblesDB attaches one filter to each sstable (§4.1) so that a get()
    examining the several overlapping sstables of a guard only reads the
    (with high probability) one table that actually contains the key.
    Standard Kirsch–Mitzenmacher double hashing over MurmurHash3, matching
    LevelDB's bloom strategy. *)

type t = {
  bits : Bytes.t;
  nbits : int;
  k : int; (* number of probes *)
  mutable nkeys : int;
}

(** [create ~bits_per_key n] sizes a filter for [n] expected keys.
    [bits_per_key = 10] gives ~1 % false positives (LevelDB's default). *)
let create ?(bits_per_key = 10) n =
  let nbits = max 64 (n * bits_per_key) in
  let nbytes = (nbits + 7) / 8 in
  let k = max 1 (min 30 (int_of_float (float_of_int bits_per_key *. 0.69))) in
  { bits = Bytes.make nbytes '\000'; nbits = nbytes * 8; k; nkeys = 0 }

let set_bit b i =
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))

let get_bit b i =
  let byte = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get b byte) land (1 lsl bit) <> 0

let probes t key =
  let h1 = Pdb_util.Murmur3.hash32 ~seed:0xbc9f1d34 key in
  let h2 = Pdb_util.Murmur3.hash32 ~seed:0x7a2d187e key in
  let rec go i acc =
    if i = t.k then acc
    else
      let h = (h1 + (i * h2)) land max_int in
      go (i + 1) ((h mod t.nbits) :: acc)
  in
  go 0 []

(** [add t key] inserts a key. *)
let add t key =
  List.iter (fun i -> set_bit t.bits i) (probes t key);
  t.nkeys <- t.nkeys + 1

(** [mem t key] is [false] only if the key was never added; may return
    [true] spuriously (false positive). *)
let mem t key = List.for_all (fun i -> get_bit t.bits i) (probes t key)

(** [size_bytes t] is the in-memory footprint — reported in the Table 5.4
    memory-consumption experiment. *)
let size_bytes t = Bytes.length t.bits

let nkeys t = t.nkeys

(** [encode t] serialises the filter (bit array + probe count), for storing
    filters alongside sstables. *)
let encode t =
  let buf = Buffer.create (Bytes.length t.bits + 8) in
  Pdb_util.Varint.put_uvarint buf t.k;
  Pdb_util.Varint.put_uvarint buf t.nkeys;
  Pdb_util.Varint.put_length_prefixed buf (Bytes.to_string t.bits);
  Buffer.contents buf

let decode s =
  let k, pos = Pdb_util.Varint.get_uvarint s 0 in
  let nkeys, pos = Pdb_util.Varint.get_uvarint s pos in
  let bits, _ = Pdb_util.Varint.get_length_prefixed s pos in
  { bits = Bytes.of_string bits; nbits = String.length bits * 8; k; nkeys }
