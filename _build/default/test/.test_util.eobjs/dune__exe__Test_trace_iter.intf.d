test/test_trace_iter.mli:
