test/test_bloom_skiplist.ml: Alcotest List Map Pdb_bloom Pdb_skiplist Printf QCheck QCheck_alcotest String
