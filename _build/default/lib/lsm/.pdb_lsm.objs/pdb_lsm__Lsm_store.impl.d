lib/lsm/lsm_store.ml: Array Buffer Int List Pdb_kvs Pdb_manifest Pdb_simio Pdb_sstable Pdb_wal Printf String
