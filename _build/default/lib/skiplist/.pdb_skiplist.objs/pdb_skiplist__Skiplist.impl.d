lib/skiplist/skiplist.ml: Array List Option Pdb_util
