(** WiredTiger-like storage engine: checkpoints + journaling (§5.4).

    MongoDB's default engine is not an LSM: it applies writes to an
    in-memory B+-tree, journals them to a sequential log, and periodically
    checkpoints dirty pages to disk.  This shim reproduces exactly that IO
    pattern over {!Bptree} in buffered mode: sequential journal appends per
    write, page rewrites at each checkpoint (triggered when the journal
    reaches the configured log size — the paper configures a 16 MB log). *)

module Env = Pdb_simio.Env
module O = Pdb_kvs.Options

type t = {
  opts : O.t;
  env : Env.t;
  dir : string;
  tree : Bptree.t;
  mutable journal : Pdb_wal.Wal.Writer.t;
  mutable journal_number : int;
  mutable closed : bool;
}

let journal_name dir n = Printf.sprintf "%s/journal-%06d.log" dir n

(* Journals surviving from a crashed incarnation, oldest first, with the
   highest number seen (fresh journals must be numbered above every
   survivor — recreating a survivor's name would truncate it before its
   records were replayed). *)
let surviving_journals env ~dir =
  let prefix = dir ^ "/journal-" in
  let plen = String.length prefix in
  let names =
    List.filter
      (fun name ->
        String.length name > plen
        && String.sub name 0 plen = prefix
        && Filename.check_suffix name ".log")
      (List.sort compare (Env.list env))
  in
  let max_n =
    List.fold_left
      (fun acc name ->
        let stem =
          Filename.chop_suffix
            (String.sub name plen (String.length name - plen))
            ".log"
        in
        match int_of_string_opt stem with Some n -> max acc n | None -> acc)
      (-1) names
  in
  (names, max_n)

let open_store (opts : O.t) ~env ~dir =
  let tree = Bptree.open_store ~mode:Bptree.Buffered opts ~env ~dir in
  let journals, max_n = surviving_journals env ~dir in
  let stats = Bptree.stats tree in
  (* replay surviving journals oldest-first (crash recovery) *)
  List.iter
    (fun name ->
      let records, (report : Pdb_wal.Wal.Reader.report) =
        Pdb_wal.Wal.Reader.read_all env name
      in
      stats.Pdb_kvs.Engine_stats.wal_records_recovered <-
        stats.Pdb_kvs.Engine_stats.wal_records_recovered
        + report.Pdb_wal.Wal.Reader.records_read;
      stats.Pdb_kvs.Engine_stats.wal_bytes_dropped <-
        stats.Pdb_kvs.Engine_stats.wal_bytes_dropped
        + report.Pdb_wal.Wal.Reader.bytes_dropped;
      List.iter
        (fun record ->
          match Pdb_kvs.Write_batch.decode record with
          | exception Invalid_argument _ -> ()
          | batch, _ -> Bptree.write tree batch)
        records)
    journals;
  (* checkpoint the replayed data before retiring the journals: deleting
     first would lose acked writes to a crash during recovery *)
  Bptree.flush tree;
  List.iter (fun name -> Env.delete env name) journals;
  let journal_number = max_n + 1 in
  {
    opts;
    env;
    dir;
    tree;
    journal = Pdb_wal.Wal.Writer.create env (journal_name dir journal_number);
    journal_number;
    closed = false;
  }

let checkpoint t =
  Bptree.flush t.tree;
  Env.delete t.env (journal_name t.dir t.journal_number);
  t.journal_number <- t.journal_number + 1;
  t.journal <-
    Pdb_wal.Wal.Writer.create t.env (journal_name t.dir t.journal_number)

let maybe_checkpoint t =
  if Pdb_wal.Wal.Writer.size t.journal >= t.opts.O.memtable_bytes then
    checkpoint t

(* Group commit over the journal: records are appended per batch (the
   journal bytes never depend on the group size), batches apply in
   order with checkpoints at the same boundaries as solo writes, and —
   honouring the durability profile — one sync at the end acks the
   whole group.  A record retired by a mid-group checkpoint is durable
   in the checkpointed pages before its journal is deleted. *)
let write_group t batches =
  assert (not t.closed);
  match batches with
  | [] -> ()
  | batches ->
    (* batches still riding on the end-of-group sync; a mid-group
       checkpoint makes everything so far durable in the tree pages and
       rotates the journal, so it resets the count — crediting [n - 1]
       unconditionally would overcount elided syncs *)
    let covered = ref 0 in
    List.iter
      (fun batch ->
        Pdb_wal.Wal.Writer.add_record t.journal
          (Pdb_kvs.Write_batch.encode batch ~base_seq:0);
        Bptree.write t.tree batch;
        incr covered;
        let before = t.journal_number in
        maybe_checkpoint t;
        if t.journal_number <> before then covered := 0)
      batches;
    (* without the sync, an acked write is lost whenever a crash beats
       the next checkpoint *)
    if t.opts.O.wal_sync_writes then Pdb_wal.Wal.Writer.sync t.journal;
    let st = Bptree.stats t.tree in
    let n = List.length batches in
    st.Pdb_kvs.Engine_stats.write_groups <-
      st.Pdb_kvs.Engine_stats.write_groups + 1;
    st.Pdb_kvs.Engine_stats.write_group_batches <-
      st.Pdb_kvs.Engine_stats.write_group_batches + n;
    if t.opts.O.wal_sync_writes then
      st.Pdb_kvs.Engine_stats.group_syncs_saved <-
        st.Pdb_kvs.Engine_stats.group_syncs_saved + max 0 (!covered - 1)

let write t batch = write_group t [ batch ]

let put t k v =
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put b k v;
  write t b

let delete t k =
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.delete b k;
  write t b

let get t k = Bptree.get t.tree k
let iterator t = Bptree.iterator t.tree
let flush t = checkpoint t
let compact_all t = checkpoint t

let close t =
  checkpoint t;
  Env.delete t.env (journal_name t.dir t.journal_number);
  Bptree.close t.tree;
  t.closed <- true

let stats t = Bptree.stats t.tree
let options t = t.opts
let env t = t.env
let memory_bytes t = Bptree.memory_bytes t.tree

let describe t =
  Printf.sprintf "wiredtiger-sim (journal %dB): %s"
    (Pdb_wal.Wal.Writer.size t.journal)
    (Bptree.describe t.tree)

let check_invariants t = Bptree.check_invariants t.tree
