(** Probabilistic guard selection (§3.2, §4.4).

    A key becomes a guard by hashing: PebblesDB hashes every inserted key
    with MurmurHash and examines its trailing (least-significant) set bits.
    A key is a level-1 guard when [top_level_bits] consecutive LSBs are
    set; each deeper level relaxes the requirement by [bit_decrement] bits,
    so deeper levels have exponentially more guards.  Because selection is
    a pure function of the key, guard choice is deterministic across runs
    and across crash recovery, and — like a skip list — a key chosen at
    level [i] is a guard at every level deeper than [i]. *)

module O = Pdb_kvs.Options

(** [guard_level opts key] is [Some l] when [key] qualifies as a guard at
    levels [l .. max_levels-1], or [None] when it is an ordinary key. *)
let guard_level (opts : O.t) key =
  let hash = Pdb_util.Murmur3.hash32 key in
  let trailing = Pdb_util.Murmur3.trailing_ones hash in
  let rec find level =
    if level >= opts.O.max_levels then None
    else if trailing >= O.guard_bits opts ~level then Some level
    else find (level + 1)
  in
  find 1

(** [is_guard_at opts key ~level] tests guard-hood at one level. *)
let is_guard_at (opts : O.t) key ~level =
  match guard_level opts key with
  | Some l -> l <= level
  | None -> false
