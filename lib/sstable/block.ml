(** Sstable data/index blocks with prefix compression and restart points
    (LevelDB block format).

    Entry: [varint shared | varint non_shared | varint value_len |
    key_delta | value].  Every [restart_interval] entries the full key is
    stored and its offset recorded in the restart array, enabling binary
    search within the block. *)

let restart_interval = 16

module Builder = struct
  type t = {
    buf : Buffer.t;
    mutable restarts : int list; (* reversed *)
    mutable num_restarts : int; (* length of [restarts] *)
    mutable counter : int;
    mutable last_key : string;
    mutable entries : int;
  }

  let create () =
    { buf = Buffer.create 4096; restarts = [ 0 ]; num_restarts = 1;
      counter = 0; last_key = ""; entries = 0 }

  let shared_prefix_len a b =
    let n = min (String.length a) (String.length b) in
    let i = ref 0 in
    while !i < n && a.[!i] = b.[!i] do
      incr i
    done;
    !i

  (** [add t key value] appends an entry; keys must arrive in strictly
      ascending order under the table's comparator. *)
  let add t key value =
    let shared =
      if t.counter < restart_interval then shared_prefix_len t.last_key key
      else begin
        t.restarts <- Buffer.length t.buf :: t.restarts;
        t.num_restarts <- t.num_restarts + 1;
        t.counter <- 0;
        0
      end
    in
    let non_shared = String.length key - shared in
    Pdb_util.Varint.put_uvarint t.buf shared;
    Pdb_util.Varint.put_uvarint t.buf non_shared;
    Pdb_util.Varint.put_uvarint t.buf (String.length value);
    Buffer.add_substring t.buf key shared non_shared;
    Buffer.add_string t.buf value;
    t.last_key <- key;
    t.counter <- t.counter + 1;
    t.entries <- t.entries + 1

  let current_size_estimate t =
    Buffer.length t.buf + (4 * t.num_restarts) + 4

  let is_empty t = t.entries = 0

  (** [finish t] returns the serialised block. *)
  let finish t =
    let restarts = List.rev t.restarts in
    List.iter (fun off -> Pdb_util.Varint.put_fixed32 t.buf off) restarts;
    Pdb_util.Varint.put_fixed32 t.buf t.num_restarts;
    Buffer.contents t.buf

  let reset t =
    Buffer.clear t.buf;
    t.restarts <- [ 0 ];
    t.num_restarts <- 1;
    t.counter <- 0;
    t.last_key <- "";
    t.entries <- 0
end

(** Decoded view over a serialised block. *)
type t = {
  data : string;
  restarts_offset : int;
  num_restarts : int;
}

let decode data =
  let len = String.length data in
  if len < 4 then invalid_arg "Block.decode: too short";
  let num_restarts = Pdb_util.Varint.get_fixed32 data (len - 4) in
  let restarts_offset = len - 4 - (4 * num_restarts) in
  if restarts_offset < 0 then invalid_arg "Block.decode: corrupt restarts";
  { data; restarts_offset; num_restarts }

let size_bytes t = String.length t.data

let restart_point t i =
  Pdb_util.Varint.get_fixed32 t.data (t.restarts_offset + (4 * i))

(* Decode the entry at [pos]; returns (key, value, next_pos).  [prev_key]
   supplies the shared prefix. *)
let decode_entry t ~prev_key pos =
  let shared, pos = Pdb_util.Varint.get_uvarint t.data pos in
  let non_shared, pos = Pdb_util.Varint.get_uvarint t.data pos in
  let value_len, pos = Pdb_util.Varint.get_uvarint t.data pos in
  let key = String.sub prev_key 0 shared ^ String.sub t.data pos non_shared in
  let pos = pos + non_shared in
  let value = String.sub t.data pos value_len in
  (key, value, pos + value_len)

(** [iterator ~compare t] walks the block's entries.  [compare] orders the
    stored keys (internal-key order for data blocks). *)
let iterator ~compare t =
  (* [cur] is the current entry; [next_pos] the offset of the entry after
     it.  The first entry after a restart point has shared = 0, so decoding
     with the running previous key is always correct. *)
  let cur = ref None in
  let next_pos = ref t.restarts_offset in
  let advance () =
    if !next_pos >= t.restarts_offset then cur := None
    else begin
      let prev_key = match !cur with Some (k, _) -> k | None -> "" in
      let k, v, next = decode_entry t ~prev_key !next_pos in
      cur := Some (k, v);
      next_pos := next
    end
  in
  let seek_to_restart i =
    next_pos := restart_point t i;
    cur := None;
    advance ()
  in
  let seek_to_first () =
    if t.num_restarts = 0 then cur := None else seek_to_restart 0
  in
  let seek target =
    if t.num_restarts = 0 then cur := None
    else begin
      (* last restart whose first key is < target *)
      let lo = ref 0 and hi = ref (t.num_restarts - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        let k, _, _ = decode_entry t ~prev_key:"" (restart_point t mid) in
        if compare k target < 0 then lo := mid else hi := mid - 1
      done;
      seek_to_restart !lo;
      let rec scan () =
        match !cur with
        | Some (k, _) when compare k target < 0 ->
          advance ();
          scan ()
        | Some _ | None -> ()
      in
      scan ()
    end
  in
  let entry () =
    match !cur with
    | Some e -> e
    | None -> invalid_arg "Block.iterator: iterator is not valid"
  in
  {
    Pdb_kvs.Iter.seek_to_first;
    seek;
    next = (fun () -> if Option.is_some !cur then advance ());
    valid = (fun () -> Option.is_some !cur);
    key = (fun () -> fst (entry ()));
    value = (fun () -> snd (entry ()));
  }

(** [entries ~compare t] decodes the whole block in order — test helper. *)
let entries ~compare t = Pdb_kvs.Iter.to_list (iterator ~compare t)
