(* Unit and property tests for the util substrate. *)

open Pdb_util

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------- Varint ---------- *)

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Varint.put_uvarint buf n;
      let v, pos = Varint.get_uvarint (Buffer.contents buf) 0 in
      check Alcotest.int "value" n v;
      check Alcotest.int "consumed" (Buffer.length buf) pos)
    [ 0; 1; 127; 128; 300; 16383; 16384; 1 lsl 28; max_int ]

let test_varint_sequence () =
  let buf = Buffer.create 64 in
  let values = [ 5; 0; 1000000; 77; 128 ] in
  List.iter (Varint.put_uvarint buf) values;
  let s = Buffer.contents buf in
  let rec decode pos acc =
    if pos >= String.length s then List.rev acc
    else
      let v, pos = Varint.get_uvarint s pos in
      decode pos (v :: acc)
  in
  check Alcotest.(list int) "sequence" values (decode 0 [])

let test_varint_truncated () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Varint.get_uvarint: truncated") (fun () ->
      ignore (Varint.get_uvarint "\xff" 0))

let test_fixed_roundtrip () =
  let buf = Buffer.create 16 in
  Varint.put_fixed32 buf 0xDEADBEEF;
  Varint.put_fixed64 buf 0x1122334455667788L;
  let s = Buffer.contents buf in
  check Alcotest.int "fixed32" 0xDEADBEEF (Varint.get_fixed32 s 0);
  check Alcotest.bool "fixed64" true
    (Int64.equal 0x1122334455667788L (Varint.get_fixed64 s 4))

let test_length_prefixed () =
  let buf = Buffer.create 16 in
  Varint.put_length_prefixed buf "hello";
  Varint.put_length_prefixed buf "";
  Varint.put_length_prefixed buf "world!";
  let s = Buffer.contents buf in
  let a, pos = Varint.get_length_prefixed s 0 in
  let b, pos = Varint.get_length_prefixed s pos in
  let c, _ = Varint.get_length_prefixed s pos in
  check Alcotest.(list string) "slices" [ "hello"; ""; "world!" ] [ a; b; c ]

let prop_varint =
  qtest "varint roundtrip (random)"
    QCheck.(map abs small_int)
    (fun n ->
      let buf = Buffer.create 16 in
      Varint.put_uvarint buf n;
      fst (Varint.get_uvarint (Buffer.contents buf) 0) = n)

(* ---------- CRC32C ---------- *)

let test_crc_known () =
  (* CRC-32C of "123456789" is 0xE3069283 (standard check value). *)
  check Alcotest.int "check value" 0xE3069283 (Crc32c.string "123456789")

let test_crc_slice () =
  let s = "xxthe quick brown foxyy" in
  check Alcotest.int "slice equals substring crc"
    (Crc32c.string "the quick brown fox")
    (Crc32c.update 0 s 2 19)

let test_crc_mask_roundtrip () =
  List.iter
    (fun c ->
      check Alcotest.int "unmask (mask c) = c" c
        (Crc32c.unmask (Crc32c.masked c)))
    [ 0; 1; 0xDEADBEEF land 0xFFFFFFFF; 0xFFFFFFFF; 12345678 ]

let prop_crc_differs =
  qtest "crc distinguishes single-byte changes" QCheck.string (fun s ->
      String.length s < 2
      ||
      let s' = Bytes.of_string s in
      Bytes.set s' 0 (Char.chr ((Char.code s.[0] + 1) land 0xff));
      Crc32c.string s <> Crc32c.string (Bytes.to_string s'))

(* ---------- Murmur3 ---------- *)

let test_murmur_deterministic () =
  check Alcotest.int "same input same hash" (Murmur3.hash32 "pebbles")
    (Murmur3.hash32 "pebbles");
  check Alcotest.bool "seed changes hash" true
    (Murmur3.hash32 ~seed:1 "pebbles" <> Murmur3.hash32 ~seed:2 "pebbles")

let test_murmur_spread () =
  (* Hashing 10k sequential keys should produce ~even bit distribution in
     the low bits (the bits guard selection depends on). *)
  let n = 10_000 in
  let ones = ref 0 in
  for i = 0 to n - 1 do
    let h = Murmur3.hash32 (Printf.sprintf "key%08d" i) in
    if h land 1 = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "low bit balanced" true (frac > 0.45 && frac < 0.55)

let test_trailing_ones () =
  check Alcotest.int "0b0111" 3 (Murmur3.trailing_ones 0b0111);
  check Alcotest.int "0b0110" 0 (Murmur3.trailing_ones 0b0110);
  check Alcotest.int "0" 0 (Murmur3.trailing_ones 0);
  check Alcotest.int "0b1111" 4 (Murmur3.trailing_ones 0b1111)

(* ---------- Histogram ---------- *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  check (Alcotest.float 0.001) "mean" 50.5 (Histogram.mean h);
  check (Alcotest.float 0.001) "median" 50.0 (Histogram.median h);
  check (Alcotest.float 0.001) "p90" 90.0 (Histogram.percentile h 90.0);
  check (Alcotest.float 0.001) "p95" 95.0 (Histogram.percentile h 95.0);
  check (Alcotest.float 0.001) "min" 1.0 (Histogram.min_value h);
  check (Alcotest.float 0.001) "max" 100.0 (Histogram.max_value h)

let test_histogram_empty () =
  let h = Histogram.create () in
  check (Alcotest.float 0.0) "mean empty" 0.0 (Histogram.mean h);
  check (Alcotest.float 0.0) "median empty" 0.0 (Histogram.median h)

let test_histogram_interleaved_sorting () =
  let h = Histogram.create () in
  Histogram.add h 5.0;
  ignore (Histogram.median h);
  Histogram.add h 1.0;
  (* adding after a percentile query must keep ordering correct *)
  check (Alcotest.float 0.001) "min after resort" 1.0 (Histogram.min_value h)

(* nearest-rank edges: rank = ceil(p/100 * n) clamped to [1, n] *)
let test_histogram_percentile_edges () =
  let h = Histogram.create () in
  check (Alcotest.float 0.0) "empty p50" 0.0 (Histogram.percentile h 50.0);
  Histogram.add h 7.0;
  check (Alcotest.float 0.0) "single p0" 7.0 (Histogram.percentile h 0.0);
  check (Alcotest.float 0.0) "single p50" 7.0 (Histogram.percentile h 50.0);
  check (Alcotest.float 0.0) "single p100" 7.0 (Histogram.percentile h 100.0);
  let h = Histogram.create () in
  for i = 1 to 10 do
    Histogram.add h (float_of_int i)
  done;
  check (Alcotest.float 0.0) "p0 is min" 1.0 (Histogram.percentile h 0.0);
  check (Alcotest.float 0.0) "p100 is max" 10.0 (Histogram.percentile h 100.0);
  check (Alcotest.float 0.0) "p99.9 is max" 10.0 (Histogram.percentile h 99.9);
  check (Alcotest.float 0.0) "p10 rank-1" 1.0 (Histogram.percentile h 10.0);
  check (Alcotest.float 0.0) "p11 rank-2" 2.0 (Histogram.percentile h 11.0)

(* the sort must cover only the live prefix: after growth past the initial
   capacity, stale slots beyond [len] must never leak into percentiles *)
let test_histogram_growth_sort () =
  let h = Histogram.create () in
  (* descending insert forces worst-case ordering across growth *)
  let n = 200 in
  for i = n downto 1 do
    Histogram.add h (float_of_int i);
    if i mod 17 = 0 then ignore (Histogram.median h)
  done;
  check (Alcotest.float 0.0) "min" 1.0 (Histogram.min_value h);
  check (Alcotest.float 0.0) "max" 200.0 (Histogram.max_value h);
  check (Alcotest.float 0.0) "p50" 100.0 (Histogram.percentile h 50.0);
  check (Alcotest.float 0.0) "p90" 180.0 (Histogram.percentile h 90.0);
  check Alcotest.int "count" n (Histogram.count h)

(* ---------- LRU ---------- *)

let test_lru_basic () =
  let c = Lru.create ~capacity:10 in
  Lru.insert c "a" 1 ~weight:4;
  Lru.insert c "b" 2 ~weight:4;
  check Alcotest.(option int) "find a" (Some 1) (Lru.find c "a");
  Lru.insert c "c" 3 ~weight:4;
  (* "b" was least recently used (a was touched by find) *)
  check Alcotest.(option int) "b evicted" None (Lru.find c "b");
  check Alcotest.(option int) "a survives" (Some 1) (Lru.find c "a");
  check Alcotest.(option int) "c present" (Some 3) (Lru.find c "c")

let test_lru_replace () =
  let c = Lru.create ~capacity:10 in
  Lru.insert c "a" 1 ~weight:4;
  Lru.insert c "a" 9 ~weight:6;
  check Alcotest.(option int) "replaced" (Some 9) (Lru.find c "a");
  check Alcotest.int "used reflects replacement" 6 (Lru.used c)

let test_lru_oversized () =
  let c = Lru.create ~capacity:10 in
  Lru.insert c "big" 1 ~weight:20;
  check Alcotest.(option int) "oversized not cached" None (Lru.find c "big")

let test_lru_remove () =
  let c = Lru.create ~capacity:10 in
  Lru.insert c "a" 1 ~weight:2;
  Lru.remove c "a";
  check Alcotest.(option int) "removed" None (Lru.find c "a");
  check Alcotest.int "weight released" 0 (Lru.used c)

let test_lru_fold () =
  let c = Lru.create ~capacity:100 in
  Lru.insert c "a" 1 ~weight:1;
  Lru.insert c "b" 2 ~weight:1;
  let sum = Lru.fold c (fun acc _ v -> acc + v) 0 in
  check Alcotest.int "fold sum" 3 sum

let prop_lru_capacity =
  qtest "lru never exceeds capacity"
    QCheck.(list (pair small_int small_int))
    (fun ops ->
      let c = Lru.create ~capacity:50 in
      List.iter
        (fun (k, w) ->
          Lru.insert c (string_of_int k) k ~weight:(1 + (w mod 10)))
        ops;
      Lru.used c <= 50)

(* ---------- Rng / Dist ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 11 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 Fun.id) sorted

let test_dist_uniform_bounds () =
  let d = Dist.uniform ~seed:3 100 in
  for _ = 1 to 10_000 do
    let v = Dist.next d in
    Alcotest.(check bool) "uniform in range" true (v >= 0 && v < 100)
  done

let test_dist_zipf_skew () =
  let d = Dist.zipfian ~seed:5 1000 in
  let counts = Array.make 1000 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Dist.next d in
    counts.(v) <- counts.(v) + 1
  done;
  let head = counts.(0) + counts.(1) + counts.(2) in
  Alcotest.(check bool) "top-3 keys take >15%" true
    (float_of_int head /. float_of_int n > 0.15)

let test_dist_zipf_bounds () =
  let d = Dist.scrambled_zipfian ~seed:5 997 in
  for _ = 1 to 20_000 do
    let v = Dist.next d in
    Alcotest.(check bool) "zipf in range" true (v >= 0 && v < 997)
  done

let test_dist_scrambled_spread () =
  let d = Dist.scrambled_zipfian ~seed:5 1000 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let v = Dist.next d in
    counts.(v) <- counts.(v) + 1
  done;
  let head = counts.(0) + counts.(1) + counts.(2) in
  Alcotest.(check bool) "scrambled head not dominant" true (head < 5_000)

let test_dist_latest_favours_recent () =
  let d = Dist.latest ~seed:5 1000 in
  let recent = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Dist.next d >= 900 then incr recent
  done;
  Alcotest.(check bool) "top decile gets most draws" true
    (float_of_int !recent /. float_of_int n > 0.5)

let test_dist_grow () =
  let d = Dist.latest ~seed:9 10 in
  Dist.set_item_count d 1000;
  let seen_big = ref false in
  for _ = 1 to 5000 do
    if Dist.next d > 10 then seen_big := true
  done;
  Alcotest.(check bool) "draws reach grown keyspace" true !seen_big

let () =
  Alcotest.run "util"
    [
      ( "varint",
        [
          Alcotest.test_case "roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "sequence" `Quick test_varint_sequence;
          Alcotest.test_case "truncated" `Quick test_varint_truncated;
          Alcotest.test_case "fixed" `Quick test_fixed_roundtrip;
          Alcotest.test_case "length-prefixed" `Quick test_length_prefixed;
          prop_varint;
        ] );
      ( "crc32c",
        [
          Alcotest.test_case "known value" `Quick test_crc_known;
          Alcotest.test_case "slice" `Quick test_crc_slice;
          Alcotest.test_case "mask roundtrip" `Quick test_crc_mask_roundtrip;
          prop_crc_differs;
        ] );
      ( "murmur3",
        [
          Alcotest.test_case "deterministic" `Quick test_murmur_deterministic;
          Alcotest.test_case "bit spread" `Quick test_murmur_spread;
          Alcotest.test_case "trailing ones" `Quick test_trailing_ones;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "interleaved" `Quick
            test_histogram_interleaved_sorting;
          Alcotest.test_case "nearest-rank edges" `Quick
            test_histogram_percentile_edges;
          Alcotest.test_case "growth keeps sort live-only" `Quick
            test_histogram_growth_sort;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic eviction" `Quick test_lru_basic;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "oversized" `Quick test_lru_oversized;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "fold" `Quick test_lru_fold;
          prop_lru_capacity;
        ] );
      ( "rng-dist",
        [
          Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "uniform bounds" `Quick test_dist_uniform_bounds;
          Alcotest.test_case "zipf skew" `Quick test_dist_zipf_skew;
          Alcotest.test_case "zipf bounds" `Quick test_dist_zipf_bounds;
          Alcotest.test_case "scrambled spread" `Quick
            test_dist_scrambled_spread;
          Alcotest.test_case "latest recency" `Quick
            test_dist_latest_favours_recent;
          Alcotest.test_case "grow keyspace" `Quick test_dist_grow;
        ] );
    ]
