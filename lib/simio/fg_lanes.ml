(** Discrete-event placement of foreground work on N client timelines.

    The compaction counterpart is {!Sched}: there, finished background
    jobs are placed on per-worker lanes.  Here, finished {e foreground}
    operations are placed on per-client lanes.  The store still executes
    every operation serially — in the one global order fixed by the
    workload — so store state is byte-identical across client counts;
    only the modeled clock changes.

    The contention model is the one the paper's multithreaded figures
    exercise: each client's CPU work (its own write path, memtable
    probes, comparisons) runs on its own core and overlaps freely with
    the other clients, while device time serialises on the single shared
    device.  A grouped commit ({!place_group}) additionally charges its
    device time once — the leader performs the coalesced WAL append and
    sync — and every member lane waits for the group to complete, which
    is exactly how group commit turns N per-write syncs into one. *)

type t = {
  free_at : float array;  (** per-client lane frontier *)
  wait_ns : float array;
      (** per-client time spent blocked: device contention for solo ops,
          waiting on the leader's commit for group members *)
  mutable device_free : float;  (** shared-device frontier *)
  mutable ops_placed : int;
  mutable groups_placed : int;
}

let create ~clients =
  let n = max 1 clients in
  {
    free_at = Array.make n 0.0;
    wait_ns = Array.make n 0.0;
    device_free = 0.0;
    ops_placed = 0;
    groups_placed = 0;
  }

let clients t = Array.length t.free_at
let ops_placed t = t.ops_placed
let groups_placed t = t.groups_placed
let wait_ns t = Array.copy t.wait_ns

(** [horizon_ns t] is the finish time of the slowest client lane — the
    foreground completion horizon of the phase. *)
let horizon_ns t = Array.fold_left Float.max 0.0 t.free_at

(** [device_ns t] is the shared-device frontier: total serialised
    foreground device time placed so far. *)
let device_ns t = t.device_free

(** [place t ~client ~cpu_ns ~io_ns ~stall_ns] places one operation on
    [client]'s lane and returns its modeled latency — arrival (the lane's
    previous frontier) to completion, stall included.  Its CPU overlaps
    its own device time (the lane is bound by the slower of the two); the
    device part starts no earlier than the shared-device frontier; stall
    time (write back-pressure) is serial on the lane. *)
let place t ~client ~cpu_ns ~io_ns ~stall_ns =
  let start = t.free_at.(client) in
  let finish =
    if io_ns > 0.0 then begin
      let dev_start = Float.max start t.device_free in
      t.wait_ns.(client) <- t.wait_ns.(client) +. (dev_start -. start);
      let dev_end = dev_start +. io_ns in
      t.device_free <- dev_end;
      Float.max (start +. cpu_ns) dev_end
    end
    else start +. cpu_ns
  in
  t.free_at.(client) <- finish +. stall_ns;
  t.ops_placed <- t.ops_placed + 1;
  finish +. stall_ns -. start

(** [place_group t ~members ~cpu_ns ~io_ns ~stall_ns] places one group
    commit and returns each member's modeled latency (arrival to group
    completion, in [members] order).  Each member first runs its share of
    the group's CPU work on its own lane (in parallel with the other
    members); the leader then performs the group's device work — the
    coalesced WAL append and the single sync — starting when the last
    member has arrived and the device is free.  Every member lane
    advances to the commit's finish: followers are charged wait time, not
    IO.  Every non-empty group counts in [groups_placed], single-member
    groups included, matching [Engine_stats.write_groups]. *)
let place_group t ~members ~cpu_ns ~io_ns ~stall_ns =
  match members with
  | [] -> []
  | [ client ] ->
    let lat = place t ~client ~cpu_ns ~io_ns ~stall_ns in
    t.groups_placed <- t.groups_placed + 1;
    [ lat ]
  | _ ->
    let k = float_of_int (List.length members) in
    let cpu_each = cpu_ns /. k in
    let starts = List.map (fun c -> t.free_at.(c)) members in
    let ready =
      List.fold_left
        (fun acc c -> Float.max acc (t.free_at.(c) +. cpu_each))
        0.0 members
    in
    let finish =
      if io_ns > 0.0 then begin
        let dev_start = Float.max ready t.device_free in
        let dev_end = dev_start +. io_ns in
        t.device_free <- dev_end;
        dev_end
      end
      else ready
    in
    let finish = finish +. stall_ns in
    List.iter
      (fun c ->
        t.wait_ns.(c) <-
          t.wait_ns.(c) +. (finish -. (t.free_at.(c) +. cpu_each));
        t.free_at.(c) <- finish)
      members;
    t.ops_placed <- t.ops_placed + List.length members;
    t.groups_placed <- t.groups_placed + 1;
    List.map (fun start -> finish -. start) starts
