(* Tests for the bloom filter and skip list substrates. *)

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------- Bloom ---------- *)

module Bloom = Pdb_bloom.Bloom

let test_bloom_no_false_negatives () =
  let b = Bloom.create 1000 in
  for i = 0 to 999 do
    Bloom.add b (Printf.sprintf "key%d" i)
  done;
  for i = 0 to 999 do
    Alcotest.(check bool) "member" true (Bloom.mem b (Printf.sprintf "key%d" i))
  done

let test_bloom_false_positive_rate () =
  let b = Bloom.create ~bits_per_key:10 10_000 in
  for i = 0 to 9_999 do
    Bloom.add b (Printf.sprintf "key%d" i)
  done;
  let fp = ref 0 in
  let probes = 10_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "other%d" i) then incr fp
  done;
  let rate = float_of_int !fp /. float_of_int probes in
  Alcotest.(check bool)
    (Printf.sprintf "fp rate %.4f < 0.03" rate)
    true (rate < 0.03)

let test_bloom_encode_roundtrip () =
  let b = Bloom.create 100 in
  List.iter (Bloom.add b) [ "a"; "b"; "c" ];
  let b' = Bloom.decode (Bloom.encode b) in
  List.iter
    (fun k -> Alcotest.(check bool) ("member " ^ k) true (Bloom.mem b' k))
    [ "a"; "b"; "c" ];
  check Alcotest.int "nkeys" 3 (Bloom.nkeys b')

let test_bloom_empty () =
  let b = Bloom.create 10 in
  Alcotest.(check bool) "empty filter rejects" false (Bloom.mem b "anything")

let prop_bloom_membership =
  qtest "no false negatives (random keys)"
    QCheck.(list string)
    (fun keys ->
      let b = Bloom.create (max 1 (List.length keys)) in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

(* ---------- Skiplist ---------- *)

module Skiplist = Pdb_skiplist.Skiplist

let make_list () = Skiplist.create ~compare:String.compare "" ""

let test_skiplist_insert_find () =
  let sl = make_list () in
  Skiplist.insert sl "b" "2";
  Skiplist.insert sl "a" "1";
  Skiplist.insert sl "c" "3";
  check Alcotest.(option string) "find a" (Some "1") (Skiplist.find sl "a");
  check Alcotest.(option string) "find c" (Some "3") (Skiplist.find sl "c");
  check Alcotest.(option string) "missing" None (Skiplist.find sl "zz");
  check Alcotest.int "length" 3 (Skiplist.length sl)

let test_skiplist_order () =
  let sl = make_list () in
  let keys = [ "delta"; "alpha"; "echo"; "charlie"; "bravo" ] in
  List.iter (fun k -> Skiplist.insert sl k k) keys;
  let got = List.map fst (Skiplist.to_list sl) in
  check
    Alcotest.(list string)
    "sorted"
    [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ]
    got

let test_skiplist_seek () =
  let sl = make_list () in
  List.iter (fun k -> Skiplist.insert sl k k) [ "b"; "d"; "f" ];
  check
    Alcotest.(option (pair string string))
    "seek between" (Some ("d", "d")) (Skiplist.seek sl "c");
  check
    Alcotest.(option (pair string string))
    "seek exact" (Some ("d", "d")) (Skiplist.seek sl "d");
  check
    Alcotest.(option (pair string string))
    "seek past end" None (Skiplist.seek sl "g");
  check
    Alcotest.(option (pair string string))
    "seek before start" (Some ("b", "b")) (Skiplist.seek sl "a")

let test_skiplist_min_max () =
  let sl = make_list () in
  check Alcotest.(option (pair string string)) "min empty" None
    (Skiplist.min_entry sl);
  check Alcotest.(option (pair string string)) "max empty" None
    (Skiplist.max_entry sl);
  List.iter (fun k -> Skiplist.insert sl k k) [ "m"; "a"; "z" ];
  check
    Alcotest.(option (pair string string))
    "min" (Some ("a", "a")) (Skiplist.min_entry sl);
  check
    Alcotest.(option (pair string string))
    "max" (Some ("z", "z")) (Skiplist.max_entry sl)

let test_skiplist_duplicates_kept () =
  let sl = make_list () in
  Skiplist.insert sl "k" "1";
  Skiplist.insert sl "k" "2";
  check Alcotest.int "both kept" 2 (Skiplist.length sl)

let test_skiplist_cursor () =
  let sl = make_list () in
  List.iter (fun k -> Skiplist.insert sl k k) [ "a"; "b"; "c" ];
  let c = Skiplist.Cursor.make sl in
  Skiplist.Cursor.seek_to_first c;
  Alcotest.(check bool) "valid" true (Skiplist.Cursor.valid c);
  check Alcotest.string "first" "a" (fst (Skiplist.Cursor.entry c));
  Skiplist.Cursor.next c;
  check Alcotest.string "second" "b" (fst (Skiplist.Cursor.entry c));
  Skiplist.Cursor.seek c "bz";
  check Alcotest.string "seek lands on c" "c" (fst (Skiplist.Cursor.entry c));
  Skiplist.Cursor.next c;
  Alcotest.(check bool) "exhausted" false (Skiplist.Cursor.valid c)

let prop_skiplist_model =
  (* The skip list must agree with a sorted-map model on membership and
     order under random unique-key insertions. *)
  qtest "matches sorted-map model"
    QCheck.(list (pair (string_of_size (QCheck.Gen.return 6)) small_int))
    (fun pairs ->
      let module M = Map.Make (String) in
      let model =
        List.fold_left (fun m (k, v) -> M.add k v m) M.empty pairs
      in
      let sl =
        Skiplist.create ~compare:String.compare "" 0
      in
      M.iter (fun k v -> Skiplist.insert sl k v) model;
      M.for_all (fun k v -> Skiplist.find sl k = Some v) model
      && List.map fst (Skiplist.to_list sl) = List.map fst (M.bindings model))

let () =
  Alcotest.run "bloom-skiplist"
    [
      ( "bloom",
        [
          Alcotest.test_case "no false negatives" `Quick
            test_bloom_no_false_negatives;
          Alcotest.test_case "fp rate" `Quick test_bloom_false_positive_rate;
          Alcotest.test_case "encode roundtrip" `Quick
            test_bloom_encode_roundtrip;
          Alcotest.test_case "empty" `Quick test_bloom_empty;
          prop_bloom_membership;
        ] );
      ( "skiplist",
        [
          Alcotest.test_case "insert/find" `Quick test_skiplist_insert_find;
          Alcotest.test_case "order" `Quick test_skiplist_order;
          Alcotest.test_case "seek" `Quick test_skiplist_seek;
          Alcotest.test_case "min/max" `Quick test_skiplist_min_max;
          Alcotest.test_case "duplicates" `Quick test_skiplist_duplicates_kept;
          Alcotest.test_case "cursor" `Quick test_skiplist_cursor;
          prop_skiplist_model;
        ] );
    ]
