test/test_trace_iter.ml: Alcotest Array List Option Pdb_harness Pdb_kvs Pdb_simio Pdb_sstable Pdb_ycsb Pebblesdb QCheck QCheck_alcotest
