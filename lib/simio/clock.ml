(** Simulated time, split into foreground and background lanes.

    Engines run single-threaded in this reproduction, but real LSM stores
    overlap foreground writes with background flush/compaction threads.  We
    model that by charging each IO to the lane active at the time: user
    operations charge the foreground lane; flush and compaction work runs
    inside {!with_background} and charges the background lane.

    Background work is additionally *placed* on per-worker timelines by
    {!Sched} (one timeline per modeled compaction thread): each job starts
    no earlier than its worker is free and no earlier than the finish of
    any previously placed job whose guard/key-range footprint it conflicts
    with.  The clock records the resulting completion horizon
    ([bg_horizon_ns]), and the reported elapsed time for a workload is
    [max(cpu, foreground + bg_horizon) + stalls]: a store is write-bound
    either by its own foreground path or by the compaction drain rate of
    its worker lanes — which is exactly the paper's explanation of why
    lower write amplification and guard-parallel compaction (§4.3)
    translate into higher write throughput. *)

type lane = Foreground | Background

type t = {
  mutable foreground_ns : float;
  mutable background_ns : float;
  mutable bg_horizon_ns : float;
      (* completion horizon over the background worker timelines,
         maintained by Sched.place *)
  mutable stall_ns : float;
  mutable cpu_ns : float; (* modeled CPU work, charged to foreground lane *)
  mutable lane : lane;
}

let create () =
  {
    foreground_ns = 0.0;
    background_ns = 0.0;
    bg_horizon_ns = 0.0;
    stall_ns = 0.0;
    cpu_ns = 0.0;
    lane = Foreground;
  }

let reset t =
  t.foreground_ns <- 0.0;
  t.background_ns <- 0.0;
  t.bg_horizon_ns <- 0.0;
  t.stall_ns <- 0.0;
  t.cpu_ns <- 0.0;
  t.lane <- Foreground

(** [advance t ns] charges [ns] of device time to the current lane. *)
let advance t ns =
  match t.lane with
  | Foreground -> t.foreground_ns <- t.foreground_ns +. ns
  | Background -> t.background_ns <- t.background_ns +. ns

(** [advance_cpu t ns] charges modeled CPU work (always foreground). *)
let advance_cpu t ns = t.cpu_ns <- t.cpu_ns +. ns

(** [stall t ns] records write-stall time (compaction-backlog
    slowdown/stop back-pressure). *)
let stall t ns = t.stall_ns <- t.stall_ns +. ns

(** [note_bg_horizon t ns] raises the background completion horizon to
    [ns]; called by {!Sched} as jobs are placed on worker timelines. *)
let note_bg_horizon t ns =
  if ns > t.bg_horizon_ns then t.bg_horizon_ns <- ns

(** [lane_time t] is the accumulated device time of the current lane — used
    to measure the cost of a bracketed operation. *)
let lane_time t =
  match t.lane with
  | Foreground -> t.foreground_ns
  | Background -> t.background_ns

(** [refund t ns] gives back device time on the current lane.  PebblesDB's
    parallel seeks overlap the sstable reads of a guard (§4.2): the engine
    measures each table's positioning cost and refunds everything beyond
    the slowest one. *)
let refund t ns =
  match t.lane with
  | Foreground -> t.foreground_ns <- Float.max 0.0 (t.foreground_ns -. ns)
  | Background -> t.background_ns <- Float.max 0.0 (t.background_ns -. ns)

(** [with_background t f] runs [f ()] charging device time to the
    background lane (flush and compaction). *)
let with_background t f =
  let saved = t.lane in
  t.lane <- Background;
  Fun.protect ~finally:(fun () -> t.lane <- saved) f

type snapshot = {
  foreground_ns : float;
  background_ns : float;
  bg_horizon_ns : float;
  stall_ns : float;
  cpu_ns : float;
}

let snapshot (t : t) : snapshot =
  {
    foreground_ns = t.foreground_ns;
    background_ns = t.background_ns;
    bg_horizon_ns = t.bg_horizon_ns;
    stall_ns = t.stall_ns;
    cpu_ns = t.cpu_ns;
  }

let diff (a : snapshot) (b : snapshot) =
  {
    foreground_ns = a.foreground_ns -. b.foreground_ns;
    background_ns = a.background_ns -. b.background_ns;
    bg_horizon_ns = a.bg_horizon_ns -. b.bg_horizon_ns;
    stall_ns = a.stall_ns -. b.stall_ns;
    cpu_ns = a.cpu_ns -. b.cpu_ns;
  }

(** [elapsed_ns snap] is the modeled wall-clock of a phase.

    The device is a shared resource: foreground IO and background
    compaction IO serialise on it, while modeled CPU work overlaps with
    IO.  Background completion is the advance of the per-worker timeline
    horizon during the phase: stores whose compaction decomposes into many
    small jobs over disjoint guards pack their worker lanes densely
    (horizon ≈ total/N), while stores whose jobs conflict on overlapping
    key ranges serialise (horizon ≈ total) — how FLSM's guard-parallel
    compaction becomes higher write throughput.  Engines that never placed
    scheduled work (the B+-tree stores) have a zero horizon and are bound
    by their foreground path alone. *)
let elapsed_ns (s : snapshot) =
  Float.max s.cpu_ns (s.foreground_ns +. Float.max 0.0 s.bg_horizon_ns)
  +. s.stall_ns
