(** PebblesDB: a key-value store built over Fragmented Log-Structured Merge
    trees (chapters 3 and 4 of the paper).

    The engine keeps the LevelDB-family shape — memtable + WAL in front of
    a hierarchy of sstable levels recovered through a MANIFEST — but
    replaces the per-level disjointness invariant with guards: compaction
    {e appends} partitioned fragments to the next level's guards instead of
    rewriting the level, which is what removes write amplification (§3.4).
    Per-sstable bloom filters (§4.1), seek-triggered compaction and
    parallel seeks (§4.2) recover read and range-query performance.

    This module satisfies {!Pdb_kvs.Store_intf.S} (modulo the optional
    [?snapshot] parameters, fixed by the harness adapter). *)

type t

(** {1 Lifecycle} *)

(** [open_store options ~env ~dir] opens (creating or recovering) a store
    rooted at simulated directory prefix [dir].  Recovery replays the
    MANIFEST's version edits — including guard metadata (§4.3.1) — then
    the WAL.  [?block_cache] substitutes a caller-owned (typically
    shard-shared) block cache for the store's private one. *)
val open_store :
  ?block_cache:Pdb_sstable.Block_cache.t ->
  Pdb_kvs.Options.t ->
  env:Pdb_simio.Env.t ->
  dir:string ->
  t

(** [close t] releases the store.  Unsynced WAL data remains volatile, as
    in the real system. *)
val close : t -> unit

val options : t -> Pdb_kvs.Options.t
val env : t -> Pdb_simio.Env.t

(** [stats t] are the engine counters, with the background scheduler's
    counters (jobs, queue peaks, per-worker busy time, stall attribution)
    mirrored in on every read. *)
val stats : t -> Pdb_kvs.Engine_stats.t

(** The shared background-compaction scheduler: all non-manual compaction
    is enqueued as {!Pdb_compaction.Job.t}s and drained through it. *)
val compaction_scheduler : t -> Pdb_compaction.Scheduler.t

(** The write-throttling controller pacing this store's foreground
    writes ({!Pdb_kvs.Backpressure}) — the same module the leveled LSM
    engine uses, so the two can never drift on stall policy. *)
val backpressure : t -> Pdb_kvs.Backpressure.t

(** {1 Writes (§2.1, §3.4)} *)

val put : t -> string -> string -> unit
val delete : t -> string -> unit

(** [write t batch] applies a batch atomically (one WAL record). *)
val write : t -> Pdb_kvs.Write_batch.t -> unit

(** [write_group t batches] commits [batches] as one WAL group — the
    LevelDB writers-queue protocol: one record per batch (log bytes
    identical at any group size), one coalesced device append, one sync;
    no batch is acked before the group's sync returns.  State
    transitions are exactly those of writing the batches one by one. *)
val write_group : t -> Pdb_kvs.Write_batch.t list -> unit

(** [flush t] persists the active memtable as a level-0 sstable and runs
    any compaction it triggers. *)
val flush : t -> unit

(** {1 Reads (§3.4, §4.1)} *)

(** [get ?snapshot t key] is the latest value visible (at [snapshot] if
    given): one guard per level is consulted, with bloom filters skipping
    almost all of the guard's sstables. *)
val get : ?snapshot:int -> t -> string -> string option

(** [iterator ?snapshot ?upper_bound t] is a database iterator over live
    user keys.  Iterators are invalidated by writes (no pinning); seeks
    feed the seek-triggered compaction heuristic (§4.2) and run inside a
    parallel-probe session (§4.2's parallel seeks, budgeted by the
    device).  [upper_bound] is an inclusive user-key bound: output is
    clamped to it, and the seek filter may skip any sstable past it. *)
val iterator : ?snapshot:int -> ?upper_bound:string -> t -> Pdb_kvs.Iter.t

(** {1 Snapshots} *)

(** [snapshot t] pins the current state; reads and iterators through the
    returned sequence number see exactly the versions visible now.
    Compaction keeps whatever pinned snapshots still need; superseded
    files stay on storage until the last snapshot is released. *)
val snapshot : t -> int

(** [release_snapshot t s] unpins [s] (release exactly once per acquire). *)
val release_snapshot : t -> int -> unit

(** {1 Maintenance} *)

(** [compact_all t] drives pending compaction to quiescence.  Deliberately
    does not force everything into one level: PebblesDB "does not compact
    as aggressively as other key-value stores as it seeks to minimize
    write IO" (§5.2). *)
val compact_all : t -> unit

(** [delete_empty_guards t] removes every guard that is empty at every
    level where it is committed (§3.3, §7), persisting the deletions;
    returns the number of guard keys removed. *)
val delete_empty_guards : t -> int

(** {1 Introspection} *)

(** Modeled resident memory: memtable + block cache + all sstable filters
    and indexes + guard metadata (Table 5.4). *)
val memory_bytes : t -> int

(** Render the on-storage shape — levels, guards, sstables (Figure 3.1). *)
val describe : t -> string

(** Raise [Failure] on any violated structural invariant (guard ordering,
    no straddlers, skip-list guard property, committed-set consistency,
    file existence). *)
val check_invariants : t -> unit

val l0_table_count : t -> int

(** Committed guards per level (index 0 unused). *)
val guard_counts : t -> int array

val empty_guard_count : t -> int
val sstable_metas : t -> Pdb_sstable.Table.meta list

(** Resident bytes per level (level 0 first). *)
val level_sizes : t -> int array

val max_tables_in_any_guard : t -> int
