lib/bloom/bloom.ml: Buffer Bytes Char List Pdb_util String
