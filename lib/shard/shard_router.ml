(** Range partitioning of the keyspace over N shards.

    The router is the one-level-up analogue of the paper's guards: where
    FLSM spreads compaction work across independent key ranges inside one
    store, the router spreads {e entire stores} across independent key
    ranges — each shard owns a contiguous slice of the keyspace and runs
    its own WAL, memtable, levels and compaction scheduler, so foreground
    and background work from different shards overlap.

    Routing rule: [shards - 1] sorted split keys partition the key space;
    shard [i] owns the half-open range [[split.(i-1), split.(i))], with
    shard [0] unbounded below and the last shard unbounded above.  A key
    routes to the number of splits [<=] it — a binary search, so routing
    is O(log shards) and deterministic: the same key always lands on the
    same shard, which is what makes per-shard recovery and the
    differential tests possible. *)

type t = { splits : string array }

(** [create ~splits] builds a router from sorted, strictly increasing
    split keys ([n - 1] splits make [n] shards; [[]] is a single shard).
    @raise Invalid_argument when the splits are not strictly increasing. *)
let create ~splits =
  let splits = Array.of_list splits in
  Array.iteri
    (fun i s ->
      if i > 0 && String.compare splits.(i - 1) s >= 0 then
        invalid_arg
          (Printf.sprintf "Shard_router.create: splits not increasing (%S >= %S)"
             splits.(i - 1) s))
    splits;
  { splits }

let shards t = Array.length t.splits + 1
let splits t = Array.to_list t.splits

(** [shard_of_key t key] is the shard owning [key]: the count of splits
    [<= key]. *)
let shard_of_key t key =
  let lo = ref 0 and hi = ref (Array.length t.splits) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.splits.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(** [range_of_shard t i] is shard [i]'s half-open range
    [(lo inclusive, hi exclusive)]; [None] means unbounded. *)
let range_of_shard t i =
  let n = shards t in
  if i < 0 || i >= n then invalid_arg "Shard_router.range_of_shard";
  ( (if i = 0 then None else Some t.splits.(i - 1)),
    if i = n - 1 then None else Some t.splits.(i) )

(** [owns t i key] is true when shard [i]'s range contains [key]. *)
let owns t i key =
  let lo, hi = range_of_shard t i in
  (match lo with None -> true | Some l -> String.compare l key <= 0)
  && match hi with None -> true | Some h -> String.compare key h < 0

(* Interpolation window: the longest common prefix of [lo] and [hi] is
   carried verbatim, and the next [frac_bytes] bytes are read as a
   48-bit big-endian integer — exact arithmetic, so bounds differing
   only deep into a shared prefix still interpolate cleanly (a float
   mantissa would swallow the difference). *)
let frac_bytes = 6

(** [uniform ~shards ?lo ?hi ()] derives evenly spaced splits by
    interpolating the byte space between [lo] (default the empty key) and
    [hi] (default the top of the byte space): their common prefix is
    kept, the following bytes are interpolated as base-256 integers.
    Even spacing is in {e byte} space — keys drawn uniformly from
    [[lo, hi)] as raw bytes balance perfectly, but structured keyspaces
    (e.g. zero-padded decimals, which use only 10 of 256 byte values per
    position) should pass explicit splits to {!create} instead. *)
let uniform ~shards:n ?(lo = "") ?hi () =
  if n < 1 then invalid_arg "Shard_router.uniform: shards < 1";
  let prefix =
    match hi with
    | None -> 0
    | Some h ->
      let m = min (String.length lo) (String.length h) in
      let i = ref 0 in
      while !i < m && lo.[!i] = h.[!i] do
        incr i
      done;
      !i
  in
  let value s =
    let v = ref 0 in
    for i = 0 to frac_bytes - 1 do
      let b =
        if prefix + i < String.length s then Char.code s.[prefix + i] else 0
      in
      v := (!v lsl 8) lor b
    done;
    !v
  in
  let vlo = value lo in
  let vhi = match hi with None -> 1 lsl (8 * frac_bytes) | Some h -> value h in
  if vhi <= vlo then invalid_arg "Shard_router.uniform: hi <= lo";
  let key_of_value v =
    let b = Bytes.create frac_bytes in
    let v = ref v in
    for i = frac_bytes - 1 downto 0 do
      Bytes.set b i (Char.chr (!v land 0xff));
      v := !v lsr 8
    done;
    String.sub lo 0 prefix ^ Bytes.to_string b
  in
  let splits =
    List.init (n - 1) (fun j -> key_of_value (vlo + ((vhi - vlo) * (j + 1) / n)))
  in
  create ~splits

let escape s =
  String.concat ""
    (List.init (String.length s) (fun i ->
         let c = s.[i] in
         if c >= ' ' && c <= '~' then String.make 1 c
         else Printf.sprintf "\\x%02x" (Char.code c)))

let describe t =
  let n = shards t in
  let range i =
    let lo, hi = range_of_shard t i in
    Printf.sprintf "[%s, %s)"
      (match lo with None -> "-inf" | Some l -> escape l)
      (match hi with None -> "+inf" | Some h -> escape h)
  in
  Printf.sprintf "%d shard%s: %s" n
    (if n = 1 then "" else "s")
    (String.concat " | " (List.init n range))

(** Structural invariant: splits strictly increasing (checked on create,
    re-checked here for the store's [check_invariants]). *)
let check_invariants t =
  Array.iteri
    (fun i s ->
      if i > 0 && String.compare t.splits.(i - 1) s >= 0 then
        failwith "Shard_router: splits not strictly increasing")
    t.splits
