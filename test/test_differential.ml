(* Differential testing: seeded random workloads replayed through the
   sharded store (1 and 4 shards), the plain single-engine store, and a
   pure in-memory oracle.

   One generator produces a concrete op sequence per seed — puts,
   deletes, multi-key batches, point gets, full scans, and pinned
   snapshot reads — and every subject replays the identical sequence.
   At every checkpoint the subject's visible state (every key by point
   lookup, plus a full iterator scan) must equal the oracle exactly;
   snapshot reads must equal the oracle state captured at pin time.
   Because all subjects are checked against the same oracle, the plain
   and sharded stores are transitively checked against each other. *)

module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Stores = Pdb_harness.Stores
module O = Pdb_kvs.Options
module Rng = Pdb_util.Rng
module Iter = Pdb_kvs.Iter

let keyspace = 120
let n_ops = 240
let checkpoint_every = 80
let n_seeds = 20
let key i = Printf.sprintf "dk%04d" i

type op =
  | Put of string * string
  | Delete of string
  | Batch of (string * string option) list  (* Some v = put, None = delete *)
  | Get of string
  | Scan
  | Snap_pin of int  (* pin a snapshot into slot *)
  | Snap_read of int * string list  (* read keys at the slot's snapshot *)
  | Snap_drop of int
  | Checkpoint

(* One concrete op list per seed — subjects never consume randomness
   themselves, so every subject sees byte-identical operations. *)
let gen_ops seed =
  let rng = Rng.create seed in
  let k () = key (Rng.int rng keyspace) in
  let ops =
    List.init n_ops (fun i ->
        let body =
          match Rng.int rng 100 with
          | r when r < 50 -> Put (k (), Printf.sprintf "v%d-%d" seed i)
          | r when r < 60 -> Delete (k ())
          | r when r < 70 ->
            Batch
              (List.init
                 (1 + Rng.int rng 8)
                 (fun j ->
                   let key = k () in
                   if Rng.int rng 5 = 0 then (key, None)
                   else (key, Some (Printf.sprintf "b%d-%d-%d" seed i j))))
          | r when r < 85 -> Get (k ())
          | r when r < 90 -> Scan
          | r when r < 94 -> Snap_pin (Rng.int rng 2)
          | r when r < 98 ->
            Snap_read (Rng.int rng 2, List.init 3 (fun _ -> k ()))
          | _ -> Snap_drop (Rng.int rng 2)
        in
        if (i + 1) mod checkpoint_every = 0 then [ body; Checkpoint ]
        else [ body ])
  in
  List.concat ops @ [ Checkpoint ]

(* A store under differential test: the uniform dyn surface plus the
   snapshot hooks when the configuration has them (plain stores and
   page-store shards run the same sequence with snapshot ops skipped). *)
type subject = {
  name : string;
  dyn : Dyn.dyn;
  snapshot : (unit -> int) option;
  get_at : (int -> string -> string option) option;
  release : int -> unit;
  on_op : (int -> unit) option;
      (** resplit-differential hook: called with each op's index, forcing
          scheduled topology changes mid-replay *)
}

let small o = { o with O.memtable_bytes = 4 * 1024 }

let shard_tweak ~shards o =
  let o = small o in
  if shards <= 1 then { o with O.shards = max 1 shards }
  else
    {
      o with
      O.shards;
      shard_splits =
        List.init (shards - 1) (fun i -> key ((i + 1) * keyspace / shards));
    }

let plain_subject engine =
  {
    name = Stores.engine_name engine ^ "/plain";
    dyn = Stores.open_engine ~tweak:small ~env:(Env.create ()) engine;
    snapshot = None;
    get_at = None;
    release = ignore;
    on_op = None;
  }

let sharded_subject engine shards =
  let sh =
    Stores.open_sharded
      ~tweak:(shard_tweak ~shards)
      ~env:(Env.create ()) engine
  in
  {
    name = Printf.sprintf "%s/%ds" (Stores.engine_name engine) shards;
    dyn = sh.Stores.s_dyn;
    snapshot = sh.Stores.s_snapshot;
    get_at = sh.Stores.s_get_at;
    release = sh.Stores.s_release;
    on_op = None;
  }

(* ---------- resplit-differential subjects ---------- *)

(* A topology schedule: forced split/merge/migrations at fixed op
   indices.  [Split ki] splits whichever shard currently owns [key ki]
   at that key; [Merge at] folds shard [at+1] into [at] (clamped to the
   live count).  Every action migrates data, so the elastic subject's
   reads run over freshly moved ranges while snapshots stay pinned. *)
type topo_action = Split of int | Merge of int

let elastic_tweak o =
  let o = small o in
  {
    o with
    O.shards = 2;
    shard_splits = [ key (keyspace / 2) ];
    elastic = true;
    elastic_window_ops = max_int (* controller parked: forced moves only *);
  }

let elastic_subject engine ~schedule_name schedule =
  let sh =
    Stores.open_sharded ~tweak:elastic_tweak ~env:(Env.create ()) engine
  in
  let act = function
    | Split ki ->
      let k = key ki in
      ignore (sh.Stores.s_split ~shard:(sh.Stores.s_shard_of_key k) ~key:k)
    | Merge at ->
      let n = sh.Stores.s_shard_count () in
      if n > 1 then ignore (sh.Stores.s_merge ~at:(min at (n - 2)))
  in
  {
    name =
      Printf.sprintf "%s/elastic:%s" (Stores.engine_name engine)
        schedule_name;
    dyn = sh.Stores.s_dyn;
    snapshot = sh.Stores.s_snapshot;
    get_at = sh.Stores.s_get_at;
    release = sh.Stores.s_release;
    on_op =
      Some
        (fun i ->
          match List.assoc_opt i schedule with
          | Some a -> act a
          | None -> ());
  }

let q n = n * keyspace / 8

(* three shapes: carve ever finer; carve then collapse; oscillate over
   the same ranges (the "resplit" that moves a range more than once) *)
let schedules =
  [
    ( "split-heavy",
      [ (30, Split (q 2)); (70, Split (q 6)); (110, Split (q 1));
        (150, Split (q 5)); (200, Split (q 7)) ] );
    ( "merge-heavy",
      [ (20, Split (q 2)); (40, Split (q 6)); (90, Merge 0);
        (140, Merge 1); (190, Merge 0); (220, Merge 0) ] );
    ( "mixed",
      [ (25, Split (q 3)); (60, Merge 1); (95, Split (q 3));
        (130, Split (q 5)); (165, Merge 2); (205, Split (q 6));
        (230, Merge 0) ] );
  ]

let scan (store : Dyn.dyn) =
  let it = store.Dyn.d_iterator () in
  it.Iter.seek_to_first ();
  let acc = ref [] in
  while it.Iter.valid () do
    acc := (it.Iter.key (), it.Iter.value ()) :: !acc;
    it.Iter.next ()
  done;
  List.rev !acc

let oracle_entries oracle =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
  |> List.sort compare

let show = function None -> "<absent>" | Some v -> v

(* Replay [ops] into [subject] and the oracle together, failing the test
   at the first divergence. *)
let replay ~seed subject ops =
  let ctx = Printf.sprintf "seed %d, %s" seed subject.name in
  let oracle = Hashtbl.create 64 in
  (* slot -> (subject snapshot id when supported, oracle state at pin) *)
  let slots = Array.make 2 None in
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.fail (ctx ^ ": " ^ m)) fmt in
  let check_get k =
    let got = subject.dyn.Dyn.d_get k and want = Hashtbl.find_opt oracle k in
    if got <> want then
      fail "get %s diverged: store %s, oracle %s" k (show got) (show want)
  in
  let checkpoint () =
    for i = 0 to keyspace - 1 do
      check_get (key i)
    done;
    if scan subject.dyn <> oracle_entries oracle then
      fail "scan diverged from oracle (%d store entries, %d oracle)"
        (List.length (scan subject.dyn))
        (List.length (oracle_entries oracle));
    subject.dyn.Dyn.d_check_invariants ()
  in
  let drop slot =
    match slots.(slot) with
    | None -> ()
    | Some (id, _) ->
      Option.iter (fun _ -> subject.release id) subject.snapshot;
      slots.(slot) <- None
  in
  List.iteri
    (fun i op ->
      Option.iter (fun f -> f i) subject.on_op;
      match op with
      | Put (k, v) ->
        subject.dyn.Dyn.d_put k v;
        Hashtbl.replace oracle k v
      | Delete k ->
        subject.dyn.Dyn.d_delete k;
        Hashtbl.remove oracle k
      | Batch entries ->
        let b = Pdb_kvs.Write_batch.create () in
        List.iter
          (fun (k, v) ->
            match v with
            | Some v -> Pdb_kvs.Write_batch.put b k v
            | None -> Pdb_kvs.Write_batch.delete b k)
          entries;
        subject.dyn.Dyn.d_write b;
        List.iter
          (fun (k, v) ->
            match v with
            | Some v -> Hashtbl.replace oracle k v
            | None -> Hashtbl.remove oracle k)
          entries
      | Get k -> check_get k
      | Scan ->
        if scan subject.dyn <> oracle_entries oracle then
          fail "mid-stream scan diverged from oracle"
      | Snap_pin slot -> (
        drop slot;
        match subject.snapshot with
        | None -> ()
        | Some pin -> slots.(slot) <- Some (pin (), Hashtbl.copy oracle))
      | Snap_read (slot, keys) -> (
        match (slots.(slot), subject.get_at) with
        | Some (id, pinned), Some get_at ->
          List.iter
            (fun k ->
              let got = get_at id k and want = Hashtbl.find_opt pinned k in
              if got <> want then
                fail "snapshot read %s diverged: store %s, pinned oracle %s" k
                  (show got) (show want))
            keys
        | _ -> ())
      | Snap_drop slot -> drop slot
      | Checkpoint -> checkpoint ())
    ops;
  drop 0;
  drop 1;
  let dump = scan subject.dyn in
  subject.dyn.Dyn.d_close ();
  dump

let engines =
  [
    Stores.Pebblesdb;
    Stores.Hyperleveldb;
    Stores.Leveldb;
    Stores.Rocksdb;
    Stores.Btree;
    Stores.Wiredtiger;
  ]

let test_engine engine () =
  for seed = 0 to n_seeds - 1 do
    let ops = gen_ops seed in
    ignore (replay ~seed (plain_subject engine) ops);
    ignore (replay ~seed (sharded_subject engine 1) ops);
    ignore (replay ~seed (sharded_subject engine 4) ops)
  done

(* Resplit-differential: the same seeded sequences replayed while a
   schedule forces split/merge/migrations at fixed op indices.  Every
   checkpoint (point lookups, scans, pinned-snapshot reads) must match
   the oracle exactly across the moves, and the final dump must equal a
   static-shard replay of the identical sequence — migrations must be
   invisible to the data. *)
let n_resplit_seeds = 12

let test_resplit engine ~seeds () =
  for seed = 0 to seeds - 1 do
    let ops = gen_ops seed in
    let base = replay ~seed (sharded_subject engine 4) ops in
    List.iter
      (fun (schedule_name, schedule) ->
        let dump =
          replay ~seed (elastic_subject engine ~schedule_name schedule) ops
        in
        if dump <> base then
          Alcotest.failf
            "seed %d, %s/%s: final dump diverged from the static-shard \
             replay (%d vs %d entries)"
            seed (Stores.engine_name engine) schedule_name (List.length dump)
            (List.length base))
      schedules
  done

(* Each compaction policy replayed against the oracle on the engine that
   implements it (flsm_guarded -> the FLSM engine, the LSM layouts -> the
   leveled/tiered engine); tiered levels' overlapping runs and the
   lazy-leveled hybrid must stay invisible to reads. *)
let policy_subject policy =
  let engine = Stores.engine_for_policy Stores.Hyperleveldb policy in
  let tweak o = { (small o) with O.compaction_policy = policy } in
  {
    name =
      Printf.sprintf "%s/policy=%s"
        (Stores.engine_name engine)
        (O.compaction_policy_name policy);
    dyn = Stores.open_engine ~tweak ~env:(Env.create ()) engine;
    snapshot = None;
    get_at = None;
    release = ignore;
    on_op = None;
  }

let n_policy_seeds = 8

let test_policy policy () =
  for seed = 0 to n_policy_seeds - 1 do
    ignore (replay ~seed (policy_subject policy) (gen_ops seed))
  done

(* The sharded snapshot machinery is the part most at risk of skew (a
   fence is a vector of per-shard sequences): pin a snapshot, churn every
   key, and demand the pinned view intact. *)
let test_snapshot_isolation engine () =
  let sh =
    Stores.open_sharded ~tweak:(shard_tweak ~shards:4) ~env:(Env.create ())
      engine
  in
  let store = sh.Stores.s_dyn in
  for i = 0 to keyspace - 1 do
    store.Dyn.d_put (key i) (Printf.sprintf "before%d" i)
  done;
  let snap = (Option.get sh.Stores.s_snapshot) () in
  let get_at = Option.get sh.Stores.s_get_at in
  for round = 0 to 2 do
    for i = 0 to keyspace - 1 do
      if (i + round) mod 3 = 0 then store.Dyn.d_delete (key i)
      else store.Dyn.d_put (key i) (Printf.sprintf "after%d-%d" round i)
    done
  done;
  store.Dyn.d_flush ();
  store.Dyn.d_compact_all ();
  for i = 0 to keyspace - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "pinned view of %s survives churn" (key i))
      (Some (Printf.sprintf "before%d" i))
      (get_at snap (key i))
  done;
  sh.Stores.s_release snap;
  store.Dyn.d_close ()

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        List.map
          (fun engine ->
            Alcotest.test_case
              (Printf.sprintf "%s x %d seeds x {plain,1s,4s}"
                 (Stores.engine_name engine) n_seeds)
              `Slow (test_engine engine))
          engines );
      ( "resplit",
        [
          Alcotest.test_case
            (Printf.sprintf "pebblesdb x %d seeds x %d schedules"
               n_resplit_seeds (List.length schedules))
            `Slow
            (test_resplit Stores.Pebblesdb ~seeds:n_resplit_seeds);
          Alcotest.test_case "leveldb x 4 seeds x 3 schedules" `Slow
            (test_resplit Stores.Leveldb ~seeds:4);
          Alcotest.test_case
            "kyotocabinet-sim x 4 seeds x 3 schedules (inline copy)" `Slow
            (test_resplit Stores.Btree ~seeds:4);
        ] );
      ( "compaction policies",
        List.map
          (fun policy ->
            Alcotest.test_case
              (Printf.sprintf "%s x %d seeds"
                 (O.compaction_policy_name policy)
                 n_policy_seeds)
              `Slow (test_policy policy))
          O.all_compaction_policies );
      ( "snapshot isolation",
        [
          Alcotest.test_case "pebblesdb x4 shards" `Quick
            (test_snapshot_isolation Stores.Pebblesdb);
          Alcotest.test_case "leveldb x4 shards" `Quick
            (test_snapshot_isolation Stores.Leveldb);
        ] );
    ]
