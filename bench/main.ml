(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (chapter 5, plus the chapter-2 motivation), then runs
   Bechamel micro-benchmarks on the core data-structure operations.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig1.1 ... # selected experiments
     dune exec bench/main.exe micro      # only the bechamel section
     dune exec bench/main.exe -- --json mt-smoke
                                         # also write results to BENCH.json *)

let run_bechamel () =
  print_endline "\n#### micro — Bechamel micro-benchmarks (core operations)";
  let open Bechamel in
  let open Toolkit in
  let memtable_insert =
    Test.make ~name:"memtable.add x100"
      (Staged.stage (fun () ->
           let m = Pdb_kvs.Memtable.create () in
           for i = 0 to 99 do
             Pdb_kvs.Memtable.add m ~seq:i ~kind:Pdb_kvs.Internal_key.Value
               ~user_key:(Printf.sprintf "key%06d" (i * 7919 mod 100))
               ~value:"value"
           done))
  in
  let bloom = Pdb_bloom.Bloom.create 10_000 in
  let () =
    for i = 0 to 9_999 do
      Pdb_bloom.Bloom.add bloom (Printf.sprintf "key%06d" i)
    done
  in
  let bloom_check =
    Test.make ~name:"bloom.mem x2"
      (Staged.stage (fun () ->
           ignore (Pdb_bloom.Bloom.mem bloom "key004242");
           ignore (Pdb_bloom.Bloom.mem bloom "missing-key")))
  in
  let sl =
    let sl = Pdb_skiplist.Skiplist.create ~compare:String.compare "" "" in
    for i = 0 to 9_999 do
      Pdb_skiplist.Skiplist.insert sl (Printf.sprintf "key%06d" i) "v"
    done;
    sl
  in
  let skiplist_seek =
    Test.make ~name:"skiplist.seek"
      (Staged.stage (fun () ->
           ignore (Pdb_skiplist.Skiplist.seek sl "key004242")))
  in
  let level =
    let level = Pebblesdb.Guard.create_level () in
    Pebblesdb.Guard.commit_guards level
      (List.init 512 (fun i -> Printf.sprintf "g%06d" (i * 16)));
    level
  in
  let guard_search =
    Test.make ~name:"guard.index"
      (Staged.stage (fun () ->
           ignore (Pebblesdb.Guard.guard_index level "g004242")))
  in
  let murmur =
    Test.make ~name:"murmur3+trailing_ones"
      (Staged.stage (fun () ->
           ignore
             (Pdb_util.Murmur3.trailing_ones
                (Pdb_util.Murmur3.hash32 "some-user-key-0042"))))
  in
  let tests =
    [ memtable_insert; bloom_check; skiplist_seek; guard_search; murmur ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let instances = Instance.[ monotonic_clock ] in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json, args = List.partition (fun a -> a = "--json") args in
  if json <> [] then Pdb_harness.Bench_util.Json.enable ();
  (match args with
  | [] ->
    Pdb_harness.Experiments.run_all ();
    run_bechamel ()
  | [ "micro" ] -> run_bechamel ()
  | ids ->
    List.iter
      (fun id ->
        if id = "micro" then run_bechamel ()
        else Pdb_harness.Experiments.run_by_id id)
      ids);
  if json <> [] then begin
    Pdb_harness.Bench_util.Json.write_file "BENCH.json";
    print_endline "\nwrote BENCH.json"
  end
