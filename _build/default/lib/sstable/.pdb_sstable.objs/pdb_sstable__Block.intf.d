lib/sstable/block.mli: Pdb_kvs
