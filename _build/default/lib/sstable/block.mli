(** Sstable data/index blocks with prefix compression and restart points
    (LevelDB block format).

    Entry: [varint shared | varint non_shared | varint value_len |
    key_delta | value].  Every {!restart_interval} entries the full key is
    stored and its offset recorded in the restart array, enabling binary
    search within the block. *)

val restart_interval : int

module Builder : sig
  type t

  val create : unit -> t

  (** [add t key value] appends an entry; keys must arrive in strictly
      ascending order under the table's comparator. *)
  val add : t -> string -> string -> unit

  val current_size_estimate : t -> int
  val is_empty : t -> bool

  (** [finish t] returns the serialised block. *)
  val finish : t -> string

  val reset : t -> unit
end

(** Decoded view over a serialised block. *)
type t

(** @raise Invalid_argument on a corrupt block. *)
val decode : string -> t

val size_bytes : t -> int

(** [iterator ~compare t] walks the block's entries; [compare] orders the
    stored keys (internal-key order for data blocks). *)
val iterator : compare:(string -> string -> int) -> t -> Pdb_kvs.Iter.t

(** [entries ~compare t] decodes the whole block in order — test helper. *)
val entries : compare:(string -> string -> int) -> t -> (string * string) list
