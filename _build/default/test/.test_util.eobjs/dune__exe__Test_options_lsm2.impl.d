test/test_options_lsm2.ml: Alcotest Array Fun List Pdb_kvs Pdb_lsm Pdb_simio Pdb_util Printf String
