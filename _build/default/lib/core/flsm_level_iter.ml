(** Iterator over one FLSM level.

    Within a guard the sstables may overlap, so the guard's tables are
    merged; across guards the ranges are disjoint and sorted, so the
    iterator concatenates guard merges in order.  Empty guards are skipped
    (the paper notes reads "skip over empty guards", §3.3).

    When [parallel] is set (PebblesDB's parallel seeks, used for the last
    level, §4.2), positioning the tables of a guard charges the device for
    the *slowest* table only: each table's positioning cost is measured and
    the remainder refunded, modelling overlapped IO; the modeled CPU cost
    is still paid per table. *)

module Ik = Pdb_kvs.Internal_key
module Iter = Pdb_kvs.Iter
module Clock = Pdb_simio.Clock
module Table = Pdb_sstable.Table

let create ~(level : Guard.level) ~cache ~block_cache ~hint ~on_table
    ~(parallel : Clock.t option) () =
  let nguards () = Array.length level.Guard.guards in
  let cur_guard = ref (-1) in
  let merged = ref None in
  (* Position every table of guard [gi]; [target = None] means first key. *)
  let position_guard gi target =
    cur_guard := gi;
    let tables = level.Guard.guards.(gi).Guard.tables in
    match tables with
    | [] -> merged := None
    | _ ->
      let costs = ref [] in
      let children =
        List.map
          (fun m ->
            let before =
              match parallel with
              | Some clock -> Clock.lane_time clock
              | None -> 0.0
            in
            let reader = Pdb_sstable.Table_cache.find cache m in
            let it = Table.iterator reader ~cache:block_cache ~hint in
            on_table ();
            (match target with
             | Some k -> it.Iter.seek k
             | None -> it.Iter.seek_to_first ());
            (match parallel with
             | Some clock -> costs := (Clock.lane_time clock -. before) :: !costs
             | None -> ());
            it)
          tables
      in
      (match parallel with
       | Some clock ->
         (* overlap the reads: pay the slowest plus a queueing share of the
            rest (parallel IO on flash is fast but not free, §3.4) *)
         let total = List.fold_left ( +. ) 0.0 !costs in
         let slowest = List.fold_left Float.max 0.0 !costs in
         if total > slowest then
           Clock.refund clock (0.5 *. (total -. slowest))
       | None -> ());
      merged :=
        Some
          (Pdb_kvs.Merging_iter.create ~positioned:true ~compare:Ik.compare
             children)
  in
  let current () =
    match !merged with
    | Some it when it.Iter.valid () -> Some it
    | Some _ | None -> None
  in
  let rec skip_empty_forward () =
    match current () with
    | Some _ -> ()
    | None ->
      if !cur_guard >= 0 && !cur_guard + 1 < nguards () then begin
        position_guard (!cur_guard + 1) None;
        skip_empty_forward ()
      end
  in
  {
    Iter.seek_to_first =
      (fun () ->
        if nguards () = 0 then merged := None
        else begin
          position_guard 0 None;
          skip_empty_forward ()
        end);
    seek =
      (fun target ->
        let uk = Ik.user_key target in
        let gi = Guard.guard_index level uk in
        position_guard gi (Some target);
        skip_empty_forward ());
    next =
      (fun () ->
        (match current () with
         | Some it -> it.Iter.next ()
         | None -> ());
        skip_empty_forward ());
    valid = (fun () -> Option.is_some (current ()));
    key =
      (fun () ->
        match current () with
        | Some it -> it.Iter.key ()
        | None -> invalid_arg "Flsm_level_iter: iterator is not valid");
    value =
      (fun () ->
        match current () with
        | Some it -> it.Iter.value ()
        | None -> invalid_arg "Flsm_level_iter: iterator is not valid");
  }
