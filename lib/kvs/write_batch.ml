(** Write batches: an ordered group of puts/deletes applied atomically.

    The batch's serialised form is also the WAL record payload, so recovery
    replays batches exactly.  Format (LevelDB-flavoured):
    [fixed64 base_seq | fixed32 count | ops], each op being a tag byte
    followed by length-prefixed key (and value for puts). *)

type op = Put of string * string | Delete of string

type t = {
  mutable ops : op list;
  mutable count : int;
  mutable payload : int;
  mutable bulk : bool;
}

let create () = { ops = []; count = 0; payload = 0; bulk = false }

(** [mark_bulk t] tags the batch as an internal bulk move (e.g. a shard
    migration copy): engines charge the per-request software overhead
    once for the whole batch instead of once per entry — the entries
    already paid it when the user first wrote them.  The tag is
    process-local; it does not survive WAL encoding (replay is its own
    request). *)
let mark_bulk t = t.bulk <- true

let is_bulk t = t.bulk

let put t k v =
  t.ops <- Put (k, v) :: t.ops;
  t.count <- t.count + 1;
  t.payload <- t.payload + String.length k + String.length v

let delete t k =
  t.ops <- Delete k :: t.ops;
  t.count <- t.count + 1;
  t.payload <- t.payload + String.length k

let count t = t.count

(** [payload_bytes t] is the user-data volume in the batch (keys + values) —
    the denominator of write amplification. *)
let payload_bytes t = t.payload

(** [ops t] lists the operations in insertion order. *)
let ops t = List.rev t.ops

let iter t f = List.iter f (ops t)

(** [encode t ~base_seq] serialises the batch; operation [i] carries
    sequence number [base_seq + i]. *)
let encode t ~base_seq =
  let buf = Buffer.create (64 + t.payload) in
  Pdb_util.Varint.put_fixed64 buf (Int64.of_int base_seq);
  Pdb_util.Varint.put_fixed32 buf t.count;
  List.iter
    (fun op ->
      match op with
      | Put (k, v) ->
        Buffer.add_char buf '\001';
        Pdb_util.Varint.put_length_prefixed buf k;
        Pdb_util.Varint.put_length_prefixed buf v
      | Delete k ->
        Buffer.add_char buf '\000';
        Pdb_util.Varint.put_length_prefixed buf k)
    (ops t);
  Buffer.contents buf

(** [decode s] recovers [(batch, base_seq)].  Raises [Invalid_argument] on
    malformed input. *)
let decode s =
  let base_seq = Int64.to_int (Pdb_util.Varint.get_fixed64 s 0) in
  let count = Pdb_util.Varint.get_fixed32 s 8 in
  let t = create () in
  let pos = ref 12 in
  for _ = 1 to count do
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | '\001' ->
      let k, p = Pdb_util.Varint.get_length_prefixed s !pos in
      let v, p = Pdb_util.Varint.get_length_prefixed s p in
      pos := p;
      put t k v
    | '\000' ->
      let k, p = Pdb_util.Varint.get_length_prefixed s !pos in
      pos := p;
      delete t k
    | c -> invalid_arg (Printf.sprintf "Write_batch.decode: bad tag %C" c)
  done;
  (t, base_seq)
