(** PebblesDB: a key-value store built over Fragmented Log-Structured Merge
    trees (chapters 3 and 4 of the paper).

    The engine keeps the LevelDB-family shape — memtable + WAL in front of
    a hierarchy of sstable levels recovered through a MANIFEST — but
    replaces the per-level disjointness invariant with guards:

    - level 0 collects fresh memtable flushes (no guards);
    - every deeper level is partitioned by guards ({!Guard}); sstables
      inside a guard may overlap, so compaction *appends* partitioned
      fragments to the next level's guards instead of rewriting the next
      level (§3.4 — the mechanism that removes write amplification);
    - the last level merges within guards, and the second-to-last level
      rewrites in place when merging into a full last-level guard would
      cost more than [last_level_merge_io_factor] times the fragment
      (§3.4's 25x heuristic);
    - reads consult one guard per level, filtered by per-sstable bloom
      filters (§4.1); seeks merge the guard's tables, with parallel seeks
      on the last level and seek-triggered compaction (§4.2). *)

module Ik = Pdb_kvs.Internal_key
module Iter = Pdb_kvs.Iter
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Device = Pdb_simio.Device
module Table = Pdb_sstable.Table
module Wal = Pdb_wal.Wal
module Manifest = Pdb_manifest.Manifest
module Stats = Pdb_kvs.Engine_stats
module Job = Pdb_compaction.Job
module Scheduler = Pdb_compaction.Scheduler
module Policy = Pdb_compaction.Policy
module Sched = Pdb_simio.Sched
module Bp = Pdb_kvs.Backpressure

type t = {
  opts : O.t;
  policy : Policy.t; (* the flsm_guarded policy: triggers consult it *)
  env : Env.t;
  dir : string;
  clock : Clock.t;
  sched : Scheduler.t; (* shared background-compaction scheduler *)
  bp : Bp.t; (* shared write-throttling controller (Backpressure) *)
  stats : Stats.t;
  probe : Pdb_simio.Probe.ctx; (* parallel-probe budget sessions *)
  table_cache : Pdb_sstable.Table_cache.t;
  block_cache : Pdb_sstable.Block_cache.t;
  mutable mem : Pdb_kvs.Memtable.t;
  mutable wal : Wal.Writer.t;
  mutable wal_number : int;
  mutable manifest : Manifest.t;
  mutable next_file : int;
  mutable last_seq : int;
  mutable l0 : Table.meta list; (* newest first *)
  levels : Guard.level array; (* slots 1 .. max_levels-1 *)
  committed : (string, unit) Hashtbl.t array; (* guard keys per level *)
  uncommitted : (string, unit) Hashtbl.t array;
  mutable consecutive_seeks : int;
  mutable obsolete : string list;
  snapshots : Pdb_kvs.Snapshots.t;
  mutable closed : bool;
}

let log_name dir n = Printf.sprintf "%s/%06d.log" dir n

let new_file_number t =
  let n = t.next_file in
  t.next_file <- n + 1;
  n

let charge_cpu t ns = Clock.advance_cpu t.clock ns
let last_level t = t.opts.O.max_levels - 1

let user_range_overlap (m : Table.meta) key =
  String.compare (Ik.user_key m.Table.smallest) key <= 0
  && String.compare key (Ik.user_key m.Table.largest) <= 0

(* While a snapshot is live, superseded files are pinned (a snapshot
   iterator may still read them); they are collected at the next mutating
   operation after the last snapshot is released. *)
let gc_obsolete t =
  if Pdb_kvs.Snapshots.is_empty t.snapshots then begin
    List.iter
      (fun name ->
        (* drop the dead file's decoded blocks with it: they can never
           hit again and would squat in the shared LRU *)
        Pdb_sstable.Block_cache.evict_file t.block_cache ~file:name;
        Env.delete t.env name)
      t.obsolete;
    t.obsolete <- []
  end

(* Foreground trace instants (WAL rotations, group commits), stamped at
   the clock's current modeled time; no-ops without an attached tracer. *)
let trace_instant t ?(args = []) ~name ~cat () =
  match Env.tracer t.env with
  | Some tr ->
    Pdb_simio.Trace.instant tr ~args ~name ~cat ~lane:"foreground"
      ~ts_ns:(Clock.elapsed_ns (Clock.snapshot t.clock))
      ()
  | None -> ()

(* ---------- guard selection (§3.2) ---------- *)

(* Record [key] as an uncommitted guard for every level where it qualifies
   but is not yet committed.  Deterministic (hash-based), so re-inserting
   the same key is idempotent. *)
let note_guard_candidate t key =
  match Guard_selector.guard_level t.opts key with
  | None -> ()
  | Some l ->
    for level = l to last_level t do
      if
        (not (Hashtbl.mem t.committed.(level) key))
        && not (Hashtbl.mem t.uncommitted.(level) key)
      then Hashtbl.replace t.uncommitted.(level) key ()
    done

(* ---------- table building ---------- *)

let make_builder t =
  Table.Builder.create t.env ~dir:t.dir ~number:(new_file_number t)
    ~prefix_bloom_len:t.opts.O.prefix_bloom_len
    ~block_bytes:t.opts.O.block_bytes ~bloom:t.opts.O.sstable_bloom
    ~expected_keys:(max 16 (t.opts.O.sstable_target_bytes / 64))

(* ---------- flush (§3.4 Put) ---------- *)

let rec flush_memtable t =
  if not (Pdb_kvs.Memtable.is_empty t.mem) then begin
    let mem = t.mem in
    (* the flush is a background job: the scheduler runs it immediately
       (a full memtable gates the triggering write) and places its
       device time on a worker lane *)
    let meta = ref None in
    Scheduler.run_now t.sched
      {
        Job.key = "flush";
        trigger = Job.Memtable_full;
        estimated_bytes = Pdb_kvs.Memtable.approximate_bytes mem;
        footprint = Sched.full_range ~level_lo:0 ~level_hi:0;
        run =
          (fun () ->
            let builder = make_builder t in
            List.iter
              (fun (ik, v) ->
                Clock.advance t.clock t.opts.O.cpu_per_merge_entry_ns;
                Table.Builder.add builder ik v)
              (Pdb_kvs.Memtable.contents mem);
            meta := Table.Builder.finish builder);
      };
    let meta = !meta in
    (match meta with
     | Some meta ->
       t.l0 <- meta :: t.l0;
       t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
       t.stats.Stats.sstables_built <- t.stats.Stats.sstables_built + 1
     | None -> ());
    (* rotate the WAL: the old log may only be deleted once the manifest
       edit naming its successor (and the flushed table) is durable —
       deleting first would lose the memtable to a crash in between *)
    let old_log = t.wal_number in
    let new_log = new_file_number t in
    t.wal <- Wal.Writer.create t.env (log_name t.dir new_log);
    t.wal_number <- new_log;
    t.mem <- Pdb_kvs.Memtable.create ();
    let e = Manifest.empty_edit () in
    e.Manifest.log_number <- Some new_log;
    e.Manifest.next_file_number <- Some t.next_file;
    e.Manifest.last_sequence <- Some t.last_seq;
    (match meta with
     | Some m -> e.Manifest.added_files <- [ (0, m) ]
     | None -> ());
    Manifest.append t.manifest e;
    Env.delete t.env (log_name t.dir old_log);
    trace_instant t ~name:"wal-rotate" ~cat:"wal"
      ~args:
        [
          ("old", string_of_int old_log); ("new", string_of_int new_log);
        ]
      ();
    maybe_compact t
  end

(* ---------- compaction (§3.4) ---------- *)

and level_bytes t level = Guard.bytes t.levels.(level)

(* Merge [inputs] and partition the result along the guards of
   [target_level], appending fragments to their guards.

   The 25x heuristic (§3.4): when compacting the second-highest level into
   the last, a fragment aimed at a *full* last-level guard whose resident
   data dwarfs the fragment is instead rewritten within the source level —
   "FLSM will rewrite an sstable into the same level if the alternative is
   to merge into a large sstable in the highest level".  Redirected output
   is cut at *source*-level guard granularity with the large (last-level)
   size cutoff, so the rewrite coalesces the guard instead of fragmenting
   it further.  Returns the (attach_level, meta) list for the manifest
   edit. *)
and run_partition_merge t ~inputs ~source_level ~target_level =
  let target = t.levels.(target_level) in
  let bottom = target_level = last_level t in
  let big_cutoff = 16 * t.opts.O.sstable_target_bytes in
  (* per-target-guard redirect decision, fixed for the whole compaction *)
  let redirect =
    if bottom && source_level = target_level - 1 && source_level >= 1 then
      Array.map
        (fun (g : Guard.guard) ->
          List.length g.Guard.tables >= t.opts.O.max_sstables_per_guard
          &&
          let guard_bytes =
            List.fold_left
              (fun a (m : Table.meta) -> a + m.Table.file_size)
              0 g.Guard.tables
          in
          float_of_int guard_bytes
          >= t.opts.O.last_level_merge_io_factor
             *. float_of_int t.opts.O.sstable_target_bytes)
        target.Guard.guards
    else [||]
  in
  let scratch =
    Pdb_sstable.Block_cache.create ~capacity:(8 * t.opts.O.block_bytes)
  in
  let children =
    List.map
      (fun m ->
        (* bypass the table cache: compaction streams inputs sequentially *)
        let reader =
          Table.open_reader ~hint:Device.Sequential_read t.env ~dir:t.dir m
        in
        Table.iterator reader ~cache:scratch ~hint:Device.Sequential_read)
      inputs
  in
  let merged = Pdb_kvs.Merging_iter.create ~compare:Ik.compare children in
  let outputs = ref [] in
  let builder = ref None in
  (* partition token of the open builder: (attach_level, guard_index) *)
  let builder_token = ref (-1, -1) in
  let builder_cutoff = ref 0 in
  let finish_builder () =
    match !builder with
    | None -> ()
    | Some b ->
      (match Table.Builder.finish b with
       | Some meta ->
         outputs := (fst !builder_token, meta) :: !outputs;
         t.stats.Stats.sstables_built <- t.stats.Stats.sstables_built + 1
       | None -> ());
      builder := None
  in
  let get_builder token cutoff =
    match !builder with
    | Some b when !builder_token = token -> b
    | Some _ | None ->
      finish_builder ();
      let b = make_builder t in
      builder := Some b;
      builder_token := token;
      builder_cutoff := cutoff;
      b
  in
  (* output is cut at committed AND pending boundaries, so pending guards
     become committable at their next opportunity *)
  let target_bounds = partition_boundaries t target_level in
  let source_bounds =
    if source_level >= 1 then partition_boundaries t source_level else [||]
  in
  (* previous entry seen for the current user key: (key, its seq) *)
  let last_entry = ref None in
  merged.Iter.seek_to_first ();
  while merged.Iter.valid () do
    let ikey = merged.Iter.key () in
    let uk = Ik.user_key ikey in
    let cur_seq = Ik.seq ikey in
    Clock.advance t.clock t.opts.O.cpu_per_merge_entry_ns;
    let drop =
      match !last_entry with
      | Some (prev, prev_seq) when String.equal prev uk ->
        (* superseded version: droppable only when the newer version is
           visible to every live snapshot *)
        Pdb_kvs.Snapshots.droppable t.snapshots ~prev_seq:(Some prev_seq)
          ~last_seq:t.last_seq
      | _ ->
        (* freshest version of this key.  A tombstone may die here only if
           the target guard holds no older sstables — unlike an LSM
           bottom-level compaction, a partition *append* leaves the guard's
           resident tables unmerged, so dropping the tombstone would
           resurrect older versions — and only when no snapshot still
           needs it. *)
        bottom
        && Ik.kind ikey = Ik.Deletion
        && target.Guard.guards.(Guard.guard_index target uk).Guard.tables = []
        && Pdb_kvs.Snapshots.tombstone_droppable t.snapshots ~seq:cur_seq
             ~last_seq:t.last_seq
    in
    last_entry := Some (uk, cur_seq);
    if not drop then begin
      let tgi = Guard.guard_index target uk in
      let token, cutoff =
        if Array.length redirect > tgi && redirect.(tgi) then
          (* rewrite within the source level at source granularity *)
          ((source_level, boundary_index source_bounds uk), big_cutoff)
        else
          (* a fragment is everything that falls into the guard — FLSM does
             not re-cut fragments to a target size (PebblesDB's sstables
             grow much larger than LevelDB's, Table 5.1) *)
          ((target_level, boundary_index target_bounds uk), max_int)
      in
      let b = get_builder token cutoff in
      Table.Builder.add b ikey (merged.Iter.value ());
      if Table.Builder.estimated_size b >= !builder_cutoff then
        finish_builder ()
    end;
    merged.Iter.next ()
  done;
  finish_builder ();
  List.rev !outputs

(* Sorted boundary keys of [level]: committed guards plus pending
   (uncommitted) ones.  Compaction output is always cut at these
   boundaries, so a pending guard never faces a straddling sstable for
   long: the next merge through its range dissolves the straddler, after
   which the guard commits for free. *)
and partition_boundaries t level =
  let lvl = t.levels.(level) in
  let committed =
    Array.to_list lvl.Guard.guards
    |> List.filter_map (fun (g : Guard.guard) ->
           if g.Guard.gkey = "" then None else Some g.Guard.gkey)
  in
  let pending = Hashtbl.fold (fun k () acc -> k :: acc) t.uncommitted.(level) [] in
  Array.of_list (List.sort_uniq String.compare (committed @ pending))

(* index of the boundary interval containing [key]: number of boundaries
   <= key (0 = before the first boundary, i.e. the sentinel range) *)
and boundary_index boundaries key =
  let lo = ref 0 and hi = ref (Array.length boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare boundaries.(mid) key <= 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* Commit the uncommitted guards of [level] that no resident sstable
   straddles (the others stay pending and retry at the next compaction —
   guard insertion is asynchronous, §3.3).  Returns the committed keys. *)
and prepare_guard_commit t level =
  let pending =
    Hashtbl.fold (fun k () acc -> k :: acc) t.uncommitted.(level) []
    |> List.sort String.compare
  in
  if pending = [] then []
  else begin
    let lvl = t.levels.(level) in
    let tables = Guard.all_tables lvl in
    let committable =
      List.filter
        (fun k -> not (List.exists (fun m -> Guard.straddles k m) tables))
        pending
    in
    if committable <> [] then begin
      Guard.commit_guards lvl committable;
      List.iter
        (fun k ->
          Hashtbl.replace t.committed.(level) k ();
          Hashtbl.remove t.uncommitted.(level) k)
        committable;
      t.stats.Stats.guards_committed <-
        t.stats.Stats.guards_committed + List.length committable
    end;
    committable
  end

(* Commit whatever pending guards of [level] are now straddle-free and
   persist them. *)
and commit_pending_with_edit t level =
  if Hashtbl.length t.uncommitted.(level) > 0 then begin
    let new_keys = prepare_guard_commit t level in
    if new_keys <> [] then begin
      let e = Manifest.empty_edit () in
      e.Manifest.added_guards <- List.map (fun k -> (level, k)) new_keys;
      Manifest.append t.manifest e
    end
  end

and retire_tables t inputs =
  List.iter
    (fun (m : Table.meta) ->
      Pdb_sstable.Table_cache.evict t.table_cache m.Table.number;
      t.obsolete <- Table.file_name ~dir:t.dir m.Table.number :: t.obsolete)
    inputs

and record_compaction_stats t ~inputs ~outputs =
  let bytes_of =
    List.fold_left (fun a (m : Table.meta) -> a + m.Table.file_size) 0
  in
  t.stats.Stats.compactions <- t.stats.Stats.compactions + 1;
  t.stats.Stats.compaction_bytes_read <-
    t.stats.Stats.compaction_bytes_read + bytes_of inputs;
  t.stats.Stats.compaction_bytes_written <-
    t.stats.Stats.compaction_bytes_written
    + bytes_of (List.map snd outputs)

(* Compact [source_level] into [source_level + 1].  [only_guards] restricts
   the source guards (seek-triggered compaction); default picks guards over
   the sstable trigger, falling back to all non-empty guards. *)
and compact_level t ?only_guards source_level =
  let target_level = source_level + 1 in
  assert (target_level <= last_level t);
  (* 1. source tables *)
  let source_tables =
    if source_level = 0 then t.l0
    else begin
      let lvl = t.levels.(source_level) in
      let chosen =
        match only_guards with
        | Some gs -> gs
        | None ->
          let over =
            Array.to_list lvl.Guard.guards
            |> List.filter (fun g ->
                   List.length g.Guard.tables >= t.opts.O.guard_sstable_trigger)
          in
          if over <> [] then over
          else
            Array.to_list lvl.Guard.guards
            |> List.filter (fun g -> g.Guard.tables <> [])
      in
      List.concat_map (fun g -> g.Guard.tables) chosen
    end
  in
  if source_tables <> [] then begin
    (* 2. commit the straddle-free pending guards of the target level
       (guard insertion is asynchronous, §3.3; straddled guards stay
       pending until a merge through their range dissolves the straddler,
       which the boundary-aware output cutting guarantees) *)
    let new_keys = prepare_guard_commit t target_level in
    let inputs = source_tables in
    (* 3. detach inputs *)
    if source_level = 0 then
      t.l0 <-
        List.filter
          (fun (m : Table.meta) ->
            not
              (List.exists
                 (fun (i : Table.meta) -> i.Table.number = m.Table.number)
                 source_tables))
          t.l0
    else
      Guard.detach t.levels.(source_level)
        (List.map (fun (m : Table.meta) -> m.Table.number) source_tables);
    (* 4. merge + partition + attach *)
    let outputs =
      Clock.with_background t.clock (fun () ->
          run_partition_merge t ~inputs ~source_level ~target_level)
    in
    List.iter
      (fun (attach_level, (meta : Table.meta)) ->
        Pdb_kvs.Engine_stats.bump_breakdown t.stats
          (if attach_level = target_level then
             Printf.sprintf "partition L%d->L%d" source_level target_level
           else Printf.sprintf "rewrite-in-L%d" attach_level)
          meta.Table.file_size;
        if attach_level = 0 then t.l0 <- meta :: t.l0
        else Guard.attach t.levels.(attach_level) meta)
      outputs;
    (* 5. persist *)
    let e = Manifest.empty_edit () in
    e.Manifest.next_file_number <- Some t.next_file;
    e.Manifest.added_guards <-
      List.map (fun k -> (target_level, k)) new_keys;
    e.Manifest.deleted_files <-
      List.map
        (fun (m : Table.meta) -> (source_level, m.Table.number))
        source_tables;
    e.Manifest.added_files <- outputs;
    Manifest.append t.manifest e;
    retire_tables t inputs;
    record_compaction_stats t ~inputs ~outputs
  end

(* Merge sstables within one last-level guard — the only place FLSM
   rewrites data at the bottom of the tree (§3.4).  To keep the rewrite
   amortized (tiering), the merge normally coalesces only the newest run of
   *small* fragments, leaving established large runs untouched; merging a
   newest-prefix is recency-safe but must keep tombstones (older versions
   may survive in the unmerged tail).  Only when the guard has degenerated
   into few large runs does it fall back to a full rewrite, which is also
   when tombstones can finally be dropped. *)
and compact_last_level_guard ?(force_full = false) t (g : Guard.guard) =
  if List.length g.Guard.tables >= 2 then begin
    let all = g.Guard.tables in
    let guard_bytes =
      List.fold_left (fun a (m : Table.meta) -> a + m.Table.file_size) 0 all
    in
    let small_threshold = max (2 * t.opts.O.sstable_target_bytes)
        (guard_bytes / 4) in
    let rec newest_small_prefix = function
      | (m : Table.meta) :: rest when m.Table.file_size < small_threshold ->
        m :: newest_small_prefix rest
      | _ -> []
    in
    let prefix = newest_small_prefix all in
    let inputs, drop_tombstones =
      if
        (not force_full)
        && List.length prefix >= 2
        && List.length prefix < List.length all
      then (prefix, false)
      else (all, true)
    in
    let level_idx = last_level t in
    let lvl = t.levels.(level_idx) in
    (* detach only the inputs; any remaining (older, larger) runs stay *)
    let input_numbers =
      List.map (fun (m : Table.meta) -> m.Table.number) inputs
    in
    Guard.detach lvl input_numbers;
    let outputs =
      Clock.with_background t.clock (fun () ->
          let scratch =
            Pdb_sstable.Block_cache.create
              ~capacity:(8 * t.opts.O.block_bytes)
          in
          let children =
            List.map
              (fun m ->
                let reader =
                  Table.open_reader ~hint:Device.Sequential_read t.env
                    ~dir:t.dir m
                in
                Table.iterator reader ~cache:scratch
                  ~hint:Device.Sequential_read)
              inputs
          in
          let merged =
            Pdb_kvs.Merging_iter.create ~compare:Ik.compare children
          in
          (* guard-merged tables grow large — the source of PebblesDB's
             bigger sstables (Table 5.1).  The cutoff also guarantees the
             merged run lands below the per-guard cap, so the merge cannot
             re-trigger itself. *)
          let total_bytes =
            List.fold_left
              (fun a (m : Table.meta) -> a + m.Table.file_size)
              0 inputs
          in
          let cutoff =
            max
              (16 * t.opts.O.sstable_target_bytes)
              ((total_bytes / max 1 (t.opts.O.max_sstables_per_guard - 1)) + 1)
          in
          let bounds = partition_boundaries t level_idx in
          let outputs = ref [] in
          let builder = ref None in
          let builder_segment = ref (-1) in
          let finish () =
            match !builder with
            | None -> ()
            | Some b ->
              (match Table.Builder.finish b with
               | Some meta ->
                 outputs := meta :: !outputs;
                 t.stats.Stats.sstables_built <-
                   t.stats.Stats.sstables_built + 1
               | None -> ());
              builder := None
          in
          let last_entry = ref None in
          merged.Iter.seek_to_first ();
          while merged.Iter.valid () do
            let ikey = merged.Iter.key () in
            let uk = Ik.user_key ikey in
            let cur_seq = Ik.seq ikey in
            Clock.advance t.clock t.opts.O.cpu_per_merge_entry_ns;
            let drop =
              (match !last_entry with
               | Some (prev, prev_seq) when String.equal prev uk ->
                 Pdb_kvs.Snapshots.droppable t.snapshots
                   ~prev_seq:(Some prev_seq) ~last_seq:t.last_seq
               | _ ->
                 drop_tombstones
                 && Ik.kind ikey = Ik.Deletion
                 && Pdb_kvs.Snapshots.tombstone_droppable t.snapshots
                      ~seq:cur_seq ~last_seq:t.last_seq)
            in
            last_entry := Some (uk, cur_seq);
            if not drop then begin
              (* cut at pending-guard boundaries too *)
              let segment = boundary_index bounds uk in
              if !builder_segment <> segment then begin
                finish ();
                builder_segment := segment
              end;
              let b =
                match !builder with
                | Some b -> b
                | None ->
                  let b = make_builder t in
                  builder := Some b;
                  b
              in
              Table.Builder.add b ikey (merged.Iter.value ());
              if Table.Builder.estimated_size b >= cutoff then finish ()
            end;
            merged.Iter.next ()
          done;
          finish ();
          List.rev !outputs)
    in
    List.iter
      (fun (meta : Table.meta) ->
        Pdb_kvs.Engine_stats.bump_breakdown t.stats
          (if drop_tombstones then "guard-merge-full" else "guard-merge-tier")
          meta.Table.file_size;
        Guard.attach lvl meta)
      outputs;
    let e = Manifest.empty_edit () in
    e.Manifest.next_file_number <- Some t.next_file;
    e.Manifest.deleted_files <-
      List.map (fun (m : Table.meta) -> (level_idx, m.Table.number)) inputs;
    e.Manifest.added_files <- List.map (fun m -> (level_idx, m)) outputs;
    Manifest.append t.manifest e;
    retire_tables t inputs;
    record_compaction_stats t ~inputs
      ~outputs:(List.map (fun m -> (level_idx, m)) outputs)
  end

(* Guard-scoped footprint: jobs over disjoint guards get disjoint key
   ranges, which is what lets the scheduler overlap them on separate
   worker timelines (§4.3). *)
and guard_footprint t level gkey ~level_hi =
  let lvl = t.levels.(level) in
  let key_lo, key_hi = Guard.guard_range lvl (Guard.guard_index lvl gkey) in
  { Sched.level_lo = level; level_hi; key_lo; key_hi }

and guard_bytes (g : Guard.guard) =
  List.fold_left
    (fun a (m : Table.meta) -> a + m.Table.file_size)
    0 g.Guard.tables

(* Jobs capture guard *keys*, not guard records: a preceding job in the
   queue may have spliced the guard array (commit_guards recreates
   records), so the closure re-resolves at execution time. *)
and find_guard t level gkey =
  Array.to_list t.levels.(level).Guard.guards
  |> List.find_opt (fun (g : Guard.guard) -> g.Guard.gkey = gkey)

(* ---------- policy consultation ---------- *)

(* The FLSM triggers phrased as policy scores: L0 back-pressure and level
   size are the shared [level_state] scores, guard caps are
   [guard_score].  One [Policy.should_trigger] threshold replaces the
   inline comparisons. *)
and l0_due t =
  Policy.should_trigger
    (t.policy.Policy.score
       {
         Policy.level = 0;
         last_level = last_level t;
         files = List.length t.l0;
         bytes =
           List.fold_left
             (fun a (m : Table.meta) -> a + m.Table.file_size)
             0 t.l0;
         max_bytes = O.level_max_bytes t.opts 1;
         file_trigger = t.opts.O.l0_compaction_trigger;
       })

and level_due t level =
  Policy.should_trigger
    (t.policy.Policy.score
       {
         Policy.level;
         last_level = last_level t;
         files = Guard.table_count t.levels.(level);
         bytes = level_bytes t level;
         max_bytes = O.level_max_bytes t.opts level;
         file_trigger = t.opts.O.l0_compaction_trigger;
       })

and guard_due ?cap t (g : Guard.guard) =
  let cap =
    match cap with Some c -> c | None -> t.opts.O.max_sstables_per_guard
  in
  Policy.should_trigger
    (t.policy.Policy.guard_score
       { Policy.g_tables = List.length g.Guard.tables; g_cap = cap })

and maybe_compact t =
  (* Commit pending guards of still-empty levels up front: with no resident
     sstables there is nothing to split, so the commit is pure metadata.
     This is the cheap common case — guards are selected long before data
     reaches deep levels. *)
  let eager = ref [] in
  for level = 1 to last_level t do
    if
      Guard.table_count t.levels.(level) = 0
      && Hashtbl.length t.uncommitted.(level) > 0
    then begin
      let new_keys = prepare_guard_commit t level in
      eager := List.map (fun k -> (level, k)) new_keys @ !eager
    end
  done;
  if !eager <> [] then begin
    let e = Manifest.empty_edit () in
    e.Manifest.added_guards <- !eager;
    Manifest.append t.manifest e
  end;
  (* Round-based picking: reify every trigger firing on the current state
     as a job, enqueue the batch, drain it, re-examine.  A job
     re-validates its trigger when it runs (an earlier job in the batch
     may have restructured the tree), and a job that runs without
     shrinking its measure is blocked for the rest of this invocation —
     the same no-progress guards the old inline loop used. *)
  let blocked = Hashtbl.create 8 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let submitted = ref false in
    (* [enqueue key trigger ~estimated_bytes ~footprint ~measure run]:
       progress = [measure] strictly decreased across the job's run *)
    let enqueue key trigger ~estimated_bytes ~footprint ~measure run =
      if not (Hashtbl.mem blocked key) then begin
        let job =
          {
            Job.key;
            trigger;
            estimated_bytes;
            footprint;
            run =
              (fun () ->
                let before = measure () in
                run ();
                if measure () >= before then Hashtbl.replace blocked key ());
          }
        in
        if Scheduler.submit t.sched job then submitted := true
      end
    in
    (* L0 back-pressure *)
    if l0_due t then
      enqueue "l0" Job.L0_files
        ~estimated_bytes:
          (List.fold_left
             (fun a (m : Table.meta) -> a + m.Table.file_size)
             0 t.l0)
        ~footprint:(Sched.full_range ~level_lo:0 ~level_hi:1)
        ~measure:(fun () -> List.length t.l0)
        (fun () -> if l0_due t then compact_level t 0);
    (* level size triggers — measured in bytes: 25x-redirected rewrites
       can leave the size unchanged, which must count as no progress *)
    for level = 1 to last_level t - 1 do
      if level_due t level then
        enqueue
          (Printf.sprintf "size:%d" level)
          Job.Level_size
          ~estimated_bytes:(level_bytes t level)
          ~footprint:(Sched.full_range ~level_lo:level ~level_hi:(level + 1))
          ~measure:(fun () -> level_bytes t level)
          (fun () -> if level_due t level then compact_level t level)
    done;
    (* per-guard caps: one job per full guard — FLSM's unit of compaction
       concurrency *)
    for level = 1 to last_level t - 1 do
      Array.iter
        (fun (g : Guard.guard) ->
          if guard_due t g then begin
            let gkey = g.Guard.gkey in
            let tables_of () =
              match find_guard t level gkey with
              | Some g -> List.length g.Guard.tables
              | None -> 0
            in
            enqueue
              (Printf.sprintf "cap:%d:%s" level gkey)
              Job.Guard_cap ~estimated_bytes:(guard_bytes g)
              ~footprint:(guard_footprint t level gkey ~level_hi:(level + 1))
              ~measure:tables_of
              (fun () ->
                match find_guard t level gkey with
                | Some g when guard_due t g ->
                  compact_level t ~only_guards:[ g ] level
                | Some _ | None -> ())
          end)
        t.levels.(level).Guard.guards
    done;
    (* last-level guard merges; committing pending guards first refines
       the structure (boundary-cut fragments redistribute into their own
       guards) and often removes the need to merge at all *)
    commit_pending_with_edit t (last_level t);
    let ll = last_level t in
    let last_cap = max 2 t.opts.O.max_sstables_per_guard in
    Array.iter
      (fun (g : Guard.guard) ->
        if guard_due ~cap:last_cap t g then begin
          let gkey = g.Guard.gkey in
          let tables_of () =
            match find_guard t ll gkey with
            | Some g -> List.length g.Guard.tables
            | None -> 0
          in
          enqueue
            (Printf.sprintf "last:%s" gkey)
            Job.Guard_merge ~estimated_bytes:(guard_bytes g)
            ~footprint:(guard_footprint t ll gkey ~level_hi:ll)
            ~measure:tables_of
            (fun () ->
              match find_guard t ll gkey with
              | Some g when guard_due ~cap:last_cap t g ->
                let before = List.length g.Guard.tables in
                compact_last_level_guard t g;
                if tables_of () >= before then
                  (* the tiered merge could not shrink the guard (an old
                     run straddles a pending boundary): rewrite the whole
                     guard, which dissolves every straddler *)
                  (match find_guard t ll gkey with
                   | Some g -> compact_last_level_guard ~force_full:true t g
                   | None -> ())
              | Some _ | None -> ())
        end)
      t.levels.(ll).Guard.guards;
    if !submitted then begin
      Scheduler.drain t.sched;
      continue_ := true
    end
  done

(* Seek-triggered maintenance (§4.2): compact the most fragmented guard and
   apply the aggressive level rule.  A rare whole-tree event, reified as a
   single job and drained synchronously. *)
and seek_compaction t =
  t.stats.Stats.seek_compactions <- t.stats.Stats.seek_compactions + 1;
  ignore
    (Scheduler.submit t.sched
       {
         Job.key = "seek";
         trigger = Job.Seek;
         estimated_bytes = 0;
         footprint = Sched.full_range ~level_lo:1 ~level_hi:(last_level t);
         run = (fun () -> run_seek_compaction t);
       });
  Scheduler.drain t.sched

and run_seek_compaction t =
  (* most fragmented guard across levels 1 .. last-1 *)
  let best = ref None in
  for level = 1 to last_level t - 1 do
    Array.iter
      (fun g ->
        let n = List.length g.Guard.tables in
        if n >= 2 then
          match !best with
          | Some (_, _, bn) when bn >= n -> ()
          | _ -> best := Some (level, g, n))
      t.levels.(level).Guard.guards
  done;
  (match !best with
   | Some (level, g, _) -> compact_level t ~only_guards:[ g ] level
   | None -> ());
  (* fragmented last-level guards merge in place *)
  commit_pending_with_edit t (last_level t);
  let lvl = t.levels.(last_level t) in
  let worst = ref None in
  Array.iter
    (fun g ->
      let n = List.length g.Guard.tables in
      if n >= 2 then
        match !worst with
        | Some (_, bn) when bn >= n -> ()
        | _ -> worst := Some (g, n))
    lvl.Guard.guards;
  (match !worst with
   | Some (g, _) -> compact_last_level_guard t g
   | None -> ());
  (* aggressive level rule: level i within 25% of level i+1 *)
  let continue = ref true in
  for level = 1 to last_level t - 1 do
    if !continue then begin
      let here = level_bytes t level and below = level_bytes t (level + 1) in
      if
        here > 0 && below > 0
        && float_of_int here >= t.opts.O.aggressive_level_ratio *. float_of_int below
      then begin
        compact_level t level;
        continue := false
      end
    end
  done

(* ---------- open / close ---------- *)

let apply_edit ~l0 ~levels ~committed ~wal_number ~next_file ~last_seq
    (e : Manifest.edit) =
  (match e.Manifest.log_number with Some n -> wal_number := n | None -> ());
  (match e.Manifest.next_file_number with
   | Some n -> next_file := max !next_file n
   | None -> ());
  (match e.Manifest.last_sequence with
   | Some n -> last_seq := max !last_seq n
   | None -> ());
  (* order matters: deletions, guard removals, guard additions, file adds *)
  List.iter
    (fun (level, number) ->
      if level = 0 then
        l0 :=
          List.filter (fun (m : Table.meta) -> m.Table.number <> number) !l0
      else Guard.detach levels.(level) [ number ])
    e.Manifest.deleted_files;
  List.iter
    (fun (level, key) ->
      Guard.delete_guard levels.(level) key;
      Hashtbl.remove committed.(level) key)
    e.Manifest.deleted_guards;
  List.iter
    (fun (level, key) ->
      Guard.commit_guards levels.(level) [ key ];
      Hashtbl.replace committed.(level) key ())
    e.Manifest.added_guards;
  List.iter
    (fun (level, meta) ->
      if level = 0 then l0 := meta :: !l0
      else Guard.attach levels.(level) meta)
    e.Manifest.added_files

(* Component-based so [open_store] can build the snapshot before the
   store record exists: the snapshot must be part of the fresh MANIFEST at
   creation time, or a crash between install and a follow-up append would
   leave an installed MANIFEST describing an empty store. *)
let snapshot_edit ~(opts : O.t) ~l0 ~levels ~log_number ~next_file ~last_seq =
  let levels_above = opts.O.max_levels - 1 in
  let e = Manifest.empty_edit () in
  e.Manifest.log_number <- Some log_number;
  e.Manifest.next_file_number <- Some next_file;
  e.Manifest.last_sequence <- Some last_seq;
  e.Manifest.added_guards <-
    List.concat
      (List.init levels_above (fun i ->
           let level = i + 1 in
           Array.to_list levels.(level).Guard.guards
           |> List.filter_map (fun g ->
                  if g.Guard.gkey = "" then None
                  else Some (level, g.Guard.gkey))));
  e.Manifest.added_files <-
    List.map (fun m -> (0, m)) (List.rev l0)
    @ List.concat
        (List.init levels_above (fun i ->
             let level = i + 1 in
             (* oldest-first so recovery prepends back to newest-first *)
             Array.to_list levels.(level).Guard.guards
             |> List.concat_map (fun g ->
                    List.rev_map (fun m -> (level, m)) g.Guard.tables)));
  e

(* Re-log a recovered memtable into a fresh WAL and sync it: the old log
   may only be deleted once every record it held is durable again. *)
let relog_memtable wal mem =
  if not (Pdb_kvs.Memtable.is_empty mem) then begin
    List.iter
      (fun (ik, v) ->
        let b = Pdb_kvs.Write_batch.create () in
        (match Ik.kind ik with
         | Ik.Value -> Pdb_kvs.Write_batch.put b (Ik.user_key ik) v
         | Ik.Deletion -> Pdb_kvs.Write_batch.delete b (Ik.user_key ik));
        Wal.Writer.add_record wal
          (Pdb_kvs.Write_batch.encode b ~base_seq:(Ik.seq ik)))
      (Pdb_kvs.Memtable.contents mem);
    Wal.Writer.sync wal
  end

let open_store ?block_cache (opts : O.t) ~env ~dir =
  (match opts.O.compaction_policy with
   | O.Flsm_guarded -> ()
   | (O.Leveled | O.Tiered | O.Lazy_leveled) as p ->
     invalid_arg
       (Printf.sprintf
          "Pebbles_store.open_store: policy %s has no guard structure (use \
           the LSM engine)"
          (O.compaction_policy_name p)));
  let levels = Array.init opts.O.max_levels (fun _ -> Guard.create_level ()) in
  let committed = Array.init opts.O.max_levels (fun _ -> Hashtbl.create 64) in
  let l0 = ref [] in
  let wal_number = ref 0 and next_file = ref 1 and last_seq = ref 0 in
  let mem = Pdb_kvs.Memtable.create () in
  let wal_report = ref None in
  (match Manifest.recover env ~dir with
   | Some (_, edits) ->
     List.iter
       (apply_edit ~l0 ~levels ~committed ~wal_number ~next_file ~last_seq)
       edits;
     (* L0 newest-first (descending file number) *)
     l0 :=
       List.sort
         (fun (a : Table.meta) (b : Table.meta) ->
           Int.compare b.Table.number a.Table.number)
         !l0;
     (* replay WAL into the memtable; the old log is deleted only after
        its records are durable in the fresh WAL and the fresh MANIFEST
        is installed (see below) *)
     let name = log_name dir !wal_number in
     if Env.exists env name then begin
       let records, report = Wal.Reader.read_all env name in
       let rejected = ref 0 and rejected_bytes = ref 0 in
       List.iter
         (fun record ->
           match Pdb_kvs.Write_batch.decode record with
           | exception Invalid_argument _ ->
             (* well-framed record, undecodable batch: count it, never
                silently skip it *)
             incr rejected;
             rejected_bytes := !rejected_bytes + String.length record
           | batch, base_seq ->
             let seq = ref base_seq in
             Pdb_kvs.Write_batch.iter batch (fun op ->
                 (match op with
                  | Pdb_kvs.Write_batch.Put (k, v) ->
                    Pdb_kvs.Memtable.add mem ~seq:!seq ~kind:Ik.Value
                      ~user_key:k ~value:v
                  | Pdb_kvs.Write_batch.Delete k ->
                    Pdb_kvs.Memtable.add mem ~seq:!seq ~kind:Ik.Deletion
                      ~user_key:k ~value:"");
                 incr seq);
             last_seq := max !last_seq (!seq - 1))
         records;
       wal_report := Some (report, !rejected, !rejected_bytes)
     end
   | None -> ());
  let new_log = !next_file in
  incr next_file;
  let manifest_number = !next_file in
  incr next_file;
  let wal = Wal.Writer.create env (log_name dir new_log) in
  relog_memtable wal mem;
  let snap =
    snapshot_edit ~opts ~l0:!l0 ~levels ~log_number:new_log
      ~next_file:!next_file ~last_seq:!last_seq
  in
  let t =
    {
      opts;
      policy = Policy.of_options opts;
      env;
      dir;
      clock = Env.clock env;
      sched =
        Scheduler.create ~env ~clock:(Env.clock env)
          ~flush_lanes:(if opts.O.flush_reserved_lane then 1 else 0)
          ~workers:opts.O.compaction_threads ();
      bp = Bp.create opts;
      stats = Stats.create ();
      probe =
        Pdb_simio.Probe.create_ctx ~clock:(Env.clock env)
          ~budget:(fun () ->
            match opts.O.probe_budget_override with
            | Some b -> b
            | None -> (Env.device env).Device.parallel_probe_budget)
          ~tracer:(fun () -> Env.tracer env)
          ();
      table_cache =
        Pdb_sstable.Table_cache.create ?bytes:opts.O.table_cache_bytes
          ~summary_stride:opts.O.index_summary_stride env ~dir
          ~entries:opts.O.table_cache_entries;
      block_cache =
        (match block_cache with
         | Some cache -> cache  (* shared with the caller's other shards *)
         | None ->
           Pdb_sstable.Block_cache.create ~capacity:opts.O.block_cache_bytes);
      mem;
      wal;
      wal_number = new_log;
      manifest = Manifest.create env ~dir ~number:manifest_number
          ~edits:[ snap ];
      next_file = !next_file;
      last_seq = !last_seq;
      l0 = !l0;
      levels;
      committed;
      uncommitted = Array.init opts.O.max_levels (fun _ -> Hashtbl.create 64);
      consecutive_seeks = 0;
      obsolete = [];
      snapshots = Pdb_kvs.Snapshots.create ();
      closed = false;
    }
  in
  (* Re-derive pending guard selections: a guard committed at level i is by
     construction selected at every deeper level; deeper levels that have
     not committed it yet must carry it as uncommitted again. *)
  for level = 1 to last_level t - 1 do
    Hashtbl.iter
      (fun k () ->
        for deeper = level + 1 to last_level t do
          if not (Hashtbl.mem t.committed.(deeper) k) then
            Hashtbl.replace t.uncommitted.(deeper) k ()
        done)
      t.committed.(level)
  done;
  (match !wal_report with
   | Some ((r : Wal.Reader.report), rejected, rejected_bytes) ->
     t.stats.Stats.wal_records_recovered <-
       r.Wal.Reader.records_read - rejected;
     t.stats.Stats.wal_bytes_dropped <-
       r.Wal.Reader.bytes_dropped + rejected_bytes;
     t.stats.Stats.wal_batches_rejected <- rejected
   | None -> ());
  (* the fresh MANIFEST is installed and the fresh WAL holds every
     recovered record: the crashed incarnation's files are now garbage *)
  Manifest.cleanup_stale env ~dir ~live_log_number:new_log
    ~live_manifest:(Manifest.file_name t.manifest);
  if Pdb_kvs.Memtable.approximate_bytes t.mem >= t.opts.O.memtable_bytes then
    flush_memtable t;
  t

let close t =
  t.closed <- true;
  gc_obsolete t;
  Wal.Writer.close t.wal

let options t = t.opts
let env t = t.env
let compaction_scheduler t = t.sched
let backpressure t = t.bp

(* mirror the scheduler's counters into the engine stats on read *)
let stats t =
  let st = t.stats in
  let s = Scheduler.stats t.sched in
  st.Stats.compaction_jobs <- s.Scheduler.jobs_run;
  st.Stats.compaction_queue_peak <- s.Scheduler.queue_peak;
  st.Stats.compaction_backlog_peak_bytes <- s.Scheduler.backlog_peak_bytes;
  st.Stats.compaction_serialized_jobs <- Scheduler.serialized_jobs t.sched;
  st.Stats.compaction_pending <- Scheduler.pending t.sched;
  st.Stats.compaction_backlog_bytes <- Scheduler.backlog_bytes t.sched;
  st.Stats.stall_slowdown_ns <- s.Scheduler.stall_slowdown_ns;
  st.Stats.stall_stop_ns <- s.Scheduler.stall_stop_ns;
  st.Stats.worker_busy_ns <- Scheduler.busy_ns t.sched;
  st.Stats.flush_busy_ns <- Scheduler.flush_busy_ns t.sched;
  st.Stats.compaction_by_trigger <- (Scheduler.stats t.sched).Scheduler.by_trigger;
  st.Stats.block_cache_hits <- Pdb_sstable.Block_cache.hits t.block_cache;
  st.Stats.block_cache_misses <- Pdb_sstable.Block_cache.misses t.block_cache;
  st.Stats.table_cache_hits <- Pdb_sstable.Table_cache.hits t.table_cache;
  st.Stats.table_cache_misses <- Pdb_sstable.Table_cache.misses t.table_cache;
  st.Stats.summary_hits <- Pdb_sstable.Table_cache.summary_hits t.table_cache;
  st.Stats.summary_misses <-
    Pdb_sstable.Table_cache.summary_misses t.table_cache;
  st

(* ---------- writes ---------- *)

(* All writes commit through the group path ({!Pdb_kvs.Write_group}): a
   solo write is a group of one.  The group's records are framed
   per-batch (log bytes identical at any group size), appended in one
   device write and made durable by one sync — batches are acked only
   when that sync returns. *)
let write_group t batches =
  assert (not t.closed);
  gc_obsolete t;
  t.consecutive_seeks <- 0;
  Pdb_kvs.Write_group.commit
    {
      Pdb_kvs.Write_group.count = Pdb_kvs.Write_batch.count;
      encode = Pdb_kvs.Write_batch.encode;
      alloc_seq =
        (fun n ->
          let base = t.last_seq + 1 in
          t.last_seq <- t.last_seq + n;
          base);
      before_group =
        (fun ~entries ->
          (* write throttling: the shared controller prices the group
             against compaction debt — L0 files not yet pushed down plus
             the scheduler's pending backlog — and the group pays once
             (it enters the device as one write, so penalizing every
             record would overcharge the batch it rode in on) *)
          let debt =
            {
              Bp.l0_files = List.length t.l0;
              pending_jobs = Scheduler.pending t.sched;
              backlog_bytes = Scheduler.backlog_bytes t.sched;
            }
          in
          let now_ns = Clock.elapsed_ns (Clock.snapshot t.clock) in
          let v = Bp.throttle t.bp ~now_ns ~debt ~cost:entries in
          let total = Bp.total_ns v in
          if total > 0.0 then begin
            Clock.stall t.clock total;
            Scheduler.note_stall t.sched ~slowdown_ns:v.Bp.slowdown_ns
              ~stop_ns:v.Bp.stop_ns;
            t.stats.Stats.write_stalls <- t.stats.Stats.write_stalls + 1
          end);
      before_batch =
        (fun batch ->
          let count = Pdb_kvs.Write_batch.count batch in
          let requests =
            if Pdb_kvs.Write_batch.is_bulk batch then 1 else count
          in
          charge_cpu t
            (t.opts.O.op_overhead_write_ns *. float_of_int requests);
          charge_cpu t (t.opts.O.cpu_per_op_ns *. float_of_int count));
      log_append = (fun records -> Wal.Writer.add_records t.wal records);
      log_sync = (fun () -> Wal.Writer.sync t.wal);
      apply =
        (fun batch ~base_seq ->
          let seq = ref base_seq in
          Pdb_kvs.Write_batch.iter batch (fun op ->
              charge_cpu t t.opts.O.cpu_memtable_op_ns;
              (match op with
               | Pdb_kvs.Write_batch.Put (k, v) ->
                 note_guard_candidate t k;
                 Pdb_kvs.Memtable.add t.mem ~seq:!seq ~kind:Ik.Value
                   ~user_key:k ~value:v
               | Pdb_kvs.Write_batch.Delete k ->
                 Pdb_kvs.Memtable.add t.mem ~seq:!seq ~kind:Ik.Deletion
                   ~user_key:k ~value:"");
              incr seq);
          t.stats.Stats.user_bytes_written <-
            t.stats.Stats.user_bytes_written
            + Pdb_kvs.Write_batch.payload_bytes batch);
      memtable_full =
        (fun () ->
          Pdb_kvs.Memtable.approximate_bytes t.mem >= t.opts.O.memtable_bytes);
      flush = (fun () -> flush_memtable t);
      sync_writes = t.opts.O.wal_sync_writes;
      stats = t.stats;
    }
    batches;
  (match batches with
   | [] -> ()
   | _ ->
     trace_instant t ~name:"group-commit" ~cat:"wal"
       ~args:[ ("batches", string_of_int (List.length batches)) ]
       ())

let write t batch = write_group t [ batch ]

let put t k v =
  t.stats.Stats.puts <- t.stats.Stats.puts + 1;
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put b k v;
  write t b

let delete t k =
  t.stats.Stats.deletes <- t.stats.Stats.deletes + 1;
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.delete b k;
  write t b

let flush t = flush_memtable t

(* ---------- snapshots ---------- *)

(** [snapshot t] pins the current state; reads and iterators through the
    returned sequence number see exactly the versions visible now.
    Compaction keeps whatever pinned snapshots still need; superseded files
    stay on storage until the last snapshot is released. *)
let snapshot t =
  Pdb_kvs.Snapshots.acquire t.snapshots t.last_seq;
  t.last_seq

(** [release_snapshot t s] unpins [s] (idempotence is the caller's
    responsibility: release exactly once per acquire). *)
let release_snapshot t s = Pdb_kvs.Snapshots.release t.snapshots s

(* ---------- reads (§3.4 Get, §4.1) ---------- *)

let table_lookup ?snapshot t (meta : Table.meta) key =
  (* inside a probe session (multi-table get) each lookup's device time is
     measured so independent table probes overlap up to the budget *)
  Pdb_simio.Probe.measure t.probe (fun () ->
      charge_cpu t t.opts.O.cpu_per_sstable_ns;
      t.stats.Stats.sstables_examined <- t.stats.Stats.sstables_examined + 1;
      let reader = Pdb_sstable.Table_cache.find t.table_cache meta in
      let pass_bloom =
        if Table.has_filter reader then begin
          charge_cpu t t.opts.O.cpu_bloom_check_ns;
          t.stats.Stats.bloom_checks <- t.stats.Stats.bloom_checks + 1;
          let pass = Table.may_contain reader key in
          if not pass then
            t.stats.Stats.bloom_negative <- t.stats.Stats.bloom_negative + 1;
          pass
        end
        else true
      in
      if not pass_bloom then None
      else begin
        charge_cpu t t.opts.O.cpu_per_block_search_ns;
        let lookup =
          match snapshot with
          | Some seq -> Ik.lookup_at ~user_key:key ~seq
          | None -> Ik.max_for_lookup key
        in
        match
          Table.get reader ~cache:t.block_cache ~hint:Device.Random_read
            lookup
        with
        | Some (ikey, value) when String.equal (Ik.user_key ikey) key ->
          Some (Ik.kind ikey, value)
        | Some _ | None -> None
      end)

let get ?snapshot t key =
  assert (not t.closed);
  t.stats.Stats.gets <- t.stats.Stats.gets + 1;
  charge_cpu t (t.opts.O.op_overhead_read_ns +. t.opts.O.cpu_per_op_ns);
  let mem_result =
    match snapshot with
    | Some seq -> Pdb_kvs.Memtable.get_at t.mem key ~seq
    | None -> Pdb_kvs.Memtable.get t.mem key
  in
  match mem_result with
  | Some (Some v) -> Some v
  | Some None -> None
  | None ->
    (* the candidate tables of one lookup are independent random reads:
       bracket them in a probe session so they overlap up to the budget *)
    Pdb_simio.Probe.with_session t.probe ~label:"get" (fun () ->
        let result = ref `NotFound in
        (* L0: newest first *)
        List.iter
          (fun (m : Table.meta) ->
            if !result = `NotFound && user_range_overlap m key then
              match table_lookup ?snapshot t m key with
              | Some (Ik.Value, v) -> result := `Found v
              | Some (Ik.Deletion, _) -> result := `Deleted
              | None -> ())
          t.l0;
        (* one guard per deeper level; tables newest first *)
        let level = ref 1 in
        while !result = `NotFound && !level <= last_level t do
          let lvl = t.levels.(!level) in
          charge_cpu t t.opts.O.cpu_per_block_search_ns
            (* guard binary search *);
          let gi = Guard.guard_index lvl key in
          List.iter
            (fun (m : Table.meta) ->
              if !result = `NotFound && user_range_overlap m key then
                match table_lookup ?snapshot t m key with
                | Some (Ik.Value, v) -> result := `Found v
                | Some (Ik.Deletion, _) -> result := `Deleted
                | None -> ())
            lvl.Guard.guards.(gi).Guard.tables;
          incr level
        done;
        match !result with `Found v -> Some v | `Deleted | `NotFound -> None)

(* ---------- iterators (§3.4 Range Queries, §4.2) ---------- *)

(* [upper_user] is the iterator's inclusive user-key bound: it licenses the
   seek filter to skip tables past it, and {!iterator} clamps the merged
   output so skipped tables are unobservable. *)
let internal_iterator ?upper_user t =
  let on_table () =
    charge_cpu t t.opts.O.cpu_per_sstable_ns;
    t.stats.Stats.sstables_examined <- t.stats.Stats.sstables_examined + 1
  in
  let filter =
    Pdb_sstable.Seek_filter.create ?upper_user
      ~filtering:t.opts.O.seek_filtering
      ~peek:(Pdb_sstable.Table_cache.peek t.table_cache)
      ~on_check:(fun ~skipped ->
        t.stats.Stats.seek_bloom_checks <- t.stats.Stats.seek_bloom_checks + 1;
        if skipped then
          t.stats.Stats.seek_bloom_skips <- t.stats.Stats.seek_bloom_skips + 1)
      ()
  in
  (* L0 tables overlap arbitrarily, so every seek probes all of them:
     lazy filtered wrappers skip the provably-disjoint ones and measure
     the rest for the probe session *)
  let l0_iters =
    List.map
      (fun m ->
        let it =
          Pdb_sstable.Seek_filter.table_iterator filter ~cache:t.table_cache
            ~block_cache:t.block_cache ~hint:Device.Random_read ~on_table m
        in
        {
          it with
          Iter.seek =
            (fun k ->
              Pdb_simio.Probe.measure t.probe (fun () -> it.Iter.seek k));
          seek_to_first =
            (fun () ->
              Pdb_simio.Probe.measure t.probe (fun () ->
                  it.Iter.seek_to_first ()));
        })
      t.l0
  in
  let level_iters =
    List.init (last_level t) (fun i ->
        let level = i + 1 in
        Flsm_level_iter.create ~filter ~probe:t.probe
          ~level:t.levels.(level) ~cache:t.table_cache
          ~block_cache:t.block_cache ~hint:Device.Random_read ~on_table ())
  in
  Pdb_kvs.Merging_iter.create ~compare:Ik.compare
    ((Pdb_kvs.Memtable.iterator t.mem :: l0_iters) @ level_iters)

let note_seek t =
  t.stats.Stats.seeks <- t.stats.Stats.seeks + 1;
  charge_cpu t (t.opts.O.op_overhead_read_ns +. t.opts.O.cpu_per_op_ns);
  if t.opts.O.seek_based_compaction then begin
    t.consecutive_seeks <- t.consecutive_seeks + 1;
    if t.consecutive_seeks >= t.opts.O.seek_compaction_threshold then begin
      t.consecutive_seeks <- 0;
      seek_compaction t
    end
  end

let iterator ?snapshot ?upper_bound t =
  assert (not t.closed);
  gc_obsolete t;
  let db =
    Pdb_kvs.Db_iter.wrap ?snapshot
      (internal_iterator ?upper_user:upper_bound t)
  in
  (* the bound is semantic: output is clamped to keys <= upper_bound, so
     tables the seek filter skipped as past-the-bound are unobservable *)
  let in_bound () =
    match upper_bound with
    | None -> true
    | Some up -> String.compare (db.Iter.key ()) up <= 0
  in
  let valid () = db.Iter.valid () && in_bound () in
  {
    Iter.seek =
      (fun k ->
        note_seek t;
        Pdb_simio.Probe.with_session t.probe ~label:"seek" (fun () ->
            db.Iter.seek k));
    seek_to_first =
      (fun () ->
        note_seek t;
        Pdb_simio.Probe.with_session t.probe ~label:"seek" (fun () ->
            db.Iter.seek_to_first ()));
    next =
      (fun () ->
        t.stats.Stats.nexts <- t.stats.Stats.nexts + 1;
        charge_cpu t t.opts.O.cpu_per_op_ns;
        db.Iter.next ());
    valid;
    key =
      (fun () ->
        if valid () then db.Iter.key ()
        else invalid_arg "iterator: iterator is not valid");
    value =
      (fun () ->
        if valid () then db.Iter.value ()
        else invalid_arg "iterator: iterator is not valid");
  }

(* ---------- maintenance ---------- *)

(* Drive pending work to quiescence.  Note this deliberately does NOT force
   everything into one level: PebblesDB "does not compact as aggressively
   as other key-value stores as it seeks to minimize write IO" (§5.2), so
   its fully-compacted state still has multiple sstables per guard. *)
let compact_all t =
  flush_memtable t;
  if t.l0 <> [] then
    Scheduler.run_now t.sched
      {
        Job.key = "manual:l0";
        trigger = Job.Manual;
        estimated_bytes =
          List.fold_left
            (fun a (m : Table.meta) -> a + m.Table.file_size)
            0 t.l0;
        footprint = Sched.full_range ~level_lo:0 ~level_hi:1;
        run = (fun () -> compact_level t 0);
      };
  maybe_compact t;
  gc_obsolete t

(* PebblesDB keeps every sstable's bloom filter (and effectively its index)
   resident in memory — the memory overhead Table 5.4 quantifies and §7
   proposes to optimise.  The LSM baselines construct filters lazily on
   first access, so their footprint is the table cache's residents. *)
let memory_bytes t =
  let guard_meta =
    let sum = ref 0 in
    for level = 1 to last_level t do
      sum := !sum + Guard.metadata_bytes t.levels.(level)
    done;
    !sum
  in
  let filters_and_indexes =
    (* prefer the actual decoded footprint (open reader or summary) over
       the bits-per-key estimate: the estimate drifts from reality when
       tables are smaller than sstable_target_bytes or carry prefix
       probes, and stats should not disagree with the cache's own
       accounting *)
    let per_file (m : Table.meta) =
      match Pdb_sstable.Table_cache.known_resident_bytes t.table_cache m with
      | Some b -> b
      | None ->
        (m.Table.entries * t.opts.O.bloom_bits_per_key / 8)
        + (((m.Table.file_size / t.opts.O.block_bytes) + 1) * 24)
    in
    let sum = ref 0 in
    List.iter (fun m -> sum := !sum + per_file m) t.l0;
    for level = 1 to last_level t do
      List.iter
        (fun m -> sum := !sum + per_file m)
        (Guard.all_tables t.levels.(level))
    done;
    !sum
  in
  Pdb_kvs.Memtable.approximate_bytes t.mem
  + Pdb_sstable.Block_cache.used t.block_cache
  + filters_and_indexes + guard_meta

let refresh_empty_guard_stat t =
  let n = ref 0 in
  for level = 1 to last_level t do
    n := !n + Guard.empty_guard_count t.levels.(level)
  done;
  t.stats.Stats.guards_empty <- !n

let describe t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "pebblesdb store (%s)\n" t.opts.O.name);
  Buffer.add_string buf
    (Printf.sprintf "  level 0 (no guards): %d sstables\n" (List.length t.l0));
  List.iter
    (fun (m : Table.meta) ->
      Buffer.add_string buf
        (Printf.sprintf "    #%d [%s .. %s] %dB\n" m.Table.number
           (Ik.user_key m.Table.smallest)
           (Ik.user_key m.Table.largest)
           m.Table.file_size))
    t.l0;
  for level = 1 to last_level t do
    let lvl = t.levels.(level) in
    if Guard.table_count lvl > 0 || Guard.guard_count lvl > 0 then begin
      Buffer.add_string buf
        (Printf.sprintf "  level %d (%d guards, %d sstables, %dB):\n" level
           (Guard.guard_count lvl) (Guard.table_count lvl) (Guard.bytes lvl));
      Array.iter
        (fun (g : Guard.guard) ->
          if g.Guard.tables <> [] then begin
            Buffer.add_string buf
              (Printf.sprintf "    guard %s:\n"
                 (if g.Guard.gkey = "" then "<sentinel>" else g.Guard.gkey));
            List.iter
              (fun (m : Table.meta) ->
                Buffer.add_string buf
                  (Printf.sprintf "      #%d [%s .. %s] %dB\n" m.Table.number
                     (Ik.user_key m.Table.smallest)
                     (Ik.user_key m.Table.largest)
                     m.Table.file_size))
              g.Guard.tables
          end)
        lvl.Guard.guards
    end
  done;
  Buffer.contents buf

let check_invariants t =
  (* L0 newest-first *)
  let rec check_l0 = function
    | (a : Table.meta) :: (b : Table.meta) :: rest ->
      if a.Table.number <= b.Table.number then
        failwith "flsm invariant: L0 not newest-first";
      check_l0 (b :: rest)
    | [ _ ] | [] -> ()
  in
  check_l0 t.l0;
  for level = 1 to last_level t do
    let lvl = t.levels.(level) in
    let g = lvl.Guard.guards in
    if Array.length g = 0 || g.(0).Guard.gkey <> "" then
      failwith "flsm invariant: missing sentinel guard";
    (* strictly ascending guard keys *)
    for i = 1 to Array.length g - 2 do
      if String.compare g.(i).Guard.gkey g.(i + 1).Guard.gkey >= 0 then
        failwith "flsm invariant: guard keys not ascending"
    done;
    (* skip-list property: a guard committed here is at least *selected*
       (committed or uncommitted) at every deeper level — deeper levels
       commit lazily, at their own next compaction (§3.3) *)
    if level < last_level t then
      Array.iter
        (fun (gu : Guard.guard) ->
          if
            gu.Guard.gkey <> ""
            && (not (Hashtbl.mem t.committed.(level + 1) gu.Guard.gkey))
            && not (Hashtbl.mem t.uncommitted.(level + 1) gu.Guard.gkey)
          then failwith "flsm invariant: guard not selected in deeper level")
        g;
    (* every table fits inside its guard; files exist *)
    Array.iteri
      (fun i (gu : Guard.guard) ->
        List.iter
          (fun (m : Table.meta) ->
            if not (Guard.table_fits lvl i m) then
              failwith
                (Printf.sprintf
                   "flsm invariant: table #%d straddles guard at level %d"
                   m.Table.number level);
            if
              not (Env.exists t.env (Table.file_name ~dir:t.dir m.Table.number))
            then failwith "flsm invariant: missing sstable file")
          gu.Guard.tables)
      g;
    (* committed set matches structure *)
    Array.iter
      (fun (gu : Guard.guard) ->
        if gu.Guard.gkey <> "" && not (Hashtbl.mem t.committed.(level) gu.Guard.gkey)
        then failwith "flsm invariant: structure guard missing from committed set")
      g;
    (* no guard both committed and uncommitted *)
    Hashtbl.iter
      (fun k () ->
        if Hashtbl.mem t.committed.(level) k then
          failwith "flsm invariant: guard both committed and uncommitted")
      t.uncommitted.(level)
  done

(* ---------- guard deletion (§3.3, §7) ---------- *)

(** [delete_empty_guards t] removes every guard that is empty at *every*
    level where it is committed, folding its (empty) range into the
    predecessor guard and persisting the deletions — the metadata cleanup
    the paper describes as asynchronous guard deletion (§3.3) and lists as
    future work for its own implementation (§4.4, §7).  Returns the number
    of guard keys removed.

    Deleting a guard at level [i] requires deleting it at every level
    < [i] (the skip-list property); removing only globally-empty guards
    satisfies this trivially. *)
let delete_empty_guards t =
  (* a guard key is removable iff every level where it is committed holds
     no sstables under it *)
  let removable = Hashtbl.create 16 in
  for level = 1 to last_level t do
    Array.iter
      (fun (g : Guard.guard) ->
        if g.Guard.gkey <> "" then
          match Hashtbl.find_opt removable g.Guard.gkey with
          | Some false -> ()
          | _ -> Hashtbl.replace removable g.Guard.gkey (g.Guard.tables = []))
      t.levels.(level).Guard.guards
  done;
  let doomed =
    Hashtbl.fold (fun k ok acc -> if ok then k :: acc else acc) removable []
  in
  if doomed <> [] then begin
    let edit_entries = ref [] in
    List.iter
      (fun key ->
        for level = 1 to last_level t do
          if Hashtbl.mem t.committed.(level) key then begin
            Guard.delete_guard t.levels.(level) key;
            Hashtbl.remove t.committed.(level) key;
            edit_entries := (level, key) :: !edit_entries
          end;
          (* forget any pending selection so the guard is not immediately
             re-committed *)
          Hashtbl.remove t.uncommitted.(level) key
        done)
      doomed;
    let e = Manifest.empty_edit () in
    e.Manifest.deleted_guards <- List.rev !edit_entries;
    Manifest.append t.manifest e
  end;
  List.length doomed

(* exposed for tests and experiments *)
let l0_table_count t = List.length t.l0

let guard_counts t =
  Array.init t.opts.O.max_levels (fun level ->
      if level = 0 then 0 else Guard.guard_count t.levels.(level))

let empty_guard_count t =
  refresh_empty_guard_stat t;
  t.stats.Stats.guards_empty

let sstable_metas t =
  t.l0
  @ List.concat
      (List.init (last_level t) (fun i -> Guard.all_tables t.levels.(i + 1)))

let level_sizes t =
  Array.init t.opts.O.max_levels (fun level ->
      if level = 0 then
        List.fold_left (fun a (m : Table.meta) -> a + m.Table.file_size) 0 t.l0
      else Guard.bytes t.levels.(level))

let max_tables_in_any_guard t =
  let worst = ref 0 in
  for level = 1 to last_level t do
    Array.iter
      (fun (g : Guard.guard) ->
        worst := max !worst (List.length g.Guard.tables))
      t.levels.(level).Guard.guards
  done;
  !worst
