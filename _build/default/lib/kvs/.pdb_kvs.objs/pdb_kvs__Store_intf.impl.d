lib/kvs/store_intf.ml: Engine_stats Iter Options Pdb_simio Write_batch
