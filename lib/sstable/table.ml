(** Sstables: immutable sorted tables of internal-key/value entries.

    Layout: data blocks, then an optional bloom-filter block over user keys
    (PebblesDB's sstable-level filters, §4.1), then an index block mapping
    each data block's last key to its (offset, size) handle, then a fixed
    footer.  Entries are written once, in internal-key order, and never
    updated in place.

    When [prefix_bloom_len > 0] the filter block additionally records a
    tagged probe per distinct [prefix_bloom_len]-byte user-key prefix, so
    prefix-bounded scans can skip tables whose filter proves the prefix
    absent.  The length is recorded in the footer's padding word, making
    build-time and probe-time prefix lengths agree by construction. *)

type handle = { offset : int; size : int }

let encode_handle buf h =
  Pdb_util.Varint.put_uvarint buf h.offset;
  Pdb_util.Varint.put_uvarint buf h.size

let decode_handle s pos =
  let offset, pos = Pdb_util.Varint.get_uvarint s pos in
  let size, pos = Pdb_util.Varint.get_uvarint s pos in
  ({ offset; size }, pos)

let footer_size = 28
let magic = 0x50454242 (* "PEBB" *)

(* Namespaces prefix probes away from whole-key probes within the shared
   bloom.  A collision with a real user key only risks a false positive,
   which filters tolerate by design. *)
let prefix_tag = "\x01pfx\x01"

(** Summary of a finished table, recorded in the MANIFEST. *)
type meta = {
  number : int;
  file_size : int;
  entries : int;
  smallest : string; (* encoded internal key *)
  largest : string;
}

let file_name ~dir number = Printf.sprintf "%s/%06d.sst" dir number

module Builder = struct
  type t = {
    env : Pdb_simio.Env.t;
    writer : Pdb_simio.Env.writer;
    file : string;
    number : int;
    block_bytes : int;
    prefix_bloom_len : int;
    mutable offset : int;
    data : Block.Builder.t;
    index : (string * handle) list ref; (* reversed *)
    filter : Pdb_bloom.Bloom.t option;
    mutable smallest : string option;
    mutable largest : string;
    mutable entries : int;
    mutable last_user_key : string option;
    mutable last_prefix : string option;
  }

  (** [create env ~dir ~number ~block_bytes ~bloom ~expected_keys] starts a
      new table file.  [bloom = true] attaches a per-table filter sized for
      [expected_keys]; [prefix_bloom_len > 0] also records user-key
      prefixes of that length in the same filter (sized for the extra
      probes). *)
  let create ?(prefix_bloom_len = 0) env ~dir ~number ~block_bytes ~bloom
      ~expected_keys =
    let name = file_name ~dir number in
    let expected =
      if prefix_bloom_len > 0 then 2 * max 16 expected_keys
      else max 16 expected_keys
    in
    {
      env;
      writer = Pdb_simio.Env.create_file env name;
      file = name;
      number;
      block_bytes;
      prefix_bloom_len = (if bloom then max 0 prefix_bloom_len else 0);
      offset = 0;
      data = Block.Builder.create ();
      index = ref [];
      filter = (if bloom then Some (Pdb_bloom.Bloom.create expected) else None);
      smallest = None;
      largest = "";
      entries = 0;
      last_user_key = None;
      last_prefix = None;
    }

  let write_block t builder =
    let raw = Block.Builder.finish builder in
    Pdb_simio.Env.append t.writer raw;
    let h = { offset = t.offset; size = String.length raw } in
    t.offset <- t.offset + String.length raw;
    Block.Builder.reset builder;
    h

  let flush_data_block t =
    if not (Block.Builder.is_empty t.data) then begin
      let last_key = t.largest in
      let h = write_block t t.data in
      t.index := (last_key, h) :: !(t.index)
    end

  (** [add t ikey value] appends an entry; internal keys must arrive in
      ascending order. *)
  let add t ikey value =
    if t.smallest = None then t.smallest <- Some ikey;
    t.largest <- ikey;
    t.entries <- t.entries + 1;
    (match t.filter with
     | Some f ->
       (* one filter probe key per distinct user key *)
       let uk = Pdb_kvs.Internal_key.user_key ikey in
       if t.last_user_key <> Some uk then begin
         Pdb_bloom.Bloom.add f uk;
         t.last_user_key <- Some uk;
         (* keys arrive sorted, so consecutive dedupe covers all repeats
            of a prefix *)
         if t.prefix_bloom_len > 0 && String.length uk >= t.prefix_bloom_len
         then begin
           let p = String.sub uk 0 t.prefix_bloom_len in
           if t.last_prefix <> Some p then begin
             Pdb_bloom.Bloom.add f (prefix_tag ^ p);
             t.last_prefix <- Some p
           end
         end
       end
     | None -> ());
    Block.Builder.add t.data ikey value;
    if Block.Builder.current_size_estimate t.data >= t.block_bytes then
      flush_data_block t

  let estimated_size t =
    t.offset + Block.Builder.current_size_estimate t.data

  let entry_count t = t.entries

  (** [finish t] writes filter, index and footer, syncs the file, and
      returns the table's metadata.  Empty builders produce no file and
      return [None]. *)
  let finish t =
    if t.entries = 0 then begin
      Pdb_simio.Env.close t.writer;
      Pdb_simio.Env.delete t.env t.file;
      None
    end
    else begin
      flush_data_block t;
      (* filter block *)
      let filter_handle =
        match t.filter with
        | Some f ->
          let raw = Pdb_bloom.Bloom.encode f in
          Pdb_simio.Env.append t.writer raw;
          let h = { offset = t.offset; size = String.length raw } in
          t.offset <- t.offset + String.length raw;
          h
        | None -> { offset = 0; size = 0 }
      in
      (* index block *)
      let index_builder = Block.Builder.create () in
      List.iter
        (fun (last_key, h) ->
          let buf = Buffer.create 10 in
          encode_handle buf h;
          Block.Builder.add index_builder last_key (Buffer.contents buf))
        (List.rev !(t.index));
      let index_handle = write_block t index_builder in
      (* footer *)
      let buf = Buffer.create footer_size in
      Pdb_util.Varint.put_fixed32 buf filter_handle.offset;
      Pdb_util.Varint.put_fixed32 buf filter_handle.size;
      Pdb_util.Varint.put_fixed32 buf index_handle.offset;
      Pdb_util.Varint.put_fixed32 buf index_handle.size;
      Pdb_util.Varint.put_fixed32 buf t.entries;
      Pdb_util.Varint.put_fixed32 buf magic;
      Pdb_util.Varint.put_fixed32 buf t.prefix_bloom_len;
      Pdb_simio.Env.append t.writer (Buffer.contents buf);
      t.offset <- t.offset + footer_size;
      Pdb_simio.Env.sync t.writer;
      Pdb_simio.Env.close t.writer;
      match t.smallest with
      | None -> assert false
      | Some smallest ->
        Some
          {
            number = t.number;
            file_size = t.offset;
            entries = t.entries;
            smallest;
            largest = t.largest;
          }
    end
end

(** The bloom filter of an open table.  Eager opens decode it immediately;
    summary-guided opens defer the read until the first probe actually
    needs it, so tables touched only by filtered-out seeks never pay it. *)
type filter_slot =
  | No_filter
  | Loaded of Pdb_bloom.Bloom.t
  | Lazy of handle

(** An open table: index block resident in memory (the paper's cached
    index blocks); data blocks go through the shared block cache. *)
type reader = {
  env : Pdb_simio.Env.t;
  name : string;
  meta : meta;
  index : Block.t;
  index_handle : handle;
  filter_handle : handle;
  prefix_len : int;
  mutable filter : filter_slot;
  mutable on_filter_load : (unit -> unit) option;
      (* notified when a Lazy filter materialises — the table cache
         re-weighs the entry, whose resident footprint just changed *)
}

let ikey_compare = Pdb_kvs.Internal_key.compare

(** [open_reader ?hint env ~dir meta] opens a table, reading footer, index
    and filter.  Cold point-lookups pay three random reads; compaction
    passes [~hint:Sequential_read] since it streams its freshly-written
    inputs. *)
let open_reader ?(hint = Pdb_simio.Device.Random_read) env ~dir (meta : meta) =
  let name = file_name ~dir meta.number in
  let size = Pdb_simio.Env.file_size env name in
  let footer =
    Pdb_simio.Env.read env name ~pos:(size - footer_size) ~len:footer_size
      ~hint
  in
  let filter_off = Pdb_util.Varint.get_fixed32 footer 0 in
  let filter_size = Pdb_util.Varint.get_fixed32 footer 4 in
  let index_off = Pdb_util.Varint.get_fixed32 footer 8 in
  let index_size = Pdb_util.Varint.get_fixed32 footer 12 in
  let stored_magic = Pdb_util.Varint.get_fixed32 footer 20 in
  let prefix_len = Pdb_util.Varint.get_fixed32 footer 24 in
  if stored_magic <> magic then
    failwith (Printf.sprintf "Table.open_reader %s: bad magic" name);
  let index =
    Block.decode
      (Pdb_simio.Env.read env name ~pos:index_off ~len:index_size ~hint)
  in
  let filter =
    if filter_size = 0 then No_filter
    else
      Loaded
        (Pdb_bloom.Bloom.decode
           (Pdb_simio.Env.read env name ~pos:filter_off ~len:filter_size
              ~hint))
  in
  {
    env;
    name;
    meta;
    index;
    index_handle = { offset = index_off; size = index_size };
    filter_handle = { offset = filter_off; size = filter_size };
    prefix_len;
    filter;
    on_filter_load = None;
  }

(** [open_via_summary env ~dir meta summary] reopens an evicted table
    guided by its {!Index_summary}: the footer read is skipped entirely
    (the summary retains the handles), the index read is billed as one
    inter-sample slice (the bytes beyond it are refunded — the summary
    bounds where in the index any key lives), and the filter is left
    {!Lazy} until a probe needs it. *)
let open_via_summary ?(hint = Pdb_simio.Device.Random_read) env ~dir
    (meta : meta) summary =
  let name = file_name ~dir meta.number in
  let index_off, index_size = Index_summary.index_handle summary in
  let index =
    Block.decode
      (Pdb_simio.Env.read env name ~pos:index_off ~len:index_size ~hint)
  in
  let slice = Index_summary.slice_bytes summary in
  let excess = index_size - slice in
  if excess > 0 then
    Pdb_simio.Clock.refund
      (Pdb_simio.Env.clock env)
      (float_of_int excess *. (Pdb_simio.Env.device env).Pdb_simio.Device.read_byte_ns);
  let filter_off, filter_size = Index_summary.filter_handle summary in
  {
    env;
    name;
    meta;
    index;
    index_handle = { offset = index_off; size = index_size };
    filter_handle = { offset = filter_off; size = filter_size };
    prefix_len = Index_summary.prefix_len summary;
    filter =
      (if filter_size = 0 then No_filter
       else Lazy { offset = filter_off; size = filter_size });
    on_filter_load = None;
  }

(* Materialise a lazy filter, charging the deferred random read. *)
let load_filter r =
  match r.filter with
  | No_filter -> None
  | Loaded f -> Some f
  | Lazy h ->
    let f =
      Pdb_bloom.Bloom.decode
        (Pdb_simio.Env.read r.env r.name ~pos:h.offset ~len:h.size
           ~hint:Pdb_simio.Device.Random_read)
    in
    r.filter <- Loaded f;
    (match r.on_filter_load with Some notify -> notify () | None -> ());
    Some f

(** [set_on_filter_load r f] registers a one-per-reader hook run when a
    deferred filter materialises (no-op if already resident or absent). *)
let set_on_filter_load r f = r.on_filter_load <- Some f

(** [may_contain r user_key] consults the table's bloom filter; [true] when
    no filter is attached. *)
let may_contain r user_key =
  match load_filter r with
  | Some f -> Pdb_bloom.Bloom.mem f user_key
  | None -> true

(** [may_contain_prefix r prefix] is [false] only when the table was built
    with [prefix_bloom_len = String.length prefix] and its filter proves no
    stored user key starts with [prefix]. *)
let may_contain_prefix r prefix =
  if r.prefix_len <= 0 || String.length prefix <> r.prefix_len then true
  else
    match load_filter r with
    | Some f -> Pdb_bloom.Bloom.mem f (prefix_tag ^ prefix)
    | None -> true

let has_filter r = match r.filter with No_filter -> false | _ -> true
let filter_resident r = match r.filter with Loaded _ -> true | _ -> false
let prefix_len r = r.prefix_len

(** In-memory footprint of the open table (index + filter), for Table 5.4.
    A still-lazy filter is counted at its on-disk size — the decoded bloom
    is the bit array plus a small header, so the two agree. *)
let resident_bytes r =
  Block.size_bytes r.index
  + (match r.filter with
     | Loaded f -> Pdb_bloom.Bloom.size_bytes f
     | Lazy h -> h.size
     | No_filter -> 0)

(** [summarize ~stride r] digests an open table into an {!Index_summary}
    capturing its handles and actual resident footprint. *)
let summarize ~stride r =
  let it = Block.iterator ~compare:ikey_compare r.index in
  it.Pdb_kvs.Iter.seek_to_first ();
  let entries = ref [] in
  while it.Pdb_kvs.Iter.valid () do
    let h, _ = decode_handle (it.Pdb_kvs.Iter.value ()) 0 in
    entries := (it.Pdb_kvs.Iter.key (), (h.offset, h.size)) :: !entries;
    it.Pdb_kvs.Iter.next ()
  done;
  Index_summary.build ~stride ~number:r.meta.number ~entries:r.meta.entries
    ~index_handle:(r.index_handle.offset, r.index_handle.size)
    ~filter_handle:(r.filter_handle.offset, r.filter_handle.size)
    ~prefix_len:r.prefix_len
    ~index_bytes:(Block.size_bytes r.index)
    ~filter_bytes:
      (match r.filter with
       | Loaded f -> Pdb_bloom.Bloom.size_bytes f
       | Lazy h -> h.size
       | No_filter -> 0)
    (List.rev !entries)

(* Locate the handle of the block that may contain [ikey]. *)
let find_block_handle r ikey =
  let it = Block.iterator ~compare:ikey_compare r.index in
  it.Pdb_kvs.Iter.seek ikey;
  if it.Pdb_kvs.Iter.valid () then
    let h, _ = decode_handle (it.Pdb_kvs.Iter.value ()) 0 in
    Some h
  else None

(** [get r ~cache ~hint ikey] returns the first entry with internal key >=
    [ikey], reading at most one data block. *)
let get r ~cache ~hint ikey =
  match find_block_handle r ikey with
  | None -> None
  | Some h ->
    let block, _ =
      Block_cache.find_or_load cache r.env ~file:r.name ~offset:h.offset
        ~size:h.size ~hint
    in
    let it = Block.iterator ~compare:ikey_compare block in
    it.Pdb_kvs.Iter.seek ikey;
    if it.Pdb_kvs.Iter.valid () then
      Some (it.Pdb_kvs.Iter.key (), it.Pdb_kvs.Iter.value ())
    else None

(** [iterator r ~cache ~hint] is a two-level iterator over the table. *)
let iterator r ~cache ~hint =
  let index_it = Block.iterator ~compare:ikey_compare r.index in
  let data_it = ref None in
  let load_block () =
    if index_it.Pdb_kvs.Iter.valid () then begin
      let h, _ = decode_handle (index_it.Pdb_kvs.Iter.value ()) 0 in
      let block, _ =
        Block_cache.find_or_load cache r.env ~file:r.name ~offset:h.offset
          ~size:h.size ~hint
      in
      data_it := Some (Block.iterator ~compare:ikey_compare block)
    end
    else data_it := None
  in
  let skip_exhausted () =
    let rec go () =
      match !data_it with
      | Some it when not (it.Pdb_kvs.Iter.valid ()) ->
        index_it.Pdb_kvs.Iter.next ();
        load_block ();
        (match !data_it with
         | Some it2 ->
           it2.Pdb_kvs.Iter.seek_to_first ();
           go ()
         | None -> ())
      | Some _ | None -> ()
    in
    go ()
  in
  let current () =
    match !data_it with
    | Some it when it.Pdb_kvs.Iter.valid () -> Some it
    | Some _ | None -> None
  in
  {
    Pdb_kvs.Iter.seek_to_first =
      (fun () ->
        index_it.Pdb_kvs.Iter.seek_to_first ();
        load_block ();
        (match !data_it with
         | Some it -> it.Pdb_kvs.Iter.seek_to_first ()
         | None -> ());
        skip_exhausted ());
    seek =
      (fun target ->
        index_it.Pdb_kvs.Iter.seek target;
        load_block ();
        (match !data_it with
         | Some it -> it.Pdb_kvs.Iter.seek target
         | None -> ());
        skip_exhausted ());
    next =
      (fun () ->
        (match current () with
         | Some it -> it.Pdb_kvs.Iter.next ()
         | None -> ());
        skip_exhausted ());
    valid = (fun () -> Option.is_some (current ()));
    key =
      (fun () ->
        match current () with
        | Some it -> it.Pdb_kvs.Iter.key ()
        | None -> invalid_arg "Table.iterator: iterator is not valid");
    value =
      (fun () ->
        match current () with
        | Some it -> it.Pdb_kvs.Iter.value ()
        | None -> invalid_arg "Table.iterator: iterator is not valid");
  }

(** [recover_meta env ~dir ~number] reconstructs a table's metadata from
    the file alone — the repair path when the MANIFEST is lost.  Reads the
    footer and index, and the first data block for the smallest key; the
    largest key is the index's final entry. *)
let recover_meta env ~dir ~number =
  let name = file_name ~dir number in
  let file_size = Pdb_simio.Env.file_size env name in
  let probe =
    { number; file_size; entries = 0; smallest = ""; largest = "" }
  in
  let reader = open_reader ~hint:Pdb_simio.Device.Sequential_read env ~dir probe in
  (* entry count lives in the footer *)
  let footer =
    Pdb_simio.Env.read env name ~pos:(file_size - footer_size)
      ~len:footer_size ~hint:Pdb_simio.Device.Sequential_read
  in
  let entries = Pdb_util.Varint.get_fixed32 footer 16 in
  let index_it = Block.iterator ~compare:ikey_compare reader.index in
  index_it.Pdb_kvs.Iter.seek_to_first ();
  let largest = ref "" in
  while index_it.Pdb_kvs.Iter.valid () do
    largest := index_it.Pdb_kvs.Iter.key ();
    index_it.Pdb_kvs.Iter.next ()
  done;
  let cache = Block_cache.create ~capacity:(1 lsl 16) in
  let it =
    iterator reader ~cache ~hint:Pdb_simio.Device.Sequential_read
  in
  it.Pdb_kvs.Iter.seek_to_first ();
  if not (it.Pdb_kvs.Iter.valid ()) then
    failwith (Printf.sprintf "Table.recover_meta %s: empty table" name);
  { number; file_size; entries; smallest = it.Pdb_kvs.Iter.key ();
    largest = !largest }
