lib/core/guard_selector.ml: Pdb_kvs Pdb_util
