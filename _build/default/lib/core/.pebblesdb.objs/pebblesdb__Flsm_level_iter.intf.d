lib/core/flsm_level_iter.mli: Guard Pdb_kvs Pdb_simio Pdb_sstable
