lib/btree/wt_store.ml: Bptree Filename List Pdb_kvs Pdb_simio Pdb_wal Printf String
