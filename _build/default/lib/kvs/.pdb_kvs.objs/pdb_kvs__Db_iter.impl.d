lib/kvs/db_iter.ml: Internal_key Iter Option String
