lib/btree/bptree.ml: Buffer Hashtbl List Pdb_kvs Pdb_simio Pdb_util Printf String
