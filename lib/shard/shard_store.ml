(** A range-partitioned store: N independent engine instances behind one
    {!Pdb_kvs.Store_intf.S} face.

    Each shard is a complete engine — its own WAL, MANIFEST, memtable,
    block/table caches and compaction scheduler — living under
    [<dir>/shards/<i>/] in the one shared environment, so all shards
    contend for the same simulated device while their background worker
    lanes overlap.  Point operations route by range
    ({!Shard_router.shard_of_key}); write batches split into per-shard
    sub-batches that commit through each shard's own WAL group commit;
    cross-shard scans merge per-shard iterators positioned at a common
    sequence fence; stats aggregate with a per-shard breakdown and a
    balance metric.

    Consistency note (the sequence fence): shard sequence numbers advance
    independently, so "one moment in time" across shards is a vector of
    per-shard sequence numbers captured back-to-back with no writes in
    between — which the simulation's serial execution guarantees.  A
    fence is captured before building any per-shard iterator, so a scan
    never mixes states from different prefixes of the operation order;
    {!Make.snapshot} pins a fence durably (each shard's snapshot is
    acquired) for reads at an older prefix. *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Stats = Pdb_kvs.Engine_stats
module Iter = Pdb_kvs.Iter

(** What the shard store needs from an engine: the uniform store surface
    plus shard-aware opening (a shared block cache) and fenced reads.
    Engines without snapshots (the page stores) satisfy the fenced reads
    trivially — their adapters ignore the fence and read current state. *)
module type ENGINE = sig
  include Dyn.S

  (** [open_shard opts ~env ~dir ~shared_block_cache] opens one shard;
      [shared_block_cache] (when the profile shares one cache across
      shards) replaces the engine's private block cache. *)
  val open_shard :
    Pdb_kvs.Options.t ->
    env:Pdb_simio.Env.t ->
    dir:string ->
    shared_block_cache:Pdb_sstable.Block_cache.t option ->
    t

  val snapshot : t -> int
  val release_snapshot : t -> int -> unit
  val get_at : t -> snapshot:int -> string -> string option
  val iterator_at : t -> snapshot:int -> Iter.t
end

module Make (E : ENGINE) = struct
  type t = {
    opts : O.t;
    env : Pdb_simio.Env.t;
    dir : string;
    router : Shard_router.t;
    shards : E.t array;
    shared_cache : Pdb_sstable.Block_cache.t option;
    mutable fences : (int * int array) list;
        (** live snapshot fences: id -> per-shard pinned sequences *)
    mutable next_fence : int;
    mutable transient_fence : int array option;
        (** pins backing unfenced iterators; held until the next write
            invalidates those iterators (see [capture_fence]) *)
  }

  let router t = t.router
  let shard_stores t = t.shards
  let shard_count t = Array.length t.shards
  let shared_block_cache t = t.shared_cache
  let shard_dir dir i = Printf.sprintf "%s/shards/%d" dir i

  let open_store (opts : O.t) ~env ~dir =
    let n = max 1 opts.O.shards in
    let router =
      if List.length opts.O.shard_splits = n - 1 then
        Shard_router.create ~splits:opts.O.shard_splits
      else Shard_router.uniform ~shards:n ()
    in
    let shared_cache =
      if opts.O.shard_share_block_cache then
        Some (Pdb_sstable.Block_cache.create ~capacity:opts.O.block_cache_bytes)
      else None
    in
    let shards =
      Array.init n (fun i ->
          E.open_shard opts ~env ~dir:(shard_dir dir i)
            ~shared_block_cache:shared_cache)
    in
    {
      opts;
      env;
      dir;
      router;
      shards;
      shared_cache;
      fences = [];
      next_fence = 1;
      transient_fence = None;
    }

  (* Release the pins behind unfenced iterators.  Called by every
     mutating operation: writes invalidate open iterators (the store's
     documented contract), so their fence no longer needs protecting —
     and the write also advances shard sequences, making a cached fence
     stale. *)
  let invalidate_transient t =
    match t.transient_fence with
    | Some seqs ->
      t.transient_fence <- None;
      Array.iteri (fun i s -> E.release_snapshot t.shards.(i) s) seqs
    | None -> ()

  let close t =
    invalidate_transient t;
    Array.iter E.close t.shards
  let options t = t.opts
  let env t = t.env
  let shard_of_key t key = Shard_router.shard_of_key t.router key
  let route t key = t.shards.(shard_of_key t key)

  (* ---------- writes ---------- *)

  let put t k v =
    invalidate_transient t;
    E.put (route t k) k v

  let delete t k =
    invalidate_transient t;
    E.delete (route t k) k

  (* Split one batch into per-shard sub-batches, preserving the in-batch
     operation order within each shard.  Cross-shard atomicity matches
     what a shard-per-process deployment gives: each shard's slice
     commits atomically through that shard's WAL. *)
  let split_batch t batch =
    let n = Array.length t.shards in
    let subs = Array.make n None in
    let sub i =
      match subs.(i) with
      | Some b -> b
      | None ->
        let b = Pdb_kvs.Write_batch.create () in
        subs.(i) <- Some b;
        b
    in
    Pdb_kvs.Write_batch.iter batch (fun op ->
        match op with
        | Pdb_kvs.Write_batch.Put (k, v) ->
          Pdb_kvs.Write_batch.put (sub (shard_of_key t k)) k v
        | Pdb_kvs.Write_batch.Delete k ->
          Pdb_kvs.Write_batch.delete (sub (shard_of_key t k)) k);
    subs

  let write t batch =
    invalidate_transient t;
    let subs = split_batch t batch in
    Array.iteri
      (fun i sub ->
        match sub with None -> () | Some b -> E.write t.shards.(i) b)
      subs

  (* Group commit fans out per shard: every member batch contributes its
     shard's slice, and each shard runs one group commit over the slices
     it received — one coalesced WAL append and one sync per *shard*, the
     multi-instance shape of LevelDB's writers queue. *)
  let write_group t batches =
    invalidate_transient t;
    let n = Array.length t.shards in
    let per_shard = Array.make n [] in
    List.iter
      (fun batch ->
        let subs = split_batch t batch in
        Array.iteri
          (fun i sub ->
            match sub with
            | None -> ()
            | Some b -> per_shard.(i) <- b :: per_shard.(i))
          subs)
      batches;
    Array.iteri
      (fun i subs ->
        match List.rev subs with
        | [] -> ()
        | subs -> E.write_group t.shards.(i) subs)
      per_shard

  let flush t =
    invalidate_transient t;
    Array.iter E.flush t.shards

  let compact_all t =
    invalidate_transient t;
    Array.iter E.compact_all t.shards

  (* ---------- reads ---------- *)

  let get t k = E.get (route t k) k

  (* A back-to-back capture of every shard's current sequence — the
     common fence all per-shard iterators read at.  The pins are HELD,
     not released: releasing immediately would let a compaction landing
     while the merged iterator is alive (e.g. a seek-triggered one) drop
     versions the fence should see and GC sstable files the iterator
     still reads.  Engines have no iterator close, so the pins live
     until the next write — which invalidates open iterators anyway.
     Quiescent reads reuse the cached fence: with no intervening write
     the shard sequences are unchanged, so iterator-heavy phases pin one
     fence, not one per scan. *)
  let capture_fence t =
    match t.transient_fence with
    | Some seqs -> seqs
    | None ->
      let seqs = Array.map E.snapshot t.shards in
      t.transient_fence <- Some seqs;
      seqs

  let merged_iterator t seqs =
    (* ranges are disjoint and shard order is key order, but the merge
       keeps no cross-child assumptions — it simply always yields the
       smallest current key *)
    Pdb_kvs.Merging_iter.create ~compare:String.compare
      (Array.to_list
         (Array.mapi
            (fun i shard -> E.iterator_at shard ~snapshot:seqs.(i))
            t.shards))

  let iterator t = merged_iterator t (capture_fence t)

  (* ---------- snapshots (pinned fences) ---------- *)

  let snapshot t =
    let seqs = Array.map E.snapshot t.shards in
    let id = t.next_fence in
    t.next_fence <- id + 1;
    t.fences <- (id, seqs) :: t.fences;
    id

  let fence_seqs t id =
    match List.assoc_opt id t.fences with
    | Some seqs -> seqs
    | None -> invalid_arg "Shard_store: unknown snapshot fence"

  let release_snapshot t id =
    let seqs = fence_seqs t id in
    Array.iteri (fun i s -> E.release_snapshot t.shards.(i) s) seqs;
    t.fences <- List.filter (fun (id', _) -> id' <> id) t.fences

  let get_at t ~snapshot k =
    let seqs = fence_seqs t snapshot in
    let i = shard_of_key t k in
    E.get_at t.shards.(i) ~snapshot:seqs.(i) k

  let iterator_at t ~snapshot = merged_iterator t (fence_seqs t snapshot)

  (* ---------- introspection ---------- *)

  let stats t =
    let agg =
      Stats.aggregate
        ~shared_cache:(t.shared_cache <> None)
        (Array.to_list (Array.map E.stats t.shards))
    in
    (* with one shared cache every shard already mirrors the same global
       counters; with private caches per shard the sums stand *)
    (match t.shared_cache with
     | Some cache ->
       agg.Stats.block_cache_hits <- Pdb_sstable.Block_cache.hits cache;
       agg.Stats.block_cache_misses <- Pdb_sstable.Block_cache.misses cache
     | None -> ());
    agg

  let memory_bytes t =
    let sum = Array.fold_left (fun acc s -> acc + E.memory_bytes s) 0 t.shards in
    match t.shared_cache with
    | None -> sum
    | Some cache ->
      (* every shard counted the one shared cache; keep one copy *)
      sum
      - ((Array.length t.shards - 1) * Pdb_sstable.Block_cache.used cache)

  let describe t =
    let st = stats t in
    Printf.sprintf "sharded %s — %s, balance=%.2f\n%s" t.opts.O.name
      (Shard_router.describe t.router)
      st.Stats.shard_balance
      (String.concat "\n"
         (Array.to_list
            (Array.mapi
               (fun i shard ->
                 Printf.sprintf "-- shard %d --\n%s" i (E.describe shard))
               t.shards)))

  let check_invariants t =
    Shard_router.check_invariants t.router;
    if Array.length t.shards <> Shard_router.shards t.router then
      failwith "Shard_store: shard count does not match router";
    Array.iter E.check_invariants t.shards
end
