(* YCSB session: load a PebblesDB store and run the six core workloads,
   printing per-phase throughput — a miniature of Figure 5.5.

   Run with: dune exec examples/ycsb_session.exe *)

module Dyn = Pdb_kvs.Store_intf

let () =
  let store = Pdb_harness.Stores.open_engine Pdb_harness.Stores.Pebblesdb in
  let records = 10_000 and ops = 4_000 in
  let report (r : Pdb_ycsb.Runner.result) =
    Printf.printf "%-10s %8.1f KOps/s  (%.1f MB written)\n%!"
      r.Pdb_ycsb.Runner.phase r.Pdb_ycsb.Runner.kops_per_s
      (float_of_int r.Pdb_ycsb.Runner.bytes_written /. 1048576.0)
  in
  report (Pdb_ycsb.Runner.load store ~records ~value_bytes:1024 ~seed:1);
  List.iter
    (fun spec ->
      report
        (Pdb_ycsb.Runner.run store spec ~records ~operations:ops
           ~value_bytes:1024 ~seed:1))
    Pdb_ycsb.Workload.all;
  Printf.printf "\ntotal write amplification: %.2f\n"
    (let st = store.Dyn.d_stats () in
     let io = Pdb_simio.Env.stats store.Dyn.d_env in
     float_of_int io.Pdb_simio.Io_stats.bytes_written
     /. float_of_int st.Pdb_kvs.Engine_stats.user_bytes_written);
  store.Dyn.d_close ()
