lib/simio/env.ml: Bytes Clock Device Hashtbl Io_stats List Printf String
