lib/kvs/snapshots.mli:
