(** Store repair: rebuild a usable MANIFEST from surviving sstable files —
    the equivalent of LevelDB's `RepairDB`, for the case where CURRENT or
    the MANIFEST is lost or corrupt.

    Every [NNNNNN.sst] in the directory is scanned: its metadata is
    reconstructed from footer + index, and its maximum sequence number from
    a full scan.  All recovered tables are installed at level 0 (newest
    first by file number), which is always correct — level 0 permits
    overlap, and sequence numbers keep version order — at the cost of
    letting normal compaction re-sort the data afterwards.  Guard metadata
    is discarded; the FLSM store regrows guards from future inserts.

    Stale WAL files are left in place (recovery will replay the one the new
    MANIFEST names, which is none, so they are ignored and eventually
    removed by the store). *)

module Env = Pdb_simio.Env
module Table = Pdb_sstable.Table

type report = {
  tables_recovered : int;
  entries_recovered : int;
  max_sequence : int;
}

let sst_number ~dir name =
  let prefix = dir ^ "/" in
  let plen = String.length prefix in
  if
    String.length name > plen + 4
    && String.sub name 0 plen = prefix
    && Filename.check_suffix name ".sst"
  then begin
    let stem = String.sub name plen (String.length name - plen - 4) in
    (* decimal digits only: [int_of_string_opt] would also accept "0x1f"
       or "1_0", silently "repairing" a stray file as the wrong number *)
    if String.for_all (fun c -> c >= '0' && c <= '9') stem then
      int_of_string_opt stem
    else None
  end
  else None

(* Full scan of a table for its maximum sequence number — repair is allowed
   to be expensive.  [cache] is a shared scratch block cache: each table's
   blocks are evicted after its scan (a repair pass never revisits a
   table, so keeping them would only evict the next table's blocks). *)
let max_seq_of env ~dir ~cache (meta : Table.meta) =
  let reader =
    Table.open_reader ~hint:Pdb_simio.Device.Sequential_read env ~dir meta
  in
  let it = Table.iterator reader ~cache ~hint:Pdb_simio.Device.Sequential_read in
  it.Pdb_kvs.Iter.seek_to_first ();
  let m = ref 0 in
  while it.Pdb_kvs.Iter.valid () do
    m := max !m (Pdb_kvs.Internal_key.seq (it.Pdb_kvs.Iter.key ()));
    it.Pdb_kvs.Iter.next ()
  done;
  Pdb_sstable.Block_cache.evict_file cache
    ~file:(Table.file_name ~dir meta.Table.number);
  !m

(** [repair env ~dir] rebuilds the MANIFEST; any engine can then open the
    store normally.  Raises [Failure] if an sstable is unreadable (a
    corrupt table should be removed by the operator first). *)
let repair env ~dir =
  let numbers =
    List.filter_map (sst_number ~dir) (Env.list env)
    |> List.sort compare
  in
  let metas =
    List.map (fun number -> Table.recover_meta env ~dir ~number) numbers
  in
  let cache = Pdb_sstable.Block_cache.create ~capacity:(1 lsl 16) in
  let max_sequence =
    List.fold_left (fun acc m -> max acc (max_seq_of env ~dir ~cache m)) 0 metas
  in
  let next_file =
    1 + List.fold_left (fun acc n -> max acc n) 0 numbers
  in
  let e = Manifest.empty_edit () in
  e.Manifest.next_file_number <- Some (next_file + 1);
  e.Manifest.last_sequence <- Some max_sequence;
  (* oldest-first: recovery prepends, leaving level 0 newest-first *)
  e.Manifest.added_files <- List.map (fun m -> (0, m)) metas;
  let (_ : Manifest.t) =
    Manifest.create env ~dir ~number:next_file ~edits:[ e ]
  in
  {
    tables_recovered = List.length metas;
    entries_recovered =
      List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.entries) 0 metas;
    max_sequence;
  }
