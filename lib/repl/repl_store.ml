(** Primary–backup replication for any engine, over a simulated network.

    One primary serves all client traffic; [K = opts.replicas] backups
    follow it over per-backup {!Pdb_simio.Network} links, each backup in
    its own {!Pdb_simio.Env} (its own device, clock and file system).
    Two shipping strategies (Vardoulakis et al., and the classic
    primary–backup split):

    - {b Log shipping} ([Options.Log_shipping]): every committed write
      batch/group is forwarded at group-commit granularity.  The backup
      runs a full live engine and re-applies the group — its own WAL
      append, memtable insert, and eventually its own flushes and
      compactions, burning backup CPU that duplicates the primary's.
      The primary's commit waits for the slowest backup's durable
      append (the ack), so replication cost lands in write latency.

    - {b File shipping} ([Options.File_shipping]): the backup holds no
      live engine; instead the primary mirrors its file set byte-for-
      byte — WAL deltas at commit time (acked, so durability matches
      log shipping), and sstables + manifest edits as flush/compaction
      installs them (piggybacked on the scheduler's job-completion
      hook, unacked).  The backup spends no compaction CPU at all, but
      the wire carries every byte of write amplification.

    Failover: {!Make.promote} turns backup [i] into a servable engine —
    log shipping already has one; file shipping opens the mirrored
    files through the engine's normal recovery path (CURRENT →
    MANIFEST → WAL replay).  The ack contract is the usual asynchronous
    one: writes whose ack the primary waited for survive promotion;
    writes racing a crash may or may not.

    Crash points: every shipping step registers an {!Env.io_event} on
    the primary's environment *before* touching the wire or the mirror,
    so a fault plan's sweep lands crashes mid-group, mid-ship and
    mid-manifest-install (see Harness.Crash_torture.run_failover).

    Determinism: the wrapper reads primary files only via the uncharged
    {!Env.peek}, charges only the primary's clock (ack waits), and does
    all mirror work against backup environments — so the primary's file
    set is byte-identical to an unreplicated run. *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Stats = Pdb_kvs.Engine_stats
module Iter = Pdb_kvs.Iter
module Wb = Pdb_kvs.Write_batch
module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Network = Pdb_simio.Network

(** What replication needs from an engine: the shard-store surface plus
    a completion hook on its background scheduler (file shipping mirrors
    newly installed files as each flush/compaction job finishes; engines
    without background jobs pass a no-op). *)
module type ENGINE = sig
  include Pdb_shard.Shard_store.ENGINE

  val on_job_complete : t -> (unit -> unit) -> unit
end

(** The replicated-store surface {!Make} produces: the uniform store
    face plus failover — what the harness packs into its repl handle. *)
module type REPL = sig
  include Dyn.S

  val backup_count : t -> int
  val backup_env : t -> int -> Env.t
  val strategy : t -> O.repl_strategy
  val promote_dyn : t -> int -> Dyn.dyn
end

(* Fixed per-message framing overhead (headers, lengths, checksums). *)
let frame_bytes = 64
let control_bytes = 16

module Make (E : ENGINE) = struct
  type backup = {
    b_env : Env.t;
    b_link : Network.link;
    b_store : E.t option; (* live replaying engine — log shipping only *)
    b_writers : (string, Env.writer) Hashtbl.t; (* file-shipping mirror *)
    b_shipped : (string, int) Hashtbl.t; (* shipped length per file *)
    b_other : (string, string) Hashtbl.t; (* shipped whole-file contents *)
  }

  type t = {
    opts : O.t;
    env : Env.t;
    dir : string;
    prefix : string; (* [dir ^ "/"]: only this store's files ship *)
    primary : E.t;
    strategy : O.repl_strategy;
    backups : backup array;
    net : Network.t;
    mutable log_bytes : int;
    mutable file_bytes : int;
    mutable ack_wait_ns : float;
    mutable shipping : bool; (* re-entrancy guard for ship passes *)
    mutable op_ack : float; (* latest WAL-ship finish inside current op *)
  }

  let now_ns t = Clock.elapsed_ns (Clock.snapshot (Env.clock t.env))

  (* Charge the primary's foreground lane for the interval between now
     and the slowest backup's ack — the synchronous-replication wait
     that shows up in write latency percentiles. *)
  let charge_ack t ~ack =
    let wait = ack -. now_ns t in
    if wait > 0.0 then begin
      Clock.advance (Env.clock t.env) wait;
      t.ack_wait_ns <- t.ack_wait_ns +. wait
    end

  (* Foreground time a thunk costs on a backup's own clock — the
     backup-side durable-append (or replay) latency the ack includes. *)
  let backup_fg_time b_env f =
    let clk = Env.clock b_env in
    let before = Clock.snapshot clk in
    f ();
    (Clock.diff (Clock.snapshot clk) before).Clock.foreground_ns

  (* ---------- log shipping ---------- *)

  (* Forward a committed group to every backup and wait for the slowest
     durable append + replay.  The payload is the WAL encoding of each
     member batch plus per-batch framing; the ack pays the return-trip
     propagation latency on top of delivery + backup foreground time. *)
  let ship_batches t batches =
    if Array.length t.backups > 0 then begin
      let payload =
        List.fold_left
          (fun acc b ->
            acc + control_bytes + String.length (Wb.encode b ~base_seq:0))
          0 batches
      in
      let ack = ref (now_ns t) in
      Array.iter
        (fun b ->
          Env.io_event t.env "repl:ship-wal-group";
          let deliver =
            Network.send t.net b.b_link ~bytes:payload ~label:"wal-group"
          in
          t.log_bytes <- t.log_bytes + payload;
          match b.b_store with
          | Some store ->
            let d = backup_fg_time b.b_env (fun () ->
                match batches with
                | [ one ] -> E.write store one
                | group -> E.write_group store group)
            in
            let t_ack =
              deliver +. d +. (Network.profile t.net).Network.latency_ns
            in
            if t_ack > !ack then ack := t_ack
          | None -> ())
        t.backups;
      charge_ack t ~ack:!ack
    end

  (* Forward a maintenance command (flush / compact-all) so backup file
     sets track the primary's; a tiny control message, no ack. *)
  let ship_control t label f =
    Array.iter
      (fun b ->
        match b.b_store with
        | Some store ->
          Env.io_event t.env ("repl:" ^ label);
          ignore (Network.send t.net b.b_link ~bytes:control_bytes ~label);
          t.log_bytes <- t.log_bytes + control_bytes;
          f store
        | None -> ())
      t.backups

  (* ---------- file shipping ---------- *)

  type file_class = Wal | Sst | Manifest | Other

  let classify t name =
    let p = String.length t.prefix in
    if String.length name <= p || String.sub name 0 p <> t.prefix then None
    else
      let base = Filename.basename name in
      if Filename.check_suffix base ".log" then Some Wal
      else if Filename.check_suffix base ".sst" then Some Sst
      else if
        String.length base >= 9 && String.sub base 0 9 = "MANIFEST-"
      then Some Manifest
      else Some Other

  let mirror_writer b name =
    match Hashtbl.find_opt b.b_writers name with
    | Some w -> w
    | None ->
      let w = Env.create_file b.b_env name in
      Hashtbl.replace b.b_writers name w;
      w

  (* Ship the unshipped suffix of an append-only file to one backup and
     durably append it to the mirror; a shrunk file (WAL rotation reuses
     no names here, but stay safe) reships from scratch.  Returns the
     time the backup finished persisting the delta, or None if the
     mirror was already current. *)
  let ship_append t b name ~category =
    let plen = Env.file_size t.env name in
    let sent =
      match Hashtbl.find_opt b.b_shipped name with Some n -> n | None -> -1
    in
    if sent = plen then None
    else begin
      let fresh = sent < 0 || plen < sent in
      let from = if fresh then 0 else sent in
      let delta = Env.peek t.env name ~pos:from ~len:(plen - from) in
      Env.io_event t.env ("repl:ship:" ^ name);
      let bytes = frame_bytes + String.length delta in
      let deliver =
        Network.send t.net b.b_link ~bytes ~label:(category ^ "-ship")
      in
      t.file_bytes <- t.file_bytes + bytes;
      let d = backup_fg_time b.b_env (fun () ->
          if fresh then Hashtbl.remove b.b_writers name (* reopen truncates *);
          let w = mirror_writer b name in
          Env.append w delta;
          Env.sync w)
      in
      Hashtbl.replace b.b_shipped name plen;
      Some (deliver +. d)
    end

  (* Non-append metadata (CURRENT and friends): reship the whole file
     whenever its contents change. *)
  let ship_other t b name =
    let len = Env.file_size t.env name in
    let content = Env.peek t.env name ~pos:0 ~len in
    match Hashtbl.find_opt b.b_other name with
    | Some old when String.equal old content -> ()
    | _ ->
      Env.io_event t.env ("repl:ship:" ^ name);
      let bytes = frame_bytes + String.length content in
      ignore (Network.send t.net b.b_link ~bytes ~label:"meta-ship");
      t.file_bytes <- t.file_bytes + bytes;
      ignore
        (backup_fg_time b.b_env (fun () ->
             Hashtbl.remove b.b_writers name;
             let w = mirror_writer b name in
             Env.append w content;
             Env.sync w;
             Hashtbl.remove b.b_writers name));
      Hashtbl.replace b.b_other name content

  (* Drop mirrored files the primary deleted (post-compaction GC).
     Runs after metadata shipping so CURRENT never points at a manifest
     the mirror no longer holds. *)
  let ship_deletions t b ~live =
    let dead =
      (Hashtbl.fold
         (fun name _ acc ->
           if Hashtbl.mem live name then acc else name :: acc)
         b.b_shipped [])
      @ Hashtbl.fold
          (fun name _ acc ->
            if Hashtbl.mem live name then acc else name :: acc)
          b.b_other []
    in
    List.iter
      (fun name ->
        Env.io_event t.env ("repl:delete:" ^ name);
        ignore (Network.send t.net b.b_link ~bytes:frame_bytes ~label:"delete");
        t.file_bytes <- t.file_bytes + frame_bytes;
        Hashtbl.remove b.b_shipped name;
        Hashtbl.remove b.b_other name;
        Hashtbl.remove b.b_writers name;
        if Env.exists b.b_env name then Env.delete b.b_env name)
      (List.sort compare dead)

  (* One mirroring pass: diff the primary's file set against what each
     backup holds and ship the difference.  WAL deltas go first — they
     are the ack path, and a crash mid-pass then leaves the mirror with
     a *newer* WAL than its manifest, which recovery handles as normal
     replay.  Then data, then manifests, then CURRENT, then deletions. *)
  let ship_pass t =
    if
      t.strategy = O.File_shipping
      && Array.length t.backups > 0
      && not t.shipping
    then begin
      t.shipping <- true;
      Fun.protect
        ~finally:(fun () -> t.shipping <- false)
        (fun () ->
          let mine =
            List.filter_map
              (fun n -> Option.map (fun c -> (n, c)) (classify t n))
              (List.sort compare (Env.list t.env))
          in
          let by cls = List.filter (fun (_, c) -> c = cls) mine in
          let live = Hashtbl.create 64 in
          List.iter (fun (n, _) -> Hashtbl.replace live n ()) mine;
          Array.iter
            (fun b ->
              List.iter
                (fun (n, _) ->
                  match ship_append t b n ~category:"wal" with
                  | Some fin -> if fin > t.op_ack then t.op_ack <- fin
                  | None -> ())
                (by Wal);
              List.iter
                (fun (n, _) -> ignore (ship_append t b n ~category:"sst"))
                (by Sst);
              List.iter
                (fun (n, _) -> ignore (ship_append t b n ~category:"manifest"))
                (by Manifest);
              List.iter (fun (n, _) -> ship_other t b n) (by Other);
              ship_deletions t b ~live)
            t.backups)
    end

  (* Run a client write under file shipping: mirror the WAL delta the
     commit appended and wait for the slowest backup's durable append —
     the same ack contract as log shipping, without replay cost. *)
  let with_ack t f =
    if t.strategy = O.File_shipping && Array.length t.backups > 0 then begin
      t.op_ack <- 0.0;
      let r = f () in
      ship_pass t;
      if t.op_ack > 0.0 then
        charge_ack t
          ~ack:(t.op_ack +. (Network.profile t.net).Network.latency_ns);
      r
    end
    else f ()

  (* ---------- opening ---------- *)

  let open_with (opts : O.t) ~env ~dir ~shared_block_cache =
    let primary = E.open_shard opts ~env ~dir ~shared_block_cache in
    let k = max 0 opts.O.replicas in
    let net =
      Network.create ~clock:(Env.clock env)
        ~tracer:(fun () -> Env.tracer env)
        ()
    in
    let backups =
      Array.init k (fun _ ->
          let b_env = Env.create () in
          let b_link = Network.add_link net in
          let b_store =
            match opts.O.repl_strategy with
            | O.Log_shipping ->
              Some (E.open_shard opts ~env:b_env ~dir ~shared_block_cache:None)
            | O.File_shipping -> None
          in
          {
            b_env;
            b_link;
            b_store;
            b_writers = Hashtbl.create 16;
            b_shipped = Hashtbl.create 16;
            b_other = Hashtbl.create 8;
          })
    in
    let t =
      {
        opts;
        env;
        dir;
        prefix = dir ^ "/";
        primary;
        strategy = opts.O.repl_strategy;
        backups;
        net;
        log_bytes = 0;
        file_bytes = 0;
        ack_wait_ns = 0.0;
        shipping = false;
        op_ack = 0.0;
      }
    in
    if k > 0 && t.strategy = O.File_shipping then begin
      (* mirror installs as background jobs complete, and whatever
         opening itself created (fresh WAL, manifest) right away *)
      E.on_job_complete primary (fun () -> ship_pass t);
      ship_pass t
    end;
    t

  let open_store opts ~env ~dir = open_with opts ~env ~dir ~shared_block_cache:None
  let open_shard = open_with

  (* ---------- the store surface ---------- *)

  let close t =
    E.close t.primary;
    Array.iter
      (fun b -> match b.b_store with Some s -> E.close s | None -> ())
      t.backups

  let options t = t.opts
  let env t = t.env
  let primary t = t.primary

  let put t k v =
    match t.strategy with
    | O.Log_shipping ->
      E.put t.primary k v;
      let b = Wb.create () in
      Wb.put b k v;
      ship_batches t [ b ]
    | O.File_shipping -> with_ack t (fun () -> E.put t.primary k v)

  let delete t k =
    match t.strategy with
    | O.Log_shipping ->
      E.delete t.primary k;
      let b = Wb.create () in
      Wb.delete b k;
      ship_batches t [ b ]
    | O.File_shipping -> with_ack t (fun () -> E.delete t.primary k)

  let write t batch =
    match t.strategy with
    | O.Log_shipping ->
      E.write t.primary batch;
      ship_batches t [ batch ]
    | O.File_shipping -> with_ack t (fun () -> E.write t.primary batch)

  let write_group t batches =
    match t.strategy with
    | O.Log_shipping ->
      E.write_group t.primary batches;
      ship_batches t batches
    | O.File_shipping -> with_ack t (fun () -> E.write_group t.primary batches)

  let flush t =
    E.flush t.primary;
    (match t.strategy with
     | O.Log_shipping -> ship_control t "flush" E.flush
     | O.File_shipping -> ship_pass t)

  let compact_all t =
    E.compact_all t.primary;
    (match t.strategy with
     | O.Log_shipping -> ship_control t "compact" E.compact_all
     | O.File_shipping -> ship_pass t)

  let get t k = E.get t.primary k
  let iterator t = E.iterator t.primary
  let scheduler t = E.scheduler t.primary
  let snapshot t = E.snapshot t.primary
  let release_snapshot t s = E.release_snapshot t.primary s
  let get_at t ~snapshot k = E.get_at t.primary ~snapshot k
  let iterator_at t ~snapshot = E.iterator_at t.primary ~snapshot

  let memory_bytes t =
    E.memory_bytes t.primary
    + Array.fold_left
        (fun acc b ->
          match b.b_store with Some s -> acc + E.memory_bytes s | None -> acc)
        0 t.backups

  let check_invariants t =
    E.check_invariants t.primary;
    Array.iter
      (fun b ->
        match b.b_store with Some s -> E.check_invariants s | None -> ())
      t.backups

  let stats t =
    let st = E.stats t.primary in
    st.Stats.repl_backups <- Array.length t.backups;
    st.Stats.repl_log_bytes_shipped <- t.log_bytes;
    st.Stats.repl_file_bytes_shipped <- t.file_bytes;
    st.Stats.repl_messages <- Network.messages t.net;
    st.Stats.repl_ack_wait_ns <- t.ack_wait_ns;
    st.Stats.repl_backup_busy_ns <-
      Array.fold_left
        (fun acc b ->
          match b.b_store with
          | Some s ->
            acc
            +. Array.fold_left ( +. ) 0.0 (E.stats s).Stats.worker_busy_ns
          | None -> acc)
        0.0 t.backups;
    st

  let describe t =
    Printf.sprintf "replicated(%s, K=%d) %s"
      (O.repl_strategy_name t.strategy)
      (Array.length t.backups)
      (E.describe t.primary)

  (* ---------- failover ---------- *)

  let backup_count t = Array.length t.backups
  let backup_env t i = t.backups.(i).b_env
  let strategy t = t.strategy
  let network t = t.net

  (** [promote t i] turns backup [i] into a servable engine after the
      primary is lost.  Log shipping: the live replaying engine is
      already current to the last acked group.  File shipping: open the
      mirrored bytes through the engine's normal recovery path (CURRENT
      → MANIFEST → WAL replay) on the backup's environment. *)
  let promote t i =
    let b = t.backups.(i) in
    match b.b_store with
    | Some s -> s
    | None -> E.open_shard t.opts ~env:b.b_env ~dir:t.dir ~shared_block_cache:None

  let promote_dyn t i = Dyn.dyn_of (module E : Dyn.S with type t = E.t) (promote t i)
end
