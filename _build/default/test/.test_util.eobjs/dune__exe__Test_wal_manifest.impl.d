test/test_wal_manifest.ml: Alcotest Bytes Char List Pdb_manifest Pdb_simio Pdb_sstable Pdb_wal Printf QCheck QCheck_alcotest String
