test/test_ycsb_apps.ml: Alcotest Hashtbl List Option Pdb_apps Pdb_harness Pdb_kvs Pdb_simio Pdb_util Pdb_ycsb Printf String
