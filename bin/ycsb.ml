(* ycsb — run YCSB workloads against any simulated store.

   Example:
     ycsb --store pebblesdb --workloads A,B,C --records 25000 --ops 10000 *)

open Cmdliner
module Dyn = Pdb_kvs.Store_intf
module L = Pdb_kvs.Latency
module Env = Pdb_simio.Env

let engine_of_string = function
  | "pebblesdb" -> Some Pdb_harness.Stores.Pebblesdb
  | "hyperleveldb" -> Some Pdb_harness.Stores.Hyperleveldb
  | "leveldb" -> Some Pdb_harness.Stores.Leveldb
  | "rocksdb" -> Some Pdb_harness.Stores.Rocksdb
  | "wiredtiger" -> Some Pdb_harness.Stores.Wiredtiger
  | _ -> None

(* YCSB keys are "user%016Lx" of a uniform 64-bit hash, so fixed-width hex
   ordering equals unsigned numeric ordering: evenly spaced splits are the
   hex keys at fractions i/N of the unsigned 64-bit space. *)
let ycsb_splits shards =
  let step = Int64.unsigned_div Int64.minus_one (Int64.of_int shards) in
  List.init (shards - 1) (fun i ->
      Printf.sprintf "user%016Lx" (Int64.mul step (Int64.of_int (i + 1))))

let run store_name policy_name throttle_name workloads records ops value_size
    clients shards elastic replicas repl_strategy_name trace_file =
  let policy =
    match policy_name with
    | None -> None
    | Some s -> (
      match Pdb_kvs.Options.compaction_policy_of_string s with
      | Ok p -> Some p
      | Error msg ->
        prerr_endline msg;
        exit 1)
  in
  let throttle =
    match throttle_name with
    | None -> None
    | Some s -> (
      match Pdb_kvs.Options.throttle_of_string s with
      | Ok t -> Some t
      | Error msg ->
        prerr_endline msg;
        exit 1)
  in
  let repl_strategy =
    match repl_strategy_name with
    | None -> None
    | Some s -> (
      match Pdb_kvs.Options.repl_strategy_of_string s with
      | Ok r -> Some r
      | Error msg ->
        prerr_endline msg;
        exit 1)
  in
  match engine_of_string store_name with
  | None ->
    prerr_endline ("unknown store " ^ store_name);
    exit 1
  | Some engine ->
    (* the requested policy may remap the engine (flsm_guarded needs the
       FLSM engine, the LSM layouts need the leveled/tiered engine) *)
    let engine =
      match policy with
      | None -> engine
      | Some p -> Pdb_harness.Stores.engine_for_policy engine p
    in
    let env = Env.create () in
    (match trace_file with
     | Some _ -> Env.set_tracer env (Pdb_simio.Trace.create ())
     | None -> ());
    let tweak o =
      let o =
        match policy with
        | None -> o
        | Some p -> { o with Pdb_kvs.Options.compaction_policy = p }
      in
      let o =
        match throttle with
        | None -> o
        | Some t -> { o with Pdb_kvs.Options.throttle = t }
      in
      let o =
        if replicas > 0 then { o with Pdb_kvs.Options.replicas } else o
      in
      let o =
        match repl_strategy with
        | None -> o
        | Some r -> { o with Pdb_kvs.Options.repl_strategy = r }
      in
      if shards <= 1 then o
      else
        let o =
          { o with Pdb_kvs.Options.shards; shard_splits = ycsb_splits shards }
        in
        (* --elastic lets the shard store resplit itself under load *)
        if elastic then { o with Pdb_kvs.Options.elastic = true } else o
    in
    let store =
      Pdb_harness.Stores.open_engine ~tweak ~env
        ?shards:(if shards > 1 then Some shards else None)
        engine
    in
    (* clients=0 keeps the legacy serial measurement path *)
    let clients = if clients <= 0 then None else Some clients in
    let report (r : Pdb_ycsb.Runner.result) =
      Printf.printf
        "%-8s : %8.1f KOps/s  (ops=%d r=%d u=%d i=%d s=%d rmw=%d; %.1f MB \
         written)\n%!"
        r.Pdb_ycsb.Runner.phase r.Pdb_ycsb.Runner.kops_per_s
        r.Pdb_ycsb.Runner.ops r.Pdb_ycsb.Runner.reads
        r.Pdb_ycsb.Runner.updates r.Pdb_ycsb.Runner.inserts
        r.Pdb_ycsb.Runner.scans r.Pdb_ycsb.Runner.rmws
        (float_of_int r.Pdb_ycsb.Runner.bytes_written /. 1048576.0);
      if r.Pdb_ycsb.Runner.clients > 1 then
        Printf.printf
          "           clients=%d groups=%d avg-group=%.2f syncs-saved=%d\n%!"
          r.Pdb_ycsb.Runner.clients r.Pdb_ycsb.Runner.write_groups
          r.Pdb_ycsb.Runner.avg_group_size r.Pdb_ycsb.Runner.syncs_saved
    in
    (* one latency collector per phase; reporting is purely
       observational — store state matches a run without it *)
    let lat = L.create () in
    report
      (Pdb_ycsb.Runner.load ?clients ~latency:lat store ~records
         ~value_bytes:value_size ~seed:42);
    L.print_summary ~indent:"           " lat;
    List.iter
      (fun name ->
        match Pdb_ycsb.Workload.by_name name with
        | Some spec ->
          let lat = L.create () in
          report
            (Pdb_ycsb.Runner.run ?clients ~latency:lat store spec ~records
               ~operations:ops ~value_bytes:value_size ~seed:42);
          L.print_summary ~indent:"           " lat
        | None -> Printf.printf "unknown workload %S (skipped)\n%!" name)
      workloads;
    store.Dyn.d_close ();
    match (trace_file, Env.tracer env) with
    | Some path, Some tr ->
      let oc = open_out path in
      output_string oc (Pdb_simio.Trace.to_chrome_json tr);
      close_out oc;
      Printf.printf "trace: %d events (%d dropped) -> %s\n"
        (Pdb_simio.Trace.count tr)
        (Pdb_simio.Trace.dropped tr)
        path
    | _ -> ()

let store_arg =
  Arg.(value & opt string "pebblesdb" & info [ "store" ] ~docv:"STORE")

let policy_arg =
  Arg.(value & opt (some string) None
       & info [ "compaction-policy" ] ~docv:"POLICY"
           ~doc:"leveled | tiered | lazy_leveled | flsm_guarded — pin the \
                 compaction policy, remapping the store to the engine that \
                 implements it when necessary.")

let throttle_arg =
  Arg.(value & opt (some string) None
       & info [ "throttle" ] ~docv:"MODE"
           ~doc:"off | cliff | token_bucket — write-throttle mode: the seed \
                 Slowdown/Stop cliff, the debt-keyed token bucket (profile \
                 default), or no write stalls at all.")

let workloads_arg =
  Arg.(value & opt (list string) [ "A"; "B"; "C"; "D"; "E"; "F" ]
       & info [ "workloads" ] ~docv:"LIST" ~doc:"YCSB workloads (A-F).")

let records_arg =
  Arg.(value & opt int 25_000 & info [ "records" ] ~doc:"Records to load.")

let ops_arg =
  Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Operations per workload.")

let value_size_arg =
  Arg.(value & opt int 1024 & info [ "value-size" ] ~doc:"Value bytes.")

let clients_arg =
  Arg.(value & opt int 0
       & info [ "clients" ]
           ~doc:"Foreground client lanes (round-robin, WAL group commit); \
                 0 = legacy serial measurement.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ]
           ~doc:"Range-partition the keyspace over N independent engine \
                 instances; 1 = plain single store.")

let elastic_arg =
  Arg.(value & flag
       & info [ "elastic" ]
           ~doc:"With --shards, let the store resplit itself under load: \
                 hot shards split at the sampled median request key, cold \
                 adjacent pairs merge, and ranges migrate as background \
                 jobs on the compaction lanes (migrate:* trace spans).")

let replicas_arg =
  Arg.(value & opt int 0
       & info [ "replicas" ]
           ~doc:"Replicate the store to N backups over simulated network \
                 links (primary-backup); 0 = unreplicated.  Combined with \
                 --shards, each shard replicates independently.")

let repl_strategy_arg =
  Arg.(value & opt (some string) None
       & info [ "repl-strategy" ] ~docv:"STRATEGY"
           ~doc:"log | file — ship WAL groups (the backup replays and \
                 compacts itself) or ship sstables and manifest edits as \
                 flush/compaction installs them.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of compaction / flush / \
                 WAL / stall activity to $(docv) (load in Perfetto or \
                 chrome://tracing).")

let cmd =
  Cmd.v (Cmd.info "ycsb" ~doc:"YCSB benchmark over the simulated stores")
    Term.(const run $ store_arg $ policy_arg $ throttle_arg $ workloads_arg
          $ records_arg $ ops_arg $ value_size_arg $ clients_arg $ shards_arg
          $ elastic_arg $ replicas_arg $ repl_strategy_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
