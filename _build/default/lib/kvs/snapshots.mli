(** Snapshot registry: the live set of pinned sequence numbers.

    A snapshot pins the store's state at a sequence number: reads and
    iterators through it see exactly the versions visible then.
    Compaction must keep any version that some live snapshot still needs —
    the LevelDB rule implemented by {!droppable}. *)

type t

val create : unit -> t

(** [acquire t seq] pins [seq] (multiset semantics). *)
val acquire : t -> int -> unit

(** [release t seq] unpins one acquisition of [seq]. *)
val release : t -> int -> unit

val is_empty : t -> bool

(** [smallest t ~default] is the oldest pinned sequence number, or
    [default] (usually the current last sequence) when nothing is pinned. *)
val smallest : t -> default:int -> int

(** Compaction visibility rule.  [prev_seq] is the sequence of the
    next-newer entry already seen for this user key ([None] for the
    freshest, which is always kept).  The current entry is droppable iff
    that newer entry is visible to every live snapshot. *)
val droppable : t -> prev_seq:int option -> last_seq:int -> bool

(** A bottom-level tombstone can be dropped entirely only when every live
    snapshot already sees it. *)
val tombstone_droppable : t -> seq:int -> last_seq:int -> bool
