(** Bloom filters.

    PebblesDB attaches one filter to each sstable (§4.1) so that a get()
    examining the several overlapping sstables of a guard only reads the
    (with high probability) one table that actually contains the key.
    Kirsch–Mitzenmacher double hashing over MurmurHash3, matching LevelDB's
    bloom strategy. *)

type t

(** [create ~bits_per_key n] sizes a filter for [n] expected keys.
    [bits_per_key = 10] (the default) gives ~1% false positives. *)
val create : ?bits_per_key:int -> int -> t

val add : t -> string -> unit

(** [mem t key] is [false] only if the key was never added; may return
    [true] spuriously (false positive), never a false negative. *)
val mem : t -> string -> bool

(** In-memory footprint — reported in the Table 5.4 memory experiment. *)
val size_bytes : t -> int

val nkeys : t -> int

(** Serialise the filter for storing alongside an sstable. *)
val encode : t -> string

val decode : string -> t
