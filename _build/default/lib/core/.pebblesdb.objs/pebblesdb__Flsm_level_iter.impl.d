lib/core/flsm_level_iter.ml: Array Float Guard List Option Pdb_kvs Pdb_simio Pdb_sstable
