(** MANIFEST: the durable log of version edits.

    Both engines recover their on-storage shape by replaying version edits:
    files added/removed per level, counters, and — for PebblesDB — the
    guard metadata that the paper adds to the MANIFEST (§4.3.1: "PebblesDB
    simply adds more metadata (guard information) to be persisted in the
    MANIFEST file").  A CURRENT file names the live MANIFEST, and switching
    MANIFESTs is an atomic rename-based install, as in LevelDB. *)

type edit = {
  mutable log_number : int option;
  mutable next_file_number : int option;
  mutable last_sequence : int option;
  mutable added_files : (int * Pdb_sstable.Table.meta) list; (* level, meta *)
  mutable deleted_files : (int * int) list; (* level, file number *)
  mutable added_guards : (int * string) list; (* level, guard key *)
  mutable deleted_guards : (int * string) list;
}

let empty_edit () =
  {
    log_number = None;
    next_file_number = None;
    last_sequence = None;
    added_files = [];
    deleted_files = [];
    added_guards = [];
    deleted_guards = [];
  }

(* Tags for the edit's tag-length-value encoding. *)
let tag_log_number = 1
let tag_next_file = 2
let tag_last_seq = 3
let tag_added_file = 4
let tag_deleted_file = 5
let tag_added_guard = 6
let tag_deleted_guard = 7

let encode_edit e =
  let buf = Buffer.create 128 in
  let put_opt tag = function
    | Some v ->
      Pdb_util.Varint.put_uvarint buf tag;
      Pdb_util.Varint.put_uvarint buf v
    | None -> ()
  in
  put_opt tag_log_number e.log_number;
  put_opt tag_next_file e.next_file_number;
  put_opt tag_last_seq e.last_sequence;
  List.iter
    (fun (level, (m : Pdb_sstable.Table.meta)) ->
      Pdb_util.Varint.put_uvarint buf tag_added_file;
      Pdb_util.Varint.put_uvarint buf level;
      Pdb_util.Varint.put_uvarint buf m.number;
      Pdb_util.Varint.put_uvarint buf m.file_size;
      Pdb_util.Varint.put_uvarint buf m.entries;
      Pdb_util.Varint.put_length_prefixed buf m.smallest;
      Pdb_util.Varint.put_length_prefixed buf m.largest)
    e.added_files;
  List.iter
    (fun (level, number) ->
      Pdb_util.Varint.put_uvarint buf tag_deleted_file;
      Pdb_util.Varint.put_uvarint buf level;
      Pdb_util.Varint.put_uvarint buf number)
    e.deleted_files;
  List.iter
    (fun (level, key) ->
      Pdb_util.Varint.put_uvarint buf tag_added_guard;
      Pdb_util.Varint.put_uvarint buf level;
      Pdb_util.Varint.put_length_prefixed buf key)
    e.added_guards;
  List.iter
    (fun (level, key) ->
      Pdb_util.Varint.put_uvarint buf tag_deleted_guard;
      Pdb_util.Varint.put_uvarint buf level;
      Pdb_util.Varint.put_length_prefixed buf key)
    e.deleted_guards;
  Buffer.contents buf

let decode_edit s =
  let e = empty_edit () in
  let pos = ref 0 in
  let len = String.length s in
  while !pos < len do
    let tag, p = Pdb_util.Varint.get_uvarint s !pos in
    pos := p;
    if tag = tag_log_number then begin
      let v, p = Pdb_util.Varint.get_uvarint s !pos in
      pos := p;
      e.log_number <- Some v
    end
    else if tag = tag_next_file then begin
      let v, p = Pdb_util.Varint.get_uvarint s !pos in
      pos := p;
      e.next_file_number <- Some v
    end
    else if tag = tag_last_seq then begin
      let v, p = Pdb_util.Varint.get_uvarint s !pos in
      pos := p;
      e.last_sequence <- Some v
    end
    else if tag = tag_added_file then begin
      let level, p = Pdb_util.Varint.get_uvarint s !pos in
      let number, p = Pdb_util.Varint.get_uvarint s p in
      let file_size, p = Pdb_util.Varint.get_uvarint s p in
      let entries, p = Pdb_util.Varint.get_uvarint s p in
      let smallest, p = Pdb_util.Varint.get_length_prefixed s p in
      let largest, p = Pdb_util.Varint.get_length_prefixed s p in
      pos := p;
      e.added_files <-
        (level, { Pdb_sstable.Table.number; file_size; entries;
                  smallest; largest })
        :: e.added_files
    end
    else if tag = tag_deleted_file then begin
      let level, p = Pdb_util.Varint.get_uvarint s !pos in
      let number, p = Pdb_util.Varint.get_uvarint s p in
      pos := p;
      e.deleted_files <- (level, number) :: e.deleted_files
    end
    else if tag = tag_added_guard then begin
      let level, p = Pdb_util.Varint.get_uvarint s !pos in
      let key, p = Pdb_util.Varint.get_length_prefixed s p in
      pos := p;
      e.added_guards <- (level, key) :: e.added_guards
    end
    else if tag = tag_deleted_guard then begin
      let level, p = Pdb_util.Varint.get_uvarint s !pos in
      let key, p = Pdb_util.Varint.get_length_prefixed s p in
      pos := p;
      e.deleted_guards <- (level, key) :: e.deleted_guards
    end
    else invalid_arg (Printf.sprintf "Manifest.decode_edit: bad tag %d" tag);
    ()
  done;
  e.added_files <- List.rev e.added_files;
  e.deleted_files <- List.rev e.deleted_files;
  e.added_guards <- List.rev e.added_guards;
  e.deleted_guards <- List.rev e.deleted_guards;
  e

(** An open MANIFEST accepting appended edits. *)
type t = { env : Pdb_simio.Env.t; name : string; log : Pdb_wal.Wal.Writer.t }

let current_name ~dir = dir ^ "/CURRENT"
let manifest_name ~dir n = Printf.sprintf "%s/MANIFEST-%06d" dir n

(** [create env ~dir ~number ~edits] writes a fresh MANIFEST containing
    [edits] (a recovery snapshot) and atomically installs it via CURRENT.
    CURRENT itself is written to a temporary and renamed into place, as
    LevelDB does: truncating CURRENT in place would open a crash window in
    which the store forgets which MANIFEST is live. *)
let create env ~dir ~number ~edits =
  let name = manifest_name ~dir number in
  let tmp = name ^ ".tmp" in
  let log = Pdb_wal.Wal.Writer.create env tmp in
  List.iter (fun e -> Pdb_wal.Wal.Writer.add_record log (encode_edit e)) edits;
  Pdb_wal.Wal.Writer.sync log;
  Pdb_simio.Env.rename env ~src:tmp ~dst:name;
  let cur_tmp = current_name ~dir ^ ".tmp" in
  let cur = Pdb_simio.Env.create_file env cur_tmp in
  Pdb_simio.Env.append cur (Filename.basename name);
  Pdb_simio.Env.sync cur;
  Pdb_simio.Env.close cur;
  Pdb_simio.Env.rename env ~src:cur_tmp ~dst:(current_name ~dir);
  { env; name; log }

(** [append t edit] logs one edit durably. *)
let append t edit =
  Pdb_wal.Wal.Writer.add_record t.log (encode_edit edit);
  Pdb_wal.Wal.Writer.sync t.log

let size t = Pdb_wal.Wal.Writer.size t.log

let file_name t = t.name

(** [recover env ~dir] replays the live MANIFEST's edits, if any. *)
let recover env ~dir =
  let cur = current_name ~dir in
  if not (Pdb_simio.Env.exists env cur) then None
  else begin
    let base =
      Pdb_simio.Env.read_all env cur ~hint:Pdb_simio.Device.Sequential_read
    in
    let name = dir ^ "/" ^ base in
    if not (Pdb_simio.Env.exists env name) then None
    else begin
      (* manifest edits are synced as they are appended, so a dropped tail
         can only be the in-flight edit of the crashed process *)
      let records, _report = Pdb_wal.Wal.Reader.read_all env name in
      Some (name, List.map decode_edit records)
    end
  end

(** [cleanup_stale env ~dir ~live_log_number ~live_manifest] deletes files
    a crashed incarnation may have left behind: [*.tmp] files, WAL files
    ([NNNNNN.log]) numbered below the live log, and MANIFEST files other
    than the live one.  Callers must invoke it only after the live
    MANIFEST is installed and the live WAL holds every record recovery
    still needs — at that point none of the deleted files can be named by
    any future recovery.  CURRENT and sstables are never touched. *)
let cleanup_stale env ~dir ~live_log_number ~live_manifest =
  let prefix = dir ^ "/" in
  let plen = String.length prefix in
  let is_digits s =
    s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s
  in
  List.iter
    (fun name ->
      if String.length name > plen && String.sub name 0 plen = prefix then begin
        let base = String.sub name plen (String.length name - plen) in
        if Filename.check_suffix base ".tmp" then Pdb_simio.Env.delete env name
        else if Filename.check_suffix base ".log" then begin
          let stem = Filename.chop_suffix base ".log" in
          if is_digits stem && int_of_string stem < live_log_number then
            Pdb_simio.Env.delete env name
        end
        else if
          String.length base > 9
          && String.sub base 0 9 = "MANIFEST-"
          && name <> live_manifest
        then Pdb_simio.Env.delete env name
      end)
    (List.sort compare (Pdb_simio.Env.list env))

(** [reopen env ~name] continues appending to a recovered MANIFEST.  The
    file is rewritten from its readable records, not its raw bytes: after
    a torn-write crash the tail may hold garbage, and appending past it
    would put every future edit beyond the reader's reach. *)
let reopen env ~name =
  let records, _report = Pdb_wal.Wal.Reader.read_all env name in
  let log = Pdb_wal.Wal.Writer.create env name in
  List.iter (Pdb_wal.Wal.Writer.add_record log) records;
  Pdb_wal.Wal.Writer.sync log;
  { env; name; log }
