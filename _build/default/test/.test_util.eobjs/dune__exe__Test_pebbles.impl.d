test/test_pebbles.ml: Alcotest Array Fun Hashtbl List Pdb_kvs Pdb_lsm Pdb_simio Pdb_sstable Pdb_util Pebblesdb Printf QCheck QCheck_alcotest String
