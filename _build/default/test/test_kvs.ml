(* Tests for internal keys, write batches, memtable, db iterator and the
   merging iterator. *)

open Pdb_kvs

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------- Internal_key ---------- *)

let test_ikey_roundtrip () =
  let ik = Internal_key.encode ~user_key:"hello" ~seq:42 ~kind:Internal_key.Value in
  check Alcotest.string "user key" "hello" (Internal_key.user_key ik);
  check Alcotest.int "seq" 42 (Internal_key.seq ik);
  Alcotest.(check bool) "kind" true (Internal_key.kind ik = Internal_key.Value);
  let ik2 =
    Internal_key.encode ~user_key:"" ~seq:0 ~kind:Internal_key.Deletion
  in
  check Alcotest.string "empty user key" "" (Internal_key.user_key ik2);
  Alcotest.(check bool) "deletion kind" true
    (Internal_key.kind ik2 = Internal_key.Deletion)

let test_ikey_order_user_key () =
  let a = Internal_key.encode ~user_key:"a" ~seq:1 ~kind:Internal_key.Value in
  let b = Internal_key.encode ~user_key:"b" ~seq:9 ~kind:Internal_key.Value in
  Alcotest.(check bool) "a < b" true (Internal_key.compare a b < 0)

let test_ikey_order_seq_desc () =
  let old_v = Internal_key.encode ~user_key:"k" ~seq:1 ~kind:Internal_key.Value in
  let new_v = Internal_key.encode ~user_key:"k" ~seq:9 ~kind:Internal_key.Value in
  Alcotest.(check bool) "newer sorts first" true
    (Internal_key.compare new_v old_v < 0)

let test_ikey_lookup_key () =
  let lookup = Internal_key.max_for_lookup "k" in
  let stored = Internal_key.encode ~user_key:"k" ~seq:1000 ~kind:Internal_key.Value in
  Alcotest.(check bool) "lookup sorts before any stored version" true
    (Internal_key.compare lookup stored <= 0)

let prop_ikey_total_order =
  qtest "compare consistent with decode"
    QCheck.(
      pair
        (pair (string_of_size (QCheck.Gen.return 4)) small_nat)
        (pair (string_of_size (QCheck.Gen.return 4)) small_nat))
    (fun ((k1, s1), (k2, s2)) ->
      let a = Internal_key.encode ~user_key:k1 ~seq:s1 ~kind:Internal_key.Value in
      let b = Internal_key.encode ~user_key:k2 ~seq:s2 ~kind:Internal_key.Value in
      let c = Internal_key.compare a b in
      if String.compare k1 k2 < 0 then c < 0
      else if String.compare k1 k2 > 0 then c > 0
      else if s1 > s2 then c < 0
      else if s1 < s2 then c > 0
      else c = 0)

(* ---------- Write_batch ---------- *)

let test_batch_encode_decode () =
  let b = Write_batch.create () in
  Write_batch.put b "k1" "v1";
  Write_batch.delete b "k2";
  Write_batch.put b "k3" "v3";
  let encoded = Write_batch.encode b ~base_seq:100 in
  let decoded, base = Write_batch.decode encoded in
  check Alcotest.int "base seq" 100 base;
  check Alcotest.int "count" 3 (Write_batch.count decoded);
  let ops = Write_batch.ops decoded in
  Alcotest.(check bool) "ops equal" true
    (ops = [ Write_batch.Put ("k1", "v1"); Write_batch.Delete "k2";
             Write_batch.Put ("k3", "v3") ])

let test_batch_payload () =
  let b = Write_batch.create () in
  Write_batch.put b "abc" "defg";
  Write_batch.delete b "xy";
  check Alcotest.int "payload bytes" 9 (Write_batch.payload_bytes b)

let test_batch_empty () =
  let b = Write_batch.create () in
  let decoded, _ = Write_batch.decode (Write_batch.encode b ~base_seq:0) in
  check Alcotest.int "empty roundtrip" 0 (Write_batch.count decoded)

(* ---------- Memtable ---------- *)

let test_memtable_get_latest () =
  let m = Memtable.create () in
  Memtable.add m ~seq:1 ~kind:Internal_key.Value ~user_key:"k" ~value:"old";
  Memtable.add m ~seq:2 ~kind:Internal_key.Value ~user_key:"k" ~value:"new";
  Alcotest.(check bool) "latest wins" true
    (Memtable.get m "k" = Some (Some "new"))

let test_memtable_tombstone () =
  let m = Memtable.create () in
  Memtable.add m ~seq:1 ~kind:Internal_key.Value ~user_key:"k" ~value:"v";
  Memtable.add m ~seq:2 ~kind:Internal_key.Deletion ~user_key:"k" ~value:"";
  Alcotest.(check bool) "tombstone visible" true (Memtable.get m "k" = Some None)

let test_memtable_absent () =
  let m = Memtable.create () in
  Alcotest.(check bool) "absent" true (Memtable.get m "nope" = None)

let test_memtable_bytes_grow () =
  let m = Memtable.create () in
  let before = Memtable.approximate_bytes m in
  Memtable.add m ~seq:1 ~kind:Internal_key.Value ~user_key:"abc"
    ~value:(String.make 100 'v');
  Alcotest.(check bool) "bytes grow" true
    (Memtable.approximate_bytes m > before + 100)

let test_memtable_iterator_order () =
  let m = Memtable.create () in
  Memtable.add m ~seq:3 ~kind:Internal_key.Value ~user_key:"b" ~value:"2";
  Memtable.add m ~seq:1 ~kind:Internal_key.Value ~user_key:"a" ~value:"1";
  Memtable.add m ~seq:2 ~kind:Internal_key.Value ~user_key:"c" ~value:"3";
  let it = Memtable.iterator m in
  let keys =
    List.map (fun (ik, _) -> Internal_key.user_key ik) (Iter.to_list it)
  in
  check Alcotest.(list string) "user key order" [ "a"; "b"; "c" ] keys

(* ---------- Merging iterator ---------- *)

let mk_iter entries = Iter.of_sorted_array (Array.of_list entries)

let test_merge_two_sorted () =
  let a = mk_iter [ ("a", "1"); ("c", "3") ] in
  let b = mk_iter [ ("b", "2"); ("d", "4") ] in
  let m = Merging_iter.create ~compare:String.compare [ a; b ] in
  check
    Alcotest.(list (pair string string))
    "merged"
    [ ("a", "1"); ("b", "2"); ("c", "3"); ("d", "4") ]
    (Iter.to_list m)

let test_merge_tie_prefers_first_child () =
  (* children are ordered newest-first; on ties the first must win *)
  let newer = mk_iter [ ("k", "new") ] in
  let older = mk_iter [ ("k", "old") ] in
  let m = Merging_iter.create ~compare:String.compare [ newer; older ] in
  m.Iter.seek_to_first ();
  check Alcotest.string "tie" "new" (m.Iter.value ())

let test_merge_seek () =
  let a = mk_iter [ ("a", "1"); ("e", "5") ] in
  let b = mk_iter [ ("c", "3") ] in
  let m = Merging_iter.create ~compare:String.compare [ a; b ] in
  m.Iter.seek "b";
  check Alcotest.string "seek lands" "c" (m.Iter.key ());
  m.Iter.next ();
  check Alcotest.string "next" "e" (m.Iter.key ());
  m.Iter.next ();
  Alcotest.(check bool) "exhausted" false (m.Iter.valid ())

let test_merge_empty_children () =
  let m = Merging_iter.create ~compare:String.compare [ Iter.empty; Iter.empty ] in
  m.Iter.seek_to_first ();
  Alcotest.(check bool) "empty merge invalid" false (m.Iter.valid ())

let prop_merge_is_sorted_union =
  qtest "merge = sorted union of children" ~count:100
    QCheck.(pair (list (string_of_size (QCheck.Gen.return 3)))
              (list (string_of_size (QCheck.Gen.return 3))))
    (fun (l1, l2) ->
      let dedup l = List.sort_uniq String.compare l in
      let l1 = dedup l1 and l2 = dedup l2 in
      let mk l = mk_iter (List.map (fun k -> (k, k)) l) in
      let m = Merging_iter.create ~compare:String.compare [ mk l1; mk l2 ] in
      let got = List.map fst (Iter.to_list m) in
      let expected = List.sort String.compare (l1 @ l2) in
      got = expected)

(* ---------- Db_iter ---------- *)

let ik k seq kind = Internal_key.encode ~user_key:k ~seq ~kind

(* db-iter tests need internal-key ordering for binary search *)
let mk_iter entries =
  Iter.of_sorted_array ~compare:Internal_key.compare (Array.of_list entries)

let test_dbiter_filters_versions_and_tombstones () =
  (* internal order: (a,2,V) (a,1,V) (b,3,D) (b,2,V) (c,1,V) *)
  let entries =
    [
      (ik "a" 2 Internal_key.Value, "a-new");
      (ik "a" 1 Internal_key.Value, "a-old");
      (ik "b" 3 Internal_key.Deletion, "");
      (ik "b" 2 Internal_key.Value, "b-dead");
      (ik "c" 1 Internal_key.Value, "c-live");
    ]
  in
  let internal = mk_iter entries in
  let db = Db_iter.wrap internal in
  check
    Alcotest.(list (pair string string))
    "only live freshest"
    [ ("a", "a-new"); ("c", "c-live") ]
    (Iter.to_list db)

let test_dbiter_seek_skips_deleted () =
  let entries =
    [
      (ik "a" 5 Internal_key.Deletion, "");
      (ik "a" 1 Internal_key.Value, "dead");
      (ik "b" 2 Internal_key.Value, "live");
    ]
  in
  let db = Db_iter.wrap (mk_iter entries) in
  db.Iter.seek "a";
  check Alcotest.string "seek skips tombstoned a" "b" (db.Iter.key ())

let test_dbiter_seek_exact () =
  let entries = [ (ik "m" 1 Internal_key.Value, "v") ] in
  let db = Db_iter.wrap (mk_iter entries) in
  db.Iter.seek "m";
  Alcotest.(check bool) "valid" true (db.Iter.valid ());
  check Alcotest.string "exact" "m" (db.Iter.key ())

let () =
  Alcotest.run "kvs"
    [
      ( "internal-key",
        [
          Alcotest.test_case "roundtrip" `Quick test_ikey_roundtrip;
          Alcotest.test_case "user order" `Quick test_ikey_order_user_key;
          Alcotest.test_case "seq desc" `Quick test_ikey_order_seq_desc;
          Alcotest.test_case "lookup key" `Quick test_ikey_lookup_key;
          prop_ikey_total_order;
        ] );
      ( "write-batch",
        [
          Alcotest.test_case "encode/decode" `Quick test_batch_encode_decode;
          Alcotest.test_case "payload" `Quick test_batch_payload;
          Alcotest.test_case "empty" `Quick test_batch_empty;
        ] );
      ( "memtable",
        [
          Alcotest.test_case "latest wins" `Quick test_memtable_get_latest;
          Alcotest.test_case "tombstone" `Quick test_memtable_tombstone;
          Alcotest.test_case "absent" `Quick test_memtable_absent;
          Alcotest.test_case "bytes grow" `Quick test_memtable_bytes_grow;
          Alcotest.test_case "iterator order" `Quick
            test_memtable_iterator_order;
        ] );
      ( "merging-iter",
        [
          Alcotest.test_case "two sorted" `Quick test_merge_two_sorted;
          Alcotest.test_case "tie newest" `Quick
            test_merge_tie_prefers_first_child;
          Alcotest.test_case "seek" `Quick test_merge_seek;
          Alcotest.test_case "empty" `Quick test_merge_empty_children;
          prop_merge_is_sorted_union;
        ] );
      ( "db-iter",
        [
          Alcotest.test_case "filters" `Quick
            test_dbiter_filters_versions_and_tombstones;
          Alcotest.test_case "seek skips deleted" `Quick
            test_dbiter_seek_skips_deleted;
          Alcotest.test_case "seek exact" `Quick test_dbiter_seek_exact;
        ] );
    ]
