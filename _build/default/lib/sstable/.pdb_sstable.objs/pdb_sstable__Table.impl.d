lib/sstable/table.ml: Block Block_cache Buffer List Option Pdb_bloom Pdb_kvs Pdb_simio Pdb_util Printf String
