(** Store configuration and engine profiles.

    One flat record configures every engine.  The four presets mirror the
    paper's evaluated systems; sizes are scaled down ~64x from the paper's
    defaults (4 MB memtables become 64 KB, 10 MB level-1 becomes 160 KB, 2 MB
    sstables become 32 KB) so that scaled-down datasets traverse the same
    number of levels and compaction generations as the paper's runs.

    The [op_overhead_*] and [compaction_threads] fields encode the
    *engineering* differences between the baselines (global-mutex locking in
    LevelDB, RocksDB's heavier write path under its default tuning,
    HyperLevelDB's fine-grained locking and parallel compaction) as
    documented calibrated constants — see DESIGN.md §1.  The IO behaviour,
    which drives the paper's headline results, is fully simulated from the
    data structures themselves. *)

(** Which point of the compaction design space (Sarkar et al.) the engine
    runs: how levels lay out their runs, what triggers a compaction, and
    which victims it picks.  The first-class policy value that interprets
    this choice lives in [Pdb_compaction.Policy]; the constructors live
    here so every layer below the harness can pattern-match without
    depending on the compaction library. *)
type compaction_policy =
  | Leveled  (** disjoint sorted files per level, partial victims *)
  | Tiered  (** overlapping sorted runs per level, merged wholesale *)
  | Lazy_leveled  (** tiered upper levels, leveled last level *)
  | Flsm_guarded  (** FLSM guards (PebblesDB) — requires the FLSM engine *)

let compaction_policy_name = function
  | Leveled -> "leveled"
  | Tiered -> "tiered"
  | Lazy_leveled -> "lazy_leveled"
  | Flsm_guarded -> "flsm_guarded"

let compaction_policy_of_string = function
  | "leveled" -> Ok Leveled
  | "tiered" -> Ok Tiered
  | "lazy_leveled" | "lazy-leveled" -> Ok Lazy_leveled
  | "flsm_guarded" | "flsm-guarded" | "flsm" -> Ok Flsm_guarded
  | s ->
    Error
      (Printf.sprintf
         "unknown compaction policy %S (expected leveled | tiered | \
          lazy_leveled | flsm_guarded)"
         s)

let all_compaction_policies = [ Leveled; Tiered; Lazy_leveled; Flsm_guarded ]

(** How foreground writes are throttled against compaction debt (see
    [Pdb_kvs.Backpressure]).  [Cliff] is the seed LevelDB model: a fixed
    per-group penalty once L0 crosses [l0_slowdown], classified Stop past
    [l0_stop].  [Token_bucket] is the smooth controller: a write-rate
    budget refilled on the simulated clock whose rate degrades
    continuously with compaction debt (L0 files + backlog bytes), so
    latency ramps instead of jumping at the thresholds.  [Unthrottled]
    disables write stalls entirely (measurement baseline only). *)
type throttle =
  | Unthrottled
  | Cliff
  | Token_bucket

let throttle_name = function
  | Unthrottled -> "off"
  | Cliff -> "cliff"
  | Token_bucket -> "token_bucket"

let throttle_of_string = function
  | "off" | "none" | "unthrottled" -> Ok Unthrottled
  | "cliff" -> Ok Cliff
  | "token_bucket" | "token-bucket" | "tb" -> Ok Token_bucket
  | s ->
    Error
      (Printf.sprintf
         "unknown throttle %S (expected off | cliff | token_bucket)" s)

let all_throttles = [ Unthrottled; Cliff; Token_bucket ]

(** What a primary ships to its backups (Vardoulakis et al.'s design
    axis).  [Log_shipping] forwards WAL records at group-commit
    granularity and the backup re-runs its own flush/compaction — few
    network bytes, backup CPU burned re-merging.  [File_shipping] ships
    sstables and manifest edits as flush/compaction installs them — the
    backup applies bytes without merging, so its CPU idles while the
    network carries the primary's full write amplification. *)
type repl_strategy =
  | Log_shipping
  | File_shipping

let repl_strategy_name = function
  | Log_shipping -> "log"
  | File_shipping -> "file"

let repl_strategy_of_string = function
  | "log" | "log_shipping" | "log-shipping" | "wal" -> Ok Log_shipping
  | "file" | "file_shipping" | "file-shipping" | "sst" -> Ok File_shipping
  | s ->
    Error
      (Printf.sprintf "unknown replication strategy %S (expected log | file)"
         s)

let all_repl_strategies = [ Log_shipping; File_shipping ]

type t = {
  name : string;
  compaction_policy : compaction_policy;
  (* memtable / level shape *)
  memtable_bytes : int;
  l0_compaction_trigger : int;  (** files in L0 that trigger compaction *)
  l0_slowdown : int;  (** L0 files beyond which writes are slowed *)
  l0_stop : int;  (** L0 files beyond which writes stall *)
  level_bytes_base : int;  (** max bytes for level 1 *)
  level_bytes_multiplier : int;
  max_levels : int;
  sstable_target_bytes : int;
  block_bytes : int;
  (* caching *)
  block_cache_bytes : int;
  table_cache_entries : int;  (** open tables whose index/filter stay cached *)
  table_cache_bytes : int option;
      (** when set, the table cache is bounded by the resident bytes
          (index + filter) of its open tables instead of the entry count *)
  index_summary_stride : int;
      (** keep a compressed in-memory summary (every Nth index entry,
          shared-prefix truncated) per table above the table cache, so an
          evicted table reopens with one bounded index read instead of
          footer+index+filter; [0] disables summaries *)
  (* bloom *)
  sstable_bloom : bool;  (** per-sstable filters (PebblesDB §4.1) *)
  bloom_bits_per_key : int;
  prefix_bloom_len : int;
      (** also add each distinct [prefix_bloom_len]-byte user-key prefix
          to the sstable filter, letting prefix-bounded scans skip tables
          that provably hold no key with the scan's prefix; [0] disables.
          Recorded in the table footer, so mixed-configuration stores stay
          sound.  Requires [sstable_bloom]. *)
  (* durability *)
  wal_sync_writes : bool;  (** fsync the WAL on every batch *)
  (* engineering constants (see module doc) *)
  compaction_threads : int;
  compaction_pick_files : int;
      (** files picked per levelled compaction (HyperLevelDB compacts more
          eagerly than LevelDB) *)
  op_overhead_write_ns : float;
  op_overhead_read_ns : float;
  slowdown_stall_ns : float;
      (** per-entry delay scale of write throttling: the [Cliff] penalty
          per stalled group, and the [Token_bucket] per-entry delay at
          exactly the stop threshold *)
  (* write throttling (Pdb_kvs.Backpressure) *)
  throttle : throttle;
  throttle_burst_entries : int;
      (** token-bucket capacity: entries that may land at full speed
          before debt-keyed pacing kicks in *)
  flush_reserved_lane : bool;
      (** reserve a scheduler lane for memtable flushes so a deep
          compaction queue can never starve memtable rotation *)
  (* FLSM / PebblesDB parameters (§3.5, §4.4) *)
  top_level_bits : int;  (** trailing hash bits required for a L1 guard *)
  bit_decrement : int;  (** bits relaxed per deeper level *)
  max_sstables_per_guard : int;  (** hard cap; 1 makes FLSM behave as LSM *)
  guard_sstable_trigger : int;  (** sstables in a guard that invite compaction *)
  seek_compaction_threshold : int;  (** consecutive seeks triggering compaction *)
  aggressive_level_ratio : float;
      (** compact level i when size(i) >= ratio * size(i+1) (default 0.25) *)
  seek_filtering : bool;
      (** consult per-table range (and prefix-bloom) filters on the seek
          and scan path, skipping tables provably disjoint from the probe
          range; read-path only — never changes on-disk bytes *)
  probe_budget_override : int option;
      (** override the device profile's [parallel_probe_budget] for this
          store; [Some 1] serialises multi-table probes (the measurement
          baseline), [None] uses the device's budget *)
  seek_based_compaction : bool;
      (** compact guards after a run of consecutive seeks (§4.2) *)
  last_level_merge_io_factor : float;
      (** rewrite in second-highest level if merging costs this many times
          more IO (the paper's 25x heuristic) *)
  (* range-partitioned sharding (the scale-out layer over any engine) *)
  shards : int;  (** independent engine instances the keyspace splits over *)
  shard_splits : string list;
      (** [shards - 1] sorted split keys; shard [i] owns
          [[split.(i-1), split.(i))].  When the list does not match the
          shard count, uniform byte-interpolated splits are derived. *)
  shard_share_block_cache : bool;
      (** one block cache shared by every shard (memory stays at
          [block_cache_bytes] total) instead of one cache per shard *)
  (* elastic sharding: live split/merge/migrate driven by per-shard load *)
  elastic : bool;
      (** let the shard store resplit itself: detect hot shards from
          per-shard op counters, split them at a sampled median key,
          merge cold neighbours, and migrate ranges as background jobs *)
  elastic_window_ops : int;
      (** routed operations per elasticity decision window; the
          controller re-examines the balance once per window (op-count
          based, never clock based, so decisions are identical at any
          compaction worker count) *)
  elastic_split_ratio : float;
      (** split the hottest shard when its window ops exceed
          [ratio * mean] and the shard count is below
          [elastic_max_shards] *)
  elastic_merge_ratio : float;
      (** merge the coldest adjacent pair when their combined window
          ops fall below [ratio * mean] *)
  elastic_max_shards : int;  (** upper bound on the live shard count *)
  (* primary–backup replication (lib/repl, over any engine or shard) *)
  replicas : int;  (** backups per primary; [0] disables replication *)
  repl_strategy : repl_strategy;
  (* modeled CPU costs, ns (shared across engines) *)
  cpu_per_op_ns : float;
  cpu_per_sstable_ns : float;  (** examining one sstable (search/position) *)
  cpu_per_block_search_ns : float;
  cpu_bloom_check_ns : float;
  cpu_per_merge_entry_ns : float;  (** per entry moved during compaction *)
  cpu_memtable_op_ns : float;
}

let base =
  {
    name = "base";
    compaction_policy = Leveled;
    memtable_bytes = 64 * 1024;
    l0_compaction_trigger = 4;
    l0_slowdown = 8;
    l0_stop = 12;
    level_bytes_base = 160 * 1024;
    level_bytes_multiplier = 10;
    max_levels = 7;
    sstable_target_bytes = 32 * 1024;
    block_bytes = 4 * 1024;
    block_cache_bytes = 8 * 1024 * 1024;
    table_cache_entries = 4000;
    table_cache_bytes = None;
    index_summary_stride = 16;
    sstable_bloom = true;
    bloom_bits_per_key = 10;
    prefix_bloom_len = 0;
    wal_sync_writes = false;
    compaction_threads = 1;
    compaction_pick_files = 1;
    op_overhead_write_ns = 8_000.0;
    op_overhead_read_ns = 2_000.0;
    slowdown_stall_ns = 100_000.0;
    throttle = Token_bucket;
    (* about half a scaled memtable's worth of 1KB entries: bursts
       shorter than a flush ride free, sustained overload gets paced *)
    throttle_burst_entries = 32;
    flush_reserved_lane = true;
    (* The paper's default of 27 bits suits ~100M keys; scaled to the
       ~50-200k keys of the scaled experiments this is ~17 bits (guard
       density per key is what matters). *)
    top_level_bits = 17;
    bit_decrement = 2;
    max_sstables_per_guard = 8;
    guard_sstable_trigger = 3;
    seek_compaction_threshold = 10;
    aggressive_level_ratio = 0.25;
    seek_filtering = true;
    probe_budget_override = None;
    seek_based_compaction = true;
    last_level_merge_io_factor = 25.0;
    shards = 1;
    shard_splits = [];
    shard_share_block_cache = true;
    elastic = false;
    elastic_window_ops = 2048;
    elastic_split_ratio = 1.6;
    elastic_merge_ratio = 0.6;
    elastic_max_shards = 16;
    replicas = 0;
    repl_strategy = Log_shipping;
    cpu_per_op_ns = 1_000.0;
    cpu_per_sstable_ns = 5_000.0;
    cpu_per_block_search_ns = 1_000.0;
    cpu_bloom_check_ns = 250.0;
    cpu_per_merge_entry_ns = 400.0;
    cpu_memtable_op_ns = 1_000.0;
  }

(** LevelDB: 4 MB memtable (scaled), block-level blooms only (we model it as
    table blooms off), single compaction thread, global-mutex write path. *)
let leveldb () =
  {
    base with
    name = "leveldb";
    sstable_bloom = false;
    compaction_threads = 1;
    op_overhead_write_ns = 30_000.0;
    op_overhead_read_ns = 4_000.0;
  }

(** RocksDB under its defaults: 64 MB memtable (scaled), generous L0 limits,
    4 compaction threads, heavier per-write path. *)
let rocksdb () =
  {
    base with
    name = "rocksdb";
    memtable_bytes = 256 * 1024;
    l0_slowdown = 20;
    l0_stop = 24;
    sstable_bloom = true;
    compaction_threads = 4;
    compaction_pick_files = 2;
    (* RocksDB's default tuning shows heavy write-path overhead and stalls
       in the paper's runs (slowest baseline in Table 5.2) *)
    op_overhead_write_ns = 100_000.0;
    op_overhead_read_ns = 3_000.0;
  }

(** HyperLevelDB: LevelDB plus fine-grained locking and parallel, eager
    compaction.  Per the paper's methodology, sstable-level bloom filters
    are added to make the comparison fair. *)
let hyperleveldb () =
  {
    base with
    name = "hyperleveldb";
    sstable_bloom = true;
    compaction_threads = 2;
    compaction_pick_files = 2;
    op_overhead_write_ns = 4_000.0;
    op_overhead_read_ns = 2_000.0;
  }

(** PebblesDB: built over the HyperLevelDB base (§4.4). *)
let pebblesdb () =
  {
    base with
    name = "pebblesdb";
    compaction_policy = Flsm_guarded;
    sstable_bloom = true;
    compaction_threads = 2;
    op_overhead_write_ns = 4_000.0;
    op_overhead_read_ns = 2_000.0;
  }

(** [level_max_bytes t level] is the size threshold of [level] (>= 1). *)
let level_max_bytes t level =
  let rec go l acc =
    if l <= 1 then acc else go (l - 1) (acc * t.level_bytes_multiplier)
  in
  go level t.level_bytes_base

(** [guard_bits t ~level] is the number of trailing hash bits a key must
    have set to be a guard at [level] (>= 1); fewer bits are required at
    deeper levels, giving each level more guards (§4.4). *)
let guard_bits t ~level =
  max 1 (t.top_level_bits - (t.bit_decrement * (level - 1)))
