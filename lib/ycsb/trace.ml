(** Workload traces: record an operation stream to a (simulated) file and
    replay it bit-identically against any store.

    Traces make cross-engine comparisons exact — every engine sees the same
    operations in the same order, rather than each running its own
    generator — and let an interesting workload (e.g. a YCSB mix that
    triggered a corner case) be re-run deterministically.  The format is
    WAL-framed records, one operation each. *)

module Dyn = Pdb_kvs.Store_intf
module Iter = Pdb_kvs.Iter

type op =
  | Put of string * string
  | Delete of string
  | Get of string
  | Scan of string * int  (** start key, number of next() calls *)

let encode_op op =
  let buf = Buffer.create 64 in
  (match op with
   | Put (k, v) ->
     Buffer.add_char buf 'P';
     Pdb_util.Varint.put_length_prefixed buf k;
     Pdb_util.Varint.put_length_prefixed buf v
   | Delete k ->
     Buffer.add_char buf 'D';
     Pdb_util.Varint.put_length_prefixed buf k
   | Get k ->
     Buffer.add_char buf 'G';
     Pdb_util.Varint.put_length_prefixed buf k
   | Scan (k, n) ->
     Buffer.add_char buf 'S';
     Pdb_util.Varint.put_length_prefixed buf k;
     Pdb_util.Varint.put_uvarint buf n);
  Buffer.contents buf

let decode_op s =
  match s.[0] with
  | 'P' ->
    let k, pos = Pdb_util.Varint.get_length_prefixed s 1 in
    let v, _ = Pdb_util.Varint.get_length_prefixed s pos in
    Put (k, v)
  | 'D' ->
    let k, _ = Pdb_util.Varint.get_length_prefixed s 1 in
    Delete k
  | 'G' ->
    let k, _ = Pdb_util.Varint.get_length_prefixed s 1 in
    Get k
  | 'S' ->
    let k, pos = Pdb_util.Varint.get_length_prefixed s 1 in
    let n, _ = Pdb_util.Varint.get_uvarint s pos in
    Scan (k, n)
  | c -> invalid_arg (Printf.sprintf "Trace.decode_op: bad tag %C" c)

(** Streaming trace writer. *)
module Recorder = struct
  type t = { log : Pdb_wal.Wal.Writer.t; mutable ops : int }

  let create env name =
    { log = Pdb_wal.Wal.Writer.create env name; ops = 0 }

  let add t op =
    Pdb_wal.Wal.Writer.add_record t.log (encode_op op);
    t.ops <- t.ops + 1

  let close t =
    Pdb_wal.Wal.Writer.sync t.log;
    Pdb_wal.Wal.Writer.close t.log;
    t.ops
end

(** [read env name] loads a trace. *)
let read env name =
  List.map decode_op (fst (Pdb_wal.Wal.Reader.read_all env name))

(** [record_ycsb env name spec ~records ~operations ~value_bytes ~seed]
    writes the load phase plus the transaction phase of a YCSB workload as
    a trace (the store is never touched). *)
let record_ycsb env name (spec : Workload.spec) ~records ~operations
    ~value_bytes ~seed =
  let rec_ = Recorder.create env name in
  let rng = Pdb_util.Rng.create seed in
  for n = 0 to records - 1 do
    Recorder.add rec_
      (Put (Runner.key_of_record n, Pdb_util.Rng.alpha rng value_bytes))
  done;
  let dist =
    match spec.Workload.dist with
    | Workload.Zipfian -> Pdb_util.Dist.scrambled_zipfian ~seed records
    | Workload.Latest -> Pdb_util.Dist.latest ~seed records
    | Workload.Uniform -> Pdb_util.Dist.uniform ~seed records
    | Workload.Shifting_hotspot ->
      Pdb_util.Dist.shifting_hotspot ~seed
        ~period:(max 1 (operations / 5))
        records
    | Workload.Diurnal ->
      Pdb_util.Dist.diurnal ~seed ~period:(max 1 operations) records
  in
  let count = ref records in
  for _ = 1 to operations do
    match Workload.draw_op spec rng with
    | Workload.Read ->
      Recorder.add rec_ (Get (Runner.key_of_record (Pdb_util.Dist.next dist)))
    | Workload.Update ->
      Recorder.add rec_
        (Put
           ( Runner.key_of_record (Pdb_util.Dist.next dist),
             Pdb_util.Rng.alpha rng value_bytes ))
    | Workload.Insert ->
      let n = !count in
      incr count;
      Recorder.add rec_
        (Put (Runner.key_of_record n, Pdb_util.Rng.alpha rng value_bytes));
      Pdb_util.Dist.set_item_count dist !count
    | Workload.Scan ->
      Recorder.add rec_
        (Scan
           ( Runner.key_of_record (Pdb_util.Dist.next dist),
             1 + Pdb_util.Rng.int rng (max 1 spec.Workload.max_scan_len) ))
    | Workload.Read_modify_write ->
      let n = Pdb_util.Dist.next dist in
      Recorder.add rec_ (Get (Runner.key_of_record n));
      Recorder.add rec_
        (Put (Runner.key_of_record n, Pdb_util.Rng.alpha rng value_bytes))
  done;
  Recorder.close rec_

type replay_result = {
  ops : int;
  puts : int;
  gets : int;
  deletes : int;
  scans : int;
  hits : int;  (** gets that found a value *)
}

(** [replay trace_env name store] applies a recorded trace to [store]
    (which may live in a different environment). *)
let replay trace_env name (store : Dyn.dyn) =
  let ops = read trace_env name in
  let puts = ref 0 and gets = ref 0 and deletes = ref 0 in
  let scans = ref 0 and hits = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Put (k, v) ->
        incr puts;
        store.Dyn.d_put k v
      | Delete k ->
        incr deletes;
        store.Dyn.d_delete k
      | Get k ->
        incr gets;
        if store.Dyn.d_get k <> None then incr hits
      | Scan (k, n) ->
        incr scans;
        let it = store.Dyn.d_iterator () in
        it.Iter.seek k;
        let steps = ref 0 in
        while it.Iter.valid () && !steps < n do
          ignore (it.Iter.key ());
          it.Iter.next ();
          incr steps
        done)
    ops;
  {
    ops = List.length ops;
    puts = !puts;
    gets = !gets;
    deletes = !deletes;
    scans = !scans;
    hits = !hits;
  }
