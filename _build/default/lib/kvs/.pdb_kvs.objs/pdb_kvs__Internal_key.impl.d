lib/kvs/internal_key.ml: Buffer Fmt Int Int64 Pdb_util Printf String
