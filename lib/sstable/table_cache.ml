(** Table cache: a bounded set of open table readers.

    The paper attributes PebblesDB's read advantage (§5.2 "Random Writes
    and Reads", §5.3 Workload C) to its fewer, larger sstables: the stores
    "cache a limited number of sstable index blocks (default: 1000)", so a
    store with many small files suffers index-block cache misses.  This
    cache models exactly that: opening an evicted table re-reads its
    footer, index and filter from storage. *)

type t = {
  env : Pdb_simio.Env.t;
  dir : string;
  cache : (string, Table.reader) Pdb_util.Lru.t;
}

let create env ~dir ~entries =
  { env; dir; cache = Pdb_util.Lru.create ~capacity:entries }

let key number = string_of_int number

(** [find t meta] returns the open reader for [meta], opening (and charging
    IO for) it if not cached. *)
let find t (meta : Table.meta) =
  match Pdb_util.Lru.find t.cache (key meta.Table.number) with
  | Some reader -> reader
  | None ->
    let reader = Table.open_reader t.env ~dir:t.dir meta in
    Pdb_util.Lru.insert t.cache (key meta.Table.number) reader ~weight:1;
    reader

(** [evict t number] drops a table (called when its file is deleted after
    compaction). *)
let evict t number = Pdb_util.Lru.remove t.cache (key number)

(** Modeled resident memory of all cached tables' indexes and filters. *)
let resident_bytes t =
  Pdb_util.Lru.fold t.cache
    (fun acc _ reader -> acc + Table.resident_bytes reader)
    0

let open_tables t = Pdb_util.Lru.length t.cache
let hits t = Pdb_util.Lru.hits t.cache
let misses t = Pdb_util.Lru.misses t.cache
