(** Internal keys: user key ⊕ sequence number ⊕ kind.

    As in LevelDB (§2.2 of the paper), updating or deleting a key never
    modifies data in place — the key is re-inserted with a higher sequence
    number, deletions carrying a tombstone flag.  The most recent version
    of a key is the one with the highest sequence number.

    Encoding: [user_key ^ fixed64(seq << 8 | kind)]; ordering is by user
    key ascending, then sequence number {e descending} (newest first). *)

type kind = Deletion | Value

val kind_to_int : kind -> int

(** @raise Invalid_argument on an unknown tag. *)
val kind_of_int : int -> kind

val trailer_size : int

(** [encode ~user_key ~seq ~kind] builds an encoded internal key. *)
val encode : user_key:string -> seq:int -> kind:kind -> string

val user_key : string -> string
val seq : string -> int
val kind : string -> kind

(** Total order: user key ascending, sequence descending, kind descending —
    the freshest entry for a user key sorts first. *)
val compare : string -> string -> int

(** The largest representable sequence number. *)
val max_seq : int

(** [max_for_lookup user_key] sorts before every stored version of
    [user_key]: seeking to it lands on the freshest version. *)
val max_for_lookup : string -> string

(** [lookup_at ~user_key ~seq] is the lookup key for a snapshot read:
    seeking to it lands on the freshest version visible at [seq]. *)
val lookup_at : user_key:string -> seq:int -> string

val pp : Format.formatter -> string -> unit
