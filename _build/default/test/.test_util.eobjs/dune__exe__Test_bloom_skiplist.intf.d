test/test_bloom_skiplist.mli:
