(* Write throttling (Pdb_kvs.Backpressure) and flush/compaction fairness.

   The controller is a pure time model: verdicts charge the simulated
   clock and nothing else, so on-disk bytes are identical across
   throttle modes and client counts.  The cliff mode must charge once
   per commit group (the seed over-charged per batch), stalls that
   cross the Slowdown→Stop boundary must land in both counters, both
   engines must share one controller, and the reserved flush lane must
   keep memtable rotation schedulable under a saturated compaction
   queue. *)

module Bp = Pdb_kvs.Backpressure
module O = Pdb_kvs.Options
module L = Pdb_lsm.Lsm_store
module P = Pebblesdb.Pebbles_store
module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Sched = Pdb_simio.Sched
module Dyn = Pdb_kvs.Store_intf
module Stores = Pdb_harness.Stores
module B = Pdb_harness.Bench_util

let check = Alcotest.check
let debt ?(l0 = 0) ?(pending = 0) ?(backlog = 0) () =
  { Bp.l0_files = l0; pending_jobs = pending; backlog_bytes = backlog }

(* ---------- controller units ---------- *)

let test_delay_ramp () =
  let t = Bp.create { (O.hyperleveldb ()) with O.l0_slowdown = 8; l0_stop = 12 } in
  let d l0 = Bp.delay_ns t (debt ~l0 ()) in
  check (Alcotest.float 1e-6) "free below slowdown" 0.0 (d 7);
  check (Alcotest.float 1e-6) "zero at slowdown" 0.0 (d 8);
  check (Alcotest.float 1e-6) "full penalty at stop"
    (O.hyperleveldb ()).O.slowdown_stall_ns (d 12);
  check (Alcotest.float 1e-6) "linear midpoint"
    ((O.hyperleveldb ()).O.slowdown_stall_ns /. 2.0) (d 10);
  Alcotest.(check bool) "keeps ramping past stop" true (d 16 > d 12);
  (* backlog bytes count in memtable units alongside L0 files *)
  let opts = O.hyperleveldb () in
  check (Alcotest.float 1e-6) "backlog bytes = fractional L0 files"
    (d 10)
    (Bp.delay_ns t (debt ~l0:8 ~backlog:(2 * opts.O.memtable_bytes) ()))

let test_boundary_split () =
  let opts = { (O.hyperleveldb ()) with O.throttle = O.Token_bucket;
               l0_slowdown = 8; l0_stop = 12; throttle_burst_entries = 4 } in
  let t = Bp.create opts in
  (* debt past the stop threshold: per-entry delay exceeds the slowdown
     penalty, so each stalled entry splits across both counters *)
  let d16 = debt ~l0:16 () in
  let per = Bp.delay_ns t d16 in
  Alcotest.(check bool) "past stop the delay exceeds the slowdown scale"
    true (per > opts.O.slowdown_stall_ns);
  (* cost 10 against a full burst of 4: deficit 6 *)
  let v = Bp.throttle t ~now_ns:0.0 ~debt:d16 ~cost:10 in
  let deficit = 6.0 in
  check (Alcotest.float 1e-3) "slowdown share caps at the seed penalty"
    (deficit *. opts.O.slowdown_stall_ns) v.Bp.slowdown_ns;
  check (Alcotest.float 1e-3) "excess past the boundary is stop time"
    (deficit *. (per -. opts.O.slowdown_stall_ns)) v.Bp.stop_ns;
  Alcotest.(check bool) "one stall, both kinds" true
    (v.Bp.slowdown_ns > 0.0 && v.Bp.stop_ns > 0.0)

let test_no_refill_over_stall () =
  let opts = { (O.hyperleveldb ()) with O.throttle = O.Token_bucket;
               l0_slowdown = 8; l0_stop = 12; throttle_burst_entries = 4 } in
  let t = Bp.create opts in
  let d = debt ~l0:12 () in
  let per = Bp.delay_ns t d in
  let v1 = Bp.throttle t ~now_ns:0.0 ~debt:d ~cost:8 in
  check (Alcotest.float 1e-3) "first group pays for the deficit"
    (4.0 *. per) (Bp.total_ns v1);
  (* the clock advanced exactly by the stall; the bucket earned nothing
     over it, so the next group pays full price *)
  let v2 = Bp.throttle t ~now_ns:(Bp.total_ns v1) ~debt:d ~cost:8 in
  check (Alcotest.float 1e-3) "stall time earns no tokens"
    (8.0 *. per) (Bp.total_ns v2)

let test_cliff_charges_once_per_group () =
  let opts = { (O.hyperleveldb ()) with O.throttle = O.Cliff } in
  let t = Bp.create opts in
  let at points cost =
    Bp.total_ns (Bp.throttle t ~now_ns:0.0 ~debt:(debt ~l0:points ()) ~cost)
  in
  check (Alcotest.float 1e-3) "below slowdown: free" 0.0 (at 7 64);
  (* the verdict is per *group*: a 64-entry group pays the same fixed
     penalty as a 1-entry group (the seed charged it per batch) *)
  check (Alcotest.float 1e-3) "group of 1" opts.O.slowdown_stall_ns (at 8 1);
  check (Alcotest.float 1e-3) "group of 64" opts.O.slowdown_stall_ns (at 8 64);
  let v_slow = Bp.throttle t ~now_ns:0.0 ~debt:(debt ~l0:9 ()) ~cost:1 in
  let v_stop = Bp.throttle t ~now_ns:0.0 ~debt:(debt ~l0:12 ()) ~cost:1 in
  Alcotest.(check bool) "slowdown attribution below stop" true
    (v_slow.Bp.slowdown_ns > 0.0 && v_slow.Bp.stop_ns = 0.0);
  Alcotest.(check bool) "stop attribution at stop" true
    (v_stop.Bp.stop_ns > 0.0 && v_stop.Bp.slowdown_ns = 0.0)

(* ---------- one controller for both engines ---------- *)

(* Both engines build their controller through Bp.create from the same
   option fields; feed the two instances one mixed debt schedule and
   pin the verdict sequences equal, so the stall policies cannot
   drift. *)
let test_engines_cannot_drift () =
  let tweak o = { o with O.throttle = O.Token_bucket;
                  l0_slowdown = 2; l0_stop = 4 } in
  let lsm = Bp.create (tweak (O.hyperleveldb ()))
  and flsm = Bp.create (tweak (O.pebblesdb ())) in
  let now = ref 0.0 in
  List.iter
    (fun (l0, backlog, cost) ->
      let d = debt ~l0 ~backlog () in
      let a = Bp.throttle lsm ~now_ns:!now ~debt:d ~cost in
      let b = Bp.throttle flsm ~now_ns:!now ~debt:d ~cost in
      check (Alcotest.float 1e-6) "same slowdown" a.Bp.slowdown_ns b.Bp.slowdown_ns;
      check (Alcotest.float 1e-6) "same stop" a.Bp.stop_ns b.Bp.stop_ns;
      now := !now +. Bp.total_ns a +. 1_000.0)
    [ (0, 0, 8); (3, 0, 8); (3, 65536, 16); (5, 0, 4); (6, 131072, 32);
      (1, 0, 8); (4, 0, 64); (0, 0, 8); (5, 32768, 16) ]

let test_engine_group_charged_once () =
  (* l0_slowdown = 0 puts every commit at the cliff: a 3-batch group
     must stall exactly once, not once per batch *)
  let tweak base =
    { base with O.throttle = O.Cliff; l0_slowdown = 0; l0_stop = 1000 }
  in
  let batches n =
    List.init n (fun i ->
        let b = Pdb_kvs.Write_batch.create () in
        Pdb_kvs.Write_batch.put b (Printf.sprintf "k%04d" i) "v";
        b)
  in
  let env = Env.create () in
  let db = L.open_store (tweak (O.hyperleveldb ())) ~env ~dir:"lsm" in
  L.write_group db (batches 3);
  let st = L.stats db in
  check Alcotest.int "lsm: one stall for the group" 1
    st.Pdb_kvs.Engine_stats.write_stalls;
  check (Alcotest.float 1e-3) "lsm: one penalty charged"
    (O.hyperleveldb ()).O.slowdown_stall_ns
    st.Pdb_kvs.Engine_stats.stall_slowdown_ns;
  L.close db;
  let db = P.open_store (tweak (O.pebblesdb ())) ~env ~dir:"flsm" in
  P.write_group db (batches 3);
  let st = P.stats db in
  check Alcotest.int "flsm: one stall for the group" 1
    st.Pdb_kvs.Engine_stats.write_stalls;
  check (Alcotest.float 1e-3) "flsm: one penalty charged"
    (O.pebblesdb ()).O.slowdown_stall_ns
    st.Pdb_kvs.Engine_stats.stall_slowdown_ns;
  P.close db

(* ---------- state is independent of throttling ---------- *)

let files_of env =
  Env.list env
  |> List.map (fun name ->
         ( name,
           Digest.to_hex
             (Digest.string
                (Env.read_all env name ~hint:Pdb_simio.Device.Sequential_read))
         ))
  |> List.sort compare

let stall_fill engine ~throttle ~clients =
  (* thresholds under the L0 compaction trigger so stalls actually
     fire at this scale (the synchronous drain keeps L0 <= 4) *)
  let tweak o = { o with O.throttle; l0_slowdown = 2; l0_stop = 4 } in
  let env = Env.create () in
  let store = Stores.open_engine ~tweak ~env engine in
  let _, r =
    B.mc_fill_random store ~clients ~n:2_000 ~value_bytes:256 ~seed:11
  in
  let stats = store.Dyn.d_stats () in
  store.Dyn.d_close ();
  (files_of env, r.Pdb_kvs.Multi_client.elapsed_ns, stats)

let test_state_invariant_across_throttles engine () =
  let base, _, _ = stall_fill engine ~throttle:O.Unthrottled ~clients:4 in
  let cliff, _, cs = stall_fill engine ~throttle:O.Cliff ~clients:4 in
  let tb, _, ts = stall_fill engine ~throttle:O.Token_bucket ~clients:4 in
  Alcotest.(check bool) "cliff stalled" true
    (cs.Pdb_kvs.Engine_stats.write_stalls > 0);
  Alcotest.(check bool) "token bucket stalled" true
    (ts.Pdb_kvs.Engine_stats.write_stalls > 0);
  check Alcotest.(list (pair string string)) "off = cliff bytes" base cliff;
  check Alcotest.(list (pair string string)) "off = token-bucket bytes" base tb

let test_token_bucket_deterministic engine () =
  List.iter
    (fun clients ->
      let f1, e1, _ = stall_fill engine ~throttle:O.Token_bucket ~clients in
      let f2, e2, _ = stall_fill engine ~throttle:O.Token_bucket ~clients in
      check
        Alcotest.(list (pair string string))
        (Printf.sprintf "rerun at %dc: identical bytes" clients)
        f1 f2;
      check (Alcotest.float 0.0)
        (Printf.sprintf "rerun at %dc: identical modeled time" clients)
        e1 e2)
    [ 1; 4; 8 ]

(* ---------- flush lane fairness ---------- *)

let fp_level l = Sched.full_range ~level_lo:l ~level_hi:l

let test_flush_lane_never_starved () =
  let clock = Clock.create () in
  let s = Sched.create ~flush_lanes:1 ~clock ~workers:1 () in
  (* saturate the single worker lane with a deep compaction queue *)
  for _ = 1 to 4 do
    ignore (Sched.place_span s (fp_level 1) ~duration_ns:1_000.0)
  done;
  let p = Sched.place_span ~cls:`Flush s (fp_level 0) ~duration_ns:100.0 in
  check (Alcotest.float 1e-6) "flush starts immediately" 0.0 p.Sched.start_ns;
  check (Alcotest.float 1e-6) "flush lane carries it" 100.0
    (Sched.flush_busy_ns s);
  (* same queue without the reserved lane: the flush waits behind all
     four compactions — the starvation the lane exists to prevent *)
  let clock = Clock.create () in
  let s = Sched.create ~clock ~workers:1 () in
  for _ = 1 to 4 do
    ignore (Sched.place_span s (fp_level 1) ~duration_ns:1_000.0)
  done;
  let p = Sched.place_span ~cls:`Flush s (fp_level 0) ~duration_ns:100.0 in
  check (Alcotest.float 1e-6) "without the lane the flush is starved"
    4_000.0 p.Sched.start_ns

let test_engine_reports_flush_lane () =
  let env = Env.create () in
  let store = Stores.open_engine ~env Stores.Pebblesdb in
  let _, _ = B.mc_fill_random store ~clients:1 ~n:2_000 ~value_bytes:256 ~seed:3 in
  let st = store.Dyn.d_stats () in
  Alcotest.(check bool) "flushes ran on the reserved lane" true
    (st.Pdb_kvs.Engine_stats.flush_busy_ns > 0.0);
  store.Dyn.d_close ()

let () =
  Alcotest.run "backpressure"
    [
      ( "controller",
        [
          Alcotest.test_case "delay ramp" `Quick test_delay_ramp;
          Alcotest.test_case "boundary-crossing stall splits" `Quick
            test_boundary_split;
          Alcotest.test_case "no refill over a stall" `Quick
            test_no_refill_over_stall;
          Alcotest.test_case "cliff charges once per group" `Quick
            test_cliff_charges_once_per_group;
        ] );
      ( "engines",
        [
          Alcotest.test_case "identical schedules, identical verdicts" `Quick
            test_engines_cannot_drift;
          Alcotest.test_case "write_group stalls once" `Quick
            test_engine_group_charged_once;
        ] );
      ( "state",
        [
          Alcotest.test_case "lsm bytes invariant across throttles" `Quick
            (test_state_invariant_across_throttles Stores.Hyperleveldb);
          Alcotest.test_case "flsm bytes invariant across throttles" `Quick
            (test_state_invariant_across_throttles Stores.Pebblesdb);
          Alcotest.test_case "lsm token bucket deterministic 1/4/8c" `Quick
            (test_token_bucket_deterministic Stores.Hyperleveldb);
          Alcotest.test_case "flsm token bucket deterministic 1/4/8c" `Quick
            (test_token_bucket_deterministic Stores.Pebblesdb);
        ] );
      ( "fairness",
        [
          Alcotest.test_case "flush never starved" `Quick
            test_flush_lane_never_starved;
          Alcotest.test_case "engine uses the flush lane" `Quick
            test_engine_reports_flush_lane;
        ] );
    ]
