lib/harness/experiments.ml: Bench_util Filename Fun List Pdb_apps Pdb_bloom Pdb_kvs Pdb_simio Pdb_util Pdb_ycsb Pebblesdb Printf Stores String Unix
