(** Simulated storage environment: an in-memory file system with IO
    accounting, device-time charging and crash simulation.

    This stands in for the paper's ext4-on-SSD testbed.  Every store in the
    repository performs all of its IO through an [Env.t], so byte counts
    (write amplification) and modeled device time are directly comparable
    across engines.

    Durability model: [append] buffers data; [sync] makes the current file
    contents crash-durable.  {!crash} truncates every file back to its last
    synced length (and removes files that were never synced), after which
    stores exercise their recovery paths.  [rename] follows the ext4
    replace-via-rename heuristic: it implies a flush of the file's current
    contents, so the renamed file — name and data — is durable, matching
    the way LevelDB-family stores install a new MANIFEST via CURRENT.

    Fault injection: a seeded {!Fault_plan} arms a crash at the Nth
    subsequent IO event (create/append/sync/rename/delete/positioned
    write), raising {!Injected_crash} out of the store's own code path —
    including mid-flush and mid-compaction, since background jobs perform
    their IO through the same environment.  When a plan is installed,
    {!crash} additionally applies a torn-write model: each file's unsynced
    suffix persists only up to a block-granular prefix chosen by the plan's
    RNG, and the surviving tail may be garbled (bit flips), modelling
    partial page persistence after power failure. *)

exception Injected_crash of string

module Fault_plan = struct
  type t = {
    rng : Pdb_util.Rng.t;
    mutable countdown : int;  (** IO events left before the crash fires *)
    mutable armed : bool;
    torn_writes : bool;
    garbage_tail_prob : float;
    block_bytes : int;
    mutable ticks : int;  (** total IO events observed, fired or not *)
    mutable fired_at : string option;
    mutable fired_in_background : bool;
    mutable torn_files : int;
        (** files whose unsynced tail partially persisted at the crash *)
  }

  let create ?(torn_writes = true) ?(garbage_tail_prob = 0.25)
      ?(block_bytes = 4096) ~seed ~crash_after () =
    {
      rng = Pdb_util.Rng.create seed;
      countdown = crash_after;
      armed = crash_after > 0;
      torn_writes;
      garbage_tail_prob;
      block_bytes;
      ticks = 0;
      fired_at = None;
      fired_in_background = false;
      torn_files = 0;
    }

  let fired t = t.fired_at <> None
  let fired_at t = t.fired_at
  let fired_in_background t = t.fired_in_background
  let ticks t = t.ticks
  let torn_files t = t.torn_files
end

type file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable synced : int;
  mutable ever_synced : bool;
      (* distinct from [synced = 0]: a file synced while empty is durable
         as an empty file, a never-synced file vanishes at a crash *)
}

type t = {
  files : (string, file) Hashtbl.t;
  stats : Io_stats.t;
  device : Device.t;
  clock : Clock.t;
  mutable plan : Fault_plan.t option;
  mutable atomic_depth : int;
  mutable pending_crash : string option;
  mutable tracer : Trace.t option;
}

type writer = { env : t; name : string; file : file }

let create ?(device = Device.ssd ()) () =
  {
    files = Hashtbl.create 64;
    stats = Io_stats.create ();
    device;
    clock = Clock.create ();
    plan = None;
    atomic_depth = 0;
    pending_crash = None;
    tracer = None;
  }

let stats t = t.stats
let device t = t.device
let clock t = t.clock

let set_fault_plan t plan = t.plan <- Some plan
let clear_fault_plan t = t.plan <- None
let fault_plan t = t.plan

let set_tracer t tr = t.tracer <- Some tr
let clear_tracer t = t.tracer <- None
let tracer t = t.tracer

(* One injection point: decrement the armed plan's countdown and raise
   {!Injected_crash} when it reaches zero.  Inside an {!with_atomic}
   section the crash is deferred to the section's end, modelling an
   operation the device commits atomically (page-store checkpoints). *)
let tick t label =
  match t.plan with
  | Some p when p.Fault_plan.armed ->
    p.Fault_plan.ticks <- p.Fault_plan.ticks + 1;
    p.Fault_plan.countdown <- p.Fault_plan.countdown - 1;
    if p.Fault_plan.countdown <= 0 then begin
      p.Fault_plan.armed <- false;
      p.Fault_plan.fired_at <- Some label;
      p.Fault_plan.fired_in_background <-
        t.clock.Clock.lane = Clock.Background;
      (match t.tracer with
       | Some tr ->
         Trace.instant tr ~name:("fault:" ^ label) ~cat:"fault"
           ~lane:"faults"
           ~ts_ns:(Clock.elapsed_ns (Clock.snapshot t.clock))
           ()
       | None -> ());
      if t.atomic_depth > 0 then t.pending_crash <- Some label
      else raise (Injected_crash label)
    end
  | _ -> ()

(** [with_atomic t f] runs [f] deferring any injected crash to the end of
    the section: the IO inside is committed (or lost) as a unit. *)
let with_atomic t f =
  t.atomic_depth <- t.atomic_depth + 1;
  let result =
    Fun.protect f ~finally:(fun () -> t.atomic_depth <- t.atomic_depth - 1)
  in
  (* fire outside the protect: a raise inside [~finally] would surface as
     [Fun.Finally_raised] instead of the crash itself *)
  (if t.atomic_depth = 0 then
     match t.pending_crash with
     | Some label ->
       t.pending_crash <- None;
       raise (Injected_crash label)
     | None -> ());
  result

let find t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> raise (Sys_error (name ^ ": no such simulated file"))

(** [create_file t name] opens [name] for appending, truncating any existing
    contents.  Truncating an already-durable name keeps the directory entry
    durable (the file survives a crash, empty); a brand-new name stays
    volatile until the first sync. *)
let create_file t name =
  let ever_synced =
    match Hashtbl.find_opt t.files name with
    | Some f -> f.ever_synced
    | None -> false
  in
  let file = { data = Bytes.create 4096; len = 0; synced = 0; ever_synced } in
  Hashtbl.replace t.files name file;
  t.stats.files_created <- t.stats.files_created + 1;
  tick t ("create:" ^ name);
  { env = t; name; file }

(** [append w s] appends [s]; charges sequential write cost. *)
let append w s =
  let n = String.length s in
  if n > 0 then begin
    let f = w.file in
    let cap = Bytes.length f.data in
    if f.len + n > cap then begin
      let newcap = max (f.len + n) (2 * cap) in
      let bigger = Bytes.create newcap in
      Bytes.blit f.data 0 bigger 0 f.len;
      f.data <- bigger
    end;
    Bytes.blit_string s 0 f.data f.len n;
    f.len <- f.len + n;
    let st = w.env.stats in
    st.bytes_written <- st.bytes_written + n;
    st.write_ops <- st.write_ops + 1;
    Clock.advance w.env.clock (Device.write_cost w.env.device ~bytes:n);
    tick w.env ("append:" ^ w.name)
  end

(** [sync w] makes the file contents durable. *)
let sync w =
  w.file.synced <- w.file.len;
  w.file.ever_synced <- true;
  w.env.stats.syncs <- w.env.stats.syncs + 1;
  Clock.advance w.env.clock (Device.sync_cost w.env.device);
  tick w.env ("sync:" ^ w.name)

(** [close w] closes the writer (contents remain; unsynced data stays
    volatile until the next [sync] on a new writer or a crash). *)
let close (_ : writer) = ()

let writer_size w = w.file.len

(** [write_at t name ~pos s] overwrites bytes at [pos] (extending the file
    with zeroes as needed) — the random-write path used by the page-based
    B+-tree stores.  Positioned writes are treated as immediately durable
    (page stores are assumed to carry their own journaling; see
    DESIGN.md). *)
let write_at t name ~pos s =
  let f =
    match Hashtbl.find_opt t.files name with
    | Some f -> f
    | None ->
      let f =
        { data = Bytes.create 4096; len = 0; synced = 0; ever_synced = false }
      in
      Hashtbl.replace t.files name f;
      t.stats.files_created <- t.stats.files_created + 1;
      f
  in
  let n = String.length s in
  let needed = pos + n in
  let cap = Bytes.length f.data in
  if needed > cap then begin
    let bigger = Bytes.create (max needed (2 * cap)) in
    Bytes.blit f.data 0 bigger 0 f.len;
    Bytes.fill bigger f.len (max needed (2 * cap) - f.len) '\000';
    f.data <- bigger
  end;
  if pos > f.len then Bytes.fill f.data f.len (pos - f.len) '\000';
  Bytes.blit_string s 0 f.data pos n;
  f.len <- max f.len needed;
  f.synced <- f.len;
  f.ever_synced <- true;
  t.stats.bytes_written <- t.stats.bytes_written + n;
  t.stats.write_ops <- t.stats.write_ops + 1;
  (* positioned page writes pay a random-IO style setup like reads do *)
  Clock.advance t.clock
    (Device.read_cost t.device ~hint:Device.Random_read ~bytes:0
     +. Device.write_cost t.device ~bytes:n);
  tick t ("write_at:" ^ name)

let exists t name = Hashtbl.mem t.files name

let file_size t name = (find t name).len

(** [peek t name ~pos ~len] reads a range without charging device time or
    IO stats — the sendfile-style path replication shipping uses, where
    the primary streams file bytes it just wrote (still page-cache
    resident) onto the wire.  The network link charges the transfer. *)
let peek t name ~pos ~len =
  let f = find t name in
  if pos < 0 || len < 0 || pos + len > f.len then
    invalid_arg
      (Printf.sprintf "Env.peek %s: [%d,%d) out of bounds (size %d)" name pos
         (pos + len) f.len);
  Bytes.sub_string f.data pos len

(** [io_event t label] registers an external IO event (e.g. a replication
    ship) with the fault-injection plan, so crash sweeps land between and
    inside shipping steps exactly as they do between file operations. *)
let io_event t label = tick t label

(** [read t name ~pos ~len ~hint] reads a range, charging device cost per
    the read [hint].  Cached layers above this module avoid calling it for
    cache hits. *)
let read t name ~pos ~len ~hint =
  let f = find t name in
  if pos < 0 || len < 0 || pos + len > f.len then
    invalid_arg
      (Printf.sprintf "Env.read %s: [%d,%d) out of bounds (size %d)" name pos
         (pos + len) f.len);
  t.stats.bytes_read <- t.stats.bytes_read + len;
  t.stats.read_ops <- t.stats.read_ops + 1;
  Clock.advance t.clock (Device.read_cost t.device ~hint ~bytes:len);
  Bytes.sub_string f.data pos len

let read_all t name ~hint =
  let f = find t name in
  read t name ~pos:0 ~len:f.len ~hint

let delete t name =
  if Hashtbl.mem t.files name then begin
    Hashtbl.remove t.files name;
    t.stats.files_deleted <- t.stats.files_deleted + 1;
    tick t ("delete:" ^ name)
  end

(** [rename t ~src ~dst] atomically renames a file.  Like ext4's
    replace-via-rename heuristic, the rename implies a flush: the file's
    contents at rename time become durable under the new name, so a
    freshly installed MANIFEST or CURRENT cannot vanish at a crash. *)
let rename t ~src ~dst =
  let f = find t src in
  Hashtbl.remove t.files src;
  Hashtbl.replace t.files dst f;
  f.synced <- f.len;
  f.ever_synced <- true;
  t.stats.syncs <- t.stats.syncs + 1;
  Clock.advance t.clock (Device.sync_cost t.device);
  tick t ("rename:" ^ dst)

let list t = Hashtbl.fold (fun name _ acc -> name :: acc) t.files []

(** Total bytes stored across all files — used for space-amplification
    measurements (Figure 5.3). *)
let total_file_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + f.len) t.files 0

(* Flip a handful of random bits in [data[lo, hi)] — the garbage a torn
   page leaves behind. *)
let garble rng data lo hi =
  let n = hi - lo in
  if n > 0 then begin
    let flips = 1 + Pdb_util.Rng.int rng (min 8 n) in
    for _ = 1 to flips do
      let i = lo + Pdb_util.Rng.int rng n in
      let bit = 1 lsl Pdb_util.Rng.int rng 8 in
      Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor bit))
    done
  end

(** [crash t] simulates a power failure: every file loses its unsynced
    suffix; files that never reached a sync disappear.  Under an installed
    {!Fault_plan} with torn writes, the unsynced suffix instead persists up
    to a block-granular prefix chosen by the plan's RNG (possibly with a
    garbled tail), and a never-synced file's directory entry itself may or
    may not have persisted.  Whatever survives the crash is durable — it is
    on the platter.  The plan is consumed. *)
let crash t =
  let torn =
    match t.plan with
    | Some p when p.Fault_plan.torn_writes -> Some p
    | _ -> None
  in
  (* iterate in sorted name order so a seeded plan is deterministic *)
  let names = List.sort compare (list t) in
  List.iter
    (fun name ->
      let f = Hashtbl.find t.files name in
      let keep_file, base =
        if f.ever_synced then (true, f.synced)
        else
          match torn with
          | Some p ->
            (* the creating directory update may itself have persisted *)
            (Pdb_util.Rng.bool p.Fault_plan.rng, 0)
          | None -> (false, 0)
      in
      if not keep_file then Hashtbl.remove t.files name
      else begin
        let unsynced = f.len - base in
        (match torn with
         | Some p when unsynced > 0 ->
           let block = p.Fault_plan.block_bytes in
           let nblocks = (unsynced + block - 1) / block in
           let keep_blocks = Pdb_util.Rng.int p.Fault_plan.rng (nblocks + 1) in
           let keep = min unsynced (keep_blocks * block) in
           f.len <- base + keep;
           if keep > 0 then begin
             p.Fault_plan.torn_files <- p.Fault_plan.torn_files + 1;
             if Pdb_util.Rng.float p.Fault_plan.rng < p.Fault_plan.garbage_tail_prob
             then garble p.Fault_plan.rng f.data (max base (f.len - block)) f.len
           end
         | _ -> f.len <- base);
        (* post-reboot, whatever persisted is by definition durable *)
        f.synced <- f.len;
        f.ever_synced <- true
      end)
    names;
  t.plan <- None;
  t.pending_crash <- None
