(** Measurement and reporting helpers shared by the benchmark harness and
    the repro CLI. *)

module Dyn = Pdb_kvs.Store_intf
module Clock = Pdb_simio.Clock
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter

type phase = {
  ops : int;
  elapsed_ns : float;
  kops : float;
  bytes_written : int;
  bytes_read : int;
}

(** [measure store ops f] runs [f ()] and reports modeled throughput and IO
    for the phase. *)
let measure (store : Dyn.dyn) ops f =
  let clock = Env.clock store.Dyn.d_env in
  let io0 = Pdb_simio.Io_stats.snapshot (Env.stats store.Dyn.d_env) in
  let c0 = Clock.snapshot clock in
  f ();
  let c1 = Clock.snapshot clock in
  let io1 = Pdb_simio.Io_stats.snapshot (Env.stats store.Dyn.d_env) in
  let delta = Clock.diff c1 c0 in
  let elapsed = Clock.elapsed_ns delta in
  let io = Pdb_simio.Io_stats.diff io1 io0 in
  {
    ops;
    elapsed_ns = elapsed;
    kops =
      (if elapsed <= 0.0 then 0.0
       else float_of_int ops /. (elapsed /. 1e9) /. 1000.0);
    bytes_written = io.Pdb_simio.Io_stats.bytes_written;
    bytes_read = io.Pdb_simio.Io_stats.bytes_read;
  }

(* ---------- canonical workload phases (db_bench-style) ---------- *)

let key_of i = Printf.sprintf "key%010d" i
let value_of rng n = Pdb_util.Rng.alpha rng n

(** [fill_random store ~n ~value_bytes ~seed] inserts [n] keys in random
    order. *)
let fill_random (store : Dyn.dyn) ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  measure store n (fun () ->
      Array.iter
        (fun i -> store.Dyn.d_put (key_of i) (value_of rng value_bytes))
        perm)

(** [fill_seq store ~n ~value_bytes ~seed] inserts [n] keys in ascending
    order — LSM's trivial-move fast path, FLSM's worst case (§5.2). *)
let fill_seq (store : Dyn.dyn) ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  measure store n (fun () ->
      for i = 0 to n - 1 do
        store.Dyn.d_put (key_of i) (value_of rng value_bytes)
      done)

(** [update_random store ~n ~value_bytes ~seed] overwrites every existing
    key once, in random order. *)
let update_random (store : Dyn.dyn) ~n ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  measure store n (fun () ->
      Array.iter
        (fun i -> store.Dyn.d_put (key_of i) (value_of rng value_bytes))
        perm)

(** [read_random store ~n ~ops ~seed] issues [ops] point lookups over the
    [n]-key space. *)
let read_random (store : Dyn.dyn) ~n ~ops ~seed =
  let rng = Pdb_util.Rng.create (seed + 1) in
  measure store ops (fun () ->
      for _ = 1 to ops do
        ignore (store.Dyn.d_get (key_of (Pdb_util.Rng.int rng n)))
      done)

(** [seek_random store ~n ~ops ~nexts ~seed] issues [ops] seeks, each
    followed by [nexts] next() calls (a range query).  A short untimed
    warmup first brings the table cache to steady state, as the paper's
    10M-operation runs do implicitly. *)
let seek_random ?(warmup = 2_000) (store : Dyn.dyn) ~n ~ops ~nexts ~seed =
  let wrng = Pdb_util.Rng.create (seed + 11) in
  for _ = 1 to warmup do
    let it = store.Dyn.d_iterator () in
    it.Iter.seek (key_of (Pdb_util.Rng.int wrng n))
  done;
  let rng = Pdb_util.Rng.create (seed + 2) in
  measure store ops (fun () ->
      for _ = 1 to ops do
        let it = store.Dyn.d_iterator () in
        it.Iter.seek (key_of (Pdb_util.Rng.int rng n));
        let steps = ref 0 in
        while it.Iter.valid () && !steps < nexts do
          ignore (it.Iter.key ());
          it.Iter.next ();
          incr steps
        done
      done)

(** [delete_random store ~n ~seed] deletes every key once, random order. *)
let delete_random (store : Dyn.dyn) ~n ~seed =
  let rng = Pdb_util.Rng.create (seed + 3) in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle rng perm;
  measure store n (fun () ->
      Array.iter (fun i -> store.Dyn.d_delete (key_of i)) perm)

(* ---------- reporting ---------- *)

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

(** Render rows as an aligned table with a header. *)
let print_table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  Printf.printf "\n== %s ==\n" title;
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let fmt_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

(** One-line background-scheduler summary for a store: jobs drained, peak
    queue depth and backlog, footprint conflicts, per-worker utilization
    (busy time over the background completion horizon), and stall-time
    attribution.  Empty for engines without scheduled background work. *)
let scheduler_summary (store : Dyn.dyn) =
  let st = store.Dyn.d_stats () in
  if st.Pdb_kvs.Engine_stats.compaction_jobs = 0 then ""
  else begin
    let horizon = (Env.clock store.Dyn.d_env).Clock.bg_horizon_ns in
    let util =
      Array.to_list st.Pdb_kvs.Engine_stats.worker_busy_ns
      |> List.map (fun busy ->
             Printf.sprintf "%.0f%%"
               (if horizon <= 0.0 then 0.0 else 100.0 *. busy /. horizon))
      |> String.concat " "
    in
    Printf.sprintf
      "jobs=%d queue<=%d backlog<=%.1fMB conflicts=%d util=[%s] \
       stall(slow/stop)=%.1f/%.1fms"
      st.Pdb_kvs.Engine_stats.compaction_jobs
      st.Pdb_kvs.Engine_stats.compaction_queue_peak
      (mb st.Pdb_kvs.Engine_stats.compaction_backlog_peak_bytes)
      st.Pdb_kvs.Engine_stats.compaction_serialized_jobs util
      (st.Pdb_kvs.Engine_stats.stall_slowdown_ns /. 1e6)
      (st.Pdb_kvs.Engine_stats.stall_stop_ns /. 1e6)
  end

(** Write amplification of a store at this instant: device writes over user
    payload. *)
let write_amp (store : Dyn.dyn) =
  let st = store.Dyn.d_stats () in
  let io = Env.stats store.Dyn.d_env in
  if st.Pdb_kvs.Engine_stats.user_bytes_written = 0 then 0.0
  else
    float_of_int io.Pdb_simio.Io_stats.bytes_written
    /. float_of_int st.Pdb_kvs.Engine_stats.user_bytes_written
