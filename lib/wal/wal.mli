(** Record-oriented write-ahead log (LevelDB log format).

    The log is a sequence of 32 KB blocks; records are framed with
    [crc32c(4) | length(2) | type(1)] headers and fragmented across block
    boundaries with FIRST/MIDDLE/LAST record types.  Both the WAL proper
    (memtable recovery) and the MANIFEST (version-edit recovery) use this
    format. *)

val block_size : int
val header_size : int

type record_type = Full | First | Middle | Last

val type_to_int : record_type -> int
val type_of_int : int -> record_type option

module Writer : sig
  type t

  (** [create env name] starts a fresh log file. *)
  val create : Pdb_simio.Env.t -> string -> t

  (** [of_writer w ~existing_bytes] continues appending to an existing
      file, keeping block alignment. *)
  val of_writer : Pdb_simio.Env.writer -> existing_bytes:int -> t

  (** [add_record t payload] appends one logical record, fragmenting
      across block boundaries as needed. *)
  val add_record : t -> string -> unit

  (** [add_records t payloads] appends the records in order as a single
      device write — the group-commit leader's coalesced WAL append.
      File bytes are exactly those of [List.iter (add_record t)
      payloads]; only the device-op accounting differs. *)
  val add_records : t -> string list -> unit

  val sync : t -> unit
  val close : t -> unit
  val size : t -> int
end

module Reader : sig
  (** Why a read stopped short of the physical end of the log. *)
  type stop_reason =
    | Clean  (** every byte accounted for *)
    | Torn_header  (** the file ends inside a record header *)
    | Torn_fragment  (** a framed length points past the end of the file *)
    | Bad_crc  (** a stored checksum does not match its body *)
    | Bad_type  (** an unknown record-type byte *)

  val stop_reason_name : stop_reason -> string

  (** What recovery got out of a log — stores surface this in their
      engine stats instead of pretending every log was clean. *)
  type report = {
    records_read : int;  (** complete records returned *)
    bytes_dropped : int;
        (** log bytes not represented in the returned records: orphaned
            fragments, the corrupt/torn tail *)
    orphan_fragments : int;
        (** FIRST/MIDDLE/LAST fragments dropped because their record was
            never completed — the signature of a torn fragmented write *)
    stop : stop_reason;  (** why reading stopped, [Clean] at a clean end *)
  }

  (** [read_all env name] returns the complete records recoverable from
      the log, in order, together with a {!report} accounting for every
      dropped byte — the corrupt or truncated tail expected after a
      crash, and any orphaned mid-log fragments. *)
  val read_all : Pdb_simio.Env.t -> string -> string list * report
end
