(** Read-path table filtering for seeks and bounded scans.

    A multi-table seek (a guard probe, a tiered run, the L0 pile) opens
    and positions every member table even when most provably cannot
    contribute: their key range ends before the target, starts after the
    scan's upper bound, or — for prefix-bounded scans — their prefix bloom
    proves the probed prefix absent.  This module centralises those three
    checks so every level iterator applies the same soundness argument
    (DESIGN.md "Read path").

    Soundness: a table is skipped only when the check proves it disjoint
    from the probe range [target, upper]:
    - [largest < target] — every entry sorts before the first key any
      consumer of the positioned iterator can observe;
    - [user_key smallest > upper] — every entry sorts after the last key
      the (upper-clamped) engine iterator will yield;
    - prefix bloom — when [target] and [upper] share a full
      [prefix_bloom_len]-byte prefix, every user key in [target, upper]
      carries that prefix, so a filter-certified absent prefix certifies
      the whole range absent.  Bloom filters have no false negatives for
      recorded prefixes, so the certificate is exact.

    Filtering consults only metadata and already-resident readers
    ([peek] must not perform IO to produce one) — skipping a table costs
    nothing and never changes which keys a correct consumer observes. *)

module Ik = Pdb_kvs.Internal_key

type t = {
  filtering : bool;
  upper_user : string option; (* inclusive user-key scan bound *)
  peek : Table.meta -> Table.reader option;
  on_check : skipped:bool -> unit;
}

let create ?upper_user ~filtering ~peek ~on_check () =
  { filtering; upper_user; peek; on_check }

let none =
  {
    filtering = false;
    upper_user = None;
    peek = (fun _ -> None);
    on_check = (fun ~skipped:_ -> ());
  }

let upper_user t = t.upper_user

(* Table entirely above the scan's upper bound. *)
let above_upper t (m : Table.meta) =
  match t.upper_user with
  | None -> false
  | Some up -> String.compare (Ik.user_key m.Table.smallest) up > 0

(* Prefix-bloom refinement: only meaningful when the whole probe range
   shares the table's full prefix length. *)
let prefix_absent t (m : Table.meta) ~target_user =
  match t.upper_user with
  | None -> false
  | Some up -> (
    match t.peek m with
    | None -> false
    | Some r ->
      let pl = Table.prefix_len r in
      pl > 0
      && String.length target_user >= pl
      && String.length up >= pl
      && String.sub target_user 0 pl = String.sub up 0 pl
      && not (Table.may_contain_prefix r (String.sub target_user 0 pl)))

(** [skip_seek t m ~target] decides whether a seek to internal key
    [target] may skip table [m] entirely. *)
let skip_seek t (m : Table.meta) ~target =
  if not t.filtering then false
  else begin
    let skipped =
      Ik.compare m.Table.largest target < 0
      || above_upper t m
      || prefix_absent t m ~target_user:(Ik.user_key target)
    in
    t.on_check ~skipped;
    skipped
  end

(** [skip_first t m] decides whether a seek-to-first may skip table [m]
    (possible only under an upper bound). *)
let skip_first t (m : Table.meta) =
  if not t.filtering then false
  else begin
    let skipped = above_upper t m in
    t.on_check ~skipped;
    skipped
  end

(** [past_upper t user_key] is [true] once a forward scan has advanced
    beyond the bound — level iterators use it to stop opening successor
    tables. *)
let past_upper t user_key =
  match t.upper_user with
  | None -> false
  | Some up -> String.compare user_key up > 0

(** [table_iterator t ~cache ~block_cache ~hint ~on_table m] is a lazy,
    filtered iterator over one (possibly overlapping) table — the L0 /
    tiered-run member wrapper.  The table is not opened until a
    positioning call survives the filter; a filtered-out positioning
    leaves the iterator invalid, which is sound per the module contract.
    [next] on a never-positioned iterator is a no-op (merging iterators
    only advance children they positioned). *)
let table_iterator t ~cache ~block_cache ~hint ~on_table (m : Table.meta) =
  let it = ref None in
  let force () =
    match !it with
    | Some i -> i
    | None ->
      let reader = Table_cache.find cache m in
      let i = Table.iterator reader ~cache:block_cache ~hint in
      on_table ();
      it := Some i;
      i
  in
  let current () =
    match !it with
    | Some i when i.Pdb_kvs.Iter.valid () -> Some i
    | Some _ | None -> None
  in
  {
    Pdb_kvs.Iter.seek_to_first =
      (fun () ->
        if skip_first t m then it := None
        else (force ()).Pdb_kvs.Iter.seek_to_first ());
    seek =
      (fun target ->
        if skip_seek t m ~target then it := None
        else (force ()).Pdb_kvs.Iter.seek target);
    next =
      (fun () -> match !it with Some i -> i.Pdb_kvs.Iter.next () | None -> ());
    valid = (fun () -> Option.is_some (current ()));
    key =
      (fun () ->
        match current () with
        | Some i -> i.Pdb_kvs.Iter.key ()
        | None -> invalid_arg "Seek_filter.table_iterator: not valid");
    value =
      (fun () ->
        match current () with
        | Some i -> i.Pdb_kvs.Iter.value ()
        | None -> invalid_arg "Seek_filter.table_iterator: not valid");
  }
