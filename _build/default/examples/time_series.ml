(* Time-series / event-tracking workload (one of the paper's motivating
   applications: "event tracking systems", "stream processing engines").

   Sensors emit timestamped readings; the store ingests them at high rate
   and serves windowed range queries.  Old windows are expired (deleted),
   exercising tombstones and — in PebblesDB — empty guards (Figure 5.4).

   Run with: dune exec examples/time_series.exe *)

module P = Pebblesdb.Pebbles_store
module Iter = Pdb_kvs.Iter

let sensor_key ~sensor ~ts = Printf.sprintf "s%03d/t%010d" sensor ts

let () =
  let env = Pdb_simio.Env.create () in
  let db = P.open_store (Pdb_kvs.Options.pebblesdb ()) ~env ~dir:"tsdb" in
  let rng = Pdb_util.Rng.create 99 in
  let sensors = 16 in
  let windows = 6 in
  let per_window = 4_000 in

  for window = 0 to windows - 1 do
    (* ingest one window of readings *)
    for i = 0 to per_window - 1 do
      let ts = (window * per_window) + i in
      let sensor = Pdb_util.Rng.int rng sensors in
      P.put db (sensor_key ~sensor ~ts)
        (Printf.sprintf "%.4f" (Pdb_util.Rng.float rng))
    done;
    (* windowed range query: last 100 readings of sensor 3 *)
    let start_ts = max 0 (((window + 1) * per_window) - 100) in
    let it = P.iterator db in
    it.Iter.seek (sensor_key ~sensor:3 ~ts:start_ts);
    let count = ref 0 in
    while it.Iter.valid () && !count < 100 do
      incr count;
      it.Iter.next ()
    done;
    Printf.printf "window %d: ingested %d readings, scanned %d recent rows\n"
      window per_window !count;
    (* expire the oldest window once we hold three *)
    if window >= 2 then begin
      let expired = window - 2 in
      for i = 0 to per_window - 1 do
        let ts = (expired * per_window) + i in
        for sensor = 0 to sensors - 1 do
          (* deletes are cheap appends; most keys won't exist per sensor *)
          if (ts + sensor) mod sensors = 0 then
            P.delete db (sensor_key ~sensor ~ts)
        done
      done;
      Printf.printf "  expired window %d\n" expired
    end
  done;

  P.flush db;
  Printf.printf "\nempty guards accumulated (harmless, Fig 5.4): %d\n"
    (P.empty_guard_count db);
  let io = Pdb_simio.Env.stats env in
  let st = P.stats db in
  Printf.printf "write amplification over the session: %.2f\n"
    (float_of_int io.Pdb_simio.Io_stats.bytes_written
     /. float_of_int st.Pdb_kvs.Engine_stats.user_bytes_written);
  P.close db
