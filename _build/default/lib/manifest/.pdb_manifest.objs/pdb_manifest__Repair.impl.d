lib/manifest/repair.ml: Filename List Manifest Pdb_kvs Pdb_simio Pdb_sstable String
