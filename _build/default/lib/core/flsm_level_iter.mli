(** Iterator over one FLSM level.

    Within a guard the sstables may overlap, so the guard's tables are
    merged; across guards the ranges are disjoint and sorted, so the
    iterator concatenates guard merges in order.  Empty guards are skipped
    (§3.3).

    When [parallel] carries the store's clock (PebblesDB's parallel seeks,
    applied to the deepest populated level, §4.2), positioning a guard's
    tables charges the device mostly for the slowest table — overlapped IO
    with a queueing share for the rest; the modeled CPU is still paid per
    table. *)

val create :
  level:Guard.level ->
  cache:Pdb_sstable.Table_cache.t ->
  block_cache:Pdb_sstable.Block_cache.t ->
  hint:Pdb_simio.Device.read_hint ->
  on_table:(unit -> unit) ->
  parallel:Pdb_simio.Clock.t option ->
  unit ->
  Pdb_kvs.Iter.t
