lib/kvs/snapshots.ml: List
