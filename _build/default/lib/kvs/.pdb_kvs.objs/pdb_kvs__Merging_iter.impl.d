lib/kvs/merging_iter.ml: Array Iter
