(** Record-oriented write-ahead log (LevelDB log format).

    The log is a sequence of 32 KB blocks; records are framed with
    [crc32c(4) | length(2) | type(1)] headers and fragmented across block
    boundaries with FIRST/MIDDLE/LAST record types.  Both the WAL proper
    (memtable recovery) and the MANIFEST (version-edit recovery) use this
    format.  The reader stops cleanly at a truncated or corrupt tail — the
    expected state after a crash. *)

let block_size = 32 * 1024
let header_size = 7

type record_type = Full | First | Middle | Last

let type_to_int = function Full -> 1 | First -> 2 | Middle -> 3 | Last -> 4

let type_of_int = function
  | 1 -> Some Full
  | 2 -> Some First
  | 3 -> Some Middle
  | 4 -> Some Last
  | _ -> None

module Writer = struct
  type t = {
    writer : Pdb_simio.Env.writer;
    mutable block_offset : int;
  }

  let create env name =
    { writer = Pdb_simio.Env.create_file env name; block_offset = 0 }

  let of_writer writer ~existing_bytes =
    { writer; block_offset = existing_bytes mod block_size }

  let emit t buf rtype fragment =
    let body =
      let b = Buffer.create (1 + String.length fragment) in
      Buffer.add_char b (Char.chr (type_to_int rtype));
      Buffer.add_string b fragment;
      Buffer.contents b
    in
    let crc = Pdb_util.Crc32c.masked (Pdb_util.Crc32c.string body) in
    Pdb_util.Varint.put_fixed32 buf crc;
    Buffer.add_char buf (Char.chr (String.length fragment land 0xff));
    Buffer.add_char buf (Char.chr ((String.length fragment lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (type_to_int rtype));
    Buffer.add_string buf fragment;
    t.block_offset <- t.block_offset + header_size + String.length fragment

  (* Frame one logical record into [buf], fragmenting across block
     boundaries as needed. *)
  let emit_record t buf payload =
    let len = String.length payload in
    let pos = ref 0 in
    let first = ref true in
    let continue = ref true in
    while !continue do
      let leftover = block_size - t.block_offset in
      if leftover < header_size then begin
        (* pad the block tail with zeroes *)
        if leftover > 0 then begin
          Buffer.add_string buf (String.make leftover '\000');
          t.block_offset <- t.block_offset + leftover
        end;
        t.block_offset <- 0
      end
      else begin
        let avail = block_size - t.block_offset - header_size in
        let fragment_len = min avail (len - !pos) in
        let is_last = !pos + fragment_len = len in
        let rtype =
          match (!first, is_last) with
          | true, true -> Full
          | true, false -> First
          | false, true -> Last
          | false, false -> Middle
        in
        emit t buf rtype (String.sub payload !pos fragment_len);
        if t.block_offset >= block_size then t.block_offset <- 0;
        pos := !pos + fragment_len;
        first := false;
        if is_last then continue := false
      end
    done

  (** [add_record t payload] appends one logical record, fragmenting across
      block boundaries as needed. *)
  let add_record t payload =
    let buf = Buffer.create (header_size + String.length payload) in
    emit_record t buf payload;
    Pdb_simio.Env.append t.writer (Buffer.contents buf)

  (** [add_records t payloads] appends the records in order as one device
      write — the group-commit leader's coalesced WAL append.  The file
      bytes are exactly those of [List.iter (add_record t) payloads];
      only the device-op accounting (one write instead of N) differs. *)
  let add_records t payloads =
    match payloads with
    | [] -> ()
    | payloads ->
      let buf = Buffer.create 4096 in
      List.iter (emit_record t buf) payloads;
      Pdb_simio.Env.append t.writer (Buffer.contents buf)

  let sync t = Pdb_simio.Env.sync t.writer
  let close t = Pdb_simio.Env.close t.writer
  let size t = Pdb_simio.Env.writer_size t.writer
end

module Reader = struct
  (** Why a read stopped short of the physical end of the log. *)
  type stop_reason =
    | Clean  (** every byte accounted for *)
    | Torn_header  (** the file ends inside a record header *)
    | Torn_fragment  (** a framed length points past the end of the file *)
    | Bad_crc  (** a stored checksum does not match its body *)
    | Bad_type  (** an unknown record-type byte *)

  let stop_reason_name = function
    | Clean -> "clean"
    | Torn_header -> "torn-header"
    | Torn_fragment -> "torn-fragment"
    | Bad_crc -> "bad-crc"
    | Bad_type -> "bad-type"

  (** What recovery got out of a log — stores surface this in their engine
      stats instead of pretending every log was clean. *)
  type report = {
    records_read : int;  (** complete records returned *)
    bytes_dropped : int;
        (** log bytes not represented in the returned records: orphaned
            fragments, the corrupt/torn tail *)
    orphan_fragments : int;
        (** FIRST/MIDDLE/LAST fragments dropped because their record was
            never completed — the signature of a torn fragmented write *)
    stop : stop_reason;  (** why reading stopped, [Clean] at a clean end *)
  }

  (** [read_all env name] returns the complete records recoverable from
      the log, in order, together with a {!report} accounting for every
      byte that was dropped: the corrupt or truncated tail expected after
      a crash, and any orphaned mid-log fragments. *)
  let read_all env name =
    let data =
      Pdb_simio.Env.read_all env name ~hint:Pdb_simio.Device.Sequential_read
    in
    let len = String.length data in
    let records = ref [] in
    let nrecords = ref 0 in
    let partial = Buffer.create 256 in
    let in_fragmented = ref false in
    let pos = ref 0 in
    let dropped = ref 0 in
    let orphans = ref 0 in
    let stop = ref Clean in
    let stopped = ref false in
    (* an accumulated FIRST(+MIDDLE)* prefix whose record never completed *)
    let drop_partial () =
      if !in_fragmented then begin
        dropped := !dropped + Buffer.length partial;
        incr orphans;
        Buffer.clear partial;
        in_fragmented := false
      end
    in
    while (not !stopped) && !pos + header_size <= len do
      let block_left = block_size - (!pos mod block_size) in
      if block_left < header_size then pos := min len (!pos + block_left)
      else begin
        let stored_crc = Pdb_util.Varint.get_fixed32 data !pos in
        let flen =
          Char.code data.[!pos + 4] lor (Char.code data.[!pos + 5] lsl 8)
        in
        let tbyte = Char.code data.[!pos + 6] in
        if tbyte = 0 && flen = 0 && stored_crc = 0 then
          (* zero padding: skip to next block *)
          pos := min len (!pos + block_left)
        else if !pos + header_size + flen > len then begin
          stop := Torn_fragment;
          stopped := true
        end
        else
          match type_of_int tbyte with
          | None ->
            stop := Bad_type;
            stopped := true
          | Some rtype ->
            let body =
              String.sub data (!pos + 6) (1 + flen)
              (* type byte + fragment, as covered by the CRC *)
            in
            let crc = Pdb_util.Crc32c.masked (Pdb_util.Crc32c.string body) in
            if crc <> stored_crc then begin
              stop := Bad_crc;
              stopped := true
            end
            else begin
              let fragment = String.sub data (!pos + header_size) flen in
              (match rtype with
               | Full ->
                 drop_partial ();
                 records := fragment :: !records;
                 incr nrecords
               | First ->
                 drop_partial ();
                 Buffer.add_string partial fragment;
                 in_fragmented := true
               | Middle ->
                 if !in_fragmented then Buffer.add_string partial fragment
                 else begin
                   dropped := !dropped + header_size + flen;
                   incr orphans
                 end
               | Last ->
                 if !in_fragmented then begin
                   Buffer.add_string partial fragment;
                   records := Buffer.contents partial :: !records;
                   incr nrecords;
                   Buffer.clear partial;
                   in_fragmented := false
                 end
                 else begin
                   dropped := !dropped + header_size + flen;
                   incr orphans
                 end);
              pos := !pos + header_size + flen
            end
      end
    done;
    if !stopped then dropped := !dropped + (len - !pos)
    else if !pos < len then begin
      (* fewer than header_size trailing bytes: torn padding (all zeroes,
         nothing lost) or a torn header *)
      let tail = String.sub data !pos (len - !pos) in
      if not (String.for_all (fun c -> c = '\000') tail) then begin
        dropped := !dropped + (len - !pos);
        stop := Torn_header
      end
    end;
    (if !in_fragmented then begin
       drop_partial ();
       if !stop = Clean then stop := Torn_fragment
     end);
    ( List.rev !records,
      {
        records_read = !nrecords;
        bytes_dropped = !dropped;
        orphan_fragments = !orphans;
        stop = !stop;
      } )
end
