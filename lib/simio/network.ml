(** Network cost model: replication links as their own DAM device.

    Replication traffic must not steal disk lanes — a backup that is
    "behind" because the primary's device is busy would hide exactly the
    tradeoff we want to measure (Vardoulakis et al.: ship the log and
    burn backup CPU, or ship compacted files and burn network bytes).
    Each primary→backup link therefore carries its own frontier
    timeline, in the same style as {!Device}: a message starting at
    [now] on a busy link queues behind the link's frontier, pays a
    per-message latency plus a per-byte wire cost, and advances the
    frontier to its finish time.

    Costs are in nanoseconds.  Sends are purely observational with
    respect to the disk clock: the caller decides how much of the
    returned finish time to charge (e.g. log shipping charges the ack
    wait to the foreground lane; file shipping ships asynchronously and
    charges nothing).  With a tracer attached every message emits a
    ["net:<label>"] span on lane ["net:link-<i>"], so shipped traffic is
    visible alongside compaction lanes in the same Chrome trace. *)

type profile = {
  latency_ns : float; (* per-message propagation + request setup *)
  byte_ns : float; (* wire cost per byte *)
}

(** 10GbE-like defaults: ~50 us per message, ~0.8 ns/byte (~1.2 GB/s). *)
let tengig () = { latency_ns = 50_000.0; byte_ns = 0.8 }

let message_cost p ~bytes = p.latency_ns +. (float_of_int bytes *. p.byte_ns)

type link = {
  id : int;
  mutable frontier_ns : float; (* finish time of the last queued message *)
  mutable bytes_sent : int;
  mutable messages : int;
}

type t = {
  profile : profile;
  clock : Clock.t; (* the primary's clock: defines "now" for sends *)
  tracer : unit -> Trace.t option;
  mutable links : link list; (* newest first *)
  mutable next_id : int;
}

let create ?(profile = tengig ()) ~clock ~tracer () =
  { profile; clock; tracer; links = []; next_id = 0 }

(** [add_link t] opens a fresh link (one per backup). *)
let add_link t =
  let link =
    { id = t.next_id; frontier_ns = 0.0; bytes_sent = 0; messages = 0 }
  in
  t.next_id <- t.next_id + 1;
  t.links <- link :: t.links;
  link

(** [send t link ~bytes ~label] queues a [bytes]-sized message on [link]
    and returns its delivery time (simulated ns).  The message starts at
    the later of the link's frontier and the clock's current elapsed
    time — a busy link delays delivery, an idle link starts at once. *)
let send t link ~bytes ~label =
  let now = Clock.elapsed_ns (Clock.snapshot t.clock) in
  let start = Float.max link.frontier_ns now in
  let dur = message_cost t.profile ~bytes in
  link.frontier_ns <- start +. dur;
  link.bytes_sent <- link.bytes_sent + bytes;
  link.messages <- link.messages + 1;
  (match t.tracer () with
   | Some tr ->
     Trace.span tr ~name:("net:" ^ label) ~cat:"net"
       ~lane:(Printf.sprintf "net:link-%d" link.id)
       ~start_ns:start ~dur_ns:dur
       ~args:[ ("bytes", string_of_int bytes) ]
       ()
   | None -> ());
  link.frontier_ns

(** Totals across every link of this network. *)
let bytes_sent t = List.fold_left (fun acc l -> acc + l.bytes_sent) 0 t.links
let messages t = List.fold_left (fun acc l -> acc + l.messages) 0 t.links
let profile t = t.profile
