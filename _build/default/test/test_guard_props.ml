(* Property tests for the guard structure, the guard selector, and the
   simulated environment's positioned writes — deeper coverage of the
   FLSM-specific invariants. *)

module G = Pebblesdb.Guard
module Sel = Pebblesdb.Guard_selector
module Ik = Pdb_kvs.Internal_key
module Env = Pdb_simio.Env
module O = Pdb_kvs.Options

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let meta ~number ~smallest ~largest : Pdb_sstable.Table.meta =
  {
    Pdb_sstable.Table.number;
    file_size = 100;
    entries = 10;
    smallest = Ik.encode ~user_key:smallest ~seq:1 ~kind:Ik.Value;
    largest = Ik.encode ~user_key:largest ~seq:1 ~kind:Ik.Value;
  }

(* random guard keys: short strings *)
let guard_keys_gen =
  QCheck.(list_of_size (QCheck.Gen.int_range 0 20)
            (string_of_size (QCheck.Gen.return 3)))

let prop_commit_keeps_guards_sorted_unique =
  qtest "commit_guards keeps guards sorted and unique" guard_keys_gen
    (fun keys ->
      let lvl = G.create_level () in
      (* commit in two batches to exercise merging with existing guards *)
      let n = List.length keys in
      let first = List.filteri (fun i _ -> i < n / 2) keys in
      let second = List.filteri (fun i _ -> i >= n / 2) keys in
      G.commit_guards lvl first;
      G.commit_guards lvl second;
      let g = lvl.G.guards in
      Array.length g >= 1
      && g.(0).G.gkey = ""
      &&
      let ok = ref true in
      for i = 1 to Array.length g - 2 do
        if String.compare g.(i).G.gkey g.(i + 1).G.gkey >= 0 then ok := false
      done;
      !ok)

let prop_guard_index_is_owning_interval =
  qtest "guard_index returns the owning interval"
    QCheck.(pair guard_keys_gen (string_of_size (QCheck.Gen.return 3)))
    (fun (keys, probe) ->
      let lvl = G.create_level () in
      G.commit_guards lvl keys;
      let i = G.guard_index lvl probe in
      let lo, hi = G.guard_range lvl i in
      String.compare lo probe <= 0
      && (match hi with None -> true | Some h -> String.compare probe h < 0))

let prop_attach_detach_roundtrip =
  qtest "attach then detach leaves the level empty"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20)
              (pair (string_of_size (QCheck.Gen.return 2))
                 (string_of_size (QCheck.Gen.return 2))))
    (fun ranges ->
      let lvl = G.create_level () in
      (* no guards: everything attaches to the sentinel, any range fits *)
      let metas =
        List.mapi
          (fun i (a, b) ->
            let lo = min a b and hi = max a b in
            meta ~number:i ~smallest:lo ~largest:hi)
          ranges
      in
      List.iter (G.attach lvl) metas;
      let before = G.table_count lvl in
      G.detach lvl (List.map (fun (m : Pdb_sstable.Table.meta) -> m.Pdb_sstable.Table.number) metas);
      before = List.length metas && G.table_count lvl = 0)

let test_guard_range_boundaries () =
  let lvl = G.create_level () in
  G.commit_guards lvl [ "g"; "p" ];
  check Alcotest.(pair string (option string)) "sentinel range" ("", Some "g")
    (G.guard_range lvl 0);
  check Alcotest.(pair string (option string)) "middle range" ("g", Some "p")
    (G.guard_range lvl 1);
  check Alcotest.(pair string (option string)) "last range" ("p", None)
    (G.guard_range lvl 2)

let prop_selector_respects_bit_budget =
  (* a key is a guard at level l iff its trailing ones meet guard_bits l *)
  qtest "selector matches the bit rule"
    QCheck.(string_of_size (QCheck.Gen.return 8))
    (fun key ->
      let opts = O.pebblesdb () in
      let trailing =
        Pdb_util.Murmur3.trailing_ones (Pdb_util.Murmur3.hash32 key)
      in
      match Sel.guard_level opts key with
      | None ->
        (* must fail the loosest (deepest) requirement *)
        trailing < O.guard_bits opts ~level:(opts.O.max_levels - 1)
      | Some l ->
        trailing >= O.guard_bits opts ~level:l
        && (l = 1 || trailing < O.guard_bits opts ~level:(l - 1)))

(* ---------- env positioned writes ---------- *)

let test_write_at_basic () =
  let env = Env.create () in
  Env.write_at env "pages" ~pos:0 "AAAA";
  Env.write_at env "pages" ~pos:8 "BBBB";
  check Alcotest.int "size extends" 12 (Env.file_size env "pages");
  check Alcotest.string "gap zero-filled" "\000\000\000\000"
    (Env.read env "pages" ~pos:4 ~len:4 ~hint:Pdb_simio.Device.Random_read);
  Env.write_at env "pages" ~pos:2 "XX";
  check Alcotest.string "overwrite in place" "AAXX"
    (Env.read env "pages" ~pos:0 ~len:4 ~hint:Pdb_simio.Device.Random_read)

let test_write_at_durable_over_crash () =
  let env = Env.create () in
  Env.write_at env "pages" ~pos:0 "DATA";
  Env.crash env;
  check Alcotest.string "page writes survive crash" "DATA"
    (Env.read env "pages" ~pos:0 ~len:4 ~hint:Pdb_simio.Device.Random_read)

let prop_write_at_matches_model =
  qtest "write_at = byte-array model" ~count:50
    QCheck.(list (pair (int_bound 200) (string_of_size (QCheck.Gen.return 5))))
    (fun writes ->
      let env = Env.create () in
      let model = Bytes.make 512 '\000' in
      let maxlen = ref 0 in
      List.iter
        (fun (pos, s) ->
          Env.write_at env "f" ~pos s;
          Bytes.blit_string s 0 model pos (String.length s);
          maxlen := max !maxlen (pos + String.length s))
        writes;
      writes = []
      || Env.read_all env "f" ~hint:Pdb_simio.Device.Sequential_read
         = Bytes.sub_string model 0 !maxlen)

let () =
  Alcotest.run "guard-props"
    [
      ( "guard-structure",
        [
          prop_commit_keeps_guards_sorted_unique;
          prop_guard_index_is_owning_interval;
          prop_attach_detach_roundtrip;
          Alcotest.test_case "range boundaries" `Quick
            test_guard_range_boundaries;
        ] );
      ( "selector", [ prop_selector_respects_bit_budget ] );
      ( "env-write-at",
        [
          Alcotest.test_case "basic" `Quick test_write_at_basic;
          Alcotest.test_case "durable over crash" `Quick
            test_write_at_durable_over_crash;
          prop_write_at_matches_model;
        ] );
    ]
