lib/core/pebbles_store.ml: Array Buffer Flsm_level_iter Guard Guard_selector Hashtbl Int List Pdb_kvs Pdb_manifest Pdb_simio Pdb_sstable Pdb_wal Printf String
