lib/util/murmur3.ml: Char String
