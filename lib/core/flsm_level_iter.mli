(** Iterator over one FLSM level.

    Within a guard the sstables may overlap, so the guard's tables are
    merged; across guards the ranges are disjoint and sorted, so the
    iterator concatenates guard merges in order.  Empty guards are skipped
    (§3.3).

    [filter] skips guard members provably disjoint from the probe range
    (key range past the target or upper bound, prefix bloom negative);
    [probe] brackets each guard probe in a parallel-probe session so the
    surviving tables' reads overlap up to the device budget (§4.2's
    parallel seeks, generalised). *)

val create :
  ?filter:Pdb_sstable.Seek_filter.t ->
  ?probe:Pdb_simio.Probe.ctx ->
  level:Guard.level ->
  cache:Pdb_sstable.Table_cache.t ->
  block_cache:Pdb_sstable.Block_cache.t ->
  hint:Pdb_simio.Device.read_hint ->
  on_table:(unit -> unit) ->
  unit ->
  Pdb_kvs.Iter.t
