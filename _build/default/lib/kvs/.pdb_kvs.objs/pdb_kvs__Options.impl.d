lib/kvs/options.ml:
