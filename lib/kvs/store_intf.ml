(** The key-value store interface (paper §2.1) that every engine in this
    repository implements: LSM baselines, the FLSM-based PebblesDB, the
    B+-tree store and the WiredTiger-like store. *)

module type S = sig
  type t

  (** [open_store options ~env ~dir] opens (creating or recovering) a store
      rooted at simulated directory prefix [dir]. *)
  val open_store : Options.t -> env:Pdb_simio.Env.t -> dir:string -> t

  (** [close t] flushes state needed for clean reopen and releases the
      store.  Buffered (unsynced) WAL data remains volatile, as in the real
      systems. *)
  val close : t -> unit

  val put : t -> string -> string -> unit
  val get : t -> string -> string option
  val delete : t -> string -> unit

  (** [write t batch] applies a batch atomically. *)
  val write : t -> Write_batch.t -> unit

  (** [write_group t batches] commits [batches] as one group, in order —
      engines with a WAL group commit (see {!Write_group}) coalesce the
      log append and sync; others degrade to writing them one by one.
      Store state is always exactly that of the one-by-one writes. *)
  val write_group : t -> Write_batch.t list -> unit

  (** [iterator t] is a database iterator over live user keys (tombstones
      and stale versions filtered). *)
  val iterator : t -> Iter.t

  (** [flush t] persists the active memtable as an sstable. *)
  val flush : t -> unit

  (** [compact_all t] drives compaction until the store reaches its fully
      compacted shape — used by "after full compaction" experiments. *)
  val compact_all : t -> unit

  val stats : t -> Engine_stats.t
  val options : t -> Options.t
  val env : t -> Pdb_simio.Env.t

  (** [memory_bytes t] is the modeled resident memory: memtable + cached
      blocks + in-memory filters/indexes (Table 5.4). *)
  val memory_bytes : t -> int

  (** [describe t] renders the on-storage shape (levels, files, guards) for
      debugging and the layout examples (Figures 2.1 and 3.1). *)
  val describe : t -> string

  (** [check_invariants t] raises [Failure] if an internal structural
      invariant is violated — used heavily by the test suites. *)
  val check_invariants : t -> unit
end

(** A store packaged as first-class values, so the benchmark harness can
    drive heterogeneous engines uniformly. *)
type dyn = {
  d_name : string;
  d_put : string -> string -> unit;
  d_get : string -> string option;
  d_delete : string -> unit;
  d_write : Write_batch.t -> unit;
  d_write_group : Write_batch.t list -> unit;
  d_iterator : unit -> Iter.t;
  d_flush : unit -> unit;
  d_compact_all : unit -> unit;
  d_close : unit -> unit;
  d_stats : unit -> Engine_stats.t;
  d_options : Options.t;
  d_env : Pdb_simio.Env.t;
  d_memory_bytes : unit -> int;
  d_describe : unit -> string;
  d_check_invariants : unit -> unit;
}

(** [dyn_of (module M) t] erases a store's type. *)
let dyn_of (type a) (module M : S with type t = a) (t : a) =
  {
    d_name = (M.options t).Options.name;
    d_put = M.put t;
    d_get = M.get t;
    d_delete = M.delete t;
    d_write = M.write t;
    d_write_group = M.write_group t;
    d_iterator = (fun () -> M.iterator t);
    d_flush = (fun () -> M.flush t);
    d_compact_all = (fun () -> M.compact_all t);
    d_close = (fun () -> M.close t);
    d_stats = (fun () -> M.stats t);
    d_options = M.options t;
    d_env = M.env t;
    d_memory_bytes = (fun () -> M.memory_bytes t);
    d_describe = (fun () -> M.describe t);
    d_check_invariants = (fun () -> M.check_invariants t);
  }
