(** Iterator over one FLSM level.

    Within a guard the sstables may overlap, so the guard's tables are
    merged; across guards the ranges are disjoint and sorted, so the
    iterator concatenates guard merges in order.  Empty guards are skipped
    (the paper notes reads "skip over empty guards", §3.3).

    A guard probe is the FLSM's read-cost hot spot: a seek must position
    every table of the target guard (§3.4).  Two read-path optimisations
    apply here:
    - a {!Pdb_sstable.Seek_filter} skips guard members whose key range or
      prefix bloom proves them disjoint from the probe range, so they are
      never opened;
    - a {!Pdb_simio.Probe} context brackets the guard probe in a session
      (label ["guard"]; nested inside an engine seek session it folds into
      the outer one), measuring each surviving table's positioning cost so
      the independent reads overlap up to the device's parallel-probe
      budget while the modeled CPU stays serialized. *)

module Ik = Pdb_kvs.Internal_key
module Iter = Pdb_kvs.Iter
module Table = Pdb_sstable.Table
module Seek_filter = Pdb_sstable.Seek_filter
module Probe = Pdb_simio.Probe

let create ?(filter = Seek_filter.none) ?probe ~(level : Guard.level) ~cache
    ~block_cache ~hint ~on_table () =
  let nguards () = Array.length level.Guard.guards in
  let cur_guard = ref (-1) in
  let merged = ref None in
  let measure f =
    match probe with Some ctx -> Probe.measure ctx f | None -> f ()
  in
  (* Position every surviving table of guard [gi]; [target = None] means
     first key. *)
  let position_guard gi target =
    cur_guard := gi;
    let tables = level.Guard.guards.(gi).Guard.tables in
    match tables with
    | [] -> merged := None
    | _ ->
      let children = ref [] in
      let probe_tables () =
        List.iter
          (fun m ->
            let skip =
              match target with
              | Some k -> Seek_filter.skip_seek filter m ~target:k
              | None -> Seek_filter.skip_first filter m
            in
            if not skip then
              measure (fun () ->
                let reader = Pdb_sstable.Table_cache.find cache m in
                let it = Table.iterator reader ~cache:block_cache ~hint in
                on_table ();
                (match target with
                 | Some k -> it.Iter.seek k
                 | None -> it.Iter.seek_to_first ());
                children := it :: !children))
          tables
      in
      (match probe with
       | Some ctx -> Probe.with_session ctx ~label:"guard" probe_tables
       | None -> probe_tables ());
      merged :=
        (match !children with
         | [] -> None
         | cs ->
           Some
             (Pdb_kvs.Merging_iter.create ~positioned:true ~compare:Ik.compare
                cs))
  in
  let current () =
    match !merged with
    | Some it when it.Iter.valid () -> Some it
    | Some _ | None -> None
  in
  (* A bounded scan stops walking guards once a guard's key exceeds the
     upper bound — every key it owns is provably out of range. *)
  let guard_past_upper gi =
    match Seek_filter.upper_user filter with
    | None -> false
    | Some up ->
      gi > 0 && String.compare level.Guard.guards.(gi).Guard.gkey up > 0
  in
  let rec skip_empty_forward () =
    match current () with
    | Some _ -> ()
    | None ->
      if !cur_guard >= 0 && !cur_guard + 1 < nguards () then
        if guard_past_upper (!cur_guard + 1) then begin
          cur_guard := nguards ();
          merged := None
        end
        else begin
          position_guard (!cur_guard + 1) None;
          skip_empty_forward ()
        end
  in
  {
    Iter.seek_to_first =
      (fun () ->
        if nguards () = 0 then merged := None
        else begin
          position_guard 0 None;
          skip_empty_forward ()
        end);
    seek =
      (fun target ->
        let uk = Ik.user_key target in
        let gi = Guard.guard_index level uk in
        position_guard gi (Some target);
        skip_empty_forward ());
    next =
      (fun () ->
        (match current () with
         | Some it -> it.Iter.next ()
         | None -> ());
        skip_empty_forward ());
    valid = (fun () -> Option.is_some (current ()));
    key =
      (fun () ->
        match current () with
        | Some it -> it.Iter.key ()
        | None -> invalid_arg "Flsm_level_iter: iterator is not valid");
    value =
      (fun () ->
        match current () with
        | Some it -> it.Iter.value ()
        | None -> invalid_arg "Flsm_level_iter: iterator is not valid");
  }
