(** Event tracer over the simulated clock: a bounded ring buffer of
    timestamped spans and instants, exportable as Chrome trace-event JSON
    (load the file in Perfetto / chrome://tracing).

    Producers record *modeled* times (nanoseconds of simulated clock), not
    wall time: compaction jobs carry the worker-lane placement computed by
    {!Sched.place_span}, foreground events stamp the clock's current
    elapsed time.  Recording is purely observational — attaching a tracer
    never changes IO, clock charging or store bytes.

    The buffer keeps the most recent [capacity] events; older ones are
    dropped (counted in {!dropped}) so long benchmarks stay bounded. *)

type event = {
  name : string;  (** e.g. ["compact:l0"], ["flush"], ["wal-rotate"] *)
  cat : string;  (** coarse category: "compaction", "wal", "stall", ... *)
  lane : string;  (** timeline row, e.g. ["worker-0"], ["foreground"] *)
  ts_ns : float;  (** span start (or instant time), simulated ns *)
  dur_ns : float;  (** span duration in ns; 0 for instants *)
  args : (string * string) list;  (** extra key/value detail *)
}

type t = {
  buf : event option array;
  capacity : int;
  mutable next : int;  (** next slot to write (ring index) *)
  mutable count : int;  (** total events ever recorded *)
}

let create ?(capacity = 65536) () =
  { buf = Array.make (max 1 capacity) None; capacity = max 1 capacity;
    next = 0; count = 0 }

let record t ev =
  t.buf.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.count <- t.count + 1

(** [span t ~name ~cat ~lane ~start_ns ~dur_ns ()] records a complete
    span.  Durations are recorded as given — producers are responsible
    for non-negative values, and the trace validator asserts it, so a
    producer measuring its end time on a rewound clock is caught rather
    than silently clamped. *)
let span t ?(args = []) ~name ~cat ~lane ~start_ns ~dur_ns () =
  record t { name; cat; lane; ts_ns = start_ns; dur_ns; args }

(** [instant t ~name ~cat ~lane ~ts_ns ()] records a zero-duration event. *)
let instant t ?(args = []) ~name ~cat ~lane ~ts_ns () =
  record t { name; cat; lane; ts_ns; dur_ns = 0.0; args }

let count t = t.count
let dropped t = max 0 (t.count - t.capacity)

(** Retained events, oldest first. *)
let events t =
  let n = min t.count t.capacity in
  let start = if t.count <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

(* --- Chrome trace-event export ------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** [to_chrome_json t] renders the retained events in the Chrome
    trace-event format: one ["X"] (complete) event per span, ["i"]
    instants, plus ["M"] thread_name metadata naming each lane.  Times are
    microseconds as the format requires; lanes map to tids in order of
    first appearance, pid is 1 throughout. *)
let to_chrome_json t =
  let evs = events t in
  let lanes = Hashtbl.create 8 in
  let lane_order = ref [] in
  let tid_of lane =
    match Hashtbl.find_opt lanes lane with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length lanes + 1 in
      Hashtbl.add lanes lane tid;
      lane_order := (lane, tid) :: !lane_order;
      tid
  in
  List.iter (fun ev -> ignore (tid_of ev.lane)) evs;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n "
  in
  (* thread_name metadata first so Perfetto labels every row *)
  List.iter
    (fun (lane, tid) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
            \"args\":{\"name\":\"%s\"}}"
           tid (json_escape lane)))
    (List.rev !lane_order);
  let add_args args =
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      args;
    Buffer.add_char b '}'
  in
  List.iter
    (fun ev ->
      sep ();
      let tid = tid_of ev.lane in
      if ev.dur_ns > 0.0 then
        Buffer.add_string b
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\
              \"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f"
             tid (json_escape ev.name) (json_escape ev.cat)
             (ev.ts_ns /. 1e3) (ev.dur_ns /. 1e3))
      else
        Buffer.add_string b
          (Printf.sprintf
             "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\
              \"cat\":\"%s\",\"ts\":%.3f,\"s\":\"t\""
             tid (json_escape ev.name) (json_escape ev.cat)
             (ev.ts_ns /. 1e3));
      add_args ev.args;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "]}\n";
  Buffer.contents b
