lib/util/dist.ml: Float Int64 Rng Stdlib
