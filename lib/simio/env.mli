(** Simulated storage environment: an in-memory file system with IO
    accounting, device-time charging and crash simulation.

    This stands in for the paper's ext4-on-SSD testbed.  Every store in the
    repository performs all of its IO through an [Env.t], so byte counts
    (write amplification) and modeled device time are directly comparable
    across engines.

    Durability model: {!append} buffers data; {!sync} makes the current
    file contents crash-durable.  {!crash} truncates every file back to
    its last synced length (and removes never-synced files), after which
    stores exercise their recovery paths.  {!rename} is atomic and — like
    ext4's replace-via-rename heuristic — implies a flush of the file's
    contents, matching how LevelDB-family stores install a new MANIFEST
    via CURRENT.  Positioned writes ({!write_at}, used by the page stores)
    are immediately durable — page engines carry their own journaling.

    Fault injection: install a seeded {!Fault_plan} to make the Nth
    subsequent IO event raise {!Injected_crash}, and to model torn writes
    at the following {!crash} — each file's unsynced suffix persists only
    up to a block-granular prefix, possibly with a garbled tail.  See the
    "Crash & durability model" section of DESIGN.md. *)

(** Raised at an armed fault-plan injection point, out of whatever store
    code performed the IO.  The environment is left exactly as the crash
    found it; callers should {!crash} it and re-open stores. *)
exception Injected_crash of string

module Fault_plan : sig
  type t

  (** [create ~seed ~crash_after ()] arms a crash at the [crash_after]-th
      subsequent IO event (append/sync/create/rename/delete/positioned
      write).  [torn_writes] (default true) enables the torn-write model at
      the next {!crash}; [garbage_tail_prob] (default 0.25) is the chance
      the surviving torn tail of a file is garbled; [block_bytes] (default
      4096) is the persistence granularity. *)
  val create :
    ?torn_writes:bool ->
    ?garbage_tail_prob:float ->
    ?block_bytes:int ->
    seed:int ->
    crash_after:int ->
    unit ->
    t

  (** [fired t] is true once the plan's crash point was reached. *)
  val fired : t -> bool

  (** [fired_at t] is the label of the IO event that fired, e.g.
      ["sync:db/000003.log"]. *)
  val fired_at : t -> string option

  (** [fired_in_background t] is true when the crash fired inside
      background (flush/compaction) work. *)
  val fired_in_background : t -> bool

  (** [ticks t] counts every IO event observed while armed — run a trace
      with an unreachable [crash_after] to measure its crash-point count. *)
  val ticks : t -> int

  (** [torn_files t] counts files whose unsynced tail partially persisted
      at the crash (set by {!crash}). *)
  val torn_files : t -> int
end

type t

(** An open append handle. *)
type writer

val create : ?device:Device.t -> unit -> t

val stats : t -> Io_stats.t
val device : t -> Device.t
val clock : t -> Clock.t

val set_fault_plan : t -> Fault_plan.t -> unit
val clear_fault_plan : t -> unit
val fault_plan : t -> Fault_plan.t option

(** Attach a {!Trace.t} to record spans/instants (compaction jobs, flushes,
    WAL rotations, stalls, injected faults) against the simulated clock.
    Purely observational: store bytes and clock charges are unchanged. *)
val set_tracer : t -> Trace.t -> unit

val clear_tracer : t -> unit
val tracer : t -> Trace.t option

(** [with_atomic t f] runs [f] deferring any injected crash to the end of
    the section — the IO inside commits (or is lost) as a unit.  Used by
    the page stores, whose checkpoints are modeled as atomic. *)
val with_atomic : t -> (unit -> 'a) -> 'a

(** [create_file t name] opens [name] for appending, truncating any
    existing contents.  Truncating an already-durable name keeps the
    directory entry durable (the file survives a crash, empty); a
    brand-new name stays volatile until the first sync. *)
val create_file : t -> string -> writer

(** [append w s] appends [s]; charges sequential write cost. *)
val append : writer -> string -> unit

(** [sync w] makes the file contents crash-durable; charges fsync cost. *)
val sync : writer -> unit

val close : writer -> unit
val writer_size : writer -> int

(** [write_at t name ~pos s] overwrites bytes at [pos], extending the file
    with zeroes as needed; charges random-write cost. *)
val write_at : t -> string -> pos:int -> string -> unit

val exists : t -> string -> bool

(** @raise Sys_error when the file does not exist. *)
val file_size : t -> string -> int

(** [read t name ~pos ~len ~hint] reads a range, charging device cost per
    the read [hint].
    @raise Invalid_argument on an out-of-bounds range.
    @raise Sys_error when the file does not exist. *)
val read : t -> string -> pos:int -> len:int -> hint:Device.read_hint -> string

(** [peek t name ~pos ~len] reads a range without charging device time or
    IO stats — the sendfile-style path replication uses to put freshly
    written (page-cache-resident) bytes on the wire; the {!Network} link
    charges the transfer instead.
    @raise Invalid_argument on an out-of-bounds range.
    @raise Sys_error when the file does not exist. *)
val peek : t -> string -> pos:int -> len:int -> string

(** [io_event t label] registers an external IO event (e.g. one
    replication shipping step) with any installed {!Fault_plan}, so crash
    sweeps can fire between and inside shipping steps. *)
val io_event : t -> string -> unit

val read_all : t -> string -> hint:Device.read_hint -> string
val delete : t -> string -> unit

(** [rename t ~src ~dst] atomically renames a file; the rename implies a
    flush of the file's current contents (ext4 replace-via-rename), so
    both the name and the data are durable afterwards. *)
val rename : t -> src:string -> dst:string -> unit

(** All live file names (unordered). *)
val list : t -> string list

(** Total bytes stored across all files — the space-amplification
    numerator (Figure 5.3). *)
val total_file_bytes : t -> int

(** [crash t] simulates a power failure: every file loses its unsynced
    suffix; files that never reached a sync disappear.  Under an installed
    {!Fault_plan}, the torn-write model applies instead (block-granular
    partial persistence, garbled tails, never-synced files that may leave
    a partial directory entry).  The plan is consumed. *)
val crash : t -> unit
