lib/sstable/table_cache.ml: Pdb_simio Pdb_util Table
