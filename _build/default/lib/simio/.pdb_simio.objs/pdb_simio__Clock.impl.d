lib/simio/clock.ml: Float Fun
