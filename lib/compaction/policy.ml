(** Compaction policy as a first-class value.

    Sarkar et al. decompose compaction into four orthogonal primitives:
    the *trigger* (when to compact), the *data layout* (how a level holds
    its runs), the *victim granularity* (what a compaction consumes), and
    the *output placement* (whether outputs merge with the target level
    or stack beside it).  A [Policy.t] packages one choice per primitive;
    the engines ([Lsm_store], [Pebbles_store]) consult it instead of
    inlining a fixed design, while [Job]/[Scheduler] stay the execution
    substrate underneath every policy.

    Four named policies cover the classic design space:

    - [leveled] — disjoint sorted files per level, partial victims picked
      round-robin, outputs merged into the target level (LevelDB).
    - [tiered] — each level holds multiple overlapping sorted runs; a
      trigger merges the whole level into a single new run appended to
      the next level (no merge with the target's resident runs).
    - [lazy_leveled] — tiered at every level except the last, which stays
      leveled (Dostoevsky's lazy leveling): write-amp of tiering in the
      small levels, space/scan behaviour of leveling where the data is.
    - [flsm_guarded] — PebblesDB's FLSM: guard-partitioned levels whose
      fragments never rewrite the target; victims are whole guards. *)

module O = Pdb_kvs.Options

(** How a level (>= 1; L0 is always a tier of overlapping memtable
    flushes) stores its runs. *)
type layout =
  | Leveled_run  (** one sorted run: files disjoint, sorted by smallest *)
  | Tiered_runs  (** several overlapping runs: files kept newest-first *)

(** Snapshot of one level, fed to [score] to decide triggering. *)
type level_state = {
  level : int;
  last_level : int;
  files : int;  (** resident files (tiered: = runs; L0: flush count) *)
  bytes : int;
  max_bytes : int;  (** size budget of this level *)
  file_trigger : int;  (** file/run count that warrants a merge *)
}

(** Snapshot of one FLSM guard, fed to [guard_score]. *)
type guard_state = {
  g_tables : int;  (** sstables resident in the guard *)
  g_cap : int;  (** [max_sstables_per_guard] *)
}

(** What a triggered compaction consumes at the source level. *)
type victims =
  | All_files  (** the whole level, merged wholesale (tiering) *)
  | Oldest_overlap_closure  (** oldest file + transitive overlap (L0) *)
  | Round_robin  (** next files past the compaction pointer (leveling) *)
  | Guard_pick  (** the engine's guard selection (FLSM) *)

type t = {
  policy : O.compaction_policy;
  name : string;
  layout : level:int -> last_level:int -> layout;
  score : level_state -> float;
  victims : level_state -> victims;
  output_merges_target : target:int -> last_level:int -> bool;
      (** [true]: outputs replace the overlapping target files (a merge
          rewrite); [false]: outputs stack beside the target's resident
          runs/fragments with no rewrite. *)
  guard_score : guard_state -> float;
}

(* ------------------------------------------------------------------ *)
(* Trigger threshold                                                   *)
(* ------------------------------------------------------------------ *)

(** The single compaction-score threshold (was hard-coded as [> 0.999]
    at every trigger site).  Scores are ratios of occupancy to budget; a
    level whose score exceeds this is due for compaction. *)
let score_threshold = 0.999

let should_trigger score = score > score_threshold

(* ------------------------------------------------------------------ *)
(* Score components                                                    *)
(* ------------------------------------------------------------------ *)

let l0_score s = float_of_int s.files /. float_of_int (max 1 s.file_trigger)

let size_score s =
  if s.level >= s.last_level then 0.0
  else float_of_int s.bytes /. float_of_int (max 1 s.max_bytes)

let run_count_score s =
  if s.level >= s.last_level then 0.0
  else float_of_int s.files /. float_of_int (max 1 s.file_trigger)

(* ------------------------------------------------------------------ *)
(* Named policies                                                      *)
(* ------------------------------------------------------------------ *)

let leveled =
  {
    policy = O.Leveled;
    name = "leveled";
    layout = (fun ~level:_ ~last_level:_ -> Leveled_run);
    score = (fun s -> if s.level = 0 then l0_score s else size_score s);
    victims =
      (fun s -> if s.level = 0 then Oldest_overlap_closure else Round_robin);
    output_merges_target = (fun ~target:_ ~last_level:_ -> true);
    guard_score = (fun _ -> 0.0);
  }

(* Tiering triggers on run count alone (Dostoevsky's T): run sizes are
   bounded geometrically by construction — a level's merged output is at
   most T of its runs — so a byte budget would only cascade small runs
   down early and inflate write-amp. *)
let tiered =
  {
    policy = O.Tiered;
    name = "tiered";
    layout = (fun ~level:_ ~last_level:_ -> Tiered_runs);
    score =
      (fun s -> if s.level = 0 then l0_score s else run_count_score s);
    victims = (fun _ -> All_files);
    output_merges_target = (fun ~target:_ ~last_level:_ -> false);
    guard_score = (fun _ -> 0.0);
  }

let lazy_leveled =
  {
    policy = O.Lazy_leveled;
    name = "lazy_leveled";
    layout =
      (fun ~level ~last_level ->
        if level >= last_level then Leveled_run else Tiered_runs);
    score =
      (fun s -> if s.level = 0 then l0_score s else run_count_score s);
    victims = (fun _ -> All_files);
    output_merges_target = (fun ~target ~last_level -> target >= last_level);
    guard_score = (fun _ -> 0.0);
  }

let flsm_guarded =
  {
    policy = O.Flsm_guarded;
    name = "flsm_guarded";
    (* guards overlap within a level, so every FLSM level is a tier of
       fragments from the engine's point of view *)
    layout = (fun ~level:_ ~last_level:_ -> Tiered_runs);
    score = (fun s -> if s.level = 0 then l0_score s else size_score s);
    victims = (fun _ -> Guard_pick);
    output_merges_target = (fun ~target:_ ~last_level:_ -> false);
    guard_score =
      (fun g -> float_of_int g.g_tables /. float_of_int (max 1 g.g_cap));
  }

let of_policy = function
  | O.Leveled -> leveled
  | O.Tiered -> tiered
  | O.Lazy_leveled -> lazy_leveled
  | O.Flsm_guarded -> flsm_guarded

let of_options (o : O.t) = of_policy o.O.compaction_policy
