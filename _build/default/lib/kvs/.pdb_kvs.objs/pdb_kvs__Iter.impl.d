lib/kvs/iter.ml: Array List String
