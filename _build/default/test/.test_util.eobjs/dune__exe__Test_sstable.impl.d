test/test_sstable.ml: Alcotest Block Block_cache Level_iter List Map Pdb_kvs Pdb_simio Pdb_sstable Printf QCheck QCheck_alcotest String Table Table_cache
