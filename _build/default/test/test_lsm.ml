(* Tests for the baseline LSM engine. *)

module L = Pdb_lsm.Lsm_store
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter

let check = Alcotest.check

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Small store parameters so tests exercise flush + multi-level compaction
   with little data. *)
let tiny_opts () =
  {
    (O.hyperleveldb ()) with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
  }

let open_tiny ?(opts = tiny_opts ()) env = L.open_store opts ~env ~dir:"db"

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

let test_put_get () =
  let env = Env.create () in
  let db = open_tiny env in
  L.put db "a" "1";
  L.put db "b" "2";
  check Alcotest.(option string) "get a" (Some "1") (L.get db "a");
  check Alcotest.(option string) "get b" (Some "2") (L.get db "b");
  check Alcotest.(option string) "missing" None (L.get db "zz")

let test_overwrite () =
  let env = Env.create () in
  let db = open_tiny env in
  L.put db "k" "old";
  L.put db "k" "new";
  check Alcotest.(option string) "latest" (Some "new") (L.get db "k")

let test_delete () =
  let env = Env.create () in
  let db = open_tiny env in
  L.put db "k" "v";
  L.delete db "k";
  check Alcotest.(option string) "deleted" None (L.get db "k")

let test_get_after_flush () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 199 do
    L.put db (key i) (value i)
  done;
  (* 200 * ~60B >> 2KB memtable: several flushes happened *)
  Alcotest.(check bool) "flushed" true
    ((L.stats db).Pdb_kvs.Engine_stats.flushes > 0);
  for i = 0 to 199 do
    check Alcotest.(option string) ("get " ^ key i) (Some (value i))
      (L.get db (key i))
  done;
  L.check_invariants db

let test_compaction_triggers_and_preserves_data () =
  let env = Env.create () in
  let db = open_tiny env in
  let n = 2000 in
  for i = 0 to n - 1 do
    L.put db (key (i * 7919 mod n)) (value i)
  done;
  Alcotest.(check bool) "compacted" true
    ((L.stats db).Pdb_kvs.Engine_stats.compactions > 0);
  L.check_invariants db;
  (* every key readable with its latest value *)
  let latest = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    Hashtbl.replace latest (key (i * 7919 mod n)) (value i)
  done;
  Hashtbl.iter
    (fun k v -> check Alcotest.(option string) ("get " ^ k) (Some v) (L.get db k))
    latest

let test_overwrites_reclaimed_by_compaction () =
  let env = Env.create () in
  let db = open_tiny env in
  for round = 0 to 9 do
    for i = 0 to 99 do
      L.put db (key i) (value (round * 1000 + i))
    done
  done;
  L.compact_all db;
  (* after full compaction only one version of each key persists *)
  let metas = L.sstable_metas db in
  let entries =
    List.fold_left
      (fun acc (m : Pdb_sstable.Table.meta) -> acc + m.Pdb_sstable.Table.entries)
      0 metas
  in
  check Alcotest.int "one entry per live key" 100 entries

let test_tombstones_dropped_at_bottom () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 99 do
    L.put db (key i) (value i)
  done;
  for i = 0 to 99 do
    L.delete db (key i)
  done;
  L.compact_all db;
  let metas = L.sstable_metas db in
  let entries =
    List.fold_left
      (fun acc (m : Pdb_sstable.Table.meta) -> acc + m.Pdb_sstable.Table.entries)
      0 metas
  in
  check Alcotest.int "all entries reclaimed" 0 entries

let test_compact_all_pushes_down () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 499 do
    L.put db (key i) (value i)
  done;
  L.compact_all db;
  let counts = L.level_file_counts db in
  (* everything must sit in exactly one (the deepest populated) level *)
  let populated =
    Array.to_list counts |> List.filteri (fun i _ -> i >= 0)
    |> List.filter (fun c -> c > 0)
  in
  check Alcotest.int "one populated level" 1 (List.length populated);
  check Alcotest.int "L0 empty" 0 counts.(0);
  for i = 0 to 499 do
    check Alcotest.(option string) "data intact" (Some (value i))
      (L.get db (key i))
  done

let test_iterator_full_order () =
  let env = Env.create () in
  let db = open_tiny env in
  let n = 300 in
  let perm = Array.init n Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 3) perm;
  Array.iter (fun i -> L.put db (key i) (value i)) perm;
  let it = L.iterator db in
  let got = Iter.to_list it in
  check Alcotest.int "count" n (List.length got);
  let expected = List.init n (fun i -> (key i, value i)) in
  check Alcotest.(list (pair string string)) "sorted scan" expected got

let test_iterator_seek_and_range () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 299 do
    L.put db (key (2 * i)) (value i)
  done;
  let it = L.iterator db in
  it.Iter.seek (key 101);
  check Alcotest.string "seek to even successor" (key 102) (it.Iter.key ());
  (* range query: 10 keys from key 100 *)
  it.Iter.seek (key 100);
  let collected = ref [] in
  for _ = 1 to 10 do
    collected := it.Iter.key () :: !collected;
    it.Iter.next ()
  done;
  check Alcotest.int "range size" 10 (List.length !collected);
  check Alcotest.string "range start" (key 100)
    (List.hd (List.rev !collected))

let test_iterator_hides_deletions () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 99 do
    L.put db (key i) (value i)
  done;
  for i = 0 to 99 do
    if i mod 2 = 0 then L.delete db (key i)
  done;
  let got = Iter.to_list (L.iterator db) in
  check Alcotest.int "half survive" 50 (List.length got);
  List.iter
    (fun (k, _) ->
      let i = int_of_string (String.sub k 3 6) in
      Alcotest.(check bool) "odd keys only" true (i mod 2 = 1))
    got

let test_write_batch_atomic_visibility () =
  let env = Env.create () in
  let db = open_tiny env in
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put b "x" "1";
  Pdb_kvs.Write_batch.put b "y" "2";
  Pdb_kvs.Write_batch.delete b "x";
  L.write db b;
  check Alcotest.(option string) "x deleted by later op in batch" None
    (L.get db "x");
  check Alcotest.(option string) "y" (Some "2") (L.get db "y")

let test_reopen_recovers_sstables_and_wal () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 299 do
    L.put db (key i) (value i)
  done;
  (* some data flushed to sstables, the tail still in WAL/memtable *)
  L.close db;
  let db2 = open_tiny env in
  for i = 0 to 299 do
    check Alcotest.(option string) ("recovered " ^ key i) (Some (value i))
      (L.get db2 (key i))
  done;
  L.check_invariants db2

let test_crash_preserves_synced_data () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 199 do
    L.put db (key i) (value i)
  done;
  L.flush db (* everything flushed to (synced) sstables *);
  for i = 200 to 249 do
    L.put db (key i) (value i)
  done;
  Env.crash env (* unsynced WAL tail is lost *);
  let db2 = open_tiny env in
  for i = 0 to 199 do
    check Alcotest.(option string) ("survives " ^ key i) (Some (value i))
      (L.get db2 (key i))
  done;
  L.check_invariants db2

let test_wal_sync_makes_writes_durable () =
  let env = Env.create () in
  let opts = { (tiny_opts ()) with O.wal_sync_writes = true } in
  let db = open_tiny ~opts env in
  for i = 0 to 49 do
    L.put db (key i) (value i)
  done;
  Env.crash env;
  let db2 = open_tiny ~opts env in
  for i = 0 to 49 do
    check Alcotest.(option string) ("durable " ^ key i) (Some (value i))
      (L.get db2 (key i))
  done

let test_sequential_fill_uses_trivial_moves () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 1999 do
    L.put db (key i) (value i)
  done;
  L.flush db;
  (* sequential fill produces disjoint tables; trivial moves mean
     compaction writes far less than the random-order equivalent *)
  let seq_written =
    (L.stats db).Pdb_kvs.Engine_stats.compaction_bytes_written
  in
  let env_r = Env.create () in
  let db_r = open_tiny env_r in
  let perm = Array.init 2000 Fun.id in
  Pdb_util.Rng.shuffle (Pdb_util.Rng.create 5) perm;
  Array.iter (fun i -> L.put db_r (key i) (value i)) perm;
  L.flush db_r;
  let rnd_written =
    (L.stats db_r).Pdb_kvs.Engine_stats.compaction_bytes_written
  in
  Alcotest.(check bool)
    (Printf.sprintf "seq %d < rnd %d" seq_written rnd_written)
    true
    (seq_written < rnd_written)

let test_write_amp_accounting () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 999 do
    L.put db (key i) (value (i * 31))
  done;
  L.flush db;
  let user = (L.stats db).Pdb_kvs.Engine_stats.user_bytes_written in
  let device = (Env.stats env).Pdb_simio.Io_stats.bytes_written in
  Alcotest.(check bool) "write amp > 1" true (device > user);
  Alcotest.(check bool) "write amp sane (< 100)" true (device < 100 * user)

let test_memory_and_describe () =
  let env = Env.create () in
  let db = open_tiny env in
  for i = 0 to 199 do
    L.put db (key i) (value i)
  done;
  Alcotest.(check bool) "memory positive" true (L.memory_bytes db > 0);
  let d = L.describe db in
  Alcotest.(check bool) "describe mentions levels" true
    (String.length d > 0)

let prop_model_random_ops =
  (* The store must agree with a Hashtbl model under random interleaved
     puts/deletes/gets across flush and compaction. *)
  qtest "store = model under random ops" ~count:15
    QCheck.(list (pair (int_bound 200) (option (int_bound 1000))))
    (fun ops ->
      let env = Env.create () in
      let db = open_tiny env in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let ks = key k in
          match v with
          | Some v ->
            L.put db ks (value v);
            Hashtbl.replace model ks (value v)
          | None ->
            L.delete db ks;
            Hashtbl.remove model ks)
        ops;
      L.check_invariants db;
      Hashtbl.fold
        (fun k v acc -> acc && L.get db k = Some v)
        model true
      && List.for_all
           (fun (k, _) ->
             let ks = key k in
             L.get db ks = Hashtbl.find_opt model ks)
           ops)

let prop_iterator_matches_model =
  qtest "iterator = sorted model" ~count:10
    QCheck.(list (pair (int_bound 300) (int_bound 1000)))
    (fun ops ->
      let env = Env.create () in
      let db = open_tiny env in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          L.put db (key k) (value v);
          Hashtbl.replace model (key k) (value v))
        ops;
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Iter.to_list (L.iterator db) = expected)

let prop_recovery_equals_pre_close =
  qtest "reopen preserves every write" ~count:10
    QCheck.(list (pair (int_bound 150) (int_bound 1000)))
    (fun ops ->
      let env = Env.create () in
      let db = open_tiny env in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          L.put db (key k) (value v);
          Hashtbl.replace model (key k) (value v))
        ops;
      L.close db;
      let db2 = open_tiny env in
      Hashtbl.fold (fun k v acc -> acc && L.get db2 k = Some v) model true)

let () =
  Alcotest.run "lsm"
    [
      ( "basic",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "batch atomicity" `Quick
            test_write_batch_atomic_visibility;
        ] );
      ( "flush-compaction",
        [
          Alcotest.test_case "get after flush" `Quick test_get_after_flush;
          Alcotest.test_case "compaction preserves data" `Quick
            test_compaction_triggers_and_preserves_data;
          Alcotest.test_case "overwrites reclaimed" `Quick
            test_overwrites_reclaimed_by_compaction;
          Alcotest.test_case "tombstones dropped" `Quick
            test_tombstones_dropped_at_bottom;
          Alcotest.test_case "compact_all pushes down" `Quick
            test_compact_all_pushes_down;
          Alcotest.test_case "sequential trivial moves" `Quick
            test_sequential_fill_uses_trivial_moves;
          Alcotest.test_case "write amp accounting" `Quick
            test_write_amp_accounting;
        ] );
      ( "iterator",
        [
          Alcotest.test_case "full order" `Quick test_iterator_full_order;
          Alcotest.test_case "seek and range" `Quick
            test_iterator_seek_and_range;
          Alcotest.test_case "hides deletions" `Quick
            test_iterator_hides_deletions;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reopen" `Quick
            test_reopen_recovers_sstables_and_wal;
          Alcotest.test_case "crash preserves synced" `Quick
            test_crash_preserves_synced_data;
          Alcotest.test_case "wal sync durable" `Quick
            test_wal_sync_makes_writes_durable;
        ] );
      ( "misc",
        [
          Alcotest.test_case "memory/describe" `Quick test_memory_and_describe;
        ] );
      ( "properties",
        [
          prop_model_random_ops;
          prop_iterator_matches_model;
          prop_recovery_equals_pre_close;
        ] );
    ]
