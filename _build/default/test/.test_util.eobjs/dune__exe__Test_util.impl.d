test/test_util.ml: Alcotest Array Buffer Bytes Char Crc32c Dist Fun Histogram Int64 List Lru Murmur3 Pdb_util Printf QCheck QCheck_alcotest Rng String Varint
