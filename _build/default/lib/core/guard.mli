(** Guards: the organising structure of the Fragmented LSM (§3.1).

    A guard [G_i] with key [K_i] owns every sstable whose keys fall in
    [K_i, K_{i+1}).  Guards within a level never overlap, but the sstables
    {e inside} a guard may — that is the relaxation of the classical LSM
    invariant that lets FLSM append compaction output instead of rewriting
    it.  Each level's guard array starts with the sentinel guard (key "")
    that owns keys smaller than the first real guard.

    Structural invariants maintained here and checked by
    [Pebbles_store.check_invariants]:
    - [guards.(0)] is the sentinel; keys strictly ascend across the array;
    - every table attached to a guard lies entirely inside the guard's
      range (no straddlers — enforced at compaction/commit time);
    - tables are listed newest-first, so a get() can stop at the first
      bloom-confirmed hit. *)

type guard = {
  gkey : string;  (** user key; [""] for the sentinel *)
  mutable tables : Pdb_sstable.Table.meta list;  (** newest first *)
}

type level = { mutable guards : guard array }

(** [sentinel ()] is a fresh sentinel guard (key "", no tables). *)
val sentinel : unit -> guard

(** [create_level ()] is a level holding only the sentinel. *)
val create_level : unit -> level

(** [guard_index level key] is the index of the guard owning user [key]:
    the last guard whose key is <= [key] (always >= 0 thanks to the
    sentinel). *)
val guard_index : level -> string -> int

(** [guard_range level i] is the key range [lo, hi) of guard [i]; [hi] is
    [None] for the last guard. *)
val guard_range : level -> int -> string * string option

(** [table_fits level i m] tests whether [m]'s user-key range lies entirely
    inside guard [i]. *)
val table_fits : level -> int -> Pdb_sstable.Table.meta -> bool

(** [straddles key m] is true when [m]'s range contains keys both < [key]
    and >= [key] — such a table must be dissolved by a merge before [key]
    can become a guard of its level. *)
val straddles : string -> Pdb_sstable.Table.meta -> bool

(** [attach level m] prepends table [m] to its guard (newest first).
    Asserts the no-straddler invariant. *)
val attach : level -> Pdb_sstable.Table.meta -> unit

(** [detach level numbers] removes the tables whose file numbers are in
    [numbers] from every guard. *)
val detach : level -> int list -> unit

(** [commit_guards level keys] splices new guard [keys] into the level,
    redistributing each affected guard's tables (which must each fit wholly
    on one side of every new key — commit straddle-free guards only).
    @raise Failure on a straddling table. *)
val commit_guards : level -> string list -> unit

(** [delete_guard level key] removes guard [key], folding its tables into
    the preceding guard (asynchronous guard deletion, §3.3). *)
val delete_guard : level -> string -> unit

(** All tables of the level, guard by guard. *)
val all_tables : level -> Pdb_sstable.Table.meta list

val table_count : level -> int

(** Total sstable bytes resident in the level. *)
val bytes : level -> int

(** Number of guards excluding the sentinel. *)
val guard_count : level -> int

(** Committed guards currently holding no sstables (§3.3: empty guards are
    possible and harmless). *)
val empty_guard_count : level -> int

(** Modeled in-memory footprint of the guard metadata (Table 5.4). *)
val metadata_bytes : level -> int
