(** Simulated time, split into foreground and background lanes.

    Engines run single-threaded in this reproduction, but real LSM stores
    overlap foreground writes with background flush/compaction threads.  We
    model that by charging each IO to the lane active at the time: user
    operations charge the foreground lane; flush and compaction work runs
    inside {!with_background} and charges the background lane.

    The reported elapsed time for a workload is
    [max(foreground, background / compaction_threads) + stalls]: a store is
    write-bound either by its own foreground IO or by compaction drain rate,
    whichever is slower — which is exactly the paper's explanation of why
    lower write amplification translates into higher write throughput. *)

type lane = Foreground | Background

type t = {
  mutable foreground_ns : float;
  mutable background_ns : float;
  mutable stall_ns : float;
  mutable cpu_ns : float; (* modeled CPU work, charged to foreground lane *)
  mutable lane : lane;
}

let create () =
  {
    foreground_ns = 0.0;
    background_ns = 0.0;
    stall_ns = 0.0;
    cpu_ns = 0.0;
    lane = Foreground;
  }

let reset t =
  t.foreground_ns <- 0.0;
  t.background_ns <- 0.0;
  t.stall_ns <- 0.0;
  t.cpu_ns <- 0.0;
  t.lane <- Foreground

(** [advance t ns] charges [ns] of device time to the current lane. *)
let advance t ns =
  match t.lane with
  | Foreground -> t.foreground_ns <- t.foreground_ns +. ns
  | Background -> t.background_ns <- t.background_ns +. ns

(** [advance_cpu t ns] charges modeled CPU work (always foreground). *)
let advance_cpu t ns = t.cpu_ns <- t.cpu_ns +. ns

(** [stall t ns] records write-stall time (level-0 slowdown/stop). *)
let stall t ns = t.stall_ns <- t.stall_ns +. ns

(** [lane_time t] is the accumulated device time of the current lane — used
    to measure the cost of a bracketed operation. *)
let lane_time t =
  match t.lane with
  | Foreground -> t.foreground_ns
  | Background -> t.background_ns

(** [refund t ns] gives back device time on the current lane.  PebblesDB's
    parallel seeks overlap the sstable reads of a guard (§4.2): the engine
    measures each table's positioning cost and refunds everything beyond
    the slowest one. *)
let refund t ns =
  match t.lane with
  | Foreground -> t.foreground_ns <- Float.max 0.0 (t.foreground_ns -. ns)
  | Background -> t.background_ns <- Float.max 0.0 (t.background_ns -. ns)

(** [with_background t f] runs [f ()] charging device time to the
    background lane (flush and compaction). *)
let with_background t f =
  let saved = t.lane in
  t.lane <- Background;
  Fun.protect ~finally:(fun () -> t.lane <- saved) f

type snapshot = {
  foreground_ns : float;
  background_ns : float;
  stall_ns : float;
  cpu_ns : float;
}

let snapshot (t : t) : snapshot =
  {
    foreground_ns = t.foreground_ns;
    background_ns = t.background_ns;
    stall_ns = t.stall_ns;
    cpu_ns = t.cpu_ns;
  }

let diff (a : snapshot) (b : snapshot) =
  {
    foreground_ns = a.foreground_ns -. b.foreground_ns;
    background_ns = a.background_ns -. b.background_ns;
    stall_ns = a.stall_ns -. b.stall_ns;
    cpu_ns = a.cpu_ns -. b.cpu_ns;
  }

(** [elapsed_ns snap ~threads] is the modeled wall-clock of a phase given
    [threads] background compaction threads.

    The device is a single shared resource: foreground IO and (thread-
    parallelised) background compaction IO serialise on it, while modeled
    CPU work overlaps with IO.  A store is therefore bound either by its
    CPU path or by total device traffic — which is how lower write
    amplification becomes higher write throughput, and how compaction-free
    fast paths (LSM trivial moves) win on sequential fills. *)
let elapsed_ns (s : snapshot) ~threads =
  let bg = s.background_ns /. float_of_int (max 1 threads) in
  Float.max s.cpu_ns (s.foreground_ns +. bg) +. s.stall_ns
