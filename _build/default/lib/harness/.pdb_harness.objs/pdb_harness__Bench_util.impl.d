lib/harness/bench_util.ml: Array Fun List Pdb_kvs Pdb_simio Pdb_util Printf String
