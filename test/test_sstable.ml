(* Tests for blocks, tables, caches and level iterators. *)

open Pdb_sstable
module Ik = Pdb_kvs.Internal_key
module Iter = Pdb_kvs.Iter

let check = Alcotest.check

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------- Block ---------- *)

let build_block entries =
  let b = Block.Builder.create () in
  List.iter (fun (k, v) -> Block.Builder.add b k v) entries;
  Block.decode (Block.Builder.finish b)

let test_block_roundtrip () =
  let entries =
    List.init 50 (fun i -> (Printf.sprintf "key%04d" i, Printf.sprintf "v%d" i))
  in
  let blk = build_block entries in
  check
    Alcotest.(list (pair string string))
    "all entries" entries
    (Block.entries ~compare:String.compare blk)

let test_block_prefix_compression_effective () =
  (* long shared prefixes should compress well *)
  let entries =
    List.init 100 (fun i ->
        (Printf.sprintf "commonprefix/long/shared/%04d" i, "v"))
  in
  let b = Block.Builder.create () in
  List.iter (fun (k, v) -> Block.Builder.add b k v) entries;
  let raw = Block.Builder.finish b in
  let uncompressed =
    List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v)
      0 entries
  in
  Alcotest.(check bool) "smaller than raw concat" true
    (String.length raw < uncompressed)

let test_block_seek () =
  let entries = List.init 60 (fun i -> (Printf.sprintf "k%04d" (i * 2), "v")) in
  let blk = build_block entries in
  let it = Block.iterator ~compare:String.compare blk in
  it.Iter.seek "k0007";
  check Alcotest.string "seek between keys" "k0008" (it.Iter.key ());
  it.Iter.seek "k0000";
  check Alcotest.string "seek first" "k0000" (it.Iter.key ());
  it.Iter.seek "k0118";
  check Alcotest.string "seek last" "k0118" (it.Iter.key ());
  it.Iter.seek "k9999";
  Alcotest.(check bool) "seek past end invalid" false (it.Iter.valid ())

let test_block_seek_across_restarts () =
  (* more entries than one restart interval, targeted seeks everywhere *)
  let entries = List.init 100 (fun i -> (Printf.sprintf "k%04d" i, string_of_int i)) in
  let blk = build_block entries in
  let it = Block.iterator ~compare:String.compare blk in
  List.iter
    (fun i ->
      it.Iter.seek (Printf.sprintf "k%04d" i);
      check Alcotest.string "exact seek" (Printf.sprintf "k%04d" i)
        (it.Iter.key ()))
    [ 0; 1; 15; 16; 17; 31; 32; 33; 50; 98; 99 ]

let test_block_single_entry () =
  let blk = build_block [ ("only", "v") ] in
  let it = Block.iterator ~compare:String.compare blk in
  it.Iter.seek_to_first ();
  check Alcotest.string "single" "only" (it.Iter.key ());
  it.Iter.next ();
  Alcotest.(check bool) "exhausted" false (it.Iter.valid ())

let prop_block_roundtrip =
  qtest "block roundtrip (random sorted keys)"
    QCheck.(list (pair (string_of_size (QCheck.Gen.return 8)) small_int))
    (fun pairs ->
      let module M = Map.Make (String) in
      let m =
        List.fold_left (fun m (k, v) -> M.add k (string_of_int v) m) M.empty
          pairs
      in
      let entries = M.bindings m in
      match entries with
      | [] -> true
      | _ ->
        let blk = build_block entries in
        Block.entries ~compare:String.compare blk = entries)

(* ---------- Table ---------- *)

let ikey k seq = Ik.encode ~user_key:k ~seq ~kind:Ik.Value

let build_table ?(bloom = true) env ~dir ~number entries =
  let b =
    Table.Builder.create env ~dir ~number ~block_bytes:512 ~bloom
      ~expected_keys:(List.length entries)
  in
  List.iter (fun (ik, v) -> Table.Builder.add b ik v) entries;
  match Table.Builder.finish b with
  | Some meta -> meta
  | None -> Alcotest.fail "table should not be empty"

let sorted_entries n =
  List.init n (fun i -> (ikey (Printf.sprintf "key%05d" i) (i + 1),
                         Printf.sprintf "value-%05d" i))

let test_table_build_and_get () =
  let env = Pdb_simio.Env.create () in
  let meta = build_table env ~dir:"db" ~number:1 (sorted_entries 200) in
  check Alcotest.int "entries" 200 meta.Table.entries;
  let reader = Table.open_reader env ~dir:"db" meta in
  let cache = Block_cache.create ~capacity:(1 lsl 20) in
  (* point lookups *)
  List.iter
    (fun i ->
      let target = Ik.max_for_lookup (Printf.sprintf "key%05d" i) in
      match Table.get reader ~cache ~hint:Pdb_simio.Device.Random_read target with
      | Some (ik, v) ->
        check Alcotest.string "found key" (Printf.sprintf "key%05d" i)
          (Ik.user_key ik);
        check Alcotest.string "found value" (Printf.sprintf "value-%05d" i) v
      | None -> Alcotest.fail "expected hit")
    [ 0; 1; 57; 100; 199 ]

let test_table_get_absent_lands_on_successor () =
  let env = Pdb_simio.Env.create () in
  let meta = build_table env ~dir:"db" ~number:1 (sorted_entries 50) in
  let reader = Table.open_reader env ~dir:"db" meta in
  let cache = Block_cache.create ~capacity:(1 lsl 20) in
  let target = Ik.max_for_lookup "key00010zzz" in
  (match Table.get reader ~cache ~hint:Pdb_simio.Device.Random_read target with
   | Some (ik, _) ->
     check Alcotest.string "successor" "key00011" (Ik.user_key ik)
   | None -> Alcotest.fail "expected successor");
  let past = Ik.max_for_lookup "zzzz" in
  Alcotest.(check bool) "past end" true
    (Table.get reader ~cache ~hint:Pdb_simio.Device.Random_read past = None)

let test_table_iterator_full_scan () =
  let env = Pdb_simio.Env.create () in
  let entries = sorted_entries 300 in
  let meta = build_table env ~dir:"db" ~number:2 entries in
  let reader = Table.open_reader env ~dir:"db" meta in
  let cache = Block_cache.create ~capacity:(1 lsl 20) in
  let it = Table.iterator reader ~cache ~hint:Pdb_simio.Device.Sequential_read in
  check
    Alcotest.(list (pair string string))
    "scan equals input" entries (Iter.to_list it)

let test_table_iterator_seek () =
  let env = Pdb_simio.Env.create () in
  let meta = build_table env ~dir:"db" ~number:3 (sorted_entries 300) in
  let reader = Table.open_reader env ~dir:"db" meta in
  let cache = Block_cache.create ~capacity:(1 lsl 20) in
  let it = Table.iterator reader ~cache ~hint:Pdb_simio.Device.Random_read in
  it.Iter.seek (Ik.max_for_lookup "key00150");
  check Alcotest.string "seek mid" "key00150" (Ik.user_key (it.Iter.key ()));
  it.Iter.next ();
  check Alcotest.string "next" "key00151" (Ik.user_key (it.Iter.key ()))

let test_table_bloom_filters_absent () =
  let env = Pdb_simio.Env.create () in
  let meta = build_table env ~dir:"db" ~number:4 (sorted_entries 100) in
  let reader = Table.open_reader env ~dir:"db" meta in
  Alcotest.(check bool) "present key passes" true
    (Table.may_contain reader "key00050");
  let misses = ref 0 in
  for i = 0 to 99 do
    if not (Table.may_contain reader (Printf.sprintf "other%05d" i)) then
      incr misses
  done;
  Alcotest.(check bool) "bloom rejects most absents" true (!misses > 90)

let test_table_no_bloom () =
  let env = Pdb_simio.Env.create () in
  let meta = build_table ~bloom:false env ~dir:"db" ~number:5 (sorted_entries 10) in
  let reader = Table.open_reader env ~dir:"db" meta in
  Alcotest.(check bool) "no filter" false (Table.has_filter reader);
  Alcotest.(check bool) "may_contain defaults true" true
    (Table.may_contain reader "whatever")

let test_table_empty_builder () =
  let env = Pdb_simio.Env.create () in
  let b =
    Table.Builder.create env ~dir:"db" ~number:6 ~block_bytes:512 ~bloom:true
      ~expected_keys:0
  in
  Alcotest.(check bool) "empty finish yields None" true
    (Table.Builder.finish b = None);
  Alcotest.(check bool) "file deleted" false
    (Pdb_simio.Env.exists env (Table.file_name ~dir:"db" 6))

let test_block_cache_hit_avoids_io () =
  let env = Pdb_simio.Env.create () in
  let meta = build_table env ~dir:"db" ~number:7 (sorted_entries 100) in
  let reader = Table.open_reader env ~dir:"db" meta in
  let cache = Block_cache.create ~capacity:(1 lsl 20) in
  let target = Ik.max_for_lookup "key00050" in
  ignore (Table.get reader ~cache ~hint:Pdb_simio.Device.Random_read target);
  let reads_before = (Pdb_simio.Env.stats env).Pdb_simio.Io_stats.read_ops in
  ignore (Table.get reader ~cache ~hint:Pdb_simio.Device.Random_read target);
  let reads_after = (Pdb_simio.Env.stats env).Pdb_simio.Io_stats.read_ops in
  check Alcotest.int "second get reads nothing" reads_before reads_after

let test_table_cache_eviction_reopens () =
  let env = Pdb_simio.Env.create () in
  let m1 = build_table env ~dir:"db" ~number:10 (sorted_entries 20) in
  let m2 = build_table env ~dir:"db" ~number:11 (sorted_entries 20) in
  let tc = Table_cache.create env ~dir:"db" ~entries:1 in
  ignore (Table_cache.find tc m1);
  ignore (Table_cache.find tc m2);
  (* m1 evicted; finding it again must re-read footer+index (device IO) *)
  let reads_before = (Pdb_simio.Env.stats env).Pdb_simio.Io_stats.read_ops in
  ignore (Table_cache.find tc m1);
  let reads_after = (Pdb_simio.Env.stats env).Pdb_simio.Io_stats.read_ops in
  Alcotest.(check bool) "reopen costs reads" true (reads_after > reads_before);
  check Alcotest.int "cache holds 1" 1 (Table_cache.open_tables tc)

(* Regression: in a byte-bounded cache, a summary-guided reopen defers
   its filter block; when a probe later materialises it, the reader's
   resident footprint changes but its insert-time LRU weight used to stay
   stale — the accounted byte budget silently diverged from what the
   cache actually held. *)
let test_table_cache_reweigh_on_filter_load () =
  let env = Pdb_simio.Env.create () in
  let m1 = build_table env ~dir:"db" ~number:12 (sorted_entries 200) in
  let m2 = build_table env ~dir:"db" ~number:13 (sorted_entries 200) in
  (* size the byte budget to hold exactly one of these tables *)
  let one = Table.resident_bytes (Table.open_reader env ~dir:"db" m1) in
  let tc =
    Table_cache.create ~bytes:(one + (one / 2)) ~summary_stride:4 env
      ~dir:"db" ~entries:1000
  in
  let check_accounting msg =
    let actual =
      Pdb_util.Lru.fold tc.Table_cache.cache
        (fun acc _ r -> acc + Table.resident_bytes r)
        0
    in
    check Alcotest.int msg actual (Table_cache.accounted_bytes tc)
  in
  ignore (Table_cache.find tc m1);
  check_accounting "accounted = actual after eager open";
  ignore (Table_cache.find tc m2);
  (* m1 evicted; reopening it is summary-guided, filter deferred *)
  let r1 = Table_cache.find tc m1 in
  Alcotest.(check bool) "reopened filter is lazy" false
    (Table.filter_resident r1);
  check_accounting "accounted = actual while filter lazy";
  Alcotest.(check bool) "probe loads the filter" true
    (Table.may_contain r1 "key00050");
  Alcotest.(check bool) "filter now resident" true (Table.filter_resident r1);
  check_accounting "accounted = actual after filter materialises"

(* ---------- Level_iter ---------- *)

let test_level_iter_concat_and_seek () =
  let env = Pdb_simio.Env.create () in
  (* two disjoint tables: keys 0..99 and 100..199 *)
  let e1 = List.init 100 (fun i -> (ikey (Printf.sprintf "k%05d" i) 1, "a")) in
  let e2 =
    List.init 100 (fun i -> (ikey (Printf.sprintf "k%05d" (100 + i)) 1, "b"))
  in
  let m1 = build_table env ~dir:"db" ~number:20 e1 in
  let m2 = build_table env ~dir:"db" ~number:21 e2 in
  let tc = Table_cache.create env ~dir:"db" ~entries:10 in
  let bc = Block_cache.create ~capacity:(1 lsl 20) in
  let examined = ref 0 in
  let it =
    Level_iter.create ~cache:tc ~block_cache:bc
      ~hint:Pdb_simio.Device.Random_read
      ~on_table:(fun () -> incr examined)
      [| m1; m2 |]
  in
  (* seek into second table touches only one table *)
  examined := 0;
  it.Iter.seek (Ik.max_for_lookup "k00150");
  check Alcotest.string "seek second file" "k00150"
    (Ik.user_key (it.Iter.key ()));
  check Alcotest.int "one table examined" 1 !examined;
  (* crossing the file boundary transparently *)
  it.Iter.seek (Ik.max_for_lookup "k00099");
  check Alcotest.string "at boundary" "k00099" (Ik.user_key (it.Iter.key ()));
  it.Iter.next ();
  check Alcotest.string "crossed" "k00100" (Ik.user_key (it.Iter.key ()));
  (* full scan sees everything *)
  it.Iter.seek_to_first ();
  let n = ref 0 in
  while it.Iter.valid () do
    incr n;
    it.Iter.next ()
  done;
  check Alcotest.int "scan count" 200 !n

let test_level_iter_empty () =
  let env = Pdb_simio.Env.create () in
  let tc = Table_cache.create env ~dir:"db" ~entries:10 in
  let bc = Block_cache.create ~capacity:(1 lsl 20) in
  let it =
    Level_iter.create ~cache:tc ~block_cache:bc
      ~hint:Pdb_simio.Device.Random_read
      ~on_table:(fun () -> ())
      [||]
  in
  it.Iter.seek_to_first ();
  Alcotest.(check bool) "empty invalid" false (it.Iter.valid ());
  it.Iter.seek "anything";
  Alcotest.(check bool) "seek invalid" false (it.Iter.valid ())

let prop_table_roundtrip =
  qtest "table roundtrip (random sorted unique keys)" ~count:30
    QCheck.(list (string_of_size (QCheck.Gen.return 6)))
    (fun keys ->
      let keys = List.sort_uniq String.compare keys in
      match keys with
      | [] -> true
      | _ ->
        let env = Pdb_simio.Env.create () in
        let entries = List.mapi (fun i k -> (ikey k (i + 1), k)) keys in
        let meta = build_table env ~dir:"db" ~number:30 entries in
        let reader = Table.open_reader env ~dir:"db" meta in
        let cache = Block_cache.create ~capacity:(1 lsl 20) in
        let it =
          Table.iterator reader ~cache ~hint:Pdb_simio.Device.Sequential_read
        in
        Iter.to_list it = entries)

let () =
  Alcotest.run "sstable"
    [
      ( "block",
        [
          Alcotest.test_case "roundtrip" `Quick test_block_roundtrip;
          Alcotest.test_case "prefix compression" `Quick
            test_block_prefix_compression_effective;
          Alcotest.test_case "seek" `Quick test_block_seek;
          Alcotest.test_case "seek across restarts" `Quick
            test_block_seek_across_restarts;
          Alcotest.test_case "single entry" `Quick test_block_single_entry;
          prop_block_roundtrip;
        ] );
      ( "table",
        [
          Alcotest.test_case "build and get" `Quick test_table_build_and_get;
          Alcotest.test_case "absent -> successor" `Quick
            test_table_get_absent_lands_on_successor;
          Alcotest.test_case "full scan" `Quick test_table_iterator_full_scan;
          Alcotest.test_case "iterator seek" `Quick test_table_iterator_seek;
          Alcotest.test_case "bloom rejects absent" `Quick
            test_table_bloom_filters_absent;
          Alcotest.test_case "no bloom" `Quick test_table_no_bloom;
          Alcotest.test_case "empty builder" `Quick test_table_empty_builder;
          prop_table_roundtrip;
        ] );
      ( "caches",
        [
          Alcotest.test_case "block cache hit" `Quick
            test_block_cache_hit_avoids_io;
          Alcotest.test_case "table cache eviction" `Quick
            test_table_cache_eviction_reopens;
          Alcotest.test_case "byte cache re-weighs on filter load" `Quick
            test_table_cache_reweigh_on_filter_load;
        ] );
      ( "level-iter",
        [
          Alcotest.test_case "concat and seek" `Quick
            test_level_iter_concat_and_seek;
          Alcotest.test_case "empty" `Quick test_level_iter_empty;
        ] );
    ]
