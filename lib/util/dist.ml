(** Request-key distributions used by the YCSB workload generator.

    Implemented from the YCSB paper / reference generator: uniform, zipfian
    (incrementally extensible), scrambled zipfian (spreads the hot set over
    the key space) and latest (zipfian over recency). *)

type t =
  | Uniform of { rng : Rng.t; mutable n : int }
  | Zipfian of zipf
  | Scrambled of zipf
  | Latest of zipf
  | Shifting of hotspot
  | Diurnal of hotspot

and hotspot = {
  hrng : Rng.t;
  mutable hn : int;  (** key-space size *)
  period : int;  (** draws per hotspot phase (shifting) or cycle (diurnal) *)
  span : float;  (** hot window width, as a fraction of the key space *)
  hot : float;  (** probability a draw lands inside the hot window *)
  mutable drawn : int;
}

and zipf = {
  zrng : Rng.t;
  theta : float;
  mutable items : int;
  mutable zetan : float; (* zeta(items, theta) *)
  mutable alpha : float;
  mutable eta : float;
  zeta2theta : float;
}

let default_theta = 0.99

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !s

let make_zipf rng n theta =
  let zetan = zeta n theta in
  let zeta2theta = zeta 2 theta in
  {
    zrng = rng;
    theta;
    items = n;
    zetan;
    alpha = 1.0 /. (1.0 -. theta);
    eta = (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
          /. (1.0 -. (zeta2theta /. zetan));
    zeta2theta;
  }

(* Incrementally extend zeta when the item count grows (YCSB's trick for the
   "latest" distribution, where inserts grow the key space). *)
let grow_zipf z n =
  if n > z.items then begin
    let s = ref z.zetan in
    for i = z.items + 1 to n do
      s := !s +. (1.0 /. Float.pow (float_of_int i) z.theta)
    done;
    z.zetan <- !s;
    z.items <- n;
    z.eta <-
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. z.theta))
      /. (1.0 -. (z.zeta2theta /. z.zetan))
  end

let next_zipf z =
  let u = Rng.float z.zrng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
  else
    let v =
      float_of_int z.items
      *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha
    in
    min (z.items - 1) (int_of_float v)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv64 v =
  let open Int64 in
  let h = ref fnv_offset in
  let v = ref (of_int v) in
  for _ = 0 to 7 do
    let octet = logand !v 0xffL in
    h := mul (logxor !h octet) fnv_prime;
    v := shift_right_logical !v 8
  done;
  to_int (shift_right_logical !h 1) land Stdlib.max_int

(** [uniform ~seed n] draws keys uniformly from [\[0, n)]. *)
let uniform ~seed n = Uniform { rng = Rng.create seed; n }

(** [zipfian ~seed n] draws keys zipf-distributed with the hot keys at the
    low indices. *)
let zipfian ?(theta = default_theta) ~seed n =
  Zipfian (make_zipf (Rng.create seed) n theta)

(** [scrambled_zipfian ~seed n] spreads a zipfian hot set uniformly across
    [\[0, n)] — YCSB's default request distribution. *)
let scrambled_zipfian ?(theta = default_theta) ~seed n =
  Scrambled (make_zipf (Rng.create seed) n theta)

(** [latest ~seed n] favours recently inserted keys (key [n-1] hottest). *)
let latest ?(theta = default_theta) ~seed n =
  Latest (make_zipf (Rng.create seed) n theta)

(** [shifting_hotspot ~seed ~period ?span ?hot n] concentrates [hot] of
    the draws on a contiguous window of [span * n] keys whose position
    {e jumps} every [period] draws (golden-ratio hopping, so successive
    hotspots land far apart) — the drifting skew that makes a static
    shard split go stale. *)
let shifting_hotspot ?(span = 0.10) ?(hot = 0.9) ~seed ~period n =
  Shifting
    { hrng = Rng.create seed; hn = n; period = max 1 period; span; hot;
      drawn = 0 }

(** [diurnal ~seed ~period ?span ?hot n] moves the hot window smoothly —
    sinusoidally across the key space with a cycle of [period] draws —
    the day/night drift of a geographically keyed workload. *)
let diurnal ?(span = 0.10) ?(hot = 0.9) ~seed ~period n =
  Diurnal
    { hrng = Rng.create seed; hn = n; period = max 1 period; span; hot;
      drawn = 0 }

(* Hot-window start for the current draw count: shifting hops by the
   golden ratio per phase; diurnal tracks a sine over the cycle. *)
let hotspot_start shifting h =
  let width = h.span in
  let centre_frac =
    if shifting then
      let phase = h.drawn / h.period in
      Float.rem (0.5 +. (float_of_int phase *. 0.618033988749895)) 1.0
    else
      let x = float_of_int (h.drawn mod h.period) /. float_of_int h.period in
      0.5 +. (0.5 -. (width /. 2.0)) *. sin (2.0 *. Float.pi *. x)
  in
  let start_frac =
    Float.max 0.0 (Float.min (1.0 -. width) (centre_frac -. (width /. 2.0)))
  in
  int_of_float (start_frac *. float_of_int h.hn)

let next_hotspot shifting h =
  let width = max 1 (int_of_float (h.span *. float_of_int h.hn)) in
  let v =
    if Rng.float h.hrng < h.hot then
      hotspot_start shifting h + Rng.int h.hrng width
    else Rng.int h.hrng h.hn
  in
  h.drawn <- h.drawn + 1;
  min (h.hn - 1) v

(** [next t] draws the next key index. *)
let next t =
  match t with
  | Uniform u -> Rng.int u.rng u.n
  | Zipfian z -> next_zipf z
  | Scrambled z ->
    let v = next_zipf z in
    fnv64 v mod z.items
  | Latest z ->
    let v = next_zipf z in
    z.items - 1 - v
  | Shifting h -> next_hotspot true h
  | Diurnal h -> next_hotspot false h

(** [set_item_count t n] grows the key space (after inserts). *)
let set_item_count t n =
  match t with
  | Uniform u -> u.n <- max u.n n
  | Zipfian z | Scrambled z | Latest z -> grow_zipf z n
  | Shifting h | Diurnal h -> h.hn <- max h.hn n
