(** The paper's evaluation, experiment by experiment (DESIGN.md §4).

    Each experiment regenerates one table or figure of chapter 5 (plus the
    chapter-2 B+-tree motivation): same workload structure, scaled-down
    sizes (DESIGN.md §1), same comparisons, printed as rows.  Absolute
    numbers are simulated-device throughputs; the paper's *shape* — who
    wins, by roughly what factor — is the reproduction target recorded in
    EXPERIMENTS.md. *)

module Dyn = Pdb_kvs.Store_intf
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module B = Bench_util
module Iter = Pdb_kvs.Iter

type experiment = {
  id : string;
  title : string;
  run : unit -> unit;
}

let pf = Printf.printf

(* Default scaled workload sizes.  The paper's runs use 50-500M keys; the
   scaled stores (64 KB memtables, 160 KB level-1) keep the same
   dataset/memtable and level-occupancy ratios at these sizes. *)
let n_large = 60_000
let n_medium = 30_000
let value_1k = 1024
let value_small = 128

let seed = 42

let rel base v = if base = 0.0 then 0.0 else v /. base

(* ---------------- fig 1.1 / fig 5.1a : write amplification ------------- *)

let run_write_amp () =
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let n = 100_000 in
        ignore (B.fill_random store ~n ~value_bytes:value_small ~seed);
        store.Dyn.d_flush ();
        let wa = B.write_amp store in
        let written =
          (Env.stats store.Dyn.d_env).Pdb_simio.Io_stats.bytes_written
        in
        store.Dyn.d_close ();
        (Stores.engine_name engine, written, wa))
      Stores.paper_stores
  in
  B.print_table ~title:"Fig 1.1 — write IO for random inserts (100k x 128B)"
    ~header:[ "store"; "write IO (MB)"; "write amp" ]
    (List.map
       (fun (name, written, wa) ->
         [ name; B.fmt_f (B.mb written); B.fmt_f wa ])
       rows);
  match rows with
  | (_, _, pebbles_wa) :: _ ->
    List.iter
      (fun (name, _, wa) ->
        if name <> "pebblesdb" then
          pf "  %s / pebblesdb write-amp ratio: %.2fx\n" name
            (wa /. pebbles_wa))
      rows
  | [] -> ()

(* ---------------- sec 2.2 : B+-tree motivation ------------------------- *)

let run_btree_motivation () =
  let n = 20_000 in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        ignore (B.fill_random store ~n ~value_bytes:value_small ~seed);
        (* a second pass of random updates shows the in-place rewrite cost *)
        ignore (B.update_random store ~n ~value_bytes:value_small ~seed);
        store.Dyn.d_flush ();
        let wa = B.write_amp store in
        store.Dyn.d_close ();
        [ Stores.engine_name engine; B.fmt_f wa ])
      [ Stores.Btree; Stores.Hyperleveldb; Stores.Pebblesdb ]
  in
  B.print_table
    ~title:"Sec 2.2 — B+-tree vs LSM write amplification (insert+update)"
    ~header:[ "store"; "write amp" ]
    rows

(* ---------------- table 5.1 : sstable size distribution ---------------- *)

let run_sstable_sizes () =
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        ignore (B.fill_random store ~n:n_large ~value_bytes:value_1k ~seed);
        store.Dyn.d_flush ();
        let env = store.Dyn.d_env in
        let h = Pdb_util.Histogram.create () in
        List.iter
          (fun name ->
            if Filename.check_suffix name ".sst" then
              Pdb_util.Histogram.add h
                (float_of_int (Env.file_size env name) /. 1024.0))
          (Env.list env);
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          string_of_int (Pdb_util.Histogram.count h);
          B.fmt_f (Pdb_util.Histogram.mean h);
          B.fmt_f (Pdb_util.Histogram.median h);
          B.fmt_f (Pdb_util.Histogram.percentile h 90.0);
          B.fmt_f (Pdb_util.Histogram.percentile h 95.0);
        ])
      [ Stores.Pebblesdb; Stores.Hyperleveldb ]
  in
  B.print_table
    ~title:"Table 5.1 — sstable size distribution (KB) after 60k x 1KB inserts"
    ~header:[ "store"; "sstables"; "mean"; "median"; "p90"; "p95" ]
    rows

(* ---------------- table 5.2 : update throughput ------------------------ *)

let run_update_throughput () =
  let n = n_medium in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let insert = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        let up1 = B.update_random store ~n ~value_bytes:value_1k ~seed:(seed + 1) in
        let up2 = B.update_random store ~n ~value_bytes:value_1k ~seed:(seed + 2) in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f insert.B.kops;
          B.fmt_f up1.B.kops;
          B.fmt_f up2.B.kops;
          B.fmt_f ~digits:0 (100.0 *. up2.B.kops /. insert.B.kops) ^ "%";
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:
      "Table 5.2 — insert + two update rounds, KOps/s (30k x 1KB per round)"
    ~header:[ "store"; "insert"; "update-1"; "update-2"; "retained" ]
    rows

(* ---------------- fig 5.1b : single-threaded micro-benchmarks ---------- *)

let run_micro_single () =
  let n = 40_000 in
  let rows =
    List.map
      (fun engine ->
        (* sequential fill on its own store *)
        let seq_store = Stores.open_engine engine in
        let fillseq =
          B.fill_seq seq_store ~n ~value_bytes:value_1k ~seed
        in
        seq_store.Dyn.d_close ();
        (* random fill, reads, compacted seeks, deletes on a second store *)
        let store = Stores.open_engine engine in
        let fillrand = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        let reads = B.read_random store ~n ~ops:20_000 ~seed in
        store.Dyn.d_compact_all ();
        let seeks = B.seek_random store ~n ~ops:5_000 ~nexts:0 ~seed in
        let deletes = B.delete_random store ~n ~seed in
        store.Dyn.d_close ();
        ( Stores.engine_name engine,
          [ fillseq.B.kops; fillrand.B.kops; reads.B.kops; seeks.B.kops;
            deletes.B.kops ] ))
      Stores.paper_stores
  in
  let hyper =
    try List.assoc "hyperleveldb" rows with Not_found -> [ 1.; 1.; 1.; 1.; 1. ]
  in
  B.print_table
    ~title:
      "Fig 5.1(b) — db_bench micro-benchmarks, KOps/s (40k x 1KB; seeks after \
       full compaction)"
    ~header:
      [ "store"; "fillseq"; "fillrandom"; "readrandom"; "seekrandom";
        "deleterandom" ]
    (List.map
       (fun (name, vals) ->
         name :: List.map (fun v -> B.fmt_f v) vals)
       rows);
  B.print_table ~title:"Fig 5.1(b) — relative to HyperLevelDB"
    ~header:
      [ "store"; "fillseq"; "fillrandom"; "readrandom"; "seekrandom";
        "deleterandom" ]
    (List.map
       (fun (name, vals) ->
         name
         :: List.map2 (fun v h -> B.fmt_f (rel h v) ^ "x") vals hyper)
       rows)

(* ---------------- fig 5.1c : multi-threaded + mixed -------------------- *)

(* The paper's "default RocksDB parameters" runs use a 64 MB memtable and a
   large level 0; scaled to the experiment datasets this is 256 KB (keeping
   the dataset/memtable ratio, DESIGN.md §1). *)
let rocksdb_params (o : O.t) =
  { o with O.memtable_bytes = 256 * 1024; l0_slowdown = 20; l0_stop = 24 }

let run_micro_multi () =
  let n = 40_000 in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine ~tweak:rocksdb_params engine in
        let writes = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        let reads = B.read_random store ~n ~ops:20_000 ~seed in
        (* mixed: interleave reads and writes 50/50 *)
        let rng = Pdb_util.Rng.create (seed + 9) in
        let mixed =
          B.measure store 20_000 (fun () ->
              for _ = 1 to 10_000 do
                ignore (store.Dyn.d_get (B.key_of (Pdb_util.Rng.int rng n)));
                store.Dyn.d_put
                  (B.key_of (Pdb_util.Rng.int rng n))
                  (Pdb_util.Rng.alpha rng value_1k)
              done)
        in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f writes.B.kops;
          B.fmt_f reads.B.kops;
          B.fmt_f mixed.B.kops;
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:
      "Fig 5.1(c) — concurrent-style workload with RocksDB params (64MB-class \
       memtable): writes / reads / mixed KOps/s"
    ~header:[ "store"; "writes"; "reads"; "mixed" ]
    rows

(* ---------------- fig 5.1d : small cached dataset ----------------------- *)

let run_micro_cached () =
  let n = 4_000 in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let writes = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        let reads = B.read_random store ~n ~ops:10_000 ~seed in
        let seeks = B.seek_random store ~n ~ops:5_000 ~nexts:0 ~seed in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f writes.B.kops;
          B.fmt_f reads.B.kops;
          B.fmt_f seeks.B.kops;
        ])
      [ Stores.Hyperleveldb; Stores.Pebblesdb; Stores.Pebblesdb_one ]
  in
  B.print_table
    ~title:
      "Fig 5.1(d) — fully cached dataset (4k x 1KB inside the 8MB block \
       cache): KOps/s"
    ~header:[ "store"; "writes"; "reads"; "seeks" ]
    rows

(* ---------------- fig 5.1e : small values ------------------------------ *)

let run_micro_small_values () =
  let n = 100_000 in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let writes = B.fill_random store ~n ~value_bytes:value_small ~seed in
        let reads = B.read_random store ~n ~ops:20_000 ~seed in
        let seeks = B.seek_random store ~n ~ops:5_000 ~nexts:0 ~seed in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f writes.B.kops;
          B.fmt_f reads.B.kops;
          B.fmt_f seeks.B.kops;
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:"Fig 5.1(e) — small key-value pairs (100k x 128B): KOps/s"
    ~header:[ "store"; "writes"; "reads"; "seeks" ]
    rows

(* ---------------- fig 5.2a : aged file system and store ----------------- *)

let run_aged () =
  let n = 30_000 in
  let rows =
    List.map
      (fun engine ->
        let env = Env.create () in
        (* file-system aging: degrade the device *)
        Pdb_simio.Device.set_aging (Env.device env) 2.0;
        let store = Stores.open_engine ~env engine in
        (* key-value store aging: inserts + deletes + updates *)
        ignore (B.fill_random store ~n ~value_bytes:value_1k ~seed);
        let rng = Pdb_util.Rng.create (seed + 4) in
        for _ = 1 to n * 2 / 5 do
          store.Dyn.d_delete (B.key_of (Pdb_util.Rng.int rng n))
        done;
        for _ = 1 to n * 2 / 5 do
          store.Dyn.d_put
            (B.key_of (Pdb_util.Rng.int rng n))
            (Pdb_util.Rng.alpha rng value_1k)
        done;
        (* now the measured phases *)
        let writes =
          B.measure store (n / 2) (fun () ->
              for _ = 1 to n / 2 do
                store.Dyn.d_put
                  (B.key_of (Pdb_util.Rng.int rng n))
                  (Pdb_util.Rng.alpha rng value_1k)
              done)
        in
        let reads = B.read_random store ~n ~ops:10_000 ~seed in
        let seeks = B.seek_random store ~n ~ops:3_000 ~nexts:0 ~seed in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f writes.B.kops;
          B.fmt_f reads.B.kops;
          B.fmt_f seeks.B.kops;
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:
      "Fig 5.2(a) — aged file system (2x fragmentation) + aged store: KOps/s"
    ~header:[ "store"; "writes"; "reads"; "seeks" ]
    rows

(* ---------------- fig 5.2b : low memory --------------------------------- *)

let run_low_memory () =
  let n = 50_000 in
  (* dataset ~51MB; cache limited to ~6% of it, as in the paper's 4GB-RAM
     configuration *)
  let tweak (o : O.t) =
    {
      o with
      O.block_cache_bytes = 3 * 1024 * 1024;
      table_cache_entries = 40;
      memtable_bytes = 1024 * 1024;
      l0_slowdown = 20;
      l0_stop = 24;
    }
  in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine ~tweak engine in
        let writes = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        let reads = B.read_random store ~n ~ops:10_000 ~seed in
        let seeks = B.seek_random store ~n ~ops:3_000 ~nexts:0 ~seed in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f writes.B.kops;
          B.fmt_f reads.B.kops;
          B.fmt_f seeks.B.kops;
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:"Fig 5.2(b) — low memory (cache ~6% of dataset): KOps/s"
    ~header:[ "store"; "writes"; "reads"; "seeks" ]
    rows

(* ---------------- fig 5.3 : space amplification ------------------------- *)

let run_space_amp () =
  let unique_rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let n = 40_000 in
        ignore (B.fill_random store ~n ~value_bytes:value_1k ~seed);
        store.Dyn.d_flush ();
        store.Dyn.d_compact_all ();
        let live = n * (value_1k + 13) in
        let used = Env.total_file_bytes store.Dyn.d_env in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f (B.mb used);
          B.fmt_f (float_of_int used /. float_of_int live);
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:"Fig 5.3(i) — space amplification, 40k unique 1KB inserts"
    ~header:[ "store"; "space (MB)"; "space amp" ]
    unique_rows;
  let dup_rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let n = 4_000 in
        (* 10 update rounds, uncompacted: the paper's duplicate-keys case *)
        for round = 0 to 9 do
          ignore
            (B.update_random store ~n ~value_bytes:value_1k
               ~seed:(seed + round))
        done;
        store.Dyn.d_flush ();
        let live = n * (value_1k + 13) in
        let used = Env.total_file_bytes store.Dyn.d_env in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f (B.mb used);
          B.fmt_f (float_of_int used /. float_of_int live);
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:
      "Fig 5.3(ii) — space amplification, 4k keys x 10 duplicate updates \
       (uncompacted)"
    ~header:[ "store"; "space (MB)"; "space amp" ]
    dup_rows

(* ---------------- fig 5.4 : time-series / empty guards ------------------ *)

let run_time_series () =
  let iterations = 8 in
  let per_iter = 6_000 in
  let engines = [ Stores.Pebblesdb; Stores.Hyperleveldb; Stores.Rocksdb ] in
  let results =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let rng = Pdb_util.Rng.create seed in
        let per_iteration =
          List.init iterations (fun it ->
              let base = it * per_iter in
              let writes =
                B.measure store per_iter (fun () ->
                    for i = base to base + per_iter - 1 do
                      store.Dyn.d_put (B.key_of i)
                        (Pdb_util.Rng.alpha rng 512)
                    done)
              in
              let reads =
                B.measure store per_iter (fun () ->
                    for _ = 1 to per_iter do
                      ignore
                        (store.Dyn.d_get
                           (B.key_of (base + Pdb_util.Rng.int rng per_iter)))
                    done)
              in
              B.measure store per_iter (fun () ->
                  for i = base to base + per_iter - 1 do
                    store.Dyn.d_delete (B.key_of i)
                  done)
              |> ignore;
              store.Dyn.d_compact_all ();
              (writes.B.kops, reads.B.kops))
        in
        (engine, store, per_iteration))
      engines
  in
  B.print_table
    ~title:
      "Fig 5.4 — time-series pattern (insert range / read / delete-all, 8 \
       iterations): read KOps/s per iteration"
    ~header:
      ("store"
       :: List.init iterations (fun i -> Printf.sprintf "it%d" (i + 1)))
    (List.map
       (fun (engine, _, per_iteration) ->
         Stores.engine_name engine
         :: List.map (fun (_, r) -> B.fmt_f r) per_iteration)
       results);
  List.iter
    (fun (engine, store, per_iteration) ->
      (match engine with
       | Stores.Pebblesdb ->
         (* measure empty-guard accumulation on the FLSM store *)
         let st = store.Dyn.d_stats () in
         ignore st;
         pf "  pebblesdb write KOps/s first -> last iteration: %.1f -> %.1f\n"
           (fst (List.hd per_iteration))
           (fst (List.nth per_iteration (iterations - 1)))
       | _ -> ());
      store.Dyn.d_close ())
    results

(* ---------------- fig 5.5 : YCSB ---------------------------------------- *)

let ycsb_engines =
  [ Stores.Pebblesdb; Stores.Hyperleveldb; Stores.Rocksdb; Stores.Leveldb ]

let run_ycsb () =
  let records = 25_000 in
  let ops = 10_000 in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine ~tweak:rocksdb_params engine in
        let load_a =
          Pdb_ycsb.Runner.load store ~records ~value_bytes:value_1k ~seed
        in
        let phase spec ops =
          Pdb_ycsb.Runner.run store spec ~records ~operations:ops
            ~value_bytes:value_1k ~seed
        in
        let a = phase Pdb_ycsb.Workload.workload_a ops in
        let b = phase Pdb_ycsb.Workload.workload_b ops in
        let c = phase Pdb_ycsb.Workload.workload_c ops in
        let d = phase Pdb_ycsb.Workload.workload_d ops in
        let f = phase Pdb_ycsb.Workload.workload_f ops in
        (* E runs on a fresh store per the YCSB spec *)
        let store_e = Stores.open_engine ~tweak:rocksdb_params engine in
        let load_e =
          Pdb_ycsb.Runner.load store_e ~records ~value_bytes:value_1k
            ~seed:(seed + 5)
        in
        let e =
          Pdb_ycsb.Runner.run store_e Pdb_ycsb.Workload.workload_e ~records
            ~operations:(ops / 4) ~value_bytes:value_1k ~seed:(seed + 5)
        in
        let total_io_mb =
          B.mb
            ((Env.stats store.Dyn.d_env).Pdb_simio.Io_stats.bytes_written
             + (Env.stats store_e.Dyn.d_env).Pdb_simio.Io_stats.bytes_written)
        in
        store.Dyn.d_close ();
        store_e.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f load_a.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f a.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f b.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f c.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f d.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f load_e.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f e.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f f.Pdb_ycsb.Runner.kops_per_s;
          B.fmt_f total_io_mb;
        ])
      ycsb_engines
  in
  B.print_table
    ~title:
      "Fig 5.5 — YCSB suite (25k records, 10k ops/workload, 1KB values): \
       KOps/s and total write IO"
    ~header:
      [ "store"; "LoadA"; "A"; "B"; "C"; "D"; "LoadE"; "E"; "F"; "IO(MB)" ]
    rows

(* ---------------- fig 5.6 : applications -------------------------------- *)

let run_apps () =
  let records = 10_000 in
  let ops = 5_000 in
  let app_suite shim store_of_engine engines title =
    let rows =
      List.map
        (fun engine ->
          let store = shim (store_of_engine engine) in
          let load_a =
            Pdb_ycsb.Runner.load store ~records ~value_bytes:value_1k ~seed
          in
          let phase spec ops =
            Pdb_ycsb.Runner.run store spec ~records ~operations:ops
              ~value_bytes:value_1k ~seed
          in
          let a = phase Pdb_ycsb.Workload.workload_a ops in
          let b = phase Pdb_ycsb.Workload.workload_b ops in
          let c = phase Pdb_ycsb.Workload.workload_c ops in
          let d = phase Pdb_ycsb.Workload.workload_d ops in
          let f = phase Pdb_ycsb.Workload.workload_f ops in
          let e = phase Pdb_ycsb.Workload.workload_e (ops / 10) in
          let io =
            B.mb (Env.stats store.Dyn.d_env).Pdb_simio.Io_stats.bytes_written
          in
          store.Dyn.d_close ();
          [
            store.Dyn.d_name;
            B.fmt_f load_a.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f a.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f b.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f c.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f d.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f e.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f f.Pdb_ycsb.Runner.kops_per_s;
            B.fmt_f io;
          ])
        engines
    in
    B.print_table ~title
      ~header:
        [ "engine"; "LoadA"; "A"; "B"; "C"; "D"; "E"; "F"; "IO(MB)" ]
      rows
  in
  (* HyperDex: 16 MB memtables scaled to 256 KB *)
  let hyperdex_tweak (o : O.t) = { o with O.memtable_bytes = 256 * 1024 } in
  app_suite
    (Pdb_apps.App_shim.wrap Pdb_apps.App_shim.hyperdex)
    (fun engine -> Stores.open_engine ~tweak:hyperdex_tweak engine)
    [ Stores.Hyperleveldb; Stores.Pebblesdb ]
    "Fig 5.6(a) — HyperDex-sim (read-before-write + app latency): KOps/s";
  (* MongoDB: 16 MB memtable + 8 MB cache scaled to 256 KB / 128 KB *)
  let mongo_tweak (o : O.t) =
    { o with O.memtable_bytes = 256 * 1024;
      block_cache_bytes = 128 * 1024 }
  in
  app_suite
    (Pdb_apps.App_shim.wrap Pdb_apps.App_shim.mongodb)
    (fun engine -> Stores.open_engine ~tweak:mongo_tweak engine)
    [ Stores.Wiredtiger; Stores.Rocksdb; Stores.Pebblesdb ]
    "Fig 5.6(b) — MongoDB-sim (app latency; WiredTiger default): KOps/s"

(* ---------------- table 5.4 : memory consumption ------------------------ *)

let run_memory () =
  let n = 50_000 in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        ignore (B.fill_random store ~n ~value_bytes:value_1k ~seed);
        let after_writes = store.Dyn.d_memory_bytes () in
        ignore (B.read_random store ~n ~ops:10_000 ~seed);
        let after_reads = store.Dyn.d_memory_bytes () in
        ignore (B.seek_random store ~n ~ops:5_000 ~nexts:0 ~seed);
        let after_seeks = store.Dyn.d_memory_bytes () in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f (B.mb after_writes);
          B.fmt_f (B.mb after_reads);
          B.fmt_f (B.mb after_seeks);
        ])
      [ Stores.Hyperleveldb; Stores.Rocksdb; Stores.Pebblesdb ]
  in
  B.print_table
    ~title:"Table 5.4 — modeled memory consumption (MB) after each phase"
    ~header:[ "store"; "writes"; "reads"; "seeks" ]
    rows

(* ---------------- sec 5.5 : CPU + bloom construction cost --------------- *)

let run_cpu_cost () =
  let n = n_medium in
  let rows =
    List.map
      (fun engine ->
        let store = Stores.open_engine engine in
        let clock = Env.clock store.Dyn.d_env in
        ignore (B.fill_random store ~n ~value_bytes:value_1k ~seed);
        let snap = Pdb_simio.Clock.snapshot clock in
        let fg = snap.Pdb_simio.Clock.foreground_ns +. snap.Pdb_simio.Clock.cpu_ns in
        let bg = snap.Pdb_simio.Clock.background_ns in
        store.Dyn.d_close ();
        [
          Stores.engine_name engine;
          B.fmt_f (bg /. 1e9);
          B.fmt_f (fg /. 1e9);
          B.fmt_f ~digits:0 (100.0 *. bg /. (fg +. bg)) ^ "%";
        ])
      Stores.paper_stores
  in
  B.print_table
    ~title:
      "Sec 5.5 — compaction (background) vs foreground time during 30k x 1KB \
       inserts (simulated seconds)"
    ~header:[ "store"; "compaction s"; "foreground s"; "compaction share" ]
    rows;
  (* bloom construction cost: real wall-clock, scaled to per-GB-of-sstable *)
  let keys = 200_000 in
  let t0 = Unix.gettimeofday () in
  let bloom = Pdb_bloom.Bloom.create keys in
  for i = 0 to keys - 1 do
    Pdb_bloom.Bloom.add bloom (Printf.sprintf "user%016d" i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let bytes_covered = keys * (16 + value_1k) in
  pf
    "  bloom construction: %.3fs for %d keys (~%.2f s per GB of sstable \
     data; paper: 1.2 s/GB)\n"
    dt keys
    (dt *. (1024.0 *. 1024.0 *. 1024.0) /. float_of_int bytes_covered)

(* ---------------- ablation : §5.2 impact of optimizations --------------- *)

let run_ablation () =
  let n = 20_000 in
  let variant label tweak =
    let store = Stores.open_engine ~tweak Stores.Pebblesdb in
    ignore (B.fill_random store ~n ~value_bytes:value_1k ~seed);
    (* reads are measured on the as-written store (multiple sstables per
       guard — where bloom filters matter); seeks after full compaction,
       the paper's worst case *)
    let reads = B.read_random store ~n ~ops:10_000 ~seed in
    store.Dyn.d_compact_all ();
    let seeks = B.seek_random store ~n ~ops:3_000 ~nexts:0 ~seed in
    store.Dyn.d_close ();
    [ label; B.fmt_f seeks.B.kops; B.fmt_f reads.B.kops ]
  in
  let rows =
    [
      variant "all optimizations" Fun.id;
      variant "no parallel seeks"
        (fun o -> { o with O.probe_budget_override = Some 1 });
      variant "no seek compaction"
        (fun o -> { o with O.seek_based_compaction = false });
      variant "neither seek optimization"
        (fun o ->
          {
            o with
            O.probe_budget_override = Some 1;
            seek_based_compaction = false;
          });
      variant "no sstable blooms" (fun o -> { o with O.sstable_bloom = false });
    ]
  in
  B.print_table
    ~title:
      "Sec 5.2 ablation — PebblesDB seek/read throughput under optimization \
       subsets (KOps/s)"
    ~header:[ "variant"; "seekrandom"; "readrandom" ]
    rows

(* ---------------- sec 3.5 : tuning FLSM --------------------------------- *)

let run_tuning () =
  (* the paper's single tuning knob: max_sstables_per_guard caps read and
     range-query latency at the price of more compaction IO; at 1, FLSM
     "behaves like LSM and obtains similar read and write performance" *)
  let n = 20_000 in
  let rows =
    List.map
      (fun cap ->
        let store =
          Stores.open_engine
            ~tweak:(fun o -> { o with O.max_sstables_per_guard = cap })
            Stores.Pebblesdb
        in
        let fill = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        let wa = B.write_amp store in
        store.Dyn.d_compact_all ();
        let seeks = B.seek_random store ~n ~ops:3_000 ~nexts:0 ~seed in
        store.Dyn.d_close ();
        [
          string_of_int cap;
          B.fmt_f fill.B.kops;
          B.fmt_f wa;
          B.fmt_f seeks.B.kops;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  B.print_table
    ~title:
      "Sec 3.5 — tuning max_sstables_per_guard: write IO vs read/range        latency (cap=1 is the paper's LSM mode)"
    ~header:[ "cap"; "fillrandom KOps/s"; "write amp"; "seekrandom KOps/s" ]
    rows

(* ---------------- future work (chapter 7) ------------------------------- *)

let run_future_work () =
  (* guard-parallel compaction: FLSM compaction is "trivially
     parallelizable" per guard (§3.4, §7).  Jobs over disjoint guards
     land on separate worker lanes; the leveled baseline's wide
     compactions conflict and serialise, so extra workers help it less. *)
  let n = n_medium in
  let fill_at engine threads =
    let store =
      Stores.open_engine
        ~tweak:(fun o -> { o with O.compaction_threads = threads })
        engine
    in
    let fill = B.fill_random store ~n ~value_bytes:value_1k ~seed in
    let sched = B.scheduler_summary store in
    store.Dyn.d_close ();
    (fill.B.kops, sched)
  in
  let rows, summaries =
    List.map
      (fun engine ->
        let name = Stores.engine_name engine in
        let k1, s1 = fill_at engine 1 in
        let k4, s4 = fill_at engine 4 in
        ( [ name; B.fmt_f k1; B.fmt_f k4; B.fmt_f ~digits:2 (rel k1 k4) ],
          [ (name ^ " @1", s1); (name ^ " @4", s4) ] ))
      [ Stores.Pebblesdb; Stores.Hyperleveldb ]
    |> List.split
  in
  B.print_table
    ~title:
      "Sec 7 (future work) — guard-parallel compaction: fillrandom vs        compaction workers (speedup = 4w / 1w)"
    ~header:
      [ "store"; "KOps/s (1 worker)"; "KOps/s (4 workers)"; "speedup" ]
    rows;
  List.iter
    (fun (label, s) -> if s <> "" then pf "  %-16s %s\n" label s)
    (List.concat summaries);
  (* guard deletion: time-series churn accumulates empty guards; deleting
     them trims the metadata without disturbing data *)
  let env = Env.create () in
  let opts = O.pebblesdb () in
  let db = Pebblesdb.Pebbles_store.open_store opts ~env ~dir:"db" in
  let module P = Pebblesdb.Pebbles_store in
  for it = 0 to 3 do
    for i = it * 8_000 to ((it + 1) * 8_000) - 1 do
      P.put db (B.key_of i) (String.make 256 'v')
    done;
    for i = it * 8_000 to ((it + 1) * 8_000) - 1 do
      P.delete db (B.key_of i)
    done;
    P.compact_all db
  done;
  let before = P.empty_guard_count db in
  let removed = P.delete_empty_guards db in
  P.check_invariants db;
  pf
    "  guard deletion (§3.3): %d empty guards accumulated by time-series      churn; delete_empty_guards removed %d; invariants hold\n"
    before removed;
  P.close db

(* ---------------- mt : multithreaded clients + group commit ------------- *)

(* The paper's multithreaded-throughput figures (§4.2, ch. 5): N client
   threads drive the store concurrently.  Here N foreground client lanes
   replay the same seeded workload round-robin (store state is identical
   at every client count — tested in test_group_commit.ml); writes run
   under [wal_sync_writes], where the WAL group commit amortizes the
   per-commit sync across the clients queued in the window.  Expected
   shape: write throughput rises from 1 to 4 clients for every engine
   (the leader's one sync covers the whole group), reads scale until the
   shared device saturates, and PebblesDB stays ahead of the leveled
   baselines — its foreground is the same, but its guard-parallel
   compaction drains the background horizon faster. *)
let run_multithreaded_at ~n () =
  let client_counts = [ 1; 2; 4; 8 ] in
  let sync_tweak o = { o with O.wal_sync_writes = true } in
  let results =
    List.map
      (fun engine ->
        let name = Stores.engine_name engine in
        let per_clients =
          List.map
            (fun clients ->
              let store = Stores.open_engine ~tweak:sync_tweak engine in
              let fill, fr =
                B.mc_fill_random store ~clients ~n ~value_bytes:value_1k ~seed
              in
              let read, _ =
                B.mc_read_random store ~clients ~n ~ops:(n / 2) ~seed
              in
              let mixed, mr =
                B.mc_mixed store ~clients ~n ~ops:(n / 2)
                  ~value_bytes:value_1k ~seed
              in
              store.Dyn.d_close ();
              B.Json.metric ~store:name
                (Printf.sprintf "write_kops_%dc" clients)
                fill.B.kops;
              B.Json.metric ~store:name
                (Printf.sprintf "read_kops_%dc" clients)
                read.B.kops;
              B.Json.metric ~store:name
                (Printf.sprintf "mixed_kops_%dc" clients)
                mixed.B.kops;
              B.Json.metric ~store:name
                (Printf.sprintf "syncs_saved_%dc" clients)
                (float_of_int fr.B.Mc.syncs_saved);
              (clients, fill, read, mixed, fr, mr))
            client_counts
        in
        (name, per_clients))
      Stores.paper_stores
  in
  let kops_table title pick =
    B.print_table ~title
      ~header:
        ([ "store" ]
        @ List.map (fun c -> Printf.sprintf "%dc KOps/s" c) client_counts
        @ [ "4c/1c" ])
      (List.map
         (fun (name, per) ->
           let at c =
             let _, fill, read, mixed, _, _ =
               List.find (fun (c', _, _, _, _, _) -> c' = c) per
             in
             (pick (fill, read, mixed)).B.kops
           in
           [ name ]
           @ List.map (fun c -> B.fmt_f ~digits:1 (at c)) client_counts
           @ [ B.fmt_f (rel (at 1) (at 4)) ])
         results)
  in
  kops_table "Multithreaded write-only (random fill, wal_sync_writes)"
    (fun (f, _, _) -> f);
  kops_table "Multithreaded read-only (random point lookups)"
    (fun (_, r, _) -> r);
  kops_table "Multithreaded mixed (50% reads / 50% writes)"
    (fun (_, _, m) -> m);
  (* group-commit accounting for the write-only phase *)
  B.print_table ~title:"Group commit (write-only phase)"
    ~header:
      [ "store"; "clients"; "groups"; "avg group"; "syncs saved";
        "max wait (ms)" ]
    (List.concat_map
       (fun (name, per) ->
         List.map
           (fun (clients, _, _, _, (fr : B.Mc.result), _) ->
             [
               name;
               string_of_int clients;
               string_of_int fr.B.Mc.write_groups;
               B.fmt_f fr.B.Mc.avg_group_size;
               string_of_int fr.B.Mc.syncs_saved;
               B.fmt_f
                 (Array.fold_left Float.max 0.0 fr.B.Mc.client_wait_ns
                 /. 1e6);
             ])
           per)
       results);
  (* the acceptance shape, stated explicitly *)
  List.iter
    (fun (name, per) ->
      let kops c =
        let _, fill, _, _, _, _ =
          List.find (fun (c', _, _, _, _, _) -> c' = c) per
        in
        fill.B.kops
      in
      let _, _, _, _, (fr8 : B.Mc.result), _ =
        List.find (fun (c', _, _, _, _, _) -> c' = 8) per
      in
      pf "  %s: write 1->4 clients %.1f -> %.1f KOps/s (%.2fx), syncs saved \
          at 8 clients: %d\n"
        name (kops 1) (kops 4)
        (rel (kops 1) (kops 4))
        fr8.B.Mc.syncs_saved)
    results

let run_multithreaded () = run_multithreaded_at ~n:n_medium ()

(* reduced scale for the CI smoke step *)
let run_multithreaded_smoke () = run_multithreaded_at ~n:(n_medium / 5) ()

(* ---------------- latency : fig 5.5 latency comparison + stall profile -- *)

module L = Pdb_kvs.Latency
module H = Pdb_util.Histogram

(* Per-operation latency percentiles per engine (the paper reports average
   and 99th-percentile read/write latency, Fig 5.5), then a
   latency-under-load profile: the fill replayed in chunks, sampling
   throughput, compaction backlog and stall time over simulated time —
   the write-stall dynamics where LSM designs differ most (Luo & Carey). *)
let run_latency_at ~n () =
  let lat_row store_name label h =
    [
      store_name;
      label;
      B.fmt_f ~digits:1 (H.mean h /. 1e3);
      B.fmt_f ~digits:1 (H.percentile h 50.0 /. 1e3);
      B.fmt_f ~digits:1 (H.percentile h 90.0 /. 1e3);
      B.fmt_f ~digits:1 (H.percentile h 99.0 /. 1e3);
      B.fmt_f ~digits:1 (H.percentile h 99.9 /. 1e3);
    ]
  in
  let rows =
    List.concat_map
      (fun engine ->
        let name = Stores.engine_name engine in
        let store = Stores.open_engine engine in
        let lat = L.create () in
        let timed = L.instrument lat store in
        ignore (B.fill_random timed ~n ~value_bytes:value_1k ~seed);
        ignore (B.read_random timed ~n ~ops:(n / 2) ~seed);
        ignore (B.seek_random timed ~n ~ops:(n / 10) ~nexts:0 ~seed);
        store.Dyn.d_close ();
        List.iter
          (fun (kind, label) ->
            let h = L.hist lat kind in
            if H.count h > 0 then
              B.Json.metric ~store:name (label ^ "_p99_us")
                (H.percentile h 99.0 /. 1e3))
          L.kinds;
        List.filter_map
          (fun (kind, label) ->
            let h = L.hist lat kind in
            if H.count h = 0 then None else Some (lat_row name label h))
          L.kinds)
      Stores.paper_stores
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Fig 5.5 latency — per-op modeled latency, us (%dk x 1KB fill, then \
          reads and seeks)"
         (n / 1000))
    ~header:[ "store"; "op"; "mean"; "p50"; "p90"; "p99"; "p99.9" ]
    rows;
  (* stall profile: chunked fill sampled over simulated time *)
  let chunks = 10 in
  let per_chunk = max 1 (n / chunks) in
  List.iter
    (fun engine ->
      let name = Stores.engine_name engine in
      let store = Stores.open_engine engine in
      let clock = Env.clock store.Dyn.d_env in
      let rng = Pdb_util.Rng.create seed in
      let perm = Array.init (chunks * per_chunk) Fun.id in
      Pdb_util.Rng.shuffle rng perm;
      let prev_stall = ref 0.0 in
      let sample_rows =
        List.init chunks (fun c ->
            let lat = L.create () in
            let timed = L.instrument lat store in
            let phase =
              B.measure timed per_chunk (fun () ->
                  for i = c * per_chunk to ((c + 1) * per_chunk) - 1 do
                    timed.Dyn.d_put (B.key_of perm.(i))
                      (Pdb_util.Rng.alpha rng value_1k)
                  done)
            in
            let st = store.Dyn.d_stats () in
            (* capture floats now: d_stats returns one mutable record *)
            let stall =
              st.Pdb_kvs.Engine_stats.stall_slowdown_ns
              +. st.Pdb_kvs.Engine_stats.stall_stop_ns
            in
            let pending = st.Pdb_kvs.Engine_stats.compaction_pending in
            let backlog = st.Pdb_kvs.Engine_stats.compaction_backlog_bytes in
            let stall_delta = stall -. !prev_stall in
            prev_stall := stall;
            let t_ms =
              Pdb_simio.Clock.elapsed_ns (Pdb_simio.Clock.snapshot clock)
              /. 1e6
            in
            [
              B.fmt_f ~digits:1 t_ms;
              B.fmt_f ~digits:1 phase.B.kops;
              string_of_int pending;
              B.fmt_f (B.mb backlog);
              B.fmt_f ~digits:1 (stall_delta /. 1e6);
              B.fmt_f ~digits:1 (H.percentile (L.hist lat L.Write) 99.0 /. 1e3);
            ])
      in
      store.Dyn.d_close ();
      B.print_table
        ~title:
          (Printf.sprintf
             "Stall profile — %s: chunked fill over simulated time (%d \
              chunks x %d ops)"
             name chunks per_chunk)
        ~header:
          [ "t (ms)"; "KOps/s"; "pending"; "backlog MB"; "stall ms";
            "write p99 us" ]
        sample_rows)
    [ Stores.Pebblesdb; Stores.Hyperleveldb ]

let run_latency () = run_latency_at ~n:n_medium ()
let run_latency_smoke () = run_latency_at ~n:(n_medium / 5) ()

(* ---------------- shard : range-partitioned scale-out ------------------ *)

(* One level above the guards: the keyspace range-partitioned over N
   complete engine instances (lib/shard), every engine behind the same
   router.  The sweep runs shard counts x client counts for each engine.
   Expected shape: at 4 clients, mixed throughput improves from 1 to 4
   shards for every engine — each shard has its own memtable (N x buffer
   before any flush), its own WAL writer queue, and its own compaction
   scheduler whose worker lanes overlap with the other shards' — and
   PebblesDB stays ahead of the leveled baselines at every shard count,
   since within each shard its guard-parallel compaction still moves less
   data.  The balance column is max/mean user bytes across shards (1.00 =
   perfectly even splits).

   The sweep runs the default durability profile (no per-commit sync).
   Under [wal_sync_writes] sharding carries a real tradeoff: each lane
   commit group splits into per-shard groups with their own WAL sync, so
   a group of 4 batches that cost one sync on a single store costs up to
   4 across shards — group-commit amortization and shard parallelism
   pull in opposite directions (see the mt experiment for the sync-bound
   regime). *)

(* Explicit splits for the bench keyspace: B.key_of covers [0, n), so the
   uniform byte-interpolated defaults (which split the full byte space)
   would park every "key..." key in one shard. *)
let shard_splits_for ~n ~shards =
  List.init (shards - 1) (fun i -> B.key_of ((i + 1) * n / shards))

let run_shard_at ~n () =
  let shard_counts = [ 1; 2; 4; 8 ] in
  let client_counts = [ 1; 4 ] in
  let results =
    List.map
      (fun engine ->
        let name = Stores.engine_name engine in
        let per =
          List.concat_map
            (fun shards ->
              let tweak o =
                { o with O.shards; shard_splits = shard_splits_for ~n ~shards }
              in
              List.map
                (fun clients ->
                  let sh = Stores.open_sharded ~tweak engine in
                  let store = sh.Stores.s_dyn in
                  let fill, _ =
                    B.mc_fill_random store ~clients ~n ~value_bytes:value_1k
                      ~seed
                  in
                  let mixed, _ =
                    B.mc_mixed store ~clients ~n ~ops:(n / 2)
                      ~value_bytes:value_1k ~seed
                  in
                  let st = store.Dyn.d_stats () in
                  let balance = st.Pdb_kvs.Engine_stats.shard_balance in
                  store.Dyn.d_close ();
                  B.Json.metric ~store:name
                    (Printf.sprintf "write_kops_%ds_%dc" shards clients)
                    fill.B.kops;
                  B.Json.metric ~store:name
                    (Printf.sprintf "mixed_kops_%ds_%dc" shards clients)
                    mixed.B.kops;
                  if clients = List.hd client_counts then
                    B.Json.metric ~store:name
                      (Printf.sprintf "balance_%ds" shards)
                      balance;
                  (shards, clients, fill, mixed, balance))
                client_counts)
            shard_counts
        in
        (name, per))
      Stores.paper_stores
  in
  let cell per ~shards ~clients pick =
    let _, _, fill, mixed, _ =
      List.find (fun (s, c, _, _, _) -> s = shards && c = clients) per
    in
    (pick (fill, mixed)).B.kops
  in
  let kops_table title clients pick =
    B.print_table ~title
      ~header:
        ([ "store" ]
        @ List.map (fun s -> Printf.sprintf "%ds KOps/s" s) shard_counts
        @ [ "4s/1s" ])
      (List.map
         (fun (name, per) ->
           let at shards = cell per ~shards ~clients pick in
           [ name ]
           @ List.map (fun s -> B.fmt_f ~digits:1 (at s)) shard_counts
           @ [ B.fmt_f (rel (at 1) (at 4)) ])
         results)
  in
  kops_table "Sharded write-only, 4 clients (random fill)" 4 (fun (f, _) -> f);
  kops_table "Sharded mixed 50/50, 4 clients" 4 (fun (_, m) -> m);
  kops_table "Sharded mixed 50/50, 1 client" 1 (fun (_, m) -> m);
  B.print_table ~title:"Shard balance (max/mean user bytes written per shard)"
    ~header:
      ([ "store" ] @ List.map (fun s -> Printf.sprintf "%ds" s) shard_counts)
    (List.map
       (fun (name, per) ->
         [ name ]
         @ List.map
             (fun shards ->
               let _, _, _, _, balance =
                 List.find (fun (s, c, _, _, _) -> s = shards && c = 1) per
               in
               B.fmt_f balance)
             shard_counts)
       results);
  (* the acceptance shape, stated explicitly *)
  List.iter
    (fun (name, per) ->
      let m shards = cell per ~shards ~clients:4 (fun (_, m) -> m) in
      pf "  %s: mixed 1->4 shards at 4 clients %.1f -> %.1f KOps/s (%.2fx)\n"
        name (m 1) (m 4)
        (rel (m 1) (m 4)))
    results

let run_shard () = run_shard_at ~n:n_medium ()
let run_shard_smoke () = run_shard_at ~n:(n_medium / 5) ()

(* ---------------- elastic : resplit under a shifting hotspot ------------- *)

(* The case for elasticity: a skewed workload whose hot range moves.
   Static quartile splits concentrate a narrow hot window inside one
   shard — every client hammers that shard's memtable and read path
   while three shards idle — and when the window hops to a different
   shard the penalty simply moves with it.  The elastic store starts
   from the *same* quartile topology but is allowed to resplit: the
   controller detects the hot shard from per-shard op counters, splits
   it at the sampled median request key, migrates the range on the
   compaction lanes, and merges the shards the hotspot abandoned.

   The run is two hotspot phases (the window hops at the halfway
   point).  The shifted second phase is reported in two slices: the
   convergence slice right after the hop (where the elastic store pays
   for detection and migration) and the steady remainder.  The
   acceptance shape is the steady slice — resplit *recovers* >= 1.3x
   the static store's mixed throughput — plus elastic >= static on the
   run as a whole for every engine.

   Keys come from [B.key_of] (ordered, not hashed) so the hot window is
   a contiguous key range — spatial skew, which routing can act on; the
   YCSB runner's hashed keys would spread any hotspot uniformly. *)
let run_elastic_at ~n () =
  let clients = 4 in
  (* a compact keyspace with many overwrites: resident data stays small
     (cheap migrations) while the op stream is long enough for two full
     hotspot phases *)
  let keyspace = max 1500 (n / 15) in
  let ops = 16 * keyspace in
  let shards0 = 4 in
  (* one shifting-hotspot mixed op list per store: identical key/RW
     sequence (same seeds), only the read closures differ *)
  let mixed_ops (store : Dyn.dyn) =
    let dist =
      Pdb_util.Dist.shifting_hotspot ~span:0.06 ~hot:0.98 ~seed
        ~period:(ops / 2) keyspace
    in
    let rng = Pdb_util.Rng.create (seed + 11) in
    List.init ops (fun _ ->
        let key = B.key_of (Pdb_util.Dist.next dist) in
        if Pdb_util.Rng.int rng 2 = 0 then
          B.Mc.Read (fun () -> ignore (store.Dyn.d_get key))
        else B.put_op key (B.value_of rng value_1k))
  in
  let rec take k = function
    | x :: tl when k > 0 -> x :: take (k - 1) tl
    | _ -> []
  in
  let rec drop k = function _ :: tl when k > 0 -> drop (k - 1) tl | l -> l in
  let run_one engine ~elastic =
    let tweak o =
      let o =
        { o with O.shards = shards0;
          shard_splits = shard_splits_for ~n:keyspace ~shards:shards0;
          memtable_bytes = 256 * 1024 }
      in
      if not elastic then o
      else
        { o with O.elastic = true;
          elastic_window_ops = max 300 (ops / 80);
          elastic_split_ratio = 2.0;
          elastic_merge_ratio = 0.1;
          elastic_max_shards = 12 }
    in
    let sh = Stores.open_sharded ~tweak engine in
    let store = sh.Stores.s_dyn in
    let _fill, _ =
      B.mc_fill_random store ~clients ~n:keyspace ~value_bytes:128 ~seed
    in
    let all = mixed_ops store in
    let phase_a = take (ops / 2) all in
    let conv = take (ops / 6) (drop (ops / 2) all) in
    let steady = drop (ops / 2 + ops / 6) all in
    let ra, _ = B.mc_run store ~clients phase_a in
    let rc, _ = B.mc_run store ~clients conv in
    let rs, _ = B.mc_run store ~clients steady in
    let st = store.Dyn.d_stats () in
    let splits = st.Pdb_kvs.Engine_stats.elastic_splits in
    let merges = st.Pdb_kvs.Engine_stats.elastic_merges in
    let shard_count = sh.Stores.s_shard_count () in
    store.Dyn.d_close ();
    let overall_kops =
      let t = ra.B.elapsed_ns +. rc.B.elapsed_ns +. rs.B.elapsed_ns in
      if t <= 0.0 then 0.0 else float_of_int ops /. (t /. 1e9) /. 1000.0
    in
    (ra, rc, rs, overall_kops, splits, merges, shard_count)
  in
  let results =
    List.map
      (fun engine ->
        let name = Stores.engine_name engine in
        let sa, sc, ss, s_all, _, _, _ = run_one engine ~elastic:false in
        let ea, ec, es, e_all, splits, merges, shards =
          run_one engine ~elastic:true
        in
        B.Json.metric ~store:name "steady_kops_static" ss.B.kops;
        B.Json.metric ~store:name "steady_kops_elastic" es.B.kops;
        B.Json.metric ~store:name "recovered_ratio" (rel ss.B.kops es.B.kops);
        B.Json.metric ~store:name "overall_kops_static" s_all;
        B.Json.metric ~store:name "overall_kops_elastic" e_all;
        B.Json.metric ~store:name "elastic_splits" (float_of_int splits);
        B.Json.metric ~store:name "elastic_merges" (float_of_int merges);
        (name, (sa, sc, ss, s_all), (ea, ec, es, e_all), splits, merges,
         shards))
      Stores.paper_stores
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Shifting hotspot (span 6%%, hop at midpoint), mixed 50/50, %d \
          clients"
         clients)
    ~header:
      [ "store"; "topology"; "phase-A"; "shift+conv"; "steady"; "overall";
        "splits"; "merges"; "shards" ]
    (List.concat_map
       (fun (name, (sa, sc, ss, s_all), (ea, ec, es, e_all), splits, merges,
             shards) ->
         [
           [ name; "static"; B.fmt_f ~digits:1 sa.B.kops;
             B.fmt_f ~digits:1 sc.B.kops; B.fmt_f ~digits:1 ss.B.kops;
             B.fmt_f ~digits:1 s_all; "0"; "0"; string_of_int shards0 ];
           [ ""; "elastic"; B.fmt_f ~digits:1 ea.B.kops;
             B.fmt_f ~digits:1 ec.B.kops; B.fmt_f ~digits:1 es.B.kops;
             B.fmt_f ~digits:1 e_all; string_of_int splits;
             string_of_int merges; string_of_int shards ];
         ])
       results);
  (* the acceptance shape, stated explicitly *)
  List.iter
    (fun (name, (_, _, ss, s_all), (_, _, es, e_all), splits, merges, _) ->
      pf
        "  %s: steady shifted-phase mixed static %.1f -> elastic %.1f \
         KOps/s (%.2fx, target >=1.3x); overall %.1f -> %.1f (%.2fx); \
         %d splits, %d merges\n"
        name ss.B.kops es.B.kops
        (rel ss.B.kops es.B.kops)
        s_all e_all (rel s_all e_all) splits merges)
    results

let run_elastic () = run_elastic_at ~n:n_medium ()
let run_elastic_smoke () = run_elastic_at ~n:(n_medium / 5) ()

(* ---------------- policy : compaction policy sweep ---------------------- *)

(* The compaction design space as configuration (lib/compaction/policy.ml):
   the same workload under each of the four named policies, on the engine
   that implements it (flsm_guarded -> the FLSM engine, the rest -> the
   leveled/tiered LSM engine).  Expected shape — the classic three-way
   tradeoff: tiered minimizes write-amp (runs stack, nothing rewrites),
   leveled minimizes scan cost and space-amp (one run per level), and
   lazy_leveled sits between (tiered uppers, leveled last level), with
   flsm_guarded near lazy_leveled (fragments stack inside guards but
   guard-grain compaction keeps levels bounded).

   The sweep runs with [max_levels = 4] so the scaled dataset actually
   reaches the last level — that is where lazy_leveled diverges from
   tiered and where space-amp differences live. *)

let run_policy_at ~n () =
  let policies = O.all_compaction_policies in
  let rows =
    List.map
      (fun p ->
        let name = O.compaction_policy_name p in
        let engine = Stores.engine_for_policy Stores.Hyperleveldb p in
        let tweak (o : O.t) =
          { o with O.compaction_policy = p; max_levels = 4 }
        in
        let store = Stores.open_engine ~tweak engine in
        let fill = B.fill_random store ~n ~value_bytes:value_1k ~seed in
        store.Dyn.d_flush ();
        let wa = B.write_amp store in
        (* space as written by the policy, before any manual compaction *)
        let live = n * (value_1k + 13) in
        let used = Env.total_file_bytes store.Dyn.d_env in
        let space_amp = float_of_int used /. float_of_int live in
        let reads = B.read_random store ~n ~ops:(n / 2) ~seed in
        (* scan cost: full forward iteration; tiered pays one iterator per
           run where leveled pays one per level *)
        let scan =
          B.measure store n (fun () ->
              let it = store.Dyn.d_iterator () in
              it.Iter.seek_to_first ();
              while it.Iter.valid () do
                ignore (it.Iter.key ());
                it.Iter.next ()
              done)
        in
        let triggers = B.trigger_summary store in
        store.Dyn.d_close ();
        B.Json.metric ~store:name "write_amp" wa;
        B.Json.metric ~store:name "space_amp" space_amp;
        B.Json.metric ~store:name "fill_kops" fill.B.kops;
        B.Json.metric ~store:name "read_kops" reads.B.kops;
        B.Json.metric ~store:name "scan_kops" scan.B.kops;
        ( [
            name;
            B.fmt_f fill.B.kops;
            B.fmt_f wa;
            B.fmt_f reads.B.kops;
            B.fmt_f scan.B.kops;
            B.fmt_f space_amp;
          ],
          (name, triggers) ))
      policies
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Compaction policy sweep — %dk x 1KB random fill, then reads and a \
          full scan (max_levels=4)"
         (n / 1000))
    ~header:
      [ "policy"; "fill KOps/s"; "write amp"; "read KOps/s"; "scan KOps/s";
        "space amp" ]
    (List.map fst rows);
  List.iter
    (fun (_, (name, triggers)) ->
      if triggers <> "" then pf "  %-14s %s\n" name triggers)
    rows

let run_policy () = run_policy_at ~n:n_medium ()
let run_policy_smoke () = run_policy_at ~n:(n_medium / 5) ()

(* ---------------- stability : sustained-ingest write stability --------- *)

(* Luo & Carey ("On Performance Stability in LSM-based Storage Systems"):
   under sustained ingest, p99.9 write latency and windowed throughput
   variance are governed by how writes are throttled and how background
   work is scheduled, not by total compaction volume.  This experiment
   drives the same long random-ingest run per engine x compaction policy
   twice — once under the seed Slowdown/Stop cliff and once under the
   debt-keyed token-bucket controller (Pdb_kvs.Backpressure) — and
   reports mean throughput, the coefficient of variation over ingest
   windows, the stall share of elapsed time, and write p99/p99.9.  The
   target shape, checked explicitly below: for every engine the smooth
   controller trades the cliff's stall bursts for pacing, lowering both
   the variance and the p99.9 tail at equal or better mean throughput. *)

let run_stability_at ~n ~per_window () =
  let combos =
    [
      (Stores.Pebblesdb, O.Flsm_guarded);
      (Stores.Hyperleveldb, O.Leveled);
      (Stores.Hyperleveldb, O.Tiered);
      (Stores.Hyperleveldb, O.Lazy_leveled);
      (Stores.Leveldb, O.Leveled);
      (Stores.Rocksdb, O.Leveled);
    ]
  in
  (* windows must be shorter than one L0 build-drain cycle (~4 flushes)
     or the cliff's burstiness averages out inside each window instead of
     showing up as inter-window variance *)
  let windows = max 2 (n / per_window) in
  let total = windows * per_window in
  let run_one engine policy throttle =
    let engine = Stores.engine_for_policy engine policy in
    (* The simulated scheduler drains synchronously, so L0 never exceeds
       the compaction trigger and the engines' stock slowdown/stop
       thresholds (8/12 files, calibrated for asynchronous real systems)
       are unreachable — the seed recorded zero explicit stalls at bench
       scale.  Scaling the thresholds below the trigger, like every other
       size in this repro is scaled, recreates the regime the throttle
       governs: ingest outpacing compaction. *)
    let tweak (o : O.t) =
      {
        o with
        O.compaction_policy = policy;
        throttle;
        l0_slowdown = 2;
        l0_stop = 4;
      }
    in
    let store = Stores.open_engine ~tweak engine in
    let clock = Env.clock store.Dyn.d_env in
    let rng = Pdb_util.Rng.create seed in
    let perm = Array.init total Fun.id in
    Pdb_util.Rng.shuffle rng perm;
    let lat = L.create () in
    let timed = L.instrument lat store in
    let kops = Array.make windows 0.0 in
    for w = 0 to windows - 1 do
      let phase =
        B.measure timed per_window (fun () ->
            for i = w * per_window to ((w + 1) * per_window) - 1 do
              timed.Dyn.d_put (B.key_of perm.(i))
                (Pdb_util.Rng.alpha rng value_1k)
            done)
      in
      kops.(w) <- phase.B.kops
    done;
    let st = store.Dyn.d_stats () in
    let stall_ns =
      st.Pdb_kvs.Engine_stats.stall_slowdown_ns
      +. st.Pdb_kvs.Engine_stats.stall_stop_ns
    in
    let elapsed_ns =
      Pdb_simio.Clock.elapsed_ns (Pdb_simio.Clock.snapshot clock)
    in
    store.Dyn.d_close ();
    let wf = float_of_int windows in
    let mean = Array.fold_left ( +. ) 0.0 kops /. wf in
    let var =
      Array.fold_left (fun acc k -> acc +. ((k -. mean) ** 2.0)) 0.0 kops /. wf
    in
    let cv = if mean <= 0.0 then 0.0 else 100.0 *. sqrt var /. mean in
    let h = L.hist lat L.Write in
    ( mean,
      cv,
      (if elapsed_ns <= 0.0 then 0.0 else 100.0 *. stall_ns /. elapsed_ns),
      H.percentile h 99.0 /. 1e3,
      H.percentile h 99.9 /. 1e3 )
  in
  let results =
    List.map
      (fun (engine, policy) ->
        let label =
          Printf.sprintf "%s/%s"
            (Stores.engine_name (Stores.engine_for_policy engine policy))
            (O.compaction_policy_name policy)
        in
        let per_throttle =
          List.map
            (fun throttle ->
              let r = run_one engine policy throttle in
              (throttle, r))
            [ O.Cliff; O.Token_bucket ]
        in
        List.iter
          (fun (throttle, (mean, cv, stall, p99, p999)) ->
            let store = label ^ "+" ^ O.throttle_name throttle in
            B.Json.metric ~store "mean_kops" mean;
            B.Json.metric ~store "window_cv_pct" cv;
            B.Json.metric ~store "stall_share_pct" stall;
            B.Json.metric ~store "write_p99_us" p99;
            B.Json.metric ~store "write_p999_us" p999)
          per_throttle;
        (label, per_throttle))
      combos
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Write stability — sustained ingest, %d windows x %d x 1KB puts: \
          windowed throughput variance and write tail, Slowdown/Stop cliff \
          vs debt-keyed token bucket"
         windows per_window)
    ~header:
      [ "engine/policy"; "throttle"; "KOps/s"; "cv %"; "stall %"; "p99 us";
        "p99.9 us" ]
    (List.concat_map
       (fun (label, per_throttle) ->
         List.map
           (fun (throttle, (mean, cv, stall, p99, p999)) ->
             [
               label;
               O.throttle_name throttle;
               B.fmt_f ~digits:1 mean;
               B.fmt_f ~digits:1 cv;
               B.fmt_f ~digits:1 stall;
               B.fmt_f ~digits:1 p99;
               B.fmt_f ~digits:1 p999;
             ])
           per_throttle)
       results);
  (* the acceptance shape, stated explicitly: smooth beats cliff on
     variance and tail without giving up mean throughput *)
  List.iter
    (fun (label, per_throttle) ->
      match
        (List.assoc_opt O.Cliff per_throttle,
         List.assoc_opt O.Token_bucket per_throttle)
      with
      | ( Some (c_mean, c_cv, _, _, c_p999),
          Some (t_mean, t_cv, _, _, t_p999) ) ->
        pf "  %s: cv %.1f%% -> %.1f%% p99.9 %.1f -> %.1fus mean %.1f -> \
            %.1f KOps/s%s\n"
          label c_cv t_cv c_p999 t_p999 c_mean t_mean
          (if t_cv <= c_cv && t_p999 <= c_p999 && t_mean >= c_mean then ""
           else "  [CLIFF WINS — investigate]")
      | _ -> ())
    results

let run_stability () = run_stability_at ~n:n_medium ~per_window:120 ()
let run_stability_smoke () =
  run_stability_at ~n:(n_medium / 5) ~per_window:120 ()

(* ---------------- read : read-path optimizations ------------------------ *)

(* Production-scale read path (DESIGN.md "Read path"): guard-aware seek
   filtering, index summaries above the table cache, and the per-device
   parallel-probe budget, measured on a read-heavy (YCSB C) and a
   scan-heavy (YCSB E, scans only) mix at 4 and 8 clients.  Each engine x
   policy combo runs twice — "on" is the default read path, "off"
   disables all three optimizations (seek_filtering=false,
   index_summary_stride=0, probe_budget_override=1).  Two invariants are
   checked explicitly: the read path must be invisible to the write path
   (load throughput unchanged, bytes on storage byte-identical between
   configs), and with it on PebblesDB must close its scan/read gap
   rather than widen it.  The table cache is shrunk well below the table
   count so evictions — where index summaries pay — actually happen. *)

let run_read_at ~n () =
  let combos =
    [
      (Stores.Pebblesdb, O.Flsm_guarded);
      (Stores.Hyperleveldb, O.Leveled);
      (Stores.Hyperleveldb, O.Tiered);
      (Stores.Hyperleveldb, O.Lazy_leveled);
      (Stores.Leveldb, O.Leveled);
      (Stores.Rocksdb, O.Leveled);
    ]
  in
  let configs =
    [
      ("on", Fun.id);
      ( "off",
        fun (o : O.t) ->
          {
            o with
            O.seek_filtering = false;
            index_summary_stride = 0;
            probe_budget_override = Some 1;
          } );
    ]
  in
  (* md5 over sorted (name, content) of every simulated file: the write
     path must leave identical bytes with the read path on or off *)
  let fingerprint env =
    Env.list env
    |> List.sort compare
    |> List.map (fun f ->
           f ^ ":"
           ^ Digest.to_hex
               (Digest.string
                  (Env.read_all env f ~hint:Pdb_simio.Device.Sequential_read)))
    |> String.concat "\n" |> Digest.string |> Digest.to_hex
  in
  let run_one engine policy cfg_tweak =
    let engine = Stores.engine_for_policy engine policy in
    let tweak (o : O.t) =
      cfg_tweak
        { o with O.compaction_policy = policy; table_cache_entries = 64 }
    in
    let store = Stores.open_engine ~tweak engine in
    let load =
      Pdb_ycsb.Runner.load ~clients:4 store ~records:n ~value_bytes:value_1k
        ~seed
    in
    store.Dyn.d_flush ();
    let phase spec ~clients ~operations =
      Pdb_ycsb.Runner.run ~clients store spec ~records:n ~operations
        ~value_bytes:value_1k ~seed
    in
    let c4 = phase Pdb_ycsb.Workload.workload_c ~clients:4 ~operations:(n / 2)
    and c8 = phase Pdb_ycsb.Workload.workload_c ~clients:8 ~operations:(n / 2)
    and e4 =
      phase Pdb_ycsb.Workload.workload_e_scan_only ~clients:4
        ~operations:(n / 10)
    in
    let st = store.Dyn.d_stats () in
    let fp = fingerprint store.Dyn.d_env in
    store.Dyn.d_close ();
    (load, c4, c8, e4, fp, st)
  in
  let results =
    List.map
      (fun (engine, policy) ->
        let label =
          Printf.sprintf "%s/%s"
            (Stores.engine_name (Stores.engine_for_policy engine policy))
            (O.compaction_policy_name policy)
        in
        let per_cfg =
          List.map
            (fun (cfg, cfg_tweak) ->
              let (load, c4, c8, e4, _, st) as r =
                run_one engine policy cfg_tweak
              in
              let store = label ^ "+" ^ cfg in
              B.Json.metric ~store "load_kops" load.Pdb_ycsb.Runner.kops_per_s;
              B.Json.metric ~store "c_kops_4c" c4.Pdb_ycsb.Runner.kops_per_s;
              B.Json.metric ~store "c_kops_8c" c8.Pdb_ycsb.Runner.kops_per_s;
              B.Json.metric ~store "e_kops_4c" e4.Pdb_ycsb.Runner.kops_per_s;
              B.Json.metric ~store "seek_bloom_skips"
                (float_of_int st.Pdb_kvs.Engine_stats.seek_bloom_skips);
              B.Json.metric ~store "summary_hits"
                (float_of_int st.Pdb_kvs.Engine_stats.summary_hits);
              (cfg, r))
            configs
        in
        (label, per_cfg))
      combos
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Read path — %dk x 1KB YCSB load (4 clients), then workload C \
          (reads) at 4/8 clients and scan-only E at 4 clients, read-path \
          optimizations on vs off"
         (n / 1000))
    ~header:
      [ "engine/policy"; "read path"; "load KOps/s"; "C@4 KOps/s";
        "C@8 KOps/s"; "E@4 KOps/s"; "filter skips"; "summary hits" ]
    (List.concat_map
       (fun (label, per_cfg) ->
         List.map
           (fun (cfg, (load, c4, c8, e4, _, st)) ->
             [
               label;
               cfg;
               B.fmt_f load.Pdb_ycsb.Runner.kops_per_s;
               B.fmt_f c4.Pdb_ycsb.Runner.kops_per_s;
               B.fmt_f c8.Pdb_ycsb.Runner.kops_per_s;
               B.fmt_f e4.Pdb_ycsb.Runner.kops_per_s;
               string_of_int st.Pdb_kvs.Engine_stats.seek_bloom_skips;
               string_of_int st.Pdb_kvs.Engine_stats.summary_hits;
             ])
           per_cfg)
       results);
  (* the acceptance shape, stated explicitly: reads and scans speed up
     (or hold) with the read path on, the write path is untouched, and
     the bytes on storage are identical either way *)
  List.iter
    (fun (label, per_cfg) ->
      match (List.assoc_opt "on" per_cfg, List.assoc_opt "off" per_cfg) with
      | ( Some (on_load, on_c4, _, on_e4, on_fp, _),
          Some (off_load, off_c4, _, off_e4, off_fp, _) ) ->
        let k r = r.Pdb_ycsb.Runner.kops_per_s in
        pf
          "  %s: C@4 %.1f -> %.1f (%.2fx) E@4 %.1f -> %.1f (%.2fx) load \
           %.1f -> %.1f, disk %s%s\n"
          label (k off_c4) (k on_c4)
          (rel (k off_c4) (k on_c4))
          (k off_e4) (k on_e4)
          (rel (k off_e4) (k on_e4))
          (k off_load) (k on_load)
          (if on_fp = off_fp then "identical" else "DIVERGED")
          (if
             on_fp = off_fp
             && k on_c4 >= 0.98 *. k off_c4
             && k on_e4 >= 0.98 *. k off_e4
           then ""
           else "  [OFF WINS — investigate]")
      | _ -> ())
    results

let run_read () = run_read_at ~n:n_medium ()
let run_read_smoke () = run_read_at ~n:(n_medium / 5) ()

(* ---------------- repl : replication over a simulated network ----------- *)

(* Log shipping vs file (compaction) shipping (DESIGN.md "Replication"):
   the same seeded fill against each paper engine, replicated to K
   backups over simulated 10GbE links.  Log shipping forwards each
   committed group and the backup re-runs the whole write path — its
   own flushes and compactions — so the wire carries user bytes once
   per backup but backup CPU duplicates the primary's.  File shipping
   mirrors sstables and manifest edits as flush/compaction installs
   them: the backup spends no compaction CPU at all, but the wire
   carries the engine's full write amplification — which is why the
   FLSM engine, with the lowest WA, ships the fewest file-shipping
   bytes among the LSM stores. *)
let run_repl_at ~n () =
  let strategies = [ O.Log_shipping; O.File_shipping ] in
  let run_one engine strategy k =
    let tweak (o : O.t) = { o with O.replicas = k; repl_strategy = strategy } in
    let store = Stores.open_engine ~tweak engine in
    let lat = L.create () in
    let timed = L.instrument lat store in
    let fill = B.fill_random timed ~n ~value_bytes:value_1k ~seed in
    store.Dyn.d_flush ();
    let st = store.Dyn.d_stats () in
    let net_bytes =
      st.Pdb_kvs.Engine_stats.repl_log_bytes_shipped
      + st.Pdb_kvs.Engine_stats.repl_file_bytes_shipped
    in
    let backup_cpu_ms =
      st.Pdb_kvs.Engine_stats.repl_backup_busy_ns /. 1e6
    in
    let ack_wait_ms = st.Pdb_kvs.Engine_stats.repl_ack_wait_ns /. 1e6 in
    let p99_us = H.percentile (L.hist lat L.Write) 99.0 /. 1e3 in
    let messages = st.Pdb_kvs.Engine_stats.repl_messages in
    store.Dyn.d_close ();
    (fill.B.kops, net_bytes, messages, backup_cpu_ms, ack_wait_ms, p99_us)
  in
  let results =
    List.concat_map
      (fun engine ->
        List.concat_map
          (fun strategy ->
            List.map
              (fun k ->
                let r = run_one engine strategy k in
                let (kops, net_bytes, _, backup_cpu_ms, ack_wait_ms, p99_us) =
                  r
                in
                let store =
                  Printf.sprintf "%s+%s+k%d"
                    (Stores.engine_name engine)
                    (O.repl_strategy_name strategy)
                    k
                in
                B.Json.metric ~store "fill_kops" kops;
                B.Json.metric ~store "net_mb" (B.mb net_bytes);
                B.Json.metric ~store "backup_cpu_ms" backup_cpu_ms;
                B.Json.metric ~store "ack_wait_ms" ack_wait_ms;
                B.Json.metric ~store "write_ack_p99_us" p99_us;
                ((engine, strategy, k), r))
              [ 1; 2 ])
          strategies)
      Stores.paper_stores
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Replication — %dk x 1KB fill, log vs file shipping to K backups \
          over 10GbE links"
         (n / 1000))
    ~header:
      [ "store"; "strategy"; "K"; "fill KOps/s"; "net MB"; "messages";
        "backup CPU ms"; "ack wait ms"; "write p99 us" ]
    (List.map
       (fun ((engine, strategy, k),
             (kops, net_bytes, messages, backup_cpu_ms, ack_wait_ms, p99_us))
       ->
         [
           Stores.engine_name engine;
           O.repl_strategy_name strategy;
           string_of_int k;
           B.fmt_f ~digits:1 kops;
           B.fmt_f (B.mb net_bytes);
           string_of_int messages;
           B.fmt_f ~digits:1 backup_cpu_ms;
           B.fmt_f ~digits:1 ack_wait_ms;
           B.fmt_f ~digits:1 p99_us;
         ])
       results);
  (* the acceptance shape, stated explicitly: per engine (at K=1), file
     shipping puts more bytes on the wire but relieves the backup of
     (at least 5x) the compaction CPU; and across engines, the FLSM
     store ships the fewest file-shipping bytes — fragmented guards
     rewrite the least data, so they also replicate the least data *)
  let find engine strategy =
    List.assoc_opt (engine, strategy, 1) results
  in
  List.iter
    (fun engine ->
      match (find engine O.Log_shipping, find engine O.File_shipping) with
      | ( Some (_, log_net, _, log_cpu, _, log_p99),
          Some (_, file_net, _, file_cpu, _, file_p99) ) ->
        let shape_ok =
          file_net > log_net && file_cpu *. 5.0 <= log_cpu
        in
        pf
          "  %s: net MB log %.1f file %.1f (%.2fx), backup CPU ms log %.1f \
           file %.1f, write p99 us log %.1f file %.1f%s\n"
          (Stores.engine_name engine)
          (B.mb log_net) (B.mb file_net)
          (rel (B.mb log_net) (B.mb file_net))
          log_cpu file_cpu log_p99 file_p99
          (if shape_ok then "" else "  [SHAPE MISS — investigate]")
      | _ -> ())
    Stores.paper_stores;
  (match
     List.filter_map
       (fun engine ->
         Option.map
           (fun (_, net, _, _, _, _) -> (engine, net))
           (find engine O.File_shipping))
       Stores.paper_stores
   with
   | (_, pebbles_net) :: rest when rest <> [] ->
     let fewest = List.for_all (fun (_, net) -> pebbles_net <= net) rest in
     pf "  file-shipping bytes: pebblesdb %.1f MB %s\n" (B.mb pebbles_net)
       (if fewest then "(fewest — lowest WA replicates least)"
        else "[NOT fewest — investigate]")
   | _ -> ())

let run_repl () = run_repl_at ~n:n_medium ()
let run_repl_smoke () = run_repl_at ~n:(n_medium / 5) ()

(* ---------------- registry ---------------------------------------------- *)

let all : experiment list =
  [
    { id = "fig1.1"; title = "Write amplification"; run = run_write_amp };
    { id = "sec2.2"; title = "B+-tree motivation"; run = run_btree_motivation };
    { id = "tab5.1"; title = "SSTable sizes"; run = run_sstable_sizes };
    { id = "tab5.2"; title = "Update throughput"; run = run_update_throughput };
    { id = "fig5.1b"; title = "Micro-benchmarks"; run = run_micro_single };
    { id = "fig5.1c"; title = "Multi-threaded micro"; run = run_micro_multi };
    { id = "fig5.1d"; title = "Cached dataset"; run = run_micro_cached };
    { id = "fig5.1e"; title = "Small values"; run = run_micro_small_values };
    { id = "fig5.2a"; title = "Aged file system"; run = run_aged };
    { id = "fig5.2b"; title = "Low memory"; run = run_low_memory };
    { id = "fig5.3"; title = "Space amplification"; run = run_space_amp };
    { id = "fig5.4"; title = "Time-series data"; run = run_time_series };
    { id = "fig5.5"; title = "YCSB"; run = run_ycsb };
    { id = "fig5.6"; title = "NoSQL applications"; run = run_apps };
    { id = "tab5.4"; title = "Memory consumption"; run = run_memory };
    { id = "sec5.5"; title = "CPU and bloom cost"; run = run_cpu_cost };
    { id = "ablation"; title = "Optimization ablation"; run = run_ablation };
    { id = "tuning"; title = "Tuning FLSM (sec 3.5)"; run = run_tuning };
    { id = "mt"; title = "Multithreaded clients (group commit)";
      run = run_multithreaded };
    { id = "mt-smoke"; title = "Multithreaded clients (reduced scale)";
      run = run_multithreaded_smoke };
    { id = "latency"; title = "Latency percentiles and stall profile";
      run = run_latency };
    { id = "latency-smoke"; title = "Latency percentiles (reduced scale)";
      run = run_latency_smoke };
    { id = "shard"; title = "Range-partitioned shards (scale-out)";
      run = run_shard };
    { id = "shard-smoke"; title = "Range-partitioned shards (reduced scale)";
      run = run_shard_smoke };
    { id = "elastic"; title = "Elastic resplit under a shifting hotspot";
      run = run_elastic };
    { id = "elastic-smoke"; title = "Elastic resplit (reduced scale)";
      run = run_elastic_smoke };
    { id = "policy"; title = "Compaction policy sweep";
      run = run_policy };
    { id = "policy-smoke"; title = "Compaction policy sweep (reduced scale)";
      run = run_policy_smoke };
    { id = "stability"; title = "Write stability under sustained ingest";
      run = run_stability };
    { id = "stability-smoke"; title = "Write stability (reduced scale)";
      run = run_stability_smoke };
    { id = "read"; title = "Read path: filtering, summaries, probe budget";
      run = run_read };
    { id = "read-smoke"; title = "Read path (reduced scale)";
      run = run_read_smoke };
    { id = "repl"; title = "Replication: log vs file shipping";
      run = run_repl };
    { id = "repl-smoke"; title = "Replication (reduced scale)";
      run = run_repl_smoke };
    { id = "future"; title = "Future-work features (ch. 7)";
      run = run_future_work };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_by_id id =
  match find id with
  | Some e ->
    B.Json.set_context e.id;
    pf "\n#### %s — %s\n" e.id e.title;
    e.run ()
  | None -> pf "unknown experiment id %s\n" id

(* the *-smoke ids duplicate full experiments at reduced scale — skip
   them in full runs *)
let run_all () =
  List.iter
    (fun e ->
      if not (String.ends_with ~suffix:"-smoke" e.id) then begin
        B.Json.set_context e.id;
        pf "\n#### %s — %s\n%!" e.id e.title;
        e.run ()
      end)
    all
