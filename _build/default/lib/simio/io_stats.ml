(** Cumulative IO counters for one simulated environment.

    Write amplification (Figure 1.1, Figure 5.1a, the YCSB Total-IO bars) is
    computed directly from these counters: it is [bytes_written] divided by
    the total user payload handed to the store. *)

type t = {
  mutable bytes_written : int;
  mutable bytes_read : int;
  mutable write_ops : int;
  mutable read_ops : int;
  mutable syncs : int;
  mutable files_created : int;
  mutable files_deleted : int;
}

let create () =
  {
    bytes_written = 0;
    bytes_read = 0;
    write_ops = 0;
    read_ops = 0;
    syncs = 0;
    files_created = 0;
    files_deleted = 0;
  }

let reset t =
  t.bytes_written <- 0;
  t.bytes_read <- 0;
  t.write_ops <- 0;
  t.read_ops <- 0;
  t.syncs <- 0;
  t.files_created <- 0;
  t.files_deleted <- 0

let snapshot t =
  {
    bytes_written = t.bytes_written;
    bytes_read = t.bytes_read;
    write_ops = t.write_ops;
    read_ops = t.read_ops;
    syncs = t.syncs;
    files_created = t.files_created;
    files_deleted = t.files_deleted;
  }

(** [diff later earlier] is the per-field difference — convenient for
    measuring one experiment phase. *)
let diff a b =
  {
    bytes_written = a.bytes_written - b.bytes_written;
    bytes_read = a.bytes_read - b.bytes_read;
    write_ops = a.write_ops - b.write_ops;
    read_ops = a.read_ops - b.read_ops;
    syncs = a.syncs - b.syncs;
    files_created = a.files_created - b.files_created;
    files_deleted = a.files_deleted - b.files_deleted;
  }

let pp ppf t =
  Fmt.pf ppf "written=%dB read=%dB wops=%d rops=%d syncs=%d" t.bytes_written
    t.bytes_read t.write_ops t.read_ops t.syncs
