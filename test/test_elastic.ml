(* Elastic sharding: live split/merge/migrate (lib/shard).

   Manual topology surgery checked against full-state reads; the durable
   TOPOLOGY lineage across close/reopen; the stale-balance regression
   (balance must be computed from live resident bytes, which a migration
   changes — not from cumulative routed bytes, which it cannot); the
   elasticity controller splitting a hot shard on its own; determinism
   of elastic runs across compaction worker counts; and the migration's
   observability contract: [migrate:*] spans on the destination
   scheduler's worker lanes, charged like any compaction. *)

module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Stores = Pdb_harness.Stores
module B = Pdb_harness.Bench_util
module O = Pdb_kvs.Options
module Stats = Pdb_kvs.Engine_stats
module Iter = Pdb_kvs.Iter
module Trace = Pdb_simio.Trace

let keyspace = 400
let key = B.key_of

(* elastic options with the controller parked: splits/merges only happen
   when the test forces them *)
let manual_elastic ?(shards = 2) o =
  {
    o with
    O.wal_sync_writes = true;
    memtable_bytes = 8 * 1024;
    shards;
    shard_splits =
      List.init (shards - 1) (fun i -> key ((i + 1) * keyspace / shards));
    elastic = true;
    elastic_window_ops = max_int;
  }

let scan (store : Dyn.dyn) =
  let it = store.Dyn.d_iterator () in
  it.Iter.seek_to_first ();
  let acc = ref [] in
  while it.Iter.valid () do
    acc := (it.Iter.key (), it.Iter.value ()) :: !acc;
    it.Iter.next ()
  done;
  List.rev !acc

let oracle_entries oracle =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
  |> List.sort compare

let check_matches ctx (sh : Stores.sharded) oracle =
  for i = 0 to keyspace - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "%s: get %s" ctx (key i))
      (Hashtbl.find_opt oracle (key i))
      (sh.Stores.s_dyn.Dyn.d_get (key i))
  done;
  Alcotest.(check bool)
    (ctx ^ ": scan equals oracle")
    true
    (scan sh.Stores.s_dyn = oracle_entries oracle);
  sh.Stores.s_dyn.Dyn.d_check_invariants ()

let fill sh oracle ~seed ~n =
  let rng = Pdb_util.Rng.create seed in
  for i = 0 to n - 1 do
    let k = key (Pdb_util.Rng.int rng keyspace) in
    if Pdb_util.Rng.int rng 6 = 0 then begin
      sh.Stores.s_dyn.Dyn.d_delete k;
      Hashtbl.remove oracle k
    end
    else begin
      let v = Printf.sprintf "v%06d-%s" i k in
      sh.Stores.s_dyn.Dyn.d_put k v;
      Hashtbl.replace oracle k v
    end
  done

(* ---------- manual split / merge correctness ---------- *)

let test_split_merge engine () =
  let sh =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2)
      ~env:(Env.create ()) engine
  in
  let oracle = Hashtbl.create 256 in
  fill sh oracle ~seed:11 ~n:1_500;
  Alcotest.(check int) "starts at 2 shards" 2 (sh.Stores.s_shard_count ());
  (* split shard 0 at a key strictly inside its range *)
  Alcotest.(check bool) "split accepted" true
    (sh.Stores.s_split ~shard:0 ~key:(key (keyspace / 4)));
  Alcotest.(check int) "3 shards after split" 3 (sh.Stores.s_shard_count ());
  Alcotest.(check (list string))
    "split vector gained the new key"
    [ key (keyspace / 4); key (keyspace / 2) ]
    (sh.Stores.s_splits ());
  check_matches "after split" sh oracle;
  (* rejected splits: outside the range, on the boundary, bad index *)
  Alcotest.(check bool) "split at own lower bound rejected" false
    (sh.Stores.s_split ~shard:1 ~key:(key (keyspace / 4)));
  Alcotest.(check bool) "split outside the range rejected" false
    (sh.Stores.s_split ~shard:0 ~key:(key (keyspace / 2)));
  Alcotest.(check bool) "split of a bogus shard rejected" false
    (sh.Stores.s_split ~shard:9 ~key:(key 1));
  Alcotest.(check int) "rejections change nothing" 3
    (sh.Stores.s_shard_count ());
  (* more churn on the post-split topology, then merge the pair back *)
  fill sh oracle ~seed:12 ~n:800;
  Alcotest.(check bool) "merge accepted" true (sh.Stores.s_merge ~at:0);
  Alcotest.(check int) "2 shards after merge" 2 (sh.Stores.s_shard_count ());
  Alcotest.(check (list string))
    "merge dropped the split key"
    [ key (keyspace / 2) ]
    (sh.Stores.s_splits ());
  check_matches "after merge" sh oracle;
  Alcotest.(check bool) "merge of last shard rejected" false
    (sh.Stores.s_merge ~at:1);
  fill sh oracle ~seed:13 ~n:400;
  check_matches "after post-merge churn" sh oracle;
  Alcotest.(check int) "topology version advanced per migration" 2
    (sh.Stores.s_topo_version ());
  sh.Stores.s_dyn.Dyn.d_close ()

(* A key deleted in the donor must stay dead when its range migrates
   into a survivor holding a stale (clipped-out) copy: the merge purges
   the survivor's stale keys below the incoming copies. *)
let test_merge_no_resurrection () =
  let sh =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2)
      ~env:(Env.create ()) Stores.Pebblesdb
  in
  let oracle = Hashtbl.create 64 in
  fill sh oracle ~seed:21 ~n:600;
  let probe = key (3 * keyspace / 4) in
  sh.Stores.s_dyn.Dyn.d_put probe "stale";
  Hashtbl.replace oracle probe "stale";
  (* move [3/4, end) into a new shard 2; shard 1 keeps a stale copy of
     [probe] on disk, clipped out of its routed range *)
  Alcotest.(check bool) "split accepted" true
    (sh.Stores.s_split ~shard:1 ~key:probe);
  sh.Stores.s_dyn.Dyn.d_delete probe;
  Hashtbl.remove oracle probe;
  (* merging shard 2 back must not resurrect the survivor's stale copy *)
  Alcotest.(check bool) "merge accepted" true (sh.Stores.s_merge ~at:1);
  Alcotest.(check (option string))
    "deleted key stays dead across the merge" None
    (sh.Stores.s_dyn.Dyn.d_get probe);
  check_matches "after merge-back" sh oracle;
  sh.Stores.s_dyn.Dyn.d_close ()

(* ---------- snapshots across a resplit ---------- *)

let test_snapshot_across_resplit () =
  let sh =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2)
      ~env:(Env.create ()) Stores.Pebblesdb
  in
  let oracle = Hashtbl.create 256 in
  fill sh oracle ~seed:31 ~n:1_000;
  let pinned = Hashtbl.copy oracle in
  let snap = (Option.get sh.Stores.s_snapshot) () in
  let get_at = Option.get sh.Stores.s_get_at in
  (* resplit under the pin: split, churn, merge the old pair *)
  Alcotest.(check bool) "split under pin" true
    (sh.Stores.s_split ~shard:0 ~key:(key (keyspace / 4)));
  fill sh oracle ~seed:32 ~n:800;
  Alcotest.(check bool) "merge under pin" true (sh.Stores.s_merge ~at:0);
  fill sh oracle ~seed:33 ~n:400;
  (* the pinned view reads the pre-migration world *)
  for i = 0 to keyspace - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "pinned view of %s survives the resplit" (key i))
      (Hashtbl.find_opt pinned (key i))
      (get_at snap (key i))
  done;
  let snap_scan =
    let it = (Option.get sh.Stores.s_iter_at) snap in
    it.Iter.seek_to_first ();
    let acc = ref [] in
    while it.Iter.valid () do
      acc := (it.Iter.key (), it.Iter.value ()) :: !acc;
      it.Iter.next ()
    done;
    List.rev !acc
  in
  Alcotest.(check bool) "pinned scan equals pinned oracle" true
    (snap_scan = oracle_entries pinned);
  sh.Stores.s_release snap;
  check_matches "live state after release" sh oracle;
  sh.Stores.s_dyn.Dyn.d_close ()

(* ---------- durable topology across reopen ---------- *)

let test_topology_reopen () =
  let env = Env.create () in
  let oracle = Hashtbl.create 256 in
  let sh =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2) ~env
      Stores.Pebblesdb
  in
  fill sh oracle ~seed:41 ~n:1_200;
  Alcotest.(check bool) "split accepted" true
    (sh.Stores.s_split ~shard:0 ~key:(key 77));
  Alcotest.(check bool) "second split accepted" true
    (sh.Stores.s_split ~shard:2 ~key:(key 300));
  let splits = sh.Stores.s_splits () in
  let version = sh.Stores.s_topo_version () in
  fill sh oracle ~seed:42 ~n:300;
  sh.Stores.s_dyn.Dyn.d_close ();
  (* reopen over the same file system: the installed topology — not the
     2-shard Options profile — is authoritative *)
  let sh2 =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2) ~env
      Stores.Pebblesdb
  in
  Alcotest.(check (list string))
    "reopen restores the installed split vector" splits
    (sh2.Stores.s_splits ());
  Alcotest.(check int) "reopen restores the topology version" version
    (sh2.Stores.s_topo_version ());
  Alcotest.(check int) "reopen restores the shard count" 4
    (sh2.Stores.s_shard_count ());
  check_matches "reopened state" sh2 oracle;
  sh2.Stores.s_dyn.Dyn.d_close ()

(* ---------- the stale-balance regression ---------- *)

(* Cumulative routed bytes report the historical write distribution; a
   migration cannot change them.  shard_balance must instead reflect
   what is resident right now: after migrating the hot half of a hot
   shard away (split), the reported balance improves even though the
   cumulative per-shard user bytes stay maximally skewed. *)
(* leveldb: its full compaction reclaims completely, so resident bytes
   track the migration tightly (the FLSM engine retains per-guard
   generations, which blurs the signal at this toy scale) *)
let test_balance_tracks_migration () =
  let sh =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2)
      ~env:(Env.create ()) Stores.Leveldb
  in
  (* every write lands in shard 0's range [0, keyspace/2) *)
  let rng = Pdb_util.Rng.create 51 in
  for i = 0 to 2_999 do
    let k = key (Pdb_util.Rng.int rng (keyspace / 2)) in
    sh.Stores.s_dyn.Dyn.d_put k (Printf.sprintf "w%06d" i)
  done;
  sh.Stores.s_dyn.Dyn.d_flush ();
  let before = sh.Stores.s_dyn.Dyn.d_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "one-sided load reads as imbalance (%.2f)"
       before.Stats.shard_balance)
    true
    (before.Stats.shard_balance > 1.5);
  (* split the hot shard at its midpoint: half its bytes migrate *)
  Alcotest.(check bool) "split accepted" true
    (sh.Stores.s_split ~shard:0 ~key:(key (keyspace / 4)));
  let after = sh.Stores.s_dyn.Dyn.d_stats () in
  (* the regression: cumulative user bytes still say "all of it went to
     the old hot shard" — only the resident basis can improve *)
  Alcotest.(check bool)
    (Printf.sprintf "cumulative user-bytes skew is unchanged (%.2f)"
       (Stats.balance_of after.Stats.shard_user_bytes))
    true
    (Stats.balance_of after.Stats.shard_user_bytes
     > after.Stats.shard_balance);
  Alcotest.(check bool)
    (Printf.sprintf "resident balance improves after the migration \
                     (%.2f -> %.2f)"
       before.Stats.shard_balance after.Stats.shard_balance)
    true
    (after.Stats.shard_balance < before.Stats.shard_balance -. 0.05);
  Alcotest.(check int) "resident breakdown matches the live shard count" 3
    (Array.length after.Stats.shard_resident_bytes);
  Alcotest.(check int) "migration counted" 1 after.Stats.elastic_splits;
  Alcotest.(check bool) "migrated bytes counted" true
    (after.Stats.elastic_migrated_bytes > 0);
  sh.Stores.s_dyn.Dyn.d_close ()

(* ---------- the controller ---------- *)

let auto_elastic o =
  {
    (manual_elastic ~shards:2 o) with
    O.elastic_window_ops = 512;
    elastic_split_ratio = 1.6;
    elastic_merge_ratio = 0.4;
    elastic_max_shards = 8;
  }

(* hammer one narrow range: the controller must split the hot shard at a
   sampled request key, and the split must land inside the hot range *)
let test_controller_splits_hot_shard () =
  let sh =
    Stores.open_sharded ~tweak:auto_elastic ~env:(Env.create ())
      Stores.Pebblesdb
  in
  let oracle = Hashtbl.create 256 in
  let rng = Pdb_util.Rng.create 61 in
  for i = 0 to 3_999 do
    (* 90% of the load on [0, keyspace/8) — all inside shard 0 *)
    let k =
      if Pdb_util.Rng.int rng 10 < 9 then
        key (Pdb_util.Rng.int rng (keyspace / 8))
      else key (Pdb_util.Rng.int rng keyspace)
    in
    let v = Printf.sprintf "h%06d" i in
    sh.Stores.s_dyn.Dyn.d_put k v;
    Hashtbl.replace oracle k v
  done;
  let st = sh.Stores.s_dyn.Dyn.d_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "controller split the hot shard (%d splits)"
       st.Stats.elastic_splits)
    true
    (st.Stats.elastic_splits >= 1);
  Alcotest.(check bool) "shard count grew" true
    (sh.Stores.s_shard_count () > 2);
  (* at least one new split key lies inside the hot range *)
  Alcotest.(check bool) "a split landed inside the hot range" true
    (List.exists
       (fun s -> String.compare s (key (keyspace / 8)) < 0)
       (sh.Stores.s_splits ()));
  check_matches "post-controller state" sh oracle;
  sh.Stores.s_dyn.Dyn.d_close ()

(* a cold adjacent pair merges once the load moves away *)
let test_controller_merges_cold_pair () =
  let sh =
    Stores.open_sharded
      ~tweak:(fun o ->
        {
          (auto_elastic o) with
          O.shards = 4;
          shard_splits =
            List.init 3 (fun i -> key ((i + 1) * keyspace / 4));
          elastic_split_ratio = 100.0 (* merges only *);
        })
      ~env:(Env.create ()) Stores.Pebblesdb
  in
  let rng = Pdb_util.Rng.create 71 in
  for i = 0 to 2_999 do
    (* all load on the last quarter: shards 0-2 go cold *)
    let k = key (3 * keyspace / 4 + Pdb_util.Rng.int rng (keyspace / 4)) in
    sh.Stores.s_dyn.Dyn.d_put k (Printf.sprintf "m%06d" i)
  done;
  let st = sh.Stores.s_dyn.Dyn.d_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "controller merged cold pairs (%d merges)"
       st.Stats.elastic_merges)
    true
    (st.Stats.elastic_merges >= 1);
  Alcotest.(check bool) "shard count shrank" true
    (sh.Stores.s_shard_count () < 4);
  sh.Stores.s_dyn.Dyn.d_close ()

(* ---------- determinism across compaction worker counts ---------- *)

let files_of env =
  Env.list env
  |> List.map (fun name ->
         (name, Env.read_all env name ~hint:Pdb_simio.Device.Sequential_read))
  |> List.sort compare

(* the controller's decisions are op-count windowed and its split keys
   come from a deterministic reservoir: worker count must change modeled
   time only — same final topology, byte-identical files *)
let test_worker_count_determinism engine () =
  let run ~threads =
    let env = Env.create () in
    let sh =
      Stores.open_sharded
        ~tweak:(fun o ->
          { (auto_elastic o) with O.compaction_threads = threads })
        ~env engine
    in
    let rng = Pdb_util.Rng.create 81 in
    for i = 0 to 3_499 do
      let k =
        if Pdb_util.Rng.int rng 10 < 8 then
          key (Pdb_util.Rng.int rng (keyspace / 6))
        else key (Pdb_util.Rng.int rng keyspace)
      in
      if Pdb_util.Rng.int rng 7 = 0 then sh.Stores.s_dyn.Dyn.d_delete k
      else sh.Stores.s_dyn.Dyn.d_put k (Printf.sprintf "d%06d" i)
    done;
    let st = sh.Stores.s_dyn.Dyn.d_stats () in
    let out =
      ( sh.Stores.s_splits (),
        sh.Stores.s_topo_version (),
        st.Stats.elastic_splits,
        st.Stats.elastic_merges )
    in
    sh.Stores.s_dyn.Dyn.d_close ();
    (out, files_of env)
  in
  let (splits1, v1, s1, m1), f1 = run ~threads:1 in
  let (splits4, v4, s4, m4), f4 = run ~threads:4 in
  Alcotest.(check bool) "the run actually resplit" true (s1 >= 1);
  Alcotest.(check (list string))
    "identical split decisions at 1 vs 4 workers" splits1 splits4;
  Alcotest.(check int) "identical topology version" v1 v4;
  Alcotest.(check (pair int int))
    "identical split/merge counts" (s1, m1) (s4, m4);
  Alcotest.(check (list string))
    "same file set at 1 vs 4 workers" (List.map fst f1) (List.map fst f4);
  List.iter2
    (fun (name, b1) (_, b4) ->
      Alcotest.(check bool)
        (name ^ " byte-identical at 1 vs 4 workers")
        true (String.equal b1 b4))
    f1 f4

(* ---------- migration observability ---------- *)

(* migration copy work must surface as [migrate:*] spans on the
   destination scheduler's worker lanes — the same timeline rows (and
   backlog accounting) as compaction *)
let test_migrate_spans_on_worker_lanes () =
  let env = Env.create () in
  let tr = Trace.create () in
  Env.set_tracer env tr;
  let sh =
    Stores.open_sharded ~tweak:(manual_elastic ~shards:2) ~env
      Stores.Pebblesdb
  in
  let oracle = Hashtbl.create 256 in
  fill sh oracle ~seed:91 ~n:1_500;
  Alcotest.(check bool) "split accepted" true
    (sh.Stores.s_split ~shard:0 ~key:(key (keyspace / 4)));
  let evs = Trace.events tr in
  let worker_lane (e : Trace.event) =
    String.length e.Trace.lane >= 6 && String.sub e.Trace.lane 0 6 = "worker"
  in
  let copy_spans =
    List.filter
      (fun (e : Trace.event) -> e.Trace.name = "migrate:copy")
      evs
  in
  Alcotest.(check bool) "migrate:copy spans present" true (copy_spans <> []);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "migrate:copy span on a worker lane (got %s)"
           e.Trace.lane)
        true (worker_lane e))
    copy_spans;
  Alcotest.(check bool) "migrate:clean spans present" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.name = "migrate:clean")
       evs);
  Alcotest.(check bool) "router install instant present" true
    (List.exists
       (fun (e : Trace.event) ->
         e.Trace.cat = "migration" && e.Trace.lane = "router")
       evs);
  check_matches "traced split" sh oracle;
  sh.Stores.s_dyn.Dyn.d_close ()

let () =
  Alcotest.run "elastic"
    [
      ( "split/merge",
        [
          Alcotest.test_case "pebblesdb split+merge" `Quick
            (test_split_merge Stores.Pebblesdb);
          Alcotest.test_case "leveldb split+merge" `Quick
            (test_split_merge Stores.Leveldb);
          Alcotest.test_case "kyotocabinet-sim split+merge (inline copy)"
            `Quick
            (test_split_merge Stores.Btree);
          Alcotest.test_case "merge does not resurrect deletes" `Quick
            test_merge_no_resurrection;
        ] );
      ( "fences",
        [
          Alcotest.test_case "snapshot pinned across a resplit" `Quick
            test_snapshot_across_resplit;
        ] );
      ( "durability",
        [
          Alcotest.test_case "topology survives reopen" `Quick
            test_topology_reopen;
        ] );
      ( "balance",
        [
          Alcotest.test_case "balance tracks migration (stale-balance \
                              regression)"
            `Quick test_balance_tracks_migration;
        ] );
      ( "controller",
        [
          Alcotest.test_case "splits the hot shard" `Quick
            test_controller_splits_hot_shard;
          Alcotest.test_case "merges cold pairs" `Quick
            test_controller_merges_cold_pair;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pebblesdb 1 vs 4 workers" `Quick
            (test_worker_count_determinism Stores.Pebblesdb);
          Alcotest.test_case "leveldb 1 vs 4 workers" `Quick
            (test_worker_count_determinism Stores.Leveldb);
        ] );
      ( "observability",
        [
          Alcotest.test_case "migrate spans on worker lanes" `Quick
            test_migrate_spans_on_worker_lanes;
        ] );
    ]
