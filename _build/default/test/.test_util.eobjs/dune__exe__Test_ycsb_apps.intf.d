test/test_ycsb_apps.mli:
