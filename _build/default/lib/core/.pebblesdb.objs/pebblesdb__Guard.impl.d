lib/core/guard.ml: Array List Pdb_kvs Pdb_sstable String
