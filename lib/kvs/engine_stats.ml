(** Per-engine operation counters, shared by LSM and FLSM stores.

    These are measurement hooks for the evaluation: compaction volume
    (write amplification breakdown), bloom effectiveness, sstable reads per
    query (the FLSM read-overhead analysis in §4.1/§4.2), and stall
    accounting. *)

type t = {
  mutable user_bytes_written : int;  (** key+value payload accepted *)
  mutable flushes : int;
  mutable compactions : int;
  mutable compaction_bytes_read : int;
  mutable compaction_bytes_written : int;
  mutable sstables_built : int;
  mutable gets : int;
  mutable puts : int;
  mutable deletes : int;
  mutable seeks : int;
  mutable nexts : int;
  mutable sstables_examined : int;  (** tables consulted across all queries *)
  mutable bloom_checks : int;
  mutable bloom_negative : int;  (** tables skipped thanks to a filter *)
  mutable seek_bloom_checks : int;
      (** tables evaluated against the seek/scan range+prefix filter *)
  mutable seek_bloom_skips : int;
      (** tables skipped on the seek path: provably disjoint from the
          probe range, so no index probe or data-block read was issued *)
  mutable summary_hits : int;
      (** evicted-table reopens served by a resident index summary (one
          bounded index read instead of footer+index+filter) *)
  mutable summary_misses : int;
      (** full-cost table opens: no summary existed yet *)
  mutable write_stalls : int;
  mutable guards_committed : int;  (** FLSM only *)
  mutable guards_empty : int;  (** FLSM only; refreshed on demand *)
  mutable seek_compactions : int;  (** FLSM only *)
  mutable write_breakdown : (string * int) list;
      (** bytes written per compaction category (diagnostics) *)
  mutable compaction_by_trigger : (string * (int * int)) list;
      (** per-trigger (runs, estimated bytes), keyed by the job trigger
          name ("flush", "l0", "size", "cap", ...), mirrored from the
          scheduler and summed across shards *)
  (* background-scheduler counters, mirrored from the compaction
     scheduler when an engine reports stats *)
  mutable compaction_jobs : int;  (** jobs drained by the scheduler *)
  mutable compaction_queue_peak : int;  (** max pending jobs observed *)
  mutable compaction_backlog_peak_bytes : int;
  mutable compaction_serialized_jobs : int;
      (** jobs delayed by a conflicting footprint *)
  mutable compaction_pending : int;
      (** jobs queued but not yet run at the time of the stats call *)
  mutable compaction_backlog_bytes : int;
      (** estimated bytes across currently pending jobs *)
  mutable stall_slowdown_ns : float;
  mutable stall_stop_ns : float;
  mutable worker_busy_ns : float array;
      (** per-lane busy time; general lanes first, then any reserved
          flush lanes *)
  mutable flush_busy_ns : float;
      (** busy time on the reserved flush lane(s); 0 when flushes share
          the general lanes *)
  (* WAL-recovery accounting, set once at open from the log reader's
     recovery report *)
  mutable wal_records_recovered : int;
      (** complete WAL records replayed at the last open *)
  mutable wal_bytes_dropped : int;
      (** WAL bytes lost to a torn/corrupt tail or orphaned fragments *)
  mutable wal_batches_rejected : int;
      (** well-framed WAL records whose batch payload failed to decode at
          the last open — counted, never silently skipped *)
  (* group-commit accounting (LevelDB-style writers queue) *)
  mutable write_groups : int;  (** commit groups formed, singletons included *)
  mutable write_group_batches : int;
      (** batches committed through groups; [/ write_groups] is the
          average group size *)
  mutable group_syncs_saved : int;
      (** WAL syncs amortised away by grouping under [wal_sync_writes]:
          per group, one less than the batches covered by the end-of-group
          sync — batches retired by a mid-group flush/checkpoint (their
          log was rotated away) don't count *)
  mutable client_wait_ns : float array;
      (** per-client foreground blocked time (device contention + waiting
          on a group leader), set by the multi-client driver *)
  (* cache effectiveness, mirrored from the block/table caches on every
     stats read.  NOTE: when several shards share one cache, each shard
     mirrors the *same* underlying counters — aggregation must count them
     once (see {!aggregate}). *)
  mutable block_cache_hits : int;
  mutable block_cache_misses : int;
  mutable table_cache_hits : int;
  mutable table_cache_misses : int;
  (* primary–backup replication, set by the repl layer's stats wrapper *)
  mutable repl_backups : int;  (** live backups behind this record *)
  mutable repl_log_bytes_shipped : int;
      (** WAL-record bytes forwarded under log shipping *)
  mutable repl_file_bytes_shipped : int;
      (** sstable/manifest bytes forwarded under file shipping *)
  mutable repl_messages : int;  (** network messages across all links *)
  mutable repl_ack_wait_ns : float;
      (** foreground time spent waiting on backup acks *)
  mutable repl_backup_busy_ns : float;
      (** backup-side flush/compaction worker time (log shipping re-runs
          the merge work; file shipping leaves backups idle) *)
  (* sharding breakdown, set by the shard store's aggregation *)
  mutable shards : int;  (** engine instances behind this stats record *)
  mutable shard_user_bytes : int array;
      (** user payload routed to each shard (cumulative — historical
          write distribution, not what is resident now) *)
  mutable shard_resident_bytes : int array;
      (** live on-disk bytes per shard (WAL + sstables + metadata),
          set by the shard store from the environment's file sizes *)
  mutable shard_ops : int array;
      (** operations (reads and writes) routed to each shard,
          cumulative — the elasticity controller's load signal *)
  mutable shard_balance : float;
      (** max/mean of per-shard {e resident} bytes — 1.0 is perfectly
          even.  The aggregate falls back to cumulative user write
          bytes when no resident breakdown is available; the shard
          store overwrites it with the resident-based figure (cumulative
          bytes report the historical write distribution, which a
          migration can no longer change) *)
  (* elastic sharding, set by the shard store *)
  mutable elastic_splits : int;  (** live shard splits performed *)
  mutable elastic_merges : int;  (** live shard merges performed *)
  mutable elastic_migrated_bytes : int;
      (** key+value payload moved between shards by migrations *)
}

let bump_breakdown t category bytes =
  let current =
    match List.assoc_opt category t.write_breakdown with
    | Some v -> v
    | None -> 0
  in
  t.write_breakdown <-
    (category, current + bytes)
    :: List.remove_assoc category t.write_breakdown

let bump_trigger t trig ~runs ~bytes =
  let r0, b0 =
    match List.assoc_opt trig t.compaction_by_trigger with
    | Some rb -> rb
    | None -> (0, 0)
  in
  t.compaction_by_trigger <-
    (trig, (r0 + runs, b0 + bytes))
    :: List.remove_assoc trig t.compaction_by_trigger

let create () =
  {
    user_bytes_written = 0;
    flushes = 0;
    compactions = 0;
    compaction_bytes_read = 0;
    compaction_bytes_written = 0;
    sstables_built = 0;
    gets = 0;
    puts = 0;
    deletes = 0;
    seeks = 0;
    nexts = 0;
    sstables_examined = 0;
    bloom_checks = 0;
    bloom_negative = 0;
    seek_bloom_checks = 0;
    seek_bloom_skips = 0;
    summary_hits = 0;
    summary_misses = 0;
    write_stalls = 0;
    guards_committed = 0;
    guards_empty = 0;
    seek_compactions = 0;
    write_breakdown = [];
    compaction_by_trigger = [];
    compaction_jobs = 0;
    compaction_queue_peak = 0;
    compaction_backlog_peak_bytes = 0;
    compaction_serialized_jobs = 0;
    compaction_pending = 0;
    compaction_backlog_bytes = 0;
    stall_slowdown_ns = 0.0;
    stall_stop_ns = 0.0;
    worker_busy_ns = [||];
    flush_busy_ns = 0.0;
    wal_records_recovered = 0;
    wal_bytes_dropped = 0;
    wal_batches_rejected = 0;
    write_groups = 0;
    write_group_batches = 0;
    group_syncs_saved = 0;
    client_wait_ns = [||];
    block_cache_hits = 0;
    block_cache_misses = 0;
    table_cache_hits = 0;
    table_cache_misses = 0;
    repl_backups = 0;
    repl_log_bytes_shipped = 0;
    repl_file_bytes_shipped = 0;
    repl_messages = 0;
    repl_ack_wait_ns = 0.0;
    repl_backup_busy_ns = 0.0;
    shards = 1;
    shard_user_bytes = [||];
    shard_resident_bytes = [||];
    shard_ops = [||];
    shard_balance = 1.0;
    elastic_splits = 0;
    elastic_merges = 0;
    elastic_migrated_bytes = 0;
  }

(** [balance_of per_shard] is max/mean of a per-shard byte (or op)
    breakdown — 1.0 is perfectly even, N means one shard carries
    everything.  Empty or all-zero breakdowns report 1.0. *)
let balance_of per_shard =
  let n = Array.length per_shard in
  if n = 0 then 1.0
  else begin
    let total = Array.fold_left ( + ) 0 per_shard in
    if total = 0 then 1.0
    else
      let mean = float_of_int total /. float_of_int n in
      float_of_int (Array.fold_left max 0 per_shard) /. mean
  end

(** [aggregate ~shared_cache per_shard] combines the stats of independent
    shard engines into one record: counters and stall times sum,
    per-worker busy arrays concatenate (every shard's scheduler lanes are
    distinct workers), write-breakdown categories merge, and scheduler
    peaks take the max across shards (each peak is a per-scheduler
    watermark; summing watermarks reached at different times would
    overstate the queue that ever existed at once).

    Cache counters are the exception: with [shared_cache] every shard
    mirrors the {e same} block-cache counters, so they are taken once —
    summing them would multiply every hit by the shard count.  Table
    caches are always per-shard (their keys are per-shard file numbers)
    and therefore always sum.

    [shards], [shard_user_bytes] and [shard_balance] describe the
    breakdown; [client_wait_ns] is owned by the multi-client driver and
    left empty here. *)
let aggregate ~shared_cache per_shard =
  let t = create () in
  let shard_bytes =
    Array.of_list (List.map (fun s -> s.user_bytes_written) per_shard)
  in
  List.iter
    (fun s ->
      t.user_bytes_written <- t.user_bytes_written + s.user_bytes_written;
      t.flushes <- t.flushes + s.flushes;
      t.compactions <- t.compactions + s.compactions;
      t.compaction_bytes_read <-
        t.compaction_bytes_read + s.compaction_bytes_read;
      t.compaction_bytes_written <-
        t.compaction_bytes_written + s.compaction_bytes_written;
      t.sstables_built <- t.sstables_built + s.sstables_built;
      t.gets <- t.gets + s.gets;
      t.puts <- t.puts + s.puts;
      t.deletes <- t.deletes + s.deletes;
      t.seeks <- t.seeks + s.seeks;
      t.nexts <- t.nexts + s.nexts;
      t.sstables_examined <- t.sstables_examined + s.sstables_examined;
      t.bloom_checks <- t.bloom_checks + s.bloom_checks;
      t.bloom_negative <- t.bloom_negative + s.bloom_negative;
      t.seek_bloom_checks <- t.seek_bloom_checks + s.seek_bloom_checks;
      t.seek_bloom_skips <- t.seek_bloom_skips + s.seek_bloom_skips;
      (* summaries live in the per-shard table caches, so they always sum *)
      t.summary_hits <- t.summary_hits + s.summary_hits;
      t.summary_misses <- t.summary_misses + s.summary_misses;
      t.write_stalls <- t.write_stalls + s.write_stalls;
      t.guards_committed <- t.guards_committed + s.guards_committed;
      t.guards_empty <- t.guards_empty + s.guards_empty;
      t.seek_compactions <- t.seek_compactions + s.seek_compactions;
      List.iter
        (fun (category, bytes) -> bump_breakdown t category bytes)
        s.write_breakdown;
      List.iter
        (fun (trig, (runs, bytes)) -> bump_trigger t trig ~runs ~bytes)
        s.compaction_by_trigger;
      t.compaction_jobs <- t.compaction_jobs + s.compaction_jobs;
      t.compaction_queue_peak <-
        max t.compaction_queue_peak s.compaction_queue_peak;
      t.compaction_backlog_peak_bytes <-
        max t.compaction_backlog_peak_bytes s.compaction_backlog_peak_bytes;
      t.compaction_serialized_jobs <-
        t.compaction_serialized_jobs + s.compaction_serialized_jobs;
      t.compaction_pending <- t.compaction_pending + s.compaction_pending;
      t.compaction_backlog_bytes <-
        t.compaction_backlog_bytes + s.compaction_backlog_bytes;
      t.stall_slowdown_ns <- t.stall_slowdown_ns +. s.stall_slowdown_ns;
      t.stall_stop_ns <- t.stall_stop_ns +. s.stall_stop_ns;
      t.worker_busy_ns <- Array.append t.worker_busy_ns s.worker_busy_ns;
      t.flush_busy_ns <- t.flush_busy_ns +. s.flush_busy_ns;
      t.wal_records_recovered <-
        t.wal_records_recovered + s.wal_records_recovered;
      t.wal_bytes_dropped <- t.wal_bytes_dropped + s.wal_bytes_dropped;
      t.wal_batches_rejected <-
        t.wal_batches_rejected + s.wal_batches_rejected;
      t.write_groups <- t.write_groups + s.write_groups;
      t.write_group_batches <- t.write_group_batches + s.write_group_batches;
      t.group_syncs_saved <- t.group_syncs_saved + s.group_syncs_saved;
      (if shared_cache then begin
         (* one cache behind every shard: mirrors are identical, count once *)
         t.block_cache_hits <- max t.block_cache_hits s.block_cache_hits;
         t.block_cache_misses <- max t.block_cache_misses s.block_cache_misses
       end
       else begin
         t.block_cache_hits <- t.block_cache_hits + s.block_cache_hits;
         t.block_cache_misses <- t.block_cache_misses + s.block_cache_misses
       end);
      t.table_cache_hits <- t.table_cache_hits + s.table_cache_hits;
      t.table_cache_misses <- t.table_cache_misses + s.table_cache_misses;
      (* each shard replicates independently: links and backups sum *)
      t.repl_backups <- t.repl_backups + s.repl_backups;
      t.repl_log_bytes_shipped <-
        t.repl_log_bytes_shipped + s.repl_log_bytes_shipped;
      t.repl_file_bytes_shipped <-
        t.repl_file_bytes_shipped + s.repl_file_bytes_shipped;
      t.repl_messages <- t.repl_messages + s.repl_messages;
      t.repl_ack_wait_ns <- t.repl_ack_wait_ns +. s.repl_ack_wait_ns;
      t.repl_backup_busy_ns <- t.repl_backup_busy_ns +. s.repl_backup_busy_ns)
    per_shard;
  t.shards <- List.length per_shard;
  t.shard_user_bytes <- shard_bytes;
  t.shard_balance <- balance_of shard_bytes;
  t

let pp ppf t =
  Fmt.pf ppf
    "user=%dB flushes=%d compactions=%d cread=%dB cwritten=%dB tables=%d \
     stalls=%d"
    t.user_bytes_written t.flushes t.compactions t.compaction_bytes_read
    t.compaction_bytes_written t.sstables_built t.write_stalls
