(* Recovery torture: seeded crash-point sweeps per engine, checked against
   an in-memory oracle (see Pdb_harness.Crash_torture). *)

module Torture = Pdb_harness.Crash_torture
module Stores = Pdb_harness.Stores
module Env = Pdb_simio.Env

let seed =
  match Sys.getenv_opt "TORTURE_SEED" with
  | Some s -> int_of_string s
  | None -> 0xFA17

let check_engine engine () =
  let r = Torture.run ~seed engine in
  (match r.Torture.failures with
   | [] -> ()
   | fs ->
     List.iter
       (fun (point, msg) ->
         Printf.printf "[%s crash@%d] %s\n" r.Torture.engine point msg)
       fs);
  Alcotest.(check (list (pair int string)))
    "oracle-consistent recovery at every crash point" [] r.Torture.failures;
  Alcotest.(check bool)
    (Printf.sprintf "sweeps >= 50 crash points (got %d)" r.Torture.crash_points)
    true
    (r.Torture.crash_points >= 50);
  Alcotest.(check bool) "some crashes tore unsynced data" true
    (r.Torture.torn_crashes > 0);
  Alcotest.(check bool) "some points double-crashed during recovery" true
    (r.Torture.double_crashes > 0)

(* The same sweep against the range-partitioned store: crash points land
   inside one shard's flush/compaction/WAL rotation (the other shards
   idle), and whole-store recovery — including crash-during-recovery
   points — must still match the oracle. *)
let check_sharded engine () =
  let r = Torture.run ~seed ~shards:4 ~max_points:48 engine in
  (match r.Torture.failures with
   | [] -> ()
   | fs ->
     List.iter
       (fun (point, msg) ->
         Printf.printf "[%s crash@%d] %s\n" r.Torture.engine point msg)
       fs);
  Alcotest.(check (list (pair int string)))
    "oracle-consistent sharded recovery at every crash point" []
    r.Torture.failures;
  Alcotest.(check bool)
    (Printf.sprintf "sweeps >= 30 crash points (got %d)" r.Torture.crash_points)
    true
    (r.Torture.crash_points >= 30);
  Alcotest.(check bool) "some points double-crashed during recovery" true
    (r.Torture.double_crashes > 0)

(* Migration torture: the sweep's trace live-splits, merges and migrates
   shards at scheduled op indices, so crash points land inside every
   phase of a migration — fence, copy jobs, the durable topology
   install, the post-install clean — and inside recovery itself.  Data
   must recover to the oracle and the topology must land wholly old or
   wholly new. *)
let check_elastic engine () =
  let r = Torture.run_elastic ~seed engine in
  (match r.Torture.failures with
   | [] -> ()
   | fs ->
     List.iter
       (fun (point, msg) ->
         Printf.printf "[%s crash@%d] %s\n" r.Torture.engine point msg)
       fs);
  Alcotest.(check (list (pair int string)))
    "oracle-consistent elastic recovery at every crash point" []
    r.Torture.failures;
  Alcotest.(check bool)
    (Printf.sprintf "sweeps >= 50 crash points (got %d)" r.Torture.crash_points)
    true
    (r.Torture.crash_points >= 50);
  Alcotest.(check bool) "some points double-crashed during recovery" true
    (r.Torture.double_crashes > 0)

(* The same sweep under a non-default compaction policy: tiered levels'
   stacked runs and whole-level merges (and the lazy-leveled hybrid) must
   recover through the same MANIFEST/WAL machinery. *)
let check_policy policy engine () =
  let r = Torture.run ~seed ~policy ~max_points:48 engine in
  (match r.Torture.failures with
   | [] -> ()
   | fs ->
     List.iter
       (fun (point, msg) ->
         Printf.printf "[%s crash@%d] %s\n" r.Torture.engine point msg)
       fs);
  Alcotest.(check (list (pair int string)))
    "oracle-consistent recovery at every crash point" [] r.Torture.failures;
  Alcotest.(check bool)
    (Printf.sprintf "sweeps >= 30 crash points (got %d)" r.Torture.crash_points)
    true
    (r.Torture.crash_points >= 30)

let test_background_crashes_covered () =
  (* across the paper's LSM and FLSM engines the sweep must hit crash
     points inside background flush/compaction jobs *)
  let total =
    List.fold_left
      (fun acc engine ->
        let r = Torture.run ~seed ~max_points:32 engine in
        Alcotest.(check (list (pair int string)))
          (r.Torture.engine ^ " recovery consistent")
          [] r.Torture.failures;
        acc + r.Torture.background_crashes)
      0
      [ Stores.Leveldb; Stores.Pebblesdb ]
  in
  Alcotest.(check bool) "background crash points reached" true (total > 0)

let test_recovery_report_surfaces () =
  (* an unsynced WAL tail lost to a crash shows up in the reopened
     engine's stats rather than vanishing silently *)
  let env = Env.create () in
  let tweak o =
    { o with Pdb_kvs.Options.wal_sync_writes = false; memtable_bytes = 1 lsl 20 }
  in
  let db = Stores.open_engine ~tweak ~env Stores.Leveldb in
  let module Dyn = Pdb_kvs.Store_intf in
  for i = 0 to 9 do
    db.Dyn.d_put (Printf.sprintf "k%d" i) "synced"
  done;
  db.Dyn.d_flush ();
  (* flush rotates the WAL; these land in the new log, unsynced *)
  for i = 0 to 9 do
    db.Dyn.d_put (Printf.sprintf "u%d" i) "unsynced"
  done;
  (* tear the unsynced tail: keep a 4 KB-granular prefix, garble the rest *)
  Env.set_fault_plan env
    (Env.Fault_plan.create ~seed:3 ~garbage_tail_prob:1.0 ~crash_after:max_int
       ());
  Env.crash env;
  let db2 = Stores.open_engine ~tweak ~env Stores.Leveldb in
  let stats = db2.Dyn.d_stats () in
  Alcotest.(check bool) "dropped WAL bytes reported" true
    (stats.Pdb_kvs.Engine_stats.wal_bytes_dropped > 0
     || stats.Pdb_kvs.Engine_stats.wal_records_recovered = 0);
  (* synced data is still all there *)
  for i = 0 to 9 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%d survives" i)
      (Some "synced")
      (db2.Dyn.d_get (Printf.sprintf "k%d" i))
  done;
  db2.Dyn.d_close ()

let () =
  Alcotest.run "crash-torture"
    [
      ( "sweep",
        [
          Alcotest.test_case "leveldb" `Slow (check_engine Stores.Leveldb);
          Alcotest.test_case "pebblesdb" `Slow (check_engine Stores.Pebblesdb);
          Alcotest.test_case "wiredtiger" `Slow
            (check_engine Stores.Wiredtiger);
        ] );
      ( "sharded sweep",
        [
          Alcotest.test_case "leveldb x4 shards" `Slow
            (check_sharded Stores.Leveldb);
          Alcotest.test_case "pebblesdb x4 shards" `Slow
            (check_sharded Stores.Pebblesdb);
        ] );
      ( "migration sweep",
        [
          Alcotest.test_case "leveldb elastic" `Slow
            (check_elastic Stores.Leveldb);
          Alcotest.test_case "pebblesdb elastic" `Slow
            (check_elastic Stores.Pebblesdb);
        ] );
      ( "policy sweep",
        [
          Alcotest.test_case "hyperleveldb tiered" `Slow
            (check_policy Pdb_kvs.Options.Tiered Stores.Hyperleveldb);
          Alcotest.test_case "hyperleveldb lazy_leveled" `Slow
            (check_policy Pdb_kvs.Options.Lazy_leveled Stores.Hyperleveldb);
        ] );
      ( "schedules",
        [
          Alcotest.test_case "background jobs crashed" `Slow
            test_background_crashes_covered;
          Alcotest.test_case "recovery report surfaces" `Quick
            test_recovery_report_surfaces;
        ] );
    ]
