(* Observability layer: per-op latency histograms, the event tracer, and
   block-cache eviction on sstable GC.

   The invariants: reporting is purely *observational* — store state is
   byte-identical with latency collection on or off, and runs are
   deterministic (same seed + client count ⇒ identical histograms);
   traces are well-formed Chrome trace-event JSON whose spans lie within
   the run's simulated time; GC never strands decoded blocks of deleted
   files in the shared cache. *)

module Dyn = Pdb_kvs.Store_intf
module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Trace = Pdb_simio.Trace
module Stores = Pdb_harness.Stores
module B = Pdb_harness.Bench_util
module L = Pdb_kvs.Latency
module H = Pdb_util.Histogram
module Lsm = Pdb_lsm.Lsm_store

let files_of env =
  Env.list env
  |> List.map (fun name ->
         (name, Env.read_all env name ~hint:Pdb_simio.Device.Sequential_read))
  |> List.sort compare

(* ---------- latency determinism ---------- *)

(* fill + read with a fixed seed, optionally collecting latency *)
let run_workload ?clients ?latency env =
  let store = Stores.open_engine ~env Stores.Pebblesdb in
  (match clients with
   | Some clients ->
     ignore
       (B.mc_fill_random ?latency store ~clients ~n:2_000 ~value_bytes:128
          ~seed:5);
     ignore (B.mc_read_random ?latency store ~clients ~n:2_000 ~ops:1_000 ~seed:5)
   | None ->
     let timed =
       match latency with Some lat -> L.instrument lat store | None -> store
     in
     ignore (B.fill_random timed ~n:2_000 ~value_bytes:128 ~seed:5);
     ignore (B.read_random timed ~n:2_000 ~ops:1_000 ~seed:5));
  store.Dyn.d_close ()

let hist_fingerprint lat kind =
  let h = L.hist lat kind in
  (H.count h, H.mean h, H.percentile h 50.0, H.percentile h 99.0,
   H.percentile h 99.9)

let test_latency_deterministic () =
  List.iter
    (fun clients ->
      let once () =
        let lat = L.create () in
        run_workload ?clients ~latency:lat (Env.create ());
        lat
      in
      let a = once () and b = once () in
      List.iter
        (fun (kind, label) ->
          let ca, _, _, _, _ = hist_fingerprint a kind in
          Alcotest.(check bool)
            (Printf.sprintf "%s histogram populated (%s)" label
               (match clients with
                | None -> "serial"
                | Some c -> Printf.sprintf "%dc" c))
            true
            (ca > 0 || kind = L.Seek);
          Alcotest.(check bool)
            (Printf.sprintf "%s histogram identical across reruns" label)
            true
            (hist_fingerprint a kind = hist_fingerprint b kind))
        L.kinds)
    [ None; Some 1; Some 4; Some 8 ]

let test_latency_observational () =
  (* identical store bytes with latency collection on vs off, on both the
     serial and the multi-client path *)
  List.iter
    (fun clients ->
      let env_off = Env.create () and env_on = Env.create () in
      run_workload ?clients env_off;
      run_workload ?clients ~latency:(L.create ()) env_on;
      let off = files_of env_off and on = files_of env_on in
      Alcotest.(check (list string)) "same file set" (List.map fst off)
        (List.map fst on);
      List.iter2
        (fun (name, b_off) (_, b_on) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s byte-identical with latency on/off" name)
            true
            (String.equal b_off b_on))
        off on)
    [ None; Some 4 ]

(* ---------- trace smoke ---------- *)

(* minimal JSON validator (recursive descent); we only need "is this
   well-formed", not a parse tree *)
let json_valid (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let continue = ref true in
          while !continue && not !fail do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some '}' ->
              incr pos;
              continue := false
            | _ -> fail := true
          done
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let continue = ref true in
          while !continue && not !fail do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some ']' ->
              incr pos;
              continue := false
            | _ -> fail := true
          done
        end
      | Some '"' -> string_lit ()
      | Some ('t' | 'f' | 'n') ->
        let lit w =
          if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
          then pos := !pos + String.length w
          else fail := true
        in
        (match peek () with
         | Some 't' -> lit "true"
         | Some 'f' -> lit "false"
         | _ -> lit "null")
      | Some ('-' | '0' .. '9') ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
              | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
              | _ -> false)
        do
          incr pos
        done;
        if
          float_of_string_opt (String.sub s start (!pos - start)) = None
        then fail := true
      | _ -> fail := true
    end
  and string_lit () =
    if !fail then ()
    else begin
      expect '"';
      let closed = ref false in
      while (not !closed) && not !fail do
        if !pos >= n then fail := true
        else
          match s.[!pos] with
          | '"' ->
            incr pos;
            closed := true
          | '\\' ->
            pos := !pos + 2;
            if !pos > n then fail := true
          | _ -> incr pos
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_validator () =
  (* sanity-check the checker itself *)
  List.iter
    (fun s -> Alcotest.(check bool) ("accepts " ^ s) true (json_valid s))
    [ {|{}|}; {|[]|}; {|{"a":[1,2.5,-3e2],"b":"x\"y","c":null}|} ];
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) false (json_valid s))
    [ {|{|}; {|{"a":}|}; {|[1,]|}; {|"unterminated|}; {|{}extra|} ]

(* Regression: the probe span's duration must be measured before the
   overlap refund rewinds the clock — measuring after under-reports the
   session window by the refunded amount (and can go negative on
   seek-heavy traces, which the dur >= 0 assertion above now catches
   since Trace.span no longer clamps). *)
let test_probe_span_timing () =
  let clock = Clock.create () in
  let tr = Trace.create () in
  let ctx =
    Pdb_simio.Probe.create_ctx ~clock
      ~budget:(fun () -> 2)
      ~tracer:(fun () -> Some tr)
      ()
  in
  Pdb_simio.Probe.with_session ctx ~label:"seek" (fun () ->
      Pdb_simio.Probe.measure ctx (fun () -> Clock.advance clock 1_000.0);
      Pdb_simio.Probe.measure ctx (fun () -> Clock.advance clock 1_000.0));
  (* two 1000ns probes on a budget of 2: serial total 2000, makespan 1000,
     refund 0.5 * (2000 - 1000) = 500.  The session's real window is the
     full 2000ns of measured device time before the refund. *)
  let ev =
    List.find (fun e -> e.Trace.cat = "probe") (Trace.events tr)
  in
  Alcotest.(check (float 1e-6))
    "probe span covers the pre-refund window" 2_000.0 ev.Trace.dur_ns;
  Alcotest.(check (float 1e-6))
    "refund still applied" 1_500.0
    (Clock.elapsed_ns (Clock.snapshot clock))

let test_trace_smoke () =
  let env = Env.create () in
  let tr = Trace.create () in
  Env.set_tracer env tr;
  let store = Stores.open_engine ~env Stores.Pebblesdb in
  ignore (B.fill_random store ~n:3_000 ~value_bytes:512 ~seed:1);
  store.Dyn.d_close ();
  let horizon = Clock.elapsed_ns (Clock.snapshot (Env.clock env)) in
  let evs = Trace.events tr in
  Alcotest.(check bool) "events recorded" true (evs <> []);
  Alcotest.(check bool) "compaction spans present" true
    (List.exists (fun e -> e.Trace.cat = "compaction" && e.Trace.dur_ns > 0.0) evs);
  Alcotest.(check bool) "flush jobs traced" true
    (List.exists (fun e -> e.Trace.name = "flush") evs);
  Alcotest.(check bool) "wal events traced" true
    (List.exists (fun e -> e.Trace.cat = "wal") evs);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s starts at ts >= 0" e.Trace.name)
        true (e.Trace.ts_ns >= 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s has dur >= 0" e.Trace.name)
        true (e.Trace.dur_ns >= 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s ends within the run (%.0f <= %.0f)" e.Trace.name
           (e.Trace.ts_ns +. e.Trace.dur_ns)
           horizon)
        true
        (e.Trace.ts_ns +. e.Trace.dur_ns <= horizon +. 1.0))
    evs;
  let json = Trace.to_chrome_json tr in
  Alcotest.(check bool) "chrome trace JSON well-formed" true (json_valid json)

(* ---------- block-cache eviction on file GC ---------- *)

let test_evict_file_unit () =
  let open Pdb_sstable in
  let b = Block.Builder.create () in
  Block.Builder.add b "k" "v";
  let block = Block.decode (Block.Builder.finish b) in
  let cache = Block_cache.create ~capacity:4096 in
  List.iter
    (fun k -> Pdb_util.Lru.insert cache k block ~weight:16)
    [ "db/000001.sst:0"; "db/000001.sst:4096"; "db/000011.sst:0" ];
  Block_cache.evict_file cache ~file:"db/000001.sst";
  Alcotest.(check bool) "blocks of deleted file gone" true
    (Pdb_util.Lru.find cache "db/000001.sst:0" = None
    && Pdb_util.Lru.find cache "db/000001.sst:4096" = None);
  Alcotest.(check bool) "other files untouched" true
    (Pdb_util.Lru.find cache "db/000011.sst:0" <> None)

(* After compactions delete sstables, no cached block may reference a file
   that no longer exists: the regression the GC eviction fix closes. *)
let test_cache_files_live () =
  let env = Env.create () in
  let t =
    Lsm.open_store (Stores.default_options Stores.Leveldb) ~env ~dir:"db"
  in
  let rng = Pdb_util.Rng.create 3 in
  let key i = Printf.sprintf "key%06d" i in
  let cache = t.Lsm.block_cache in
  let check_no_stale msg =
    let live = Env.list env in
    let stale =
      Pdb_util.Lru.fold cache
        (fun acc k _ ->
          let file = String.sub k 0 (String.rindex k ':') in
          if List.mem file live then acc else file :: acc)
        []
    in
    Alcotest.(check (list string)) msg [] stale
  in
  for i = 0 to 4_999 do
    Lsm.put t (key (Pdb_util.Rng.int rng 2_000)) (Pdb_util.Rng.alpha rng 256);
    (* interleave reads so the cache holds blocks of files that the
       compactions triggered by later puts then delete *)
    if i mod 7 = 0 then ignore (Lsm.get t (key (Pdb_util.Rng.int rng 2_000)))
  done;
  (* mid-fill compactions have deleted many of the files those reads
     cached; with eviction-on-GC the cache holds only live files *)
  Alcotest.(check bool) "cache is populated" true
    (Pdb_sstable.Block_cache.used cache > 0);
  check_no_stale "no stale blocks after fill-time GC";
  Lsm.compact_all t;
  check_no_stale "no stale blocks after compact_all";
  Lsm.close t

let () =
  Alcotest.run "observability"
    [
      ( "latency",
        [
          Alcotest.test_case "deterministic across reruns" `Quick
            test_latency_deterministic;
          Alcotest.test_case "byte-identical state on/off" `Quick
            test_latency_observational;
        ] );
      ( "trace",
        [
          Alcotest.test_case "json validator sanity" `Quick test_json_validator;
          Alcotest.test_case "probe span measured before refund" `Quick
            test_probe_span_timing;
          Alcotest.test_case "smoke: spans, bounds, json" `Quick
            test_trace_smoke;
        ] );
      ( "block-cache",
        [
          Alcotest.test_case "evict_file drops only that file" `Quick
            test_evict_file_unit;
          Alcotest.test_case "no stale blocks after GC" `Quick
            test_cache_files_live;
        ] );
    ]
