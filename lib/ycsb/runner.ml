(** YCSB workload runner over any packaged store ({!Pdb_kvs.Store_intf.dyn}).

    Keys follow the YCSB convention of hashing the logical record number so
    that loads arrive in effectively random key order.  The runner reports
    modeled throughput (operations over simulated elapsed time) and the IO
    performed during the phase — the quantities plotted in Figure 5.5. *)

module Dyn = Pdb_kvs.Store_intf
module Iter = Pdb_kvs.Iter
module Clock = Pdb_simio.Clock

(* FNV-64 over the record number, hex-rendered: "user" ^ 16 hex chars. *)
let key_of_record n =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  let v = ref (of_int n) in
  for _ = 0 to 7 do
    h := mul (logxor !h (logand !v 0xffL)) 0x100000001B3L;
    v := shift_right_logical !v 8
  done;
  Printf.sprintf "user%016Lx" !h

type result = {
  phase : string;
  ops : int;
  elapsed_ns : float;
  kops_per_s : float;
  bytes_written : int;
  bytes_read : int;
  reads : int;
  updates : int;
  inserts : int;
  scans : int;
  rmws : int;
  (* foreground-concurrency fields; 1 / zero for the serial path *)
  clients : int;
  write_groups : int;
  avg_group_size : float;
  syncs_saved : int;
}

let make_value rng n = Pdb_util.Rng.alpha rng n

(* Measure a phase: simulated elapsed via the clock lanes (background
   completion = per-worker timeline horizon), IO via the env counters. *)
let measure (store : Dyn.dyn) name f =
  let clock = Pdb_simio.Env.clock store.Dyn.d_env in
  let io0 = Pdb_simio.Io_stats.snapshot (Pdb_simio.Env.stats store.Dyn.d_env) in
  let c0 = Clock.snapshot clock in
  let ops, reads, updates, inserts, scans, rmws = f () in
  let c1 = Clock.snapshot clock in
  let io1 = Pdb_simio.Io_stats.snapshot (Pdb_simio.Env.stats store.Dyn.d_env) in
  let delta = Clock.diff c1 c0 in
  let elapsed = Clock.elapsed_ns delta in
  let io = Pdb_simio.Io_stats.diff io1 io0 in
  {
    phase = name;
    ops;
    elapsed_ns = elapsed;
    kops_per_s =
      (if elapsed <= 0.0 then 0.0
       else float_of_int ops /. (elapsed /. 1e9) /. 1000.0);
    bytes_written = io.Pdb_simio.Io_stats.bytes_written;
    bytes_read = io.Pdb_simio.Io_stats.bytes_read;
    reads;
    updates;
    inserts;
    scans;
    rmws;
    clients = 1;
    write_groups = 0;
    avg_group_size = 0.0;
    syncs_saved = 0;
  }

(* Measure a phase driven through the multi-client executor: ops
   interleave round-robin across [clients] foreground lanes and writes
   group-commit; elapsed comes from the lane placement. *)
let measure_clients ?latency (store : Dyn.dyn) name ~clients ops
    ~counts:(nops, reads, updates, inserts, scans, rmws) =
  let io0 = Pdb_simio.Io_stats.snapshot (Pdb_simio.Env.stats store.Dyn.d_env) in
  let r = Pdb_kvs.Multi_client.run ?latency store ~clients ops in
  let io1 = Pdb_simio.Io_stats.snapshot (Pdb_simio.Env.stats store.Dyn.d_env) in
  let io = Pdb_simio.Io_stats.diff io1 io0 in
  {
    phase = name;
    ops = nops;
    elapsed_ns = r.Pdb_kvs.Multi_client.elapsed_ns;
    kops_per_s =
      (if r.Pdb_kvs.Multi_client.elapsed_ns <= 0.0 then 0.0
       else
         float_of_int nops
         /. (r.Pdb_kvs.Multi_client.elapsed_ns /. 1e9)
         /. 1000.0);
    bytes_written = io.Pdb_simio.Io_stats.bytes_written;
    bytes_read = io.Pdb_simio.Io_stats.bytes_read;
    reads;
    updates;
    inserts;
    scans;
    rmws;
    clients = r.Pdb_kvs.Multi_client.clients;
    write_groups = r.Pdb_kvs.Multi_client.write_groups;
    avg_group_size = r.Pdb_kvs.Multi_client.avg_group_size;
    syncs_saved = r.Pdb_kvs.Multi_client.syncs_saved;
  }

let put_op key value =
  let b = Pdb_kvs.Write_batch.create () in
  Pdb_kvs.Write_batch.put b key value;
  Pdb_kvs.Multi_client.Write b

(** [load ?clients ?latency store ~records ~value_bytes ~seed] is the
    YCSB load phase: insert [records] fresh records.  With [~clients:n]
    the inserts interleave round-robin across [n] client lanes and commit
    in groups; the values (and hence the store's final state) are the
    same at any client count.  With [?latency], per-operation modeled
    latencies are collected (clock-snapshot deltas on the serial path,
    lane placement on the client path) without changing store state. *)
let load ?clients ?latency (store : Dyn.dyn) ~records ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create seed in
  match clients with
  | None ->
    let store =
      match latency with
      | Some lat -> Pdb_kvs.Latency.instrument lat store
      | None -> store
    in
    measure store "load" (fun () ->
        for n = 0 to records - 1 do
          store.Dyn.d_put (key_of_record n) (make_value rng value_bytes)
        done;
        (records, 0, 0, records, 0, 0))
  | Some clients ->
    let ops = ref [] in
    for n = 0 to records - 1 do
      ops := put_op (key_of_record n) (make_value rng value_bytes) :: !ops
    done;
    measure_clients ?latency store "load" ~clients (List.rev !ops)
      ~counts:(records, 0, 0, records, 0, 0)

(** [run ?clients ?latency store spec ~records ~operations ~value_bytes
    ~seed] executes the transaction phase of [spec] against a store
    already loaded with [records] records.  With [~clients:n] the ops
    interleave round-robin across [n] client lanes (writes group-commit);
    the drawn op sequence — and the store's final state — is the same at
    any client count.  With [?latency], per-operation modeled latencies
    are collected without changing store state. *)
let run ?clients ?latency (store : Dyn.dyn) (spec : Workload.spec) ~records
    ~operations ~value_bytes ~seed =
  let rng = Pdb_util.Rng.create (seed + 17) in
  let dist =
    match spec.Workload.dist with
    | Workload.Zipfian -> Pdb_util.Dist.scrambled_zipfian ~seed records
    | Workload.Latest -> Pdb_util.Dist.latest ~seed records
    | Workload.Uniform -> Pdb_util.Dist.uniform ~seed records
    | Workload.Shifting_hotspot ->
      (* a handful of hotspot phases per run, so the skew drifts while
         any one phase still lasts long enough to matter *)
      Pdb_util.Dist.shifting_hotspot ~seed
        ~period:(max 1 (operations / 5))
        records
    | Workload.Diurnal ->
      Pdb_util.Dist.diurnal ~seed ~period:(max 1 operations) records
  in
  let record_count = ref records in
  let reads = ref 0
  and updates = ref 0
  and inserts = ref 0
  and scans = ref 0
  and rmws = ref 0 in
  let scan_op (st : Dyn.dyn) start len =
    let it = st.Dyn.d_iterator () in
    it.Iter.seek (key_of_record start);
    let steps = ref 0 in
    while it.Iter.valid () && !steps < len do
      ignore (it.Iter.key ());
      ignore (it.Iter.value ());
      it.Iter.next ();
      incr steps
    done
  in
  match clients with
  | None ->
    let store =
      match latency with
      | Some lat -> Pdb_kvs.Latency.instrument lat store
      | None -> store
    in
    measure store ("run-" ^ spec.Workload.name) (fun () ->
        for _ = 1 to operations do
          match Workload.draw_op spec rng with
          | Workload.Read ->
            incr reads;
            ignore (store.Dyn.d_get (key_of_record (Pdb_util.Dist.next dist)))
          | Workload.Update ->
            incr updates;
            store.Dyn.d_put
              (key_of_record (Pdb_util.Dist.next dist))
              (make_value rng value_bytes)
          | Workload.Insert ->
            incr inserts;
            let n = !record_count in
            incr record_count;
            store.Dyn.d_put (key_of_record n) (make_value rng value_bytes);
            Pdb_util.Dist.set_item_count dist !record_count
          | Workload.Scan ->
            incr scans;
            let start = Pdb_util.Dist.next dist in
            let len = 1 + Pdb_util.Rng.int rng spec.Workload.max_scan_len in
            scan_op store start len
          | Workload.Read_modify_write ->
            incr rmws;
            let n = Pdb_util.Dist.next dist in
            ignore (store.Dyn.d_get (key_of_record n));
            store.Dyn.d_put (key_of_record n) (make_value rng value_bytes)
        done;
        (operations, !reads, !updates, !inserts, !scans, !rmws))
  | Some clients ->
    (* draw the whole op sequence first (rng/dist state advances exactly
       as in the serial path), then replay it across the client lanes *)
    let ops = ref [] in
    let push op = ops := op :: !ops in
    for _ = 1 to operations do
      match Workload.draw_op spec rng with
      | Workload.Read ->
        incr reads;
        let key = key_of_record (Pdb_util.Dist.next dist) in
        push (Pdb_kvs.Multi_client.Read (fun () -> ignore (store.Dyn.d_get key)))
      | Workload.Update ->
        incr updates;
        let key = key_of_record (Pdb_util.Dist.next dist) in
        push (put_op key (make_value rng value_bytes))
      | Workload.Insert ->
        incr inserts;
        let n = !record_count in
        incr record_count;
        push (put_op (key_of_record n) (make_value rng value_bytes));
        Pdb_util.Dist.set_item_count dist !record_count
      | Workload.Scan ->
        incr scans;
        let start = Pdb_util.Dist.next dist in
        let len = 1 + Pdb_util.Rng.int rng spec.Workload.max_scan_len in
        push (Pdb_kvs.Multi_client.Seek (fun () -> scan_op store start len))
      | Workload.Read_modify_write ->
        incr rmws;
        let key = key_of_record (Pdb_util.Dist.next dist) in
        let value = make_value rng value_bytes in
        push
          (Pdb_kvs.Multi_client.Other
             (fun () ->
               ignore (store.Dyn.d_get key);
               store.Dyn.d_put key value))
    done;
    measure_clients ?latency store
      ("run-" ^ spec.Workload.name)
      ~clients (List.rev !ops)
      ~counts:(operations, !reads, !updates, !inserts, !scans, !rmws)
