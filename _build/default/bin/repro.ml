(* repro — run individual paper experiments by id (see DESIGN.md §4).

   Usage:
     repro --list
     repro fig1.1 tab5.2 ...
     repro all *)

open Cmdliner

let run ids list_only =
  if list_only then begin
    print_endline "available experiments:";
    List.iter
      (fun (e : Pdb_harness.Experiments.experiment) ->
        Printf.printf "  %-10s %s\n" e.Pdb_harness.Experiments.id
          e.Pdb_harness.Experiments.title)
      Pdb_harness.Experiments.all
  end
  else
    match ids with
    | [] | [ "all" ] -> Pdb_harness.Experiments.run_all ()
    | ids -> List.iter Pdb_harness.Experiments.run_by_id ids

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiment ids (fig1.1, tab5.2, ...) or 'all'.")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List available experiments.")

let cmd =
  Cmd.v
    (Cmd.info "repro"
       ~doc:"Regenerate the PebblesDB paper's tables and figures")
    Term.(const run $ ids $ list_flag)

let () = exit (Cmd.eval cmd)
