(** Page-based B+-tree store.

    The stand-in for the paper's non-LSM baselines: KyotoCabinet-style
    write-through operation (chapter 2's motivation — "inserting 100
    million key-value pairs into KyotoCabinet writes 829 GB to storage")
    and, in buffered mode, the page store underneath the WiredTiger-like
    engine ({!Wt_store}).

    Updating a B+-tree rewrites whole pages in place, so its write
    amplification is roughly [page_size / entry_size] per random update —
    the behaviour the LSM family was invented to avoid.  Pages live in a
    single simulated file ([<dir>/btree.pages]) with positioned writes;
    a small header page persists the root/next-page metadata.

    Concurrency, snapshots and fine-grained recovery are out of scope:
    write-through mode is durable per update, buffered mode relies on the
    caller (the WiredTiger shim) journaling its writes. *)

module Env = Pdb_simio.Env
module Clock = Pdb_simio.Clock
module Device = Pdb_simio.Device
module O = Pdb_kvs.Options

type leaf = { mutable entries : (string * string) list; mutable next : int }

type internal = { mutable keys : string list; mutable children : int list }
(* children = keys+1: child i holds keys < keys.(i) *)

type node = Leaf of leaf | Internal of internal

type mode = Write_through | Buffered

type t = {
  opts : O.t;
  env : Env.t;
  dir : string;
  clock : Clock.t;
  stats : Pdb_kvs.Engine_stats.t;
  mode : mode;
  page_file : string;
  slot_bytes : int; (* on-file slot per page *)
  split_bytes : int; (* serialized size that forces a split *)
  pages : (int, node) Hashtbl.t; (* loaded pages *)
  hot : (string, unit) Pdb_util.Lru.t; (* page-cache residency model *)
  dirty : (int, unit) Hashtbl.t;
  mutable root : int;
  mutable next_page : int;
  mutable count : int;
  mutable closed : bool;
}

let header_bytes = 64

(* ---------- serialization ---------- *)

let encode_node node =
  let buf = Buffer.create 256 in
  (match node with
   | Leaf l ->
     Buffer.add_char buf 'L';
     Pdb_util.Varint.put_uvarint buf (l.next + 1);
     Pdb_util.Varint.put_uvarint buf (List.length l.entries);
     List.iter
       (fun (k, v) ->
         Pdb_util.Varint.put_length_prefixed buf k;
         Pdb_util.Varint.put_length_prefixed buf v)
       l.entries
   | Internal n ->
     Buffer.add_char buf 'I';
     Pdb_util.Varint.put_uvarint buf (List.length n.keys);
     List.iter (Pdb_util.Varint.put_length_prefixed buf) n.keys;
     List.iter (Pdb_util.Varint.put_uvarint buf) n.children);
  Buffer.contents buf

let decode_node s =
  match s.[0] with
  | 'L' ->
    let next, pos = Pdb_util.Varint.get_uvarint s 1 in
    let count, pos = Pdb_util.Varint.get_uvarint s pos in
    let pos = ref pos in
    let entries = ref [] in
    for _ = 1 to count do
      let k, p = Pdb_util.Varint.get_length_prefixed s !pos in
      let v, p = Pdb_util.Varint.get_length_prefixed s p in
      pos := p;
      entries := (k, v) :: !entries
    done;
    Leaf { entries = List.rev !entries; next = next - 1 }
  | 'I' ->
    let nkeys, pos = Pdb_util.Varint.get_uvarint s 1 in
    let pos = ref pos in
    let keys = ref [] in
    for _ = 1 to nkeys do
      let k, p = Pdb_util.Varint.get_length_prefixed s !pos in
      pos := p;
      keys := k :: !keys
    done;
    let children = ref [] in
    for _ = 1 to nkeys + 1 do
      let c, p = Pdb_util.Varint.get_uvarint s !pos in
      pos := p;
      children := c :: !children
    done;
    Internal { keys = List.rev !keys; children = List.rev !children }
  | c -> invalid_arg (Printf.sprintf "Bptree.decode_node: bad tag %C" c)

(* ---------- page IO ---------- *)

let page_offset t id = header_bytes + (id * t.slot_bytes)

let write_page t id =
  match Hashtbl.find_opt t.pages id with
  | None -> ()
  | Some node ->
    let raw = encode_node node in
    (* length-prefix within the slot so reads know the extent *)
    let buf = Buffer.create (String.length raw + 4) in
    Pdb_util.Varint.put_fixed32 buf (String.length raw);
    Buffer.add_string buf raw;
    Env.write_at t.env t.page_file ~pos:(page_offset t id)
      (Buffer.contents buf)

let write_header t =
  let buf = Buffer.create header_bytes in
  Pdb_util.Varint.put_fixed32 buf t.root;
  Pdb_util.Varint.put_fixed32 buf t.next_page;
  Pdb_util.Varint.put_fixed32 buf t.count;
  Env.write_at t.env t.page_file ~pos:0 (Buffer.contents buf)

(* Touch a page in the residency model; charge a random read on a miss. *)
let touch t id =
  let key = string_of_int id in
  if not (Pdb_util.Lru.mem t.hot key) then
    Clock.advance t.clock
      (Device.read_cost (Env.device t.env) ~hint:Device.Random_read
         ~bytes:t.slot_bytes);
  Pdb_util.Lru.insert t.hot key () ~weight:t.slot_bytes

let load_page t id =
  match Hashtbl.find_opt t.pages id with
  | Some node ->
    touch t id;
    node
  | None ->
    let len =
      Pdb_util.Varint.get_fixed32
        (Env.read t.env t.page_file ~pos:(page_offset t id) ~len:4
           ~hint:Device.Random_read)
        0
    in
    let raw =
      Env.read t.env t.page_file ~pos:(page_offset t id + 4) ~len
        ~hint:Device.Random_read
    in
    let node = decode_node raw in
    Hashtbl.replace t.pages id node;
    Pdb_util.Lru.insert t.hot (string_of_int id) () ~weight:t.slot_bytes;
    node

let mark_dirty t id =
  match t.mode with
  | Write_through -> write_page t id
  | Buffered -> Hashtbl.replace t.dirty id ()

let alloc_page t node =
  let id = t.next_page in
  t.next_page <- id + 1;
  Hashtbl.replace t.pages id node;
  Pdb_util.Lru.insert t.hot (string_of_int id) () ~weight:t.slot_bytes;
  mark_dirty t id;
  id

(* ---------- open / close ---------- *)

let open_store ?(mode = Write_through) (opts : O.t) ~env ~dir =
  let page_file = dir ^ "/btree.pages" in
  let slot_bytes = 4 * opts.O.block_bytes in
  let t =
    {
      opts;
      env;
      dir;
      clock = Env.clock env;
      stats = Pdb_kvs.Engine_stats.create ();
      mode;
      page_file;
      slot_bytes;
      split_bytes = opts.O.block_bytes;
      pages = Hashtbl.create 1024;
      hot =
        Pdb_util.Lru.create
          ~capacity:(max (4 * slot_bytes) opts.O.block_cache_bytes);
      dirty = Hashtbl.create 64;
      root = 0;
      next_page = 0;
      count = 0;
      closed = false;
    }
  in
  if Env.exists env page_file && Env.file_size env page_file >= 12 then begin
    let header =
      Env.read env page_file ~pos:0 ~len:12 ~hint:Device.Random_read
    in
    t.root <- Pdb_util.Varint.get_fixed32 header 0;
    t.next_page <- Pdb_util.Varint.get_fixed32 header 4;
    t.count <- Pdb_util.Varint.get_fixed32 header 8
  end
  else
    Env.with_atomic env (fun () ->
        t.root <- alloc_page t (Leaf { entries = []; next = -1 });
        write_page t t.root;
        write_header t);
  t

(* A checkpoint is modeled as atomic with respect to injected crashes:
   real page stores make it so with their own page-level journaling, which
   this simulation does not reproduce.  Without the atomic section a crash
   halfway through the page sweep would leave a structurally inconsistent
   tree (new header over old pages or vice versa), a failure mode of the
   page store's journal rather than of the engines under test. *)
let flush_dirty t =
  Env.with_atomic t.env (fun () ->
      Hashtbl.iter (fun id () -> write_page t id) t.dirty;
      Hashtbl.reset t.dirty;
      write_header t)

let close t =
  flush_dirty t;
  t.closed <- true

let options t = t.opts
let env t = t.env
let stats t = t.stats

(* ---------- descent ---------- *)

(* Path from root to the leaf owning [key]: (page_id, node) list with the
   leaf last; internal steps also note the child index taken. *)
let rec descend t id key acc =
  let node = load_page t id in
  match node with
  | Leaf _ -> List.rev ((id, node, -1) :: acc)
  | Internal n ->
    let rec pick i keys children =
      match (keys, children) with
      | [], [ c ] -> (i, c)
      | k :: krest, c :: crest ->
        if String.compare key k < 0 then (i, c)
        else pick (i + 1) krest crest
      | _ -> invalid_arg "Bptree: malformed internal node"
    in
    let idx, child = pick 0 n.keys n.children in
    descend t child key ((id, node, idx) :: acc)

let leaf_of_path path =
  match List.rev path with
  | (id, Leaf l, _) :: _ -> (id, l)
  | _ -> invalid_arg "Bptree: path without leaf"

(* ---------- splits ---------- *)

let node_size node = String.length (encode_node node)

let split_list l =
  let n = List.length l in
  let rec take i = function
    | [] -> ([], [])
    | x :: rest ->
      if i = 0 then ([], x :: rest)
      else
        let a, b = take (i - 1) rest in
        (x :: a, b)
  in
  take (n / 2) l

(* Insert [sep_key, new_page] into the parent chain, splitting internals
   as needed. *)
let rec insert_into_parent t path sep_key new_page =
  match List.rev path with
  | [] ->
    (* split reached the root: grow the tree *)
    let old_root = t.root in
    t.root <-
      alloc_page t
        (Internal { keys = [ sep_key ]; children = [ old_root; new_page ] });
    write_header t
  | (pid, Internal n, idx) :: rest ->
    let rec insert_at i keys children =
      match (keys, children) with
      | ks, c :: cs when i = 0 ->
        (sep_key :: ks, c :: new_page :: cs)
      | k :: ks, c :: cs ->
        let ks', cs' = insert_at (i - 1) ks cs in
        (k :: ks', c :: cs')
      | _ -> invalid_arg "Bptree: insert_into_parent"
    in
    let keys', children' = insert_at idx n.keys n.children in
    n.keys <- keys';
    n.children <- children';
    if node_size (Internal n) > t.split_bytes && List.length n.keys > 1 then begin
      (* split the internal node *)
      let k = List.length n.keys in
      let mid = k / 2 in
      let rec split i keys children =
        match (keys, children) with
        | key :: ks, c :: cs when i < mid ->
          let lk, rk, sep, lc, rc = split (i + 1) ks cs in
          (key :: lk, rk, sep, c :: lc, rc)
        | sep :: ks, c :: cs when i = mid -> ([], ks, sep, [ c ], cs)
        | _ -> invalid_arg "Bptree: internal split"
      in
      let lk, rk, sep, lc, rc = split 0 n.keys n.children in
      n.keys <- lk;
      n.children <- lc;
      let right = alloc_page t (Internal { keys = rk; children = rc }) in
      mark_dirty t pid;
      insert_into_parent t (List.rev rest) sep right
    end
    else mark_dirty t pid
  | (_, Leaf _, _) :: _ -> invalid_arg "Bptree: leaf in parent position"

(* ---------- operations ---------- *)

let put t key value =
  assert (not t.closed);
  t.stats.Pdb_kvs.Engine_stats.puts <- t.stats.Pdb_kvs.Engine_stats.puts + 1;
  t.stats.Pdb_kvs.Engine_stats.user_bytes_written <-
    t.stats.Pdb_kvs.Engine_stats.user_bytes_written
    + String.length key + String.length value;
  Clock.advance_cpu t.clock
    (t.opts.O.op_overhead_write_ns +. t.opts.O.cpu_per_op_ns);
  let path = descend t t.root key [] in
  let lid, leaf = leaf_of_path path in
  let existed = List.mem_assoc key leaf.entries in
  let entries =
    (key, value)
    :: List.filter (fun (k, _) -> not (String.equal k key)) leaf.entries
  in
  leaf.entries <- List.sort (fun (a, _) (b, _) -> String.compare a b) entries;
  if not existed then t.count <- t.count + 1;
  if
    node_size (Leaf { entries = leaf.entries; next = leaf.next })
    > t.split_bytes
    && List.length leaf.entries > 1
  then begin
    let left, right = split_list leaf.entries in
    let right_page =
      alloc_page t (Leaf { entries = right; next = leaf.next })
    in
    leaf.entries <- left;
    leaf.next <- right_page;
    mark_dirty t lid;
    let sep = fst (List.hd right) in
    insert_into_parent t
      (List.filteri (fun i _ -> i < List.length path - 1) path)
      sep right_page
  end
  else mark_dirty t lid;
  if t.mode = Write_through then write_header t

let get t key =
  assert (not t.closed);
  t.stats.Pdb_kvs.Engine_stats.gets <- t.stats.Pdb_kvs.Engine_stats.gets + 1;
  Clock.advance_cpu t.clock
    (t.opts.O.op_overhead_read_ns +. t.opts.O.cpu_per_op_ns);
  let path = descend t t.root key [] in
  let _, leaf = leaf_of_path path in
  List.assoc_opt key leaf.entries

let delete t key =
  assert (not t.closed);
  t.stats.Pdb_kvs.Engine_stats.deletes <-
    t.stats.Pdb_kvs.Engine_stats.deletes + 1;
  Clock.advance_cpu t.clock
    (t.opts.O.op_overhead_write_ns +. t.opts.O.cpu_per_op_ns);
  let path = descend t t.root key [] in
  let lid, leaf = leaf_of_path path in
  if List.mem_assoc key leaf.entries then begin
    leaf.entries <-
      List.filter (fun (k, _) -> not (String.equal k key)) leaf.entries;
    t.count <- t.count - 1;
    mark_dirty t lid
  end

let write t batch =
  Pdb_kvs.Write_batch.iter batch (fun op ->
      match op with
      | Pdb_kvs.Write_batch.Put (k, v) -> put t k v
      | Pdb_kvs.Write_batch.Delete k -> delete t k)

(* no WAL to coalesce: a group degrades to the one-by-one writes *)
let write_group t batches = List.iter (write t) batches

(* leftmost leaf id *)
let rec leftmost t id =
  match load_page t id with
  | Leaf _ -> id
  | Internal n -> leftmost t (List.hd n.children)

let iterator t =
  (* remaining entries of the current leaf + id of the next leaf *)
  let entries = ref [] in
  let next_leaf = ref (-1) in
  let rec refill () =
    if !entries = [] && !next_leaf >= 0 then begin
      match load_page t !next_leaf with
      | Leaf l ->
        entries := l.entries;
        next_leaf := l.next;
        refill ()
      | Internal _ -> invalid_arg "Bptree: leaf chain corrupt"
    end
  in
  let position lid remaining =
    (match load_page t lid with
     | Leaf l -> next_leaf := l.next
     | Internal _ -> invalid_arg "Bptree: expected leaf");
    entries := remaining;
    refill ()
  in
  {
    Pdb_kvs.Iter.seek_to_first =
      (fun () ->
        let id = leftmost t t.root in
        match load_page t id with
        | Leaf l -> position id l.entries
        | Internal _ -> ());
    seek =
      (fun key ->
        let path = descend t t.root key [] in
        let lid, leaf = leaf_of_path path in
        let rest =
          List.filter (fun (k, _) -> String.compare k key >= 0) leaf.entries
        in
        position lid rest);
    next =
      (fun () ->
        (match !entries with
         | _ :: rest -> entries := rest
         | [] -> ());
        refill ());
    valid = (fun () -> !entries <> []);
    key =
      (fun () ->
        match !entries with
        | (k, _) :: _ -> k
        | [] -> invalid_arg "Bptree.iterator: not valid");
    value =
      (fun () ->
        match !entries with
        | (_, v) :: _ -> v
        | [] -> invalid_arg "Bptree.iterator: not valid");
  }

let flush t = flush_dirty t
let compact_all t = flush_dirty t

let memory_bytes t =
  Hashtbl.length t.pages * t.slot_bytes / 4 (* rough node footprint *)
  + Pdb_util.Lru.used t.hot / 16

let describe t =
  Printf.sprintf "b+tree store: %d keys, %d pages, root=%d" t.count
    t.next_page t.root

let count t = t.count

let check_invariants t =
  (* every leaf reachable by the chain is sorted; chain covers [count] *)
  let rec walk id seen last_key =
    if id < 0 then seen
    else
      match load_page t id with
      | Leaf l ->
        let rec check_sorted prev = function
          | [] -> prev
          | (k, _) :: rest ->
            (match prev with
             | Some p when String.compare p k >= 0 ->
               failwith "bptree invariant: leaf entries not ascending"
             | _ -> ());
            check_sorted (Some k) rest
        in
        let last = check_sorted last_key l.entries in
        walk l.next (seen + List.length l.entries) last
      | Internal _ -> failwith "bptree invariant: internal in leaf chain"
  in
  let total = walk (leftmost t t.root) 0 None in
  if total <> t.count then
    failwith
      (Printf.sprintf "bptree invariant: count mismatch (%d vs %d)" total
         t.count)
