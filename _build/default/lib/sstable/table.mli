(** Sstables: immutable sorted tables of internal-key/value entries.

    Layout: data blocks, then an optional bloom-filter block over user keys
    (PebblesDB's sstable-level filters, §4.1), then an index block mapping
    each data block's last key to its (offset, size) handle, then a fixed
    footer.  Entries are written once, in internal-key order, and never
    updated in place. *)

type handle = { offset : int; size : int }

val footer_size : int

(** Summary of a finished table, recorded in the MANIFEST. *)
type meta = {
  number : int;
  file_size : int;
  entries : int;
  smallest : string;  (** encoded internal key *)
  largest : string;
}

val file_name : dir:string -> int -> string

module Builder : sig
  type t

  (** [create env ~dir ~number ~block_bytes ~bloom ~expected_keys] starts a
      new table file.  [bloom = true] attaches a per-table filter sized for
      [expected_keys]. *)
  val create :
    Pdb_simio.Env.t -> dir:string -> number:int -> block_bytes:int ->
    bloom:bool -> expected_keys:int -> t

  (** [add t ikey value] appends an entry; internal keys must arrive in
      ascending order. *)
  val add : t -> string -> string -> unit

  val estimated_size : t -> int
  val entry_count : t -> int

  (** [finish t] writes filter, index and footer, syncs the file, and
      returns the table's metadata; an empty builder deletes its file and
      returns [None]. *)
  val finish : t -> meta option
end

(** An open table: index block and filter resident in memory (the paper's
    cached index blocks); data blocks go through the shared block cache. *)
type reader

(** [open_reader ?hint env ~dir meta] opens a table, reading footer, index
    and filter.  Cold point-lookups pay three random reads; compaction
    passes [~hint:Sequential_read] since it streams its freshly-written
    inputs.
    @raise Failure on a bad magic number. *)
val open_reader :
  ?hint:Pdb_simio.Device.read_hint -> Pdb_simio.Env.t -> dir:string -> meta ->
  reader

(** [may_contain r user_key] consults the table's bloom filter; [true] when
    no filter is attached. *)
val may_contain : reader -> string -> bool

val has_filter : reader -> bool

(** In-memory footprint of the open table (index + filter), for Table 5.4. *)
val resident_bytes : reader -> int

(** [get r ~cache ~hint ikey] returns the first entry with internal key >=
    [ikey], reading at most one data block. *)
val get :
  reader -> cache:Block_cache.t -> hint:Pdb_simio.Device.read_hint -> string ->
  (string * string) option

(** [iterator r ~cache ~hint] is a two-level iterator over the table. *)
val iterator :
  reader -> cache:Block_cache.t -> hint:Pdb_simio.Device.read_hint ->
  Pdb_kvs.Iter.t

(** [recover_meta env ~dir ~number] reconstructs a table's metadata from
    the file alone — the repair path when the MANIFEST is lost.
    @raise Failure on an empty or unreadable table. *)
val recover_meta : Pdb_simio.Env.t -> dir:string -> number:int -> meta
