(* Tests for snapshot reads/iterators and guard deletion — the extension
   features (snapshots are standard LevelDB-family functionality; guard
   deletion is the paper's §3.3/§7). *)

module P = Pebblesdb.Pebbles_store
module L = Pdb_lsm.Lsm_store
module O = Pdb_kvs.Options
module Env = Pdb_simio.Env
module Iter = Pdb_kvs.Iter

let check = Alcotest.check

let qtest ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let tiny_opts () =
  {
    (O.pebblesdb ()) with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
    top_level_bits = 7;
    bit_decrement = 1;
    max_levels = 5;
  }

let lsm_tiny () =
  {
    (O.hyperleveldb ()) with
    O.memtable_bytes = 2 * 1024;
    level_bytes_base = 8 * 1024;
    sstable_target_bytes = 4 * 1024;
    block_bytes = 512;
  }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d" i

(* ---------- pebbles snapshots ---------- *)

let test_snapshot_get_sees_old_value () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  P.put db "k" "old";
  let snap = P.snapshot db in
  P.put db "k" "new";
  check Alcotest.(option string) "current" (Some "new") (P.get db "k");
  check Alcotest.(option string) "snapshot" (Some "old")
    (P.get ~snapshot:snap db "k");
  P.release_snapshot db snap;
  P.close db

let test_snapshot_hides_later_inserts_and_deletes () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  P.put db "a" "1";
  P.put db "b" "2";
  let snap = P.snapshot db in
  P.put db "c" "3" (* after snapshot *);
  P.delete db "a" (* after snapshot *);
  check Alcotest.(option string) "c invisible" None (P.get ~snapshot:snap db "c");
  check Alcotest.(option string) "a still visible" (Some "1")
    (P.get ~snapshot:snap db "a");
  check Alcotest.(option string) "a deleted now" None (P.get db "a");
  P.release_snapshot db snap;
  P.close db

let test_snapshot_survives_compaction () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 299 do
    P.put db (key i) (value i)
  done;
  let snap = P.snapshot db in
  (* overwrite everything and force heavy compaction *)
  for round = 1 to 3 do
    for i = 0 to 299 do
      P.put db (key i) (value (round * 1000 + i))
    done
  done;
  P.compact_all db;
  P.check_invariants db;
  (* snapshot still sees the original values; current sees the last round *)
  for i = 0 to 299 do
    check Alcotest.(option string) ("snap " ^ key i) (Some (value i))
      (P.get ~snapshot:snap db (key i));
    check Alcotest.(option string) ("cur " ^ key i) (Some (value (3000 + i)))
      (P.get db (key i))
  done;
  P.release_snapshot db snap;
  P.close db

let test_snapshot_iterator_consistent_view () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 99 do
    P.put db (key i) (value i)
  done;
  let snap = P.snapshot db in
  for i = 100 to 199 do
    P.put db (key i) (value i)
  done;
  for i = 0 to 99 do
    if i mod 2 = 0 then P.delete db (key i)
  done;
  let snap_view = Iter.to_list (P.iterator ~snapshot:snap db) in
  check Alcotest.int "snapshot sees exactly first 100" 100
    (List.length snap_view);
  check
    Alcotest.(list (pair string string))
    "snapshot contents" (List.init 100 (fun i -> (key i, value i)))
    snap_view;
  let now_view = Iter.to_list (P.iterator db) in
  check Alcotest.int "current view" 150 (List.length now_view);
  P.release_snapshot db snap;
  P.close db

let test_release_unpins_space () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 499 do
    P.put db (key i) (value i)
  done;
  let snap = P.snapshot db in
  for i = 0 to 499 do
    P.put db (key i) "overwritten"
  done;
  P.compact_all db;
  let pinned = Env.total_file_bytes env in
  P.release_snapshot db snap;
  (* another write triggers gc of pinned files; compaction reclaims the old
     versions *)
  for i = 0 to 499 do
    P.put db (key i) "final"
  done;
  P.compact_all db;
  P.put db "tick" "tock" (* gc point *);
  let after = Env.total_file_bytes env in
  Alcotest.(check bool)
    (Printf.sprintf "space reclaimed (%d -> %d)" pinned after)
    true (after < pinned);
  P.close db

let prop_snapshot_is_frozen_model =
  qtest "snapshot = model frozen at acquire time"
    QCheck.(pair small_int (list (pair (int_bound 100) (int_bound 500))))
    (fun (seed, later_ops) ->
      let env = Env.create () in
      let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
      let rng = Pdb_util.Rng.create seed in
      let model = Hashtbl.create 64 in
      for i = 0 to 199 do
        let k = key (Pdb_util.Rng.int rng 100) in
        P.put db k (value i);
        Hashtbl.replace model k (value i)
      done;
      let snap = P.snapshot db in
      List.iter
        (fun (k, v) -> P.put db (key k) (value (10_000 + v)))
        later_ops;
      P.flush db;
      let ok =
        Hashtbl.fold
          (fun k v acc -> acc && P.get ~snapshot:snap db k = Some v)
          model true
      in
      P.release_snapshot db snap;
      ok)

(* ---------- lsm snapshots (same semantics) ---------- *)

let test_lsm_snapshot_roundtrip () =
  let env = Env.create () in
  let db = L.open_store (lsm_tiny ()) ~env ~dir:"db" in
  for i = 0 to 199 do
    L.put db (key i) (value i)
  done;
  let snap = L.snapshot db in
  for i = 0 to 199 do
    L.put db (key i) "new"
  done;
  L.compact_all db;
  for i = 0 to 199 do
    check Alcotest.(option string) ("lsm snap " ^ key i) (Some (value i))
      (L.get ~snapshot:snap db (key i))
  done;
  let snap_view = Iter.to_list (L.iterator ~snapshot:snap db) in
  check Alcotest.int "lsm snapshot iterator" 200 (List.length snap_view);
  L.release_snapshot db snap;
  L.close db

(* ---------- guard deletion ---------- *)

let test_delete_empty_guards () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  (* populate, then delete everything: guards go empty *)
  for i = 0 to 999 do
    P.put db (key i) (value i)
  done;
  for i = 0 to 999 do
    P.delete db (key i)
  done;
  P.compact_all db;
  let empty_before = P.empty_guard_count db in
  Alcotest.(check bool) "guards accumulated" true (empty_before > 0);
  let removed = P.delete_empty_guards db in
  Alcotest.(check bool) "some guards deleted" true (removed > 0);
  P.check_invariants db;
  Alcotest.(check bool) "fewer empty guards" true
    (P.empty_guard_count db < empty_before);
  (* store still fully functional *)
  for i = 0 to 99 do
    P.put db (key (5000 + i)) (value i)
  done;
  for i = 0 to 99 do
    check Alcotest.(option string) "still works" (Some (value i))
      (P.get db (key (5000 + i)))
  done;
  P.check_invariants db;
  P.close db

let test_guard_deletion_persists_across_reopen () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 999 do
    P.put db (key i) (value i)
  done;
  for i = 0 to 999 do
    P.delete db (key i)
  done;
  P.compact_all db;
  ignore (P.delete_empty_guards db);
  let counts = P.guard_counts db in
  P.close db;
  let db2 = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  P.check_invariants db2;
  check Alcotest.(array int) "guard counts preserved" counts
    (P.guard_counts db2);
  P.close db2

let test_delete_empty_guards_spares_occupied () =
  let env = Env.create () in
  let db = P.open_store (tiny_opts ()) ~env ~dir:"db" in
  for i = 0 to 1999 do
    P.put db (key i) (value i)
  done;
  P.compact_all db;
  ignore (P.delete_empty_guards db);
  P.check_invariants db;
  (* all data still present *)
  for i = 0 to 1999 do
    check Alcotest.(option string) ("occupied survive " ^ key i)
      (Some (value i)) (P.get db (key i))
  done;
  P.close db

let () =
  Alcotest.run "snapshots-guard-deletion"
    [
      ( "pebbles-snapshots",
        [
          Alcotest.test_case "get old value" `Quick
            test_snapshot_get_sees_old_value;
          Alcotest.test_case "hides later ops" `Quick
            test_snapshot_hides_later_inserts_and_deletes;
          Alcotest.test_case "survives compaction" `Quick
            test_snapshot_survives_compaction;
          Alcotest.test_case "iterator view" `Quick
            test_snapshot_iterator_consistent_view;
          Alcotest.test_case "release unpins" `Quick test_release_unpins_space;
          prop_snapshot_is_frozen_model;
        ] );
      ( "lsm-snapshots",
        [ Alcotest.test_case "roundtrip" `Quick test_lsm_snapshot_roundtrip ] );
      ( "guard-deletion",
        [
          Alcotest.test_case "delete empty guards" `Quick
            test_delete_empty_guards;
          Alcotest.test_case "persists across reopen" `Quick
            test_guard_deletion_persists_across_reopen;
          Alcotest.test_case "spares occupied" `Quick
            test_delete_empty_guards_spares_occupied;
        ] );
    ]
