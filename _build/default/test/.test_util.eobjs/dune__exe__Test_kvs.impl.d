test/test_kvs.ml: Alcotest Array Db_iter Internal_key Iter List Memtable Merging_iter Pdb_kvs QCheck QCheck_alcotest String Write_batch
